package magus

import (
	"io"
	"net/http"
	"time"

	"github.com/spear-repro/magus/internal/cluster"
	"github.com/spear-repro/magus/internal/flight"
	"github.com/spear-repro/magus/internal/harness"
	"github.com/spear-repro/magus/internal/obs"
)

// This file exposes the observability layer: a zero-dependency metrics
// registry with Prometheus text exposition, a structured JSONL event
// log of governor decisions, and an HTTP handler serving /metrics,
// /healthz and pprof. Attach an Observer through Options.Obs (single
// runs), ExperimentOptions.Obs (benchmark suites) or RunClusterObserved
// (batches); observation is passive — an observed run produces
// bit-identical results to an unobserved one.

// Observer bundles a metrics registry, an optional event log, and the
// run's live health state. A nil Observer disables observation.
type Observer = obs.Observer

// MetricsRegistry is a concurrency-safe metric registry (counters,
// gauges, histograms, labeled families) with Prometheus text-format
// (0.0.4) exposition.
type MetricsRegistry = obs.Registry

// EventLog writes structured JSONL events (one object per line).
type EventLog = obs.EventLog

// ObsHealth is the coarse run health the observer publishes: the worst
// sensor state the governor currently sees.
type ObsHealth = obs.Health

// Observer health states (numerically identical to SensorHealth).
const (
	ObsHealthy  = obs.Healthy
	ObsDegraded = obs.Degraded
	ObsLost     = obs.Lost
)

// MetricsContentType is the Content-Type of /metrics responses
// (Prometheus text exposition format 0.0.4).
const MetricsContentType = obs.ExpositionContentType

// DefaultObsInterval is the default metrics sampling interval
// (Options.ObsInterval = 0 selects it).
const DefaultObsInterval = harness.DefaultObsInterval

// NewMetricsRegistry returns an empty registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewObserver builds an observer over reg (nil = fresh registry) that
// writes decision events to events (nil = no event log).
func NewObserver(reg *MetricsRegistry, events io.Writer) *Observer {
	return obs.New(reg, events)
}

// ObserverOptions tunes an Observer beyond the NewObserver defaults.
type ObserverOptions = obs.Options

// NewObserverWith is NewObserver with options. A non-zero MaxEvents
// caps the JSONL event log: the log ends with a terminal
// events_truncated record once the cap is hit, and /metrics gains
// magus_obs_events_emitted / magus_obs_events_dropped so the
// truncation is observable. The default (zero) is unbounded and
// byte-identical to NewObserver.
func NewObserverWith(reg *MetricsRegistry, events io.Writer, opt ObserverOptions) *Observer {
	return obs.NewWith(reg, events, opt)
}

// ---- Flight recorder ----

// FlightRing is the bounded always-on flight recorder
// (internal/flight): attach one through Options.Flight and the run's
// recent governor decisions, sensor-health transitions and fault
// events stay resident for a postmortem dump (JSONL via DumpJSONL,
// Perfetto-loadable trace via DumpPerfetto). Recording is passive and
// allocation-free; an armed run stays byte-identical to an unarmed
// one.
type FlightRing = flight.Ring

// FlightRecord is one flight-recorder entry.
type FlightRecord = flight.Record

// FlightDefaultCap is the ring capacity NewFlightRing selects for
// cap <= 0.
const FlightDefaultCap = flight.DefaultCap

// NewFlightRing returns a recorder retaining the most recent cap
// records (cap <= 0 selects FlightDefaultCap).
func NewFlightRing(cap int) *FlightRing { return flight.NewRing(cap) }

// NewObsHandler returns the observer's HTTP surface: GET /metrics
// (Prometheus text format), GET /healthz (200 while healthy, 503 with
// the state name once degraded or lost), and /debug/pprof/.
func NewObsHandler(o *Observer) http.Handler { return obs.NewHandler(o) }

// RunClusterObserved is RunCluster with per-node and aggregate power
// metrics published to o on the sampling interval.
func RunClusterObserved(specs []ClusterNodeSpec, sampleEvery time.Duration, o *Observer) (ClusterResult, error) {
	return cluster.RunObserved(specs, sampleEvery, o)
}

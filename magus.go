// Package magus is the public API of the MAGUS reproduction: a
// model-free, lightweight, user-transparent uncore frequency-scaling
// runtime for heterogeneous CPU–GPU systems ("Minimizing Power Waste in
// Heterogeneous Computing via Adaptive Uncore Scaling", SC '25),
// together with the full simulated substrate it runs on — MSR register
// files, RAPL/PCM/NVML-style monitoring, a calibrated node power and
// performance model, the published workload suite, the UPScavenger
// baseline, and a harness that regenerates every table and figure of
// the paper's evaluation.
//
// # Quick start
//
//	cfg := magus.IntelA100()
//	prog, _ := magus.WorkloadByName("unet")
//	base, _ := magus.Run(cfg, prog, magus.NewDefaultGovernor(), magus.Options{Seed: 1})
//	tuned, _ := magus.Run(cfg, prog, magus.NewRuntime(magus.DefaultConfig()), magus.Options{Seed: 1})
//	fmt.Printf("%+v\n", magus.Compare(base, tuned))
//
// The package is a thin facade: each symbol aliases its implementation
// in the internal packages, so the whole system is reachable from a
// single import.
package magus

import (
	"io"
	"time"

	"github.com/spear-repro/magus/internal/core"
	"github.com/spear-repro/magus/internal/governor"
	"github.com/spear-repro/magus/internal/harness"
	"github.com/spear-repro/magus/internal/node"
	"github.com/spear-repro/magus/internal/telemetry"
	"github.com/spear-repro/magus/internal/workload"
)

// ---- The MAGUS runtime (the paper's contribution) ----

// Runtime is the MAGUS uncore frequency-scaling runtime (Algorithms
// 1–3 of the paper). It implements Governor.
type Runtime = core.MAGUS

// Config holds the runtime's thresholds and timing (§3.3).
type Config = core.Config

// Decision is one traced MDFS cycle.
type Decision = core.Decision

// RuntimeStats aggregates runtime counters (invocations, tune events,
// high-frequency overrides, MSR writes).
type RuntimeStats = core.Stats

// Trend is a memory-throughput trend prediction (Algorithm 1).
type Trend = core.Trend

// Trend values.
const (
	TrendDown = core.TrendDown
	TrendFlat = core.TrendFlat
	TrendUp   = core.TrendUp
)

// DefaultConfig returns the paper's recommended thresholds, rescaled
// to this implementation's units (see internal/core).
func DefaultConfig() Config { return core.DefaultConfig() }

// NewRuntime builds a MAGUS runtime; attach it to a node by running it
// through Run, or manually via BuildEnv + Attach.
func NewRuntime(cfg Config) *Runtime { return core.New(cfg) }

// ---- Governors ----

// Governor is an uncore frequency-scaling policy.
type Governor = governor.Governor

// Env is the node-access surface a governor sees.
type Env = governor.Env

// UPSConfig parameterises the UPScavenger baseline.
type UPSConfig = governor.UPSConfig

// UPS is the UPScavenger (SC '19) reimplementation the paper compares
// against.
type UPS = governor.UPS

// NewDefaultGovernor returns the vendor-default policy: uncore pinned
// at maximum unless the hardware TDP clamp engages.
func NewDefaultGovernor() Governor { return governor.NewDefault() }

// NewStaticGovernor pins the uncore limit at a fixed frequency (the
// Figure 2 motivation study uses the range extremes).
func NewStaticGovernor(ghz float64) Governor { return governor.NewStatic(ghz) }

// NewUPS returns the UPScavenger baseline (zero-value config selects
// the published defaults).
func NewUPS(cfg UPSConfig) *UPS { return governor.NewUPS(cfg) }

// DefaultUPSConfig returns the UPS configuration used in the paper's
// comparison.
func DefaultUPSConfig() UPSConfig { return governor.DefaultUPSConfig() }

// ---- Simulated systems ----

// Node is a simulated heterogeneous CPU–GPU node.
type Node = node.Node

// NodeConfig describes a node (topology, frequency ranges, calibrated
// power model, GPUs).
type NodeConfig = node.Config

// GPUSpec describes one GPU board.
type GPUSpec = node.GPUSpec

// IntelA100 returns the paper's Chameleon system: 2× Xeon Platinum
// 8380 + 1× NVIDIA A100-40GB.
func IntelA100() NodeConfig { return node.IntelA100() }

// Intel4A100 returns the multi-GPU system: 2× Xeon 8380 + 4×
// A100-80GB.
func Intel4A100() NodeConfig { return node.Intel4A100() }

// IntelMax1550 returns the Aurora base unit: 2× Xeon Max 9462 + Intel
// Data Center GPU Max 1550.
func IntelMax1550() NodeConfig { return node.IntelMax1550() }

// NewNode instantiates a simulated node.
func NewNode(cfg NodeConfig) *Node { return node.New(cfg) }

// ---- Workloads ----

// Workload is a phase program modelling one application's demand.
type Workload = workload.Program

// Phase is one execution region of a workload.
type Phase = workload.Phase

// Demand is an instantaneous resource request.
type Demand = workload.Demand

// WorkloadByName resolves a catalog application (bfs, gemm, srad,
// unet, gromacs, ...).
func WorkloadByName(name string) (*Workload, bool) { return workload.ByName(name) }

// Workloads lists all catalog application names.
func Workloads() []string { return workload.Names() }

// SingleGPUWorkloads returns the Intel+A100 evaluation set (Fig 4a).
func SingleGPUWorkloads() []string { return workload.SingleGPU() }

// AltisSYCLWorkloads returns the Intel+Max1550 set (Fig 4b).
func AltisSYCLWorkloads() []string { return workload.AltisSYCL() }

// MultiGPUWorkloads returns the Intel+4A100 set (Fig 4c).
func MultiGPUWorkloads() []string { return workload.MultiGPU() }

// IdleWorkload returns a program that idles for d (overhead studies).
func IdleWorkload(d time.Duration) *Workload { return workload.Idle(d) }

// WorkloadFromJSON decodes a user-defined workload program (see
// internal/workload/json.go for the wire format).
func WorkloadFromJSON(r io.Reader) (*Workload, error) { return workload.FromJSON(r) }

// WorkloadRunner executes a Workload against a node, publishing its
// instantaneous demand and consuming the node's served-throughput
// feedback — for manual wiring when Run's defaults don't fit (e.g.
// the HSMP path in examples/amdfabric).
type WorkloadRunner = workload.Runner

// NewWorkloadRunner binds a workload to a system with the given peak
// bandwidth; seed makes the run deterministic.
func NewWorkloadRunner(prog *Workload, sysBWGBs float64, seed int64) *WorkloadRunner {
	return workload.NewRunner(prog, sysBWGBs, seed)
}

// ---- Running experiments ----

// Options controls a single run.
type Options = harness.Options

// Result is one run's metrics.
type Result = harness.Result

// Comparison is the paper's three-metric comparison against baseline.
type Comparison = harness.Comparison

// GovernorFactory builds fresh governors for repeated runs.
type GovernorFactory = harness.GovernorFactory

// Series is a recorded time series; Recorder samples node probes.
type (
	Series   = telemetry.Series
	Recorder = telemetry.Recorder
)

// Run executes a workload on a simulated node under a governor.
func Run(cfg NodeConfig, prog *Workload, gov Governor, opt Options) (Result, error) {
	return harness.Run(cfg, prog, gov, opt)
}

// RunRepeated runs reps seeds and returns outlier-trimmed means (§6
// methodology). Repeats fan out across Options.Jobs workers; the
// aggregate is byte-identical for any jobs value.
func RunRepeated(cfg NodeConfig, prog *Workload, factory GovernorFactory, reps int, opt Options) (Result, error) {
	return harness.RunRepeated(cfg, prog, factory, reps, opt)
}

// RunSpec is one fully-described experiment cell for RunBatch.
type RunSpec = harness.RunSpec

// RunBatch executes independent cells on a bounded worker pool
// (jobs <= 0 = GOMAXPROCS), returning results in spec order —
// byte-identical to a serial sweep for any jobs value.
func RunBatch(specs []RunSpec, jobs int) ([]Result, error) {
	return harness.RunBatch(specs, jobs)
}

// RepeatSpecs expands one cell into its repeats under the evaluation's
// seed-derivation contract (Seed + i*7919, traces disabled).
func RepeatSpecs(cfg NodeConfig, prog *Workload, factory GovernorFactory, reps int, opt Options) []RunSpec {
	return harness.RepeatSpecs(cfg, prog, factory, reps, opt)
}

// Compare reduces (baseline, candidate) to performance loss, power
// saving and energy saving.
func Compare(base, x Result) Comparison { return harness.Compare(base, x) }

// BuildEnv wires a governor environment onto a node for manual
// attachment (custom governors, custom loops).
func BuildEnv(n *Node) (*Env, error) { return harness.BuildEnv(n) }

// Record is the JSON-serialisable archive form of a run's results.
type Record = harness.Record

// NewRecord converts a Result (and the seed that produced it) into a
// Record, including any traces.
func NewRecord(res Result, seed int64) Record { return harness.NewRecord(res, seed) }

// ReadRecord decodes and sanity-checks an archived run record.
func ReadRecord(r io.Reader) (Record, error) { return harness.ReadRecord(r) }

// Command magus-load is a deterministic load generator for
// `magusd serve`. It admits a fleet of tenant sessions, steps every
// session's workload to completion over the HTTP API, closes them, and
// prints one greppable summary line with admission/backpressure counts
// and throughput.
//
// Overload is part of the point: pointed at a daemon whose
// -max-sessions is below -tenants, the generator observes explicit 429
// rejections and retries until slots free up, rather than failing —
// the CI smoke test greps the rejected_429 count off the summary.
//
// Usage:
//
//	magus-load -addr http://127.0.0.1:9900 -tenants 8
//	magus-load -tenants 12 -governor ups -faults pcm-flaky -step 5
//
// Exit status is 0 only when every tenant's workload completed.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

type counters struct {
	requests  atomic.Int64
	created   atomic.Int64
	rejected  atomic.Int64 // 429: admission limit
	shed      atomic.Int64 // 503: queue full / draining
	steps     atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
}

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:9900", "magusd serve base URL")
		tenants  = flag.Int("tenants", 8, "tenant sessions to run to completion")
		conc     = flag.Int("concurrency", 4, "tenants driven at once")
		stepS    = flag.Float64("step", 2.0, "virtual seconds per step request")
		workload = flag.String("workload", "bfs", "workload for every session")
		governor = flag.String("governor", "magus", "governor for every session")
		faults   = flag.String("faults", "", "fault preset for every session (empty = none)")
		seed     = flag.Int64("seed", 1, "base seed; tenant i runs seed+i")
		timeout  = flag.Duration("timeout", 5*time.Minute, "overall wall deadline")
	)
	flag.Parse()

	client := &http.Client{Timeout: 30 * time.Second}
	var c counters
	deadline := time.Now().Add(*timeout)
	start := time.Now()

	sem := make(chan struct{}, max(1, *conc))
	var wg sync.WaitGroup
	for i := 0; i < *tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			runTenant(client, &c, *addr, i, spec{
				Tenant:   fmt.Sprintf("load-%03d", i),
				Workload: *workload,
				Governor: *governor,
				Faults:   *faults,
				Seed:     *seed + int64(i),
			}, *stepS, deadline)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	ok := c.completed.Load() == int64(*tenants)
	fmt.Printf("summary tenants=%d created=%d completed=%d failed=%d rejected_429=%d shed_503=%d "+
		"steps=%d requests=%d elapsed_s=%.2f sessions_per_sec=%.2f requests_per_sec=%.1f ok=%v\n",
		*tenants, c.created.Load(), c.completed.Load(), c.failed.Load(),
		c.rejected.Load(), c.shed.Load(), c.steps.Load(), c.requests.Load(),
		elapsed.Seconds(),
		float64(c.completed.Load())/elapsed.Seconds(),
		float64(c.requests.Load())/elapsed.Seconds(),
		ok)
	if !ok {
		os.Exit(1)
	}
}

type spec struct {
	Tenant   string `json:"tenant"`
	Workload string `json:"workload"`
	Governor string `json:"governor,omitempty"`
	Faults   string `json:"faults,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
}

type status struct {
	ID string `json:"id"`
}

type stepResult struct {
	Done bool `json:"done"`
}

// runTenant drives one session create → step* → delete, retrying
// through explicit overload answers until the deadline.
func runTenant(client *http.Client, c *counters, addr string, i int, sp spec, stepS float64, deadline time.Time) {
	body, _ := json.Marshal(sp)

	var id string
	for {
		if time.Now().After(deadline) {
			c.failed.Add(1)
			return
		}
		code, retryAfter, resp := post(client, c, addr+"/api/v1/sessions", body)
		if code == http.StatusCreated {
			var st status
			json.Unmarshal(resp, &st)
			id = st.ID
			c.created.Add(1)
			break
		}
		switch code {
		case http.StatusTooManyRequests:
			c.rejected.Add(1)
		case http.StatusServiceUnavailable:
			c.shed.Add(1)
		default:
			fmt.Fprintf(os.Stderr, "magus-load: tenant %d: create HTTP %d: %s\n", i, code, resp)
			c.failed.Add(1)
			return
		}
		time.Sleep(backoff(retryAfter))
	}

	stepBody, _ := json.Marshal(map[string]float64{"seconds": stepS})
	for {
		if time.Now().After(deadline) {
			c.failed.Add(1)
			return
		}
		code, retryAfter, resp := post(client, c, addr+"/api/v1/sessions/"+id+"/step", stepBody)
		switch code {
		case http.StatusOK:
			c.steps.Add(1)
			var sr stepResult
			json.Unmarshal(resp, &sr)
			if sr.Done {
				del(client, c, addr+"/api/v1/sessions/"+id)
				c.completed.Add(1)
				return
			}
		case http.StatusServiceUnavailable:
			c.shed.Add(1)
			time.Sleep(backoff(retryAfter))
		default:
			fmt.Fprintf(os.Stderr, "magus-load: tenant %d (%s): step HTTP %d: %s\n", i, id, code, resp)
			c.failed.Add(1)
			return
		}
	}
}

// backoff converts a Retry-After header into a bounded sleep: the
// generator is a pressure source, not a hammer, but it must also not
// sleep so long that overload tests crawl.
func backoff(retryAfter string) time.Duration {
	d := 50 * time.Millisecond
	if s, err := strconv.Atoi(retryAfter); err == nil && s > 0 {
		d = time.Duration(s) * time.Second
	}
	if d > 250*time.Millisecond {
		d = 250 * time.Millisecond
	}
	return d
}

func post(client *http.Client, c *counters, url string, body []byte) (code int, retryAfter string, respBody []byte) {
	c.requests.Add(1)
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, "", []byte(err.Error())
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, resp.Header.Get("Retry-After"), buf.Bytes()
}

func del(client *http.Client, c *counters, url string) {
	c.requests.Add(1)
	req, _ := http.NewRequest(http.MethodDelete, url, nil)
	resp, err := client.Do(req)
	if err == nil {
		resp.Body.Close()
	}
}

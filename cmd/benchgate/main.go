// Command benchgate enforces the hot-path performance contract in CI.
// It reads `go test -bench -benchmem` output on stdin, compares every
// gated benchmark against the committed baseline (BENCH_hotpath.json),
// and exits non-zero when a benchmark is missing, allocates more than
// its pinned budget, or slows past the ns/op tolerance.
//
// Allocation counts are deterministic, so they gate exactly: the
// zero-allocation benchmarks must report 0 allocs/op even at
// -benchtime=1x. Wall-clock is noisy on shared CI runners — and wildly
// so at one iteration — so the time gate is a wide catastrophe net
// (baseline × tolerance factor), not a benchstat-grade comparison.
//
// Usage:
//
//	go test -run '^$' -bench '^BenchmarkHotPath' -benchmem -benchtime=1x ./... |
//	    go run ./cmd/benchgate -baseline BENCH_hotpath.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// baselineFile mirrors the gate section of BENCH_hotpath.json; fields
// outside "gate" are documentation and ignored here.
type baselineFile struct {
	Gate struct {
		NsToleranceFactor float64              `json:"ns_tolerance_factor"`
		Benchmarks        map[string]gateEntry `json:"benchmarks"`
	} `json:"gate"`
}

type gateEntry struct {
	MaxAllocsPerOp  uint64  `json:"max_allocs_per_op"`
	BaselineNsPerOp float64 `json:"baseline_ns_per_op"`
}

// result is one parsed benchmark output line.
type result struct {
	nsPerOp     float64
	allocsPerOp uint64
	hasAllocs   bool
}

// benchLine matches `BenchmarkName[-procs]  N  123 ns/op [custom metrics] [ 45 B/op  6 allocs/op]`.
// Custom b.ReportMetric columns (e.g. `1408992 node-steps/s`) may sit
// between ns/op and the -benchmem pair, so allocs/op is anchored to the
// line end rather than adjacent to ns/op.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:.*\s([0-9]+) allocs/op)?\s*$`)

func main() {
	baselinePath := flag.String("baseline", "BENCH_hotpath.json", "committed baseline with the gate section")
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	fatalIf(err)
	var base baselineFile
	fatalIf(json.Unmarshal(raw, &base))
	if len(base.Gate.Benchmarks) == 0 {
		fatalIf(fmt.Errorf("%s: no gate.benchmarks entries", *baselinePath))
	}
	tol := base.Gate.NsToleranceFactor
	if tol <= 1 {
		fatalIf(fmt.Errorf("%s: gate.ns_tolerance_factor must be > 1 (got %v)", *baselinePath, tol))
	}

	results := make(map[string]result)
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		fatalIf(err)
		r := result{nsPerOp: ns}
		if m[3] != "" {
			r.allocsPerOp, err = strconv.ParseUint(m[3], 10, 64)
			fatalIf(err)
			r.hasAllocs = true
		}
		results[m[1]] = r
	}
	fatalIf(sc.Err())

	failures := 0
	fail := func(format string, args ...any) {
		failures++
		fmt.Printf("FAIL  "+format+"\n", args...)
	}
	names := make([]string, 0, len(base.Gate.Benchmarks))
	for name := range base.Gate.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		gate := base.Gate.Benchmarks[name]
		r, ok := results[name]
		if !ok {
			fail("%s: missing from input (did the benchmark run with -benchmem?)", name)
			continue
		}
		if !r.hasAllocs {
			fail("%s: no allocs/op column — run with -benchmem", name)
			continue
		}
		status := "ok  "
		if r.allocsPerOp > gate.MaxAllocsPerOp {
			fail("%s: %d allocs/op, budget %d", name, r.allocsPerOp, gate.MaxAllocsPerOp)
			status = "FAIL"
		}
		limit := gate.BaselineNsPerOp * tol
		if r.nsPerOp > limit {
			fail("%s: %.0f ns/op exceeds %.0f (baseline %.0f × %.0fx tolerance)",
				name, r.nsPerOp, limit, gate.BaselineNsPerOp, tol)
			status = "FAIL"
		}
		if status == "ok  " {
			fmt.Printf("ok    %s: %d allocs/op (budget %d), %.0f ns/op (limit %.0f)\n",
				name, r.allocsPerOp, gate.MaxAllocsPerOp, r.nsPerOp, limit)
		}
	}
	if failures > 0 {
		fmt.Printf("benchgate: %d failure(s)\n", failures)
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmark(s) within budget\n", len(base.Gate.Benchmarks))
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

// Command benchgate enforces the hot-path performance contract in CI.
// It reads `go test -bench -benchmem` output on stdin, compares every
// gated benchmark against the committed baseline (BENCH_hotpath.json),
// and exits non-zero when a benchmark is missing, allocates more than
// its pinned budget, or slows past the ns/op tolerance.
//
// Allocation counts are deterministic, so they gate exactly: the
// zero-allocation benchmarks must report 0 allocs/op even at
// -benchtime=1x. Wall-clock is noisy on shared CI runners — and wildly
// so at one iteration — so the time gate is a wide catastrophe net
// (baseline × tolerance factor), not a benchstat-grade comparison.
//
// Usage:
//
//	go test -run '^$' -bench '^BenchmarkHotPath' -benchmem -benchtime=1x ./... |
//	    go run ./cmd/benchgate -baseline BENCH_hotpath.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// baselineFile mirrors the gate section of BENCH_hotpath.json; fields
// outside "gate" are documentation and ignored here.
type baselineFile struct {
	Gate struct {
		NsToleranceFactor float64              `json:"ns_tolerance_factor"`
		Benchmarks        map[string]gateEntry `json:"benchmarks"`
	} `json:"gate"`
}

type gateEntry struct {
	MaxAllocsPerOp  uint64  `json:"max_allocs_per_op"`
	BaselineNsPerOp float64 `json:"baseline_ns_per_op"`
}

// result is one parsed benchmark output line.
type result struct {
	nsPerOp     float64
	allocsPerOp uint64
	hasAllocs   bool
}

// minNsLimit is the floor on the ns/op gate. A single-iteration
// measurement of a nanosecond-scale operation is dominated by timer
// granularity and benchmark-harness overhead (microseconds), so
// baseline × tolerance can be smaller than anything -benchtime=1x can
// physically report. The gate therefore never demands better than
// this floor; it only tightens the net for benchmarks whose scaled
// baseline already exceeds it.
const minNsLimit = 5000.0

// benchLine matches `BenchmarkName[-procs]  N  123 ns/op [custom metrics] [ 45 B/op  6 allocs/op]`.
// Custom b.ReportMetric columns (e.g. `1408992 node-steps/s`) may sit
// between ns/op and the -benchmem pair, so allocs/op is anchored to the
// line end rather than adjacent to ns/op.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:.*\s([0-9]+) allocs/op)?\s*$`)

// loadBaseline reads and sanity-checks the committed gate file.
func loadBaseline(path string) (baselineFile, error) {
	var base baselineFile
	raw, err := os.ReadFile(path)
	if err != nil {
		return base, err
	}
	if err := json.Unmarshal(raw, &base); err != nil {
		return base, fmt.Errorf("%s: %w", path, err)
	}
	if len(base.Gate.Benchmarks) == 0 {
		return base, fmt.Errorf("%s: no gate.benchmarks entries", path)
	}
	if tol := base.Gate.NsToleranceFactor; tol <= 1 {
		return base, fmt.Errorf("%s: gate.ns_tolerance_factor must be > 1 (got %v)", path, tol)
	}
	return base, nil
}

// parseResults extracts benchmark lines from `go test -bench` output.
func parseResults(in io.Reader) (map[string]result, error) {
	results := make(map[string]result)
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, err
		}
		r := result{nsPerOp: ns}
		if m[3] != "" {
			r.allocsPerOp, err = strconv.ParseUint(m[3], 10, 64)
			if err != nil {
				return nil, err
			}
			r.hasAllocs = true
		}
		results[m[1]] = r
	}
	return results, sc.Err()
}

// gate compares parsed results against the baseline, writes one
// verdict line per gated benchmark to out (sorted by name), and
// returns the failure count. A gated benchmark absent from results is
// a failure: a silently skipped gate is the regression this tool
// exists to catch.
func gate(base baselineFile, results map[string]result, out io.Writer) int {
	failures := 0
	fail := func(format string, args ...any) {
		failures++
		fmt.Fprintf(out, "FAIL  "+format+"\n", args...)
	}
	tol := base.Gate.NsToleranceFactor
	names := make([]string, 0, len(base.Gate.Benchmarks))
	for name := range base.Gate.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g := base.Gate.Benchmarks[name]
		r, ok := results[name]
		if !ok {
			fail("%s: missing from input (did the benchmark run with -benchmem?)", name)
			continue
		}
		if !r.hasAllocs {
			fail("%s: no allocs/op column — run with -benchmem", name)
			continue
		}
		passed := true
		if r.allocsPerOp > g.MaxAllocsPerOp {
			fail("%s: %d allocs/op, budget %d", name, r.allocsPerOp, g.MaxAllocsPerOp)
			passed = false
		}
		limit := g.BaselineNsPerOp * tol
		if limit < minNsLimit {
			limit = minNsLimit
		}
		if r.nsPerOp > limit {
			fail("%s: %.0f ns/op exceeds %.0f (baseline %.0f × %.0fx tolerance, floor %.0f)",
				name, r.nsPerOp, limit, g.BaselineNsPerOp, tol, minNsLimit)
			passed = false
		}
		if passed {
			fmt.Fprintf(out, "ok    %s: %d allocs/op (budget %d), %.0f ns/op (limit %.0f)\n",
				name, r.allocsPerOp, g.MaxAllocsPerOp, r.nsPerOp, limit)
		}
	}
	if failures > 0 {
		fmt.Fprintf(out, "benchgate: %d failure(s)\n", failures)
	} else {
		fmt.Fprintf(out, "benchgate: %d benchmark(s) within budget\n", len(base.Gate.Benchmarks))
	}
	return failures
}

// run wires the pipeline — baseline, stdin parse, gate — and returns
// the failure count; split from main so tests can drive it directly.
func run(baselinePath string, in io.Reader, out io.Writer) (int, error) {
	base, err := loadBaseline(baselinePath)
	if err != nil {
		return 0, err
	}
	results, err := parseResults(in)
	if err != nil {
		return 0, err
	}
	return gate(base, results, out), nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_hotpath.json", "committed baseline with the gate section")
	flag.Parse()

	failures, err := run(*baselinePath, os.Stdin, os.Stdout)
	fatalIf(err)
	if failures > 0 {
		os.Exit(1)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeBaseline drops a gate file into a temp dir and returns its path.
func writeBaseline(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const twoBenchGate = `{
  "gate": {
    "ns_tolerance_factor": 50,
    "benchmarks": {
      "BenchmarkHotPathSketchAdd":    {"max_allocs_per_op": 0, "baseline_ns_per_op": 18},
      "BenchmarkHotPathFlightRecord": {"max_allocs_per_op": 0, "baseline_ns_per_op": 45}
    }
  }
}`

// TestMissingBenchmarkFails pins the regression this tool exists to
// catch: a gated benchmark that silently stops running (renamed,
// deleted, filtered out by the -bench regexp) must fail the gate, not
// pass it by absence.
func TestMissingBenchmarkFails(t *testing.T) {
	base := writeBaseline(t, twoBenchGate)
	// Input carries only one of the two gated benchmarks.
	in := strings.NewReader(
		"BenchmarkHotPathSketchAdd-8   \t61571450\t        18.24 ns/op\t       0 B/op\t       0 allocs/op\n")
	var out strings.Builder
	failures, err := run(base, in, &out)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 1 {
		t.Fatalf("failures = %d, want 1\noutput:\n%s", failures, out.String())
	}
	if !strings.Contains(out.String(), "FAIL  BenchmarkHotPathFlightRecord: missing from input") {
		t.Fatalf("missing-benchmark verdict not reported:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "ok    BenchmarkHotPathSketchAdd") {
		t.Fatalf("present benchmark should still pass:\n%s", out.String())
	}
}

func TestAllBenchmarksWithinBudget(t *testing.T) {
	base := writeBaseline(t, twoBenchGate)
	in := strings.NewReader(strings.Join([]string{
		"goos: linux",
		"BenchmarkHotPathSketchAdd-8   \t61571450\t        18.24 ns/op\t       0 B/op\t       0 allocs/op",
		"BenchmarkHotPathFlightRecord-8\t26531120\t        45.43 ns/op\t       0 B/op\t       0 allocs/op",
		"PASS",
	}, "\n"))
	var out strings.Builder
	failures, err := run(base, in, &out)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 {
		t.Fatalf("failures = %d, want 0\noutput:\n%s", failures, out.String())
	}
	if !strings.Contains(out.String(), "benchgate: 2 benchmark(s) within budget") {
		t.Fatalf("summary line missing:\n%s", out.String())
	}
}

func TestAllocAndTimeOverruns(t *testing.T) {
	base := writeBaseline(t, twoBenchGate)
	in := strings.NewReader(strings.Join([]string{
		// 3 allocs/op against a budget of 0.
		"BenchmarkHotPathSketchAdd-8   \t1000000\t        18.24 ns/op\t      48 B/op\t       3 allocs/op",
		// 45 × 50 = 2250 ns limit; 9000 ns blows it.
		"BenchmarkHotPathFlightRecord-8\t1000000\t      9000.00 ns/op\t       0 B/op\t       0 allocs/op",
	}, "\n"))
	var out strings.Builder
	failures, err := run(base, in, &out)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 2 {
		t.Fatalf("failures = %d, want 2\noutput:\n%s", failures, out.String())
	}
	if !strings.Contains(out.String(), "3 allocs/op, budget 0") {
		t.Fatalf("alloc overrun not reported:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "ns/op exceeds") {
		t.Fatalf("time overrun not reported:\n%s", out.String())
	}
}

// TestMissingAllocsColumn: a run without -benchmem cannot certify the
// allocation budget, so it must fail rather than pass vacuously.
func TestMissingAllocsColumn(t *testing.T) {
	base := writeBaseline(t, `{
  "gate": {
    "ns_tolerance_factor": 50,
    "benchmarks": {"BenchmarkHotPathSketchAdd": {"max_allocs_per_op": 0, "baseline_ns_per_op": 18}}
  }
}`)
	in := strings.NewReader("BenchmarkHotPathSketchAdd-8   \t61571450\t        18.24 ns/op\n")
	var out strings.Builder
	failures, err := run(base, in, &out)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 1 || !strings.Contains(out.String(), "run with -benchmem") {
		t.Fatalf("failures = %d, output:\n%s", failures, out.String())
	}
}

// TestCustomMetricColumns: b.ReportMetric columns between ns/op and
// the -benchmem pair must not confuse the parser.
func TestCustomMetricColumns(t *testing.T) {
	base := writeBaseline(t, `{
  "gate": {
    "ns_tolerance_factor": 50,
    "benchmarks": {"BenchmarkHotPathFleetSketchTick": {"max_allocs_per_op": 0, "baseline_ns_per_op": 54685}}
  }
}`)
	in := strings.NewReader(
		"BenchmarkHotPathFleetSketchTick-8\t21914\t     54685 ns/op\t   1408992 node-steps/s\t       0 B/op\t       0 allocs/op\n")
	var out strings.Builder
	failures, err := run(base, in, &out)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 {
		t.Fatalf("failures = %d, want 0\noutput:\n%s", failures, out.String())
	}
}

func TestBadBaselineRejected(t *testing.T) {
	cases := map[string]string{
		"empty gate":   `{"gate": {"ns_tolerance_factor": 50, "benchmarks": {}}}`,
		"tolerance<=1": `{"gate": {"ns_tolerance_factor": 1, "benchmarks": {"BenchmarkX": {"max_allocs_per_op": 0, "baseline_ns_per_op": 1}}}}`,
		"not json":     `not json at all`,
	}
	for name, body := range cases {
		base := writeBaseline(t, body)
		var out strings.Builder
		if _, err := run(base, strings.NewReader(""), &out); err == nil {
			t.Errorf("%s: run accepted a bad baseline", name)
		}
	}
	var out strings.Builder
	if _, err := run(filepath.Join(t.TempDir(), "absent.json"), strings.NewReader(""), &out); err == nil {
		t.Error("run accepted a nonexistent baseline path")
	}
}

// Command spanlint validates a Perfetto trace exported by
// `magusd -spans` (or magus.WritePerfettoTrace): the JSON must parse,
// carry at least one decision span, and the embedded power-waste
// ledger must balance — baseline + useful + waste == total, for the
// run bucket and every window, within a sample-scaled ulp tolerance.
// CI runs it as the spans smoke step; exit status is non-zero with a
// one-line reason when any check fails.
//
// Usage:
//
//	spanlint trace.json
//	spanlint -min-decisions 10 trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
)

// energy mirrors the writeEnergyObject JSON shape in internal/spans.
type energy struct {
	BaselineJ float64 `json:"baseline_j"`
	UsefulJ   float64 `json:"useful_j"`
	WasteJ    float64 `json:"waste_j"`
	TotalJ    float64 `json:"total_j"`
	Seconds   float64 `json:"seconds"`
}

type trace struct {
	TraceEvents []struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
	} `json:"traceEvents"`
	MagusWaste struct {
		Run     energy `json:"run"`
		Windows []struct {
			Index  int    `json:"index"`
			Energy energy `json:"energy"`
		} `json:"windows"`
		Phases []struct {
			Name   string `json:"name"`
			Energy energy `json:"energy"`
		} `json:"phases"`
	} `json:"magusWaste"`
}

func main() {
	minDec := flag.Int("min-decisions", 1, "minimum decision spans the trace must carry")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: spanlint [-min-decisions n] trace.json")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)

	data, err := os.ReadFile(path)
	fatalIf(err)
	var tr trace
	if err := json.Unmarshal(data, &tr); err != nil {
		fatalIf(fmt.Errorf("%s: not valid trace-event JSON: %w", path, err))
	}

	counts := map[string]int{}
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "X" {
			counts[ev.Name]++
		}
	}
	if counts["run"] != 1 {
		fatalIf(fmt.Errorf("%s: %d run spans, want exactly 1", path, counts["run"]))
	}
	if counts["decision"] < *minDec {
		fatalIf(fmt.Errorf("%s: %d decision spans, want >= %d", path, counts["decision"], *minDec))
	}

	w := tr.MagusWaste
	if w.Run.TotalJ <= 0 || w.Run.Seconds <= 0 {
		fatalIf(fmt.Errorf("%s: ledger attributed no uncore energy (total %g J over %g s)",
			path, w.Run.TotalJ, w.Run.Seconds))
	}
	fatalIf(checkBalance(path, "run", w.Run))
	var winSum float64
	for _, win := range w.Windows {
		fatalIf(checkBalance(path, fmt.Sprintf("window %d", win.Index), win.Energy))
		winSum += win.Energy.TotalJ
	}
	// Windows tile the run: their totals must re-add to the run total.
	if len(w.Windows) > 0 {
		if err := relClose("windows sum vs run total", winSum, w.Run.TotalJ); err != nil {
			fatalIf(fmt.Errorf("%s: %w", path, err))
		}
	}
	var phaseSum float64
	for _, ph := range w.Phases {
		fatalIf(checkBalance(path, "phase "+ph.Name, ph.Energy))
		phaseSum += ph.Energy.TotalJ
	}
	if len(w.Phases) > 0 {
		if err := relClose("phases sum vs run total", phaseSum, w.Run.TotalJ); err != nil {
			fatalIf(fmt.Errorf("%s: %w", path, err))
		}
	}

	fmt.Printf("%s: ok — %d spans (%d decisions, %d msr writes), %d windows, %d phases; "+
		"uncore %.1f J = baseline %.1f + useful %.1f + waste %.1f\n",
		path, total(counts), counts["decision"], counts["msr_write"],
		len(w.Windows), len(w.Phases),
		w.Run.TotalJ, w.Run.BaselineJ, w.Run.UsefulJ, w.Run.WasteJ)
}

// checkBalance verifies baseline + useful + waste == total for one
// bucket. The exporter rounds each float to its shortest decimal
// form independently, so allow a relative slack well above ulp noise
// but far below any real attribution error.
func checkBalance(path, scope string, e energy) error {
	sum := e.BaselineJ + e.UsefulJ + e.WasteJ
	if err := relClose(scope+" balance", sum, e.TotalJ); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if e.BaselineJ < 0 || e.UsefulJ < 0 || e.WasteJ < 0 {
		return fmt.Errorf("%s: %s has a negative component (%+.3g/%+.3g/%+.3g)",
			path, scope, e.BaselineJ, e.UsefulJ, e.WasteJ)
	}
	return nil
}

func relClose(what string, got, want float64) error {
	diff := math.Abs(got - want)
	if diff <= 1e-6*math.Max(1, math.Abs(want)) {
		return nil
	}
	return fmt.Errorf("%s does not hold: %.9g vs %.9g (diff %.3g J)", what, got, want, diff)
}

func total(counts map[string]int) int {
	n := 0
	for _, c := range counts {
		n += c
	}
	return n
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "spanlint:", err)
		os.Exit(1)
	}
}

// Command magus-trace dumps the raw time-series data behind the
// paper's trace figures as CSV, ready for any plotting tool:
//
//	magus-trace -fig 1 -out fig1.csv   # UNet core/GPU/uncore frequencies
//	magus-trace -fig 2 -out fig2.csv   # UNet power at uncore extremes
//	magus-trace -fig 5 -out fig5.csv   # SRAD throughput, four policies
//	magus-trace -fig 6 -out fig6.csv   # SRAD uncore frequency, three policies
//	magus-trace -list                  # figures with trace output
//
// Columns are aligned on each run's own time axis; runs of different
// lengths are padded by sample-and-hold of the final value.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	magus "github.com/spear-repro/magus"
	"github.com/spear-repro/magus/internal/report"
	"github.com/spear-repro/magus/internal/safeio"
	"github.com/spear-repro/magus/internal/telemetry"
)

// figures names every figure with trace output, in order.
var figures = []struct {
	id   int
	desc string
}{
	{1, "UNet core/GPU/uncore frequencies under the vendor default"},
	{2, "UNet package power at the uncore extremes"},
	{5, "SRAD memory throughput under four policies"},
	{6, "SRAD uncore frequency under three policies"},
}

func main() {
	var (
		fig  = flag.Int("fig", 1, "figure to trace: 1, 2, 5 or 6 (see -list)")
		out  = flag.String("out", "", "output CSV path (default stdout)")
		seed = flag.Int64("seed", 1, "workload seed")
		list = flag.Bool("list", false, "list the figures with trace output and exit")
	)
	flag.Parse()

	if *list {
		for _, f := range figures {
			fmt.Printf("%d\t%s\n", f.id, f.desc)
		}
		return
	}

	opt := magus.ExperimentOptions{Repeats: 1, Seed: *seed}

	var names []string
	series := map[string]*telemetry.Series{}
	switch *fig {
	case 1:
		res, err := magus.ReproduceFigure1(opt)
		fatalIf(err)
		for i, s := range res.CoreGHz {
			n := fmt.Sprintf("core%d_ghz", i)
			names = append(names, n)
			series[n] = s
		}
		names = append(names, "gpu_clock_mhz", "uncore_ghz")
		series["gpu_clock_mhz"] = res.GPUClockMHz
		series["uncore_ghz"] = res.UncoreGHz
	case 2:
		res, err := magus.ReproduceFigure2(opt)
		fatalIf(err)
		names = []string{"pkg_power_max_uncore_w", "pkg_power_min_uncore_w"}
		series[names[0]] = res.CPUPowerMax
		series[names[1]] = padTo(res.CPUPowerMin, res.CPUPowerMax.Len())
		// The max-uncore run is shorter; align on the longer axis.
		if res.CPUPowerMin.Len() > res.CPUPowerMax.Len() {
			series[names[0]] = padTo(res.CPUPowerMax, res.CPUPowerMin.Len())
			series[names[1]] = res.CPUPowerMin
			names[0], names[1] = names[1], names[0]
		}
	case 5:
		res, err := magus.ReproduceFigure5(opt)
		fatalIf(err)
		longest := maxLen(res.MaxUncore, res.MinUncore, res.MAGUS, res.UPS)
		names = []string{"max_uncore_gbs", "min_uncore_gbs", "magus_gbs", "ups_gbs"}
		series[names[0]] = padTo(res.MaxUncore, longest)
		series[names[1]] = padTo(res.MinUncore, longest)
		series[names[2]] = padTo(res.MAGUS, longest)
		series[names[3]] = padTo(res.UPS, longest)
	case 6:
		res, err := magus.ReproduceFigure6(opt)
		fatalIf(err)
		longest := maxLen(res.Default, res.UPS, res.MAGUS)
		names = []string{"default_ghz", "ups_ghz", "magus_ghz"}
		series[names[0]] = padTo(res.Default, longest)
		series[names[1]] = padTo(res.UPS, longest)
		series[names[2]] = padTo(res.MAGUS, longest)
	default:
		fatalIf(fmt.Errorf("figure %d has no trace output (supported: 1, 2, 5, 6 — run magus-trace -list)", *fig))
	}

	if *out != "" {
		fatalIf(safeio.WriteFile(*out, func(w io.Writer) error {
			return report.WriteCSV(w, names, series)
		}))
		fmt.Fprintf(os.Stderr, "magus-trace: wrote %s\n", *out)
	} else {
		fatalIf(report.WriteCSV(os.Stdout, names, series))
	}
}

// padTo extends a series to n samples by holding its last value on a
// continuation of its own sampling grid.
func padTo(s *telemetry.Series, n int) *telemetry.Series {
	if s.Len() >= n {
		return s
	}
	out := &telemetry.Series{
		Times:  append([]float64(nil), s.Times...),
		Values: append([]float64(nil), s.Values...),
	}
	dt := 0.1
	if s.Len() >= 2 {
		dt = s.Times[1] - s.Times[0]
	}
	last := s.Values[s.Len()-1]
	t := s.Times[s.Len()-1]
	for out.Len() < n {
		t += dt
		out.Append(t, last)
	}
	return out
}

func maxLen(ss ...*telemetry.Series) int {
	m := 0
	for _, s := range ss {
		if s.Len() > m {
			m = s.Len()
		}
	}
	return m
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "magus-trace:", err)
		os.Exit(1)
	}
}

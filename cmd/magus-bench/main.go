// Command magus-bench regenerates the paper's evaluation: every
// subplot of Figure 4, the SRAD case study (Figures 5–6), the
// threshold sensitivity sweep (Figure 7), the Jaccard table (Table 1)
// and the overhead table (Table 2), plus the motivation experiments
// (Figures 1–2).
//
// Usage:
//
//	magus-bench -all                 # everything, paper methodology
//	magus-bench -fig 4a -reps 5      # one experiment
//	magus-bench -tab 2 -idle 10m
//	magus-bench -fig 7 -app unet
//	magus-bench -ext ablation        # extension studies: ablation,
//	magus-bench -ext cluster         # cluster budgets, NUMA per-socket
//	magus-bench -ext numa            # scaling, measurement noise
//	magus-bench -ext noise -app unet
//	magus-bench -ext faults -app srad  # fault-injection robustness sweep
//	magus-bench -waste -app srad       # power-waste attribution ledger
//	magus-bench -tournament -app srad  # governor tournament, MAGUS
//	                                   # variants forked from shared
//	                                   # prefixes (-scratch to disable)
//
// Output is aligned ASCII tables with sparkline trace previews.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	magus "github.com/spear-repro/magus"
	"github.com/spear-repro/magus/internal/prof"
	"github.com/spear-repro/magus/internal/report"
	"github.com/spear-repro/magus/internal/safeio"
)

func main() {
	var (
		all     = flag.Bool("all", false, "run every experiment")
		fig     = flag.String("fig", "", "figure to regenerate: 1, 2, 4a, 4b, 4c, 5, 6, 7")
		tab     = flag.String("tab", "", "table to regenerate: 1, 2")
		ext     = flag.String("ext", "", "extension study: ablation, cluster, numa, noise, faults")
		waste   = flag.Bool("waste", false, "power-waste attribution ledger for -app under each governor")
		tenants = flag.Bool("tenants", false, "co-located tenant study: per-tenant energy attribution across\nnoisy-neighbor, fractional-GPU and burst colocations")
		tourn   = flag.Bool("tournament", false, "governor tournament for -app: default/UPS/DUF/MAGUS and\nMAGUS parameter variants, variants forked from shared prefixes")
		scratch = flag.Bool("scratch", false, "with -tournament: disable fork-from-prefix sharing\n(reference mode; output is byte-identical either way)")
		fleet   = flag.Bool("fleet", false, "fleet-scale study: -nodes mixed-preset members under\ndefault/MAGUS/UPS through the sharded cluster engine")
		nodes   = flag.Int("nodes", 1000, "fleet size for -fleet")
		dist    = flag.Bool("dist", false, "with -fleet: fleet-wide distribution telemetry — quantile-sketch\np50/p90/p99/max of node power, uncore ratio, waste rate and\nattained bandwidth (exported as magus_fleet_* with -metrics)")
		reps    = flag.Int("reps", 5, "repeats per experiment cell")
		seed    = flag.Int64("seed", 1, "base seed")
		jobs    = flag.Int("jobs", 0, "parallel experiment cells (0 = GOMAXPROCS);\noutput is byte-identical for any value")
		app     = flag.String("app", "srad", "application for the Figure 7 sweep")
		idle    = flag.Duration("idle", 10*time.Minute, "idle window for Table 2")
		metrics = flag.String("metrics", "", "dump accumulated run metrics (Prometheus text format)\nto this path when the suite finishes")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the suite to this path\n(inspect with `go tool pprof`; see docs/PERF.md)")
		memProf = flag.String("memprofile", "", "write a heap profile taken after the suite to this path")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	fatalIf(err)

	opt := magus.ExperimentOptions{Repeats: *reps, Seed: *seed, Jobs: *jobs}
	if *metrics != "" {
		opt.Obs = magus.NewObserver(nil, nil)
	}
	ran := false
	want := func(f string) bool { return *all || *fig == f }
	wantTab := func(t string) bool { return *all || *tab == t }

	if want("1") {
		ran = true
		figure1(opt)
	}
	if want("2") {
		ran = true
		figure2(opt)
	}
	for _, sys := range []struct{ id, system string }{
		{"4a", "Intel+A100"}, {"4b", "Intel+Max1550"}, {"4c", "Intel+4A100"},
	} {
		if want(sys.id) {
			ran = true
			figure4(sys.id, sys.system, opt)
		}
	}
	if want("5") {
		ran = true
		figure5(opt)
	}
	if want("6") {
		ran = true
		figure6(opt)
	}
	if want("7") {
		ran = true
		figure7(*app, opt)
	}
	if wantTab("1") {
		ran = true
		table1(opt)
	}
	if wantTab("2") {
		ran = true
		table2(*idle, opt)
	}
	if *all || *ext == "ablation" {
		ran = true
		ablation(opt)
	}
	if *all || *ext == "cluster" {
		ran = true
		clusterStudy()
	}
	if *all || *ext == "numa" {
		ran = true
		numaStudy(opt)
	}
	if *all || *ext == "noise" {
		ran = true
		noiseStudy(*app, opt)
	}
	if *all || *ext == "faults" {
		ran = true
		faultStudy(*app, opt)
	}
	if *all || *waste {
		ran = true
		wasteStudy(*app, opt)
	}
	if *all || *tenants {
		ran = true
		tenantStudy(opt)
	}
	if *all || *tourn {
		ran = true
		tournament(*app, *seed, *jobs, *scratch)
	}
	if *all || *fleet {
		ran = true
		fleetStudy(*nodes, *seed, *jobs, *dist, opt.Obs)
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
	if *metrics != "" {
		fatalIf(safeio.WriteFile(*metrics, opt.Obs.Registry().WriteText))
		fmt.Printf("metrics written to %s (%d families)\n", *metrics, len(opt.Obs.Registry().Families()))
	}
	fatalIf(stopProf())
	if *cpuProf != "" {
		fmt.Printf("cpu profile written to %s\n", *cpuProf)
	}
	if *memProf != "" {
		fmt.Printf("heap profile written to %s\n", *memProf)
	}
}

func ablation(opt magus.ExperimentOptions) {
	res, err := magus.RunAblation(opt)
	fatalIf(err)
	fmt.Println("== Extension: ablation of MAGUS design choices (Intel+A100) ==")
	t := report.NewTable("Variant", "App", "Loss%", "Power%", "Energy%")
	for _, r := range res.Rows {
		t.AddRow(r.Variant, r.App, r.PerfLossPct, r.PowerSavingPct, r.EnergySavingPct)
	}
	fmt.Print(t)
	fmt.Println()
}

func numaStudy(opt magus.ExperimentOptions) {
	res, err := magus.RunNUMAStudy(opt)
	fatalIf(err)
	fmt.Println("== Extension: per-socket scaling on a NUMA-imbalanced workload ==")
	t := report.NewTable("Policy", "Loss%", "Power%", "Energy%")
	t.AddRow("magus (single domain)", res.Global.PerfLossPct, res.Global.PowerSavingPct, res.Global.EnergySavingPct)
	t.AddRow("magus-persocket", res.PerSocket.PerfLossPct, res.PerSocket.PowerSavingPct, res.PerSocket.EnergySavingPct)
	fmt.Print(t)
	fmt.Println()
}

func faultStudy(app string, opt magus.ExperimentOptions) {
	res, err := magus.RunFaultSweep(app, nil, opt)
	fatalIf(err)
	fmt.Printf("== Extension: MAGUS under injected telemetry faults (%s) ==\n", res.App)
	fmt.Printf("clean MAGUS runtime %.2f s, vendor default %.2f s\n", res.CleanRuntimeS, res.DefaultRuntimeS)
	t := report.NewTable("Plan", "Runtime s", "Loss% vs clean", "Energy% vs clean", "Fired", "Missed", "Lost cyc", "Recov")
	for _, p := range res.Points {
		t.AddRow(p.Plan, p.RuntimeS, p.PerfLossPct, p.EnergySavingPct,
			p.Injected.Total(), p.Resilience.MissedSamples, p.Resilience.LostCycles, p.Resilience.Recoveries)
	}
	fmt.Print(t)
	fmt.Println()
}

func wasteStudy(app string, opt magus.ExperimentOptions) {
	res, err := magus.RunWasteStudy("a100", app, opt)
	fatalIf(err)
	fmt.Printf("== Power-waste attribution ledger (%s on %s) ==\n", res.Workload, res.System)
	fmt.Print(res.Table())
	for _, c := range res.Cells {
		fmt.Printf("%-8s %3d windows, %3d decisions, ledger balanced=%v, runtime %.2f s\n",
			c.Governor, c.Windows, c.Decisions, c.Balanced, c.Result.RuntimeS)
	}
	fmt.Println()
}

func tenantStudy(opt magus.ExperimentOptions) {
	res, err := magus.RunTenantStudy("a100", opt)
	fatalIf(err)
	fmt.Printf("== Per-tenant energy attribution for co-located workloads (%s) ==\n", res.System)
	fmt.Print(res.Table())
	for _, c := range res.Cells {
		r := c.Report
		fmt.Printf("%-14s %-8s policy=%-11s balanced=%v ledger_balanced=%v total=%.1f J runtime %.2f s\n",
			c.Scenario, c.Governor, c.Policy, c.Balanced, c.LedgerBalanced, r.TotalJ, c.Result.RuntimeS)
		for _, t := range r.Tenants {
			fmt.Printf("  tenant %-10s estimated=%-5v exact=%.1f J estimated=%.1f J (%.2f s exact, %.2f s estimated)\n",
				t.Tenant, t.Estimated(), t.ExactJ, t.EstimatedJ, t.ExactS, t.EstimatedS)
		}
	}
	fmt.Println()
}

func noiseStudy(app string, opt magus.ExperimentOptions) {
	res, err := magus.RunNoiseStudy(app, opt)
	fatalIf(err)
	fmt.Printf("== Extension: MAGUS under measurement noise (%s) ==\n", res.App)
	t := report.NewTable("Noise amplitude", "Loss%", "Power%", "Energy%")
	for _, p := range res.Points {
		t.AddRow(p.Amplitude, p.PerfLossPct, p.PowerSavingPct, p.EnergySavingPct)
	}
	fmt.Print(t)
	fmt.Println()
}

func clusterStudy() {
	var apps []*magus.Workload
	for _, name := range []string{"bfs", "gemm", "where", "raytracing"} {
		p, ok := magus.WorkloadByName(name)
		if !ok {
			fatalIf(fmt.Errorf("workload %s missing", name))
		}
		apps = append(apps, p)
	}
	baseSpecs, err := magus.UniformCluster(magus.IntelA100(), apps, 6, nil, 1)
	fatalIf(err)
	base, err := magus.RunCluster(baseSpecs, 100*time.Millisecond)
	fatalIf(err)
	tunedSpecs, err := magus.UniformCluster(magus.IntelA100(), apps, 6,
		func() magus.Governor { return magus.NewRuntime(magus.DefaultConfig()) }, 1)
	fatalIf(err)
	tuned, err := magus.RunCluster(tunedSpecs, 100*time.Millisecond)
	fatalIf(err)
	budget := base.PeakW * 0.92
	fmt.Println("== Extension: six-node batch under a cluster power budget (§6.1) ==")
	t := report.NewTable("Policy", "Peak (W)", "Avg (W)", "Energy (J)", "Makespan (s)", "Time over budget %")
	t.AddRow("default", base.PeakW, base.AvgW, base.EnergyJ, base.MakespanS, base.TimeOverBudget(budget)*100)
	t.AddRow("magus", tuned.PeakW, tuned.AvgW, tuned.EnergyJ, tuned.MakespanS, tuned.TimeOverBudget(budget)*100)
	fmt.Print(t)
	fmt.Printf("budget = %.0f W (92 %% of the unmanaged peak)\n", budget)
	fmt.Printf("aggregate power: default %s\n", report.Sparkline(base.Aggregate, 60))
	fmt.Printf("                 magus   %s\n\n", report.Sparkline(tuned.Aggregate, 60))
}

// fleetStudy renders the fleet-scale governor comparison. Each row
// ends with a greppable `balanced=true` marker when the uncore waste
// ledger closes (baseline + useful + waste == integrated total); CI's
// fleet smoke asserts one marker per governor row. With dist set, the
// rows additionally carry the fleet-wide quantile-sketch summaries
// (and the magus_fleet_* families land in obsrv's registry for
// -metrics; CI's fleet smoke asserts finite p99 rows there).
func fleetStudy(nodes int, seed int64, jobs int, dist bool, obsrv *magus.Observer) {
	res, err := magus.RunFleetStudy(magus.FleetStudyOptions{
		Nodes: nodes, Seed: seed, Shards: jobs, Dist: dist, Obs: obsrv,
	})
	fatalIf(err)
	fmt.Printf("== Extension: %d-node mixed-preset fleet under a power budget ==\n", res.Nodes)
	t := report.NewTable("Policy", "Peak (W)", "Avg (W)", "Energy", "Makespan (s)", "Time over budget %")
	for _, c := range res.Cells {
		t.AddRow(c.Governor, c.PeakW, c.AvgW, report.Humanize(c.EnergyJ, "J"),
			c.MakespanS, c.OverBudgetFrac*100)
	}
	fmt.Print(t)
	fmt.Printf("budget = %s (92 %% of the unmanaged peak)\n", report.Humanize(res.BudgetW, "W"))

	fmt.Println("uncore energy attribution (fleet ledger):")
	var rows []report.WasteRow
	for _, c := range res.Cells {
		w := c.Waste
		rows = append(rows, report.WasteRow{
			Scope: c.Governor, BaselineJ: w.BaselineJ, UsefulJ: w.UsefulJ,
			WasteJ: w.WasteJ, TotalJ: w.TotalJ, Seconds: w.Seconds,
		})
	}
	fmt.Print(report.WasteTable(rows))
	for _, c := range res.Cells {
		fmt.Printf("ledger %s: waste %s of %s uncore balanced=%v\n",
			c.Governor, report.Humanize(c.Waste.WasteJ, "J"),
			report.Humanize(c.Waste.TotalJ, "J"), c.WasteBalanced)
	}
	for _, c := range res.Cells {
		fmt.Printf("top members (%s):\n", c.Governor)
		for _, m := range c.Top {
			fmt.Printf("  #%d %-8s %-12s %-10s %s peak %s done %.1fs\n",
				m.Index, m.Name, m.Workload, m.Governor,
				report.Humanize(m.EnergyJ, "J"), report.Humanize(m.PeakW, "W"), m.DoneS)
		}
	}
	for _, c := range res.Cells {
		if c.Dist == nil {
			continue
		}
		fmt.Printf("fleet distributions (%s, quantile sketch merged across shards):\n", c.Governor)
		fmt.Print(report.DistTable([]report.DistRow{
			distRow("node power (W)", c.Dist.NodePowerW),
			distRow("uncore ratio", c.Dist.UncoreRatio),
			distRow("uncore waste (W)", c.Dist.WasteW),
			distRow("attained (GB/s)", c.Dist.AttainedGBs),
		}))
	}
	fmt.Println()
}

// distRow flattens one sketch summary into a report row.
func distRow(metric string, s magus.DistSummary) report.DistRow {
	return report.DistRow{
		Metric: metric, Count: s.Count, Min: s.Min,
		P50: s.P50, P90: s.P90, P99: s.P99, Max: s.Max, Mean: s.Mean,
	}
}

func figure1(opt magus.ExperimentOptions) {
	res, err := magus.ReproduceFigure1(opt)
	fatalIf(err)
	fmt.Println("== Figure 1: UNet profiling under the vendor default (Intel+A100) ==")
	fmt.Printf("core0 freq (GHz)   %s\n", report.Sparkline(res.CoreGHz[0], 60))
	fmt.Printf("core1 freq (GHz)   %s\n", report.Sparkline(res.CoreGHz[1], 60))
	fmt.Printf("GPU SM clock (MHz) %s\n", report.Sparkline(res.GPUClockMHz, 60))
	fmt.Printf("uncore freq (GHz)  %s   <- pinned at max\n", report.Sparkline(res.UncoreGHz, 60))
	fmt.Printf("uncore min/max over run: %.2f / %.2f GHz\n\n",
		seriesMin(res.UncoreGHz), res.UncoreGHz.Max())
}

func figure2(opt magus.ExperimentOptions) {
	res, err := magus.ReproduceFigure2(opt)
	fatalIf(err)
	fmt.Println("== Figure 2: UNet power profiles at uncore extremes (Intel+A100) ==")
	t := report.NewTable("Uncore", "Runtime (s)", "Avg CPU power (W)", "Pkg+DRAM energy (J)")
	t.AddRow("max (2.2 GHz)", res.MaxUncore.RuntimeS, res.MaxUncore.AvgCPUPowerW,
		res.MaxUncore.PkgEnergyJ+res.MaxUncore.DramEnergyJ)
	t.AddRow("min (0.8 GHz)", res.MinUncore.RuntimeS, res.MinUncore.AvgCPUPowerW,
		res.MinUncore.PkgEnergyJ+res.MinUncore.DramEnergyJ)
	fmt.Print(t)
	fmt.Printf("package power drop: %.1f W; runtime increase: %.1f %% (paper: ≈82 W, ≈21 %%)\n",
		res.PkgPowerDropW, res.RuntimeIncreasePct)
	fmt.Printf("pkg power @max %s\n", report.Sparkline(res.CPUPowerMax, 60))
	fmt.Printf("pkg power @min %s\n\n", report.Sparkline(res.CPUPowerMin, 60))
}

func figure4(id, system string, opt magus.ExperimentOptions) {
	res, err := magus.ReproduceFigure4(system, opt)
	fatalIf(err)
	fmt.Printf("== Figure %s: end-to-end comparison on %s (%d repeats) ==\n", id, system, opt.Repeats)
	t := report.NewTable("App",
		"MAGUS loss%", "MAGUS pwr%", "MAGUS energy%",
		"UPS loss%", "UPS pwr%", "UPS energy%")
	for _, a := range res.Apps {
		t.AddRow(a.App,
			a.MAGUS.PerfLossPct, a.MAGUS.PowerSavingPct, a.MAGUS.EnergySavingPct,
			a.UPS.PerfLossPct, a.UPS.PowerSavingPct, a.UPS.EnergySavingPct)
	}
	fmt.Print(t)
	fmt.Printf("MAGUS: max energy saving %.1f %%, worst perf loss %.1f %%\n\n",
		res.MaxEnergySaving(), res.MaxPerfLoss())
}

func figure5(opt magus.ExperimentOptions) {
	res, err := magus.ReproduceFigure5(opt)
	fatalIf(err)
	fmt.Println("== Figure 5: SRAD memory throughput (Intel+A100) ==")
	fmt.Printf("max uncore %s peak %.0f GB/s\n", report.Sparkline(res.MaxUncore, 60), res.MaxUncore.Max())
	fmt.Printf("min uncore %s peak %.0f GB/s\n", report.Sparkline(res.MinUncore, 60), res.MinUncore.Max())
	fmt.Printf("MAGUS      %s peak %.0f GB/s\n", report.Sparkline(res.MAGUS, 60), res.MAGUS.Max())
	fmt.Printf("UPS        %s peak %.0f GB/s\n", report.Sparkline(res.UPS, 60), res.UPS.Max())
	fmt.Printf("MAGUS vs default: loss %.1f %%, power %.1f %%, energy %.1f %%\n",
		res.MAGUSvsDefault.PerfLossPct, res.MAGUSvsDefault.PowerSavingPct, res.MAGUSvsDefault.EnergySavingPct)
	fmt.Printf("UPS   vs default: loss %.1f %%, power %.1f %%, energy %.1f %%\n\n",
		res.UPSvsDefault.PerfLossPct, res.UPSvsDefault.PowerSavingPct, res.UPSvsDefault.EnergySavingPct)
}

func figure6(opt magus.ExperimentOptions) {
	res, err := magus.ReproduceFigure6(opt)
	fatalIf(err)
	fmt.Println("== Figure 6: SRAD uncore frequency traces (Intel+A100) ==")
	fmt.Printf("default %s flat at %.1f GHz\n", report.Sparkline(res.Default, 60), res.Default.Max())
	fmt.Printf("UPS     %s min %.1f GHz\n", report.Sparkline(res.UPS, 60), seriesMin(res.UPS))
	fmt.Printf("MAGUS   %s min %.1f GHz, %d high-freq overrides\n\n",
		report.Sparkline(res.MAGUS, 60), seriesMin(res.MAGUS), res.MAGUSHighFreqOverrides)
}

func figure7(app string, opt magus.ExperimentOptions) {
	res, err := magus.ReproduceFigure7(app, opt)
	fatalIf(err)
	fmt.Printf("== Figure 7: threshold sensitivity on %s (%d configurations) ==\n", app, len(res.Points))
	t := report.NewTable("inc (GB/s)", "dec (GB/s)", "high-freq", "runtime (s)", "energy (J)", "frontier")
	for i, p := range res.Points {
		mark := ""
		if p.OnFrontier {
			mark = "*"
		}
		if i == res.Default {
			mark += " <- default"
		}
		t.AddRow(p.IncGBs, p.DecGBs, p.HighFreq, p.RuntimeS, p.EnergyJ, mark)
	}
	fmt.Print(t)
	fmt.Printf("default set distance to frontier (normalised): %.4f\n\n", res.DefaultDistance())
}

func table1(opt magus.ExperimentOptions) {
	res, err := magus.ReproduceTable1(opt)
	fatalIf(err)
	fmt.Println("== Table 1: Jaccard similarity of memory-throughput bursts (MAGUS vs baseline) ==")
	t := report.NewTable("App", "Jaccard")
	for _, r := range res.Rows {
		t.AddRow(r.App, r.Jaccard)
	}
	fmt.Print(t)
	fmt.Printf("mean %.2f over %d apps (bins=%d, threshold=%.0f %% of baseline peak)\n\n",
		res.Mean(), len(res.Rows), res.Bins, res.ThresholdFrac*100)
}

func table2(idle time.Duration, opt magus.ExperimentOptions) {
	res, err := magus.ReproduceTable2(idle, opt)
	fatalIf(err)
	fmt.Printf("== Table 2: idle runtime overheads (%v window) ==\n", res.IdleWindow)
	t := report.NewTable("System", "Method", "Power overhead %", "Invocation (s)")
	for _, r := range res.Rows {
		t.AddRow(r.System, r.Method, r.PowerOverheadPct, r.InvocationS)
	}
	fmt.Print(t)
	fmt.Println()
}

func seriesMin(s *magus.Series) float64 {
	m := s.Values[0]
	for _, v := range s.Values {
		if v < m {
			m = v
		}
	}
	return m
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "magus-bench:", err)
		os.Exit(1)
	}
}

func tournament(app string, seed int64, jobs int, scratch bool) {
	res, err := magus.RunTournament(magus.TournamentOptions{
		Apps: []string{app}, Seed: seed, Jobs: jobs, Scratch: scratch,
	})
	fatalIf(err)
	mode := "fork-from-prefix"
	if scratch {
		mode = "from scratch"
	}
	fmt.Printf("== Governor tournament (%s, %s) ==\n", app, mode)
	fmt.Print(res.Table())
	forked, shared := 0, 0
	for _, c := range res.Cells {
		if c.Forked {
			forked++
		}
		if c.SharedPrefix {
			shared++
		}
	}
	fmt.Printf("%d cells: %d forked from a shared prefix, %d reused the base run outright; %.1f virtual seconds not re-executed\n\n",
		len(res.Cells), forked, shared, res.SharedSeconds())
}

// Command magusd runs an uncore frequency-scaling governor against a
// simulated heterogeneous node executing one application, streaming
// decisions as they happen and printing the run's energy metrics —
// the closest analogue of deploying the paper's user-transparent
// runtime daemon on a compute node.
//
// Usage:
//
//	magusd -system a100 -workload unet -governor magus -verbose
//	magusd -system 4a100 -workload gromacs -governor ups -compare
//	magusd -workload srad -governor magus -trace srad.csv -record srad.json
//	magusd -workload-file myjob.json -power-cap 180 -compare
//	magusd -workload srad -faults pcm-outage -compare
//	magusd -workload srad -spans srad-spans.json   # ui.perfetto.dev
//	magusd -dump-workload unet > unet.json
//	magusd serve -listen :9900                     # multi-tenant daemon
//
// Governors: magus (default), ups, duf, default (vendor), max, min; any of
// them composes with -power-cap (RAPL PL1). With -compare, the
// vendor-default baseline runs first and the summary reports the
// paper's three metrics against it.
//
// `magusd serve` switches to daemon mode: a session manager running
// one deterministic governor session per tenant over an HTTP API, with
// admission control, backpressure and graceful degradation under
// overload (see docs/SERVE.md and `magusd serve -h`).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	magus "github.com/spear-repro/magus"
	"github.com/spear-repro/magus/internal/prof"
	"github.com/spear-repro/magus/internal/report"
	"github.com/spear-repro/magus/internal/safeio"
	"github.com/spear-repro/magus/internal/serve"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		runServe(os.Args[2:])
		return
	}
	var (
		system   = flag.String("system", "a100", "system preset: a100, 4a100, max1550")
		workload = flag.String("workload", "unet", "catalog application to execute")
		wlFile   = flag.String("workload-file", "", "JSON workload definition (overrides -workload)")
		govName  = flag.String("governor", "magus", "governor: magus, ups, duf, default, max, min")
		capW     = flag.Float64("power-cap", 0, "per-socket PL1 power cap in watts (0 = none)")
		seed     = flag.Int64("seed", 1, "workload seed")
		verbose  = flag.Bool("verbose", false, "stream MAGUS decisions")
		compare  = flag.Bool("compare", false, "also run the vendor-default baseline and compare")
		trace    = flag.String("trace", "", "write telemetry CSV to this path")
		record   = flag.String("record", "", "archive the run as a JSON record at this path")
		faultArg = flag.String("faults", "", "arm a fault plan: preset name or plan JSON path\n(presets: "+
			strings.Join(magus.FaultPresets(), ", ")+")")
		listen    = flag.String("listen", "", "serve /metrics, /healthz and /debug/pprof on this address\n(e.g. :9890); keeps serving after the run until interrupted")
		events    = flag.String("events", "", "write the structured JSONL decision/event log to this path")
		maxEvents = flag.Uint64("max-events", 0, "cap the -events log at this many events (0 = unbounded);\na capped log ends with a terminal events_truncated record and\n/metrics reports magus_obs_events_emitted/dropped")
		flightOut = flag.String("flight", "", "write the run's flight-recorder tail (recent decisions, health\ntransitions, fault events) as JSONL to this path\n(see docs/OBSERVABILITY.md)")
		spansOut  = flag.String("spans", "", "write decision-causality spans and the power-waste ledger\nas Perfetto/Chrome trace-event JSON to this path\n(open at ui.perfetto.dev; see docs/TRACING.md)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this path\n(inspect with `go tool pprof`; see docs/PERF.md)")
		memProf   = flag.String("memprofile", "", "write a heap profile taken after the run to this path")
		list      = flag.Bool("list", false, "list catalog applications and exit")
		dump      = flag.String("dump-workload", "", "print a catalog workload as JSON and exit")
	)
	flag.Parse()

	if *list {
		for _, name := range magus.Workloads() {
			fmt.Println(name)
		}
		return
	}
	if *dump != "" {
		p, ok := magus.WorkloadByName(*dump)
		if !ok {
			fatalIf(fmt.Errorf("unknown workload %q (use -list)", *dump))
		}
		fatalIf(p.WriteJSON(os.Stdout))
		return
	}

	stopProf, err := prof.Start(*cpuProf, *memProf)
	fatalIf(err)

	cfg, err := magus.SystemByName(*system)
	fatalIf(err)
	var prog *magus.Workload
	if *wlFile != "" {
		f, err := os.Open(*wlFile)
		fatalIf(err)
		prog, err = magus.WorkloadFromJSON(f)
		f.Close()
		fatalIf(err)
	} else {
		var ok bool
		prog, ok = magus.WorkloadByName(*workload)
		if !ok {
			fatalIf(fmt.Errorf("unknown workload %q (use -list)", *workload))
		}
	}

	gov, rt, err := buildGovernor(*govName, cfg)
	fatalIf(err)
	if *capW > 0 {
		gov = magus.WithPowerCap(gov, *capW)
	}
	if rt != nil && *verbose {
		rt.OnDecision(func(d magus.Decision) {
			state := ""
			if d.Warmup {
				state = " [warmup]"
			} else if d.HighFreq {
				state = " [high-freq pin]"
			}
			fmt.Printf("t=%6.1fs  mem=%7.1f GB/s  trend=%-4s  uncore→%.1f GHz%s\n",
				d.At.Seconds(), d.ThroughputGBs, d.Trend, d.TargetGHz, state)
		})
	}

	opt := magus.Options{Seed: *seed}
	if *trace != "" || *record != "" {
		opt.TraceInterval = 100 * time.Millisecond
	}
	if *faultArg != "" {
		plan, err := magus.LoadFaultPlan(*faultArg)
		fatalIf(err)
		opt.Faults = plan
		fmt.Printf("magusd: %s armed\n", plan)
	}
	var tracer *magus.Tracer
	if *spansOut != "" {
		tracer = magus.NewTracer(magus.DefaultConfig().Window)
		opt.Spans = tracer
	}

	var obsrv *magus.Observer
	if *listen != "" || *events != "" {
		var evw io.Writer
		if *events != "" {
			f, err := os.Create(*events)
			fatalIf(err)
			defer f.Close()
			evw = f
		}
		obsrv = magus.NewObserverWith(nil, evw, magus.ObserverOptions{MaxEvents: *maxEvents})
		opt.Obs = obsrv
	}
	var ring *magus.FlightRing
	if *flightOut != "" {
		ring = magus.NewFlightRing(4096)
		opt.Flight = ring
	}
	var srvErr chan error
	var srv *http.Server
	if *listen != "" {
		ln, err := net.Listen("tcp", *listen)
		fatalIf(err)
		// Shared with serve mode: header/idle timeouts bound slowloris
		// connections on what may be a long-lived public port.
		srv = serve.NewServer(*listen, magus.NewObsHandler(obsrv))
		srvErr = make(chan error, 1)
		go func() { srvErr <- srv.Serve(ln) }()
		fmt.Printf("magusd: serving /metrics, /healthz, /debug/pprof on http://%s\n", ln.Addr())
	}

	fmt.Printf("magusd: %s on %s under %s\n", prog.Name, cfg.Name, gov.Name())
	res, err := magus.Run(cfg, prog, gov, opt)
	fatalIf(err)

	fmt.Printf("\nruntime      %8.2f s\n", res.RuntimeS)
	fmt.Printf("avg CPU power%8.1f W (package + DRAM)\n", res.AvgCPUPowerW)
	fmt.Printf("energy       %8.0f J  (pkg %.0f + dram %.0f + gpu %.0f)\n",
		res.TotalEnergyJ(), res.PkgEnergyJ, res.DramEnergyJ, res.GPUEnergyJ)
	if rt != nil {
		s := rt.Stats()
		fmt.Printf("runtime stats: %d invocations, %d tune events, %d high-freq overrides, %d MSR writes\n",
			s.Invocations, s.TuneEvents, s.Overrides, s.MSRWrites)
		if s.MissedSamples+s.SensorRetries+s.SensorTimeouts+s.WildSamples+s.StaleSamples+s.WatchdogOverruns > 0 {
			fmt.Printf("resilience:    %d missed samples (%d retries, %d timeouts, %d wild, %d stale), "+
				"%d degraded / %d lost cycles, %d recoveries, %d watchdog overruns\n",
				s.MissedSamples, s.SensorRetries, s.SensorTimeouts, s.WildSamples, s.StaleSamples,
				s.DegradedCycles, s.LostCycles, s.Recoveries, s.WatchdogOverruns)
		}
	}
	if opt.Faults != nil {
		in := res.FaultsInjected
		fmt.Printf("faults fired:  %d (%d errors, %d stalls, %d stale, %d wild, %d loss)\n",
			in.Total(), in.Errors, in.Stalls, in.Stales, in.Wilds, in.Losses)
	}

	if *compare {
		base, err := magus.Run(cfg, prog, magus.NewDefaultGovernor(), magus.Options{Seed: *seed})
		fatalIf(err)
		c := magus.Compare(base, res)
		fmt.Printf("\nversus vendor default:\n")
		fmt.Printf("  performance loss %6.2f %%\n", c.PerfLossPct)
		fmt.Printf("  CPU power saving %6.2f %%\n", c.PowerSavingPct)
		fmt.Printf("  energy saving    %6.2f %%\n", c.EnergySavingPct)
	}

	if *trace != "" {
		names := res.Traces.Names()
		series := make(map[string]*magus.Series, len(names))
		for _, n := range names {
			series[n] = res.Traces.Series(n)
		}
		fatalIf(safeio.WriteFile(*trace, func(w io.Writer) error {
			return report.WriteCSV(w, names, series)
		}))
		fmt.Printf("\ntrace written to %s (%d columns)\n", *trace, len(names))
	}
	if *record != "" {
		fatalIf(safeio.WriteFile(*record, func(w io.Writer) error {
			return magus.NewRecord(res, *seed).Write(w)
		}))
		fmt.Printf("run record written to %s\n", *record)
	}
	if tracer != nil {
		fatalIf(safeio.WriteFile(*spansOut, func(w io.Writer) error {
			return magus.WritePerfettoTrace(w, tracer)
		}))
		run := tracer.Ledger().Run()
		fmt.Printf("span trace written to %s (%d spans, %d decisions; uncore waste %.0f J of %.0f J)\n",
			*spansOut, len(tracer.Spans()), tracer.Count(magus.SpanDecision), run.WasteJ, run.TotalJ)
	}
	if obsrv != nil && *events != "" {
		ev := obsrv.Events()
		fatalIf(ev.Err())
		if d := ev.Dropped(); d > 0 {
			fmt.Printf("event log written to %s (%d events, %d dropped past -max-events)\n",
				*events, ev.Count(), d)
		} else {
			fmt.Printf("event log written to %s (%d events)\n", *events, ev.Count())
		}
	}
	if ring != nil {
		fatalIf(safeio.WriteFile(*flightOut, func(w io.Writer) error {
			return ring.DumpJSONL(w, prog.Name)
		}))
		fmt.Printf("flight recorder written to %s (%d of %d records retained)\n",
			*flightOut, ring.Len(), ring.Recorded())
	}
	fatalIf(stopProf())
	if *cpuProf != "" {
		fmt.Printf("cpu profile written to %s\n", *cpuProf)
	}
	if *memProf != "" {
		fmt.Printf("heap profile written to %s\n", *memProf)
	}
	if srvErr != nil {
		// The simulated run finishes in milliseconds; keep exporting its
		// final metric and health state until interrupted so scrapers
		// (or a curl) can read them.
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		fmt.Printf("magusd: run complete, still serving %s (interrupt to exit)\n", *listen)
		select {
		case <-sig:
			// Bounded drain: in-flight scrapes finish, then the
			// listener closes, instead of dropping connections
			// mid-response.
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			fatalIf(srv.Shutdown(ctx))
		case err := <-srvErr:
			fatalIf(err)
		}
	}
}

// buildGovernor maps a name to a governor; the second return value is
// non-nil when the governor is a MAGUS runtime (for stats/tracing).
func buildGovernor(name string, cfg magus.NodeConfig) (magus.Governor, *magus.Runtime, error) {
	switch name {
	case "magus":
		rt := magus.NewRuntime(magus.DefaultConfig())
		return rt, rt, nil
	case "ups":
		return magus.NewUPS(magus.UPSConfig{}), nil, nil
	case "duf":
		return magus.NewDUF(magus.DUFConfig{}), nil, nil
	case "default":
		return magus.NewDefaultGovernor(), nil, nil
	case "max":
		return magus.NewStaticGovernor(cfg.UncoreMaxGHz), nil, nil
	case "min":
		return magus.NewStaticGovernor(cfg.UncoreMinGHz), nil, nil
	}
	return nil, nil, fmt.Errorf("unknown governor %q", name)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "magusd:", err)
		os.Exit(1)
	}
}

package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/spear-repro/magus/internal/serve"
)

// runServe is `magusd serve`: the long-running multi-tenant governor
// daemon. Unlike the one-shot mode, nothing runs until clients create
// sessions over the HTTP API; see docs/SERVE.md for the API and the
// admission/backpressure model.
func runServe(args []string) {
	fs := flag.NewFlagSet("magusd serve", flag.ExitOnError)
	var (
		listen       = fs.String("listen", ":9900", "HTTP listen address")
		maxSessions  = fs.Int("max-sessions", 64, "admission limit on live sessions (excess creates get 429)")
		maxInflight  = fs.Int("max-inflight", 8, "max concurrently executing simulation requests")
		maxQueue     = fs.Int("max-queue", 0, "max requests queued for a slot before shedding with 503\n(0 = 4x max-inflight)")
		maxStep      = fs.Duration("max-step", 30*time.Second, "virtual-time cap per step request (larger requests are clamped)")
		stepBudget   = fs.Duration("step-wall-budget", 2*time.Second, "wall-clock watchdog per step; repeated overruns mark the\nsession degraded (0 disables)")
		idleExpiry   = fs.Duration("idle-expiry", 10*time.Minute, "reap sessions idle this long (negative disables)")
		drainTimeout = fs.Duration("drain-timeout", 10*time.Second, "graceful-shutdown deadline for in-flight requests")
		flightCap    = fs.Int("flight-cap", 0, "per-session flight-recorder ring capacity\n(0 = 256, negative disables recording)")
		flightDir    = fs.String("flight-dir", "", "directory receiving flight-recorder postmortems\n(flight-<session>.jsonl + .trace.json on session panic or SIGQUIT;\nempty = no files, GET /debug/flight still serves the rings)")
		chaos        = fs.Bool("chaos", false, "allow session specs to arm the chaos_step panic drill\n(operator-only; exercises panic containment and crash dumps)")
		quiet        = fs.Bool("quiet", false, "suppress per-session lifecycle logging")
	)
	fs.Parse(args)

	logf := log.New(os.Stderr, "", log.LstdFlags).Printf
	if *quiet {
		logf = nil
	}
	mg := serve.NewManager(serve.Config{
		MaxSessions:    *maxSessions,
		MaxInflight:    *maxInflight,
		MaxQueue:       *maxQueue,
		MaxStep:        *maxStep,
		StepWallBudget: *stepBudget,
		IdleExpiry:     *idleExpiry,
		FlightCap:      *flightCap,
		FlightDir:      *flightDir,
		AllowChaos:     *chaos,
		Logf:           logf,
	})

	ln, err := net.Listen("tcp", *listen)
	fatalIf(err)
	srv := serve.NewServer(*listen, serve.NewHTTPHandler(mg))
	srvErr := make(chan error, 1)
	go func() { srvErr <- srv.Serve(ln) }()
	fmt.Printf("magusd serve: listening on http://%s (max %d sessions, %d inflight)\n",
		ln.Addr(), *maxSessions, *maxInflight)

	// SIGQUIT is the operator's flight-dump trigger, not a shutdown:
	// every live session's recorder lands in -flight-dir and the daemon
	// keeps serving (notifying the channel also suppresses the Go
	// runtime's default stack-dump-and-exit behaviour).
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	go func() {
		for range quit {
			if *flightDir == "" {
				fmt.Println("magusd serve: SIGQUIT, but no -flight-dir configured; nothing dumped")
				continue
			}
			n := mg.DumpAllFlights("sigquit")
			fmt.Printf("magusd serve: SIGQUIT, dumped %d flight recorder(s) to %s\n", n, *flightDir)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("magusd serve: %v, draining (deadline %s)\n", s, *drainTimeout)
	case err := <-srvErr:
		fatalIf(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain order matters: the manager first (new API work answers 503
	// and in-flight simulation finishes), then the HTTP server (open
	// connections complete their responses).
	drainErr := mg.Close(ctx)
	fatalIf(srv.Shutdown(ctx))
	fatalIf(drainErr)
	fmt.Println("magusd serve: drained, exiting")
}

package magus_test

import (
	"testing"
	"time"

	magus "github.com/spear-repro/magus"
)

func TestAblationPublicAPI(t *testing.T) {
	res, err := magus.RunAblation(magus.QuickExperiments())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Variants) < 5 || len(res.Apps) < 3 {
		t.Fatalf("ablation shape: %d variants × %d apps", len(res.Variants), len(res.Apps))
	}
	if _, ok := res.Get("magus", "srad"); !ok {
		t.Fatal("reference cell missing")
	}
}

func TestModelBasedPublicAPI(t *testing.T) {
	cfg := magus.IntelA100()
	prog, _ := magus.WorkloadByName("where")
	gov := magus.NewModelBased(magus.ModelBasedConfig{}, magus.BandwidthModelFor(cfg))
	base, err := magus.Run(cfg, prog, magus.NewDefaultGovernor(), magus.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := magus.Run(cfg, prog, gov, magus.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	c := magus.Compare(base, res)
	if c.PowerSavingPct <= 0 {
		t.Fatalf("model-based saved no power: %+v", c)
	}
}

func TestClusterPublicAPI(t *testing.T) {
	var apps []*magus.Workload
	for _, name := range []string{"bfs", "gemm"} {
		p, _ := magus.WorkloadByName(name)
		apps = append(apps, p)
	}
	specs, err := magus.UniformCluster(magus.IntelA100(), apps, 4,
		func() magus.Governor { return magus.NewRuntime(magus.DefaultConfig()) }, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := magus.RunCluster(specs, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakW <= 0 || res.MakespanS <= 0 || len(res.NodePower) != 4 {
		t.Fatalf("cluster result: %+v", res)
	}
	if res.TimeOverBudget(res.PeakW+1) != 0 {
		t.Fatal("budget above peak reported violations")
	}
}

func TestHSMPPublicAPI(t *testing.T) {
	cfg := magus.AMDEpycMI250()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	n := magus.NewNode(cfg)
	mb := magus.NewHSMPMailbox(n)
	env := magus.BuildHSMPEnv(n, mb)
	rt := magus.NewRuntime(magus.DefaultConfig())
	if err := rt.Attach(env); err != nil {
		t.Fatal(err)
	}
	// Attach parked the fabric at the idle minimum P-state.
	resp, err := mb.Call(0, magus.HSMPGetDFPstate, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp[0] != 3 {
		t.Fatalf("P-state after attach = %d, want P3", resp[0])
	}
}

func TestPowerCapPublicAPI(t *testing.T) {
	cfg := magus.IntelA100()
	prog, _ := magus.WorkloadByName("particlefilter_naive") // CPU/memory heavy
	base, err := magus.Run(cfg, prog, magus.NewDefaultGovernor(), magus.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	capW := base.PkgEnergyJ / base.RuntimeS / 2 * 0.85 // 85% of per-socket pkg power
	capped, err := magus.Run(cfg, prog,
		magus.WithPowerCap(magus.NewRuntime(magus.DefaultConfig()), capW),
		magus.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The cap bounds package power: average per-socket package power
	// must come in under the cap (with a small transient allowance).
	avgPkgPerSocket := capped.PkgEnergyJ / capped.RuntimeS / 2
	if avgPkgPerSocket > capW*1.03 {
		t.Fatalf("avg pkg power %.1f W exceeds PL1 cap %.1f W", avgPkgPerSocket, capW)
	}
	if capped.RuntimeS <= base.RuntimeS {
		t.Fatal("capping a memory-heavy app should cost some runtime")
	}
}

package magus_test

// Public-API tests: exercise the facade exactly as an external user
// would, including a custom governor written against the exported Env.

import (
	"testing"
	"time"

	magus "github.com/spear-repro/magus"
)

func TestQuickstartFlow(t *testing.T) {
	cfg := magus.IntelA100()
	prog, ok := magus.WorkloadByName("unet")
	if !ok {
		t.Fatal("unet missing from catalog")
	}
	base, err := magus.Run(cfg, prog, magus.NewDefaultGovernor(), magus.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := magus.Run(cfg, prog, magus.NewRuntime(magus.DefaultConfig()), magus.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := magus.Compare(base, tuned)
	if c.EnergySavingPct <= 0 {
		t.Fatalf("MAGUS energy saving = %.1f %%, want positive", c.EnergySavingPct)
	}
	if c.PerfLossPct > 5 {
		t.Fatalf("MAGUS perf loss = %.1f %%, want < 5", c.PerfLossPct)
	}
}

func TestWorkloadSets(t *testing.T) {
	if len(magus.Workloads()) < 24 {
		t.Fatalf("catalog too small: %d", len(magus.Workloads()))
	}
	for _, set := range [][]string{
		magus.SingleGPUWorkloads(), magus.AltisSYCLWorkloads(), magus.MultiGPUWorkloads(),
	} {
		for _, name := range set {
			if _, ok := magus.WorkloadByName(name); !ok {
				t.Errorf("set references unknown workload %q", name)
			}
		}
	}
}

func TestSystems(t *testing.T) {
	for _, cfg := range []magus.NodeConfig{magus.IntelA100(), magus.Intel4A100(), magus.IntelMax1550()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
		n := magus.NewNode(cfg)
		if n.GPUCount() != len(cfg.GPUs) {
			t.Errorf("%s: GPU count mismatch", cfg.Name)
		}
	}
	if _, err := magus.SystemByName("Intel+A100"); err != nil {
		t.Error(err)
	}
}

func TestRunRepeatedTrimsOutliers(t *testing.T) {
	cfg := magus.IntelA100()
	prog, _ := magus.WorkloadByName("where")
	res, err := magus.RunRepeated(cfg, prog,
		func() magus.Governor { return magus.NewRuntime(magus.DefaultConfig()) },
		3, magus.Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if res.RuntimeS <= 0 || res.TotalEnergyJ() <= 0 {
		t.Fatalf("aggregated result empty: %+v", res)
	}
	if res.Governor != "magus" || res.Workload != "where" {
		t.Fatalf("labels: %q/%q", res.Governor, res.Workload)
	}
}

// thresholdGovernor is a minimal custom policy built on the public
// API: max uncore when throughput exceeds a bound, min otherwise.
type thresholdGovernor struct {
	env   *magus.Env
	bound float64
}

func (g *thresholdGovernor) Name() string            { return "threshold" }
func (g *thresholdGovernor) Interval() time.Duration { return 300 * time.Millisecond }

func (g *thresholdGovernor) Attach(env *magus.Env) error {
	if err := env.Validate(); err != nil {
		return err
	}
	g.env = env
	return env.SetUncoreMax(env.UncoreMaxGHz)
}

func (g *thresholdGovernor) Invoke(now time.Duration) time.Duration {
	thr, err := g.env.PCM.SystemMemoryThroughput(now)
	if err != nil {
		g.env.SetUncoreMax(g.env.UncoreMaxGHz)
		return 0
	}
	if thr > g.bound {
		g.env.SetUncoreMax(g.env.UncoreMaxGHz)
	} else {
		g.env.SetUncoreMax(g.env.UncoreMinGHz)
	}
	return 0
}

func TestCustomGovernor(t *testing.T) {
	cfg := magus.IntelA100()
	prog, _ := magus.WorkloadByName("bfs")
	gov := &thresholdGovernor{bound: 100}
	res, err := magus.Run(cfg, prog, gov, magus.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	base, err := magus.Run(cfg, prog, magus.NewDefaultGovernor(), magus.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	c := magus.Compare(base, res)
	if c.PowerSavingPct <= 0 {
		t.Fatalf("custom governor saved no power: %+v", c)
	}
}

func TestTracesExposed(t *testing.T) {
	cfg := magus.IntelA100()
	prog, _ := magus.WorkloadByName("srad")
	res, err := magus.Run(cfg, prog, magus.NewRuntime(magus.DefaultConfig()),
		magus.Options{Seed: 1, TraceInterval: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Traces == nil {
		t.Fatal("traces missing")
	}
	for _, name := range []string{"mem_gbs", "uncore_ghz", "cpu_power_w"} {
		s := res.Traces.Series(name)
		if s == nil || s.Len() < 50 {
			t.Errorf("trace %q missing or short", name)
		}
	}
}

func TestRuntimeDecisionHook(t *testing.T) {
	rt := magus.NewRuntime(magus.DefaultConfig())
	var decisions []magus.Decision
	rt.OnDecision(func(d magus.Decision) { decisions = append(decisions, d) })
	cfg := magus.IntelA100()
	prog, _ := magus.WorkloadByName("gemm")
	if _, err := magus.Run(cfg, prog, rt, magus.Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if len(decisions) < 20 {
		t.Fatalf("only %d decisions traced", len(decisions))
	}
	s := rt.Stats()
	if s.Invocations == 0 || s.MSRWrites == 0 {
		t.Fatalf("stats empty: %+v", s)
	}
}

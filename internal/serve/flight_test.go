package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// readLines parses b as JSONL and fails the test on any bad line.
func readLines(t *testing.T, b []byte) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, ln := range bytes.Split(bytes.TrimSpace(b), []byte("\n")) {
		if len(ln) == 0 {
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal(ln, &obj); err != nil {
			t.Fatalf("flight line does not parse: %v (%s)", err, ln)
		}
		out = append(out, obj)
	}
	return out
}

// TestChaosPanicLeavesFlightDump is the ISSUE's acceptance scenario: a
// panicking tenant is contained, leaves a parseable flight-recorder
// postmortem in FlightDir, and its neighbours keep running undisturbed.
func TestChaosPanicLeavesFlightDump(t *testing.T) {
	dir := t.TempDir()
	mg := newTestManager(t, Config{FlightDir: dir, AllowChaos: true})

	good := createSession(t, mg, "good")
	evil, err := mg.Create(Spec{Tenant: "evil", Workload: "bfs", ChaosStep: 2})
	if err != nil {
		t.Fatal(err)
	}

	// First steps succeed for both; the chaos drill fires on evil's
	// second step and must surface as ErrSessionFailed, not a crash.
	if _, err := mg.Step(evil.ID, time.Second); err != nil {
		t.Fatalf("pre-chaos step: %v", err)
	}
	if _, err := mg.Step(good.ID, time.Second); err != nil {
		t.Fatalf("neighbour step: %v", err)
	}
	if _, err := mg.Step(evil.ID, time.Second); !errors.Is(err, ErrSessionFailed) {
		t.Fatalf("chaos step error = %v, want ErrSessionFailed", err)
	}

	// The postmortem pair exists and parses; the JSONL header carries
	// the session ID and the tail records the contained panic.
	jb, err := os.ReadFile(filepath.Join(dir, "flight-"+evil.ID+".jsonl"))
	if err != nil {
		t.Fatalf("postmortem missing: %v", err)
	}
	lines := readLines(t, jb)
	if len(lines) < 2 {
		t.Fatalf("postmortem has %d lines, want header + records", len(lines))
	}
	if src, _ := lines[0]["source"].(string); src != evil.ID {
		t.Fatalf("header source = %q, want %q", src, evil.ID)
	}
	last := lines[len(lines)-1]
	if last["kind"] != "panic" || last["tag"] != "session_failed" {
		t.Fatalf("terminal record = %v, want kind=panic tag=session_failed", last)
	}
	tb, err := os.ReadFile(filepath.Join(dir, "flight-"+evil.ID+".trace.json"))
	if err != nil {
		t.Fatalf("perfetto postmortem missing: %v", err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(tb, &trace); err != nil {
		t.Fatalf("perfetto postmortem does not parse: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("perfetto postmortem has no events")
	}

	// Failing again must not rewrite the dump (and the neighbour has no
	// dump at all — it never failed).
	before, _ := os.Stat(filepath.Join(dir, "flight-"+evil.ID+".jsonl"))
	if _, err := mg.Step(evil.ID, time.Second); !errors.Is(err, ErrSessionFailed) {
		t.Fatalf("failed session step error = %v, want ErrSessionFailed", err)
	}
	after, _ := os.Stat(filepath.Join(dir, "flight-"+evil.ID+".jsonl"))
	if !before.ModTime().Equal(after.ModTime()) || before.Size() != after.Size() {
		t.Fatal("postmortem rewritten on a repeat failure")
	}
	if _, err := os.Stat(filepath.Join(dir, "flight-"+good.ID+".jsonl")); !os.IsNotExist(err) {
		t.Fatalf("healthy neighbour has a postmortem: %v", err)
	}

	// The neighbour still steps to completion.
	if res := stepToDone(t, mg, good.ID); res.Result == nil {
		t.Fatal("neighbour did not finish")
	}
}

// TestChaosRequiresOperatorFlag: chaos_step is rejected at admission
// unless the operator started the daemon with -chaos.
func TestChaosRequiresOperatorFlag(t *testing.T) {
	mg := newTestManager(t, Config{})
	_, err := mg.Create(Spec{Tenant: "x", Workload: "bfs", ChaosStep: 1})
	if !errors.Is(err, ErrBadSpec) {
		t.Fatalf("chaos without -chaos: err = %v, want ErrBadSpec", err)
	}
	if _, err := mg.Create(Spec{Tenant: "x", Workload: "bfs", ChaosStep: -1}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("negative chaos_step: err = %v, want ErrBadSpec", err)
	}
}

// TestDebugFlightRoute: GET /debug/flight streams every session's ring
// as parseable JSONL with per-session headers, ordered by ID.
func TestDebugFlightRoute(t *testing.T) {
	mg := newTestManager(t, Config{})
	h := NewHTTPHandler(mg)
	a := createSession(t, mg, "a")
	b := createSession(t, mg, "b")
	if _, err := mg.Step(a.ID, time.Second); err != nil {
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flight", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /debug/flight = %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Fatalf("content type = %q", ct)
	}
	lines := readLines(t, rec.Body.Bytes())
	var sources []string
	for _, ln := range lines {
		if src, ok := ln["source"].(string); ok && ln["flight"] == "v1" {
			sources = append(sources, src)
		}
	}
	if len(sources) != 2 || sources[0] != a.ID || sources[1] != b.ID {
		t.Fatalf("headers = %v, want [%s %s]", sources, a.ID, b.ID)
	}
}

// TestFlightDisabled: a negative FlightCap turns recording off — panics
// are still contained, but no ring exists, no files land, and
// /debug/flight streams nothing.
func TestFlightDisabled(t *testing.T) {
	dir := t.TempDir()
	mg := newTestManager(t, Config{FlightCap: -1, FlightDir: dir, AllowChaos: true})
	st, err := mg.Create(Spec{Tenant: "x", Workload: "bfs", ChaosStep: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mg.Step(st.ID, time.Second); !errors.Is(err, ErrSessionFailed) {
		t.Fatalf("chaos step error = %v, want ErrSessionFailed", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("dump files written with recording disabled: %v", ents)
	}
	var buf bytes.Buffer
	if err := mg.WriteFlightJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("WriteFlightJSONL wrote %d bytes with recording disabled", buf.Len())
	}
}

// TestDumpAllFlights mirrors the SIGQUIT handler: every live session's
// ring lands in FlightDir and the daemon keeps serving afterwards.
func TestDumpAllFlights(t *testing.T) {
	dir := t.TempDir()
	mg := newTestManager(t, Config{FlightDir: dir})
	a := createSession(t, mg, "a")
	b := createSession(t, mg, "b")
	if _, err := mg.Step(a.ID, time.Second); err != nil {
		t.Fatal(err)
	}

	if n := mg.DumpAllFlights("sigquit"); n != 2 {
		t.Fatalf("DumpAllFlights = %d, want 2", n)
	}
	for _, id := range []string{a.ID, b.ID} {
		bs, err := os.ReadFile(filepath.Join(dir, "flight-"+id+".jsonl"))
		if err != nil {
			t.Fatalf("dump for %s missing: %v", id, err)
		}
		readLines(t, bs)
	}
	// Still serving: the dumped sessions keep stepping.
	if _, err := mg.Step(b.ID, time.Second); err != nil {
		t.Fatalf("step after SIGQUIT dump: %v", err)
	}

	// Without a FlightDir the dump is a counted no-op.
	mg2 := newTestManager(t, Config{})
	createSession(t, mg2, "c")
	if n := mg2.DumpAllFlights("sigquit"); n != 0 {
		t.Fatalf("DumpAllFlights without FlightDir = %d, want 0", n)
	}
}

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*Manager, *httptest.Server) {
	t.Helper()
	mg := NewManager(cfg)
	srv := httptest.NewServer(NewHTTPHandler(mg))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		mg.Close(ctx)
	})
	return mg, srv
}

func doJSON(t *testing.T, method, url string, body any, out any) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil && err != io.EOF {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
	return resp
}

// TestHTTPSessionLifecycle drives create → step → status → delete over
// the wire.
func TestHTTPSessionLifecycle(t *testing.T) {
	_, srv := newTestServer(t, Config{})

	var st Status
	resp := doJSON(t, "POST", srv.URL+"/api/v1/sessions",
		Spec{Tenant: "acme", Workload: "bfs", Governor: "magus", Waste: true}, &st)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status = %d", resp.StatusCode)
	}
	if st.ID == "" || st.State != "running" || st.Health != "healthy" {
		t.Fatalf("created status = %+v", st)
	}

	var step StepResult
	for i := 0; i < 100 && !step.Done; i++ {
		resp = doJSON(t, "POST", srv.URL+"/api/v1/sessions/"+st.ID+"/step",
			stepRequest{Seconds: 5}, &step)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("step status = %d", resp.StatusCode)
		}
	}
	if !step.Done || step.Result == nil || step.Result.RuntimeS <= 0 {
		t.Fatalf("final step = %+v", step)
	}
	if len(step.Decisions) == 0 && step.DecisionsDropped == 0 {
		t.Fatal("magus session surfaced no decisions")
	}

	var got Status
	doJSON(t, "GET", srv.URL+"/api/v1/sessions/"+st.ID, nil, &got)
	if got.State != "done" || got.Waste == nil || got.Stats == nil {
		t.Fatalf("status = %+v", got)
	}

	var list []SessionSummary
	doJSON(t, "GET", srv.URL+"/api/v1/sessions", nil, &list)
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list = %+v", list)
	}

	resp = doJSON(t, "DELETE", srv.URL+"/api/v1/sessions/"+st.ID, nil, nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status = %d", resp.StatusCode)
	}
	resp = doJSON(t, "GET", srv.URL+"/api/v1/sessions/"+st.ID, nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete = %d", resp.StatusCode)
	}
}

// TestHTTPAdmission429 pins the session limit on the wire: 429 with
// Retry-After.
func TestHTTPAdmission429(t *testing.T) {
	_, srv := newTestServer(t, Config{MaxSessions: 1})
	resp := doJSON(t, "POST", srv.URL+"/api/v1/sessions", Spec{Tenant: "a", Workload: "bfs"}, nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first create = %d", resp.StatusCode)
	}
	var e errorBody
	resp = doJSON(t, "POST", srv.URL+"/api/v1/sessions", Spec{Tenant: "b", Workload: "bfs"}, &e)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second create = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if !strings.Contains(e.Error, "session limit") {
		t.Fatalf("error body = %+v", e)
	}
}

// TestHTTPOverload503 pins queue shed on the wire: 503 with
// Retry-After.
func TestHTTPOverload503(t *testing.T) {
	mg, srv := newTestServer(t, Config{MaxInflight: 1, MaxQueue: 1})
	var st Status
	doJSON(t, "POST", srv.URL+"/api/v1/sessions", Spec{Tenant: "t", Workload: "bfs"}, &st)
	s, err := mg.lookup(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	entered := make(chan struct{})
	s.stepHook = func() {
		close(entered)
		<-block
	}
	defer close(block)

	go func() {
		resp, err := http.Post(srv.URL+"/api/v1/sessions/"+st.ID+"/step",
			"application/json", strings.NewReader(`{"seconds": 1}`))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered
	go mg.Step(st.ID, time.Second) // fills the queue slot
	waitFor(t, func() bool { return mg.queued.Load() == 1 })

	resp := doJSON(t, "POST", srv.URL+"/api/v1/sessions/"+st.ID+"/step", stepRequest{Seconds: 1}, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow step = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	// /healthz and /metrics stay responsive while the gate is wedged.
	resp = doJSON(t, "GET", srv.URL+"/healthz", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz under load = %d", resp.StatusCode)
	}
	resp = doJSON(t, "GET", srv.URL+"/metrics", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics under load = %d", resp.StatusCode)
	}
	s.stepHook = nil
}

// TestHTTPBadRequests pins the strict decoding: unknown fields,
// malformed JSON and oversized bodies are 400s.
func TestHTTPBadRequests(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	post := func(body string) int {
		resp, err := http.Post(srv.URL+"/api/v1/sessions", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(`{"tenant": "t", "workload": "bfs", "sudo": true}`); code != http.StatusBadRequest {
		t.Fatalf("unknown field = %d, want 400", code)
	}
	if code := post(`{"tenant": `); code != http.StatusBadRequest {
		t.Fatalf("malformed JSON = %d, want 400", code)
	}
	if code := post(fmt.Sprintf(`{"tenant": %q, "workload": "bfs"}`, strings.Repeat("x", maxBodyBytes))); code != http.StatusBadRequest {
		t.Fatalf("oversized body = %d, want 400", code)
	}
}

// TestHTTPHealthz pins the aggregated body and the draining 503.
func TestHTTPHealthz(t *testing.T) {
	mg, srv := newTestServer(t, Config{})
	doJSON(t, "POST", srv.URL+"/api/v1/sessions", Spec{Tenant: "t", Workload: "bfs"}, nil)

	var h ServiceHealth
	resp := doJSON(t, "GET", srv.URL+"/healthz", nil, &h)
	if resp.StatusCode != http.StatusOK || h.Status != "ok" || h.Sessions != 1 || h.Healthy != 1 {
		t.Fatalf("healthz = %d %+v", resp.StatusCode, h)
	}

	if err := mg.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp = doJSON(t, "GET", srv.URL+"/healthz", nil, &h)
	if resp.StatusCode != http.StatusServiceUnavailable || h.Status != "draining" {
		t.Fatalf("draining healthz = %d %+v", resp.StatusCode, h)
	}
	// API requests during drain get a 503 too.
	resp = doJSON(t, "POST", srv.URL+"/api/v1/sessions", Spec{Tenant: "late", Workload: "bfs"}, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("create while draining = %d, want 503", resp.StatusCode)
	}
}

// TestHTTPMetricsExposition pins that the serve families appear in the
// Prometheus text output.
func TestHTTPMetricsExposition(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	doJSON(t, "POST", srv.URL+"/api/v1/sessions", Spec{Tenant: "t", Workload: "bfs"}, nil)
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(b)
	for _, fam := range []string{
		"magus_serve_sessions_live 1",
		"magus_serve_sessions_created_total 1",
		"magus_serve_max_sessions",
		"magus_build_info",
	} {
		if !strings.Contains(text, fam) {
			t.Errorf("exposition missing %q", fam)
		}
	}
}

// TestHTTPServerHardened pins the slowloris guards on the shared
// server constructor.
func TestHTTPServerHardened(t *testing.T) {
	srv := NewServer(":0", http.NewServeMux())
	if srv.ReadHeaderTimeout <= 0 || srv.IdleTimeout <= 0 || srv.MaxHeaderBytes <= 0 {
		t.Fatalf("unhardened server: %+v", srv)
	}
}

package serve

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func colocateSpec(tenant string) Spec {
	return Spec{
		Tenant: tenant,
		Colocate: []ColocateTenant{
			{Tenant: "a", Workload: "srad", Seed: 1},
			{Tenant: "b", Workload: "pathfinder", Seed: 2},
		},
	}
}

// TestColocatedSession drives a co-located session to completion and
// checks the attribution surface: live per-tenant rows mid-run, the
// balance invariant, exact labels under round-robin, and the colocated
// workload label.
func TestColocatedSession(t *testing.T) {
	mg := newTestManager(t, Config{})
	st, err := mg.Create(colocateSpec("t0"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(st.Workload, "colocated(") {
		t.Fatalf("workload label %q", st.Workload)
	}

	// Attribution is live before completion.
	if _, err := mg.Step(st.ID, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	mid, err := mg.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if mid.Attribution == nil || len(mid.Attribution.Tenants) != 2 {
		t.Fatalf("mid-run attribution = %+v", mid.Attribution)
	}
	if !mid.Attribution.Balanced {
		t.Fatal("mid-run attribution imbalanced")
	}

	res := stepToDone(t, mg, st.ID)
	if res.Result == nil {
		t.Fatal("no result on final step")
	}
	fin, err := mg.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	a := fin.Attribution
	if a == nil || !a.Balanced || a.TotalJ <= 0 {
		t.Fatalf("final attribution = %+v", a)
	}
	var sum float64
	for _, row := range a.Tenants {
		if row.TotalJ <= 0 {
			t.Fatalf("tenant %s billed nothing", row.Tenant)
		}
		if row.Estimated {
			t.Fatalf("tenant %s estimated under round-robin", row.Tenant)
		}
		sum += row.TotalJ
	}
	if sum <= 0 {
		t.Fatal("tenant rows sum to zero")
	}
}

// TestColocateSpecValidation pins the spec surface errors.
func TestColocateSpecValidation(t *testing.T) {
	mg := newTestManager(t, Config{})
	cases := map[string]Spec{
		"workload and colocate": func() Spec {
			s := colocateSpec("t")
			s.Workload = "bfs"
			return s
		}(),
		"bad policy": func() Spec {
			s := colocateSpec("t")
			s.Policy = "lottery"
			return s
		}(),
		"negative quantum": func() Spec {
			s := colocateSpec("t")
			s.QuantumMS = -5
			return s
		}(),
		"policy without colocate": {Tenant: "t", Workload: "bfs", Policy: "fractional"},
		"unknown tenant workload": {Tenant: "t", Colocate: []ColocateTenant{
			{Tenant: "a", Workload: "nope"}, {Tenant: "b", Workload: "bfs"},
		}},
		"duplicate tenant": {Tenant: "t", Colocate: []ColocateTenant{
			{Tenant: "a", Workload: "bfs"}, {Tenant: "a", Workload: "srad"},
		}},
		"single tenant": {Tenant: "t", Colocate: []ColocateTenant{
			{Tenant: "a", Workload: "bfs"},
		}},
	}
	for name, spec := range cases {
		if _, err := mg.Create(spec); !errors.Is(err, ErrBadSpec) {
			t.Errorf("%s: Create = %v, want ErrBadSpec", name, err)
		}
	}
}

// TestColocatedFractionalSession: the fractional policy reaches Status
// with estimated labels set.
func TestColocatedFractionalSession(t *testing.T) {
	mg := newTestManager(t, Config{})
	spec := colocateSpec("t1")
	spec.Policy = "fractional"
	st, err := mg.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	stepToDone(t, mg, st.ID)
	fin, err := mg.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.Attribution == nil || !fin.Attribution.Balanced {
		t.Fatalf("attribution = %+v", fin.Attribution)
	}
	seen := false
	for _, row := range fin.Attribution.Tenants {
		if row.Estimated {
			seen = true
		}
	}
	if !seen {
		t.Fatal("no tenant carries the estimated label under fractional sharing")
	}
}

package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"github.com/spear-repro/magus/internal/obs"
)

// maxBodyBytes bounds any request body; a session spec or step request
// is a few hundred bytes, so 64 KiB is already generous.
const maxBodyBytes = 64 << 10

// stepRequest is the POST .../step body.
type stepRequest struct {
	// Seconds of virtual time to advance (clamped to the manager's
	// MaxStep).
	Seconds float64 `json:"seconds"`
}

// errorBody is every non-2xx JSON response.
type errorBody struct {
	Error string `json:"error"`
}

// NewHTTPHandler builds the daemon's full HTTP surface over mg:
//
//	POST   /api/v1/sessions           create a session
//	GET    /api/v1/sessions           list sessions
//	GET    /api/v1/sessions/{id}      session status (+stats/waste)
//	POST   /api/v1/sessions/{id}/step advance virtual time
//	DELETE /api/v1/sessions/{id}      close a session
//	GET    /healthz                   aggregated service health
//	GET    /debug/flight              every session's flight ring (JSONL)
//	GET    /metrics, /debug/pprof/... delegated to the obs handler
//
// /healthz and /metrics never take the work gate or a session lock, so
// they stay responsive while the service sheds load.
func NewHTTPHandler(mg *Manager) http.Handler {
	inner := obs.NewHandler(mg.Metrics().obs)
	mux := http.NewServeMux()

	mux.HandleFunc("POST /api/v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		var spec Spec
		if !decodeJSON(w, r, &spec) {
			return
		}
		st, err := mg.Create(spec)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, st)
	})
	mux.HandleFunc("GET /api/v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, mg.List())
	})
	mux.HandleFunc("GET /api/v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := mg.Get(r.PathValue("id"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("POST /api/v1/sessions/{id}/step", func(w http.ResponseWriter, r *http.Request) {
		var req stepRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		res, err := mg.Step(r.PathValue("id"), time.Duration(req.Seconds*float64(time.Second)))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("DELETE /api/v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := mg.CloseSession(r.PathValue("id")); err != nil {
			writeErr(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		h := mg.Health()
		code := http.StatusOK
		if h.Draining {
			// Draining is the one service-level outage: load balancers
			// must stop routing here. A lost *tenant* stays a 200 —
			// one misbehaving session must not take the service down.
			code = http.StatusServiceUnavailable
		}
		w.Header().Set("X-Magus-Health", h.Worst)
		writeJSON(w, code, h)
	})
	mux.Handle("GET /metrics", inner)
	mux.HandleFunc("GET /debug/flight", func(w http.ResponseWriter, r *http.Request) {
		// On-demand flight dump: every live session's ring as
		// concatenated JSONL. Like /healthz it bypasses the work gate
		// and the session locks, so it answers even while the daemon is
		// wedged — the moment a flight recorder is actually needed.
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := mg.WriteFlightJSONL(w); err != nil {
			// The header already went out; all we can do is log-by-proxy
			// through the manager's configured sink.
			mg.cfg.Logf("serve: /debug/flight: %v", err)
		}
	})
	mux.Handle("/debug/pprof/", inner)
	return mux
}

// decodeJSON parses a bounded, strict JSON body; a false return means
// the 400 was already written.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad request body: %v", err)})
		return false
	}
	return true
}

// writeErr maps manager errors onto HTTP statuses. Overload answers
// carry Retry-After so well-behaved clients back off instead of
// hammering a shedding server.
func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrBadSpec):
		code = http.StatusBadRequest
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrSessionFailed):
		code = http.StatusConflict
	case errors.Is(err, ErrSessionLimit):
		code = http.StatusTooManyRequests
		w.Header().Set("Retry-After", "5")
	case errors.Is(err, ErrOverloaded):
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, ErrDraining):
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "10")
	}
	writeJSON(w, code, errorBody{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// NewServer wraps h in an http.Server hardened for an untrusted
// network: header and idle timeouts bound slow-loris connections, and
// the caller is expected to stop it with Shutdown (see cmd/magusd).
// Both magusd modes (-listen and serve) share this construction.
func NewServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    64 << 10,
	}
}

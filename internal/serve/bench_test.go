package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// BenchmarkServeSessionLifecycle measures whole-tenant throughput:
// admit a session, step its workload to completion, close it. This is
// the sessions/sec figure in BENCH_serve.json.
func BenchmarkServeSessionLifecycle(b *testing.B) {
	mg := NewManager(Config{MaxSessions: 4, IdleExpiry: -1})
	defer mg.Close(context.Background())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := mg.Create(Spec{Tenant: "bench", Workload: "bfs", Governor: "magus", Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		for {
			res, err := mg.Step(st.ID, 30*time.Second)
			if err != nil {
				b.Fatal(err)
			}
			if res.Done {
				break
			}
		}
		if err := mg.CloseSession(st.ID); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "sessions/s")
}

// BenchmarkServeStepRequest measures manager-level step request
// throughput: many small virtual advances against one long-lived
// session, recreated when its workload completes.
func BenchmarkServeStepRequest(b *testing.B) {
	mg := NewManager(Config{MaxSessions: 4, IdleExpiry: -1})
	defer mg.Close(context.Background())
	newSess := func() string {
		st, err := mg.Create(Spec{Tenant: "bench", Workload: "bfs", Governor: "magus", Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		return st.ID
	}
	id := newSess()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := mg.Step(id, 100*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		if res.Done {
			mg.CloseSession(id)
			id = newSess()
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkServeHTTPStep is the same request measured end to end over
// the wire — JSON decode, mux, gate, session lock, JSON encode. This
// is the requests/sec figure in BENCH_serve.json.
func BenchmarkServeHTTPStep(b *testing.B) {
	mg := NewManager(Config{MaxSessions: 4, IdleExpiry: -1})
	defer mg.Close(context.Background())
	srv := httptest.NewServer(NewHTTPHandler(mg))
	defer srv.Close()

	newSess := func() string {
		st, err := mg.Create(Spec{Tenant: "bench", Workload: "bfs", Governor: "magus", Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		return st.ID
	}
	id := newSess()
	client := srv.Client()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(srv.URL+"/api/v1/sessions/"+id+"/step",
			"application/json", strings.NewReader(`{"seconds": 0.1}`))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		var sr StepResult
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if sr.Done {
			mg.CloseSession(id)
			id = newSess()
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkServeHealthz measures the lock-free health aggregation with
// a populated session table.
func BenchmarkServeHealthz(b *testing.B) {
	mg := NewManager(Config{MaxSessions: 64, IdleExpiry: -1})
	defer mg.Close(context.Background())
	for i := 0; i < 64; i++ {
		if _, err := mg.Create(Spec{Tenant: "bench", Workload: "bfs", Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if h := mg.Health(); h.Sessions != 64 {
			b.Fatalf("health = %+v", h)
		}
	}
}

// Package serve is the multi-tenant governor service behind
// `magusd serve`: a session manager that runs one deterministic
// MAGUS/UPS/DUF simulation per tenant, advanced step-by-step over an
// HTTP API. Its job is robustness under load, so every resource is
// bounded and every failure mode is explicit:
//
//   - Admission control: at most MaxSessions live sessions; a create
//     beyond that is rejected with ErrSessionLimit (HTTP 429), never
//     queued.
//   - Backpressure: at most MaxInflight requests execute simulation
//     work concurrently, with at most MaxQueue more waiting; the rest
//     shed with ErrOverloaded (HTTP 503 + Retry-After) instead of
//     piling up goroutines until the daemon dies.
//   - Isolation: a panicking tenant session is marked lost and keeps
//     failing loudly, while every other tenant keeps running.
//   - Reaping: sessions idle past IdleExpiry are closed by a
//     background reaper, so abandoned tenants cannot pin the
//     admission limit forever.
//   - Graceful shutdown: Close stops admission immediately, drains
//     in-flight work up to a deadline, then tears the sessions down.
//
// Determinism is preserved per tenant: a session stepped to completion
// over any request pattern produces the byte-identical result of the
// equivalent single-shot harness.Run (see internal/harness.Steppable).
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/spear-repro/magus/internal/flight"
	"github.com/spear-repro/magus/internal/resilient"
	"github.com/spear-repro/magus/internal/safeio"
)

// Sentinel errors; the HTTP layer maps them onto status codes.
var (
	// ErrBadSpec rejects a malformed session spec (HTTP 400).
	ErrBadSpec = errors.New("serve: bad session spec")
	// ErrSessionLimit rejects a create beyond MaxSessions (HTTP 429).
	ErrSessionLimit = errors.New("serve: session limit reached")
	// ErrOverloaded sheds a request the work gate cannot absorb
	// (HTTP 503 + Retry-After).
	ErrOverloaded = errors.New("serve: overloaded")
	// ErrDraining rejects everything once shutdown began (HTTP 503).
	ErrDraining = errors.New("serve: draining")
	// ErrNotFound reports an unknown session ID (HTTP 404).
	ErrNotFound = errors.New("serve: no such session")
	// ErrSessionFailed reports a session killed by a panic or stuck at
	// its horizon (HTTP 409); the session stays queryable until closed.
	ErrSessionFailed = errors.New("serve: session failed")
)

// Config bounds the manager. The zero value selects the defaults.
type Config struct {
	// MaxSessions is the admission limit on live sessions (default 64).
	MaxSessions int
	// MaxInflight bounds concurrently executing simulation requests
	// (default 8).
	MaxInflight int
	// MaxQueue bounds requests waiting for an inflight slot; beyond
	// it requests shed immediately (default 4× MaxInflight).
	MaxQueue int
	// MaxStep caps the virtual time one step request may advance
	// (default 30 s virtual; larger requests are clamped, not failed).
	MaxStep time.Duration
	// StepWallBudget arms the per-step wall-clock watchdog: a session
	// whose steps repeatedly take longer is marked degraded
	// (default 2 s wall; <= 0 disables).
	StepWallBudget time.Duration
	// IdleExpiry reaps sessions with no requests for this long
	// (default 10 min; negative disables reaping).
	IdleExpiry time.Duration
	// ReapInterval is the reaper's period (default 30 s).
	ReapInterval time.Duration
	// FlightCap sizes each session's flight-recorder ring
	// (internal/flight): the always-on bounded tail of governor
	// decisions, health transitions and fault events that is dumped
	// when the session panics, on SIGQUIT, or on demand from
	// GET /debug/flight (default flight.DefaultCap; negative disables
	// recording entirely).
	FlightCap int
	// FlightDir, when set, receives postmortem dump files: a session
	// killed by a panic (or stuck at its horizon) leaves
	// flight-<id>.jsonl and flight-<id>.trace.json behind before it is
	// marked lost. File names derive only from server-generated session
	// IDs ("s-%06d"), never from request data — the serve API does not
	// accept network-supplied paths. Empty = no files are written;
	// GET /debug/flight still serves the rings.
	FlightDir string
	// AllowChaos admits session specs carrying the chaos_step panic
	// drill. Off by default: injecting a panic is an operator decision
	// (the `magusd serve -chaos` flag), never a client's.
	AllowChaos bool
	// Clock supplies wall time (tests inject a fake; nil = time.Now).
	Clock func() time.Time
	// Logf receives lifecycle log lines (nil = silent).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 8
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxInflight
	}
	if c.MaxStep <= 0 {
		c.MaxStep = 30 * time.Second
	}
	if c.StepWallBudget == 0 {
		c.StepWallBudget = 2 * time.Second
	}
	if c.IdleExpiry == 0 {
		c.IdleExpiry = 10 * time.Minute
	}
	if c.ReapInterval <= 0 {
		c.ReapInterval = 30 * time.Second
	}
	if c.FlightCap == 0 {
		c.FlightCap = flight.DefaultCap
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Manager owns the tenant sessions and enforces the bounds.
type Manager struct {
	cfg Config
	m   *metrics

	mu       sync.Mutex
	sessions map[string]*Session
	nextID   uint64
	draining bool

	// gate bounds concurrently executing simulation work; queued
	// tracks waiters so the queue itself stays bounded.
	gate    chan struct{}
	queued  atomic.Int64
	drainCh chan struct{} // closed when draining starts

	reapStop chan struct{}
	reapDone chan struct{}
}

// NewManager builds a manager and starts its reaper (when IdleExpiry
// is set).
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:      cfg,
		m:        newMetrics(cfg),
		sessions: make(map[string]*Session),
		gate:     make(chan struct{}, cfg.MaxInflight),
		drainCh:  make(chan struct{}),
		reapStop: make(chan struct{}),
		reapDone: make(chan struct{}),
	}
	if cfg.IdleExpiry > 0 {
		go m.reapLoop()
	} else {
		close(m.reapDone)
	}
	return m
}

// Metrics exposes the manager's obs registry for the HTTP layer.
func (mg *Manager) Metrics() *metrics { return mg.m }

// acquire takes an inflight slot, shedding when the bounded queue is
// full or the manager is draining. Returns a release func.
func (mg *Manager) acquire() (func(), error) {
	select {
	case <-mg.drainCh:
		return nil, ErrDraining
	default:
	}
	// Fast path: free slot, no queueing.
	select {
	case mg.gate <- struct{}{}:
		return mg.release, nil
	default:
	}
	if n := mg.queued.Add(1); n > int64(mg.cfg.MaxQueue) {
		mg.queued.Add(-1)
		mg.m.shed.Inc()
		return nil, ErrOverloaded
	}
	mg.m.queueDepth.Set(float64(mg.queued.Load()))
	defer func() {
		mg.queued.Add(-1)
		mg.m.queueDepth.Set(float64(mg.queued.Load()))
	}()
	select {
	case mg.gate <- struct{}{}:
		return mg.release, nil
	case <-mg.drainCh:
		return nil, ErrDraining
	}
}

func (mg *Manager) release() { <-mg.gate }

// Create admits a new tenant session. The build (governor attach, node
// wiring) runs under the work gate like any other simulation request.
func (mg *Manager) Create(spec Spec) (Status, error) {
	if err := spec.validate(); err != nil {
		mg.m.badSpec.Inc()
		return Status{}, err
	}
	if spec.ChaosStep > 0 && !mg.cfg.AllowChaos {
		// Chaos drills are an operator decision, never a client's: the
		// daemon must opt in with -chaos before a spec may carry one.
		mg.m.badSpec.Inc()
		return Status{}, fmt.Errorf("%w: chaos_step requires the daemon's -chaos flag", ErrBadSpec)
	}
	rel, err := mg.acquire()
	if err != nil {
		return Status{}, err
	}
	defer rel()

	now := mg.cfg.Clock()
	mg.mu.Lock()
	if mg.draining {
		mg.mu.Unlock()
		return Status{}, ErrDraining
	}
	if len(mg.sessions) >= mg.cfg.MaxSessions {
		mg.mu.Unlock()
		mg.m.rejectedFull.Inc()
		return Status{}, fmt.Errorf("%w (%d live)", ErrSessionLimit, mg.cfg.MaxSessions)
	}
	mg.nextID++
	id := fmt.Sprintf("s-%06d", mg.nextID)
	// Reserve the slot before the (comparatively expensive) wiring so
	// a concurrent create burst cannot overshoot MaxSessions.
	mg.sessions[id] = nil
	mg.mu.Unlock()

	s, err := newSession(id, spec, now, mg.cfg)

	mg.mu.Lock()
	if err != nil || mg.draining {
		delete(mg.sessions, id)
	} else {
		mg.sessions[id] = s
	}
	live := len(mg.sessions)
	draining := mg.draining
	mg.mu.Unlock()

	if err != nil {
		mg.m.badSpec.Inc()
		return Status{}, err
	}
	if draining {
		return Status{}, ErrDraining
	}
	mg.m.created.Inc()
	mg.m.live.Set(float64(live))
	mg.cfg.Logf("serve: created %s tenant=%s workload=%s governor=%s", id, spec.Tenant, spec.Workload, s.gov.Name())
	return s.status(now), nil
}

// lookup resolves id; nil placeholder entries (mid-create) read as
// not-found rather than blocking.
func (mg *Manager) lookup(id string) (*Session, error) {
	mg.mu.Lock()
	s, ok := mg.sessions[id]
	mg.mu.Unlock()
	if !ok || s == nil {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return s, nil
}

// Step advances session id by up to d of virtual time (clamped to
// MaxStep) under the work gate.
func (mg *Manager) Step(id string, d time.Duration) (StepResult, error) {
	if d <= 0 {
		return StepResult{}, fmt.Errorf("%w: non-positive step", ErrBadSpec)
	}
	if d > mg.cfg.MaxStep {
		d = mg.cfg.MaxStep
	}
	s, err := mg.lookup(id)
	if err != nil {
		return StepResult{}, err
	}
	rel, err := mg.acquire()
	if err != nil {
		return StepResult{}, err
	}
	defer rel()

	res, err := s.step(d, mg.cfg.StepWallBudget, mg.cfg.Clock())
	mg.m.steps.Inc()
	if err != nil {
		mg.m.failed.Inc()
		mg.cfg.Logf("serve: %s failed: %v", id, err)
		mg.dumpFailedFlight(s)
		return StepResult{}, err
	}
	if res.Done {
		mg.m.completed.Inc()
	}
	return res, nil
}

// Get returns session id's status without touching the work gate:
// reads must stay responsive under full load.
func (mg *Manager) Get(id string) (Status, error) {
	s, err := mg.lookup(id)
	if err != nil {
		return Status{}, err
	}
	return s.status(mg.cfg.Clock()), nil
}

// CloseSession removes session id.
func (mg *Manager) CloseSession(id string) error {
	mg.mu.Lock()
	s, ok := mg.sessions[id]
	if ok && s != nil {
		delete(mg.sessions, id)
	}
	live := len(mg.sessions)
	mg.mu.Unlock()
	if !ok || s == nil {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	mg.m.closed.Inc()
	mg.m.live.Set(float64(live))
	mg.cfg.Logf("serve: closed %s", id)
	return nil
}

// List snapshots every live session, ordered by ID. It uses the
// published atomics, not the session locks, so a stepping tenant never
// stalls the listing.
func (mg *Manager) List() []SessionSummary {
	mg.mu.Lock()
	out := make([]SessionSummary, 0, len(mg.sessions))
	for id, s := range mg.sessions {
		if s == nil {
			continue
		}
		out = append(out, SessionSummary{
			ID:     id,
			Tenant: s.Spec.Tenant,
			State:  sessionState(s.pubState.Load()).String(),
			Health: resilient.Health(s.pubHealth.Load()).String(),
			NowS:   (time.Duration(s.pubNow.Load())).Seconds(),
		})
	}
	mg.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SessionSummary is one row of List.
type SessionSummary struct {
	ID     string  `json:"id"`
	Tenant string  `json:"tenant"`
	State  string  `json:"state"`
	Health string  `json:"health"`
	NowS   float64 `json:"now_s"`
}

// ServiceHealth is the aggregated /healthz body.
type ServiceHealth struct {
	// Status is "ok" or "draining". A lost tenant does not change it:
	// no single misbehaving session takes the service down.
	Status   string `json:"status"`
	Sessions int    `json:"sessions"`
	Healthy  int    `json:"healthy"`
	Degraded int    `json:"degraded"`
	Lost     int    `json:"lost"`
	// Worst is the most severe tenant health (resilient.Worst).
	Worst    string `json:"worst"`
	Inflight int    `json:"inflight"`
	Queued   int    `json:"queued"`
	Draining bool   `json:"draining"`
}

// Health aggregates tenant health lock-free via the published atomics.
func (mg *Manager) Health() ServiceHealth {
	mg.mu.Lock()
	hs := make([]resilient.Health, 0, len(mg.sessions))
	for _, s := range mg.sessions {
		if s != nil {
			hs = append(hs, resilient.Health(s.pubHealth.Load()))
		}
	}
	draining := mg.draining
	mg.mu.Unlock()

	h := ServiceHealth{
		Status:   "ok",
		Sessions: len(hs),
		Worst:    resilient.Worst(hs...).String(),
		Inflight: len(mg.gate),
		Queued:   int(mg.queued.Load()),
		Draining: draining,
	}
	for _, x := range hs {
		switch x {
		case resilient.Lost:
			h.Lost++
		case resilient.Degraded:
			h.Degraded++
		default:
			h.Healthy++
		}
	}
	if draining {
		h.Status = "draining"
	}
	mg.m.healthGauges(h)
	return h
}

// reapLoop closes sessions idle past IdleExpiry. TryLock skips
// sessions mid-step: an active session is by definition not idle.
func (mg *Manager) reapLoop() {
	defer close(mg.reapDone)
	t := time.NewTicker(mg.cfg.ReapInterval)
	defer t.Stop()
	for {
		select {
		case <-mg.reapStop:
			return
		case <-t.C:
			mg.reapOnce()
		}
	}
}

// reapOnce sweeps once; split out so tests can drive it directly with
// an injected clock.
func (mg *Manager) reapOnce() {
	now := mg.cfg.Clock()
	mg.mu.Lock()
	var expired []string
	for id, s := range mg.sessions {
		if s == nil || !s.mu.TryLock() {
			continue
		}
		idle := now.Sub(time.Unix(0, s.lastActive.Load()))
		s.mu.Unlock()
		if idle >= mg.cfg.IdleExpiry && mg.cfg.IdleExpiry > 0 {
			expired = append(expired, id)
		}
	}
	for _, id := range expired {
		delete(mg.sessions, id)
		mg.m.reaped.Inc()
		mg.cfg.Logf("serve: reaped idle %s", id)
	}
	live := len(mg.sessions)
	mg.mu.Unlock()
	if len(expired) > 0 {
		mg.m.live.Set(float64(live))
	}
}

// flightSessions snapshots the sessions that carry a flight ring,
// ordered by ID.
func (mg *Manager) flightSessions() []*Session {
	mg.mu.Lock()
	out := make([]*Session, 0, len(mg.sessions))
	for _, s := range mg.sessions {
		if s != nil && s.ring != nil {
			out = append(out, s)
		}
	}
	mg.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// WriteFlightJSONL streams every live session's flight ring to w as
// concatenated JSONL, ordered by session ID; each session contributes
// its own header line (source = session ID). It takes neither the work
// gate nor any session lock — rings self-synchronise — so the dump
// stays available while the daemon is wedged, which is exactly when a
// flight recorder matters.
func (mg *Manager) WriteFlightJSONL(w io.Writer) error {
	for _, s := range mg.flightSessions() {
		if err := s.ring.DumpJSONL(w, s.ID); err != nil {
			return err
		}
	}
	return nil
}

// writeFlightFiles writes one session's postmortem pair —
// flight-<id>.jsonl and flight-<id>.trace.json (Perfetto-loadable) —
// into FlightDir via safeio, so a failed write never leaves a
// truncated dump behind. The base name derives only from the
// server-generated session ID.
func (mg *Manager) writeFlightFiles(s *Session, reason string) {
	base := filepath.Join(mg.cfg.FlightDir, "flight-"+s.ID)
	for _, d := range []struct {
		path string
		dump func(io.Writer, string) error
	}{
		{base + ".jsonl", s.ring.DumpJSONL},
		{base + ".trace.json", s.ring.DumpPerfetto},
	} {
		dump := d.dump
		if err := safeio.WriteFile(d.path, func(w io.Writer) error { return dump(w, s.ID) }); err != nil {
			mg.cfg.Logf("serve: flight dump %s: %v", d.path, err)
			continue
		}
		mg.cfg.Logf("serve: %s flight dump (%s) written to %s", s.ID, reason, d.path)
	}
}

// dumpFailedFlight writes a newly failed session's postmortem once.
// The sync.Once keeps an already-lost session (whose every later step
// re-reports ErrSessionFailed) from rewriting its dump.
func (mg *Manager) dumpFailedFlight(s *Session) {
	if s == nil || s.ring == nil || mg.cfg.FlightDir == "" {
		return
	}
	s.dumpOnce.Do(func() { mg.writeFlightFiles(s, "failed") })
}

// DumpAllFlights writes every live session's flight ring to FlightDir
// (the magusd serve SIGQUIT handler) and returns how many sessions
// were dumped. A no-op returning 0 when FlightDir is unset.
func (mg *Manager) DumpAllFlights(reason string) int {
	if mg.cfg.FlightDir == "" {
		return 0
	}
	ss := mg.flightSessions()
	for _, s := range ss {
		mg.writeFlightFiles(s, reason)
	}
	return len(ss)
}

// Close drains the manager: new work is rejected immediately with
// ErrDraining, in-flight requests get until ctx's deadline to finish,
// then the sessions are dropped. Safe to call once.
func (mg *Manager) Close(ctx context.Context) error {
	mg.mu.Lock()
	if mg.draining {
		mg.mu.Unlock()
		return nil
	}
	mg.draining = true
	mg.mu.Unlock()
	close(mg.drainCh) // unblocks queued waiters with ErrDraining
	close(mg.reapStop)
	<-mg.reapDone

	// Drain: acquiring every inflight slot proves no simulation work
	// is still executing.
	var err error
	for i := 0; i < mg.cfg.MaxInflight; i++ {
		select {
		case mg.gate <- struct{}{}:
		case <-ctx.Done():
			err = fmt.Errorf("serve: drain: %w", ctx.Err())
			i = mg.cfg.MaxInflight // abandon politeness, shutdown wins
		}
	}

	mg.mu.Lock()
	n := len(mg.sessions)
	mg.sessions = make(map[string]*Session)
	mg.mu.Unlock()
	mg.m.live.Set(0)
	mg.cfg.Logf("serve: drained, dropped %d sessions", n)
	return err
}

package serve

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/spear-repro/magus/internal/core"
	"github.com/spear-repro/magus/internal/faults"
	"github.com/spear-repro/magus/internal/flight"
	"github.com/spear-repro/magus/internal/governor"
	"github.com/spear-repro/magus/internal/harness"
	"github.com/spear-repro/magus/internal/node"
	"github.com/spear-repro/magus/internal/resilient"
	"github.com/spear-repro/magus/internal/spans"
	"github.com/spear-repro/magus/internal/workload"
)

// Spec describes one tenant session: which node preset to simulate,
// which workload it executes, and which governor polices its uncore.
type Spec struct {
	// Tenant labels the session's owner; required.
	Tenant string `json:"tenant"`
	// System is a node preset: a100 (default), 4a100, max1550, cpuonly.
	System string `json:"system,omitempty"`
	// Workload is a catalog application name; required.
	Workload string `json:"workload"`
	// Governor: magus (default), ups, duf, default, max, min.
	Governor string `json:"governor,omitempty"`
	// Seed drives the workload's pseudo-random modulation (0 = 1).
	Seed int64 `json:"seed,omitempty"`
	// Faults arms a named fault preset against the session's telemetry
	// devices. Only preset names are accepted — a network service never
	// opens request-supplied file paths.
	Faults string `json:"faults,omitempty"`
	// PowerCapW composes a per-socket RAPL PL1 cap with the governor.
	PowerCapW float64 `json:"power_cap_w,omitempty"`
	// Waste arms the PR 5 attribution ledger; Status then carries the
	// session's baseline/useful/waste joule decomposition.
	Waste bool `json:"waste,omitempty"`
	// Colocate runs several workloads in this session through the
	// time-slicing multiplexer with per-tenant energy attribution;
	// when set, Workload must be empty (each tenant names its own) and
	// Status carries a per-tenant attribution row per entry.
	Colocate []ColocateTenant `json:"colocate,omitempty"`
	// Policy selects the colocation sharing policy: "round-robin"
	// (default) or "fractional".
	Policy string `json:"policy,omitempty"`
	// QuantumMS is the round-robin slice in milliseconds (0 = 10 ms).
	QuantumMS int `json:"quantum_ms,omitempty"`
	// ChaosStep arms a chaos drill: the session panics inside its Nth
	// step request (1-based), exercising the daemon's panic containment
	// and the flight recorder's crash dump. Rejected unless the
	// operator started the daemon with -chaos (Config.AllowChaos); the
	// injected panic is contained like any other, so only this session
	// is lost.
	ChaosStep int `json:"chaos_step,omitempty"`
}

// ColocateTenant is one tenant of a co-located session spec.
type ColocateTenant struct {
	// Tenant labels the attribution bucket; required and unique.
	Tenant string `json:"tenant"`
	// Workload is the tenant's catalog application name; required.
	Workload string `json:"workload"`
	// Seed drives the tenant's pseudo-random modulation (0 = session seed).
	Seed int64 `json:"seed,omitempty"`
	// GPUFrac is the tenant's fractional GPU allocation under the
	// fractional policy (0 = equal share).
	GPUFrac float64 `json:"gpu_frac,omitempty"`
}

// validate normalises and checks the spec.
func (sp *Spec) validate() error {
	sp.Tenant = strings.TrimSpace(sp.Tenant)
	if sp.Tenant == "" {
		return fmt.Errorf("%w: missing tenant", ErrBadSpec)
	}
	if len(sp.Colocate) > 0 {
		if sp.Workload != "" {
			return fmt.Errorf("%w: workload and colocate are mutually exclusive", ErrBadSpec)
		}
		if _, err := colocatePolicy(sp.Policy); err != nil {
			return err
		}
		if sp.QuantumMS < 0 {
			return fmt.Errorf("%w: negative colocation quantum", ErrBadSpec)
		}
	} else {
		if sp.Workload == "" {
			return fmt.Errorf("%w: missing workload", ErrBadSpec)
		}
		if sp.Policy != "" || sp.QuantumMS != 0 {
			return fmt.Errorf("%w: policy/quantum_ms require colocate", ErrBadSpec)
		}
	}
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	if sp.PowerCapW < 0 {
		return fmt.Errorf("%w: negative power cap", ErrBadSpec)
	}
	if sp.ChaosStep < 0 {
		return fmt.Errorf("%w: negative chaos_step", ErrBadSpec)
	}
	return nil
}

// colocatePolicy maps a spec's policy name onto the multiplexer's.
func colocatePolicy(name string) (workload.MuxPolicy, error) {
	switch name {
	case "", "round-robin", "rr":
		return workload.RoundRobin, nil
	case "fractional":
		return workload.Fractional, nil
	}
	return 0, fmt.Errorf("%w: unknown colocation policy %q", ErrBadSpec, name)
}

// systemByName maps a session spec's system name to a node preset.
func systemByName(name string) (node.Config, error) {
	switch name {
	case "", "a100", "Intel+A100":
		return node.IntelA100(), nil
	case "4a100", "Intel+4A100":
		return node.Intel4A100(), nil
	case "max1550", "Intel+Max1550":
		return node.IntelMax1550(), nil
	case "cpuonly", "Intel CPU-only":
		return node.IntelCPUOnly(), nil
	}
	return node.Config{}, fmt.Errorf("%w: unknown system %q", ErrBadSpec, name)
}

// buildGovernor mirrors the magusd governor table over the internal
// packages.
func buildGovernor(name string, cfg node.Config) (governor.Governor, error) {
	switch name {
	case "", "magus":
		return core.New(core.DefaultConfig()), nil
	case "ups":
		return governor.NewUPS(governor.UPSConfig{}), nil
	case "duf":
		return governor.NewDUF(governor.DUFConfig{}), nil
	case "default":
		return governor.NewDefault(), nil
	case "max":
		return governor.NewStatic(cfg.UncoreMaxGHz), nil
	case "min":
		return governor.NewStatic(cfg.UncoreMinGHz), nil
	}
	return nil, fmt.Errorf("%w: unknown governor %q", ErrBadSpec, name)
}

// sensorHealthReporter is the optional health surface governors expose.
type sensorHealthReporter interface {
	SensorHealth() resilient.Health
}

// sessionState is the session lifecycle (orthogonal to sensor health).
type sessionState int32

const (
	stateRunning sessionState = iota
	stateDone
	stateFailed
)

func (s sessionState) String() string {
	switch s {
	case stateDone:
		return "done"
	case stateFailed:
		return "failed"
	default:
		return "running"
	}
}

// maxPendingDecisions bounds the per-step decision backlog a client
// can be handed (and the memory a never-polled hook can pin).
const maxPendingDecisions = 256

// Session is one tenant's deterministic governor run. All simulation
// access is serialised under mu; the pub* atomics republish coarse
// state so /healthz and List never block behind a stepping tenant.
type Session struct {
	ID   string
	Spec Spec

	wlabel string // workload display label ("colocated(...)" for multi-tenant)

	mu      sync.Mutex
	st      *harness.Steppable
	gov     governor.Governor
	stats   func() core.Stats // nil unless MAGUS/PerSocket
	sensor  func() resilient.Health
	tracer  *spans.Tracer
	pending []core.Decision // decisions since the last step response
	dropped uint64          // pending overflow

	// ring is the session's always-on flight recorder (nil when the
	// operator disabled it with a negative FlightCap); dumpOnce keeps
	// the manager from rewriting a failed session's postmortem files.
	ring     *flight.Ring
	dumpOnce sync.Once

	created    time.Time
	lastActive atomic.Int64 // unix nanos
	steps      uint64
	wdOverruns uint64
	wdDegraded bool
	failErr    error

	pubHealth atomic.Int32 // resilient.Health
	pubState  atomic.Int32 // sessionState
	pubNow    atomic.Int64 // virtual nanos

	// stepHook, when set, runs inside the panic guard before each
	// advance. Tests use it to inject panics and to block in-flight
	// work; nil in production.
	stepHook func()
}

// newSession wires a steppable harness run for spec. The returned
// session has not advanced past t=0. cfg supplies the operator-level
// knobs a client must not control: the flight-ring capacity and the
// chaos admission already enforced by Manager.Create.
func newSession(id string, spec Spec, now time.Time, svc Config) (*Session, error) {
	cfg, err := systemByName(spec.System)
	if err != nil {
		return nil, err
	}
	var prog *workload.Program
	var muxSpec *workload.MuxSpec
	wlabel := spec.Workload
	if len(spec.Colocate) > 0 {
		policy, perr := colocatePolicy(spec.Policy)
		if perr != nil {
			return nil, perr
		}
		ms := &workload.MuxSpec{
			Policy:  policy,
			Quantum: time.Duration(spec.QuantumMS) * time.Millisecond,
		}
		labels := make([]string, 0, len(spec.Colocate))
		for _, t := range spec.Colocate {
			p, ok := workload.ByName(t.Workload)
			if !ok {
				return nil, fmt.Errorf("%w: unknown workload %q", ErrBadSpec, t.Workload)
			}
			seed := t.Seed
			if seed == 0 {
				seed = spec.Seed
			}
			ms.Tenants = append(ms.Tenants, workload.TenantSpec{
				Tenant: t.Tenant, Program: p, Seed: seed, GPUFrac: t.GPUFrac,
			})
			labels = append(labels, t.Tenant+":"+t.Workload)
		}
		muxSpec = ms
		wlabel = "colocated(" + strings.Join(labels, "+") + ")"
	} else {
		p, ok := workload.ByName(spec.Workload)
		if !ok {
			return nil, fmt.Errorf("%w: unknown workload %q", ErrBadSpec, spec.Workload)
		}
		prog = p
	}
	gov, err := buildGovernor(spec.Governor, cfg)
	if err != nil {
		return nil, err
	}
	if spec.PowerCapW > 0 {
		gov = governor.WithPowerCap(gov, spec.PowerCapW)
	}

	opt := harness.Options{Seed: spec.Seed, Tenants: muxSpec}
	if spec.Faults != "" {
		plan, ok := faults.Preset(spec.Faults)
		if !ok {
			return nil, fmt.Errorf("%w: unknown fault preset %q (have: %s)",
				ErrBadSpec, spec.Faults, strings.Join(faults.PresetNames(), ", "))
		}
		plan.Seed = spec.Seed
		opt.Faults = plan
	}
	var tracer *spans.Tracer
	if spec.Waste {
		tracer = spans.New(core.DefaultConfig().Window)
		opt.Spans = tracer
	}
	var ring *flight.Ring
	if svc.FlightCap > 0 {
		ring = flight.NewRing(svc.FlightCap)
		opt.Flight = ring
	}

	s := &Session{ID: id, Spec: spec, gov: gov, tracer: tracer, ring: ring, created: now, wlabel: wlabel}
	s.lastActive.Store(now.UnixNano())
	if spec.ChaosStep > 0 {
		// Admission (AllowChaos) was checked by the manager; the hook
		// panics inside advanceGuarded's recover like any tenant bug
		// would.
		steps := 0
		s.stepHook = func() {
			steps++
			if steps >= spec.ChaosStep {
				panic(fmt.Sprintf("chaos drill: injected panic at step %d", steps))
			}
		}
	}

	// Hooks observe the unwrapped governor (a power cap is transparent).
	hookTarget := gov
	if pc, okPC := gov.(*governor.PowerCapped); okPC {
		hookTarget = pc.Inner()
	}
	if sg, okStats := hookTarget.(interface{ Stats() core.Stats }); okStats {
		s.stats = sg.Stats
	}
	if hr, okHealth := hookTarget.(sensorHealthReporter); okHealth {
		s.sensor = hr.SensorHealth
	}
	if src, okDec := hookTarget.(interface{ OnDecision(func(core.Decision)) }); okDec {
		// The hook fires inside Advance, which only runs under s.mu.
		src.OnDecision(func(d core.Decision) {
			if len(s.pending) >= maxPendingDecisions {
				copy(s.pending, s.pending[1:])
				s.pending = s.pending[:maxPendingDecisions-1]
				s.dropped++
			}
			s.pending = append(s.pending, d)
		})
	}

	st, err := harness.NewSteppable(cfg, prog, gov, opt)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	s.st = st
	s.publishLocked()
	return s, nil
}

// healthLocked reduces the session's effective health: a failed session
// is lost, a watchdog-degraded one at least degraded, otherwise the
// governor's own sensor state.
func (s *Session) healthLocked() resilient.Health {
	if s.failErr != nil {
		return resilient.Lost
	}
	h := resilient.Healthy
	if s.sensor != nil {
		h = s.sensor()
	}
	if s.wdDegraded {
		h = resilient.Worst(h, resilient.Degraded)
	}
	return h
}

// stateLocked returns the lifecycle state.
func (s *Session) stateLocked() sessionState {
	switch {
	case s.failErr != nil:
		return stateFailed
	case s.st.Done():
		return stateDone
	default:
		return stateRunning
	}
}

// publishLocked republishes the coarse atomics for lock-free readers.
func (s *Session) publishLocked() {
	s.pubHealth.Store(int32(s.healthLocked()))
	s.pubState.Store(int32(s.stateLocked()))
	s.pubNow.Store(int64(s.st.Now()))
}

// fail marks the session failed (idempotent); callers hold mu. The
// failure lands in the flight ring as the terminal record, so the
// postmortem dump ends with what killed the session (A = steps served
// before the fatal one).
func (s *Session) failLocked(err error) {
	if s.failErr == nil {
		s.failErr = err
		s.ring.Record(s.st.Now().Seconds(), flight.KindPanic, "session_failed",
			float64(s.steps), 0, 0)
	}
}

// DecisionJSON is one governor decision in API responses.
type DecisionJSON struct {
	AtS       float64 `json:"at_s"`
	MemGBs    float64 `json:"mem_gbs"`
	Trend     string  `json:"trend"`
	TargetGHz float64 `json:"target_ghz"`
	PrevGHz   float64 `json:"prev_ghz"`
	Acted     bool    `json:"acted"`
	Reason    string  `json:"reason"`
	Health    string  `json:"health"`
}

func decisionJSON(d core.Decision) DecisionJSON {
	return DecisionJSON{
		AtS:       d.At.Seconds(),
		MemGBs:    d.ThroughputGBs,
		Trend:     d.Trend.String(),
		TargetGHz: d.TargetGHz,
		PrevGHz:   d.PrevGHz,
		Acted:     d.Acted,
		Reason:    d.Reason,
		Health:    d.SensorHealth.String(),
	}
}

// StatsJSON is the governor-counter snapshot in Status responses.
type StatsJSON struct {
	Invocations       uint64 `json:"invocations"`
	TuneEvents        uint64 `json:"tune_events"`
	HighFreqOverrides uint64 `json:"highfreq_overrides"`
	MSRWrites         uint64 `json:"msr_writes"`
	MissedSamples     uint64 `json:"missed_samples"`
	DegradedCycles    uint64 `json:"degraded_cycles"`
	LostCycles        uint64 `json:"lost_cycles"`
	Recoveries        uint64 `json:"recoveries"`
	WatchdogOverruns  uint64 `json:"watchdog_overruns"`
}

// WasteJSON is the attribution-ledger decomposition in Status
// responses (sessions created with "waste": true).
type WasteJSON struct {
	BaselineJ float64 `json:"baseline_j"`
	UsefulJ   float64 `json:"useful_j"`
	WasteJ    float64 `json:"waste_j"`
	TotalJ    float64 `json:"total_j"`
	WasteFrac float64 `json:"waste_frac"`
}

// TenantJSON is one tenant's energy attribution row in Status
// responses (co-located sessions). Estimated carries the DCGM-style
// label: false means every joule was measured under exclusive
// ownership, true means utilisation-share estimation contributed.
type TenantJSON struct {
	Tenant     string  `json:"tenant"`
	ExactJ     float64 `json:"exact_j"`
	EstimatedJ float64 `json:"estimated_j"`
	TotalJ     float64 `json:"total_j"`
	Estimated  bool    `json:"estimated"`
}

// AttributionJSON is the per-tenant energy split of a co-located
// session, live from session creation onward.
type AttributionJSON struct {
	Tenants []TenantJSON `json:"tenants"`
	// TotalJ is the independently integrated node energy the tenant
	// rows balance against; Balanced reports that invariant at the
	// report's sample-scaled ulp tolerance.
	TotalJ   float64 `json:"total_j"`
	Balanced bool    `json:"balanced"`
}

// ResultJSON is the finalised run outcome of a completed session.
type ResultJSON struct {
	RuntimeS     float64 `json:"runtime_s"`
	AvgCPUPowerW float64 `json:"avg_cpu_w"`
	PkgEnergyJ   float64 `json:"pkg_j"`
	DramEnergyJ  float64 `json:"dram_j"`
	GPUEnergyJ   float64 `json:"gpu_j"`
	TotalEnergyJ float64 `json:"total_j"`
	FaultsFired  uint64  `json:"faults_fired,omitempty"`
}

// Status is one session's externally visible state.
type Status struct {
	ID       string  `json:"id"`
	Tenant   string  `json:"tenant"`
	System   string  `json:"system"`
	Workload string  `json:"workload"`
	Governor string  `json:"governor"`
	State    string  `json:"state"`
	Health   string  `json:"health"`
	NowS     float64 `json:"now_s"`
	HorizonS float64 `json:"horizon_s"`
	Steps    uint64  `json:"steps"`
	IdleS    float64 `json:"idle_s"`
	Faults   string  `json:"faults,omitempty"`
	// StepOverruns counts steps that blew the serve-layer wall-clock
	// watchdog budget (distinct from the governor's own virtual-time
	// sensor watchdog in Stats).
	StepOverruns uint64 `json:"step_overruns,omitempty"`
	Error        string `json:"error,omitempty"`

	Stats       *StatsJSON       `json:"stats,omitempty"`
	Waste       *WasteJSON       `json:"waste,omitempty"`
	Attribution *AttributionJSON `json:"attribution,omitempty"`
	Result      *ResultJSON      `json:"result,omitempty"`
}

// StepResult is the outcome of one step request.
type StepResult struct {
	ID               string         `json:"id"`
	NowS             float64        `json:"now_s"`
	Done             bool           `json:"done"`
	Health           string         `json:"health"`
	Decisions        []DecisionJSON `json:"decisions,omitempty"`
	DecisionsDropped uint64         `json:"decisions_dropped,omitempty"`
	Result           *ResultJSON    `json:"result,omitempty"`
}

// statusLocked snapshots the session; callers hold mu.
func (s *Session) statusLocked(now time.Time) Status {
	st := Status{
		ID:       s.ID,
		Tenant:   s.Spec.Tenant,
		System:   s.st.Node().Config().Name,
		Workload: s.wlabel,
		Governor: s.gov.Name(),
		State:    s.stateLocked().String(),
		Health:   s.healthLocked().String(),
		NowS:     s.st.Now().Seconds(),
		HorizonS: s.st.Horizon().Seconds(),
		Steps:    s.steps,
		IdleS:    now.Sub(time.Unix(0, s.lastActive.Load())).Seconds(),
		Faults:   s.Spec.Faults,

		StepOverruns: s.wdOverruns,
	}
	if s.failErr != nil {
		st.Error = s.failErr.Error()
	}
	if s.stats != nil {
		c := s.stats()
		st.Stats = &StatsJSON{
			Invocations:       c.Invocations,
			TuneEvents:        c.TuneEvents,
			HighFreqOverrides: c.Overrides,
			MSRWrites:         c.MSRWrites,
			MissedSamples:     c.MissedSamples,
			DegradedCycles:    c.DegradedCycles,
			LostCycles:        c.LostCycles,
			Recoveries:        c.Recoveries,
			WatchdogOverruns:  c.WatchdogOverruns,
		}
	}
	if s.tracer != nil {
		run := s.tracer.Ledger().Run()
		st.Waste = &WasteJSON{
			BaselineJ: run.BaselineJ,
			UsefulJ:   run.UsefulJ,
			WasteJ:    run.WasteJ,
			TotalJ:    run.TotalJ,
			WasteFrac: run.WasteFrac(),
		}
	}
	if rep := s.st.TenantReport(); rep != nil {
		a := &AttributionJSON{
			TotalJ:   rep.TotalJ,
			Balanced: rep.Balanced(rep.BalanceTol()),
		}
		for _, t := range rep.Tenants {
			a.Tenants = append(a.Tenants, TenantJSON{
				Tenant:     t.Tenant,
				ExactJ:     t.ExactJ,
				EstimatedJ: t.EstimatedJ,
				TotalJ:     t.TotalJ(),
				Estimated:  t.Estimated(),
			})
		}
		st.Attribution = a
	}
	if s.st.Done() {
		st.Result = resultJSON(s.st.Result())
	}
	return st
}

// watchdogDegradeAfter is how many wall-clock step overruns mark a
// session degraded. One overrun can be scheduler noise; a streak means
// the tenant's workload is too expensive for its configured budget.
const watchdogDegradeAfter = 3

// step advances the session by up to d of virtual time under its lock.
// A panic inside the simulation is contained here: the session is
// marked failed and every later request gets ErrSessionFailed, while
// all other tenants keep running. wallBudget > 0 arms the per-step
// watchdog. Stepping a completed session is idempotent and returns the
// finalised result.
func (s *Session) step(d, wallBudget time.Duration, now time.Time) (StepResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lastActive.Store(now.UnixNano())
	defer s.publishLocked()

	if s.failErr != nil {
		return StepResult{}, fmt.Errorf("%w: %v", ErrSessionFailed, s.failErr)
	}
	if !s.st.Done() {
		start := time.Now()
		_, err := s.advanceGuarded(d)
		if wallBudget > 0 && time.Since(start) > wallBudget {
			s.wdOverruns++
			if s.wdOverruns >= watchdogDegradeAfter {
				s.wdDegraded = true
			}
		}
		if err != nil {
			s.failLocked(err)
			return StepResult{}, fmt.Errorf("%w: %v", ErrSessionFailed, err)
		}
		s.steps++
	}
	return s.stepResultLocked(), nil
}

// advanceGuarded is the only place tenant simulation code runs; the
// recover turns a panicking governor or workload into an error instead
// of a daemon crash.
func (s *Session) advanceGuarded(d time.Duration) (done bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	if s.stepHook != nil {
		s.stepHook()
	}
	return s.st.Advance(d)
}

// stepResultLocked assembles a step response and drains the pending
// decision backlog.
func (s *Session) stepResultLocked() StepResult {
	res := StepResult{
		ID:               s.ID,
		NowS:             s.st.Now().Seconds(),
		Done:             s.st.Done(),
		Health:           s.healthLocked().String(),
		DecisionsDropped: s.dropped,
	}
	if len(s.pending) > 0 {
		res.Decisions = make([]DecisionJSON, len(s.pending))
		for i, d := range s.pending {
			res.Decisions[i] = decisionJSON(d)
		}
		s.pending = s.pending[:0]
	}
	s.dropped = 0
	if res.Done {
		res.Result = resultJSON(s.st.Result())
	}
	return res
}

// status snapshots the session for GET requests.
func (s *Session) status(now time.Time) Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statusLocked(now)
}

func resultJSON(r harness.Result) *ResultJSON {
	return &ResultJSON{
		RuntimeS:     r.RuntimeS,
		AvgCPUPowerW: r.AvgCPUPowerW,
		PkgEnergyJ:   r.PkgEnergyJ,
		DramEnergyJ:  r.DramEnergyJ,
		GPUEnergyJ:   r.GPUEnergyJ,
		TotalEnergyJ: r.TotalEnergyJ(),
		FaultsFired:  r.FaultsInjected.Total(),
	}
}

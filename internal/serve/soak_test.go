package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/spear-repro/magus/internal/faults"
	"github.com/spear-repro/magus/internal/harness"
	"github.com/spear-repro/magus/internal/workload"
)

// TestSoakMultiTenant is the chaos test the robustness PR hangs on:
// 64 concurrent tenant sessions — a mix of governors, fault presets
// and deliberately panicking tenants — driven to completion from many
// goroutines while extra load hammers the admission limit. It asserts:
//
//   - every well-behaved tenant finishes with the identical result of
//     the equivalent direct harness.Run (no cross-contamination);
//   - every panicking tenant is contained: ErrSessionFailed for it,
//     no effect on anyone else;
//   - overload sheds explicitly (ErrSessionLimit/ErrOverloaded),
//     never hangs;
//   - the final drain completes inside its deadline.
//
// Run it under -race: the point is that tenant isolation holds under
// real concurrency.
func TestSoakMultiTenant(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short")
	}

	const tenants = 64
	workloads := []string{"bfs", "gemm", "cfd"}
	governors := []string{"magus", "ups", "duf", "default"}
	presets := []string{"", "pcm-flaky", "", "pcm-outage", ""}

	type tenantSpec struct {
		spec    Spec
		hostile bool // injects a panic on the tenant's 3rd step
	}
	specs := make([]tenantSpec, tenants)
	for i := range specs {
		specs[i] = tenantSpec{
			spec: Spec{
				Tenant:   fmt.Sprintf("tenant-%02d", i),
				Workload: workloads[i%len(workloads)],
				Governor: governors[i%len(governors)],
				Faults:   presets[i%len(presets)],
				Seed:     int64(i + 1),
				Waste:    i%4 == 0,
			},
			hostile: i%16 == 5, // 4 of 64 tenants are hostile
		}
	}

	// Expected results for the well-behaved tenants, computed without
	// the serve layer. Identical outcomes prove tenant isolation.
	expect := make(map[string]harness.Result, tenants)
	var expectMu sync.Mutex
	var refWG sync.WaitGroup
	for _, ts := range specs {
		if ts.hostile {
			continue
		}
		refWG.Add(1)
		go func(sp Spec) {
			defer refWG.Done()
			cfg, err := systemByName(sp.System)
			if err != nil {
				t.Error(err)
				return
			}
			prog, _ := workload.ByName(sp.Workload)
			gov, err := buildGovernor(sp.Governor, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			opt := harness.Options{Seed: sp.Seed}
			if sp.Faults != "" {
				plan, _ := faults.Preset(sp.Faults)
				plan.Seed = sp.Seed
				opt.Faults = plan
			}
			res, err := harness.Run(cfg, prog, gov, opt)
			if err != nil {
				t.Errorf("%s: reference run: %v", sp.Tenant, err)
				return
			}
			expectMu.Lock()
			expect[sp.Tenant] = res
			expectMu.Unlock()
		}(ts.spec)
	}
	refWG.Wait()
	if t.Failed() {
		t.FailNow()
	}

	mg := NewManager(Config{
		MaxSessions: tenants,
		MaxInflight: 8,
		MaxQueue:    256, // the tenant herd itself must not shed creates
		IdleExpiry:  -1,  // reaper exercised separately in TestIdleExpiry
	})

	var shed, limited atomic.Int64

	// Phase 1: admit the full herd, concurrently, before any pressure
	// load exists — all 64 must fit the limit exactly.
	ids := make([]string, tenants)
	failures := make([]error, tenants)
	var admitWG sync.WaitGroup
	for i, ts := range specs {
		admitWG.Add(1)
		go func(i int, sp Spec) {
			defer admitWG.Done()
			st, err := mg.Create(sp)
			if err != nil {
				failures[i] = fmt.Errorf("create: %w", err)
				return
			}
			ids[i] = st.ID
		}(i, ts.spec)
	}
	admitWG.Wait()
	for i, err := range failures {
		if err != nil {
			t.Fatalf("%s: %v", specs[i].spec.Tenant, err)
		}
	}

	// Phase 2: background pressure — constant creates above the now
	// fully occupied admission limit must 429, never hang and never
	// evict a live tenant.
	stopPressure := make(chan struct{})
	pressureDone := make(chan struct{})
	go func() {
		defer close(pressureDone)
		for i := 0; ; i++ {
			select {
			case <-stopPressure:
				return
			default:
			}
			_, err := mg.Create(Spec{Tenant: fmt.Sprintf("gate-crasher-%d", i), Workload: "bfs"})
			switch {
			case err == nil:
				t.Error("create above the admission limit succeeded")
				return
			case errors.Is(err, ErrSessionLimit):
				limited.Add(1)
			case errors.Is(err, ErrOverloaded):
				shed.Add(1)
			default:
				t.Errorf("gate crasher: unexpected error %v", err)
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// Phase 3: the herd steps to completion with ragged,
	// per-tenant-random step sizes.
	results := make([]StepResult, tenants)
	var herd sync.WaitGroup
	for i, ts := range specs {
		herd.Add(1)
		go func(i int, ts tenantSpec) {
			defer herd.Done()
			rng := rand.New(rand.NewSource(int64(1000 + i)))
			id := ids[i]
			if ts.hostile {
				s, lerr := mg.lookup(id)
				if lerr != nil {
					failures[i] = lerr
					return
				}
				var n atomic.Int64
				s.stepHook = func() {
					if n.Add(1) == 3 {
						panic("soak: hostile tenant " + ts.spec.Tenant)
					}
				}
			}
			for step := 0; step < 10000; step++ {
				d := time.Duration(200+rng.Intn(4800)) * time.Millisecond
				res, serr := mg.Step(id, d)
				switch {
				case serr == nil:
					if res.Done {
						results[i] = res
						return
					}
				case errors.Is(serr, ErrOverloaded):
					shed.Add(1)
					time.Sleep(time.Millisecond)
				case errors.Is(serr, ErrSessionFailed) && ts.hostile:
					failures[i] = serr // expected containment
					return
				default:
					failures[i] = fmt.Errorf("step: %w", serr)
					return
				}
			}
			failures[i] = errors.New("never completed")
		}(i, ts)
	}

	herdDone := make(chan struct{})
	go func() {
		herd.Wait()
		close(herdDone)
	}()
	select {
	case <-herdDone:
	case <-time.After(5 * time.Minute):
		t.Fatal("soak herd wedged") // a hang is exactly the bug this test hunts
	}
	close(stopPressure)
	<-pressureDone

	// Verdicts.
	for i, ts := range specs {
		if ts.hostile {
			if !errors.Is(failures[i], ErrSessionFailed) {
				t.Errorf("%s: hostile tenant not contained: %v", ts.spec.Tenant, failures[i])
			}
			continue
		}
		if failures[i] != nil {
			t.Errorf("%s: %v", ts.spec.Tenant, failures[i])
			continue
		}
		want, ok := expect[ts.spec.Tenant]
		if !ok {
			continue
		}
		got := results[i].Result
		if got == nil {
			t.Errorf("%s: no result", ts.spec.Tenant)
			continue
		}
		if got.RuntimeS != want.RuntimeS || got.TotalEnergyJ != want.TotalEnergyJ() ||
			got.PkgEnergyJ != want.PkgEnergyJ || got.GPUEnergyJ != want.GPUEnergyJ {
			t.Errorf("%s: served result diverged from direct run:\n got  %+v\n want runtime %v pkg %v gpu %v total %v",
				ts.spec.Tenant, got, want.RuntimeS, want.PkgEnergyJ, want.GPUEnergyJ, want.TotalEnergyJ())
		}
	}
	if limited.Load() == 0 {
		t.Error("admission pressure never observed ErrSessionLimit")
	}
	t.Logf("soak: %d tenants, %d limited creates, %d shed requests", tenants, limited.Load(), shed.Load())

	// Health must reflect the hostile tenants without a service outage.
	if h := mg.Health(); h.Status != "ok" || h.Lost == 0 {
		t.Errorf("post-soak health = %+v", h)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := mg.Close(ctx); err != nil {
		t.Fatalf("drain after soak: %v", err)
	}
}

// TestConcurrentMixedOps hammers every manager entry point at once —
// create, step, get, list, health, close, reap — looking for data
// races and deadlocks rather than specific outcomes.
func TestConcurrentMixedOps(t *testing.T) {
	mg := newTestManager(t, Config{MaxSessions: 16, MaxInflight: 4, MaxQueue: 8, IdleExpiry: -1})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch rng.Intn(6) {
				case 0:
					mg.Create(Spec{Tenant: fmt.Sprintf("w%d", w), Workload: "bfs", Seed: int64(w + 1)})
				case 1:
					if l := mg.List(); len(l) > 0 {
						mg.Step(l[rng.Intn(len(l))].ID, 500*time.Millisecond)
					}
				case 2:
					if l := mg.List(); len(l) > 0 {
						mg.Get(l[rng.Intn(len(l))].ID)
					}
				case 3:
					mg.Health()
				case 4:
					if l := mg.List(); len(l) > 0 && rng.Intn(4) == 0 {
						mg.CloseSession(l[rng.Intn(len(l))].ID)
					}
				case 5:
					mg.reapOnce()
				}
			}
		}(w)
	}
	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()
}

package serve

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/spear-repro/magus/internal/core"
	"github.com/spear-repro/magus/internal/harness"
	"github.com/spear-repro/magus/internal/node"
	"github.com/spear-repro/magus/internal/workload"
)

// fakeClock is an injectable wall clock for idle-expiry tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	mg := NewManager(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		mg.Close(ctx)
	})
	return mg
}

func createSession(t *testing.T, mg *Manager, tenant string) Status {
	t.Helper()
	st, err := mg.Create(Spec{Tenant: tenant, Workload: "bfs"})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// stepToDone drives a session to completion and returns the final step.
func stepToDone(t *testing.T, mg *Manager, id string) StepResult {
	t.Helper()
	for i := 0; i < 1000; i++ {
		res, err := mg.Step(id, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if res.Done {
			return res
		}
	}
	t.Fatal("session never completed")
	return StepResult{}
}

// TestSessionMatchesHarnessRun pins the tenancy contract: a session
// stepped over the API produces the identical result of the equivalent
// direct harness.Run.
func TestSessionMatchesHarnessRun(t *testing.T) {
	prog, _ := workload.ByName("bfs")
	want, err := harness.Run(node.IntelA100(), prog, core.New(core.DefaultConfig()), harness.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	mg := newTestManager(t, Config{})
	st, err := mg.Create(Spec{Tenant: "t0", Workload: "bfs", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res := stepToDone(t, mg, st.ID)
	if res.Result == nil {
		t.Fatal("no result on final step")
	}
	if res.Result.RuntimeS != want.RuntimeS || res.Result.TotalEnergyJ != want.TotalEnergyJ() {
		t.Fatalf("served run diverged: %+v vs runtime %v energy %v",
			res.Result, want.RuntimeS, want.TotalEnergyJ())
	}

	// The completed session stays queryable until closed.
	got, err := mg.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != "done" || got.Result == nil {
		t.Fatalf("status after completion = %+v", got)
	}
	if err := mg.CloseSession(st.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := mg.Get(st.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after close = %v, want ErrNotFound", err)
	}
}

// TestAdmissionLimit pins bounded admission: creates beyond
// MaxSessions fail fast with ErrSessionLimit and closing a session
// frees the slot.
func TestAdmissionLimit(t *testing.T) {
	mg := newTestManager(t, Config{MaxSessions: 2})
	a := createSession(t, mg, "a")
	createSession(t, mg, "b")
	if _, err := mg.Create(Spec{Tenant: "c", Workload: "bfs"}); !errors.Is(err, ErrSessionLimit) {
		t.Fatalf("third create = %v, want ErrSessionLimit", err)
	}
	if got := mg.Metrics().rejectedFull.Value(); got != 1 {
		t.Fatalf("rejected counter = %v, want 1", got)
	}
	if err := mg.CloseSession(a.ID); err != nil {
		t.Fatal(err)
	}
	createSession(t, mg, "c")
}

// TestBackpressureSheds pins the bounded queue: with every inflight
// slot blocked and the queue full, further work sheds immediately with
// ErrOverloaded instead of queueing forever.
func TestBackpressureSheds(t *testing.T) {
	mg := newTestManager(t, Config{MaxInflight: 1, MaxQueue: 1})
	st := createSession(t, mg, "t")
	s, err := mg.lookup(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	entered := make(chan struct{})
	s.stepHook = func() {
		close(entered)
		<-block
	}

	stepErr := make(chan error, 1)
	go func() {
		_, err := mg.Step(st.ID, time.Second)
		stepErr <- err
	}()
	<-entered // the single inflight slot is now held

	// One waiter fits the queue; it must park, not fail.
	queuedErr := make(chan error, 1)
	go func() {
		_, err := mg.Step(st.ID, time.Second)
		queuedErr <- err
	}()
	waitFor(t, func() bool { return mg.queued.Load() == 1 })

	// The next request overflows the bounded queue and sheds.
	if _, err := mg.Step(st.ID, time.Second); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow step = %v, want ErrOverloaded", err)
	}
	if got := mg.Metrics().shed.Value(); got != 1 {
		t.Fatalf("shed counter = %v, want 1", got)
	}

	s.stepHook = nil
	close(block)
	if err := <-stepErr; err != nil {
		t.Fatal(err)
	}
	if err := <-queuedErr; err != nil {
		t.Fatal(err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPanicIsolation pins graceful degradation: a panicking tenant is
// marked failed/lost and keeps answering with ErrSessionFailed, while
// other tenants keep stepping and service health stays up.
func TestPanicIsolation(t *testing.T) {
	mg := newTestManager(t, Config{})
	bad := createSession(t, mg, "bad")
	good := createSession(t, mg, "good")

	s, err := mg.lookup(bad.ID)
	if err != nil {
		t.Fatal(err)
	}
	s.stepHook = func() { panic("injected tenant panic") }

	if _, err := mg.Step(bad.ID, time.Second); !errors.Is(err, ErrSessionFailed) {
		t.Fatalf("panicking step = %v, want ErrSessionFailed", err)
	}
	// The failure is sticky, even with the hook gone.
	s.stepHook = nil
	if _, err := mg.Step(bad.ID, time.Second); !errors.Is(err, ErrSessionFailed) {
		t.Fatalf("step after panic = %v, want ErrSessionFailed", err)
	}
	st, err := mg.Get(bad.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "failed" || st.Health != "lost" || !strings.Contains(st.Error, "injected tenant panic") {
		t.Fatalf("failed session status = %+v", st)
	}

	// The other tenant is untouched...
	if _, err := mg.Step(good.ID, time.Second); err != nil {
		t.Fatalf("healthy tenant blocked by neighbour panic: %v", err)
	}
	// ...and the service stays up: one lost tenant is tenant-level
	// state, not a service outage.
	h := mg.Health()
	if h.Status != "ok" || h.Lost != 1 || h.Worst != "lost" {
		t.Fatalf("service health = %+v", h)
	}
}

// TestIdleExpiry pins the reaper: sessions idle past IdleExpiry are
// closed, active ones stay.
func TestIdleExpiry(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	mg := newTestManager(t, Config{
		// IdleExpiry < 0 keeps the background loop off; reapOnce is
		// driven by hand against the fake clock.
		IdleExpiry: -1,
		Clock:      clk.now,
	})
	mg.cfg.IdleExpiry = time.Minute

	idle := createSession(t, mg, "idle")
	active := createSession(t, mg, "active")

	clk.advance(2 * time.Minute)
	if _, err := mg.Step(active.ID, time.Second); err != nil { // refreshes lastActive
		t.Fatal(err)
	}
	mg.reapOnce()

	if _, err := mg.Get(idle.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("idle session survived the reaper: %v", err)
	}
	if _, err := mg.Get(active.ID); err != nil {
		t.Fatalf("active session reaped: %v", err)
	}
	if got := mg.Metrics().reaped.Value(); got != 1 {
		t.Fatalf("reaped counter = %v, want 1", got)
	}
}

// TestWatchdogDegrades pins the per-step wall watchdog: repeated
// budget overruns mark the session degraded without killing it.
func TestWatchdogDegrades(t *testing.T) {
	mg := newTestManager(t, Config{StepWallBudget: time.Nanosecond})
	st := createSession(t, mg, "slow")
	s, _ := mg.lookup(st.ID)
	s.stepHook = func() { time.Sleep(100 * time.Microsecond) }

	for i := 0; i < watchdogDegradeAfter; i++ {
		if _, err := mg.Step(st.ID, time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	got, err := mg.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Health != "degraded" || got.StepOverruns < watchdogDegradeAfter {
		t.Fatalf("status after overruns = %+v", got)
	}
	if got.State != "running" {
		t.Fatalf("watchdog killed the session: state %q", got.State)
	}
}

// TestDrain pins graceful shutdown: Close rejects queued waiters and
// new work with ErrDraining, waits for in-flight work, and empties the
// session table.
func TestDrain(t *testing.T) {
	mg := NewManager(Config{MaxInflight: 1, MaxQueue: 4})
	st, err := mg.Create(Spec{Tenant: "t", Workload: "bfs"})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := mg.lookup(st.ID)
	block := make(chan struct{})
	entered := make(chan struct{})
	s.stepHook = func() {
		close(entered)
		<-block
	}

	inflightErr := make(chan error, 1)
	go func() {
		_, err := mg.Step(st.ID, time.Second)
		inflightErr <- err
	}()
	<-entered

	queuedErr := make(chan error, 1)
	go func() {
		_, err := mg.Step(st.ID, time.Second)
		queuedErr <- err
	}()
	waitFor(t, func() bool { return mg.queued.Load() == 1 })

	closed := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		closed <- mg.Close(ctx)
	}()

	// The queued waiter must be released with ErrDraining promptly,
	// while the in-flight step is still running.
	if err := <-queuedErr; !errors.Is(err, ErrDraining) {
		t.Fatalf("queued waiter = %v, want ErrDraining", err)
	}
	// New work is rejected immediately.
	if _, err := mg.Create(Spec{Tenant: "late", Workload: "bfs"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("create during drain = %v, want ErrDraining", err)
	}

	s.stepHook = nil
	close(block) // let the in-flight step finish
	if err := <-inflightErr; err != nil {
		t.Fatalf("in-flight step failed: %v", err)
	}
	if err := <-closed; err != nil {
		t.Fatalf("drain = %v", err)
	}
	if h := mg.Health(); h.Sessions != 0 || !h.Draining || h.Status != "draining" {
		t.Fatalf("post-drain health = %+v", h)
	}
	// Close is idempotent.
	if err := mg.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestDrainDeadline pins that a wedged in-flight request cannot hold
// shutdown hostage past the deadline.
func TestDrainDeadline(t *testing.T) {
	mg := NewManager(Config{MaxInflight: 1})
	st, err := mg.Create(Spec{Tenant: "t", Workload: "bfs"})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := mg.lookup(st.ID)
	block := make(chan struct{})
	entered := make(chan struct{})
	s.stepHook = func() {
		close(entered)
		<-block
	}
	go mg.Step(st.ID, time.Second)
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := mg.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("wedged drain = %v, want DeadlineExceeded", err)
	}
	close(block)
}

// TestBadSpecs pins spec validation end to end.
func TestBadSpecs(t *testing.T) {
	mg := newTestManager(t, Config{})
	cases := []Spec{
		{},
		{Tenant: "t"},
		{Tenant: "t", Workload: "no-such-workload"},
		{Tenant: "t", Workload: "bfs", System: "cray"},
		{Tenant: "t", Workload: "bfs", Governor: "turbo"},
		{Tenant: "t", Workload: "bfs", Faults: "no-such-preset"},
		{Tenant: "t", Workload: "bfs", PowerCapW: -5},
	}
	for i, sp := range cases {
		if _, err := mg.Create(sp); !errors.Is(err, ErrBadSpec) {
			t.Errorf("case %d (%+v): err = %v, want ErrBadSpec", i, sp, err)
		}
	}
	if got := mg.Metrics().badSpec.Value(); got != float64(len(cases)) {
		t.Fatalf("bad-spec counter = %v, want %d", got, len(cases))
	}
}

// TestWasteLedger pins the PR 5 integration: a session created with
// waste attribution reports a coherent joule decomposition.
func TestWasteLedger(t *testing.T) {
	mg := newTestManager(t, Config{})
	st, err := mg.Create(Spec{Tenant: "t", Workload: "bfs", Governor: "magus", Waste: true})
	if err != nil {
		t.Fatal(err)
	}
	stepToDone(t, mg, st.ID)
	got, err := mg.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Waste == nil {
		t.Fatal("no waste attribution on a waste-armed session")
	}
	w := got.Waste
	sum := w.BaselineJ + w.UsefulJ + w.WasteJ
	if w.TotalJ <= 0 || sum <= 0 {
		t.Fatalf("degenerate ledger: %+v", w)
	}
	if diff := sum - w.TotalJ; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("ledger does not decompose: %v + %v + %v != %v", w.BaselineJ, w.UsefulJ, w.WasteJ, w.TotalJ)
	}
	if w.WasteFrac < 0 || w.WasteFrac > 1 {
		t.Fatalf("waste fraction %v out of [0,1]", w.WasteFrac)
	}
}

// TestFaultedSession pins that a fault-armed session degrades and
// recovers per-tenant without affecting its neighbours.
func TestFaultedSession(t *testing.T) {
	mg := newTestManager(t, Config{})
	faulted, err := mg.Create(Spec{Tenant: "f", Workload: "bfs", Governor: "magus", Faults: "pcm-flaky", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	clean := createSession(t, mg, "clean")

	res := stepToDone(t, mg, faulted.ID)
	if res.Result.FaultsFired == 0 {
		t.Fatal("fault-armed session saw no injections")
	}
	st, _ := mg.Get(faulted.ID)
	if st.Stats == nil || st.Stats.MissedSamples == 0 {
		t.Fatalf("faulted session stats = %+v", st.Stats)
	}

	cleanRes := stepToDone(t, mg, clean.ID)
	if cleanRes.Result.FaultsFired != 0 {
		t.Fatal("fault injection leaked into a clean session")
	}
}

// TestStepClamped pins that an oversized step request is clamped to
// MaxStep rather than rejected or run unbounded.
func TestStepClamped(t *testing.T) {
	mg := newTestManager(t, Config{MaxStep: time.Second})
	st := createSession(t, mg, "t")
	res, err := mg.Step(st.ID, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if res.NowS > 1.001 {
		t.Fatalf("step ran %v s virtual, want clamp at 1 s", res.NowS)
	}
}

// TestListOrder pins the deterministic listing.
func TestListOrder(t *testing.T) {
	mg := newTestManager(t, Config{})
	createSession(t, mg, "a")
	createSession(t, mg, "b")
	createSession(t, mg, "c")
	l := mg.List()
	if len(l) != 3 {
		t.Fatalf("len = %d", len(l))
	}
	for i := 1; i < len(l); i++ {
		if l[i-1].ID >= l[i].ID {
			t.Fatalf("list not ordered: %v", l)
		}
	}
}

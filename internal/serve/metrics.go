package serve

import "github.com/spear-repro/magus/internal/obs"

// metrics is the serve layer's own magus_serve_* metric families. They
// live in a dedicated observer so tenant simulations (which must stay
// byte-identical to unobserved runs) never share a registry with the
// service plane.
type metrics struct {
	obs *obs.Observer

	created      *obs.Counter
	closed       *obs.Counter
	completed    *obs.Counter
	failed       *obs.Counter
	reaped       *obs.Counter
	steps        *obs.Counter
	badSpec      *obs.Counter
	rejectedFull *obs.Counter
	shed         *obs.Counter

	live       *obs.Gauge
	queueDepth *obs.Gauge
	healthy    *obs.Gauge
	degraded   *obs.Gauge
	lost       *obs.Gauge
}

func newMetrics(cfg Config) *metrics {
	o := obs.New(obs.NewRegistry(), nil)
	r := o.Registry()
	m := &metrics{
		obs:          o,
		created:      r.Counter("magus_serve_sessions_created_total", "Sessions admitted."),
		closed:       r.Counter("magus_serve_sessions_closed_total", "Sessions closed by clients."),
		completed:    r.Counter("magus_serve_sessions_completed_total", "Sessions whose workload finished."),
		failed:       r.Counter("magus_serve_sessions_failed_total", "Step requests that failed a session (panic or horizon)."),
		reaped:       r.Counter("magus_serve_sessions_reaped_total", "Idle sessions closed by the reaper."),
		steps:        r.Counter("magus_serve_steps_total", "Step requests executed."),
		badSpec:      r.Counter("magus_serve_bad_spec_total", "Session specs rejected as malformed."),
		rejectedFull: r.Counter("magus_serve_rejected_session_limit_total", "Creates rejected at the admission limit (HTTP 429)."),
		shed:         r.Counter("magus_serve_shed_total", "Requests shed by the bounded work queue (HTTP 503)."),
		live:         r.Gauge("magus_serve_sessions_live", "Live sessions."),
		queueDepth:   r.Gauge("magus_serve_queue_depth", "Requests waiting for an inflight slot."),
		healthy:      r.Gauge("magus_serve_sessions_healthy", "Live sessions currently healthy."),
		degraded:     r.Gauge("magus_serve_sessions_degraded", "Live sessions currently degraded."),
		lost:         r.Gauge("magus_serve_sessions_lost", "Live sessions currently lost."),
	}
	r.Gauge("magus_serve_max_sessions", "Configured admission limit.").Set(float64(cfg.MaxSessions))
	r.Gauge("magus_serve_max_inflight", "Configured inflight bound.").Set(float64(cfg.MaxInflight))
	r.Gauge("magus_serve_max_queue", "Configured queue bound.").Set(float64(cfg.MaxQueue))
	return m
}

// healthGauges republishes the per-health session counts whenever the
// aggregate is computed.
func (m *metrics) healthGauges(h ServiceHealth) {
	m.healthy.Set(float64(h.Healthy))
	m.degraded.Set(float64(h.Degraded))
	m.lost.Set(float64(h.Lost))
}

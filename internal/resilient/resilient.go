// Package resilient is the graceful-degradation layer between the
// governors and the node's telemetry devices. Real deployments of a
// user-transparent daemon see transient counter-read failures,
// permission loss, stalled reads, frozen values and corrupted samples;
// the paper's runtimes assume every read succeeds instantly. This
// package supplies the two pieces every governor in this repo uses to
// survive a hostile sensor layer deterministically:
//
//   - Tracker: a per-sensor health state machine
//     (healthy → degraded → lost) driven by per-cycle hit/miss
//     outcomes, with recovery detection so a governor can re-enter its
//     warm-up after an outage.
//   - MemSensor: a resilient reader over a memory-throughput monitor —
//     bounded retry with deterministic backoff on transient errors,
//     virtual-clock read timeouts for stalled devices, and stale /
//     NaN / wild-value detection so garbage never reaches a trend
//     window.
//
// Everything is deterministic: retries are bounded counts, backoff is
// fixed virtual latency, and no wall-clock time is consulted, so a
// seeded run produces identical results whether or not the layer is in
// the path. With a healthy sensor the layer is a pass-through and adds
// nothing to a cycle.
package resilient

import (
	"math"
	"time"
)

// Health is the state of one sensor in the degradation state machine.
type Health int

const (
	// Healthy: the last cycle's read succeeded.
	Healthy Health = iota
	// Degraded: at least one recent cycle missed its sample; the
	// governor holds its last decision and waits.
	Degraded
	// Lost: LostAfter consecutive cycles missed; the governor degrades
	// to vendor-default behaviour (uncore pinned at max) so performance
	// is never sacrificed to a blind policy.
	Lost
)

// String implements fmt.Stringer.
func (h Health) String() string {
	switch h {
	case Degraded:
		return "degraded"
	case Lost:
		return "lost"
	default:
		return "healthy"
	}
}

// Worst reduces health states to the most severe one — the aggregation
// rule a multi-sensor (or multi-session) surface reports: healthy only
// when every input is healthy, lost as soon as any input is lost.
func Worst(hs ...Health) Health {
	w := Healthy
	for _, h := range hs {
		if h > w {
			w = h
		}
	}
	return w
}

// Config tunes the sensor fault handling. The zero value selects the
// defaults below, so embedding it in a governor config costs nothing.
type Config struct {
	// MaxRetries is how many extra read attempts a cycle makes after a
	// transient error (default 2).
	MaxRetries int
	// RetryBackoff is the deterministic virtual latency charged per
	// retry (default 10 ms).
	RetryBackoff time.Duration
	// ReadTimeout bounds the latency of one cycle's sensor access; a
	// read whose reported latency exceeds it counts as a missed sample
	// (default 150 ms). Latency is virtual, reported by devices that
	// implement LatencyReporter.
	ReadTimeout time.Duration
	// LostAfter is the number of consecutive missed samples after which
	// the sensor is declared lost (default 3).
	LostAfter int
	// StaleAfter declares a sample missed when the same nonzero reading
	// repeats this many consecutive cycles — a frozen counter, not a
	// quiet one (0 = disabled, the default: legitimate steady phases
	// may hold a constant level).
	StaleAfter int
	// MaxPlausibleGBs rejects throughput readings above this bound as
	// corrupted (default 10000 GB/s — far beyond any memory system;
	// negative disables).
	MaxPlausibleGBs float64
}

// DefaultConfig returns the default fault-handling parameters.
func DefaultConfig() Config {
	return Config{
		MaxRetries:      2,
		RetryBackoff:    10 * time.Millisecond,
		ReadTimeout:     150 * time.Millisecond,
		LostAfter:       3,
		StaleAfter:      0,
		MaxPlausibleGBs: 10000,
	}
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.MaxRetries <= 0 {
		c.MaxRetries = d.MaxRetries
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = d.RetryBackoff
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = d.ReadTimeout
	}
	if c.LostAfter <= 0 {
		c.LostAfter = d.LostAfter
	}
	if c.StaleAfter < 0 {
		c.StaleAfter = 0
	}
	if c.MaxPlausibleGBs == 0 {
		c.MaxPlausibleGBs = d.MaxPlausibleGBs
	}
	return c
}

// Counters aggregates a sensor's fault-handling activity for
// Runtime.Stats() and the telemetry traces.
type Counters struct {
	// Reads is the number of read cycles attempted.
	Reads uint64
	// Retries counts extra attempts after transient errors.
	Retries uint64
	// Timeouts counts cycles abandoned because the access latency
	// exceeded ReadTimeout.
	Timeouts uint64
	// WildDrops counts readings rejected as corrupted (NaN, negative,
	// implausibly large).
	WildDrops uint64
	// StaleDrops counts readings rejected as frozen.
	StaleDrops uint64
	// Misses is the number of cycles that produced no usable sample.
	Misses uint64
	// DegradedCycles and LostCycles count missed cycles spent in each
	// state.
	DegradedCycles uint64
	LostCycles     uint64
	// Recoveries counts healthy transitions out of degraded/lost.
	Recoveries uint64
}

// Tracker is the per-sensor health state machine. Governors whose
// sensing is spread over many raw reads (UPS's per-core sweeps, DUF's
// instruction counters) drive it directly with per-cycle hit/miss
// outcomes; MemSensor embeds one.
type Tracker struct {
	lostAfter int
	health    Health
	consec    int
	c         Counters
}

// NewTracker returns a tracker that declares the sensor lost after
// lostAfter consecutive misses (<= 0 selects the default 3).
func NewTracker(lostAfter int) *Tracker {
	if lostAfter <= 0 {
		lostAfter = DefaultConfig().LostAfter
	}
	return &Tracker{lostAfter: lostAfter}
}

// Health returns the current state.
func (t *Tracker) Health() Health { return t.health }

// Counters returns the accumulated miss/recovery counters.
func (t *Tracker) Counters() Counters { return t.c }

// Miss records a cycle without a usable sample and returns the health
// after the transition.
func (t *Tracker) Miss() Health {
	t.consec++
	t.c.Misses++
	if t.consec >= t.lostAfter {
		t.health = Lost
	} else {
		t.health = Degraded
	}
	if t.health == Lost {
		t.c.LostCycles++
	} else {
		t.c.DegradedCycles++
	}
	return t.health
}

// Good records a successful cycle; recoveredFromLost reports whether
// this sample ended a full outage (the caller should re-enter warm-up
// and re-baseline its references).
func (t *Tracker) Good() (recoveredFromLost bool) {
	recoveredFromLost = t.health == Lost
	if t.health != Healthy {
		t.c.Recoveries++
	}
	t.health = Healthy
	t.consec = 0
	return recoveredFromLost
}

// MemReader is the read surface of a memory-throughput monitor
// (*pcm.Monitor and the fault-injection wrapper both satisfy it).
type MemReader interface {
	SystemMemoryThroughput(now time.Duration) (float64, error)
}

// LatencyReporter is optionally implemented by devices that model
// access latency (the fault-injection layer's stall faults). The
// reported latency is virtual time consumed by the last read.
type LatencyReporter interface {
	LastReadLatency() time.Duration
}

// Reading is the outcome of one resilient read cycle.
type Reading struct {
	// GBs is the validated throughput sample; meaningless when !OK.
	GBs float64
	// Latency is the virtual time the cycle's sensor access consumed
	// (stalls plus retry backoff); 0 on an instant clean read.
	Latency time.Duration
	// OK reports whether the cycle produced a usable sample.
	OK bool
	// Health is the sensor state after this cycle.
	Health Health
	// RecoveredFromLost marks the first good sample after a full
	// outage: the consumer should re-enter warm-up.
	RecoveredFromLost bool
}

// MemSensor wraps a throughput monitor with retry, timeout, validation
// and health tracking.
type MemSensor struct {
	inner   MemReader
	cfg     Config
	tracker *Tracker

	lastGood float64
	staleRun int

	retries, timeouts, wild, stale, reads uint64
}

// NewMemSensor builds a sensor over inner (zero-value cfg = defaults).
func NewMemSensor(inner MemReader, cfg Config) *MemSensor {
	if inner == nil {
		panic("resilient: nil memory reader")
	}
	cfg = cfg.withDefaults()
	return &MemSensor{inner: inner, cfg: cfg, tracker: NewTracker(cfg.LostAfter)}
}

// Health returns the sensor's current state.
func (s *MemSensor) Health() Health { return s.tracker.Health() }

// Counters merges the read-level and tracker-level counters.
func (s *MemSensor) Counters() Counters {
	c := s.tracker.Counters()
	c.Reads = s.reads
	c.Retries = s.retries
	c.Timeouts = s.timeouts
	c.WildDrops = s.wild
	c.StaleDrops = s.stale
	return c
}

// Read performs one resilient read cycle at virtual time now.
func (s *MemSensor) Read(now time.Duration) Reading {
	s.reads++
	var lat time.Duration
	for attempt := 0; attempt <= s.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			lat += s.cfg.RetryBackoff
			s.retries++
		}
		v, err := s.inner.SystemMemoryThroughput(now)
		if lr, ok := s.inner.(LatencyReporter); ok {
			lat += lr.LastReadLatency()
		}
		if lat > s.cfg.ReadTimeout {
			// The access budget is burnt whether or not a value came
			// back: a decision loop cannot wait on a stalled device.
			s.timeouts++
			break
		}
		if err != nil {
			continue
		}
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 ||
			(s.cfg.MaxPlausibleGBs > 0 && v > s.cfg.MaxPlausibleGBs) {
			s.wild++
			continue
		}
		if s.cfg.StaleAfter > 0 && v != 0 && v == s.lastGood {
			s.staleRun++
			if s.staleRun >= s.cfg.StaleAfter {
				// A bit-identical nonzero reading repeated this long is
				// a frozen sensor, and retrying won't thaw it.
				s.stale++
				break
			}
		} else {
			s.staleRun = 0
		}
		s.lastGood = v
		recovered := s.tracker.Good()
		return Reading{GBs: v, Latency: lat, OK: true, Health: Healthy, RecoveredFromLost: recovered}
	}
	return Reading{Latency: lat, Health: s.tracker.Miss()}
}

package resilient

import (
	"math/rand"
	"testing"
)

// trackerModel is an independent reference implementation of the
// documented Tracker contract, driven alongside the real one.
type trackerModel struct {
	lostAfter int
	health    Health
	consec    int
	c         Counters
}

func (m *trackerModel) miss() Health {
	m.consec++
	m.c.Misses++
	if m.consec >= m.lostAfter {
		m.health = Lost
		m.c.LostCycles++
	} else {
		m.health = Degraded
		m.c.DegradedCycles++
	}
	return m.health
}

func (m *trackerModel) good() bool {
	fromLost := m.health == Lost
	if m.health != Healthy {
		m.c.Recoveries++
	}
	m.health = Healthy
	m.consec = 0
	return fromLost
}

// TestTrackerRandomizedStateMachine drives arbitrary Miss/Good
// sequences against a reference model and asserts, step by step, the
// healthy→degraded→lost transitions, recovery reporting, and the
// counter invariants (monotonicity, Misses == DegradedCycles +
// LostCycles, Recoveries bounded by Good calls).
func TestTrackerRandomizedStateMachine(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		lostAfter := 1 + rng.Intn(5)
		tr := NewTracker(lostAfter)
		model := &trackerModel{lostAfter: lostAfter}
		goods := uint64(0)
		var prev Counters

		for step := 0; step < 2000; step++ {
			if rng.Intn(100) < 60 { // biased toward misses to exercise Lost
				got := tr.Miss()
				want := model.miss()
				if got != want {
					t.Fatalf("seed %d step %d: Miss() = %v, model %v", seed, step, got, want)
				}
			} else {
				goods++
				got := tr.Good()
				want := model.good()
				if got != want {
					t.Fatalf("seed %d step %d: Good() recoveredFromLost = %v, model %v", seed, step, got, want)
				}
			}
			if tr.Health() != model.health {
				t.Fatalf("seed %d step %d: Health() = %v, model %v", seed, step, tr.Health(), model.health)
			}

			c := tr.Counters()
			if c != model.c {
				t.Fatalf("seed %d step %d: Counters() = %+v, model %+v", seed, step, c, model.c)
			}
			// Monotonicity: no counter ever decreases.
			if c.Misses < prev.Misses || c.DegradedCycles < prev.DegradedCycles ||
				c.LostCycles < prev.LostCycles || c.Recoveries < prev.Recoveries {
				t.Fatalf("seed %d step %d: counters went backwards: %+v after %+v", seed, step, c, prev)
			}
			prev = c
			// Every miss lands in exactly one health-state bucket.
			if c.DegradedCycles+c.LostCycles != c.Misses {
				t.Fatalf("seed %d step %d: degraded %d + lost %d != misses %d",
					seed, step, c.DegradedCycles, c.LostCycles, c.Misses)
			}
			// A recovery needs a Good call, and at most one per Good.
			if c.Recoveries > goods {
				t.Fatalf("seed %d step %d: %d recoveries from %d Good calls", seed, step, c.Recoveries, goods)
			}
			// Health must agree with the consecutive-miss rule.
			switch h := tr.Health(); h {
			case Healthy:
				if model.consec != 0 {
					t.Fatalf("seed %d step %d: healthy with %d consecutive misses", seed, step, model.consec)
				}
			case Degraded:
				if model.consec <= 0 || model.consec >= lostAfter {
					t.Fatalf("seed %d step %d: degraded with %d consecutive misses (lostAfter %d)",
						seed, step, model.consec, lostAfter)
				}
			case Lost:
				if model.consec < lostAfter {
					t.Fatalf("seed %d step %d: lost with only %d consecutive misses (lostAfter %d)",
						seed, step, model.consec, lostAfter)
				}
			default:
				t.Fatalf("seed %d step %d: unknown health %v", seed, step, h)
			}
		}
	}
}

// TestWorst pins the aggregation rule serve's /healthz relies on.
func TestWorst(t *testing.T) {
	cases := []struct {
		in   []Health
		want Health
	}{
		{nil, Healthy},
		{[]Health{Healthy, Healthy}, Healthy},
		{[]Health{Healthy, Degraded, Healthy}, Degraded},
		{[]Health{Degraded, Lost, Healthy}, Lost},
		{[]Health{Lost}, Lost},
	}
	for _, c := range cases {
		if got := Worst(c.in...); got != c.want {
			t.Errorf("Worst(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

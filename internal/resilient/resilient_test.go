package resilient

import (
	"errors"
	"math"
	"testing"
	"time"
)

// script is a MemReader whose per-call outcomes are preloaded.
type script struct {
	vals []float64
	errs []error
	lats []time.Duration
	i    int
}

func (s *script) SystemMemoryThroughput(time.Duration) (float64, error) {
	i := s.i
	if i >= len(s.vals) {
		i = len(s.vals) - 1
	}
	s.i++
	var err error
	if s.errs != nil && i < len(s.errs) {
		err = s.errs[i]
	}
	return s.vals[i], err
}

func (s *script) LastReadLatency() time.Duration {
	i := s.i - 1
	if s.lats == nil || i < 0 || i >= len(s.lats) {
		return 0
	}
	return s.lats[i]
}

var errDown = errors.New("down")

func TestTrackerStateMachine(t *testing.T) {
	tr := NewTracker(3)
	if tr.Health() != Healthy {
		t.Fatalf("initial health = %v", tr.Health())
	}
	if got := tr.Miss(); got != Degraded {
		t.Fatalf("after 1 miss: %v, want degraded", got)
	}
	if got := tr.Miss(); got != Degraded {
		t.Fatalf("after 2 misses: %v, want degraded", got)
	}
	if got := tr.Miss(); got != Lost {
		t.Fatalf("after 3 misses: %v, want lost", got)
	}
	if !tr.Good() {
		t.Fatal("recovery from lost not reported")
	}
	if tr.Health() != Healthy {
		t.Fatalf("health after recovery = %v", tr.Health())
	}
	// A degraded-only dip is not a recovery *from lost*.
	tr.Miss()
	if tr.Good() {
		t.Fatal("recovery from degraded misreported as from-lost")
	}
	c := tr.Counters()
	if c.Misses != 4 || c.LostCycles != 1 || c.DegradedCycles != 3 || c.Recoveries != 2 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestMemSensorPassThrough(t *testing.T) {
	s := NewMemSensor(&script{vals: []float64{42.5}}, Config{})
	r := s.Read(time.Second)
	if !r.OK || r.GBs != 42.5 || r.Latency != 0 || r.Health != Healthy {
		t.Fatalf("clean read = %+v", r)
	}
	c := s.Counters()
	if c.Reads != 1 || c.Retries != 0 || c.Misses != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestMemSensorRetriesTransientError(t *testing.T) {
	s := NewMemSensor(&script{
		vals: []float64{0, 0, 30},
		errs: []error{errDown, errDown, nil},
	}, Config{})
	r := s.Read(time.Second)
	if !r.OK || r.GBs != 30 {
		t.Fatalf("read = %+v, want recovered 30", r)
	}
	if want := 2 * DefaultConfig().RetryBackoff; r.Latency != want {
		t.Fatalf("latency = %v, want 2 backoffs = %v", r.Latency, want)
	}
	if c := s.Counters(); c.Retries != 2 || c.Misses != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestMemSensorMissAfterRetryBudget(t *testing.T) {
	s := NewMemSensor(&script{
		vals: []float64{0, 0, 0},
		errs: []error{errDown, errDown, errDown},
	}, Config{})
	r := s.Read(time.Second)
	if r.OK || r.Health != Degraded {
		t.Fatalf("read = %+v, want degraded miss", r)
	}
	if c := s.Counters(); c.Retries != 2 || c.Misses != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestMemSensorTimeoutOnStall(t *testing.T) {
	s := NewMemSensor(&script{
		vals: []float64{30},
		lats: []time.Duration{400 * time.Millisecond},
	}, Config{})
	r := s.Read(time.Second)
	if r.OK {
		t.Fatalf("stalled read accepted: %+v", r)
	}
	if r.Latency != 400*time.Millisecond {
		t.Fatalf("latency = %v", r.Latency)
	}
	if c := s.Counters(); c.Timeouts != 1 || c.Misses != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestMemSensorRejectsWildValues(t *testing.T) {
	for _, wild := range []float64{math.NaN(), math.Inf(1), -3, 99999} {
		s := NewMemSensor(&script{vals: []float64{wild, wild, wild}}, Config{})
		if r := s.Read(0); r.OK {
			t.Fatalf("wild value %v accepted: %+v", wild, r)
		}
		if c := s.Counters(); c.WildDrops != 3 || c.Misses != 1 {
			t.Fatalf("wild %v: counters = %+v", wild, c)
		}
	}
}

func TestMemSensorWildThenGoodWithinBudget(t *testing.T) {
	s := NewMemSensor(&script{vals: []float64{math.NaN(), 25}}, Config{})
	r := s.Read(0)
	if !r.OK || r.GBs != 25 {
		t.Fatalf("read = %+v, want retried 25", r)
	}
}

func TestMemSensorStaleDetection(t *testing.T) {
	s := NewMemSensor(&script{vals: []float64{30, 30, 30, 30}}, Config{StaleAfter: 2})
	if r := s.Read(0); !r.OK {
		t.Fatalf("first read = %+v", r)
	}
	if r := s.Read(time.Second); !r.OK {
		t.Fatalf("first repeat (run 1 < 2) = %+v", r)
	}
	if r := s.Read(2 * time.Second); r.OK {
		t.Fatalf("frozen value accepted: %+v", r)
	}
	if c := s.Counters(); c.StaleDrops != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestMemSensorStaleDisabledByDefault(t *testing.T) {
	vals := make([]float64, 20)
	for i := range vals {
		vals[i] = 30
	}
	s := NewMemSensor(&script{vals: vals}, Config{})
	for i := 0; i < 20; i++ {
		if r := s.Read(time.Duration(i) * time.Second); !r.OK {
			t.Fatalf("read %d rejected with StaleAfter disabled: %+v", i, r)
		}
	}
}

func TestMemSensorLostAndRecovery(t *testing.T) {
	sc := &script{vals: []float64{0}, errs: []error{errDown}}
	s := NewMemSensor(sc, Config{})
	for i := 0; i < 3; i++ {
		s.Read(time.Duration(i) * time.Second)
	}
	if s.Health() != Lost {
		t.Fatalf("health after 3 missed cycles = %v", s.Health())
	}
	sc.vals = []float64{40}
	sc.errs = nil
	sc.i = 0
	r := s.Read(5 * time.Second)
	if !r.OK || !r.RecoveredFromLost {
		t.Fatalf("recovery read = %+v", r)
	}
	if r2 := s.Read(6 * time.Second); r2.RecoveredFromLost {
		t.Fatalf("second good read still flagged as recovery: %+v", r2)
	}
}

package resilient

// TrackerState is the health state machine's mutable state.
type TrackerState struct {
	Health   Health
	Consec   int
	Counters Counters
}

// State captures the tracker.
func (t *Tracker) State() TrackerState {
	return TrackerState{Health: t.health, Consec: t.consec, Counters: t.c}
}

// Restore overwrites the tracker. The loss threshold is construction
// input and is not touched.
func (t *Tracker) Restore(st TrackerState) {
	t.health = st.Health
	t.consec = st.Consec
	t.c = st.Counters
}

// SensorState is a memory sensor's mutable state, embedding its
// tracker's.
type SensorState struct {
	Tracker  TrackerState
	LastGood float64
	StaleRun int
	Retries  uint64
	Timeouts uint64
	Wild     uint64
	Stale    uint64
	Reads    uint64
}

// State captures the sensor.
func (s *MemSensor) State() SensorState {
	return SensorState{
		Tracker:  s.tracker.State(),
		LastGood: s.lastGood,
		StaleRun: s.staleRun,
		Retries:  s.retries,
		Timeouts: s.timeouts,
		Wild:     s.wild,
		Stale:    s.stale,
		Reads:    s.reads,
	}
}

// Restore overwrites the sensor. The inner reader and config are
// construction inputs and are not touched.
func (s *MemSensor) Restore(st SensorState) {
	s.tracker.Restore(st.Tracker)
	s.lastGood = st.LastGood
	s.staleRun = st.StaleRun
	s.retries = st.Retries
	s.timeouts = st.Timeouts
	s.wild = st.Wild
	s.stale = st.Stale
	s.reads = st.Reads
}

package sketch

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzSketchMerge feeds arbitrary sample bytes through a sharded
// fold/merge and asserts the invariant the fleet engine relies on:
// the merged sketch is indistinguishable from a single sketch over
// the same samples, for any shard count and any (deterministic)
// assignment.
func FuzzSketchMerge(f *testing.F) {
	f.Add([]byte("fleet power waste lives in the tail"), byte(3))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, byte(1))
	f.Add([]byte{0x3f, 0xf0, 0, 0, 0, 0, 0, 0, 0x40, 0x59, 0, 0, 0, 0, 0, 0}, byte(7))
	f.Fuzz(func(t *testing.T, data []byte, shardByte byte) {
		shards := int(shardByte%16) + 1
		var samples []float64
		for len(data) >= 8 {
			v := math.Float64frombits(binary.LittleEndian.Uint64(data[:8]))
			data = data[8:]
			samples = append(samples, v)
		}

		ref := New()
		leaves := make([]*Sketch, shards)
		for i := range leaves {
			leaves[i] = New()
		}
		for i, v := range samples {
			ref.Add(v)
			leaves[(i*7+int(shardByte))%shards].Add(v)
		}
		// Merge left-to-right and right-to-left; both must match ref.
		ltr := New()
		for _, l := range leaves {
			ltr.Merge(l)
		}
		rtl := New()
		for i := len(leaves) - 1; i >= 0; i-- {
			rtl.Merge(leaves[i])
		}
		for _, m := range []*Sketch{ltr, rtl} {
			if m.Count() != ref.Count() || m.zero != ref.zero {
				t.Fatalf("count mismatch: merged %d/%d ref %d/%d", m.Count(), m.zero, ref.Count(), ref.zero)
			}
			// min/max must be bit-identical (NaN-free by Add's filter).
			if math.Float64bits(m.Min()) != math.Float64bits(ref.Min()) ||
				math.Float64bits(m.Max()) != math.Float64bits(ref.Max()) {
				t.Fatalf("min/max mismatch: merged %v/%v ref %v/%v", m.Min(), m.Max(), ref.Min(), ref.Max())
			}
			for i := range m.counts {
				if m.counts[i] != ref.counts[i] {
					t.Fatalf("bucket %d mismatch: merged %d ref %d", i, m.counts[i], ref.counts[i])
				}
			}
			if math.Float64bits(m.Sum()) != math.Float64bits(ref.Sum()) {
				t.Fatalf("sum mismatch: merged %x ref %x", m.Sum(), ref.Sum())
			}
			if m.Count() != 0 {
				for _, q := range []float64{0, 0.5, 0.99, 1} {
					mq, _ := m.Quantile(q)
					rq, _ := ref.Quantile(q)
					if math.Float64bits(mq) != math.Float64bits(rq) {
						t.Fatalf("q%v mismatch: merged %v ref %v", q, mq, rq)
					}
				}
			}
		}
	})
}

package sketch

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// expose renders the complete observable state of a sketch as bytes:
// every non-empty bucket, the summary, and the derived sum. Two
// sketches with identical exposition are indistinguishable to every
// downstream consumer (obs histograms, report columns, JSON status).
func expose(t *testing.T, s *Sketch) []byte {
	t.Helper()
	var out []byte
	s.Buckets(func(v float64, c uint64) {
		out = append(out, fmt.Sprintf("%x %d\n", math.Float64bits(v), c)...)
	})
	sum, err := json.Marshal(s.Summarize())
	if err != nil {
		t.Fatalf("marshal summary: %v", err)
	}
	out = append(out, sum...)
	out = append(out, fmt.Sprintf("\nsum=%x", math.Float64bits(s.Sum()))...)
	return out
}

func TestEmptySketch(t *testing.T) {
	s := New()
	if s.Count() != 0 {
		t.Fatalf("empty count = %d", s.Count())
	}
	if _, ok := s.Quantile(0.5); ok {
		t.Fatal("empty sketch reported a quantile")
	}
	sum := s.Summarize()
	if sum != (Summary{}) {
		t.Fatalf("empty summary = %+v, want zero", sum)
	}
	b, err := json.Marshal(sum)
	if err != nil {
		t.Fatalf("empty summary not JSON-safe: %v", err)
	}
	if string(b) == "" {
		t.Fatal("empty marshal")
	}
}

func TestZeroAndNegativeSamples(t *testing.T) {
	s := New()
	s.Add(0)
	s.Add(-3.5)
	s.Add(1e-12)
	if s.Count() != 3 {
		t.Fatalf("count = %d, want 3", s.Count())
	}
	q, ok := s.Quantile(0.5)
	if !ok || q != -3.5 {
		// The zero bucket reports 0 clamped into [min,max]; with
		// max < 0 it pins to the exact max... min is -3.5, max 1e-12.
		// rank 1 of {-3.5, 0, 1e-12} → zero bucket → clamp(0) = 0.
		if q != 0 {
			t.Fatalf("median of zero-bucket samples = %v, want 0", q)
		}
	}
	if s.Min() != -3.5 || s.Max() != 1e-12 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestNaNIgnored(t *testing.T) {
	s := New()
	s.Add(math.NaN())
	s.Add(1)
	if s.Count() != 1 {
		t.Fatalf("count = %d, want 1 (NaN ignored)", s.Count())
	}
	if q, _ := s.Quantile(1); q != 1 {
		t.Fatalf("max quantile = %v, want 1", q)
	}
}

func TestClampAboveRange(t *testing.T) {
	s := New()
	s.Add(5e14) // above MaxValue: clamps into the last bucket
	if s.Count() != 1 {
		t.Fatalf("count = %d", s.Count())
	}
	q, _ := s.Quantile(0.5)
	if q != s.Max() {
		t.Fatalf("clamped sample quantile = %v, want exact max %v", q, s.Max())
	}
}

// TestQuantileRelativeError checks the sketch's contract: reported
// quantiles are within Alpha relative error of an exact sample.
func TestQuantileRelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(5000)
		samples := make([]float64, n)
		s := New()
		for i := range samples {
			// Log-uniform over ~9 decades, the shape of power/waste data.
			v := math.Exp(rng.Float64()*20 - 8)
			samples[i] = v
			s.Add(v)
		}
		sort.Float64s(samples)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.9, 0.99, 1} {
			got, ok := s.Quantile(q)
			if !ok {
				t.Fatal("non-empty sketch reported empty")
			}
			exact := samples[int(q*float64(n-1))]
			if relErr := math.Abs(got-exact) / exact; relErr > Alpha+1e-12 {
				t.Fatalf("trial %d n=%d q=%v: got %v want %v (rel err %v > %v)",
					trial, n, q, got, exact, relErr, Alpha)
			}
		}
	}
}

func TestMinMaxExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := New()
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < 1000; i++ {
		v := rng.Float64() * 500
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
		s.Add(v)
	}
	if s.Min() != lo || s.Max() != hi {
		t.Fatalf("min/max = %v/%v, want exact %v/%v", s.Min(), s.Max(), lo, hi)
	}
	if q0, _ := s.Quantile(0); q0 != lo {
		t.Fatalf("q0 = %v, want exact min %v", q0, lo)
	}
	if q1, _ := s.Quantile(1); q1 != hi {
		t.Fatalf("q1 = %v, want exact max %v", q1, hi)
	}
}

// mergeTree folds the given leaf sketches with a random binary merge
// tree: repeatedly pick two random entries, merge one into the other,
// until a single sketch remains.
func mergeTree(rng *rand.Rand, leaves []*Sketch) *Sketch {
	pool := append([]*Sketch(nil), leaves...)
	for len(pool) > 1 {
		i := rng.Intn(len(pool))
		j := rng.Intn(len(pool) - 1)
		if j >= i {
			j++
		}
		pool[i].Merge(pool[j])
		pool[j] = pool[len(pool)-1]
		pool = pool[:len(pool)-1]
	}
	return pool[0]
}

// TestMergeOrderInvariance is the property at the heart of the fleet
// byte-identity contract: for random sample sets split into random
// shard counts and merged by random merge trees, the exposition bytes
// are identical to folding every sample into one sketch.
func TestMergeOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(3000)
		samples := make([]float64, n)
		ref := New()
		for i := range samples {
			var v float64
			switch rng.Intn(10) {
			case 0:
				v = 0
			case 1:
				v = -rng.Float64()
			case 2:
				v = math.Exp(rng.Float64()*60 - 30) // extreme decades
			default:
				v = rng.Float64() * 1000
			}
			samples[i] = v
			ref.Add(v)
		}
		want := expose(t, ref)

		for rep := 0; rep < 4; rep++ {
			shards := 1 + rng.Intn(12)
			leaves := make([]*Sketch, shards)
			for i := range leaves {
				leaves[i] = New()
			}
			// Random assignment of samples to shards, random fold order
			// within each shard (shuffle a copy first).
			perm := rng.Perm(n)
			for _, idx := range perm {
				leaves[rng.Intn(shards)].Add(samples[idx])
			}
			merged := mergeTree(rng, leaves)
			if got := expose(t, merged); string(got) != string(want) {
				t.Fatalf("trial %d rep %d (shards=%d): merged exposition differs from reference\n got: %s\nwant: %s",
					trial, rep, shards, got, want)
			}
		}
	}
}

func TestMergeNilAndEmpty(t *testing.T) {
	s := New()
	s.Add(2)
	before := expose(t, s)
	s.Merge(nil)
	s.Merge(New())
	if got := expose(t, s); string(got) != string(before) {
		t.Fatal("merging nil/empty changed the sketch")
	}
}

func TestReset(t *testing.T) {
	s := New()
	for i := 0; i < 100; i++ {
		s.Add(float64(i))
	}
	s.Reset()
	fresh := New()
	if got, want := expose(t, s), expose(t, fresh); string(got) != string(want) {
		t.Fatal("Reset did not restore the empty exposition")
	}
}

func TestAddZeroAlloc(t *testing.T) {
	s := New()
	allocs := testing.AllocsPerRun(1000, func() {
		s.Add(123.456)
		s.Add(0)
		s.Add(7.2e9)
	})
	if allocs != 0 {
		t.Fatalf("Add allocates: %v allocs/op", allocs)
	}
}

func TestMergeZeroAlloc(t *testing.T) {
	a, b := New(), New()
	for i := 0; i < 64; i++ {
		b.Add(float64(i) * 1.7)
	}
	allocs := testing.AllocsPerRun(100, func() { a.Merge(b) })
	if allocs != 0 {
		t.Fatalf("Merge allocates: %v allocs/op", allocs)
	}
}

// BenchmarkHotPathSketchAdd pins the fold cost inside the fleet tick;
// cmd/benchgate holds it to 0 allocs/op via BENCH_hotpath.json.
func BenchmarkHotPathSketchAdd(b *testing.B) {
	s := New()
	b.ReportAllocs()
	// Exclude New()'s bucket-array allocation: at -benchtime=1x the
	// CI gate divides by N=1, so setup cost must not count as per-op.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(float64(i%977) + 0.5)
	}
}

// Package sketch implements a deterministic, mergeable quantile
// sketch over log-spaced buckets (the DDSketch family: relative-error
// quantiles from geometric bucket boundaries).
//
// The design goal is *merge-order invariance by construction*: the
// fleet engine folds per-member samples into per-shard sketches and
// merges the shards, and the merged result must be byte-identical for
// any shard count. Floating-point accumulation is order-dependent
// (a+b+c != a+(b+c) in general), so the sketch keeps no running float
// sum — its mergeable state is integers only (per-bucket uint64
// counts plus a zero-bucket count) and the exactly order-invariant
// min/max. Derived statistics (quantiles, approximate mean/sum) are
// computed at read time from the merged counts, so they depend only
// on the multiset of samples, never on the fold or merge order.
//
// The bucket layout is fixed at compile time: index(v) = ceil(log_γ v)
// with γ = (1+α)/(1-α) for α = 1% relative error, over the value range
// [1e-9, 1e12). Values below the range (including zero and negatives)
// land in the zero bucket; values at or above the top are clamped into
// the last bucket. A fixed layout means every sketch is mergeable with
// every other and Add is a bounds-clamped array increment: no
// allocation, no map, no collapse logic on the hot path.
package sketch

import "math"

// Alpha is the target relative error of reported quantiles: a value
// reported for quantile q is within ±1% of an exact sample value.
const Alpha = 0.01

// Gamma is the bucket growth factor (1+Alpha)/(1-Alpha).
const Gamma = (1 + Alpha) / (1 - Alpha)

// MinValue is the smallest magnitude resolved by the log buckets;
// samples below it (including 0 and negatives) count in the zero
// bucket and report as 0.
const MinValue = 1e-9

// MaxValue is the top of the resolved range; larger samples clamp
// into the final bucket.
const MaxValue = 1e12

// invLogGamma is 1/ln(γ), precomputed so Add performs one Log, one
// multiply and one Ceil.
var invLogGamma = 1 / math.Log(Gamma)

// minIndex/maxIndex are ceil(log_γ MinValue) and ceil(log_γ MaxValue),
// fixed by the constants above. They are computed once at init; the
// values are ~[-1036, +1382] for the constants above (~2.4k buckets,
// ~19 KiB of counts per sketch).
var (
	minIndex = int(math.Ceil(math.Log(MinValue) * invLogGamma))
	maxIndex = int(math.Ceil(math.Log(MaxValue) * invLogGamma))
)

// Sketch is a fixed-layout log-bucket quantile sketch. The zero value
// is not usable; call New. All methods are single-goroutine; the fleet
// engine keeps one sketch per shard and merges after the barrier.
type Sketch struct {
	// counts[i] tallies samples in bucket minIndex+i, i.e. values v
	// with γ^(minIndex+i-1) < v <= γ^(minIndex+i).
	counts []uint64
	// zero tallies samples below MinValue (incl. zero and negatives).
	zero uint64
	// n is the total sample count including the zero bucket.
	n uint64
	// min/max are exact extremes; min/max are order-invariant under
	// merge because min(min(a,b),c) = min(a,min(b,c)) exactly.
	min, max float64
}

// New returns an empty sketch with the package's fixed layout.
func New() *Sketch {
	return &Sketch{
		counts: make([]uint64, maxIndex-minIndex+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// Reset empties the sketch in place, keeping its bucket array.
func (s *Sketch) Reset() {
	for i := range s.counts {
		s.counts[i] = 0
	}
	s.zero = 0
	s.n = 0
	s.min = math.Inf(1)
	s.max = math.Inf(-1)
}

// Add folds one sample. It performs no allocation and no branching
// beyond range clamps, so it is safe inside the fleet engine's
// zero-alloc steady-state tick. NaN samples are ignored (a NaN would
// poison min/max and cannot be ranked).
func (s *Sketch) Add(v float64) {
	if math.IsNaN(v) {
		return
	}
	s.n++
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	if v < MinValue {
		s.zero++
		return
	}
	idx := int(math.Ceil(math.Log(v) * invLogGamma))
	if idx < minIndex {
		idx = minIndex
	} else if idx > maxIndex {
		idx = maxIndex
	}
	s.counts[idx-minIndex]++
}

// Merge folds o into s. Merging is commutative and associative
// *exactly* — it is integer addition per bucket plus exact min/max —
// so any merge tree over the same sketches yields identical state.
// A nil or empty o is a no-op.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil || o.n == 0 {
		return
	}
	for i, c := range o.counts {
		s.counts[i] += c
	}
	s.zero += o.zero
	s.n += o.n
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
}

// Count returns the number of samples folded in (including the zero
// bucket).
func (s *Sketch) Count() uint64 { return s.n }

// Min returns the exact minimum sample, or +Inf when empty.
func (s *Sketch) Min() float64 { return s.min }

// Max returns the exact maximum sample, or -Inf when empty.
func (s *Sketch) Max() float64 { return s.max }

// rep returns the representative value of bucket index i: the
// geometric midpoint 2γ^i/(γ+1) of the bucket's (γ^(i-1), γ^i]
// range, which bounds relative error by Alpha.
func rep(i int) float64 {
	return math.Pow(Gamma, float64(i)) * 2 / (Gamma + 1)
}

// Quantile returns an estimate of the q-quantile (q in [0,1]) with
// relative error at most Alpha, and false when the sketch is empty.
// The zero bucket reports 0. Estimates are clamped to the exact
// [Min, Max] so q=0 and q=1 report the true extremes.
func (s *Sketch) Quantile(q float64) (float64, bool) {
	if s.n == 0 {
		return 0, false
	}
	if q <= 0 {
		return s.min, true
	}
	if q >= 1 {
		return s.max, true
	}
	// rank is the 0-based index of the order statistic to report.
	rank := uint64(q * float64(s.n-1))
	if rank < s.zero {
		return s.clamp(0), true
	}
	cum := s.zero
	for i, c := range s.counts {
		cum += c
		if rank < cum {
			return s.clamp(rep(minIndex + i)), true
		}
	}
	// Unreachable when counts are consistent; defend anyway.
	return s.max, true
}

// clamp pins an estimate into the exact observed range.
func (s *Sketch) clamp(v float64) float64 {
	if v < s.min {
		return s.min
	}
	if v > s.max {
		return s.max
	}
	return v
}

// Sum returns the approximate sum of all samples, Σ countᵢ·repᵢ over
// the merged buckets (zero-bucket samples contribute 0). Because it
// is derived from the merged integer state in a fixed bucket order,
// it is identical for any merge order — unlike a running float sum.
func (s *Sketch) Sum() float64 {
	var sum float64
	for i, c := range s.counts {
		if c != 0 {
			sum += float64(c) * rep(minIndex+i)
		}
	}
	return sum
}

// Mean returns Sum()/Count(), or 0 when empty.
func (s *Sketch) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.Sum() / float64(s.n)
}

// Buckets calls fn for every non-empty log bucket in ascending value
// order with the bucket's representative value and count, preceded by
// the zero bucket (value 0) when it is non-empty. Exposition layers
// (obs histograms, JSON status pages) fold the sketch through this.
func (s *Sketch) Buckets(fn func(value float64, count uint64)) {
	if s.zero != 0 {
		fn(0, s.zero)
	}
	for i, c := range s.counts {
		if c != 0 {
			fn(rep(minIndex+i), c)
		}
	}
}

// Summary is the fixed five-number reduction used in fleet reports.
// All fields derive deterministically from merged integer state.
type Summary struct {
	Count uint64
	Min   float64
	P50   float64
	P90   float64
	P99   float64
	Max   float64
	Mean  float64
}

// Summarize reduces the sketch to its report summary. An empty sketch
// reports all zeros (not ±Inf), so summaries are JSON-safe.
func (s *Sketch) Summarize() Summary {
	if s.n == 0 {
		return Summary{}
	}
	p50, _ := s.Quantile(0.50)
	p90, _ := s.Quantile(0.90)
	p99, _ := s.Quantile(0.99)
	return Summary{
		Count: s.n,
		Min:   s.min,
		P50:   p50,
		P90:   p90,
		P99:   p99,
		Max:   s.max,
		Mean:  s.Mean(),
	}
}

package core

import (
	"math/rand"
	"testing"
	"time"

	"github.com/spear-repro/magus/internal/governor"
	"github.com/spear-repro/magus/internal/msr"
	"github.com/spear-repro/magus/internal/pcm"
	"github.com/spear-repro/magus/internal/ring"
)

// TestTrendRingMatchesSlice pins the in-place ring evaluation of
// Algorithm 1 to the reference slice implementation over randomized
// histories: the hot path must be a pure storage change, not an
// algorithm change.
func TestTrendRingMatchesSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		window := 2 + rng.Intn(12)
		b := ring.New[float64](window)
		n := rng.Intn(2 * window)
		for i := 0; i < n; i++ {
			b.Push(rng.Float64()*200 - 50)
		}
		derivLen := 1 + rng.Intn(window-1)
		inc := rng.Float64() * 20
		dec := rng.Float64() * 30
		want := PredictTrend(b.Snapshot(), derivLen, inc, dec)
		got := predictTrendRing(b, derivLen, inc, dec)
		if got != want {
			t.Fatalf("trial %d: ring trend %v != slice trend %v (len %d derivLen %d)",
				trial, got, want, b.Len(), derivLen)
		}
	}
}

// TestRollingTuneCountMatchesScan drives pushTune with a random bit
// sequence (including warm-up re-entries) and checks the incremental
// count against a full scan of the log after every operation — the
// Algorithm 2 input must never drift.
func TestRollingTuneCountMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := &MAGUS{cfg: DefaultConfig()}
	m.tuneLog = ring.Filled(m.cfg.Window, 0)
	for op := 0; op < 5000; op++ {
		if rng.Intn(97) == 0 {
			m.tuneLog.Fill(0)
			m.tuneCount = 0
		} else {
			v := 0
			if rng.Intn(3) == 0 {
				v = 1
			}
			m.pushTune(v)
		}
		scan := 0
		m.tuneLog.Do(func(v int) {
			if v != 0 {
				scan++
			}
		})
		if m.tuneCount != scan {
			t.Fatalf("op %d: rolling count %d != scanned %d", op, m.tuneCount, scan)
		}
		wantHi := HighFrequency(m.tuneLog.Snapshot(), m.cfg.HighFreqThreshold)
		gotHi := float64(m.tuneCount)/float64(m.tuneLog.Len()) >= m.cfg.HighFreqThreshold
		if gotHi != wantHi {
			t.Fatalf("op %d: rolling high-frequency %v != scanned %v", op, gotHi, wantHi)
		}
	}
}

// TestMDFSInvokeZeroAlloc pins the zero-allocation contract on the
// steady-state decision cycle: sensor read, Algorithm 2, Algorithm 1,
// no decision change — no heap allocation.
func TestMDFSInvokeZeroAlloc(t *testing.T) {
	space := msr.NewSpace(2, 4)
	var traffic float64
	env := &governor.Env{
		Dev:          space,
		PCM:          pcm.New(func() float64 { return traffic }),
		Sockets:      2,
		CPUs:         8,
		FirstCPU:     space.FirstCPUOf,
		UncoreMinGHz: 0.8,
		UncoreMaxGHz: 2.2,
	}
	m := New(DefaultConfig())
	if err := m.Attach(env); err != nil {
		t.Fatal(err)
	}
	now := time.Duration(0)
	cycle := func() {
		traffic += 50 * 0.3
		now += 300 * time.Millisecond
		m.Invoke(now)
	}
	for i := 0; i < m.cfg.WarmupCycles+2; i++ {
		cycle()
	}
	if allocs := testing.AllocsPerRun(200, cycle); allocs != 0 {
		t.Fatalf("steady-state MDFS Invoke allocates %v times per cycle, want 0", allocs)
	}
}

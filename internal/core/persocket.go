package core

import (
	"fmt"
	"time"

	"github.com/spear-repro/magus/internal/governor"
	"github.com/spear-repro/magus/internal/resilient"
)

// PerSocket runs one independent MAGUS instance per CPU socket, each
// fed by that socket's own memory-controller counters and controlling
// only that socket's uncore limit. The paper's runtime treats the node
// as one domain (its PCM signal is system-wide); on NUMA-imbalanced
// workloads that leaves the quiet socket pinned wherever the busy
// socket's traffic drives the decision. Per-socket scaling is the
// natural future-work refinement: the quiet socket idles at the
// minimum frequency while the busy one keeps full bandwidth.
//
// The shared decision cycle performs one per-socket counter read per
// socket instead of one system read; the invocation cost model splits
// the configured budget across instances so the total daemon overhead
// stays comparable to single-domain MAGUS.
type PerSocket struct {
	cfg       Config
	instances []*MAGUS
}

// NewPerSocket builds the per-socket runtime with the given base
// configuration (shared by every instance).
func NewPerSocket(cfg Config) *PerSocket {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &PerSocket{cfg: cfg}
}

// Name implements governor.Governor.
func (*PerSocket) Name() string { return "magus-persocket" }

// Interval implements governor.Governor.
func (p *PerSocket) Interval() time.Duration { return p.cfg.Interval + p.cfg.InvocationTime }

// Instances returns the per-socket runtimes (after Attach), for stats
// and tracing.
func (p *PerSocket) Instances() []*MAGUS { return p.instances }

// Attach implements governor.Governor: it splits the environment into
// one single-socket view per socket and attaches a MAGUS instance to
// each.
func (p *PerSocket) Attach(env *governor.Env) error {
	if err := env.Validate(); err != nil {
		return err
	}
	if len(env.SocketPCM) != env.Sockets {
		return fmt.Errorf("magus: per-socket scaling needs %d socket PCM monitors, have %d",
			env.Sockets, len(env.SocketPCM))
	}
	sub := p.cfg
	// Split the invocation budget across instances: the per-cycle work
	// is one counter read per socket, not N full system sweeps.
	sub.InvocationTime = p.cfg.InvocationTime / time.Duration(env.Sockets)
	sub.BusyCores = p.cfg.BusyCores / float64(env.Sockets)
	sub.ExtraWatts = p.cfg.ExtraWatts / float64(env.Sockets)

	p.instances = p.instances[:0]
	for s := 0; s < env.Sockets; s++ {
		sock := s
		subEnv := &governor.Env{
			Dev:          env.Dev,
			PCM:          env.SocketPCM[sock],
			RAPL:         env.RAPL,
			Sockets:      1,
			CPUs:         env.CPUs / env.Sockets,
			FirstCPU:     func(int) int { return env.FirstCPU(sock) },
			UncoreMinGHz: env.UncoreMinGHz,
			UncoreMaxGHz: env.UncoreMaxGHz,
			Charge:       env.Charge,
		}
		m := New(sub)
		if err := m.Attach(subEnv); err != nil {
			return fmt.Errorf("magus: attach socket %d: %w", sock, err)
		}
		p.instances = append(p.instances, m)
	}
	return nil
}

// Invoke implements governor.Governor: one decision cycle on every
// socket.
func (p *PerSocket) Invoke(now time.Duration) time.Duration {
	delay := time.Duration(0)
	for _, m := range p.instances {
		if d := m.Invoke(now); d > delay {
			delay = d
		}
	}
	return delay
}

// Stats sums the per-socket instances' counters.
func (p *PerSocket) Stats() Stats {
	var total Stats
	for _, m := range p.instances {
		s := m.Stats()
		total.Invocations += s.Invocations
		total.TuneEvents += s.TuneEvents
		total.Overrides += s.Overrides
		total.MSRWrites += s.MSRWrites
		total.WarmupCycles += s.WarmupCycles
		total.MissedSamples += s.MissedSamples
		total.SensorRetries += s.SensorRetries
		total.SensorTimeouts += s.SensorTimeouts
		total.WildSamples += s.WildSamples
		total.StaleSamples += s.StaleSamples
		total.DegradedCycles += s.DegradedCycles
		total.LostCycles += s.LostCycles
		total.Recoveries += s.Recoveries
		total.WatchdogOverruns += s.WatchdogOverruns
	}
	return total
}

// SensorHealth reports the worst per-socket sensor state.
func (p *PerSocket) SensorHealth() resilient.Health {
	worst := resilient.Healthy
	for _, m := range p.instances {
		if h := m.SensorHealth(); h > worst {
			worst = h
		}
	}
	return worst
}

package core

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/spear-repro/magus/internal/governor"
	"github.com/spear-repro/magus/internal/msr"
	"github.com/spear-repro/magus/internal/pcm"
)

var _ governor.Governor = (*MAGUS)(nil)

func TestPredictTrend(t *testing.T) {
	cases := []struct {
		name     string
		hist     []float64
		derivLen int
		want     Trend
	}{
		{"sharp rise", []float64{10, 10, 300}, 1, TrendUp},
		{"sharp fall", []float64{300, 300, 10}, 1, TrendDown},
		{"flat", []float64{100, 101, 100}, 1, TrendFlat},
		{"slow rise below inc", []float64{100, 105, 110}, 1, TrendFlat},
		{"fall below dec magnitude", []float64{100, 100, 60}, 1, TrendFlat},
		{"rise above inc but fall-sized", []float64{100, 100, 130}, 1, TrendUp},
		{"short history", []float64{100}, 1, TrendFlat},
		{"empty", nil, 1, TrendFlat},
		{"longer deriv span", []float64{10, 100, 200, 250}, 3, TrendUp},
		{"shortest span wins", []float64{200, 100, 300, 230}, 3, TrendDown}, // the fresh -70 beats stale rises
		{"old fall still visible", []float64{180, 180, 12, 12, 12}, 3, TrendDown},
		{"gentle ramp stays flat", []float64{100, 104, 108, 112}, 3, TrendFlat},
	}
	for _, c := range cases {
		if got := PredictTrend(c.hist, c.derivLen, 20, 50); got != c.want {
			t.Errorf("%s: PredictTrend = %v, want %v", c.name, got, c.want)
		}
	}
}

// Property: PredictTrend matches an independent reference
// implementation of the strongest-span rule.
func TestPredictTrendProperties(t *testing.T) {
	ref := func(vals []float64, derivLen int, inc, dec float64) Trend {
		n := len(vals) - 1
		if n < 1 {
			return TrendFlat
		}
		if derivLen > n {
			derivLen = n
		}
		for span := 1; span <= derivLen; span++ {
			d := (vals[n] - vals[n-span]) / float64(span)
			if d > inc {
				return TrendUp
			}
			if d < -dec {
				return TrendDown
			}
		}
		return TrendFlat
	}
	prop := func(vals []float64, derivLen8 uint8) bool {
		for i, v := range vals {
			if v != v || v < 0 { // NaN or negative: clamp
				vals[i] = 0
			}
			if v > 1e6 {
				vals[i] = 1e6
			}
		}
		derivLen := int(derivLen8%3) + 1
		return PredictTrend(vals, derivLen, 20, 50) == ref(vals, derivLen, 20, 50)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: a monotone non-decreasing history never predicts down, and
// a monotone non-increasing history never predicts up.
func TestPredictTrendMonotonicity(t *testing.T) {
	prop := func(deltas []uint16, derivLen8 uint8) bool {
		vals := make([]float64, len(deltas)+1)
		for i, d := range deltas {
			vals[i+1] = vals[i] + float64(d%1000)
		}
		derivLen := int(derivLen8%4) + 1
		if PredictTrend(vals, derivLen, 6, 15) == TrendDown {
			return false
		}
		rev := make([]float64, len(vals))
		for i, v := range vals {
			rev[len(vals)-1-i] = v
		}
		return PredictTrend(rev, derivLen, 6, 15) != TrendUp
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHighFrequency(t *testing.T) {
	cases := []struct {
		log  []int
		want bool
	}{
		{[]int{0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, false},
		{[]int{1, 1, 1, 1, 0, 0, 0, 0, 0, 0}, true},  // 0.4 == threshold
		{[]int{1, 1, 1, 0, 0, 0, 0, 0, 0, 0}, false}, // 0.3 < threshold
		{[]int{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}, true},
		{nil, false},
	}
	for i, c := range cases {
		if got := HighFrequency(c.log, 0.4); got != c.want {
			t.Errorf("case %d: HighFrequency = %v, want %v", i, got, c.want)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []func(*Config){
		func(c *Config) { c.IncThresholdGBs = 0 },
		func(c *Config) { c.DecThresholdGBs = -1 },
		func(c *Config) { c.HighFreqThreshold = 0 },
		func(c *Config) { c.HighFreqThreshold = 1.5 },
		func(c *Config) { c.Window = 1 },
		func(c *Config) { c.DerivLen = 0 },
		func(c *Config) { c.DerivLen = 10 },
		func(c *Config) { c.Interval = 0 },
		func(c *Config) { c.Interval = -time.Second },
		func(c *Config) { c.InvocationTime = 0 },
		func(c *Config) { c.InvocationTime = -time.Millisecond },
		func(c *Config) { c.WarmupCycles = 0 },
		func(c *Config) { c.WarmupCycles = -1 },
		func(c *Config) { c.BusyCores = -1 },
		func(c *Config) { c.ExtraWatts = -1 },
	}
	for i, mut := range bads {
		c := DefaultConfig()
		mut(&c)
		if c.Validate() == nil {
			t.Errorf("case %d: Validate accepted %+v", i, c)
		}
	}
}

// testEnv wires MAGUS to a bare msr.Space and a scripted throughput
// source so decision behaviour can be driven sample by sample.
type testEnv struct {
	space   *msr.Space
	env     *governor.Env
	traffic float64 // cumulative GB fed to PCM
}

func newTestEnv(t *testing.T) *testEnv {
	t.Helper()
	te := &testEnv{space: msr.NewSpace(2, 4)}
	te.env = &governor.Env{
		Dev:          te.space,
		PCM:          pcm.New(func() float64 { return te.traffic }),
		Sockets:      2,
		CPUs:         8,
		FirstCPU:     te.space.FirstCPUOf,
		UncoreMinGHz: 0.8,
		UncoreMaxGHz: 2.2,
	}
	return te
}

// feed advances the scripted signal so the next PCM read (0.3 s later)
// observes gbs.
func (te *testEnv) feed(gbs float64) { te.traffic += gbs * 0.3 }

// limitGHz decodes the current uncore max limit on socket 0.
func (te *testEnv) limitGHz() float64 {
	maxHz, _ := msr.DecodeUncoreLimit(te.space.Peek(0, msr.UncoreRatioLimit))
	return maxHz / 1e9
}

// runCycles invokes MAGUS n times at the 0.3 s cadence, feeding gbs[i]
// before cycle i.
func runCycles(te *testEnv, m *MAGUS, now *time.Duration, gbs ...float64) {
	for _, g := range gbs {
		te.feed(g)
		*now += 300 * time.Millisecond
		m.Invoke(*now)
	}
}

func TestMAGUSWarmupThenMax(t *testing.T) {
	te := newTestEnv(t)
	cfg := DefaultConfig()
	cfg.WarmupCycles = 3
	m := New(cfg)
	if err := m.Attach(te.env); err != nil {
		t.Fatal(err)
	}
	// Per §4, the idle/default limit is the minimum during warm-up.
	if got := te.limitGHz(); got != 0.8 {
		t.Fatalf("warm-up limit = %v GHz, want 0.8", got)
	}
	var now time.Duration
	runCycles(te, m, &now, 50, 50)
	if got := te.limitGHz(); got != 0.8 {
		t.Fatalf("limit before warm-up end = %v", got)
	}
	runCycles(te, m, &now, 50)
	if got := te.limitGHz(); got != 2.2 {
		t.Fatalf("limit after warm-up = %v GHz, want 2.2", got)
	}
	if s := m.Stats(); s.WarmupCycles != 3 || s.Invocations != 3 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestMAGUSWarmupAtMaxOption(t *testing.T) {
	te := newTestEnv(t)
	cfg := DefaultConfig()
	cfg.WarmupAtMax = true
	m := New(cfg)
	if err := m.Attach(te.env); err != nil {
		t.Fatal(err)
	}
	if got := te.limitGHz(); got != 2.2 {
		t.Fatalf("WarmupAtMax limit = %v GHz, want 2.2", got)
	}
}

func TestMAGUSScalesDownOnSharpDrop(t *testing.T) {
	te := newTestEnv(t)
	cfg := DefaultConfig()
	cfg.WarmupCycles = 2
	m := New(cfg)
	m.Attach(te.env)
	var now time.Duration
	runCycles(te, m, &now, 200, 200) // warm-up
	runCycles(te, m, &now, 200, 200) // steady high
	if te.limitGHz() != 2.2 {
		t.Fatalf("steady limit = %v", te.limitGHz())
	}
	runCycles(te, m, &now, 30) // sharp drop: d = -170
	if got := te.limitGHz(); got != 0.8 {
		t.Fatalf("limit after drop = %v GHz, want 0.8", got)
	}
	runCycles(te, m, &now, 30, 30) // stays low, no churn
	if got := te.limitGHz(); got != 0.8 {
		t.Fatalf("limit at low steady = %v", got)
	}
}

func TestMAGUSScalesUpOnSharpRise(t *testing.T) {
	te := newTestEnv(t)
	cfg := DefaultConfig()
	cfg.WarmupCycles = 2
	m := New(cfg)
	m.Attach(te.env)
	var now time.Duration
	// Sustained high, then a steep sustained drop scales down.
	runCycles(te, m, &now, 200, 200, 200, 200, 200, 20, 20)
	if te.limitGHz() != 0.8 {
		t.Fatalf("setup: limit = %v, want 0.8 after drop", te.limitGHz())
	}
	// Once the low level has settled, a steep rise scales back up.
	runCycles(te, m, &now, 20, 190)
	if got := te.limitGHz(); got != 2.2 {
		t.Fatalf("limit after rise = %v GHz, want 2.2", got)
	}
}

func TestMAGUSHighFrequencyPinsMax(t *testing.T) {
	te := newTestEnv(t)
	cfg := DefaultConfig()
	cfg.WarmupCycles = 2
	m := New(cfg)
	m.Attach(te.env)
	var now time.Duration
	runCycles(te, m, &now, 100, 100) // warm-up
	// Violent alternation: the prediction flips nearly every cycle.
	runCycles(te, m, &now, 300, 20, 300, 20, 300, 20, 300, 20, 300)
	if !m.HighFreqActive() {
		t.Fatal("high-frequency state not detected under alternation")
	}
	if got := te.limitGHz(); got != 2.2 {
		t.Fatalf("limit during high-frequency phase = %v GHz, want pinned 2.2", got)
	}
	if s := m.Stats(); s.Overrides == 0 {
		t.Fatalf("no overrides recorded: %+v", s)
	}
	// Prediction keeps logging during high-frequency state (§3.2).
	evBefore := m.Stats().TuneEvents
	runCycles(te, m, &now, 20)
	if m.Stats().TuneEvents <= evBefore {
		t.Fatal("tune events not logged during high-frequency state")
	}
	if m.Stats().Overrides == 0 {
		t.Fatal("override during high-frequency state not counted")
	}
	// Calm returns: the rate decays and scaling resumes.
	for i := 0; i < 14; i++ {
		runCycles(te, m, &now, 100)
	}
	if m.HighFreqActive() {
		t.Fatal("high-frequency state stuck after calm")
	}
}

func TestMAGUSPCMFailureFailsSafe(t *testing.T) {
	te := newTestEnv(t)
	cfg := DefaultConfig()
	cfg.WarmupCycles = 1
	m := New(cfg)
	m.Attach(te.env)
	var now time.Duration
	runCycles(te, m, &now, 100)
	runCycles(te, m, &now, 10) // not enough history → flat; limit stays max
	// Break the counter: PCM errors on backwards movement.
	te.traffic -= 1000
	now += 300 * time.Millisecond
	m.Invoke(now)
	if got := te.limitGHz(); got != 2.2 {
		t.Fatalf("limit after monitor failure = %v GHz, want fail-safe max", got)
	}
}

func TestMAGUSDecisionTrace(t *testing.T) {
	te := newTestEnv(t)
	cfg := DefaultConfig()
	cfg.WarmupCycles = 1
	m := New(cfg)
	var decisions []Decision
	m.OnDecision(func(d Decision) { decisions = append(decisions, d) })
	m.Attach(te.env)
	var now time.Duration
	runCycles(te, m, &now, 100, 100, 100, 100, 20)
	if len(decisions) != 5 {
		t.Fatalf("got %d decisions", len(decisions))
	}
	if !decisions[0].Warmup {
		t.Fatal("first decision not marked warm-up")
	}
	last := decisions[4]
	if last.Trend != TrendDown || last.TargetGHz != 0.8 {
		t.Fatalf("last decision = %+v, want down/0.8", last)
	}
}

func TestMAGUSChargesOverhead(t *testing.T) {
	te := newTestEnv(t)
	var charged time.Duration
	var cores, watts float64
	te.env.Charge = func(busy time.Duration, c, w float64) {
		charged += busy
		cores, watts = c, w
	}
	m := New(DefaultConfig())
	m.Attach(te.env)
	var now time.Duration
	runCycles(te, m, &now, 100, 100)
	if charged != 200*time.Millisecond {
		t.Fatalf("charged busy = %v, want 200ms over 2 cycles", charged)
	}
	if cores != 0.3 || watts != 0.5 {
		t.Fatalf("cost model = %v cores / %v W", cores, watts)
	}
}

func TestMAGUSMSRWriteErrorKeepsRunning(t *testing.T) {
	te := newTestEnv(t)
	cfg := DefaultConfig()
	cfg.WarmupCycles = 1
	m := New(cfg)
	m.Attach(te.env)
	var now time.Duration
	runCycles(te, m, &now, 200, 200, 200, 200)
	te.space.FailWrites(msr.ErrInjected)
	runCycles(te, m, &now, 20) // down decision, write fails
	if got := te.limitGHz(); got != 2.2 {
		t.Fatalf("limit changed despite write failure: %v", got)
	}
	te.space.FailWrites(nil)
	// The downward trend still holds next cycle, so the write is
	// effectively retried and now succeeds.
	runCycles(te, m, &now, 20)
	if got := te.limitGHz(); got != 0.8 {
		t.Fatalf("limit = %v after write recovery, want 0.8", got)
	}
	// And the runtime keeps scaling normally afterwards.
	runCycles(te, m, &now, 20, 250, 250, 250)
	if got := te.limitGHz(); got != 2.2 {
		t.Fatalf("limit = %v after rise, want 2.2", got)
	}
}

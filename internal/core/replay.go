// Decision replay: a pure re-execution of the MDFS automaton over a
// recorded sensor-input stream, used by the experiment tournament to
// find the first cycle at which a parameter variant would diverge from
// an already-executed base run.
//
// The tournament's fork-from-prefix planner records the base run's
// Decision stream and simulates two replays over the inferred inputs:
// one with the base configuration (validating the replay model against
// what the real runtime actually did, cycle by cycle) and one per
// variant. Until the variant's decision or internal state first
// differs from the base's, the variant's hypothetical run is
// bit-identical to the base run — same sensor reads at the same times,
// same MSR writes, same overhead charges — so the planner may fork it
// from a checkpoint taken just before the divergent cycle. Whenever
// the base replay itself fails validation (for example because an
// injected MSR-write fault made setUncore fail, which a pure replay
// cannot model), the planner forks conservatively at that cycle: the
// replay decides only *where* live execution starts, never what any
// run computes, so a modelling gap costs wall-clock, not correctness.
package core

import (
	"github.com/spear-repro/magus/internal/resilient"
	"github.com/spear-repro/magus/internal/ring"
)

// ReplayInput is one decision cycle's sensor-layer outcome, the only
// external information the MDFS automaton consumes. It is identical
// for a base run and a parameter variant as long as both use the same
// resilience configuration and have not yet diverged, because the
// sensor and fault-injection state evolve from read times alone.
type ReplayInput struct {
	// ThroughputGBs is the sampled memory throughput (valid when the
	// cycle was not missed).
	ThroughputGBs float64
	// Missed marks a cycle with no usable sample; Lost refines it with
	// whether the sensor had been declared lost.
	Missed bool
	Lost   bool
	// Recovered marks a successful read that ended a full sensor
	// outage (Reading.RecoveredFromLost), which restarts warm-up.
	Recovered bool
}

// Replay is the pure MDFS automaton: MAGUS's per-cycle state and
// transition function with the environment (sensor, MSR device,
// overhead charging) stripped away. Cycle mirrors MAGUS.Invoke
// branch for branch; TestReplayMatchesMAGUS pins the two equal over
// randomized configurations, workloads and fault schedules.
type Replay struct {
	cfg            Config
	minGHz, maxGHz float64

	memHist   *ring.Buffer[float64]
	tuneLog   *ring.Buffer[int]
	tuneCount int

	warmupLeft int
	highFreq   bool
	targetGHz  float64
	lastTrend  Trend
}

// NewReplay builds a replay automaton for cfg on an uncore range, in
// the same initial state Attach leaves the real runtime in.
func NewReplay(cfg Config, minGHz, maxGHz float64) *Replay {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	r := &Replay{
		cfg:        cfg,
		minGHz:     minGHz,
		maxGHz:     maxGHz,
		memHist:    ring.New[float64](cfg.Window),
		tuneLog:    ring.Filled(cfg.Window, 0),
		warmupLeft: cfg.WarmupCycles,
		targetGHz:  minGHz,
	}
	if cfg.WarmupAtMax {
		r.targetGHz = maxGHz
	}
	return r
}

// Cycle advances the automaton by one decision cycle and returns the
// decision it implies. Decision.At and Decision.SensorHealth are left
// zero: the replay has no clock and no sensor; compare against real
// decisions with SameOutcome, which ignores both.
func (r *Replay) Cycle(in ReplayInput) Decision {
	if in.Missed {
		inWarmup := r.warmupLeft > 0
		prevGHz := r.targetGHz
		acted := false
		reason := ReasonHoldDegraded
		if inWarmup || in.Lost {
			acted = r.setUncore(r.maxGHz)
			reason = ReasonPinLost
			if inWarmup {
				reason = ReasonPinWarmupBlind
			}
		}
		return Decision{
			Warmup: inWarmup, TargetGHz: r.targetGHz, Acted: acted, Missed: true,
			PrevGHz: prevGHz, RingFill: r.memHist.Len(), Reason: reason,
		}
	}
	if in.Recovered {
		r.warmupLeft = r.cfg.WarmupCycles
		r.memHist.Reset()
		r.tuneLog.Fill(0)
		r.tuneCount = 0
		r.lastTrend = TrendFlat
		r.highFreq = false
	}

	thr := in.ThroughputGBs
	prevGHz := r.targetGHz
	r.memHist.Push(thr)
	deriv := r.deriv1()

	if r.warmupLeft > 0 {
		r.warmupLeft--
		r.pushTune(0)
		reason := ReasonWarmup
		if r.warmupLeft == 0 {
			r.setUncore(r.maxGHz)
			r.lastTrend = TrendUp
			reason = ReasonWarmupExit
		}
		return Decision{
			ThroughputGBs: thr, Warmup: true, TargetGHz: r.targetGHz,
			PrevGHz: prevGHz, DerivGBs: deriv, RingFill: r.memHist.Len(), Reason: reason,
		}
	}

	hi := !r.cfg.DisableHighFreq &&
		float64(r.tuneCount)/float64(r.tuneLog.Len()) >= r.cfg.HighFreqThreshold
	r.highFreq = hi
	acted := false
	if hi {
		acted = r.setUncore(r.maxGHz)
	}

	trend := predictTrendRing(r.memHist, r.cfg.DerivLen, r.cfg.IncThresholdGBs, r.cfg.DecThresholdGBs)
	if trend != TrendFlat {
		if trend != r.lastTrend {
			r.pushTune(1)
		} else {
			r.pushTune(0)
		}
		r.lastTrend = trend
		if !hi {
			level := r.maxGHz
			if trend == TrendDown {
				level = r.minGHz
			}
			acted = r.setUncore(level) || acted
		}
	} else {
		r.pushTune(0)
	}

	reason := ReasonFlatHold
	switch {
	case hi:
		reason = ReasonHighFreqPin
	case trend == TrendUp:
		reason = ReasonTrendUp
	case trend == TrendDown:
		reason = ReasonTrendDown
	}
	return Decision{
		ThroughputGBs: thr, Trend: trend, HighFreq: hi,
		TargetGHz: r.targetGHz, Acted: acted,
		PrevGHz: prevGHz, DerivGBs: deriv, RingFill: r.memHist.Len(), Reason: reason,
	}
}

// WarmupLeft returns the remaining warm-up cycles (input inference).
func (r *Replay) WarmupLeft() int { return r.warmupLeft }

// HistLen returns the trend window's current fill (input inference).
func (r *Replay) HistLen() int { return r.memHist.Len() }

// TargetGHz returns the uncore limit the automaton currently holds.
func (r *Replay) TargetGHz() float64 { return r.targetGHz }

// StateEqual reports whether two replays are in exactly the same
// automaton state: same history, tune log, warm-up position, trend
// memory and uncore target. Two replays fed identical inputs stay
// state-equal until the first configuration-driven divergence.
func (r *Replay) StateEqual(o *Replay) bool {
	if r.warmupLeft != o.warmupLeft || r.highFreq != o.highFreq ||
		r.targetGHz != o.targetGHz || r.lastTrend != o.lastTrend ||
		r.tuneCount != o.tuneCount ||
		r.memHist.Len() != o.memHist.Len() || r.tuneLog.Len() != o.tuneLog.Len() {
		return false
	}
	for i := 0; i < r.memHist.Len(); i++ {
		if r.memHist.At(i) != o.memHist.At(i) {
			return false
		}
	}
	for i := 0; i < r.tuneLog.Len(); i++ {
		if r.tuneLog.At(i) != o.tuneLog.At(i) {
			return false
		}
	}
	return true
}

func (r *Replay) deriv1() float64 {
	n := r.memHist.Len() - 1
	if n < 1 {
		return 0
	}
	return r.memHist.At(n) - r.memHist.At(n-1)
}

func (r *Replay) pushTune(v int) {
	evicted, wasFull := r.tuneLog.Push(v)
	if wasFull && evicted != 0 {
		r.tuneCount--
	}
	if v != 0 {
		r.tuneCount++
	}
}

// setUncore mirrors the real transition optimistically: a replay has
// no MSR device, so it assumes the write succeeds. An injected MSR
// fault in the real run makes the recorded decision disagree here,
// which the planner's per-cycle validation turns into a conservative
// fork — never a wrong result.
func (r *Replay) setUncore(ghz float64) bool {
	if ghz == r.targetGHz {
		return false
	}
	r.targetGHz = ghz
	return true
}

// SameOutcome reports whether two decisions describe the same
// externally visible cycle outcome. At is ignored (replays are
// clockless); SensorHealth is ignored (sensor-layer detail, already
// folded into the inferred input).
func (d Decision) SameOutcome(o Decision) bool {
	return d.ThroughputGBs == o.ThroughputGBs &&
		d.Trend == o.Trend &&
		d.HighFreq == o.HighFreq &&
		d.Warmup == o.Warmup &&
		d.TargetGHz == o.TargetGHz &&
		d.PrevGHz == o.PrevGHz &&
		d.Acted == o.Acted &&
		d.Missed == o.Missed &&
		d.DerivGBs == o.DerivGBs &&
		d.RingFill == o.RingFill &&
		d.Reason == o.Reason
}

// InferReplayInput reconstructs the sensor-layer input behind a
// recorded decision, given the base replay's state *before* that
// cycle. Warm-up re-entry (RecoveredFromLost is not recorded directly)
// is inferred from the decision re-entering warm-up or the trend
// window restarting; an inference miss surfaces as a validation
// mismatch on a later cycle and costs a conservative fork, not
// correctness.
func InferReplayInput(d Decision, base *Replay) ReplayInput {
	if d.Missed {
		return ReplayInput{Missed: true, Lost: d.SensorHealth == resilient.Lost}
	}
	in := ReplayInput{ThroughputGBs: d.ThroughputGBs}
	if (d.Warmup && base.WarmupLeft() == 0) || (d.RingFill == 1 && base.HistLen() != 0) {
		in.Recovered = true
	}
	return in
}

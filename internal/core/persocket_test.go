package core

import (
	"testing"
	"time"

	"github.com/spear-repro/magus/internal/governor"
	"github.com/spear-repro/magus/internal/msr"
	"github.com/spear-repro/magus/internal/pcm"
)

var _ governor.Governor = (*PerSocket)(nil)

// perSockEnv builds an env with independently scripted per-socket
// traffic counters.
type perSockEnv struct {
	space   *msr.Space
	env     *governor.Env
	traffic [2]float64
}

func newPerSockEnv(t *testing.T) *perSockEnv {
	t.Helper()
	te := &perSockEnv{space: msr.NewSpace(2, 4)}
	mk := func(s int) *pcm.Monitor {
		return pcm.New(func() float64 { return te.traffic[s] })
	}
	te.env = &governor.Env{
		Dev:          te.space,
		PCM:          pcm.New(func() float64 { return te.traffic[0] + te.traffic[1] }),
		Sockets:      2,
		CPUs:         8,
		FirstCPU:     te.space.FirstCPUOf,
		SocketPCM:    []pcm.Reader{mk(0), mk(1)},
		UncoreMinGHz: 0.8,
		UncoreMaxGHz: 2.2,
	}
	return te
}

func (te *perSockEnv) limitGHz(sock int) float64 {
	maxHz, _ := msr.DecodeUncoreLimit(te.space.Peek(te.space.FirstCPUOf(sock), msr.UncoreRatioLimit))
	return maxHz / 1e9
}

func TestPerSocketIndependentScaling(t *testing.T) {
	te := newPerSockEnv(t)
	cfg := DefaultConfig()
	cfg.WarmupCycles = 2
	ps := NewPerSocket(cfg)
	if err := ps.Attach(te.env); err != nil {
		t.Fatal(err)
	}
	if len(ps.Instances()) != 2 {
		t.Fatalf("instances = %d", len(ps.Instances()))
	}
	// Feed: socket 0 stays high, socket 1 falls sharply after warm-up.
	var now time.Duration
	cycle := func(g0, g1 float64) {
		te.traffic[0] += g0 * 0.3
		te.traffic[1] += g1 * 0.3
		now += 300 * time.Millisecond
		ps.Invoke(now)
	}
	cycle(100, 100) // warm-up
	cycle(100, 100) // warm-up end: both to max
	if te.limitGHz(0) != 2.2 || te.limitGHz(1) != 2.2 {
		t.Fatalf("post-warmup limits: %v / %v", te.limitGHz(0), te.limitGHz(1))
	}
	cycle(100, 100)
	cycle(100, 5) // socket 1 collapses
	if got := te.limitGHz(1); got != 0.8 {
		t.Fatalf("socket 1 limit = %v, want 0.8", got)
	}
	if got := te.limitGHz(0); got != 2.2 {
		t.Fatalf("socket 0 limit = %v, want untouched 2.2", got)
	}
	s := ps.Stats()
	if s.Invocations != 8 { // 2 instances × 4 cycles
		t.Fatalf("stats invocations = %d", s.Invocations)
	}
}

func TestPerSocketRequiresSocketPCM(t *testing.T) {
	te := newPerSockEnv(t)
	te.env.SocketPCM = nil
	if err := NewPerSocket(DefaultConfig()).Attach(te.env); err == nil {
		t.Fatal("attach without SocketPCM accepted")
	}
}

func TestPerSocketSplitsOverheadBudget(t *testing.T) {
	te := newPerSockEnv(t)
	var busy time.Duration
	var watts float64
	te.env.Charge = func(b time.Duration, cores, w float64) {
		busy += b
		watts += w
	}
	ps := NewPerSocket(DefaultConfig())
	if err := ps.Attach(te.env); err != nil {
		t.Fatal(err)
	}
	ps.Invoke(300 * time.Millisecond)
	// One cycle across both sockets must cost the single-domain budget
	// (0.1 s busy, ExtraWatts summed to the configured total).
	if busy != 100*time.Millisecond {
		t.Fatalf("busy per cycle = %v, want 100ms", busy)
	}
	if watts != DefaultConfig().ExtraWatts {
		t.Fatalf("extra watts per cycle = %v, want %v", watts, DefaultConfig().ExtraWatts)
	}
}

package core

import (
	"testing"
	"time"

	"github.com/spear-repro/magus/internal/governor"
	"github.com/spear-repro/magus/internal/msr"
	"github.com/spear-repro/magus/internal/pcm"
)

// BenchmarkHotPathMDFSInvoke measures one steady-state MDFS cycle
// (Algorithm 3): resilient sensor read, Algorithm 2 over the tune log,
// Algorithm 1 over the throughput history, no decision change. This is
// the per-0.3s governor cost the paper bounds at "under 1% overhead";
// steady state must be allocation-free.
func BenchmarkHotPathMDFSInvoke(b *testing.B) {
	space := msr.NewSpace(2, 4)
	var traffic float64
	env := &governor.Env{
		Dev:          space,
		PCM:          pcm.New(func() float64 { return traffic }),
		Sockets:      2,
		CPUs:         8,
		FirstCPU:     space.FirstCPUOf,
		UncoreMinGHz: 0.8,
		UncoreMaxGHz: 2.2,
	}
	m := New(DefaultConfig())
	if err := m.Attach(env); err != nil {
		b.Fatal(err)
	}
	now := time.Duration(0)
	// Drain the warm-up so the benchmark sees full decision cycles.
	for i := 0; i < DefaultConfig().WarmupCycles+2; i++ {
		traffic += 50 * 0.3
		now += 300 * time.Millisecond
		m.Invoke(now)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		traffic += 50 * 0.3 // flat 50 GB/s: trend stays flat, no MSR write
		now += 300 * time.Millisecond
		m.Invoke(now)
	}
}

package core

import (
	"fmt"

	"github.com/spear-repro/magus/internal/governor"
	"github.com/spear-repro/magus/internal/resilient"
)

// State is a MAGUS runtime's full mutable state: the MDFS automaton
// (history rings, warm-up countdown, high-frequency flag, current
// target), the runtime counters, the resilient sensor layer, and the
// attached env's limit-shadow cache. The configuration and env wiring
// are construction inputs; a restore target must be a freshly attached
// runtime with the same Config over equivalent wiring.
type State struct {
	MemHist []float64
	TuneLog []int

	TuneCount  int
	WarmupLeft int
	HighFreq   bool
	TargetGHz  float64
	LastTrend  Trend

	Stats  Stats
	Sensor resilient.SensorState

	Shadow []governor.ShadowEntry
}

// State captures the runtime. Call only after Attach.
func (m *MAGUS) State() State {
	return State{
		MemHist:    m.memHist.Snapshot(),
		TuneLog:    m.tuneLog.Snapshot(),
		TuneCount:  m.tuneCount,
		WarmupLeft: m.warmupLeft,
		HighFreq:   m.highFreq,
		TargetGHz:  m.targetGHz,
		LastTrend:  m.lastTrend,
		Stats:      m.stats,
		Sensor:     m.sensor.State(),
		Shadow:     m.env.ShadowState(),
	}
}

// Restore overwrites an attached runtime with the captured state. The
// window sizes are cross-checked against the runtime's configuration.
func (m *MAGUS) Restore(st State) error {
	if m.env == nil || m.sensor == nil {
		return fmt.Errorf("magus: restore on a detached runtime")
	}
	if len(st.MemHist) > m.cfg.Window {
		return fmt.Errorf("magus: restore history %d exceeds window %d", len(st.MemHist), m.cfg.Window)
	}
	// The tune log is initialised at full capacity and stays full.
	if len(st.TuneLog) != m.cfg.Window {
		return fmt.Errorf("magus: restore tune log %d, window is %d", len(st.TuneLog), m.cfg.Window)
	}
	m.memHist.Reset()
	for _, v := range st.MemHist {
		m.memHist.Push(v)
	}
	m.tuneLog.Reset()
	for _, v := range st.TuneLog {
		m.tuneLog.Push(v)
	}
	m.tuneCount = st.TuneCount
	m.warmupLeft = st.WarmupLeft
	m.highFreq = st.HighFreq
	m.targetGHz = st.TargetGHz
	m.lastTrend = st.LastTrend
	m.stats = st.Stats
	m.sensor.Restore(st.Sensor)
	m.env.RestoreShadow(st.Shadow)
	return nil
}

// PerSocketState captures every per-socket instance in socket order.
type PerSocketState struct {
	Instances []State
}

// State captures the per-socket runtime. Call only after Attach.
func (p *PerSocket) State() PerSocketState {
	st := PerSocketState{Instances: make([]State, 0, len(p.instances))}
	for _, m := range p.instances {
		st.Instances = append(st.Instances, m.State())
	}
	return st
}

// Restore overwrites every attached instance.
func (p *PerSocket) Restore(st PerSocketState) error {
	if len(st.Instances) != len(p.instances) {
		return fmt.Errorf("magus: restore %d socket instances, runtime has %d",
			len(st.Instances), len(p.instances))
	}
	for i, m := range p.instances {
		if err := m.Restore(st.Instances[i]); err != nil {
			return fmt.Errorf("magus: socket %d: %w", i, err)
		}
	}
	return nil
}

// Package core implements MAGUS, the paper's primary contribution: a
// model-free, lightweight, user-transparent runtime that scales the CPU
// uncore frequency on heterogeneous CPU–GPU nodes using a single
// hardware signal — system memory throughput — and the concept of
// *memory dynamics* (§3):
//
//   - Algorithm 1 (memory-throughput trend prediction): the first
//     derivative of the recent throughput history signals imminent
//     sharp rises (scale the uncore to max) or falls (scale to min).
//   - Algorithm 2 (high-frequency detection): the rate of recent tuning
//     decisions; above a threshold the workload is fluctuating too fast
//     for scaling to help, so the uncore is pinned at max.
//   - Algorithm 3 (MDFS): the 0.2 s decision loop combining both, with
//     a 10-cycle warm-up during which throughput history accumulates
//     and no tuning happens.
//
// Interpretation notes (the paper's pseudocode is underspecified in
// three places; each choice is documented in DESIGN.md):
//
//   - Units: the paper's thresholds (inc 200 / dec 500) carry no units;
//     this reproduction uses GB/s of throughput change per monitoring
//     interval and defaults to 6/15 — the same 2:5 asymmetry (falls
//     must be steeper than rises), rescaled above the simulated node's
//     measurement-noise floor.
//   - Derivative span: Algorithm 1 writes (ls[n]-ls[0])/L over the full
//     window; taken literally every transition stays "sharp" for ten
//     cycles and the event log saturates into a permanent high-
//     frequency pin. We expose the span as DerivLen (default 3
//     intervals ≈ 1 s) — long enough that a transition which happened
//     during the warm-up blackout is still caught afterwards.
//   - Tune events: uncore_tune_ls records "whether a potential uncore
//     frequency scaling event should occur". We log 1 on a trend
//     *edge* — a non-flat prediction that differs from the previous
//     cycle's prediction — not on every repeated up/up or down/down
//     trend, which cannot scale anything further. Edges are logged
//     regardless of high-frequency overrides, as §3.2 requires, so
//     the detector stays engaged for as long as a flutter lasts.
package core

import (
	"fmt"
	"time"

	"github.com/spear-repro/magus/internal/governor"
	"github.com/spear-repro/magus/internal/resilient"
	"github.com/spear-repro/magus/internal/ring"
)

// Config holds MAGUS's tuning knobs (§3.3).
type Config struct {
	// IncThresholdGBs triggers an uncore increase when the throughput
	// derivative exceeds it (GB/s per monitoring interval).
	IncThresholdGBs float64
	// DecThresholdGBs (a positive magnitude) triggers a decrease when
	// the derivative falls below its negation.
	DecThresholdGBs float64
	// HighFreqThreshold is the tuning-event rate above which the
	// workload counts as high-frequency and the uncore pins at max.
	HighFreqThreshold float64

	// Window is the FIFO history length for both mem_throughput_ls and
	// uncore_tune_ls (10 in the paper).
	Window int
	// DerivLen is how many intervals back the first derivative spans.
	DerivLen int

	// Interval is the sleep between decision cycles; InvocationTime is
	// the cost of one cycle (one PCM read + the algorithms ≈ 0.1 s,
	// §6.5). Effective decision period = sum (0.3 s).
	Interval       time.Duration
	InvocationTime time.Duration

	// WarmupCycles is the number of initial monitoring cycles during
	// which MAGUS only collects history (10 cycles = 2.0 s, §3.3).
	WarmupCycles int
	// WarmupAtMax selects the uncore limit during warm-up. The paper is
	// ambiguous: §3.3 says the frequency starts at maximum, while the
	// Table 1 discussion attributes missed early bursts to MAGUS "not
	// yet scaling" on nodes that idle at the minimum (§4). The default
	// (false) follows the Table 1 reading: warm-up runs at the idle
	// minimum and MDFS's first decision raises the limit to max.
	WarmupAtMax bool

	// Overhead model: cores busy during an invocation and extra watts
	// while busy. MAGUS's single PCM read is cheap (§6.5).
	BusyCores  float64
	ExtraWatts float64

	// DisableHighFreq switches off the Algorithm 2 override (tune
	// events are still logged). Ablation-study switch only; the
	// default runtime always runs with the detector on.
	DisableHighFreq bool

	// Resilience tunes the sensor fault-handling layer (retry budget,
	// read timeout, loss threshold). The zero value selects
	// resilient.DefaultConfig, which is a pure pass-through on a
	// healthy sensor.
	Resilience resilient.Config
}

// DefaultConfig returns the recommended defaults (§3.3, rescaled).
func DefaultConfig() Config {
	return Config{
		IncThresholdGBs:   6,
		DecThresholdGBs:   15,
		HighFreqThreshold: 0.4,
		Window:            10,
		DerivLen:          3,
		Interval:          200 * time.Millisecond,
		InvocationTime:    100 * time.Millisecond,
		WarmupCycles:      10,
		BusyCores:         0.3,
		ExtraWatts:        0.5,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.IncThresholdGBs <= 0 || c.DecThresholdGBs <= 0:
		return fmt.Errorf("magus: non-positive thresholds %v/%v", c.IncThresholdGBs, c.DecThresholdGBs)
	case c.HighFreqThreshold <= 0 || c.HighFreqThreshold > 1:
		return fmt.Errorf("magus: high-frequency threshold %v outside (0,1]", c.HighFreqThreshold)
	case c.Window < 2:
		return fmt.Errorf("magus: window %d too small", c.Window)
	case c.DerivLen < 1 || c.DerivLen >= c.Window:
		return fmt.Errorf("magus: derivative length %d outside [1,window)", c.DerivLen)
	case c.Interval <= 0 || c.InvocationTime <= 0:
		return fmt.Errorf("magus: non-positive timing %v/%v", c.Interval, c.InvocationTime)
	case c.WarmupCycles <= 0:
		return fmt.Errorf("magus: non-positive warmup %d", c.WarmupCycles)
	case c.BusyCores < 0 || c.ExtraWatts < 0:
		return fmt.Errorf("magus: negative overhead model")
	}
	return nil
}

// Trend is the prediction outcome of Algorithm 1.
type Trend int

const (
	// TrendDown predicts a sharp demand decrease (-1 in the paper).
	TrendDown Trend = -1
	// TrendFlat predicts no significant change (0).
	TrendFlat Trend = 0
	// TrendUp predicts a sharp demand increase (+1).
	TrendUp Trend = 1
)

// String implements fmt.Stringer.
func (t Trend) String() string {
	switch t {
	case TrendDown:
		return "down"
	case TrendUp:
		return "up"
	default:
		return "flat"
	}
}

// PredictTrend is Algorithm 1: the first derivative of the throughput
// history, thresholded. The derivative is evaluated over spans from
// one up to derivLen intervals and the *shortest significant span
// wins*: the one-interval derivative reacts first to sharp jumps (so a
// burst ending right after a burst starting is never masked by stale
// history), while the longer spans keep a transition visible for
// derivLen cycles — a fall that lands during the warm-up blackout is
// still caught by the first real decision. hist is in FIFO order
// (oldest first); it returns TrendFlat when the history has fewer than
// two samples.
//
// This slice form is the algorithm's reference surface (tests, external
// callers). The runtime's hot path evaluates the same arithmetic
// directly over the ring storage via predictTrendRing, avoiding the
// per-invoke Snapshot allocation; TestTrendRingMatchesSlice pins the
// two equal.
func PredictTrend(hist []float64, derivLen int, incGBs, decGBs float64) Trend {
	n := len(hist) - 1
	if n < 1 {
		return TrendFlat
	}
	if derivLen > n {
		derivLen = n
	}
	for span := 1; span <= derivLen; span++ {
		d := (hist[n] - hist[n-span]) / float64(span)
		switch {
		case d > incGBs:
			return TrendUp
		case d < -decGBs:
			return TrendDown
		}
	}
	return TrendFlat
}

// predictTrendRing is PredictTrend evaluated in place over the ring
// buffer: identical arithmetic in identical order, no Snapshot copy.
func predictTrendRing(hist *ring.Buffer[float64], derivLen int, incGBs, decGBs float64) Trend {
	n := hist.Len() - 1
	if n < 1 {
		return TrendFlat
	}
	if derivLen > n {
		derivLen = n
	}
	newest := hist.At(n)
	for span := 1; span <= derivLen; span++ {
		d := (newest - hist.At(n-span)) / float64(span)
		switch {
		case d > incGBs:
			return TrendUp
		case d < -decGBs:
			return TrendDown
		}
	}
	return TrendFlat
}

// HighFrequency is Algorithm 2: the fraction of recent cycles that
// produced a tuning decision, compared against the threshold.
//
// Like PredictTrend, this slice form is the reference surface; the
// runtime maintains the non-zero count incrementally as entries enter
// and leave the tune log (pushTune), so the per-invoke check is O(1)
// with no Snapshot.
func HighFrequency(tuneLog []int, threshold float64) bool {
	if len(tuneLog) == 0 {
		return false
	}
	s := 0
	for _, v := range tuneLog {
		if v != 0 {
			s++
		}
	}
	return float64(s)/float64(len(tuneLog)) >= threshold
}

// Decision describes one MDFS cycle's outcome, for tracing and tests.
type Decision struct {
	At            time.Duration
	ThroughputGBs float64
	Trend         Trend
	HighFreq      bool
	Warmup        bool
	// TargetGHz is the uncore limit in force after the cycle; PrevGHz
	// is the limit that was in force before it (chosen vs previous).
	TargetGHz float64
	PrevGHz   float64
	// Acted reports whether an MSR write happened this cycle.
	Acted bool
	// Missed marks a cycle that produced no usable throughput sample:
	// the runtime held its last decision (or pinned to max) instead of
	// feeding garbage into the trend window.
	Missed bool
	// SensorHealth is the throughput sensor's state after the cycle.
	SensorHealth resilient.Health
	// DerivGBs is the one-interval throughput derivative Algorithm 1
	// reacts to first (GB/s per monitoring interval); RingFill is how
	// many samples the trend window held when the cycle decided.
	DerivGBs float64
	RingFill int
	// Reason names the decision cause for causality tracing: one of
	// the Reason* constants below.
	Reason string
}

// Decision reasons: why a cycle chose its uncore target.
const (
	// ReasonWarmup: pure monitoring, no tuning yet (§3.3).
	ReasonWarmup = "warmup"
	// ReasonWarmupExit: the last warm-up cycle raising the limit to max.
	ReasonWarmupExit = "warmup-exit-max"
	// ReasonHighFreqPin: Algorithm 2 classified the workload as
	// high-frequency and pinned the uncore at max.
	ReasonHighFreqPin = "high-freq-pin"
	// ReasonTrendUp / ReasonTrendDown: Algorithm 1 executed a scaling
	// decision in the predicted direction.
	ReasonTrendUp   = "trend-up"
	ReasonTrendDown = "trend-down"
	// ReasonFlatHold: no significant trend; the previous limit holds.
	ReasonFlatHold = "flat-hold"
	// ReasonHoldDegraded: missed sample on a degraded sensor — the
	// fail-safe held the last decision rather than feed garbage into
	// the trend window.
	ReasonHoldDegraded = "hold-degraded"
	// ReasonPinLost: the sensor is lost; vendor-default pin at max.
	ReasonPinLost = "pin-lost"
	// ReasonPinWarmupBlind: missed sample during warm-up with no prior
	// decision to hold — pin at max.
	ReasonPinWarmupBlind = "pin-warmup-blind"
)

// Stats aggregates runtime counters for Table 2 / §6.3, plus the
// fault-handling counters of the resilient sensor layer.
type Stats struct {
	Invocations  uint64
	TuneEvents   uint64 // prediction-phase decisions logged (1s pushed)
	Overrides    uint64 // decisions suppressed by high-frequency status
	MSRWrites    uint64
	WarmupCycles uint64

	// MissedSamples counts decision cycles with no usable throughput
	// sample; SensorRetries/SensorTimeouts/WildSamples/StaleSamples
	// break down why reads were re-attempted or rejected.
	MissedSamples  uint64
	SensorRetries  uint64
	SensorTimeouts uint64
	WildSamples    uint64
	StaleSamples   uint64
	// DegradedCycles and LostCycles count missed cycles spent in each
	// health state; Recoveries counts returns to a healthy sensor.
	DegradedCycles uint64
	LostCycles     uint64
	Recoveries     uint64
	// WatchdogOverruns counts cycles whose sensor access latency
	// exceeded the nominal sleep interval — the loop ran late.
	WatchdogOverruns uint64
}

// MAGUS is the runtime. Create with New, bind with Attach, then let the
// harness call Invoke on the decision schedule.
type MAGUS struct {
	cfg Config
	env *governor.Env

	// sensor is the resilient read path over env.PCM: bounded retry,
	// virtual-clock timeouts, wild/stale rejection and health tracking.
	sensor *resilient.MemSensor

	memHist *ring.Buffer[float64]
	tuneLog *ring.Buffer[int]
	// tuneCount is the number of non-zero entries currently in tuneLog,
	// maintained incrementally by pushTune so the Algorithm 2 check
	// never rescans the log.
	tuneCount int

	warmupLeft int
	highFreq   bool
	targetGHz  float64
	// lastTrend is the previous cycle's prediction; a differing
	// non-flat prediction is a tune event (trend edge), logged even
	// while the high-frequency override is pinning the uncore (§3.2).
	lastTrend Trend

	stats      Stats
	onDecision []func(Decision)
}

// New returns a MAGUS runtime with cfg.
func New(cfg Config) *MAGUS {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &MAGUS{cfg: cfg}
}

// Name implements governor.Governor.
func (*MAGUS) Name() string { return "magus" }

// Interval implements governor.Governor: the effective decision period
// (invocation + sleep).
func (m *MAGUS) Interval() time.Duration { return m.cfg.Interval + m.cfg.InvocationTime }

// Config returns the active configuration.
func (m *MAGUS) Config() Config { return m.cfg }

// Stats returns runtime counters, merged with the resilient sensor
// layer's fault-handling counters.
func (m *MAGUS) Stats() Stats {
	s := m.stats
	if m.sensor != nil {
		c := m.sensor.Counters()
		s.MissedSamples = c.Misses
		s.SensorRetries = c.Retries
		s.SensorTimeouts = c.Timeouts
		s.WildSamples = c.WildDrops
		s.StaleSamples = c.StaleDrops
		s.DegradedCycles = c.DegradedCycles
		s.LostCycles = c.LostCycles
		s.Recoveries = c.Recoveries
	}
	return s
}

// SensorHealth reports the throughput sensor's current state.
func (m *MAGUS) SensorHealth() resilient.Health {
	if m.sensor == nil {
		return resilient.Healthy
	}
	return m.sensor.Health()
}

// OnDecision adds a per-cycle trace hook; hooks run in installation
// order (a verbose CLI stream and a metrics observer can coexist).
// Passing nil clears every installed hook.
func (m *MAGUS) OnDecision(fn func(Decision)) {
	if fn == nil {
		m.onDecision = nil
		return
	}
	m.onDecision = append(m.onDecision, fn)
}

// TargetGHz returns the uncore limit MAGUS currently requests.
func (m *MAGUS) TargetGHz() float64 { return m.targetGHz }

// Attach implements governor.Governor. Per §4, nodes idle with the
// uncore at its minimum; MAGUS begins its warm-up when the application
// arrives.
func (m *MAGUS) Attach(env *governor.Env) error {
	if err := env.Validate(); err != nil {
		return err
	}
	if env.PCM == nil {
		return fmt.Errorf("magus: env without PCM monitor")
	}
	m.env = env
	m.sensor = resilient.NewMemSensor(env.PCM, m.cfg.Resilience)
	m.memHist = ring.New[float64](m.cfg.Window)
	// uncore_tune_ls initialised to Window zeros (§3.3).
	m.tuneLog = ring.Filled(m.cfg.Window, 0)
	m.tuneCount = 0
	m.warmupLeft = m.cfg.WarmupCycles
	m.highFreq = false
	m.stats = Stats{}

	start := env.UncoreMinGHz
	if m.cfg.WarmupAtMax {
		start = env.UncoreMaxGHz
	}
	if err := env.SetUncoreMax(start); err != nil {
		return err
	}
	m.targetGHz = start
	m.stats.MSRWrites += uint64(env.Sockets)
	return nil
}

// Invoke implements governor.Governor: one MDFS cycle (Algorithm 3),
// fronted by the resilient sensor layer's fail-safe policy.
func (m *MAGUS) Invoke(now time.Duration) time.Duration {
	m.stats.Invocations++
	if m.env.Charge != nil {
		m.env.Charge(m.cfg.InvocationTime, m.cfg.BusyCores, m.cfg.ExtraWatts)
	}

	r := m.sensor.Read(now)
	if r.Latency > m.cfg.Interval {
		// Watchdog: retries/stalls ate more than the whole sleep
		// budget, so this cycle finishes after its successor was due.
		m.stats.WatchdogOverruns++
	}
	if !r.OK {
		return m.missedSample(now, r)
	}
	if r.RecoveredFromLost {
		// The sensor returned after a full outage: the trend window and
		// tune log hold pre-outage state that no longer describes the
		// workload. Re-enter warm-up (uncore stays pinned at max until
		// it completes, so recovery never costs performance).
		m.restartWarmup()
	}
	thr := r.GBs
	prevGHz := m.targetGHz
	m.memHist.Push(thr)
	deriv := m.deriv1()

	if m.warmupLeft > 0 {
		m.warmupLeft--
		m.stats.WarmupCycles++
		m.pushTune(0)
		reason := ReasonWarmup
		if m.warmupLeft == 0 {
			// Warm-up complete: start from peak uncore performance so
			// rapidly rising demand is never starved at kick-off (§3.3).
			m.setUncore(m.env.UncoreMaxGHz)
			m.lastTrend = TrendUp
			reason = ReasonWarmupExit
		}
		m.emit(Decision{
			At: now, ThroughputGBs: thr, Warmup: true, TargetGHz: m.targetGHz,
			PrevGHz: prevGHz, DerivGBs: deriv, RingFill: m.memHist.Len(), Reason: reason,
		})
		// Warm-up cycles are pure monitoring at the paper's 0.2 s
		// frequency (10 cycles = 2.0 s); full decision cycles with the
		// 0.1 s invocation window start afterwards (§3.3, §6.5).
		return m.cfg.Interval + r.Latency
	}

	// Phase 2 first (Algorithm 3 lines 9–15): the high-frequency state
	// is computed from the log of *previous* cycles' decisions — the
	// rolling non-zero count over the same ratio HighFrequency scans.
	hi := !m.cfg.DisableHighFreq &&
		float64(m.tuneCount)/float64(m.tuneLog.Len()) >= m.cfg.HighFreqThreshold
	m.highFreq = hi
	acted := false
	if hi {
		acted = m.setUncore(m.env.UncoreMaxGHz)
	}

	// Phase 1 (lines 16–30): predict, log the potential tuning event
	// (a flip of the prediction's requested level), and execute it only
	// when not in a high-frequency state.
	trend := predictTrendRing(m.memHist, m.cfg.DerivLen, m.cfg.IncThresholdGBs, m.cfg.DecThresholdGBs)
	if trend != TrendFlat {
		if trend != m.lastTrend {
			m.pushTune(1)
			m.stats.TuneEvents++
			if hi {
				m.stats.Overrides++
			}
		} else {
			m.pushTune(0)
		}
		m.lastTrend = trend
		if !hi {
			level := m.env.UncoreMaxGHz
			if trend == TrendDown {
				level = m.env.UncoreMinGHz
			}
			acted = m.setUncore(level) || acted
		}
	} else {
		m.pushTune(0)
	}

	reason := ReasonFlatHold
	switch {
	case hi:
		reason = ReasonHighFreqPin
	case trend == TrendUp:
		reason = ReasonTrendUp
	case trend == TrendDown:
		reason = ReasonTrendDown
	}
	m.emit(Decision{
		At: now, ThroughputGBs: thr, Trend: trend, HighFreq: hi,
		TargetGHz: m.targetGHz, Acted: acted,
		PrevGHz: prevGHz, DerivGBs: deriv, RingFill: m.memHist.Len(), Reason: reason,
	})
	return m.delay(r.Latency)
}

// missedSample is the fail-safe arm of Algorithm 3: the cycle produced
// no usable throughput sample. While merely degraded, hold the last
// uncore decision and skip the derivative update — one dropped sample
// must not feed garbage into the trend window. Once the sensor is lost
// (or the runtime is still blind in warm-up, with no decision to hold),
// degrade to vendor-default behaviour: pin the uncore at max so
// performance is never sacrificed to a blind policy.
func (m *MAGUS) missedSample(now time.Duration, r resilient.Reading) time.Duration {
	inWarmup := m.warmupLeft > 0
	prevGHz := m.targetGHz
	acted := false
	reason := ReasonHoldDegraded
	if inWarmup || r.Health == resilient.Lost {
		acted = m.setUncore(m.env.UncoreMaxGHz)
		reason = ReasonPinLost
		if inWarmup {
			reason = ReasonPinWarmupBlind
		}
	}
	m.emit(Decision{
		At: now, Warmup: inWarmup, TargetGHz: m.targetGHz, Acted: acted,
		Missed: true, SensorHealth: r.Health,
		PrevGHz: prevGHz, RingFill: m.memHist.Len(), Reason: reason,
	})
	if inWarmup {
		return m.cfg.Interval + r.Latency
	}
	return m.delay(r.Latency)
}

// restartWarmup re-enters the warm-up monitoring phase with clean
// history, as on Attach.
func (m *MAGUS) restartWarmup() {
	m.warmupLeft = m.cfg.WarmupCycles
	m.memHist.Reset()
	m.tuneLog.Fill(0)
	m.tuneCount = 0
	m.lastTrend = TrendFlat
	m.highFreq = false
}

// deriv1 returns the one-interval first derivative of the throughput
// history (the span Algorithm 1 reacts to first), 0 with < 2 samples.
func (m *MAGUS) deriv1() float64 {
	n := m.memHist.Len() - 1
	if n < 1 {
		return 0
	}
	return m.memHist.At(n) - m.memHist.At(n-1)
}

// pushTune records one cycle's tune-event bit and keeps the rolling
// non-zero count in sync with what enters and leaves the log.
func (m *MAGUS) pushTune(v int) {
	evicted, wasFull := m.tuneLog.Push(v)
	if wasFull && evicted != 0 {
		m.tuneCount--
	}
	if v != 0 {
		m.tuneCount++
	}
}

// delay converts a cycle's extra sensor latency into the absolute delay
// until the next invocation (0 = the nominal Interval()).
func (m *MAGUS) delay(extra time.Duration) time.Duration {
	if extra <= 0 {
		return 0
	}
	return m.Interval() + extra
}

// setUncore writes the limit if it differs from the current target and
// reports whether a write happened.
func (m *MAGUS) setUncore(ghz float64) bool {
	if ghz == m.targetGHz {
		return false
	}
	if err := m.env.SetUncoreMax(ghz); err != nil {
		return false
	}
	m.targetGHz = ghz
	m.stats.MSRWrites += uint64(m.env.Sockets)
	return true
}

func (m *MAGUS) emit(d Decision) {
	for _, fn := range m.onDecision {
		fn(d)
	}
}

// HighFreqActive reports whether the last cycle classified the workload
// as high-frequency.
func (m *MAGUS) HighFreqActive() bool { return m.highFreq }

package core

import (
	"errors"
	"testing"
	"time"

	"github.com/spear-repro/magus/internal/governor"
	"github.com/spear-repro/magus/internal/msr"
	"github.com/spear-repro/magus/internal/rapl"
	"github.com/spear-repro/magus/internal/resilient"
)

// scriptedPCM is a throughput source whose readings and failures are
// driven directly by the test.
type scriptedPCM struct {
	gbs  float64
	down bool
}

func (s *scriptedPCM) SystemMemoryThroughput(time.Duration) (float64, error) {
	if s.down {
		return 0, errors.New("scripted: sensor down")
	}
	return s.gbs, nil
}

// degradationDriver adapts one governor to the shared contract check:
// sense the limit, flip the sensing path up/down, advance one cycle.
type degradationDriver struct {
	limit  func() float64
	health func() resilient.Health
	setBad func(bad bool)
	step   func()
	max    float64
}

// checkDegradation asserts the shared contract: a governor that has
// scaled below max holds its last decision on a single missed sample,
// pins to max on sustained loss, and reports healthy again once the
// sensing path returns.
func checkDegradation(t *testing.T, d degradationDriver) {
	t.Helper()
	held := d.limit()
	if held >= d.max {
		t.Fatalf("setup: governor never scaled below max (%v)", held)
	}
	d.setBad(true)
	d.step()
	if got := d.limit(); got != held {
		t.Fatalf("limit after one missed sample = %v, want held %v", got, held)
	}
	if got := d.health(); got != resilient.Degraded {
		t.Fatalf("health after one miss = %v, want degraded", got)
	}
	d.step()
	d.step()
	if got := d.limit(); got != d.max {
		t.Fatalf("limit after sustained loss = %v, want pinned max %v", got, d.max)
	}
	if got := d.health(); got != resilient.Lost {
		t.Fatalf("health after sustained loss = %v, want lost", got)
	}
	d.setBad(false)
	d.step()
	if got := d.health(); got != resilient.Healthy {
		t.Fatalf("health after recovery = %v, want healthy", got)
	}
	if got := d.limit(); got != d.max {
		t.Fatalf("limit right after recovery = %v, want still max", got)
	}
}

func TestGovernorDegradationContract(t *testing.T) {
	t.Run("magus", func(t *testing.T) {
		space := msr.NewSpace(2, 4)
		src := &scriptedPCM{}
		env := &governor.Env{
			Dev: space, PCM: src, Sockets: 2, CPUs: 8,
			FirstCPU:     space.FirstCPUOf,
			UncoreMinGHz: 0.8, UncoreMaxGHz: 2.2,
		}
		cfg := DefaultConfig()
		cfg.WarmupCycles = 2
		m := New(cfg)
		if err := m.Attach(env); err != nil {
			t.Fatal(err)
		}
		var now time.Duration
		step := func() {
			now += 300 * time.Millisecond
			m.Invoke(now)
		}
		// Warm-up on a high plateau, then a sharp fall: MAGUS scales to
		// the minimum — the held decision the contract protects.
		src.gbs = 100
		step()
		step()
		src.gbs = 20
		step()
		checkDegradation(t, degradationDriver{
			limit: func() float64 {
				maxHz, _ := msr.DecodeUncoreLimit(space.Peek(0, msr.UncoreRatioLimit))
				return maxHz / 1e9
			},
			health: m.SensorHealth,
			setBad: func(bad bool) { src.down = bad },
			step:   step,
			max:    2.2,
		})
		// Recovery from a full outage re-enters warm-up: the stale trend
		// window must not drive decisions.
		if s := m.Stats(); s.Recoveries != 1 || s.MissedSamples != 3 || s.LostCycles == 0 {
			t.Fatalf("stats after outage = %+v", s)
		}
	})

	t.Run("ups", func(t *testing.T) {
		space := msr.NewSpace(2, 4)
		r, err := rapl.New(space, 2, space.FirstCPUOf)
		if err != nil {
			t.Fatal(err)
		}
		env := &governor.Env{
			Dev: space, RAPL: r, Sockets: 2, CPUs: 8,
			FirstCPU:     space.FirstCPUOf,
			UncoreMinGHz: 0.8, UncoreMaxGHz: 2.2,
		}
		ups := governor.NewUPS(governor.UPSConfig{})
		if err := ups.Attach(env); err != nil {
			t.Fatal(err)
		}
		var now time.Duration
		step := func() {
			now += 500 * time.Millisecond
			// Steady phase: 15 W DRAM per socket, IPC 2.0 on socket 0.
			units := uint64(15 * 0.5 * 16384)
			space.Bump(0, msr.DramEnergyStatus, units)
			space.Bump(4, msr.DramEnergyStatus, units)
			for cpu := 0; cpu < 4; cpu++ {
				space.Bump(cpu, msr.FixedCtrCPUCycles, 1_000_000)
				space.Bump(cpu, msr.FixedCtrInstRetired, 2_000_000)
			}
			ups.Invoke(now)
		}
		for i := 0; i < 8; i++ {
			step() // baselines, then scavenging below max
		}
		checkDegradation(t, degradationDriver{
			limit: func() float64 {
				maxHz, _ := msr.DecodeUncoreLimit(space.Peek(0, msr.UncoreRatioLimit))
				return maxHz / 1e9
			},
			health: ups.SensorHealth,
			setBad: func(bad bool) {
				if bad {
					space.FailReads(msr.ErrInjected)
				} else {
					space.FailReads(nil)
				}
			},
			step: step,
			max:  2.2,
		})
	})

	t.Run("duf", func(t *testing.T) {
		space := msr.NewSpace(2, 4)
		env := &governor.Env{
			Dev: space, Sockets: 2, CPUs: 8,
			FirstCPU:     space.FirstCPUOf,
			UncoreMinGHz: 0.8, UncoreMaxGHz: 2.2,
		}
		duf := governor.NewDUF(governor.DUFConfig{})
		if err := duf.Attach(env); err != nil {
			t.Fatal(err)
		}
		var now time.Duration
		step := func() {
			now += 500 * time.Millisecond
			for cpu := 0; cpu < 8; cpu++ {
				space.Bump(cpu, msr.FixedCtrInstRetired, 1_000_000)
			}
			duf.Invoke(now)
		}
		for i := 0; i < 4; i++ {
			step() // baseline, then harvesting below max
		}
		checkDegradation(t, degradationDriver{
			limit: func() float64 {
				maxHz, _ := msr.DecodeUncoreLimit(space.Peek(0, msr.UncoreRatioLimit))
				return maxHz / 1e9
			},
			health: duf.SensorHealth,
			setBad: func(bad bool) {
				if bad {
					space.FailReads(msr.ErrInjected)
				} else {
					space.FailReads(nil)
				}
			},
			step: step,
			max:  2.2,
		})
	})
}

// TestMAGUSRecoveryReentersWarmup pins down the recovery semantics: the
// first good sample after a full outage restarts warm-up with clean
// history, and the uncore stays at max until warm-up completes.
func TestMAGUSRecoveryReentersWarmup(t *testing.T) {
	space := msr.NewSpace(2, 4)
	src := &scriptedPCM{gbs: 100}
	env := &governor.Env{
		Dev: space, PCM: src, Sockets: 2, CPUs: 8,
		FirstCPU:     space.FirstCPUOf,
		UncoreMinGHz: 0.8, UncoreMaxGHz: 2.2,
	}
	cfg := DefaultConfig()
	cfg.WarmupCycles = 2
	m := New(cfg)
	if err := m.Attach(env); err != nil {
		t.Fatal(err)
	}
	var now time.Duration
	step := func() {
		now += 300 * time.Millisecond
		m.Invoke(now)
	}
	step()
	step() // warm-up done, limit at max
	src.down = true
	for i := 0; i < 4; i++ {
		step() // outage → lost → pinned max
	}
	if m.SensorHealth() != resilient.Lost {
		t.Fatalf("health = %v, want lost", m.SensorHealth())
	}
	src.down = false
	src.gbs = 20
	step()
	if m.SensorHealth() != resilient.Healthy {
		t.Fatalf("health after recovery = %v", m.SensorHealth())
	}
	s := m.Stats()
	// 2 initial + 1 post-recovery warm-up cycle so far.
	if s.WarmupCycles != 3 {
		t.Fatalf("warm-up cycles after recovery = %d, want 3 (re-entered)", s.WarmupCycles)
	}
	// A sharp fall inside the re-entered warm-up must not trigger
	// scaling — the trend window was reset.
	maxHz, _ := msr.DecodeUncoreLimit(space.Peek(0, msr.UncoreRatioLimit))
	if got := maxHz / 1e9; got != 2.2 {
		t.Fatalf("limit during re-entered warm-up = %v, want max", got)
	}
}

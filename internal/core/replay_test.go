package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/spear-repro/magus/internal/core"
	"github.com/spear-repro/magus/internal/faults"
	"github.com/spear-repro/magus/internal/harness"
	"github.com/spear-repro/magus/internal/node"
	"github.com/spear-repro/magus/internal/workload"
)

// TestReplayMatchesMAGUS is the randomized cross-validation behind the
// tournament's fork planner: over random configurations, workloads,
// seeds and (non-MSR) fault schedules, the pure Replay automaton fed
// with inputs inferred from a real run's Decision stream must
// reproduce every cycle's outcome exactly. MSR-write faults are
// excluded because a replay cannot model a failed setUncore — the
// planner handles that case by validated conservative forking, which
// TestReplayConservativeOnMSRFaults exercises.
func TestReplayMatchesMAGUS(t *testing.T) {
	configs := []func() node.Config{node.IntelA100, node.IntelCPUOnly, node.Intel4A100}
	progs := []string{"bfs", "gemm", "srad", "fdtd2d", "particlefilter_float", "unet"}
	plans := []string{"", "", "pcm-flaky", "pcm-loss", "pcm-outage", "pcm-stale", "pcm-wild", "pcm-stall"}

	trials := 20
	if testing.Short() {
		trials = 6
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < trials; trial++ {
		cfg := core.DefaultConfig()
		cfg.IncThresholdGBs = 2 + 18*rng.Float64()
		cfg.DecThresholdGBs = 5 + 25*rng.Float64()
		cfg.HighFreqThreshold = 0.2 + 0.6*rng.Float64()
		cfg.Window = 6 + rng.Intn(9)
		cfg.DerivLen = 1 + rng.Intn(cfg.Window-1)
		cfg.WarmupCycles = 5 + rng.Intn(11)
		cfg.WarmupAtMax = rng.Intn(2) == 0
		cfg.DisableHighFreq = rng.Intn(4) == 0

		sys := configs[rng.Intn(len(configs))]()
		prog := progs[rng.Intn(len(progs))]
		planName := plans[rng.Intn(len(plans))]
		seed := rng.Int63n(1 << 32)

		label := fmt.Sprintf("trial%d/%s/%s/faults=%q", trial, sys.Name, prog, planName)
		t.Run(label, func(t *testing.T) {
			ds := recordedRun(t, sys, prog, planName, seed, cfg)
			rp := core.NewReplay(cfg, sys.UncoreMinGHz, sys.UncoreMaxGHz)
			for i, d := range ds {
				in := core.InferReplayInput(d, rp)
				got := rp.Cycle(in)
				if !got.SameOutcome(d) {
					t.Fatalf("cycle %d diverged:\n replay  %+v\n runtime %+v", i, got, d)
				}
			}
			if len(ds) == 0 {
				t.Fatal("run produced no decisions")
			}
		})
	}
}

// recordedRun executes prog on sys under a MAGUS with cfg and returns
// the recorded Decision stream.
func recordedRun(t *testing.T, sys node.Config, prog, planName string, seed int64, cfg core.Config) []core.Decision {
	t.Helper()
	p, ok := workload.ByName(prog)
	if !ok {
		t.Fatalf("no workload %q", prog)
	}
	opt := harness.Options{Seed: seed}
	if planName != "" {
		plan, ok := faults.Preset(planName)
		if !ok {
			t.Fatalf("no fault preset %q", planName)
		}
		plan.Seed = seed
		opt.Faults = plan
	}
	gov := core.New(cfg)
	var ds []core.Decision
	gov.OnDecision(func(d core.Decision) { ds = append(ds, d) })
	if _, err := harness.Run(sys, p, gov, opt); err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestReplayConservativeOnMSRFaults pins the safety property behind
// fork-on-mismatch: with MSR-write faults injected, the replay may
// disagree with the real runtime (it cannot model a failed uncore
// write), but the disagreement is always *detected* by the per-cycle
// validation — the replay never silently tracks past the first
// un-modelled effect, because every later target evolves from the
// mismatched state.
func TestReplayConservativeOnMSRFaults(t *testing.T) {
	sys := node.IntelA100()
	cfg := core.DefaultConfig()
	// MAGUS writes the uncore limit only on decision edges, so whether
	// a given schedule's MSR faults intersect a write is seed-dependent;
	// scan seeds until one does.
	for seed := int64(1); seed <= 40; seed++ {
		ds := recordedRun(t, sys, "srad", "msr-flaky", seed, cfg)
		rp := core.NewReplay(cfg, sys.UncoreMinGHz, sys.UncoreMaxGHz)
		for i, d := range ds {
			in := core.InferReplayInput(d, rp)
			got := rp.Cycle(in)
			if !got.SameOutcome(d) {
				t.Logf("seed %d: validation mismatch detected at cycle %d (replay %s→%.2f, runtime %s→%.2f)",
					seed, i, got.Reason, got.TargetGHz, d.Reason, d.TargetGHz)
				return
			}
		}
	}
	t.Fatal("no msr-flaky schedule produced a validation mismatch in 40 seeds; the preset no longer exercises the conservative path")
}

// TestReplayVariantDivergence drives a base and a variant automaton
// over one recorded input stream and checks the planner's divergence
// criterion: state equality holds cycle after cycle until the first
// differing outcome, and once the variant diverges it stays its own
// run (the planner forks exactly once).
func TestReplayVariantDivergence(t *testing.T) {
	sys := node.IntelA100()
	base := core.DefaultConfig()
	ds := recordedRun(t, sys, "srad", "", 3, base)

	variant := base
	variant.DecThresholdGBs = 4 // much twitchier falls: must diverge

	baseSim := core.NewReplay(base, sys.UncoreMinGHz, sys.UncoreMaxGHz)
	varSim := core.NewReplay(variant, sys.UncoreMinGHz, sys.UncoreMaxGHz)
	if !baseSim.StateEqual(varSim) {
		t.Fatal("identically initialised automata report unequal state")
	}
	diverged := -1
	for i, d := range ds {
		in := core.InferReplayInput(d, baseSim)
		bd := baseSim.Cycle(in)
		if !bd.SameOutcome(d) {
			t.Fatalf("base replay failed validation at cycle %d", i)
		}
		vd := varSim.Cycle(in)
		if !vd.SameOutcome(bd) || !varSim.StateEqual(baseSim) {
			diverged = i
			break
		}
	}
	if diverged < 0 {
		t.Fatal("variant with DecThresholdGBs=4 never diverged from the base on srad")
	}
	if diverged == 0 {
		t.Fatal("variant diverged at cycle 0; expected a shared warm-up prefix")
	}
	t.Logf("variant diverged at cycle %d of %d", diverged, len(ds))
}

package workload

import (
	"testing"
	"time"
)

// TestValidateZeroAlloc pins the Validate bugfix: the old
// implementation rebuilt Prologue+Phases through a double append on
// every call; the in-place walk must not allocate.
func TestValidateZeroAlloc(t *testing.T) {
	p := benchProgram()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("Validate allocates %v times per call, want 0", allocs)
	}
}

// TestRunnerStepZeroAlloc pins the phase-cursor rewrite: a steady-state
// Runner.Step (including phase transitions and the burst dice) must not
// allocate.
func TestRunnerStepZeroAlloc(t *testing.T) {
	r := NewRunner(benchProgram(), 400, 1)
	r.SetAttained(func() float64 { return 250 })
	now := time.Duration(0)
	dt := time.Millisecond
	step := func() {
		r.Step(now, dt)
		now += dt
	}
	for i := 0; i < 100; i++ {
		step()
	}
	if allocs := testing.AllocsPerRun(2000, step); allocs != 0 {
		t.Fatalf("Runner.Step allocates %v times per call, want 0", allocs)
	}
}

// TestPhaseAtMatchesFlatten checks the cursor mapping against an
// explicitly flattened sequence for programs with and without a
// prologue and with several repeat counts.
func TestPhaseAtMatchesFlatten(t *testing.T) {
	progs := []*Program{
		benchProgram(),
		{Name: "noprologue", Phases: []Phase{
			{Name: "a", Duration: time.Second},
			{Name: "b", Duration: time.Second},
		}, Repeat: 3},
		{Name: "once", Prologue: []Phase{{Name: "p", Duration: time.Second}},
			Phases: []Phase{{Name: "x", Duration: time.Second}}},
	}
	for _, p := range progs {
		reps := p.Repeat
		if reps < 1 {
			reps = 1
		}
		var flat []Phase
		flat = append(flat, p.Prologue...)
		for i := 0; i < reps; i++ {
			flat = append(flat, p.Phases...)
		}
		if got := p.phaseCount(); got != len(flat) {
			t.Fatalf("%s: phaseCount = %d, flattened length %d", p.Name, got, len(flat))
		}
		for i := range flat {
			if got := p.phaseAt(i); got.Name != flat[i].Name || got.Duration != flat[i].Duration {
				t.Fatalf("%s: phaseAt(%d) = %s, want %s", p.Name, i, got.Name, flat[i].Name)
			}
		}
	}
}

package workload

import (
	"testing"
	"time"
)

func muxSpec2(policy MuxPolicy) MuxSpec {
	return MuxSpec{
		Policy: policy,
		Tenants: []TenantSpec{
			{Tenant: "a", Program: mustByName("srad"), Seed: 1},
			{Tenant: "b", Program: mustByName("pathfinder"), Seed: 2},
		},
	}
}

func TestMuxSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*MuxSpec)
	}{
		{"one tenant", func(s *MuxSpec) { s.Tenants = s.Tenants[:1] }},
		{"no tenants", func(s *MuxSpec) { s.Tenants = nil }},
		{"bad policy", func(s *MuxSpec) { s.Policy = MuxPolicy(7) }},
		{"negative quantum", func(s *MuxSpec) { s.Quantum = -time.Millisecond }},
		{"empty name", func(s *MuxSpec) { s.Tenants[0].Tenant = "" }},
		{"duplicate name", func(s *MuxSpec) { s.Tenants[1].Tenant = "a" }},
		{"nil program", func(s *MuxSpec) { s.Tenants[1].Program = nil }},
		{"gpufrac high", func(s *MuxSpec) { s.Tenants[0].GPUFrac = 1.5 }},
		{"gpufrac negative", func(s *MuxSpec) { s.Tenants[0].GPUFrac = -0.1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := muxSpec2(RoundRobin)
			tc.mut(&spec)
			if err := spec.Validate(); err == nil {
				t.Fatalf("Validate accepted a spec with %s", tc.name)
			}
			if _, err := NewMux(spec, 400); err == nil {
				t.Fatalf("NewMux accepted a spec with %s", tc.name)
			}
		})
	}
	if err := muxSpec2(Fractional).Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

// TestMuxRoundRobinExclusive pins the time-slicing contract: every step
// has exactly one owner, the owner is marked Exclusive, and ownership
// alternates on quantum boundaries while both tenants are live.
func TestMuxRoundRobinExclusive(t *testing.T) {
	spec := muxSpec2(RoundRobin)
	m, err := NewMux(spec, 400)
	if err != nil {
		t.Fatal(err)
	}
	dt := time.Millisecond
	seen := map[int]bool{}
	for now := time.Duration(0); now < 100*time.Millisecond; now += dt {
		m.Step(now, dt)
		owner := m.Owner()
		if owner < 0 {
			t.Fatalf("t=%v: round-robin step has no owner", now)
		}
		seen[owner] = true
		shares := m.Shares()
		for i := range shares {
			if (i == owner) != shares[i].Exclusive {
				t.Fatalf("t=%v: tenant %d Exclusive=%v with owner %d", now, i, shares[i].Exclusive, owner)
			}
			if i != owner && (shares[i].SMShare != 0 || shares[i].MemShare != 0) {
				t.Fatalf("t=%v: non-owner %d has nonzero shares", now, i)
			}
		}
		wantOwner := int(int64(now/DefaultQuantum) % 2)
		if owner != wantOwner {
			t.Fatalf("t=%v: owner %d, want slot owner %d", now, owner, wantOwner)
		}
	}
	if len(seen) != 2 {
		t.Fatalf("only tenants %v were ever scheduled", seen)
	}
}

// TestMuxDeterminism: two muxes from the same spec produce identical
// demand streams.
func TestMuxDeterminism(t *testing.T) {
	for _, policy := range []MuxPolicy{RoundRobin, Fractional} {
		a, err := NewMux(muxSpec2(policy), 400)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewMux(muxSpec2(policy), 400)
		if err != nil {
			t.Fatal(err)
		}
		dt := time.Millisecond
		for now := time.Duration(0); now < 200*time.Millisecond; now += dt {
			a.Step(now, dt)
			b.Step(now, dt)
			if a.Demand() != b.Demand() {
				t.Fatalf("%v t=%v: demand diverged: %+v vs %+v", policy, now, a.Demand(), b.Demand())
			}
			if a.Owner() != b.Owner() {
				t.Fatalf("%v t=%v: owner diverged", policy, now)
			}
		}
	}
}

// TestMuxFractionalShares pins the concurrent policy: no owner while
// both tenants are live, superposed demand, GPU fractions applied, and
// the live share surface carrying each tenant's raw weights.
func TestMuxFractionalShares(t *testing.T) {
	spec := muxSpec2(Fractional)
	spec.Tenants[0].GPUFrac = 0.7
	spec.Tenants[1].GPUFrac = 0.3
	m, err := NewMux(spec, 400)
	if err != nil {
		t.Fatal(err)
	}
	dt := time.Millisecond
	m.Step(0, dt)
	if m.Owner() != -1 {
		t.Fatalf("fractional step with both tenants live has owner %d", m.Owner())
	}
	if m.PhaseName() != "colocated" {
		t.Fatalf("PhaseName = %q, want colocated", m.PhaseName())
	}
	shares := m.Shares()
	var mem, memShare float64
	for i := range shares {
		if shares[i].Exclusive {
			t.Fatalf("tenant %d exclusive under fractional with 2 live", i)
		}
		memShare += shares[i].MemShare
	}
	mem = m.Demand().MemGBs
	if memShare != mem {
		t.Fatalf("sum of MemShare %v != combined demand MemGBs %v", memShare, mem)
	}
	if got := m.Demand().GPUSMUtil; got > 1 {
		t.Fatalf("combined SM util %v > 1", got)
	}
}

// TestMuxRunsToCompletion: both policies finish every tenant within the
// serialised nominal horizon, then publish zero demand and "done".
func TestMuxRunsToCompletion(t *testing.T) {
	for _, policy := range []MuxPolicy{RoundRobin, Fractional} {
		m, err := NewMux(muxSpec2(policy), 400)
		if err != nil {
			t.Fatal(err)
		}
		m.SetAttained(func() float64 { return 400 })
		dt := time.Millisecond
		horizon := m.NominalDuration()*4 + 10*time.Second
		var now time.Duration
		for ; now < horizon && !m.Done(); now += dt {
			m.Step(now, dt)
		}
		if !m.Done() {
			t.Fatalf("%v: not done after %v", policy, now)
		}
		for i := range m.Tenants() {
			if !m.TenantDone(i) {
				t.Fatalf("%v: tenant %d not done", policy, i)
			}
			if m.TenantElapsed(i) <= 0 {
				t.Fatalf("%v: tenant %d has no scheduled time", policy, i)
			}
		}
		m.Step(now, dt)
		if m.Demand() != (Demand{}) {
			t.Fatalf("%v: done mux still publishes demand %+v", policy, m.Demand())
		}
		if m.PhaseName() != "done" {
			t.Fatalf("%v: PhaseName = %q after completion", policy, m.PhaseName())
		}
	}
}

// TestMuxPhaseName pins the owner-qualified phase label under
// round-robin ("tenant:phase").
func TestMuxPhaseName(t *testing.T) {
	m, err := NewMux(muxSpec2(RoundRobin), 400)
	if err != nil {
		t.Fatal(err)
	}
	dt := time.Millisecond
	m.Step(0, dt)
	name := m.PhaseName()
	want := m.Tenants()[m.Owner()] + ":"
	if len(name) <= len(want) || name[:len(want)] != want {
		t.Fatalf("PhaseName = %q, want %q prefix", name, want)
	}
}

// TestMuxStepNoAlloc pins the colocated zero-alloc tick contract for
// both policies.
func TestMuxStepNoAlloc(t *testing.T) {
	for _, policy := range []MuxPolicy{RoundRobin, Fractional} {
		m, err := NewMux(muxSpec2(policy), 400)
		if err != nil {
			t.Fatal(err)
		}
		dt := time.Millisecond
		now := time.Duration(0)
		for ; now < 50*time.Millisecond; now += dt {
			m.Step(now, dt)
		}
		avg := testing.AllocsPerRun(200, func() {
			m.Step(now, dt)
			_ = m.PhaseName()
			now += dt
		})
		if avg != 0 {
			t.Fatalf("%v: steady-state Step allocates %.1f times", policy, avg)
		}
	}
}

func TestMuxPresets(t *testing.T) {
	for name, spec := range map[string]MuxSpec{
		"noisy-neighbor": NoisyNeighbor(),
		"fractional-gpu": FractionalGPU(),
		"burst":          BurstColocation(),
	} {
		if err := spec.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", name, err)
		}
		if _, err := NewMux(spec, 400); err != nil {
			t.Errorf("preset %s: %v", name, err)
		}
	}
}

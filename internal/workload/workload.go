// Package workload generates the demand signals GPU-dominant
// applications place on a heterogeneous node: host memory throughput
// (the single signal MAGUS watches), host CPU activity, and per-GPU
// compute/memory utilisation. An application is a Program — a sequence
// of phases, each with a nominal duration, a memory-demand shape
// (constant, square-wave, bursts, ramps), a memory-bound fraction, and
// CPU/GPU utilisation levels — optionally repeated (training epochs).
//
// Progress through a phase is gated by served memory throughput: a
// phase with memory-bound fraction β advances at rate
// (1-β) + β·min(1, attained/demand), which reproduces the paper's core
// trade-off (Figure 2: UNet runs 21 % longer when the uncore is pinned
// at its minimum). Demand shapes are functions of *progress time*, so a
// starved application moves through its pattern more slowly, exactly as
// a real stalled data pipeline would.
//
// The catalog in catalog.go instantiates every workload the paper
// evaluates, with demand levels expressed as fractions of the target
// system's peak bandwidth so one program ports across the three
// evaluated systems.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/spear-repro/magus/internal/detrand"
)

// Demand is the instantaneous resource request an application places on
// the node.
type Demand struct {
	// CPUBusyCores is the number of busy host cores across the node
	// (data-loader workers, kernel-launch threads). May be fractional.
	CPUBusyCores float64
	// MemGBs is the requested host memory throughput in GB/s,
	// system-wide (DRAM traffic incl. DMA staging for H2D/D2H copies).
	MemGBs float64
	// MemBoundFrac is β: the fraction of application progress gated by
	// memory throughput at this instant.
	MemBoundFrac float64
	// GPUSMUtil and GPUMemUtil apply to every GPU the program uses
	// (data-parallel workloads drive them symmetrically).
	GPUSMUtil  float64
	GPUMemUtil float64
	// NUMASkew biases memory traffic toward socket 0: 0 = interleaved
	// evenly, 1 = all traffic on socket 0. NUMA-imbalanced workloads
	// are the target of the per-socket scaling extension.
	NUMASkew float64
	// CPUIntensity scales per-core active power for the instruction
	// mix (1 = scalar/data-movement threads; ≈2 = AVX-heavy HPC
	// kernels). Zero means 1.
	CPUIntensity float64
}

// Shape selects how a phase's memory demand varies over progress time.
type Shape int

const (
	// Constant holds demand at Phase.Mem.
	Constant Shape = iota
	// Square alternates between Phase.Mem (for Duty of each Period)
	// and Phase.MemLow — the fine-grained compute/transfer alternation
	// of GPU workloads (§2, challenge 3).
	Square
	// Bursts emits pseudo-random bursts: each Period, with probability
	// Duty, demand holds at Phase.Mem for BurstLen, else at
	// Phase.MemLow.
	Bursts
	// RampUp rises linearly from MemLow to Mem across the phase;
	// RampDown falls.
	RampUp
	RampDown
)

// String implements fmt.Stringer.
func (s Shape) String() string {
	switch s {
	case Constant:
		return "constant"
	case Square:
		return "square"
	case Bursts:
		return "bursts"
	case RampUp:
		return "ramp-up"
	case RampDown:
		return "ramp-down"
	}
	return fmt.Sprintf("Shape(%d)", int(s))
}

// Phase is one execution region of an application.
type Phase struct {
	Name string
	// Duration is the nominal phase length when fully served.
	Duration time.Duration

	// Mem is the peak memory demand as a fraction of the target
	// system's maximum bandwidth; MemLow is the trough for modulated
	// shapes.
	Mem    float64
	MemLow float64
	Shape  Shape
	// Period and Duty parameterise Square and Bursts; BurstLen bounds
	// burst length for Bursts (defaults to Duty·Period).
	Period   time.Duration
	Duty     float64
	BurstLen time.Duration

	// Beta is the phase's memory-bound fraction β.
	Beta float64

	// CPUBusyCores and the GPU utilisations during the phase. When
	// GPUAntiPhase is set, GPU SM utilisation dips to GPUSMLow while
	// memory demand is high (transfer stalls compute).
	CPUBusyCores float64
	GPUSM        float64
	GPUSMLow     float64
	GPUAntiPhase bool
	GPUMem       float64

	// Jitter is the relative amplitude of smoothed multiplicative
	// noise applied to memory demand and CPU activity.
	Jitter float64

	// NUMASkew biases the phase's memory traffic toward socket 0
	// (0 = interleaved, 1 = socket 0 only).
	NUMASkew float64

	// CPUIntensity scales per-core active power for the phase's
	// instruction mix (0 = default 1.0; ≈2 for AVX-heavy kernels).
	CPUIntensity float64
}

// Program is a full application: an optional one-time Prologue
// (framework startup, input parsing — typically light on memory), then
// the Phases body repeated Repeat times (Repeat <= 1 means once).
type Program struct {
	Name     string
	Prologue []Phase
	Phases   []Phase
	Repeat   int
}

// NominalDuration is the end-to-end runtime when every phase is fully
// served.
func (p *Program) NominalDuration() time.Duration {
	var d time.Duration
	for _, ph := range p.Prologue {
		d += ph.Duration
	}
	var body time.Duration
	for _, ph := range p.Phases {
		body += ph.Duration
	}
	reps := p.Repeat
	if reps < 1 {
		reps = 1
	}
	return d + body*time.Duration(reps)
}

// reps normalises Repeat (<= 1 means the body runs once).
func (p *Program) reps() int {
	if p.Repeat < 1 {
		return 1
	}
	return p.Repeat
}

// phaseCount is the number of executed phases: prologue plus the body
// times Repeat.
func (p *Program) phaseCount() int {
	return len(p.Prologue) + len(p.Phases)*p.reps()
}

// phaseAt maps an executed phase index onto the program structure:
// prologue phases first, then the body cycled Repeat times. O(1), no
// flattened copy.
func (p *Program) phaseAt(i int) *Phase {
	if i < len(p.Prologue) {
		return &p.Prologue[i]
	}
	return &p.Phases[(i-len(p.Prologue))%len(p.Phases)]
}

// Validate checks the program for construction errors. It walks the
// prologue and body in place (indices match the executed order of the
// first repetition) and does not allocate on the happy path.
func (p *Program) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: program without a name")
	}
	if len(p.Phases) == 0 {
		return fmt.Errorf("workload %s: no phases", p.Name)
	}
	for i := range p.Prologue {
		if err := p.validatePhase(i, &p.Prologue[i]); err != nil {
			return err
		}
	}
	for i := range p.Phases {
		if err := p.validatePhase(len(p.Prologue)+i, &p.Phases[i]); err != nil {
			return err
		}
	}
	return nil
}

// validatePhase checks one phase, reporting it under its executed index.
func (p *Program) validatePhase(i int, ph *Phase) error {
	if ph.Duration <= 0 {
		return fmt.Errorf("workload %s phase %d (%s): non-positive duration", p.Name, i, ph.Name)
	}
	if ph.Mem < 0 || ph.Mem > 1 || ph.MemLow < 0 || ph.MemLow > ph.Mem {
		return fmt.Errorf("workload %s phase %d (%s): memory fractions out of range", p.Name, i, ph.Name)
	}
	if ph.Beta < 0 || ph.Beta > 1 {
		return fmt.Errorf("workload %s phase %d (%s): beta out of range", p.Name, i, ph.Name)
	}
	if (ph.Shape == Square || ph.Shape == Bursts) && ph.Period <= 0 {
		return fmt.Errorf("workload %s phase %d (%s): modulated shape needs a period", p.Name, i, ph.Name)
	}
	if ph.Duty < 0 || ph.Duty > 1 {
		return fmt.Errorf("workload %s phase %d (%s): duty out of range", p.Name, i, ph.Name)
	}
	if ph.Jitter < 0 || ph.Jitter > 0.5 {
		return fmt.Errorf("workload %s phase %d (%s): jitter out of range", p.Name, i, ph.Name)
	}
	if ph.NUMASkew < 0 || ph.NUMASkew > 1 {
		return fmt.Errorf("workload %s phase %d (%s): NUMA skew out of range", p.Name, i, ph.Name)
	}
	if ph.CPUIntensity < 0 || ph.CPUIntensity > 3 {
		return fmt.Errorf("workload %s phase %d (%s): CPU intensity out of range", p.Name, i, ph.Name)
	}
	return nil
}

// Runner executes a Program against a node. It is a sim.Component: each
// step it advances phase progress using the throughput the node served
// last step, then publishes the new demand. Bind the node's feedback
// with SetAttained before stepping.
type Runner struct {
	prog     *Program
	sysBWGBs float64
	src      *detrand.Source
	rng      *rand.Rand
	attained func() float64

	// The executed phase sequence is never materialised: cur points at
	// the active phase inside the program (phaseAt maps phaseIdx onto
	// prologue + cycled body) and advances monotonically with the
	// cursor, so a step touches no flattened copy and allocates nothing.
	cur       *Phase
	numPhases int

	phaseIdx  int
	progress  time.Duration // progress-time within the current phase
	burstOn   bool
	burstSeen time.Duration // start of the burst period last rolled; -1 = none
	noise     float64
	done      bool

	demand     Demand
	prevDemand float64
	elapsed    time.Duration
}

// NewRunner binds a program to a system with the given peak bandwidth.
// seed makes the run deterministic.
func NewRunner(prog *Program, sysBWGBs float64, seed int64) *Runner {
	if err := prog.Validate(); err != nil {
		panic(err)
	}
	if sysBWGBs <= 0 {
		panic(fmt.Sprintf("workload: non-positive system bandwidth %v", sysBWGBs))
	}
	// The generator rides on a counting source so a checkpoint can
	// capture the stream position; the emitted values are bit-identical
	// to a bare rand.NewSource (see internal/detrand).
	src := detrand.NewSource(seed)
	return &Runner{
		prog:      prog,
		cur:       prog.phaseAt(0),
		numPhases: prog.phaseCount(),
		sysBWGBs:  sysBWGBs,
		src:       src,
		rng:       rand.New(src),
		attained:  func() float64 { return 0 },
		burstSeen: -1,
	}
}

// SetAttained installs the node feedback: the memory throughput (GB/s)
// actually served during the previous step.
func (r *Runner) SetAttained(fn func() float64) {
	if fn == nil {
		panic("workload: nil attained func")
	}
	r.attained = fn
}

// Done reports whether the program has completed.
func (r *Runner) Done() bool { return r.done }

// Elapsed returns virtual time consumed so far.
func (r *Runner) Elapsed() time.Duration { return r.elapsed }

// Demand returns the demand published by the last Step.
func (r *Runner) Demand() Demand { return r.demand }

// Program returns the bound program.
func (r *Runner) Program() *Program { return r.prog }

// PhaseIndex returns the executed-phase cursor (counting repeats), or
// -1 once the program has completed.
func (r *Runner) PhaseIndex() int {
	if r.done {
		return -1
	}
	return r.phaseIdx
}

// PhaseName returns the active phase's name, or "done" after the
// program completes — the waste ledger's per-phase attribution key.
func (r *Runner) PhaseName() string {
	if r.done || r.cur == nil {
		return "done"
	}
	return r.cur.Name
}

// Step implements sim.Component.
func (r *Runner) Step(now, dt time.Duration) {
	if r.done {
		r.demand = Demand{}
		return
	}
	r.elapsed += dt
	ph := r.cur

	// Advance progress using last step's service ratio.
	rate := 1.0
	if ph.Beta > 0 && r.prevDemand > 1e-9 {
		served := r.attained()
		ratio := served / r.prevDemand
		if ratio > 1 {
			ratio = 1
		}
		rate = (1 - ph.Beta) + ph.Beta*ratio
	}
	r.progress += time.Duration(float64(dt) * rate)

	// Phase transitions.
	for r.progress >= ph.Duration {
		r.progress -= ph.Duration
		r.phaseIdx++
		r.burstOn = false
		r.burstSeen = -1
		if r.phaseIdx >= r.numPhases {
			r.done = true
			r.demand = Demand{}
			r.prevDemand = 0
			return
		}
		ph = r.prog.phaseAt(r.phaseIdx)
		r.cur = ph
	}

	// Smoothed multiplicative noise (first-order filtered white noise).
	if ph.Jitter > 0 {
		r.noise += 0.1 * (r.rng.Float64()*2 - 1 - r.noise)
	} else {
		r.noise = 0
	}

	memFrac, high := r.shapeValue(ph)
	mem := memFrac * r.sysBWGBs * (1 + ph.Jitter*r.noise*2)
	if mem < 0 {
		mem = 0
	}
	gpuSM := ph.GPUSM
	if ph.GPUAntiPhase && high {
		gpuSM = ph.GPUSMLow
	}
	r.demand = Demand{
		CPUBusyCores: ph.CPUBusyCores * (1 + ph.Jitter*r.noise),
		MemGBs:       mem,
		MemBoundFrac: ph.Beta,
		GPUSMUtil:    gpuSM,
		GPUMemUtil:   ph.GPUMem,
		NUMASkew:     ph.NUMASkew,
		CPUIntensity: ph.CPUIntensity,
	}
	if r.demand.CPUBusyCores < 0 {
		r.demand.CPUBusyCores = 0
	}
	r.prevDemand = r.demand.MemGBs
}

// shapeValue returns the memory fraction for the current progress point
// and whether the shape is in its high state.
func (r *Runner) shapeValue(ph *Phase) (frac float64, high bool) {
	switch ph.Shape {
	case Constant:
		return ph.Mem, true
	case Square:
		pos := r.progress % ph.Period
		if float64(pos) < ph.Duty*float64(ph.Period) {
			return ph.Mem, true
		}
		return ph.MemLow, false
	case Bursts:
		// Roll the dice once per period.
		if start := r.progress - r.progress%ph.Period; start != r.burstSeen {
			r.burstSeen = start
			r.burstOn = r.rng.Float64() < ph.Duty
		}
		burstLen := ph.BurstLen
		if burstLen <= 0 {
			burstLen = time.Duration(ph.Duty * float64(ph.Period))
		}
		if r.burstOn && r.progress-r.burstSeen < burstLen {
			return ph.Mem, true
		}
		return ph.MemLow, false
	case RampUp:
		t := float64(r.progress) / float64(ph.Duration)
		return ph.MemLow + (ph.Mem-ph.MemLow)*t, t > 0.5
	case RampDown:
		t := float64(r.progress) / float64(ph.Duration)
		return ph.Mem - (ph.Mem-ph.MemLow)*t, t < 0.5
	}
	return ph.Mem, true
}

// Idle returns a program that sits idle for d — used for the Table 2
// overhead measurements (10 idle minutes).
func Idle(d time.Duration) *Program {
	return &Program{
		Name: "idle",
		Phases: []Phase{{
			Name:     "idle",
			Duration: d,
		}},
	}
}

package workload

import (
	"testing"
	"time"
)

func simpleProgram() *Program {
	return &Program{
		Name: "test",
		Phases: []Phase{
			{Name: "a", Duration: time.Second, Mem: 0.5, Shape: Constant, Beta: 0.8, CPUBusyCores: 2, GPUSM: 0.5},
			{Name: "b", Duration: 2 * time.Second, Mem: 0.1, Shape: Constant, Beta: 0.2, GPUSM: 0.9},
		},
	}
}

func TestNominalDuration(t *testing.T) {
	p := simpleProgram()
	if got := p.NominalDuration(); got != 3*time.Second {
		t.Fatalf("NominalDuration = %v, want 3s", got)
	}
	p.Repeat = 3
	if got := p.NominalDuration(); got != 9*time.Second {
		t.Fatalf("repeated NominalDuration = %v, want 9s", got)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	bad := []*Program{
		{Name: ""},
		{Name: "x"},
		{Name: "x", Phases: []Phase{{Duration: 0}}},
		{Name: "x", Phases: []Phase{{Duration: time.Second, Mem: 1.5}}},
		{Name: "x", Phases: []Phase{{Duration: time.Second, Mem: 0.3, MemLow: 0.5}}},
		{Name: "x", Phases: []Phase{{Duration: time.Second, Mem: 0.3, Beta: 2}}},
		{Name: "x", Phases: []Phase{{Duration: time.Second, Mem: 0.3, Shape: Square}}},
		{Name: "x", Phases: []Phase{{Duration: time.Second, Mem: 0.3, Duty: 1.2}}},
		{Name: "x", Phases: []Phase{{Duration: time.Second, Mem: 0.3, Jitter: 0.9}}},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("case %d: Validate accepted %+v", i, p)
		}
	}
}

func TestRunnerFullServiceFinishesOnTime(t *testing.T) {
	r := NewRunner(simpleProgram(), 400, 1)
	// Full service: attained always equals previous demand.
	var lastDemand float64
	r.SetAttained(func() float64 { return lastDemand })
	dt := time.Millisecond
	var now time.Duration
	for !r.Done() {
		r.Step(now, dt)
		lastDemand = r.Demand().MemGBs
		now += dt
		if now > 10*time.Second {
			t.Fatal("runner did not finish")
		}
	}
	nominal := simpleProgram().NominalDuration()
	if got := r.Elapsed(); got < nominal || got > nominal+5*time.Millisecond {
		t.Fatalf("elapsed = %v, want ≈%v", got, nominal)
	}
}

func TestRunnerStarvationStretchesRuntime(t *testing.T) {
	prog := &Program{
		Name: "membound",
		Phases: []Phase{
			{Name: "m", Duration: 2 * time.Second, Mem: 0.5, Shape: Constant, Beta: 1.0},
		},
	}
	r := NewRunner(prog, 400, 1) // demand = 200 GB/s
	r.SetAttained(func() float64 { return 100 })
	dt := time.Millisecond
	var now time.Duration
	for !r.Done() {
		r.Step(now, dt)
		now += dt
		if now > 30*time.Second {
			t.Fatal("runner did not finish")
		}
	}
	// Served at half demand with β=1 → 2× nominal runtime.
	if got := r.Elapsed(); got < 3900*time.Millisecond || got > 4100*time.Millisecond {
		t.Fatalf("starved elapsed = %v, want ≈4s", got)
	}
}

func TestRunnerComputeBoundIgnoresStarvation(t *testing.T) {
	prog := &Program{
		Name:   "compute",
		Phases: []Phase{{Name: "c", Duration: time.Second, Mem: 0.5, Shape: Constant, Beta: 0}},
	}
	r := NewRunner(prog, 400, 1)
	r.SetAttained(func() float64 { return 0 })
	var now time.Duration
	for !r.Done() {
		r.Step(now, time.Millisecond)
		now += time.Millisecond
	}
	if got := r.Elapsed(); got > 1010*time.Millisecond {
		t.Fatalf("compute-bound elapsed = %v, want ≈1s", got)
	}
}

func TestSquareShape(t *testing.T) {
	prog := &Program{
		Name: "sq",
		Phases: []Phase{{
			Name: "s", Duration: 10 * time.Second, Mem: 0.8, MemLow: 0.2,
			Shape: Square, Period: 100 * time.Millisecond, Duty: 0.5,
		}},
	}
	r := NewRunner(prog, 100, 1)
	r.SetAttained(func() float64 { return 1000 })
	var highs, lows int
	var now time.Duration
	for i := 0; i < 1000; i++ {
		r.Step(now, time.Millisecond)
		now += time.Millisecond
		switch d := r.Demand().MemGBs; {
		case d > 70:
			highs++
		case d < 30:
			lows++
		default:
			t.Fatalf("square demand %v outside both levels", d)
		}
	}
	if highs < 400 || lows < 400 {
		t.Fatalf("square duty: %d high / %d low, want ≈500/500", highs, lows)
	}
}

func TestRampShapes(t *testing.T) {
	prog := &Program{
		Name: "ramp",
		Phases: []Phase{{
			Name: "up", Duration: time.Second, Mem: 1.0, MemLow: 0.0, Shape: RampUp,
		}},
	}
	r := NewRunner(prog, 100, 1)
	r.SetAttained(func() float64 { return 1000 })
	var now time.Duration
	var early, late float64
	for i := 0; i < 999; i++ {
		r.Step(now, time.Millisecond)
		now += time.Millisecond
		if i == 100 {
			early = r.Demand().MemGBs
		}
		if i == 900 {
			late = r.Demand().MemGBs
		}
	}
	if !(early < late) || early > 20 || late < 80 {
		t.Fatalf("ramp: early=%v late=%v", early, late)
	}
}

func TestBurstsDeterministic(t *testing.T) {
	prog := &Program{
		Name: "bursty",
		Phases: []Phase{{
			Name: "b", Duration: 20 * time.Second, Mem: 0.9, MemLow: 0.1,
			Shape: Bursts, Period: time.Second, Duty: 0.5, BurstLen: 200 * time.Millisecond,
		}},
	}
	run := func(seed int64) []float64 {
		r := NewRunner(prog, 100, seed)
		r.SetAttained(func() float64 { return 1000 })
		var out []float64
		var now time.Duration
		for i := 0; i < 5000; i++ {
			r.Step(now, time.Millisecond)
			now += time.Millisecond
			out = append(out, r.Demand().MemGBs)
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at step %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical burst schedules")
	}
}

func TestGPUAntiPhase(t *testing.T) {
	prog := &Program{
		Name: "anti",
		Phases: []Phase{{
			Name: "s", Duration: 10 * time.Second, Mem: 0.8, MemLow: 0.1,
			Shape: Square, Period: 100 * time.Millisecond, Duty: 0.5,
			GPUSM: 0.9, GPUSMLow: 0.3, GPUAntiPhase: true,
		}},
	}
	r := NewRunner(prog, 100, 1)
	r.SetAttained(func() float64 { return 1000 })
	var now time.Duration
	seenHighMemLowSM, seenLowMemHighSM := false, false
	for i := 0; i < 500; i++ {
		r.Step(now, time.Millisecond)
		now += time.Millisecond
		d := r.Demand()
		if d.MemGBs > 70 && d.GPUSMUtil == 0.3 {
			seenHighMemLowSM = true
		}
		if d.MemGBs < 30 && d.GPUSMUtil == 0.9 {
			seenLowMemHighSM = true
		}
	}
	if !seenHighMemLowSM || !seenLowMemHighSM {
		t.Fatalf("anti-phase not observed: %v %v", seenHighMemLowSM, seenLowMemHighSM)
	}
}

func TestDoneDemandIsZero(t *testing.T) {
	r := NewRunner(simpleProgram(), 400, 1)
	r.SetAttained(func() float64 { return 1e9 })
	var now time.Duration
	for !r.Done() {
		r.Step(now, time.Millisecond)
		now += time.Millisecond
	}
	r.Step(now, time.Millisecond)
	d := r.Demand()
	if d.MemGBs != 0 || d.CPUBusyCores != 0 || d.GPUSMUtil != 0 {
		t.Fatalf("post-completion demand = %+v, want zero", d)
	}
}

func TestIdleProgram(t *testing.T) {
	p := Idle(10 * time.Minute)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NominalDuration() != 10*time.Minute {
		t.Fatalf("idle duration = %v", p.NominalDuration())
	}
	r := NewRunner(p, 400, 1)
	r.Step(0, time.Millisecond)
	if d := r.Demand(); d.MemGBs != 0 || d.GPUSMUtil != 0 {
		t.Fatalf("idle demand = %+v", d)
	}
}

func TestCatalogIntegrity(t *testing.T) {
	names := Names()
	if len(names) < 24 {
		t.Fatalf("catalog has %d programs, want >= 24", len(names))
	}
	for _, n := range names {
		p, ok := ByName(n)
		if !ok {
			t.Fatalf("ByName(%q) missing", n)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", n, err)
		}
		if d := p.NominalDuration(); d < 5*time.Second || d > 2*time.Minute {
			t.Errorf("%s: nominal duration %v outside [5s, 2m]", n, d)
		}
	}
	for _, set := range [][]string{SingleGPU(), AltisSYCL(), MultiGPU(), Table1Apps()} {
		for _, n := range set {
			if _, ok := ByName(n); !ok {
				t.Errorf("workload set references unknown program %q", n)
			}
		}
	}
	if len(AltisSYCL()) != 11 {
		t.Errorf("AltisSYCL has %d apps, paper uses 11", len(AltisSYCL()))
	}
	if len(Table1Apps()) != 21 {
		t.Errorf("Table1Apps has %d apps, paper lists 21", len(Table1Apps()))
	}
}

func TestCatalogRunnersComplete(t *testing.T) {
	// Every catalog program must terminate under full service in
	// roughly its nominal duration.
	for _, n := range Names() {
		p, _ := ByName(n)
		r := NewRunner(p, 400, 42)
		var lastDemand float64
		r.SetAttained(func() float64 { return lastDemand })
		var now time.Duration
		dt := time.Millisecond
		horizon := p.NominalDuration() * 2
		for !r.Done() && now < horizon {
			r.Step(now, dt)
			lastDemand = r.Demand().MemGBs
			now += dt
		}
		if !r.Done() {
			t.Errorf("%s did not complete within 2× nominal", n)
			continue
		}
		if r.Elapsed() > p.NominalDuration()+50*time.Millisecond {
			t.Errorf("%s fully served elapsed %v > nominal %v", n, r.Elapsed(), p.NominalDuration())
		}
	}
}

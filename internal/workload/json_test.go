package workload

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

const sampleJSON = `{
  "name": "my-training-job",
  "repeat": 3,
  "prologue": [
    {"name": "startup", "duration": "2s", "mem": 0.05, "beta": 0.1}
  ],
  "phases": [
    {"name": "load", "duration": "1.2s", "mem": 0.8, "beta": 0.85,
     "cpu_busy_cores": 8, "gpu_sm": 0.3, "gpu_mem": 0.5},
    {"name": "train", "duration": "3s", "mem": 0.1, "beta": 0.2,
     "gpu_sm": 0.95, "gpu_mem": 0.7},
    {"name": "exchange", "duration": "500ms", "mem": 0.6, "mem_low": 0.1,
     "shape": "square", "period": "250ms", "duty": 0.5, "beta": 0.7}
  ]
}`

func TestFromJSON(t *testing.T) {
	p, err := FromJSON(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "my-training-job" || p.Repeat != 3 {
		t.Fatalf("header: %q repeat %d", p.Name, p.Repeat)
	}
	if len(p.Prologue) != 1 || len(p.Phases) != 3 {
		t.Fatalf("phases: %d/%d", len(p.Prologue), len(p.Phases))
	}
	if p.Phases[0].Duration != 1200*time.Millisecond || p.Phases[0].CPUBusyCores != 8 {
		t.Fatalf("load phase: %+v", p.Phases[0])
	}
	if p.Phases[2].Shape != Square || p.Phases[2].Period != 250*time.Millisecond {
		t.Fatalf("exchange phase: %+v", p.Phases[2])
	}
	want := 2*time.Second + 3*(1200*time.Millisecond+3*time.Second+500*time.Millisecond)
	if p.NominalDuration() != want {
		t.Fatalf("nominal = %v, want %v", p.NominalDuration(), want)
	}
	// And it runs.
	r := NewRunner(p, 400, 1)
	r.SetAttained(func() float64 { return 1e9 })
	var now time.Duration
	for !r.Done() && now < time.Minute {
		r.Step(now, time.Millisecond)
		now += time.Millisecond
	}
	if !r.Done() {
		t.Fatal("decoded program did not run to completion")
	}
}

func TestJSONRoundtrip(t *testing.T) {
	orig, _ := ByName("srad")
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != orig.Name || len(back.Phases) != len(orig.Phases) {
		t.Fatalf("roundtrip shape: %q %d phases", back.Name, len(back.Phases))
	}
	for i := range orig.Phases {
		a, b := orig.Phases[i], back.Phases[i]
		if a != b {
			t.Fatalf("phase %d mismatch:\n%+v\n%+v", i, a, b)
		}
	}
}

func TestJSONRoundtripAllCatalog(t *testing.T) {
	for _, name := range Names() {
		p, _ := ByName(name)
		var buf bytes.Buffer
		if err := p.WriteJSON(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := FromJSON(&buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if back.NominalDuration() != p.NominalDuration() {
			t.Fatalf("%s: duration drift %v vs %v", name, back.NominalDuration(), p.NominalDuration())
		}
	}
}

func TestFromJSONErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":         `{`,
		"unknown field":    `{"name":"x","phases":[],"bogus":1}`,
		"unknown shape":    `{"name":"x","phases":[{"name":"a","duration":"1s","mem":0.5,"shape":"sine"}]}`,
		"bad duration":     `{"name":"x","phases":[{"name":"a","duration":"fast","mem":0.5}]}`,
		"no phases":        `{"name":"x","phases":[]}`,
		"invalid phase":    `{"name":"x","phases":[{"name":"a","duration":"1s","mem":1.5}]}`,
		"square no period": `{"name":"x","phases":[{"name":"a","duration":"1s","mem":0.5,"shape":"square"}]}`,
	}
	for label, js := range cases {
		if _, err := FromJSON(strings.NewReader(js)); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
}

package workload

import (
	"testing"
	"time"
)

// benchProgram is a repeated multi-phase program exercising every shape
// the catalog uses, so the demand lookup benchmark covers phase
// transitions, modulated shapes and the burst dice.
func benchProgram() *Program {
	return &Program{
		Name: "bench",
		Prologue: []Phase{
			{Name: "load", Duration: 2 * time.Second, Mem: 0.3, Beta: 0.5, CPUBusyCores: 4},
		},
		Phases: []Phase{
			{Name: "compute", Duration: 3 * time.Second, Mem: 0.7, MemLow: 0.1,
				Shape: Square, Period: 80 * time.Millisecond, Duty: 0.5, Beta: 0.6,
				CPUBusyCores: 6, GPUSM: 0.9, GPUMem: 0.5, Jitter: 0.05},
			{Name: "burst", Duration: 2 * time.Second, Mem: 0.8, MemLow: 0.05,
				Shape: Bursts, Period: 120 * time.Millisecond, Duty: 0.4, Beta: 0.7,
				CPUBusyCores: 8, GPUSM: 0.8},
			{Name: "drain", Duration: time.Second, Mem: 0.6, MemLow: 0.1,
				Shape: RampDown, Beta: 0.4, CPUBusyCores: 2},
		},
		Repeat: 50,
	}
}

// BenchmarkHotPathDemandLookup measures one Runner.Step — the per-tick
// demand generation (phase cursor advance, shape evaluation, jitter) the
// node consumes every simulated millisecond.
func BenchmarkHotPathDemandLookup(b *testing.B) {
	r := NewRunner(benchProgram(), 400, 1)
	r.SetAttained(func() float64 { return 250 })
	dt := time.Millisecond
	now := time.Duration(0)
	for i := 0; i < 100; i++ { // steady state before the timer starts
		r.Step(now, dt)
		now += dt
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Done() {
			b.StopTimer()
			r = NewRunner(benchProgram(), 400, 1)
			r.SetAttained(func() float64 { return 250 })
			b.StartTimer()
		}
		r.Step(now, dt)
		now += dt
	}
}

package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// JSON serialisation of workload programs, so users can model their
// own applications without recompiling (magusd -workload-file). The
// wire format mirrors the Phase fields, with durations as Go duration
// strings ("1.5s", "300ms") and shapes by name.
//
// Example:
//
//	{
//	  "name": "my-training-job",
//	  "repeat": 8,
//	  "prologue": [
//	    {"name": "startup", "duration": "2s", "mem": 0.05, "beta": 0.1}
//	  ],
//	  "phases": [
//	    {"name": "load", "duration": "1.2s", "mem": 0.8, "beta": 0.85,
//	     "cpu_busy_cores": 8, "gpu_sm": 0.3, "gpu_mem": 0.5},
//	    {"name": "train", "duration": "3s", "mem": 0.1, "beta": 0.2,
//	     "gpu_sm": 0.95, "gpu_mem": 0.7}
//	  ]
//	}

type phaseJSON struct {
	Name         string  `json:"name"`
	Duration     string  `json:"duration"`
	Mem          float64 `json:"mem"`
	MemLow       float64 `json:"mem_low,omitempty"`
	Shape        string  `json:"shape,omitempty"`
	Period       string  `json:"period,omitempty"`
	Duty         float64 `json:"duty,omitempty"`
	BurstLen     string  `json:"burst_len,omitempty"`
	Beta         float64 `json:"beta,omitempty"`
	CPUBusyCores float64 `json:"cpu_busy_cores,omitempty"`
	GPUSM        float64 `json:"gpu_sm,omitempty"`
	GPUSMLow     float64 `json:"gpu_sm_low,omitempty"`
	GPUAntiPhase bool    `json:"gpu_anti_phase,omitempty"`
	GPUMem       float64 `json:"gpu_mem,omitempty"`
	Jitter       float64 `json:"jitter,omitempty"`
	NUMASkew     float64 `json:"numa_skew,omitempty"`
	CPUIntensity float64 `json:"cpu_intensity,omitempty"`
}

type programJSON struct {
	Name     string      `json:"name"`
	Repeat   int         `json:"repeat,omitempty"`
	Prologue []phaseJSON `json:"prologue,omitempty"`
	Phases   []phaseJSON `json:"phases"`
}

// shapeNames maps wire names to Shape values; the empty string selects
// Constant.
var shapeNames = map[string]Shape{
	"":          Constant,
	"constant":  Constant,
	"square":    Square,
	"bursts":    Bursts,
	"ramp-up":   RampUp,
	"ramp-down": RampDown,
}

func phaseFromJSON(pj phaseJSON, where string) (Phase, error) {
	var ph Phase
	shape, ok := shapeNames[pj.Shape]
	if !ok {
		return ph, fmt.Errorf("workload: %s: unknown shape %q", where, pj.Shape)
	}
	parse := func(field, v string) (time.Duration, error) {
		if v == "" {
			return 0, nil
		}
		d, err := time.ParseDuration(v)
		if err != nil {
			return 0, fmt.Errorf("workload: %s: bad %s %q: %w", where, field, v, err)
		}
		return d, nil
	}
	dur, err := parse("duration", pj.Duration)
	if err != nil {
		return ph, err
	}
	period, err := parse("period", pj.Period)
	if err != nil {
		return ph, err
	}
	burst, err := parse("burst_len", pj.BurstLen)
	if err != nil {
		return ph, err
	}
	return Phase{
		Name: pj.Name, Duration: dur,
		Mem: pj.Mem, MemLow: pj.MemLow, Shape: shape,
		Period: period, Duty: pj.Duty, BurstLen: burst,
		Beta: pj.Beta, CPUBusyCores: pj.CPUBusyCores,
		GPUSM: pj.GPUSM, GPUSMLow: pj.GPUSMLow,
		GPUAntiPhase: pj.GPUAntiPhase, GPUMem: pj.GPUMem,
		Jitter: pj.Jitter, NUMASkew: pj.NUMASkew, CPUIntensity: pj.CPUIntensity,
	}, nil
}

func phaseToJSON(ph Phase) phaseJSON {
	pj := phaseJSON{
		Name: ph.Name, Duration: ph.Duration.String(),
		Mem: ph.Mem, MemLow: ph.MemLow, Shape: ph.Shape.String(),
		Duty: ph.Duty, Beta: ph.Beta, CPUBusyCores: ph.CPUBusyCores,
		GPUSM: ph.GPUSM, GPUSMLow: ph.GPUSMLow,
		GPUAntiPhase: ph.GPUAntiPhase, GPUMem: ph.GPUMem,
		Jitter: ph.Jitter, NUMASkew: ph.NUMASkew, CPUIntensity: ph.CPUIntensity,
	}
	if ph.Period > 0 {
		pj.Period = ph.Period.String()
	}
	if ph.BurstLen > 0 {
		pj.BurstLen = ph.BurstLen.String()
	}
	return pj
}

// FromJSON decodes a workload program and validates it.
func FromJSON(r io.Reader) (*Program, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var pj programJSON
	if err := dec.Decode(&pj); err != nil {
		return nil, fmt.Errorf("workload: decode: %w", err)
	}
	p := &Program{Name: pj.Name, Repeat: pj.Repeat}
	for i, phj := range pj.Prologue {
		ph, err := phaseFromJSON(phj, fmt.Sprintf("%s prologue[%d]", pj.Name, i))
		if err != nil {
			return nil, err
		}
		p.Prologue = append(p.Prologue, ph)
	}
	for i, phj := range pj.Phases {
		ph, err := phaseFromJSON(phj, fmt.Sprintf("%s phases[%d]", pj.Name, i))
		if err != nil {
			return nil, err
		}
		p.Phases = append(p.Phases, ph)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// WriteJSON encodes the program (indented, stable field order).
func (p *Program) WriteJSON(w io.Writer) error {
	pj := programJSON{Name: p.Name, Repeat: p.Repeat}
	for _, ph := range p.Prologue {
		pj.Prologue = append(pj.Prologue, phaseToJSON(ph))
	}
	for _, ph := range p.Phases {
		pj.Phases = append(pj.Phases, phaseToJSON(ph))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(pj)
}

package workload

import (
	"fmt"
	"time"
)

// RunnerState is a runner's mutable state: the execution cursor plus
// the generator's stream position. The program and system bandwidth are
// construction inputs; a restore target must be built from the same
// (program, bandwidth, seed) triple — the seed is recorded so Restore
// can verify it.
type RunnerState struct {
	Seed  int64
	Draws uint64

	PhaseIdx   int
	Progress   time.Duration
	BurstOn    bool
	BurstSeen  time.Duration
	Noise      float64
	Done       bool
	Demand     Demand
	PrevDemand float64
	Elapsed    time.Duration
}

// State captures the runner.
func (r *Runner) State() RunnerState {
	return RunnerState{
		Seed:       r.src.Seed0(),
		Draws:      r.src.Draws(),
		PhaseIdx:   r.phaseIdx,
		Progress:   r.progress,
		BurstOn:    r.burstOn,
		BurstSeen:  r.burstSeen,
		Noise:      r.noise,
		Done:       r.done,
		Demand:     r.demand,
		PrevDemand: r.prevDemand,
		Elapsed:    r.elapsed,
	}
}

// Restore overwrites the runner's cursor and fast-forwards its
// generator to the captured stream position.
func (r *Runner) Restore(st RunnerState) error {
	if st.Seed != r.src.Seed0() {
		return fmt.Errorf("workload: restore seed %d, runner built with %d", st.Seed, r.src.Seed0())
	}
	if st.PhaseIdx < 0 || st.PhaseIdx > r.numPhases {
		return fmt.Errorf("workload: restore phase index %d outside [0,%d]", st.PhaseIdx, r.numPhases)
	}
	r.src.Restore(st.Seed, st.Draws)
	r.phaseIdx = st.PhaseIdx
	if st.PhaseIdx < r.numPhases {
		r.cur = r.prog.phaseAt(st.PhaseIdx)
	}
	r.progress = st.Progress
	r.burstOn = st.BurstOn
	r.burstSeen = st.BurstSeen
	r.noise = st.Noise
	r.done = st.Done
	r.demand = st.Demand
	r.prevDemand = st.PrevDemand
	r.elapsed = st.Elapsed
	return nil
}

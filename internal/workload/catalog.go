package workload

import (
	"fmt"
	"sort"
	"time"
)

// The catalog instantiates every application the paper evaluates (§5):
// the Altis level-1/2 GPU benchmarks, the ECP proxy applications
// (miniGAN, CRADL, Laghos, SW4lite), the molecular-dynamics packages
// (LAMMPS, GROMACS) and the MLPerf training workloads (UNet, ResNet50,
// BERT). Each program reproduces the *memory-throughput signal shape*
// that drives uncore-scaling behaviour for that class of application:
//
//   - compute-dominant kernels with staging bursts (bfs, gemm,
//     pathfinder, where, raytracing) → large uncore power savings;
//   - memory-intensive steady apps (particlefilter_naive, srad) →
//     smaller savings;
//   - high-frequency compute/transfer alternation (srad, gromacs) →
//     exercises the high-frequency detector (Figures 5/6);
//   - short apps with dense bursts inside MAGUS's 2 s warm-up window
//     (fdtd2d, cfd_double, particlefilter_float, gemm) → the low
//     Jaccard scores of Table 1;
//   - epoch-structured training loops (unet, resnet50, bert_large,
//     minigan) → periodic data-loading bursts between GPU-bound
//     epochs (Figure 1).
//
// Durations are compressed relative to real runs (10–50 virtual
// seconds) but keep the paper's ratios of burst period to the 0.2 s
// monitoring interval, which is what the runtime actually sees.

const sec = time.Second

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

// build registers a program in the catalog.
var programs = map[string]*Program{}

func register(p *Program) *Program {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if _, dup := programs[p.Name]; dup {
		panic(fmt.Sprintf("workload: duplicate program %q", p.Name))
	}
	programs[p.Name] = p
	return p
}

// ByName returns a registered program.
func ByName(name string) (*Program, bool) {
	p, ok := programs[name]
	return p, ok
}

// Names returns all registered program names, sorted.
func Names() []string {
	out := make([]string, 0, len(programs))
	for n := range programs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SingleGPU returns the workload set evaluated on Intel+A100 (Fig 4a):
// Altis level 1/2 plus the ECP proxies plus UNet.
func SingleGPU() []string {
	return []string{
		"bfs", "cfd", "cfd_double", "fdtd2d", "gemm", "kmeans", "lavamd",
		"nw", "particlefilter_float", "particlefilter_naive", "pathfinder",
		"raytracing", "sort", "srad", "where",
		"laghos", "minigan", "sw4lite", "cradl",
		"unet",
	}
}

// AltisSYCL returns the 11 Altis-SYCL applications evaluated on
// Intel+Max1550 (Fig 4b).
func AltisSYCL() []string {
	return []string{
		"bfs", "cfd", "fdtd2d", "gemm", "kmeans", "lavamd", "nw",
		"pathfinder", "sort", "srad", "where",
	}
}

// MultiGPU returns the workloads evaluated on Intel+4A100 (Fig 4c).
func MultiGPU() []string {
	return []string{"gromacs", "lammps", "unet", "resnet50", "bert_large"}
}

// Table1Apps returns the applications of the paper's Table 1 (Jaccard
// similarity), in the paper's order.
func Table1Apps() []string {
	return []string{
		"bfs", "gemm", "pathfinder", "sort", "cfd", "cfd_double",
		"fdtd2d", "kmeans", "lavamd", "nw", "particlefilter_float",
		"raytracing", "where", "laghos", "minigan", "sw4lite",
		"unet", "resnet50", "bert_large", "lammps", "gromacs",
	}
}

// startup returns a one-time prologue modelling framework/process
// start-up: a couple of host cores busy, negligible memory traffic.
// Training frameworks and staged benchmarks spend their first seconds
// here, which is why MAGUS's 2 s warm-up blackout costs them nothing
// (Table 1 discussion).
func startup(d time.Duration) []Phase {
	return []Phase{{
		Name: "startup", Duration: d, Mem: 0.06, Shape: Constant,
		Beta: 0.1, CPUBusyCores: 2, GPUSM: 0.02, GPUMem: 0.02, Jitter: 0.03,
	}}
}

func init() {
	// ---- Altis level 1/2 (CUDA on A100, SYCL subset on Max1550) ----

	// bfs: graph upload after warm-up, long traversal with sparse
	// frontier exchanges; compute-dominant → big savings, Jaccard ≈0.99.
	register(&Program{Name: "bfs", Phases: []Phase{
		{Name: "setup", Duration: 2500 * time.Millisecond, Mem: 0.18, Shape: Constant, Beta: 0.5, CPUBusyCores: 4, GPUSM: 0.05, GPUMem: 0.1, Jitter: 0.05},
		{Name: "upload", Duration: 3 * sec, Mem: 0.62, Shape: Constant, Beta: 0.75, CPUBusyCores: 6, GPUSM: 0.2, GPUMem: 0.5, Jitter: 0.05},
		{Name: "traverse", Duration: 9 * sec, Mem: 0.10, MemLow: 0.04, Shape: Bursts, Period: 2500 * time.Millisecond, Duty: 0.2, BurstLen: ms(300), Beta: 0.3, CPUBusyCores: 2, GPUSM: 0.9, GPUMem: 0.6, Jitter: 0.08},
		{Name: "readback", Duration: 1500 * time.Millisecond, Mem: 0.55, Shape: Constant, Beta: 0.7, CPUBusyCores: 3, GPUSM: 0.1, GPUMem: 0.3, Jitter: 0.05},
	}})

	// cfd: unstructured solver; iteration bursts well after warm-up.
	register(&Program{Name: "cfd", Phases: []Phase{
		{Name: "init", Duration: 2200 * time.Millisecond, Mem: 0.3, Shape: Constant, Beta: 0.55, CPUBusyCores: 4, GPUSM: 0.1, GPUMem: 0.2, Jitter: 0.05},
		{Name: "iterate", Duration: 14 * sec, Mem: 0.5, MemLow: 0.08, Shape: Square, Period: 2 * sec, Duty: 0.35, Beta: 0.65, CPUBusyCores: 3, GPUSM: 0.85, GPUSMLow: 0.5, GPUAntiPhase: true, GPUMem: 0.6, Jitter: 0.06},
	}})

	// cfd_double: same solver in fp64 — slower kernels, heavier early
	// staging (double-width arrays) concentrated in the warm-up window
	// → low Jaccard (paper: 0.63).
	register(&Program{Name: "cfd_double", Phases: []Phase{
		{Name: "stage", Duration: 1600 * time.Millisecond, Mem: 0.8, MemLow: 0.1, Shape: Square, Period: ms(400), Duty: 0.55, Beta: 0.8, CPUBusyCores: 6, GPUSM: 0.15, GPUMem: 0.3, Jitter: 0.05},
		{Name: "iterate", Duration: 12 * sec, Mem: 0.42, MemLow: 0.08, Shape: Square, Period: 2500 * time.Millisecond, Duty: 0.3, Beta: 0.6, CPUBusyCores: 3, GPUSM: 0.8, GPUSMLow: 0.45, GPUAntiPhase: true, GPUMem: 0.65, Jitter: 0.06},
	}})

	// fdtd2d: short stencil run with dense early bursts — the paper's
	// lowest Jaccard (0.40) and a ~3 % performance loss.
	register(&Program{Name: "fdtd2d", Phases: []Phase{
		{Name: "stage", Duration: 1800 * time.Millisecond, Mem: 0.8, MemLow: 0.1, Shape: Square, Period: ms(300), Duty: 0.5, Beta: 0.7, CPUBusyCores: 6, GPUSM: 0.2, GPUMem: 0.4, Jitter: 0.04},
		{Name: "stencil", Duration: 8 * sec, Mem: 0.35, MemLow: 0.12, Shape: Square, Period: 1800 * time.Millisecond, Duty: 0.25, Beta: 0.55, CPUBusyCores: 2, GPUSM: 0.9, GPUMem: 0.7, Jitter: 0.05},
	}})

	// gemm: one large H2D staging burst at launch, then long
	// compute-bound multiply with rare tile reloads → high savings,
	// Jaccard ≈0.71 (staging sits inside the warm-up window).
	register(&Program{Name: "gemm", Phases: []Phase{
		{Name: "stage", Duration: 1000 * time.Millisecond, Mem: 0.75, Shape: Constant, Beta: 0.85, CPUBusyCores: 6, GPUSM: 0.1, GPUMem: 0.3, Jitter: 0.03},
		{Name: "multiply", Duration: 12 * sec, Mem: 0.06, MemLow: 0.03, Shape: Bursts, Period: 3 * sec, Duty: 0.25, BurstLen: ms(250), Beta: 0.2, CPUBusyCores: 1.5, GPUSM: 0.98, GPUMem: 0.75, Jitter: 0.04},
		{Name: "readback", Duration: 800 * time.Millisecond, Mem: 0.7, Shape: Constant, Beta: 0.75, CPUBusyCores: 3, GPUSM: 0.05, GPUMem: 0.2, Jitter: 0.03},
	}})

	// kmeans: clustering iterations with centroid exchanges every
	// ~1.5 s → predictable trends, Jaccard ≈0.97.
	register(&Program{Name: "kmeans", Prologue: startup(1800 * time.Millisecond), Phases: []Phase{
		{Name: "load", Duration: 2500 * time.Millisecond, Mem: 0.55, Shape: RampUp, MemLow: 0.1, Beta: 0.7, CPUBusyCores: 5, GPUSM: 0.15, GPUMem: 0.3, Jitter: 0.05},
		{Name: "iterate", Duration: 12 * sec, Mem: 0.45, MemLow: 0.07, Shape: Square, Period: 1500 * time.Millisecond, Duty: 0.3, Beta: 0.6, CPUBusyCores: 3, GPUSM: 0.85, GPUSMLow: 0.55, GPUAntiPhase: true, GPUMem: 0.55, Jitter: 0.05},
	}})

	// lavamd: molecular kernel, mostly GPU-bound with moderate steady
	// traffic; Jaccard ≈0.92.
	register(&Program{Name: "lavamd", Phases: []Phase{
		{Name: "init", Duration: 2 * sec, Mem: 0.4, Shape: Constant, Beta: 0.6, CPUBusyCores: 4, GPUSM: 0.2, GPUMem: 0.3, Jitter: 0.05},
		{Name: "kernel", Duration: 13 * sec, Mem: 0.22, MemLow: 0.08, Shape: Square, Period: 2800 * time.Millisecond, Duty: 0.4, Beta: 0.45, CPUBusyCores: 2, GPUSM: 0.92, GPUMem: 0.5, Jitter: 0.07},
	}})

	// nw: Needleman–Wunsch wavefront — demand ramps up then down as
	// the anti-diagonal grows and shrinks; Jaccard ≈0.98.
	register(&Program{Name: "nw", Phases: []Phase{
		{Name: "grow", Duration: 6 * sec, Mem: 0.55, MemLow: 0.06, Shape: RampUp, Beta: 0.6, CPUBusyCores: 3, GPUSM: 0.8, GPUMem: 0.6, Jitter: 0.04},
		{Name: "shrink", Duration: 6 * sec, Mem: 0.55, MemLow: 0.06, Shape: RampDown, Beta: 0.6, CPUBusyCores: 3, GPUSM: 0.8, GPUMem: 0.6, Jitter: 0.04},
	}})

	// particlefilter_float: short run, resampling bursts early →
	// Jaccard ≈0.67.
	register(&Program{Name: "particlefilter_float", Phases: []Phase{
		{Name: "seed", Duration: 1500 * time.Millisecond, Mem: 0.75, MemLow: 0.1, Shape: Square, Period: ms(350), Duty: 0.5, Beta: 0.8, CPUBusyCores: 5, GPUSM: 0.25, GPUMem: 0.4, Jitter: 0.04},
		{Name: "filter", Duration: 10 * sec, Mem: 0.4, MemLow: 0.1, Shape: Square, Period: 2200 * time.Millisecond, Duty: 0.35, Beta: 0.6, CPUBusyCores: 3, GPUSM: 0.8, GPUSMLow: 0.5, GPUAntiPhase: true, GPUMem: 0.55, Jitter: 0.05},
	}})

	// particlefilter_naive: memory-intensive throughout (no shared-
	// memory optimisation) → least headroom for downscaling (§6.1).
	register(&Program{Name: "particlefilter_naive", Phases: []Phase{
		{Name: "seed", Duration: 2 * sec, Mem: 0.6, Shape: Constant, Beta: 0.75, CPUBusyCores: 5, GPUSM: 0.3, GPUMem: 0.5, Jitter: 0.04},
		{Name: "filter", Duration: 12 * sec, Mem: 0.66, Shape: Constant, Beta: 0.8, CPUBusyCores: 4, GPUSM: 0.75, GPUMem: 0.8, Jitter: 0.05},
	}})

	// pathfinder: dynamic-programming sweep, compute-dominant with a
	// clean upload/down\load envelope → big savings, Jaccard ≈0.98.
	register(&Program{Name: "pathfinder", Prologue: startup(1500 * time.Millisecond), Phases: []Phase{
		{Name: "upload", Duration: 2600 * time.Millisecond, Mem: 0.6, Shape: Constant, Beta: 0.75, CPUBusyCores: 5, GPUSM: 0.15, GPUMem: 0.35, Jitter: 0.04},
		{Name: "sweep", Duration: 11 * sec, Mem: 0.07, MemLow: 0.03, Shape: Bursts, Period: 2500 * time.Millisecond, Duty: 0.2, BurstLen: ms(300), Beta: 0.2, CPUBusyCores: 1.5, GPUSM: 0.95, GPUMem: 0.55, Jitter: 0.05},
		{Name: "readback", Duration: 1 * sec, Mem: 0.5, Shape: Constant, Beta: 0.7, CPUBusyCores: 3, GPUSM: 0.05, GPUMem: 0.2, Jitter: 0.04},
	}})

	// raytracing: scene upload then long, almost memory-silent render;
	// occasional texture fetches → Jaccard ≈0.87.
	register(&Program{Name: "raytracing", Phases: []Phase{
		{Name: "scene", Duration: 1900 * time.Millisecond, Mem: 0.65, Shape: Constant, Beta: 0.75, CPUBusyCores: 5, GPUSM: 0.1, GPUMem: 0.3, Jitter: 0.04},
		{Name: "render", Duration: 14 * sec, Mem: 0.09, MemLow: 0.03, Shape: Bursts, Period: 1800 * time.Millisecond, Duty: 0.35, BurstLen: ms(200), Beta: 0.25, CPUBusyCores: 1.5, GPUSM: 0.97, GPUMem: 0.45, Jitter: 0.06},
	}})

	// sort: radix passes alternate scatter (memory-heavy) and local
	// phases on a ~1 s cadence; Jaccard ≈0.96.
	register(&Program{Name: "sort", Prologue: startup(2 * sec), Phases: []Phase{
		{Name: "upload", Duration: 2200 * time.Millisecond, Mem: 0.58, Shape: Constant, Beta: 0.7, CPUBusyCores: 4, GPUSM: 0.15, GPUMem: 0.3, Jitter: 0.04},
		{Name: "passes", Duration: 11 * sec, Mem: 0.5, MemLow: 0.08, Shape: Square, Period: 1200 * time.Millisecond, Duty: 0.4, Beta: 0.65, CPUBusyCores: 3, GPUSM: 0.8, GPUSMLow: 0.5, GPUAntiPhase: true, GPUMem: 0.65, Jitter: 0.05},
	}})

	// srad: the §6.2 case study — distinct regions including two
	// high-frequency fluctuation windows (≈10–12.5 s and after 15 s at
	// nominal progress) that exercise the high-frequency detector.
	register(&Program{Name: "srad", Phases: []Phase{
		{Name: "warm", Duration: 2 * sec, Mem: 0.35, MemLow: 0.1, Shape: RampUp, Beta: 0.6, CPUBusyCores: 4, GPUSM: 0.3, GPUMem: 0.4, Jitter: 0.04},
		{Name: "high", Duration: 3 * sec, Mem: 0.7, Shape: Constant, Beta: 0.75, CPUBusyCores: 4, GPUSM: 0.6, GPUMem: 0.7, Jitter: 0.05},
		{Name: "lull", Duration: 3 * sec, Mem: 0.12, Shape: Constant, Beta: 0.3, CPUBusyCores: 2, GPUSM: 0.85, GPUMem: 0.4, Jitter: 0.05},
		{Name: "mid", Duration: 2 * sec, Mem: 0.45, Shape: Constant, Beta: 0.6, CPUBusyCores: 3, GPUSM: 0.7, GPUMem: 0.55, Jitter: 0.05},
		{Name: "flutter1", Duration: 2500 * time.Millisecond, Mem: 0.72, MemLow: 0.1, Shape: Square, Period: ms(700), Duty: 0.5, Beta: 0.75, CPUBusyCores: 4, GPUSM: 0.75, GPUSMLow: 0.45, GPUAntiPhase: true, GPUMem: 0.7, Jitter: 0.04},
		{Name: "steady", Duration: 2500 * time.Millisecond, Mem: 0.4, Shape: Constant, Beta: 0.55, CPUBusyCores: 3, GPUSM: 0.75, GPUMem: 0.5, Jitter: 0.05},
		{Name: "flutter2", Duration: 5 * sec, Mem: 0.68, MemLow: 0.12, Shape: Square, Period: ms(800), Duty: 0.5, Beta: 0.75, CPUBusyCores: 4, GPUSM: 0.75, GPUSMLow: 0.45, GPUAntiPhase: true, GPUMem: 0.7, Jitter: 0.04},
	}})

	// where: selection/filter — light, short, compute-cheap but
	// transfer-bound at the edges; Jaccard ≈0.94.
	register(&Program{Name: "where", Phases: []Phase{
		{Name: "upload", Duration: 1500 * time.Millisecond, Mem: 0.5, Shape: Constant, Beta: 0.65, CPUBusyCores: 4, GPUSM: 0.1, GPUMem: 0.25, Jitter: 0.04},
		{Name: "filter", Duration: 10 * sec, Mem: 0.2, MemLow: 0.05, Shape: Bursts, Period: 2 * sec, Duty: 0.12, BurstLen: ms(350), Beta: 0.3, CPUBusyCores: 2, GPUSM: 0.15, GPUMem: 0.2, Jitter: 0.05},
		{Name: "readback", Duration: 1 * sec, Mem: 0.45, Shape: Constant, Beta: 0.65, CPUBusyCores: 3, GPUSM: 0.05, GPUMem: 0.15, Jitter: 0.04},
	}})

	// ---- ECP proxy applications ----

	// laghos: high-order Lagrangian hydro — long, regular timesteps
	// with slow demand transitions; Jaccard ≈0.99.
	register(&Program{Name: "laghos", Phases: []Phase{
		{Name: "mesh", Duration: 3 * sec, Mem: 0.5, MemLow: 0.1, Shape: RampUp, Beta: 0.65, CPUBusyCores: 6, GPUSM: 0.2, GPUMem: 0.3, Jitter: 0.04},
		{Name: "steps", Duration: 22 * sec, Mem: 0.38, MemLow: 0.1, Shape: Square, Period: 4 * sec, Duty: 0.45, Beta: 0.6, CPUBusyCores: 4, GPUSM: 0.85, GPUSMLow: 0.6, GPUAntiPhase: true, GPUMem: 0.55, Jitter: 0.05},
	}})

	// minigan: GAN training epochs — batch staging then GPU-bound
	// generator/discriminator passes; Jaccard ≈0.98.
	register(&Program{Name: "minigan", Prologue: startup(2500 * time.Millisecond), Repeat: 6, Phases: []Phase{
		{Name: "batch", Duration: 1300 * time.Millisecond, Mem: 0.7, Shape: Constant, Beta: 0.8, CPUBusyCores: 8, GPUSM: 0.3, GPUSMLow: 0.3, GPUMem: 0.5, Jitter: 0.05},
		{Name: "train", Duration: 3200 * time.Millisecond, Mem: 0.1, MemLow: 0.05, Shape: Constant, Beta: 0.25, CPUBusyCores: 2, GPUSM: 0.95, GPUMem: 0.7, Jitter: 0.05},
	}})

	// sw4lite: seismic wave propagation — ramping wavefronts,
	// intermediate Jaccard ≈0.87.
	register(&Program{Name: "sw4lite", Phases: []Phase{
		{Name: "source", Duration: 2500 * time.Millisecond, Mem: 0.55, Shape: Constant, Beta: 0.7, CPUBusyCores: 5, GPUSM: 0.3, GPUMem: 0.4, Jitter: 0.05},
		{Name: "propagate", Duration: 9 * sec, Mem: 0.5, MemLow: 0.15, Shape: RampUp, Beta: 0.65, CPUBusyCores: 4, GPUSM: 0.85, GPUMem: 0.65, Jitter: 0.06},
		{Name: "attenuate", Duration: 9 * sec, Mem: 0.5, MemLow: 0.12, Shape: RampDown, Beta: 0.6, CPUBusyCores: 3, GPUSM: 0.85, GPUMem: 0.6, Jitter: 0.06},
	}})

	// cradl: adaptive-learning surrogate — alternating simulation
	// (memory-led) and training (GPU-led) stages.
	register(&Program{Name: "cradl", Repeat: 3, Phases: []Phase{
		{Name: "simulate", Duration: 3 * sec, Mem: 0.5, MemLow: 0.15, Shape: Square, Period: 1600 * time.Millisecond, Duty: 0.45, Beta: 0.65, CPUBusyCores: 6, GPUSM: 0.5, GPUSMLow: 0.35, GPUAntiPhase: true, GPUMem: 0.5, Jitter: 0.05},
		{Name: "train", Duration: 3 * sec, Mem: 0.12, MemLow: 0.06, Shape: Constant, Beta: 0.25, CPUBusyCores: 2, GPUSM: 0.95, GPUMem: 0.7, Jitter: 0.05},
	}})

	// ---- Molecular dynamics ----

	// lammps: long steady production run with neighbour-list rebuild
	// bursts on a slow cadence; Jaccard ≈0.99.
	register(&Program{Name: "lammps", Phases: []Phase{
		{Name: "setup", Duration: 2500 * time.Millisecond, Mem: 0.45, Shape: Constant, Beta: 0.6, CPUBusyCores: 6, GPUSM: 0.2, GPUMem: 0.3, Jitter: 0.04},
		{Name: "production", Duration: 26 * sec, Mem: 0.34, MemLow: 0.12, Shape: Square, Period: 3500 * time.Millisecond, Duty: 0.35, Beta: 0.55, CPUBusyCores: 5, GPUSM: 0.88, GPUSMLow: 0.65, GPUAntiPhase: true, GPUMem: 0.6, Jitter: 0.06},
	}})

	// gromacs: per-step CPU–GPU hand-offs on a faster cadence — fast
	// enough to stress prediction, slow enough to evade the
	// high-frequency pin (the paper sees 7 % loss / 21 % CPU power
	// saving multi-GPU); Jaccard ≈0.99.
	register(&Program{Name: "gromacs", Phases: []Phase{
		{Name: "setup", Duration: 2400 * time.Millisecond, Mem: 0.4, Shape: Constant, Beta: 0.6, CPUBusyCores: 8, GPUSM: 0.25, GPUMem: 0.3, Jitter: 0.04},
		{Name: "steps", Duration: 24 * sec, Mem: 0.55, MemLow: 0.1, Shape: Square, Period: 1800 * time.Millisecond, Duty: 0.33, Beta: 0.65, CPUBusyCores: 8, GPUSM: 0.85, GPUSMLow: 0.55, GPUAntiPhase: true, GPUMem: 0.6, Jitter: 0.05},
	}})

	// ---- MLPerf training ----

	// unet: the paper's running example (Figures 1/2) — ≈47 s nominal,
	// epoch loop of data-loading bursts and GPU-bound training.
	register(&Program{Name: "unet", Prologue: startup(2500 * time.Millisecond), Repeat: 10, Phases: []Phase{
		{Name: "load", Duration: 1500 * time.Millisecond, Mem: 0.85, Shape: Constant, Beta: 0.85, CPUBusyCores: 10, GPUSM: 0.35, GPUMem: 0.55, Jitter: 0.05},
		{Name: "train", Duration: 3200 * time.Millisecond, Mem: 0.12, MemLow: 0.06, Shape: Constant, Beta: 0.25, CPUBusyCores: 3, GPUSM: 0.96, GPUMem: 0.75, Jitter: 0.05},
	}})

	// resnet50: faster epoch alternation, smaller batches; Jaccard ≈0.96.
	register(&Program{Name: "resnet50", Prologue: startup(2500 * time.Millisecond), Repeat: 14, Phases: []Phase{
		{Name: "load", Duration: 900 * time.Millisecond, Mem: 0.65, Shape: Constant, Beta: 0.75, CPUBusyCores: 12, GPUSM: 0.4, GPUMem: 0.5, Jitter: 0.05},
		{Name: "train", Duration: 1900 * time.Millisecond, Mem: 0.12, MemLow: 0.05, Shape: Constant, Beta: 0.25, CPUBusyCores: 4, GPUSM: 0.97, GPUMem: 0.8, Jitter: 0.05},
	}})

	// ---- Extension workloads (not part of the paper's sets) ----

	// hpc_cg: a traditional CPU-only sparse solver (conjugate-gradient
	// style) — all cores busy, heavy sustained memory traffic, no GPU.
	// On the CPU-only preset its package power approaches TDP, making
	// the vendor clamp visible (§2's contrast case).
	register(&Program{Name: "hpc_cg", Phases: []Phase{
		{Name: "assemble", Duration: 3 * sec, Mem: 0.55, Shape: Constant, Beta: 0.7, CPUBusyCores: 70, Jitter: 0.04, CPUIntensity: 1.8},
		{Name: "solve", Duration: 14 * sec, Mem: 0.85, MemLow: 0.6, Shape: Square, Period: 3 * sec, Duty: 0.6, Beta: 0.85, CPUBusyCores: 78, Jitter: 0.05, CPUIntensity: 2.2},
	}})

	// numa_etl: a NUMA-imbalanced ETL pipeline — nearly all memory
	// traffic lands on socket 0 (data resident in one NUMA domain),
	// leaving socket 1's uncore idle. Target of the per-socket scaling
	// extension (core.PerSocket).
	register(&Program{Name: "numa_etl", Phases: []Phase{
		{Name: "ingest", Duration: 4 * sec, Mem: 0.42, Shape: Constant, Beta: 0.7, CPUBusyCores: 6, GPUSM: 0.2, GPUMem: 0.3, Jitter: 0.04, NUMASkew: 0.7},
		{Name: "transform", Duration: 9 * sec, Mem: 0.3, MemLow: 0.05, Shape: Square, Period: 2500 * time.Millisecond, Duty: 0.4, Beta: 0.6, CPUBusyCores: 4, GPUSM: 0.6, GPUSMLow: 0.4, GPUAntiPhase: true, GPUMem: 0.4, Jitter: 0.05, NUMASkew: 0.95},
		{Name: "load", Duration: 3 * sec, Mem: 0.45, Shape: Constant, Beta: 0.7, CPUBusyCores: 5, GPUSM: 0.1, GPUMem: 0.2, Jitter: 0.04, NUMASkew: 0.95},
	}})

	// bert_large: long GPU-bound stretches with rare but tall
	// checkpoint/shuffle bursts — missing one hurts; Jaccard ≈0.84.
	register(&Program{Name: "bert_large", Prologue: startup(2200 * time.Millisecond), Repeat: 4, Phases: []Phase{
		{Name: "shuffle", Duration: 1100 * time.Millisecond, Mem: 0.85, Shape: Constant, Beta: 0.85, CPUBusyCores: 8, GPUSM: 0.3, GPUMem: 0.5, Jitter: 0.04},
		{Name: "train", Duration: 8 * sec, Mem: 0.6, MemLow: 0.05, Shape: Bursts, Period: 2600 * time.Millisecond, Duty: 0.3, BurstLen: ms(400), Beta: 0.7, CPUBusyCores: 3, GPUSM: 0.98, GPUMem: 0.8, Jitter: 0.05},
	}})
}

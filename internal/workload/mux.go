package workload

import (
	"fmt"
	"strings"
	"time"
)

// This file adds co-located (multi-tenant) workload generation: a Mux
// time-slices or concurrently shares several phase programs onto one
// node, mirroring the Runner surface so the harness can drive either
// interchangeably. Alongside the combined demand, the Mux publishes
// per-tenant SM/memory shares — the "per-process utilisation counter"
// surface energy attribution reads, with an explicit exclusive flag
// when one tenant has the device to itself (the DCGM distinction
// between hardware-measured and utilisation-estimated per-process
// energy).

// TenantShare is one tenant's instantaneous slice of the node: raw
// (unnormalised) SM and memory-demand weights, plus whether the tenant
// holds the device exclusively this step. The node retains the slice
// the Mux publishes; attribution normalises the weights itself.
type TenantShare struct {
	Tenant   string
	SMShare  float64
	MemShare float64
	// Exclusive marks the sole owner of the node for this step: energy
	// can be attributed exactly, no estimation needed.
	Exclusive bool
}

// TenantSpec binds one tenant's program into a colocation.
type TenantSpec struct {
	// Tenant is the accounting label; must be non-empty and unique
	// within the MuxSpec.
	Tenant  string
	Program *Program
	Seed    int64
	// GPUFrac is the tenant's fractional GPU allocation under the
	// Fractional policy (an MPS-style partition); 0 means an equal
	// share. Ignored under RoundRobin, where the owner of the quantum
	// has the whole device.
	GPUFrac float64
}

// MuxPolicy selects how tenants share the node.
type MuxPolicy int

const (
	// RoundRobin gives each live tenant the whole node for one quantum
	// at a time — time-slicing, so every step has an exclusive owner
	// and attribution is exact.
	RoundRobin MuxPolicy = iota
	// Fractional runs all tenants concurrently, each holding a
	// fraction of the GPU; demands superpose and attribution must fall
	// back to utilisation-share estimation whenever more than one
	// tenant is live.
	Fractional
)

// String implements fmt.Stringer.
func (p MuxPolicy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case Fractional:
		return "fractional"
	}
	return fmt.Sprintf("MuxPolicy(%d)", int(p))
}

// DefaultQuantum is the round-robin time slice when MuxSpec.Quantum is
// zero — 10 ms, a typical CFS-period-scale slice, long against the
// 1 ms engine step and short against workload phases.
const DefaultQuantum = 10 * time.Millisecond

// MuxSpec describes a colocation: the tenants, the sharing policy and
// the round-robin quantum.
type MuxSpec struct {
	Tenants []TenantSpec
	// Quantum is the RoundRobin slice length (0 = DefaultQuantum).
	Quantum time.Duration
	Policy  MuxPolicy
}

// Validate checks the colocation for construction errors.
func (s MuxSpec) Validate() error {
	if len(s.Tenants) < 2 {
		return fmt.Errorf("workload: colocation needs at least 2 tenants, got %d", len(s.Tenants))
	}
	if s.Policy != RoundRobin && s.Policy != Fractional {
		return fmt.Errorf("workload: unknown mux policy %d", int(s.Policy))
	}
	if s.Quantum < 0 {
		return fmt.Errorf("workload: negative mux quantum %v", s.Quantum)
	}
	seen := make(map[string]bool, len(s.Tenants))
	for i, t := range s.Tenants {
		if t.Tenant == "" {
			return fmt.Errorf("workload: tenant %d has no name", i)
		}
		if seen[t.Tenant] {
			return fmt.Errorf("workload: duplicate tenant %q", t.Tenant)
		}
		seen[t.Tenant] = true
		if t.Program == nil {
			return fmt.Errorf("workload: tenant %q has no program", t.Tenant)
		}
		if err := t.Program.Validate(); err != nil {
			return fmt.Errorf("workload: tenant %q: %w", t.Tenant, err)
		}
		if t.GPUFrac < 0 || t.GPUFrac > 1 {
			return fmt.Errorf("workload: tenant %q GPU fraction %v out of [0,1]", t.Tenant, t.GPUFrac)
		}
	}
	return nil
}

// Mux multiplexes several tenant programs onto one node. It mirrors
// the Runner surface (Step/Demand/Done/Elapsed/PhaseName/SetAttained)
// so the harness drives it identically, and additionally publishes
// per-tenant shares for energy attribution. Steady-state Step does not
// allocate.
type Mux struct {
	spec     MuxSpec
	quantum  time.Duration
	runners  []*Runner
	names    []string
	gpuFrac  []float64
	attained func() float64

	// owner is the index of the tenant holding the node this step
	// (-1 when demands superpose under Fractional with >1 live tenant).
	owner   int
	demand  Demand
	shares  []TenantShare
	memW    []float64 // live per-tenant memory weights (ledger split)
	prevMem []float64 // each tenant's published demand last step
	elapsed time.Duration
	done    bool
	label   string

	// phase-label cache: rebuilt only when the owner or its phase
	// changes, so PhaseName stays allocation-free per step.
	phaseOwner int
	phaseInner string
	phaseLabel string
}

// NewMux binds a colocation to a system with the given peak bandwidth.
func NewMux(spec MuxSpec, sysBWGBs float64) (*Mux, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	n := len(spec.Tenants)
	quantum := spec.Quantum
	if quantum == 0 {
		quantum = DefaultQuantum
	}
	m := &Mux{
		spec:       spec,
		quantum:    quantum,
		runners:    make([]*Runner, n),
		names:      make([]string, n),
		gpuFrac:    make([]float64, n),
		shares:     make([]TenantShare, n),
		memW:       make([]float64, n),
		prevMem:    make([]float64, n),
		owner:      -1,
		phaseOwner: -1,
		attained:   func() float64 { return 0 },
	}
	labels := make([]string, n)
	for i, t := range spec.Tenants {
		m.runners[i] = NewRunner(t.Program, sysBWGBs, t.Seed)
		m.names[i] = t.Tenant
		m.shares[i].Tenant = t.Tenant
		frac := t.GPUFrac
		if frac == 0 {
			frac = 1 / float64(n)
		}
		if spec.Policy == RoundRobin {
			frac = 1
		}
		m.gpuFrac[i] = frac
		labels[i] = t.Tenant + ":" + t.Program.Name
	}
	m.label = "colocated(" + strings.Join(labels, "+") + ")"
	m.installAttained()
	return m, nil
}

// installAttained wires each runner's service feedback: under
// RoundRobin the owner (the only runner stepped) sees the node's full
// attained throughput; under Fractional each tenant sees its
// demand-proportional share of it.
func (m *Mux) installAttained() {
	for i := range m.runners {
		idx := i
		if m.spec.Policy == RoundRobin {
			m.runners[i].SetAttained(func() float64 { return m.attained() })
			continue
		}
		m.runners[i].SetAttained(func() float64 {
			var total float64
			for _, d := range m.prevMem {
				total += d
			}
			if total <= 0 {
				return 0
			}
			return m.attained() * m.prevMem[idx] / total
		})
	}
}

// SetAttained installs the node feedback: the memory throughput (GB/s)
// actually served during the previous step.
func (m *Mux) SetAttained(fn func() float64) {
	if fn == nil {
		panic("workload: nil attained func")
	}
	m.attained = fn
}

// Name is the colocation's display label, e.g.
// "colocated(tenantA:unet+tenantB:srad)".
func (m *Mux) Name() string { return m.label }

// Tenants returns the tenant names in spec order.
func (m *Mux) Tenants() []string { return m.names }

// Shares returns the live per-tenant share slice. The Mux mutates it
// in place each step; hand it to node.SetTenantShares so the node
// exposes it as its per-tenant utilisation counter surface.
func (m *Mux) Shares() []TenantShare { return m.shares }

// MemWeights returns the live per-tenant memory-traffic weights, the
// split the waste ledger applies to uncore energy. Mutated in place
// each step.
func (m *Mux) MemWeights() []float64 { return m.memW }

// Done reports whether every tenant's program has completed.
func (m *Mux) Done() bool { return m.done }

// Elapsed returns virtual time consumed so far (the colocation
// makespan, not per-tenant scheduled time).
func (m *Mux) Elapsed() time.Duration { return m.elapsed }

// TenantElapsed returns the virtual time tenant i actually executed —
// under RoundRobin, only its scheduled quanta.
func (m *Mux) TenantElapsed(i int) time.Duration { return m.runners[i].Elapsed() }

// TenantDone reports whether tenant i's program has completed.
func (m *Mux) TenantDone(i int) bool { return m.runners[i].Done() }

// Demand returns the combined demand published by the last Step.
func (m *Mux) Demand() Demand { return m.demand }

// Owner returns the index of the tenant holding the node exclusively
// this step, or -1 when demands superpose.
func (m *Mux) Owner() int { return m.owner }

// NominalDuration is the colocation's serialised nominal runtime — the
// sum of tenant nominal durations, the horizon-sizing bound for both
// policies (time-slicing serialises; concurrent tenants contend for
// bandwidth and in the worst case also serialise).
func (m *Mux) NominalDuration() time.Duration {
	var d time.Duration
	for _, r := range m.runners {
		d += r.Program().NominalDuration()
	}
	return d
}

// PhaseName labels the active execution region for the waste ledger:
// "tenant:phase" for an exclusive owner, "colocated" while demands
// superpose, "done" after every tenant finished.
func (m *Mux) PhaseName() string {
	if m.done {
		return "done"
	}
	if m.owner < 0 {
		return "colocated"
	}
	inner := m.runners[m.owner].PhaseName()
	if m.owner != m.phaseOwner || inner != m.phaseInner {
		m.phaseOwner = m.owner
		m.phaseInner = inner
		m.phaseLabel = m.names[m.owner] + ":" + inner
	}
	return m.phaseLabel
}

// Step implements sim.Component: advance the scheduled tenant(s) and
// publish the combined demand plus per-tenant shares.
func (m *Mux) Step(now, dt time.Duration) {
	if m.done {
		m.demand = Demand{}
		return
	}
	m.elapsed += dt
	live := 0
	for _, r := range m.runners {
		if !r.Done() {
			live++
		}
	}
	if live == 0 {
		m.finishStep()
		return
	}
	if m.spec.Policy == RoundRobin || live == 1 {
		m.stepExclusive(now, dt, live)
	} else {
		m.stepFractional(now, dt)
	}
	if m.allDone() {
		m.finishStep()
	}
}

// stepExclusive runs the quantum owner alone: round-robin proper, or
// the last live tenant of a fractional colocation (which then has the
// device to itself and is attributed exactly, like a lone process in
// the DCGM accounting).
func (m *Mux) stepExclusive(now, dt time.Duration, live int) {
	// The owner is a pure function of the quantum slot index and the
	// live set, so scheduling is deterministic and a finished tenant
	// is skipped from the next step on without extra bookkeeping.
	slot := int64(now / m.quantum)
	k := int(slot % int64(live))
	owner := -1
	for i, r := range m.runners {
		if r.Done() {
			continue
		}
		if k == 0 {
			owner = i
			break
		}
		k--
	}
	m.owner = owner
	r := m.runners[owner]
	r.Step(now, dt)
	m.demand = r.Demand()
	for i := range m.shares {
		m.shares[i].SMShare = 0
		m.shares[i].MemShare = 0
		m.shares[i].Exclusive = false
		m.memW[i] = 0
		m.prevMem[i] = 0
	}
	if !r.Done() {
		m.shares[owner].SMShare = m.demand.GPUSMUtil
		m.shares[owner].MemShare = m.demand.MemGBs
	}
	// The owner is exclusive even when idle this step: whatever the
	// node burns during the quantum is its bill.
	m.shares[owner].Exclusive = true
	m.memW[owner] = 1
	m.prevMem[owner] = m.demand.MemGBs
}

// stepFractional advances every live tenant and superposes demands.
func (m *Mux) stepFractional(now, dt time.Duration) {
	m.owner = -1
	var mem, cpu, sm, gm float64
	var betaW, skewW, intensW float64
	for i, r := range m.runners {
		if r.Done() {
			m.shares[i].SMShare = 0
			m.shares[i].MemShare = 0
			m.shares[i].Exclusive = false
			m.memW[i] = 0
			m.prevMem[i] = 0
			continue
		}
		r.Step(now, dt)
		d := r.Demand()
		tsm := d.GPUSMUtil * m.gpuFrac[i]
		tgm := d.GPUMemUtil * m.gpuFrac[i]
		mem += d.MemGBs
		cpu += d.CPUBusyCores
		sm += tsm
		gm += tgm
		betaW += d.MemBoundFrac * d.MemGBs
		skewW += d.NUMASkew * d.MemGBs
		ci := d.CPUIntensity
		if ci == 0 {
			ci = 1
		}
		intensW += ci * d.CPUBusyCores
		m.shares[i].SMShare = tsm
		m.shares[i].MemShare = d.MemGBs
		m.shares[i].Exclusive = false
		m.memW[i] = d.MemGBs
		m.prevMem[i] = d.MemGBs
	}
	if sm > 1 {
		sm = 1
	}
	if gm > 1 {
		gm = 1
	}
	m.demand = Demand{
		CPUBusyCores: cpu,
		MemGBs:       mem,
		GPUSMUtil:    sm,
		GPUMemUtil:   gm,
	}
	if mem > 0 {
		m.demand.MemBoundFrac = betaW / mem
		m.demand.NUMASkew = skewW / mem
	}
	if cpu > 0 {
		m.demand.CPUIntensity = intensW / cpu
	}
}

// allDone reports whether every runner has completed.
func (m *Mux) allDone() bool {
	for _, r := range m.runners {
		if !r.Done() {
			return false
		}
	}
	return true
}

// finishStep transitions the Mux to its terminal state. The share and
// weight surfaces are left as the last scheduled step published them:
// the engine's attribution samplers run after this component within the
// same step, and the step's energy belongs to whoever just ran — not to
// an even split over a zeroed surface.
func (m *Mux) finishStep() {
	m.done = true
	m.owner = -1
	m.demand = Demand{}
}

// ---- Colocation presets ----

// mustByName resolves a catalog program or panics (presets are static).
func mustByName(name string) *Program {
	p, ok := ByName(name)
	if !ok {
		panic(fmt.Sprintf("workload: preset references unknown program %q", name))
	}
	return p
}

// NoisyNeighbor is the canonical contention scenario: a steady
// memory-bound victim time-sliced against a bursty aggressor.
func NoisyNeighbor() MuxSpec {
	return MuxSpec{
		Policy: RoundRobin,
		Tenants: []TenantSpec{
			{Tenant: "victim", Program: mustByName("particlefilter_naive"), Seed: 11},
			{Tenant: "aggressor", Program: mustByName("srad"), Seed: 13},
		},
	}
}

// FractionalGPU shares the node concurrently under MPS-style GPU
// partitions: a 70 % compute tenant against a 30 % background tenant.
// With both live, attribution is estimated from utilisation shares.
func FractionalGPU() MuxSpec {
	return MuxSpec{
		Policy: Fractional,
		Tenants: []TenantSpec{
			{Tenant: "primary", Program: mustByName("gemm"), Seed: 17, GPUFrac: 0.7},
			{Tenant: "background", Program: mustByName("bfs"), Seed: 19, GPUFrac: 0.3},
		},
	}
}

// BurstColocation time-slices two burst-heavy applications with a
// coarser quantum, the worst case for quantum-boundary attribution.
func BurstColocation() MuxSpec {
	return MuxSpec{
		Policy:  RoundRobin,
		Quantum: 25 * time.Millisecond,
		Tenants: []TenantSpec{
			{Tenant: "burst-a", Program: mustByName("srad"), Seed: 23},
			{Tenant: "burst-b", Program: mustByName("pathfinder"), Seed: 29},
		},
	}
}

package governor

import (
	"fmt"
	"time"

	"github.com/spear-repro/magus/internal/msr"
)

// ModelBasedConfig parameterises the model-based comparator.
type ModelBasedConfig struct {
	// BWModel maps an uncore frequency (GHz) to deliverable system
	// memory bandwidth (GB/s). Model-based approaches (Sundriyal et
	// al.; FCUFS) obtain this from offline profiling of the platform —
	// the dependency MAGUS's model-free design avoids (§1, §7).
	BWModel func(ghz float64) float64
	// Headroom is the fractional bandwidth margin kept above the
	// observed demand when selecting a frequency.
	Headroom float64
	// StepGHz is the frequency-selection granularity.
	StepGHz float64
	// Interval and InvocationTime follow the same decision-period
	// model as the other runtimes.
	Interval       time.Duration
	InvocationTime time.Duration
	// Overhead model (one PCM read per cycle, like MAGUS).
	BusyCores  float64
	ExtraWatts float64
}

// DefaultModelBasedConfig returns a reasonable parameterisation; the
// bandwidth model must still be supplied (it is platform-specific).
func DefaultModelBasedConfig() ModelBasedConfig {
	return ModelBasedConfig{
		Headroom:       0.15,
		StepGHz:        0.1,
		Interval:       200 * time.Millisecond,
		InvocationTime: 100 * time.Millisecond,
		BusyCores:      0.3,
		ExtraWatts:     0.5,
	}
}

// ModelBased is the model-based uncore policy from the related-work
// family (§7): each cycle it measures memory throughput and uses an
// offline-profiled bandwidth model to select the lowest uncore
// frequency whose deliverable bandwidth still exceeds the demand plus
// headroom. It is exact when the model is exact and the signal is
// steady — and degrades when demand moves faster than one decision
// period, the regime MAGUS's prediction and high-frequency detection
// target.
type ModelBased struct {
	cfg ModelBasedConfig
	env *Env
	cur float64
}

// NewModelBased builds the governor; bwModel must be non-nil.
func NewModelBased(cfg ModelBasedConfig, bwModel func(ghz float64) float64) *ModelBased {
	def := DefaultModelBasedConfig()
	if cfg.Headroom <= 0 {
		cfg.Headroom = def.Headroom
	}
	if cfg.StepGHz <= 0 {
		cfg.StepGHz = def.StepGHz
	}
	if cfg.Interval <= 0 {
		cfg.Interval = def.Interval
	}
	if cfg.InvocationTime <= 0 {
		cfg.InvocationTime = def.InvocationTime
	}
	if cfg.BusyCores <= 0 {
		cfg.BusyCores = def.BusyCores
	}
	if cfg.ExtraWatts < 0 {
		cfg.ExtraWatts = def.ExtraWatts
	}
	cfg.BWModel = bwModel
	return &ModelBased{cfg: cfg}
}

// Name implements Governor.
func (*ModelBased) Name() string { return "model-based" }

// Interval implements Governor.
func (g *ModelBased) Interval() time.Duration { return g.cfg.Interval + g.cfg.InvocationTime }

// CurrentMaxGHz returns the frequency last selected.
func (g *ModelBased) CurrentMaxGHz() float64 { return g.cur }

// Attach implements Governor.
func (g *ModelBased) Attach(env *Env) error {
	if err := env.Validate(); err != nil {
		return err
	}
	if env.PCM == nil {
		return fmt.Errorf("governor: model-based policy requires a PCM monitor")
	}
	if g.cfg.BWModel == nil {
		return fmt.Errorf("governor: model-based policy requires a bandwidth model")
	}
	g.env = env
	g.cur = env.UncoreMaxGHz
	return env.SetUncoreMax(g.cur)
}

// Invoke implements Governor: select the lowest frequency whose
// modelled bandwidth covers the observed demand plus headroom.
func (g *ModelBased) Invoke(now time.Duration) time.Duration {
	g.env.charge(g.cfg.InvocationTime, g.cfg.BusyCores, g.cfg.ExtraWatts)
	thr, err := g.env.PCM.SystemMemoryThroughput(now)
	if err != nil {
		g.set(g.env.UncoreMaxGHz)
		return 0
	}
	need := thr * (1 + g.cfg.Headroom)
	target := g.env.UncoreMaxGHz
	for f := g.env.UncoreMinGHz; f < g.env.UncoreMaxGHz; f += g.cfg.StepGHz {
		if g.cfg.BWModel(f) >= need {
			target = f
			break
		}
	}
	g.set(target)
	return 0
}

func (g *ModelBased) set(ghz float64) {
	ghz = msr.RatioToHz(msr.HzToRatio(ghz*1e9)) / 1e9
	if ghz == g.cur {
		return
	}
	if err := g.env.SetUncoreMax(ghz); err != nil {
		return
	}
	g.cur = ghz
}

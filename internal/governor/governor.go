// Package governor defines the runtime-daemon interface shared by every
// uncore frequency-scaling policy in this repo, plus the two baselines
// the paper compares MAGUS against: the vendor default (uncore pinned at
// its maximum unless the hardware TDP clamp engages — §2) and static
// max/min pins used by the Figure 2 motivation study. The UPScavenger
// reimplementation lives in ups.go; MAGUS itself lives in internal/core
// and implements the same interface.
package governor

import (
	"fmt"
	"time"

	"github.com/spear-repro/magus/internal/msr"
	"github.com/spear-repro/magus/internal/pcm"
	"github.com/spear-repro/magus/internal/rapl"
)

// Env is everything a governor may see or touch on the node. Governors
// act only through the MSR device and monitoring handles — the same
// surfaces the real runtimes use — plus a cost hook that charges their
// invocation work (busy host time, MSR-access power) back to the node.
type Env struct {
	Dev      msr.Device
	PCM      pcm.Reader
	RAPL     *rapl.Reader
	Sockets  int
	CPUs     int
	FirstCPU func(socket int) int

	// SocketPCM optionally provides per-socket IMC throughput monitors
	// (index = socket). Present on platforms whose memory-controller
	// counters are socket-scoped; the per-socket scaling extension
	// requires it.
	SocketPCM []pcm.Reader

	UncoreMinGHz float64
	UncoreMaxGHz float64

	// Charge accounts one invocation's overhead: busy wall time on the
	// host, the (possibly fractional) cores it occupies, and extra
	// power (MSR IPIs, uncore wakeups) while busy. May be nil.
	Charge func(busy time.Duration, cores, extraWatts float64)

	// limitShadow caches each socket's last-seen MSR_UNCORE_RATIO_LIMIT
	// value so the read-modify-write in SetUncoreMax survives transient
	// read failures (the runtime never changes the min bits, §4).
	limitShadow map[int]uint64
}

// Validate reports wiring errors.
func (e *Env) Validate() error {
	switch {
	case e == nil:
		return fmt.Errorf("governor: nil env")
	case e.Dev == nil:
		return fmt.Errorf("governor: env without MSR device")
	case e.Sockets <= 0 || e.CPUs <= 0:
		return fmt.Errorf("governor: bad topology %d sockets / %d cpus", e.Sockets, e.CPUs)
	case e.FirstCPU == nil:
		return fmt.Errorf("governor: env without FirstCPU")
	case !(0 < e.UncoreMinGHz && e.UncoreMinGHz < e.UncoreMaxGHz):
		return fmt.Errorf("governor: bad uncore range %v–%v", e.UncoreMinGHz, e.UncoreMaxGHz)
	}
	return nil
}

// charge forwards to Charge when set.
func (e *Env) charge(busy time.Duration, cores, extraWatts float64) {
	if e.Charge != nil {
		e.Charge(busy, cores, extraWatts)
	}
}

// SetUncoreMax writes the max-ratio bits of MSR_UNCORE_RATIO_LIMIT on
// every socket, leaving the min bits unchanged (§4 of the paper). A
// transient read failure falls back to the cached register value.
func (e *Env) SetUncoreMax(ghz float64) error {
	if e.limitShadow == nil {
		e.limitShadow = make(map[int]uint64, e.Sockets)
	}
	for s := 0; s < e.Sockets; s++ {
		cpu := e.FirstCPU(s)
		old, err := e.Dev.Read(cpu, msr.UncoreRatioLimit)
		if err != nil {
			cached, ok := e.limitShadow[s]
			if !ok {
				return fmt.Errorf("governor: read uncore limit socket %d: %w", s, err)
			}
			old = cached
		}
		next := msr.WithUncoreMax(old, ghz*1e9)
		if err := e.Dev.Write(cpu, msr.UncoreRatioLimit, next); err != nil {
			return fmt.Errorf("governor: write uncore limit socket %d: %w", s, err)
		}
		e.limitShadow[s] = next
	}
	return nil
}

// Governor is one uncore frequency-scaling policy attached to a node
// for the lifetime of an application run.
type Governor interface {
	// Name identifies the policy in reports.
	Name() string
	// Attach binds the governor to a node at application start.
	Attach(env *Env) error
	// Interval returns the nominal delay between invocations; the
	// harness schedules the first invocation at t=0.
	Interval() time.Duration
	// Invoke runs one decision cycle at virtual time now and returns
	// the delay until the next cycle (0 = use Interval()).
	Invoke(now time.Duration) time.Duration
}

// Default is the vendor behaviour: the uncore limit stays at the
// hardware maximum and only the in-silicon TDP clamp (modelled in
// internal/node) ever reduces the frequency. It performs no runtime
// work, hence zero overhead.
type Default struct{ env *Env }

// NewDefault returns the vendor-default governor.
func NewDefault() *Default { return &Default{} }

// Name implements Governor.
func (*Default) Name() string { return "default" }

// Attach implements Governor: restore the vendor reset value (full
// range) in case a previous policy left the limit lowered.
func (d *Default) Attach(env *Env) error {
	if err := env.Validate(); err != nil {
		return err
	}
	d.env = env
	return env.SetUncoreMax(env.UncoreMaxGHz)
}

// Interval implements Governor; the default policy never wakes up.
func (*Default) Interval() time.Duration { return time.Hour }

// Invoke implements Governor (no-op).
func (*Default) Invoke(time.Duration) time.Duration { return time.Hour }

// Static pins the uncore max limit at a fixed frequency for the whole
// run — the paper's Figure 2 uses max (2.2 GHz) and min (0.8 GHz) pins
// to bound the trade-off space.
type Static struct {
	ghz float64
	env *Env
}

// NewStatic returns a governor that pins the uncore limit at ghz.
func NewStatic(ghz float64) *Static { return &Static{ghz: ghz} }

// Name implements Governor.
func (s *Static) Name() string { return fmt.Sprintf("static-%.1fGHz", s.ghz) }

// Attach implements Governor.
func (s *Static) Attach(env *Env) error {
	if err := env.Validate(); err != nil {
		return err
	}
	if s.ghz < env.UncoreMinGHz || s.ghz > env.UncoreMaxGHz {
		return fmt.Errorf("governor: static pin %.2f GHz outside [%.2f, %.2f]",
			s.ghz, env.UncoreMinGHz, env.UncoreMaxGHz)
	}
	s.env = env
	return env.SetUncoreMax(s.ghz)
}

// Interval implements Governor.
func (*Static) Interval() time.Duration { return time.Hour }

// Invoke implements Governor (no-op).
func (*Static) Invoke(time.Duration) time.Duration { return time.Hour }

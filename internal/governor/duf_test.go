package governor

import (
	"testing"
	"time"

	"github.com/spear-repro/magus/internal/msr"
)

var _ Governor = (*DUF)(nil)

type dufHarness struct {
	s   *msr.Space
	duf *DUF
	now time.Duration
}

func newDUFHarness(t *testing.T) *dufHarness {
	t.Helper()
	s, env := testEnv(t)
	h := &dufHarness{s: s, duf: NewDUF(DUFConfig{})}
	if err := h.duf.Attach(env); err != nil {
		t.Fatal(err)
	}
	return h
}

// cycle advances 0.5 s feeding each of the 8 cores instDelta retired
// instructions.
func (h *dufHarness) cycle(instDelta uint64) {
	h.now += 500 * time.Millisecond
	for cpu := 0; cpu < 8; cpu++ {
		h.s.Bump(cpu, msr.FixedCtrInstRetired, instDelta)
	}
	h.duf.Invoke(h.now)
}

func TestDUFHarvestsWithinBudget(t *testing.T) {
	h := newDUFHarness(t)
	if h.duf.CurrentMaxGHz() != 2.2 {
		t.Fatalf("attach limit = %v", h.duf.CurrentMaxGHz())
	}
	h.cycle(1_000_000) // baseline sweep
	for i := 0; i < 6; i++ {
		h.cycle(1_000_000) // steady progress: within budget
	}
	if got := h.duf.CurrentMaxGHz(); got > 2.2-5*0.1+1e-9 {
		t.Fatalf("DUF did not harvest: %v GHz", got)
	}
}

func TestDUFBacksOffOnSlowdown(t *testing.T) {
	h := newDUFHarness(t)
	h.cycle(1_000_000)
	for i := 0; i < 5; i++ {
		h.cycle(1_000_000)
	}
	low := h.duf.CurrentMaxGHz()
	h.cycle(800_000) // 20 % IPS drop: budget (5 %) exceeded
	if got := h.duf.CurrentMaxGHz(); got <= low {
		t.Fatalf("DUF did not back off: %v -> %v", low, got)
	}
}

func TestDUFReferenceDecays(t *testing.T) {
	s, env := testEnv(t)
	h := &dufHarness{s: s, duf: NewDUF(DUFConfig{RefDecay: 0.08})}
	if err := h.duf.Attach(env); err != nil {
		t.Fatal(err)
	}
	h.cycle(2_000_000)
	h.cycle(2_000_000)
	// Phase change to a legitimately slower region: with decay the
	// reference re-baselines and DUF resumes harvesting instead of
	// pinning max forever.
	for i := 0; i < 70; i++ {
		h.cycle(1_000_000)
	}
	if got := h.duf.CurrentMaxGHz(); got > 1.5 {
		t.Fatalf("DUF stuck high after re-baseline: %v GHz", got)
	}
}

func TestDUFEndToEnd(t *testing.T) {
	// Smoke: DUF on a simulated run must save power with bounded loss
	// (its 5 % budget) — exercised through the public harness in the
	// experiments package; here just validate interval/charging.
	_, env := testEnv(t)
	var busy time.Duration
	env.Charge = func(b time.Duration, cores, watts float64) { busy += b }
	d := NewDUF(DUFConfig{})
	if err := d.Attach(env); err != nil {
		t.Fatal(err)
	}
	d.Invoke(500 * time.Millisecond)
	if busy != 300*time.Millisecond {
		t.Fatalf("charged %v", busy)
	}
	if d.Interval() != 500*time.Millisecond {
		t.Fatalf("interval = %v", d.Interval())
	}
	if d.Invocations() != 1 {
		t.Fatalf("invocations = %d", d.Invocations())
	}
}

package governor

import (
	"testing"
	"time"

	"github.com/spear-repro/magus/internal/msr"
)

var _ Governor = (*PowerCapped)(nil)

func TestPowerCapAttachProgramsPL1(t *testing.T) {
	s, env := testEnv(t)
	g := WithPowerCap(NewDefault(), 180)
	if err := g.Attach(env); err != nil {
		t.Fatal(err)
	}
	for sock := 0; sock < 2; sock++ {
		raw := s.Peek(s.FirstCPUOf(sock), msr.PkgPowerLimit)
		w, enabled := msr.DecodePowerLimit(raw, 0.125)
		if !enabled || w != 180 {
			t.Fatalf("socket %d PL1 = %v W enabled=%v", sock, w, enabled)
		}
	}
	if g.Name() != "default+cap180W" {
		t.Fatalf("name = %q", g.Name())
	}
	if g.CapWatts() != 180 {
		t.Fatalf("CapWatts = %v", g.CapWatts())
	}
	if g.Interval() != NewDefault().Interval() {
		t.Fatal("interval not delegated")
	}
}

func TestPowerCapValidation(t *testing.T) {
	_, env := testEnv(t)
	if err := WithPowerCap(NewDefault(), 0).Attach(env); err == nil {
		t.Fatal("zero cap accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("WithPowerCap(nil) did not panic")
		}
	}()
	WithPowerCap(nil, 100)
}

func TestPowerCapDelegatesInvoke(t *testing.T) {
	_, env := testEnv(t)
	ups := NewUPS(UPSConfig{})
	g := WithPowerCap(ups, 200)
	if err := g.Attach(env); err != nil {
		t.Fatal(err)
	}
	g.Invoke(500 * time.Millisecond)
	inv, _, _, _ := ups.Stats()
	if inv != 1 {
		t.Fatalf("inner invocations = %d", inv)
	}
}

func TestPowerCapWriteFailure(t *testing.T) {
	s, env := testEnv(t)
	s.FailWrites(msr.ErrInjected)
	if err := WithPowerCap(NewDefault(), 200).Attach(env); err == nil {
		t.Fatal("PL1 write failure not propagated")
	}
}

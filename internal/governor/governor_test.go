package governor

import (
	"testing"
	"time"

	"github.com/spear-repro/magus/internal/msr"
	"github.com/spear-repro/magus/internal/pcm"
	"github.com/spear-repro/magus/internal/rapl"
	"github.com/spear-repro/magus/internal/resilient"
)

var (
	_ Governor = (*Default)(nil)
	_ Governor = (*Static)(nil)
	_ Governor = (*UPS)(nil)
)

func testEnv(t *testing.T) (*msr.Space, *Env) {
	t.Helper()
	s := msr.NewSpace(2, 4)
	r, err := rapl.New(s, 2, s.FirstCPUOf)
	if err != nil {
		t.Fatal(err)
	}
	var traffic float64
	return s, &Env{
		Dev:          s,
		PCM:          pcm.New(func() float64 { return traffic }),
		RAPL:         r,
		Sockets:      2,
		CPUs:         8,
		FirstCPU:     s.FirstCPUOf,
		UncoreMinGHz: 0.8,
		UncoreMaxGHz: 2.2,
	}
}

func limitGHz(s *msr.Space, socket int) float64 {
	maxHz, _ := msr.DecodeUncoreLimit(s.Peek(s.FirstCPUOf(socket), msr.UncoreRatioLimit))
	return maxHz / 1e9
}

func TestEnvValidate(t *testing.T) {
	_, env := testEnv(t)
	if err := env.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *env
	bad.Dev = nil
	if bad.Validate() == nil {
		t.Fatal("nil Dev accepted")
	}
	bad = *env
	bad.Sockets = 0
	if bad.Validate() == nil {
		t.Fatal("zero sockets accepted")
	}
	bad = *env
	bad.UncoreMinGHz = 3
	if bad.Validate() == nil {
		t.Fatal("inverted range accepted")
	}
}

func TestSetUncoreMaxAllSockets(t *testing.T) {
	s, env := testEnv(t)
	if err := env.SetUncoreMax(1.5); err != nil {
		t.Fatal(err)
	}
	for sock := 0; sock < 2; sock++ {
		if got := limitGHz(s, sock); got != 1.5 {
			t.Fatalf("socket %d limit = %v", sock, got)
		}
	}
	s.FailWrites(msr.ErrInjected)
	if err := env.SetUncoreMax(2.0); err == nil {
		t.Fatal("write failure not propagated")
	}
}

func TestDefaultGovernor(t *testing.T) {
	s, env := testEnv(t)
	// Simulate a previous policy leaving the limit lowered.
	env.SetUncoreMax(0.8)
	g := NewDefault()
	if err := g.Attach(env); err != nil {
		t.Fatal(err)
	}
	if got := limitGHz(s, 0); got != 2.2 {
		t.Fatalf("default attach limit = %v, want restored max", got)
	}
	if g.Invoke(0) <= 0 {
		t.Fatal("default Invoke must return a positive delay")
	}
}

func TestStaticGovernor(t *testing.T) {
	s, env := testEnv(t)
	g := NewStatic(0.8)
	if err := g.Attach(env); err != nil {
		t.Fatal(err)
	}
	if got := limitGHz(s, 1); got != 0.8 {
		t.Fatalf("static limit = %v", got)
	}
	if g.Name() != "static-0.8GHz" {
		t.Fatalf("name = %q", g.Name())
	}
	if err := NewStatic(3.0).Attach(env); err == nil {
		t.Fatal("out-of-range pin accepted")
	}
}

// upsHarness drives UPS with scripted DRAM power and IPC.
type upsHarness struct {
	s   *msr.Space
	env *Env
	ups *UPS
	now time.Duration
	cyc uint64
}

func newUPSHarness(t *testing.T) *upsHarness {
	t.Helper()
	s, env := testEnv(t)
	h := &upsHarness{s: s, env: env, ups: NewUPS(UPSConfig{})}
	if err := h.ups.Attach(env); err != nil {
		t.Fatal(err)
	}
	return h
}

// cycle advances 0.5 s with the given DRAM watts and per-core IPC on
// cores 0..3 (socket 0).
func (h *upsHarness) cycle(dramW, ipc float64) {
	h.now += 500 * time.Millisecond
	// DRAM energy: watts over 0.5 s split across 2 sockets.
	units := uint64(dramW / 2 * 0.5 * 16384)
	h.s.Bump(0, msr.DramEnergyStatus, units)
	h.s.Bump(4, msr.DramEnergyStatus, units)
	// Core counters: fixed cycle delta, IPC-scaled instructions.
	const dCyc = 1_000_000
	for cpu := 0; cpu < 4; cpu++ {
		h.s.Bump(cpu, msr.FixedCtrCPUCycles, dCyc)
		h.s.Bump(cpu, msr.FixedCtrInstRetired, uint64(ipc*dCyc))
	}
	h.ups.Invoke(h.now)
}

func TestUPSStartsAtMax(t *testing.T) {
	h := newUPSHarness(t)
	if got := limitGHz(h.s, 0); got != 2.2 {
		t.Fatalf("attach limit = %v", got)
	}
}

func TestUPSScavengesDownWhileIPCHolds(t *testing.T) {
	h := newUPSHarness(t)
	// Baselines (two cycles to establish counters and phase).
	h.cycle(30, 2.0)
	h.cycle(30, 2.0)
	start := h.ups.CurrentMaxGHz()
	for i := 0; i < 5; i++ {
		h.cycle(30, 2.0) // steady phase, IPC unharmed
	}
	got := h.ups.CurrentMaxGHz()
	if got >= start {
		t.Fatalf("UPS did not scavenge: %v -> %v", start, got)
	}
	if want := start - 5*0.1; got > want+1e-9 {
		t.Fatalf("UPS stepped too slowly: %v, want ≤ %v", got, want)
	}
	if got := limitGHz(h.s, 0); got != h.ups.CurrentMaxGHz() {
		t.Fatalf("MSR limit %v != tracked %v", got, h.ups.CurrentMaxGHz())
	}
}

func TestUPSBacksOffOnIPCDegradation(t *testing.T) {
	h := newUPSHarness(t)
	h.cycle(30, 2.0)
	h.cycle(30, 2.0)
	for i := 0; i < 6; i++ {
		h.cycle(30, 2.0)
	}
	low := h.ups.CurrentMaxGHz()
	h.cycle(30, 1.5) // 25 % IPC drop — well past the 6 % tolerance
	backedOff := h.ups.CurrentMaxGHz()
	if backedOff <= low {
		t.Fatalf("UPS did not back off: %v -> %v", low, backedOff)
	}
	// With the floor raised, sustained good IPC must not dip below it.
	for i := 0; i < 4; i++ {
		h.cycle(30, 2.0)
	}
	if h.ups.CurrentMaxGHz() < backedOff-1e-9 {
		t.Fatalf("UPS probed below its floor: %v < %v", h.ups.CurrentMaxGHz(), backedOff)
	}
}

func TestUPSResetsOnPhaseTransition(t *testing.T) {
	h := newUPSHarness(t)
	h.cycle(30, 2.0)
	h.cycle(30, 2.0)
	for i := 0; i < 6; i++ {
		h.cycle(30, 2.0)
	}
	if h.ups.CurrentMaxGHz() >= 2.0 {
		t.Fatalf("setup: UPS at %v", h.ups.CurrentMaxGHz())
	}
	// DRAM power triples: even the smoothed signal crosses the phase
	// threshold, so UPS resets to max.
	h.cycle(90, 2.0)
	if got := h.ups.CurrentMaxGHz(); got != 2.2 {
		t.Fatalf("after phase transition limit = %v, want max", got)
	}
	_, _, _, resets := h.ups.Stats()
	if resets == 0 {
		t.Fatal("phase reset not counted")
	}
}

func TestUPSMSRReadVolume(t *testing.T) {
	// UPS sweeps two counters on every CPU each cycle — the §6.5
	// overhead story. 8 CPUs × 2 regs × 3 cycles = 48 reads.
	h := newUPSHarness(t)
	h.cycle(30, 2.0)
	h.cycle(30, 2.0)
	h.cycle(30, 2.0)
	_, reads, _, _ := h.ups.Stats()
	if reads != 48 {
		t.Fatalf("msr reads = %d, want 48", reads)
	}
}

func TestUPSChargesPerInvocation(t *testing.T) {
	s, env := testEnv(t)
	var busy time.Duration
	env.Charge = func(b time.Duration, cores, watts float64) { busy += b }
	ups := NewUPS(UPSConfig{})
	if err := ups.Attach(env); err != nil {
		t.Fatal(err)
	}
	_ = s
	ups.Invoke(500 * time.Millisecond)
	ups.Invoke(time.Second)
	if busy != 600*time.Millisecond {
		t.Fatalf("charged %v, want 600ms (2 × 0.3 s sweeps)", busy)
	}
	if ups.Interval() != 500*time.Millisecond {
		t.Fatalf("interval = %v, want 0.5s", ups.Interval())
	}
}

func TestUPSRequiresRAPL(t *testing.T) {
	_, env := testEnv(t)
	env.RAPL = nil
	if err := NewUPS(UPSConfig{}).Attach(env); err == nil {
		t.Fatal("UPS attached without RAPL")
	}
}

func TestUPSFailsSafeOnRAPLError(t *testing.T) {
	// The degradation contract: a single missed sensing cycle holds the
	// last decision; sustained loss degrades to vendor default (max).
	h := newUPSHarness(t)
	h.cycle(30, 2.0)
	h.cycle(30, 2.0)
	for i := 0; i < 6; i++ {
		h.cycle(30, 2.0)
	}
	held := limitGHz(h.s, 0)
	if held >= 2.2 {
		t.Fatalf("setup: UPS never scavenged below max (%v)", held)
	}
	h.s.FailReads(msr.ErrInjected)
	h.now += 500 * time.Millisecond
	h.ups.Invoke(h.now)
	if got := limitGHz(h.s, 0); got != held {
		t.Fatalf("limit after one missed sample = %v, want held %v", got, held)
	}
	if got := h.ups.SensorHealth(); got != resilient.Degraded {
		t.Fatalf("health after one miss = %v, want degraded", got)
	}
	for i := 0; i < 2; i++ {
		h.now += 500 * time.Millisecond
		h.ups.Invoke(h.now)
	}
	h.s.FailReads(nil)
	if got := limitGHz(h.s, 0); got != 2.2 {
		t.Fatalf("limit after sustained loss = %v, want fail-safe max", got)
	}
	if got := h.ups.SensorHealth(); got != resilient.Lost {
		t.Fatalf("health after sustained loss = %v, want lost", got)
	}
}

package governor

import (
	"fmt"
	"sort"
	"time"

	"github.com/spear-repro/magus/internal/resilient"
)

// ShadowEntry is one socket's cached MSR_UNCORE_RATIO_LIMIT value from
// the env's read-modify-write fallback cache.
type ShadowEntry struct {
	Socket int
	Val    uint64
}

// ShadowState returns the limit-shadow cache as a sorted slice (nil
// when no write has populated it yet).
func (e *Env) ShadowState() []ShadowEntry {
	if len(e.limitShadow) == 0 {
		return nil
	}
	out := make([]ShadowEntry, 0, len(e.limitShadow))
	for s, v := range e.limitShadow {
		out = append(out, ShadowEntry{Socket: s, Val: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Socket < out[j].Socket })
	return out
}

// RestoreShadow overwrites the limit-shadow cache.
func (e *Env) RestoreShadow(entries []ShadowEntry) {
	if len(entries) == 0 {
		e.limitShadow = nil
		return
	}
	e.limitShadow = make(map[int]uint64, len(entries))
	for _, en := range entries {
		e.limitShadow[en.Socket] = en.Val
	}
}

// UPSState is a UPS governor's full mutable state, including its env's
// limit-shadow cache (each governor owns the env it is attached to for
// the duration of a run).
type UPSState struct {
	Cur        float64
	SmoothDram float64
	HaveSmooth bool
	RefDramW   float64
	RefIPC     float64
	Floor      float64
	SinceProbe int
	HavePhase  bool
	LastInst   []uint64
	LastCyc    []uint64
	HaveCtrs   bool

	Health resilient.TrackerState

	Invocations uint64
	MSRReads    uint64
	MSRWrites   uint64
	PhaseResets uint64

	Shadow []ShadowEntry
}

// State captures the governor. Call only after Attach.
func (u *UPS) State() UPSState {
	return UPSState{
		Cur:        u.cur,
		SmoothDram: u.smoothDram,
		HaveSmooth: u.haveSmooth,
		RefDramW:   u.refDramW,
		RefIPC:     u.refIPC,
		Floor:      u.floor,
		SinceProbe: u.sinceProbe,
		HavePhase:  u.havePhase,
		LastInst:   append([]uint64(nil), u.lastInst...),
		LastCyc:    append([]uint64(nil), u.lastCyc...),
		HaveCtrs:   u.haveCtrs,

		Health: u.health.State(),

		Invocations: u.invocations,
		MSRReads:    u.msrReads,
		MSRWrites:   u.msrWrites,
		PhaseResets: u.phaseResets,

		Shadow: u.env.ShadowState(),
	}
}

// Restore overwrites an attached governor of the same topology.
func (u *UPS) Restore(st UPSState) error {
	if u.env == nil {
		return fmt.Errorf("governor: restore on a detached UPS")
	}
	if len(st.LastInst) != u.env.CPUs || len(st.LastCyc) != u.env.CPUs {
		return fmt.Errorf("governor: UPS restore counters %d/%d, env has %d cpus",
			len(st.LastInst), len(st.LastCyc), u.env.CPUs)
	}
	u.cur = st.Cur
	u.smoothDram = st.SmoothDram
	u.haveSmooth = st.HaveSmooth
	u.refDramW = st.RefDramW
	u.refIPC = st.RefIPC
	u.floor = st.Floor
	u.sinceProbe = st.SinceProbe
	u.havePhase = st.HavePhase
	copy(u.lastInst, st.LastInst)
	copy(u.lastCyc, st.LastCyc)
	u.haveCtrs = st.HaveCtrs
	u.health.Restore(st.Health)
	u.invocations = st.Invocations
	u.msrReads = st.MSRReads
	u.msrWrites = st.MSRWrites
	u.phaseResets = st.PhaseResets
	u.env.RestoreShadow(st.Shadow)
	return nil
}

// DUFState is a DUF governor's full mutable state.
type DUFState struct {
	Cur      float64
	RefIPS   float64
	LastInst []uint64
	LastAt   time.Duration
	HaveCtrs bool

	Health resilient.TrackerState

	Invocations uint64

	Shadow []ShadowEntry
}

// State captures the governor. Call only after Attach.
func (d *DUF) State() DUFState {
	return DUFState{
		Cur:         d.cur,
		RefIPS:      d.refIPS,
		LastInst:    append([]uint64(nil), d.lastInst...),
		LastAt:      d.lastAt,
		HaveCtrs:    d.haveCtrs,
		Health:      d.health.State(),
		Invocations: d.invocations,
		Shadow:      d.env.ShadowState(),
	}
}

// Restore overwrites an attached governor of the same topology.
func (d *DUF) Restore(st DUFState) error {
	if d.env == nil {
		return fmt.Errorf("governor: restore on a detached DUF")
	}
	if len(st.LastInst) != d.env.CPUs {
		return fmt.Errorf("governor: DUF restore counters %d, env has %d cpus",
			len(st.LastInst), d.env.CPUs)
	}
	d.cur = st.Cur
	d.refIPS = st.RefIPS
	copy(d.lastInst, st.LastInst)
	d.lastAt = st.LastAt
	d.haveCtrs = st.HaveCtrs
	d.health.Restore(st.Health)
	d.invocations = st.Invocations
	d.env.RestoreShadow(st.Shadow)
	return nil
}

// Env returns the attached environment (nil before Attach). The
// checkpoint layer uses it to capture the limit-shadow cache of
// stateless governors.
func (d *Default) Env() *Env { return d.env }

// Env returns the attached environment (nil before Attach).
func (s *Static) Env() *Env { return s.env }

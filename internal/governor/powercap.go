package governor

import (
	"fmt"
	"time"

	"github.com/spear-repro/magus/internal/msr"
)

// PowerCapped composes an uncore frequency-scaling policy with a RAPL
// package power cap (PL1), following the direction of Guermouche
// (IPDPSW '22): power capping bounds worst-case draw in hardware,
// uncore scaling harvests the waste below the cap. At attach it writes
// the PL1 limit into MSR_PKG_POWER_LIMIT on every socket and then
// delegates every decision to the inner policy; the node's clamp logic
// enforces the cap autonomously, exactly as RAPL firmware does.
type PowerCapped struct {
	inner  Governor
	capW   float64
	env    *Env
	capped bool
}

// WithPowerCap wraps inner with a per-socket PL1 cap of capW watts.
func WithPowerCap(inner Governor, capW float64) *PowerCapped {
	if inner == nil {
		panic("governor: WithPowerCap(nil)")
	}
	return &PowerCapped{inner: inner, capW: capW}
}

// Name implements Governor.
func (p *PowerCapped) Name() string {
	return fmt.Sprintf("%s+cap%.0fW", p.inner.Name(), p.capW)
}

// Interval implements Governor.
func (p *PowerCapped) Interval() time.Duration { return p.inner.Interval() }

// CapWatts returns the configured PL1 limit.
func (p *PowerCapped) CapWatts() float64 { return p.capW }

// Inner returns the wrapped policy, so stats and observability layers
// can see through the cap to the scaling runtime underneath.
func (p *PowerCapped) Inner() Governor { return p.inner }

// Attach implements Governor: program the cap, then attach the inner
// policy.
func (p *PowerCapped) Attach(env *Env) error {
	if err := env.Validate(); err != nil {
		return err
	}
	if p.capW <= 0 {
		return fmt.Errorf("governor: non-positive power cap %v", p.capW)
	}
	p.env = env
	val := msr.EncodePowerLimit(p.capW, 0.125, true)
	for s := 0; s < env.Sockets; s++ {
		if err := env.Dev.Write(env.FirstCPU(s), msr.PkgPowerLimit, val); err != nil {
			return fmt.Errorf("governor: program PL1 on socket %d: %w", s, err)
		}
	}
	p.capped = true
	return p.inner.Attach(env)
}

// Invoke implements Governor by delegation.
func (p *PowerCapped) Invoke(now time.Duration) time.Duration { return p.inner.Invoke(now) }

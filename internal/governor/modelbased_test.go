package governor

import (
	"testing"
	"time"

	"github.com/spear-repro/magus/internal/msr"
	"github.com/spear-repro/magus/internal/pcm"
	"github.com/spear-repro/magus/internal/rapl"
)

var _ Governor = (*ModelBased)(nil)

// linear test bandwidth model: 60..400 GB/s across 0.8..2.2 GHz.
func testBWModel(ghz float64) float64 {
	return 400 * (0.15 + 0.85*ghz/2.2)
}

type mbHarness struct {
	s       *msr.Space
	env     *Env
	mb      *ModelBased
	traffic float64
	now     time.Duration
}

func newMBHarness(t *testing.T) *mbHarness {
	t.Helper()
	s := msr.NewSpace(2, 4)
	r, err := rapl.New(s, 2, s.FirstCPUOf)
	if err != nil {
		t.Fatal(err)
	}
	h := &mbHarness{s: s}
	h.env = &Env{
		Dev:          s,
		PCM:          pcm.New(func() float64 { return h.traffic }),
		RAPL:         r,
		Sockets:      2,
		CPUs:         8,
		FirstCPU:     s.FirstCPUOf,
		UncoreMinGHz: 0.8,
		UncoreMaxGHz: 2.2,
	}
	h.mb = NewModelBased(ModelBasedConfig{}, testBWModel)
	if err := h.mb.Attach(h.env); err != nil {
		t.Fatal(err)
	}
	return h
}

func (h *mbHarness) cycle(gbs float64) {
	h.traffic += gbs * 0.3
	h.now += 300 * time.Millisecond
	h.mb.Invoke(h.now)
}

func TestModelBasedSelectsMinimalSufficientFrequency(t *testing.T) {
	h := newMBHarness(t)
	if h.mb.CurrentMaxGHz() != 2.2 {
		t.Fatalf("attach frequency = %v", h.mb.CurrentMaxGHz())
	}
	h.cycle(0) // baseline
	// Steady 100 GB/s demand: need 115 with headroom; model gives
	// BW(0.8)=163 -> min frequency suffices.
	h.cycle(100)
	if got := h.mb.CurrentMaxGHz(); got != 0.8 {
		t.Fatalf("selected %v GHz for 100 GB/s, want 0.8", got)
	}
	// 300 GB/s: need 345; BW(f)=345 at f≈1.90 -> selects ≈1.9.
	h.cycle(300)
	if got := h.mb.CurrentMaxGHz(); got < 1.8 || got > 2.1 {
		t.Fatalf("selected %v GHz for 300 GB/s, want ≈1.9", got)
	}
	// Demand beyond the model's range pins max.
	h.cycle(500)
	if got := h.mb.CurrentMaxGHz(); got != 2.2 {
		t.Fatalf("selected %v GHz for 500 GB/s, want max", got)
	}
}

func TestModelBasedFailSafe(t *testing.T) {
	h := newMBHarness(t)
	h.cycle(0)
	h.cycle(50)
	if h.mb.CurrentMaxGHz() != 0.8 {
		t.Fatal("setup failed")
	}
	h.traffic -= 1000 // PCM error: counter goes backwards
	h.now += 300 * time.Millisecond
	h.mb.Invoke(h.now)
	if h.mb.CurrentMaxGHz() != 2.2 {
		t.Fatalf("fail-safe frequency = %v", h.mb.CurrentMaxGHz())
	}
}

func TestModelBasedRequiresModel(t *testing.T) {
	h := newMBHarness(t)
	g := NewModelBased(ModelBasedConfig{}, nil)
	if err := g.Attach(h.env); err == nil {
		t.Fatal("nil bandwidth model accepted")
	}
}

func TestModelBasedChargesOverhead(t *testing.T) {
	h := newMBHarness(t)
	var busy time.Duration
	h.env.Charge = func(b time.Duration, cores, watts float64) { busy += b }
	h.cycle(0)
	h.cycle(100)
	if busy != 200*time.Millisecond {
		t.Fatalf("charged %v, want 200ms", busy)
	}
	if h.mb.Interval() != 300*time.Millisecond {
		t.Fatalf("interval = %v", h.mb.Interval())
	}
}

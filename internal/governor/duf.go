package governor

import (
	"time"

	"github.com/spear-repro/magus/internal/msr"
	"github.com/spear-repro/magus/internal/resilient"
)

// DUFConfig parameterises the DUF baseline (André, Dulong, Guermouche,
// Trahay: "DUF: Dynamic Uncore Frequency scaling to reduce power
// consumption" — the paper's reference for vendor-default uncore
// behaviour). DUF takes an explicit user slowdown budget: it steps the
// uncore down as long as the application's measured progress rate
// (aggregate instructions per second) stays within the budget of the
// phase's reference rate, and steps back up when it does not.
type DUFConfig struct {
	// MaxSlowdown is the tolerated relative IPS degradation (e.g.
	// 0.05 = 5 %), DUF's single user-facing knob.
	MaxSlowdown float64
	// StepGHz is the per-cycle frequency step.
	StepGHz float64
	// RefDecay slowly relaxes the reference IPS toward the current
	// measurement so phase changes re-baseline without explicit
	// detection (DUF re-evaluates its reference continuously).
	RefDecay float64
	// Interval / InvocationTime follow the shared decision-period
	// model; like UPS, DUF sweeps per-core counters.
	Interval       time.Duration
	InvocationTime time.Duration
	BusyCores      float64
	ExtraWatts     float64
}

// DefaultDUFConfig returns a 5 %-slowdown-budget configuration.
func DefaultDUFConfig() DUFConfig {
	return DUFConfig{
		MaxSlowdown:    0.05,
		StepGHz:        0.1,
		RefDecay:       0.02,
		Interval:       200 * time.Millisecond,
		InvocationTime: 300 * time.Millisecond,
		BusyCores:      1.0,
		ExtraWatts:     14.0,
	}
}

// DUF is the slowdown-budget uncore governor.
type DUF struct {
	cfg DUFConfig
	env *Env

	cur      float64
	refIPS   float64
	lastInst []uint64
	lastAt   time.Duration
	haveCtrs bool

	// health tracks the counter-sweep sensing path through the shared
	// healthy → degraded → lost state machine.
	health *resilient.Tracker

	invocations uint64
}

// NewDUF builds a DUF governor (zero-value fields take defaults).
func NewDUF(cfg DUFConfig) *DUF {
	def := DefaultDUFConfig()
	if cfg.MaxSlowdown <= 0 {
		cfg.MaxSlowdown = def.MaxSlowdown
	}
	if cfg.StepGHz <= 0 {
		cfg.StepGHz = def.StepGHz
	}
	if cfg.RefDecay <= 0 || cfg.RefDecay > 1 {
		cfg.RefDecay = def.RefDecay
	}
	if cfg.Interval <= 0 {
		cfg.Interval = def.Interval
	}
	if cfg.InvocationTime <= 0 {
		cfg.InvocationTime = def.InvocationTime
	}
	if cfg.BusyCores <= 0 {
		cfg.BusyCores = def.BusyCores
	}
	if cfg.ExtraWatts < 0 {
		cfg.ExtraWatts = def.ExtraWatts
	}
	return &DUF{cfg: cfg}
}

// Name implements Governor.
func (*DUF) Name() string { return "duf" }

// Interval implements Governor.
func (d *DUF) Interval() time.Duration { return d.cfg.Interval + d.cfg.InvocationTime }

// CurrentMaxGHz returns the limit DUF last requested.
func (d *DUF) CurrentMaxGHz() float64 { return d.cur }

// Invocations returns the decision-cycle count.
func (d *DUF) Invocations() uint64 { return d.invocations }

// Attach implements Governor.
func (d *DUF) Attach(env *Env) error {
	if err := env.Validate(); err != nil {
		return err
	}
	d.env = env
	d.cur = env.UncoreMaxGHz
	d.refIPS = 0
	d.haveCtrs = false
	d.health = resilient.NewTracker(0)
	d.lastInst = make([]uint64, env.CPUs)
	return env.SetUncoreMax(d.cur)
}

// SensorHealth reports the sensing path's health state.
func (d *DUF) SensorHealth() resilient.Health { return d.health.Health() }

// Resilience returns the sensing path's miss/recovery counters.
func (d *DUF) Resilience() resilient.Counters { return d.health.Counters() }

// Invoke implements Governor: one DUF cycle.
func (d *DUF) Invoke(now time.Duration) time.Duration {
	d.invocations++
	d.env.charge(d.cfg.InvocationTime, d.cfg.BusyCores, d.cfg.ExtraWatts)

	ips, ok, lost := d.readIPS(now)
	if lost {
		d.miss()
		return 0
	}
	d.health.Good()
	if !ok {
		return 0
	}
	// Track the best progress rate seen, with slow decay so a new
	// phase's (lower or higher) rate re-baselines the budget.
	if ips > d.refIPS {
		d.refIPS = ips
	} else {
		d.refIPS += d.cfg.RefDecay * (ips - d.refIPS)
	}
	if d.refIPS <= 0 {
		return 0
	}
	switch {
	case ips < d.refIPS*(1-d.cfg.MaxSlowdown):
		// Budget exceeded: restore bandwidth one step at a time.
		d.set(d.cur + d.cfg.StepGHz)
	default:
		// Within budget: harvest another step.
		d.set(d.cur - d.cfg.StepGHz)
	}
	return 0
}

func (d *DUF) set(ghz float64) {
	if ghz < d.env.UncoreMinGHz {
		ghz = d.env.UncoreMinGHz
	}
	if ghz > d.env.UncoreMaxGHz {
		ghz = d.env.UncoreMaxGHz
	}
	ghz = msr.RatioToHz(msr.HzToRatio(ghz*1e9)) / 1e9
	if ghz == d.cur {
		return
	}
	if err := d.env.SetUncoreMax(ghz); err != nil {
		return
	}
	d.cur = ghz
}

// miss records a cycle whose counter sweep sensed nothing: hold the
// current limit while degraded, degrade to vendor default (pin max) on
// full loss, and drop the counter baseline so the first post-outage
// sweep re-baselines instead of computing deltas across the outage.
func (d *DUF) miss() {
	d.haveCtrs = false
	if d.health.Miss() == resilient.Lost {
		d.set(d.env.UncoreMaxGHz)
	}
}

// readIPS sweeps per-core instruction counters and returns aggregate
// instructions per second since the previous sweep. lost reports that
// every core's read failed — previously such a sweep fell through and
// returned an all-zero delta as a genuine (catastrophic) slowdown.
func (d *DUF) readIPS(now time.Duration) (ips float64, ok, lost bool) {
	var dInst uint64
	readAny := false
	for cpu := 0; cpu < d.env.CPUs; cpu++ {
		inst, err := d.env.Dev.Read(cpu, msr.FixedCtrInstRetired)
		if err != nil {
			continue
		}
		readAny = true
		if d.haveCtrs {
			dInst += inst - d.lastInst[cpu]
		}
		d.lastInst[cpu] = inst
	}
	if !readAny {
		return 0, false, true
	}
	elapsed := now - d.lastAt
	first := !d.haveCtrs
	d.haveCtrs = true
	d.lastAt = now
	if first || elapsed <= 0 {
		return 0, false, false
	}
	return float64(dInst) / elapsed.Seconds(), true, false
}

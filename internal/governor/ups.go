package governor

import (
	"fmt"
	"time"

	"github.com/spear-repro/magus/internal/msr"
	"github.com/spear-repro/magus/internal/resilient"
)

// UPSConfig parameterises the Uncore Power Scavenger reimplementation.
// The paper compared against UPS by reimplementing it from Gholkar et
// al. (SC '19), since no open-source version exists; we do the same.
type UPSConfig struct {
	// Interval is the sleep between decision cycles; InvocationTime is
	// the cost of one cycle (per-core MSR sweeps dominate: the paper
	// measures ≈0.3 s, §6.5). The effective decision period is their
	// sum (0.5 s).
	Interval       time.Duration
	InvocationTime time.Duration

	// DramPhaseDelta is the relative DRAM-power change that signals a
	// phase transition (reset to max and re-learn).
	DramPhaseDelta float64
	// DramSmoothing is the EMA coefficient applied to DRAM power
	// before phase detection; UPS smooths its signal, which is why it
	// scavenges *through* rapidly fluctuating phases instead of
	// treating every swing as a transition (§6.2, Figure 6).
	DramSmoothing float64
	// IPCDegrade is the tolerated relative IPC drop versus the phase
	// reference before UPS backs off.
	IPCDegrade float64
	// StepGHz is the per-cycle uncore frequency step (UPS scales
	// gradually, unlike MAGUS's direct min/max jumps — §6.1).
	StepGHz float64
	// ReprobeCycles is how many in-phase cycles UPS holds a learned
	// floor before re-exploring below it (UPScavenger periodically
	// rediscovers the operating point; this is what keeps it stepping
	// down through fluctuating phases — §6.2, Figure 6).
	ReprobeCycles int

	// Overhead model: cores kept busy during an invocation and extra
	// power drawn by cross-core MSR reads (IPIs wake idle cores).
	BusyCores  float64
	ExtraWatts float64
}

// DefaultUPSConfig returns the configuration used throughout the
// evaluation.
func DefaultUPSConfig() UPSConfig {
	return UPSConfig{
		Interval:       200 * time.Millisecond,
		InvocationTime: 300 * time.Millisecond,
		DramPhaseDelta: 0.35,
		DramSmoothing:  0.35,
		IPCDegrade:     0.16,
		StepGHz:        0.1,
		ReprobeCycles:  12,
		BusyCores:      1.0,
		ExtraWatts:     2.5,
	}
}

// UPS is the Uncore Power Scavenger baseline: it watches DRAM power for
// phase transitions and per-core IPC for performance damage, stepping
// the uncore limit down within a phase and resetting to max on phase
// change or IPC degradation.
type UPS struct {
	cfg UPSConfig
	env *Env

	cur        float64 // current uncore max limit (GHz)
	smoothDram float64 // EMA-filtered DRAM power
	haveSmooth bool
	refDramW   float64 // phase-reference DRAM power
	refIPC     float64 // phase-reference IPC
	floor      float64 // lowest frequency proven safe this phase
	sinceProbe int     // cycles since the floor was last raised
	havePhase  bool
	lastInst   []uint64
	lastCyc    []uint64
	haveCtrs   bool

	// health tracks the sensing path (RAPL + per-core counter sweeps)
	// through the shared healthy → degraded → lost state machine.
	health *resilient.Tracker

	// Stats for Table 2 / §6.5.
	invocations uint64
	msrReads    uint64
	msrWrites   uint64
	phaseResets uint64
}

// NewUPS returns a UPS governor with cfg (zero value fields take
// defaults).
func NewUPS(cfg UPSConfig) *UPS {
	def := DefaultUPSConfig()
	if cfg.Interval <= 0 {
		cfg.Interval = def.Interval
	}
	if cfg.InvocationTime <= 0 {
		cfg.InvocationTime = def.InvocationTime
	}
	if cfg.DramPhaseDelta <= 0 {
		cfg.DramPhaseDelta = def.DramPhaseDelta
	}
	if cfg.DramSmoothing <= 0 || cfg.DramSmoothing > 1 {
		cfg.DramSmoothing = def.DramSmoothing
	}
	if cfg.IPCDegrade <= 0 {
		cfg.IPCDegrade = def.IPCDegrade
	}
	if cfg.StepGHz <= 0 {
		cfg.StepGHz = def.StepGHz
	}
	if cfg.ReprobeCycles <= 0 {
		cfg.ReprobeCycles = def.ReprobeCycles
	}
	if cfg.BusyCores <= 0 {
		cfg.BusyCores = def.BusyCores
	}
	if cfg.ExtraWatts < 0 {
		cfg.ExtraWatts = def.ExtraWatts
	}
	return &UPS{cfg: cfg}
}

// Name implements Governor.
func (*UPS) Name() string { return "ups" }

// Interval implements Governor.
func (u *UPS) Interval() time.Duration { return u.cfg.Interval + u.cfg.InvocationTime }

// Attach implements Governor: start at the maximum uncore frequency.
func (u *UPS) Attach(env *Env) error {
	if err := env.Validate(); err != nil {
		return err
	}
	if env.RAPL == nil {
		return fmt.Errorf("governor: UPS requires a RAPL reader")
	}
	u.env = env
	u.cur = env.UncoreMaxGHz
	u.floor = env.UncoreMinGHz
	u.havePhase = false
	u.haveCtrs = false
	u.health = resilient.NewTracker(0)
	u.lastInst = make([]uint64, env.CPUs)
	u.lastCyc = make([]uint64, env.CPUs)
	if err := env.SetUncoreMax(u.cur); err != nil {
		return err
	}
	u.msrWrites += uint64(env.Sockets)
	return nil
}

// Stats returns invocation and MSR-access counters.
func (u *UPS) Stats() (invocations, msrReads, msrWrites, phaseResets uint64) {
	return u.invocations, u.msrReads, u.msrWrites, u.phaseResets
}

// SensorHealth reports the sensing path's health state.
func (u *UPS) SensorHealth() resilient.Health { return u.health.Health() }

// Resilience returns the sensing path's miss/recovery counters.
func (u *UPS) Resilience() resilient.Counters { return u.health.Counters() }

// CurrentMaxGHz returns the uncore limit UPS last requested.
func (u *UPS) CurrentMaxGHz() float64 { return u.cur }

// Invoke implements Governor: one UPS decision cycle.
func (u *UPS) Invoke(now time.Duration) time.Duration {
	u.invocations++
	// The invocation cost is dominated by sweeping three MSRs on every
	// core; charge it regardless of the decision taken.
	u.env.charge(u.cfg.InvocationTime, u.cfg.BusyCores, u.cfg.ExtraWatts)

	sample, err := u.env.RAPL.Sample(now)
	if err != nil {
		u.miss()
		return 0
	}
	// Only feed real measurements into the filter — the first RAPL
	// sample is a zero-power baseline.
	raw := sample.TotalDramW()
	if sample.Interval > 0 {
		if !u.haveSmooth {
			u.smoothDram = raw
			u.haveSmooth = true
		} else {
			u.smoothDram += u.cfg.DramSmoothing * (raw - u.smoothDram)
		}
	}
	dramW := u.smoothDram

	ipc, ok, lost := u.readIPC()
	if lost {
		// Every core's counter read failed: this cycle sensed nothing.
		u.miss()
		return 0
	}
	u.health.Good()
	if !ok {
		// First cycle (or partial counter failure): establish baselines
		// only.
		u.refDramW = dramW
		return 0
	}

	if !u.havePhase {
		u.havePhase = true
		u.refDramW = dramW
		u.refIPC = ipc
		return 0
	}

	// Phase-transition detection on DRAM power.
	ref := u.refDramW
	if ref < 1 {
		ref = 1
	}
	if delta := abs(dramW-u.refDramW) / ref; delta > u.cfg.DramPhaseDelta {
		u.phaseResets++
		u.refDramW = dramW
		u.refIPC = ipc
		u.floor = u.env.UncoreMinGHz
		u.setUncore(u.env.UncoreMaxGHz)
		return 0
	}

	// Within a phase: scavenge downward while IPC holds; periodically
	// drop the learned floor and re-explore.
	u.sinceProbe++
	if u.sinceProbe > u.cfg.ReprobeCycles && u.floor > u.env.UncoreMinGHz {
		u.floor = u.env.UncoreMinGHz
		u.sinceProbe = 0
	}
	switch {
	case ipc < u.refIPC*(1-u.cfg.IPCDegrade):
		// Performance damage: back off one step and raise the floor so
		// we stop probing below it.
		u.floor = u.cur + u.cfg.StepGHz
		if u.floor > u.env.UncoreMaxGHz {
			u.floor = u.env.UncoreMaxGHz
		}
		u.sinceProbe = 0
		u.setUncore(u.cur + u.cfg.StepGHz)
	case u.cur-u.cfg.StepGHz >= u.floor:
		u.setUncore(u.cur - u.cfg.StepGHz)
	}
	if ipc > u.refIPC {
		u.refIPC = ipc
	}
	return 0
}

// setUncore clamps to the hardware range, quantises to the MSR's
// 100 MHz ratio granularity and writes the uncore limit.
func (u *UPS) setUncore(ghz float64) {
	if ghz < u.env.UncoreMinGHz {
		ghz = u.env.UncoreMinGHz
	}
	if ghz > u.env.UncoreMaxGHz {
		ghz = u.env.UncoreMaxGHz
	}
	ghz = msr.RatioToHz(msr.HzToRatio(ghz*1e9)) / 1e9
	if ghz == u.cur {
		return
	}
	if err := u.env.SetUncoreMax(ghz); err != nil {
		return // leave cur unchanged; retry next cycle
	}
	u.msrWrites += uint64(u.env.Sockets)
	u.cur = ghz
}

// miss records a cycle whose sensing path produced nothing usable. The
// current limit is held while merely degraded; on full loss UPS
// degrades to vendor-default behaviour and pins the uncore at max. The
// learned references are dropped either way — when telemetry returns,
// counter deltas would span the outage and the phase baseline may
// describe a workload that no longer exists.
func (u *UPS) miss() {
	u.haveCtrs = false
	u.haveSmooth = false
	u.havePhase = false
	if u.health.Miss() == resilient.Lost {
		u.setUncore(u.env.UncoreMaxGHz)
	}
}

// readIPC sweeps every core's fixed counters and returns the aggregate
// IPC of cores that ran since the last sweep. lost reports that every
// core's read failed — the sweep sensed nothing at all.
func (u *UPS) readIPC() (ipc float64, ok, lost bool) {
	var dInst, dCyc uint64
	okAny := false
	readAny := false
	for cpu := 0; cpu < u.env.CPUs; cpu++ {
		inst, err1 := u.env.Dev.Read(cpu, msr.FixedCtrInstRetired)
		cyc, err2 := u.env.Dev.Read(cpu, msr.FixedCtrCPUCycles)
		u.msrReads += 2
		if err1 != nil || err2 != nil {
			continue
		}
		readAny = true
		if u.haveCtrs {
			di := inst - u.lastInst[cpu]
			dc := cyc - u.lastCyc[cpu]
			if dc > 1000 { // core actually ran
				dInst += di
				dCyc += dc
				okAny = true
			}
		}
		u.lastInst[cpu] = inst
		u.lastCyc[cpu] = cyc
	}
	if !readAny {
		return 0, false, true
	}
	first := !u.haveCtrs
	u.haveCtrs = true
	if first || !okAny || dCyc == 0 {
		return 0, false, false
	}
	return float64(dInst) / float64(dCyc), true, false
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

package msr

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUncoreLimitEncodeDecode(t *testing.T) {
	cases := []struct {
		maxGHz, minGHz float64
	}{
		{2.2, 0.8}, // Xeon Platinum 8380 range
		{2.5, 0.8}, // Xeon Max 9462 range
		{1.5, 0.8},
		{0.8, 0.8},
	}
	for _, c := range cases {
		v := EncodeUncoreLimit(c.maxGHz*1e9, c.minGHz*1e9)
		gotMax, gotMin := DecodeUncoreLimit(v)
		if gotMax != c.maxGHz*1e9 || gotMin != c.minGHz*1e9 {
			t.Errorf("roundtrip(%v,%v GHz) = %v,%v Hz", c.maxGHz, c.minGHz, gotMax, gotMin)
		}
	}
}

// The paper's §4 example: setting max uncore to 1.5 GHz writes ratio
// 0x0F into the low byte while preserving the min-ratio byte.
func TestPaperWrmsrExample(t *testing.T) {
	old := EncodeUncoreLimit(2.2e9, 0.8e9)
	v := WithUncoreMax(old, 1.5e9)
	if v&0x7F != 0x0F {
		t.Fatalf("max ratio bits = %#x, want 0x0F", v&0x7F)
	}
	_, minHz := DecodeUncoreLimit(v)
	if minHz != 0.8e9 {
		t.Fatalf("min bits disturbed: %v Hz", minHz)
	}
}

func TestHzToRatioClamp(t *testing.T) {
	if got := HzToRatio(-1e9); got != 0 {
		t.Fatalf("negative ratio = %d, want 0", got)
	}
	if got := HzToRatio(100e9); got != 0x7F {
		t.Fatalf("huge ratio = %d, want 127", got)
	}
	if got := HzToRatio(0.84e9); got != 8 {
		t.Fatalf("rounding: got %d, want 8", got)
	}
	if got := HzToRatio(0.86e9); got != 9 {
		t.Fatalf("rounding: got %d, want 9", got)
	}
}

// Property: encode/decode roundtrips exactly for any ratio pair in
// field range.
func TestUncoreLimitRoundtripProperty(t *testing.T) {
	prop := func(maxR, minR uint8) bool {
		maxHz := RatioToHz(int(maxR % 128))
		minHz := RatioToHz(int(minR % 128))
		gm, gn := DecodeUncoreLimit(EncodeUncoreLimit(maxHz, minHz))
		return gm == maxHz && gn == minHz
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: WithUncoreMax never disturbs bits outside the max field.
func TestWithUncoreMaxPreservesOtherBits(t *testing.T) {
	prop := func(old uint64, maxR uint8) bool {
		v := WithUncoreMax(old, RatioToHz(int(maxR%128)))
		return v&^uint64(0x7F) == old&^uint64(0x7F)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPowerUnitDefaults(t *testing.T) {
	v := EncodePowerUnit(DefaultPowerUnitExp, DefaultEnergyUnitExp, DefaultTimeUnitExp)
	w, j, s := DecodePowerUnit(v)
	if w != 0.125 {
		t.Fatalf("watt unit = %v, want 0.125", w)
	}
	if math.Abs(j-1.0/16384) > 1e-15 {
		t.Fatalf("joule unit = %v, want 2^-14", j)
	}
	if math.Abs(s-1.0/1024) > 1e-15 {
		t.Fatalf("second unit = %v, want 2^-10", s)
	}
}

func TestEnergyDelta(t *testing.T) {
	cases := []struct {
		prev, cur, want uint64
	}{
		{0, 100, 100},
		{100, 100, 0},
		{0xFFFFFFFF, 0, 1},         // exact wrap
		{0xFFFFFF00, 0x100, 0x200}, // wrap with remainder
		{42, 41, 0xFFFFFFFF},       // full-range wrap
	}
	for _, c := range cases {
		if got := EnergyDelta(c.prev, c.cur); got != c.want {
			t.Errorf("EnergyDelta(%#x,%#x) = %d, want %d", c.prev, c.cur, got, c.want)
		}
	}
}

// Property: accumulating any sequence of small deltas through a wrapping
// counter and recovering them via EnergyDelta preserves the total.
func TestEnergyDeltaWrapProperty(t *testing.T) {
	prop := func(deltas []uint32) bool {
		var counter uint64 = 0xFFFFFF00 // start near wrap
		prev := counter
		var recovered uint64
		var total uint64
		for _, d := range deltas {
			dd := uint64(d % 100000)
			total += dd
			counter = (counter + dd) & EnergyCounterMask
			recovered += EnergyDelta(prev, counter)
			prev = counter
		}
		return recovered == total
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPowerLimitEncodeDecode(t *testing.T) {
	wattUnit := 0.125
	v := EncodePowerLimit(270, wattUnit, true)
	w, en := DecodePowerLimit(v, wattUnit)
	if w != 270 || !en {
		t.Fatalf("roundtrip = %v,%v, want 270,true", w, en)
	}
	v = EncodePowerLimit(5000, wattUnit, false)
	w, en = DecodePowerLimit(v, wattUnit)
	if en {
		t.Fatal("enable bit set unexpectedly")
	}
	if w > 5000 {
		t.Fatalf("clamped power = %v exceeds request", w)
	}
}

package msr

import (
	"fmt"
	"sort"
)

// RegVal is one register's value inside a bank snapshot.
type RegVal struct {
	Reg uint32
	Val uint64
}

// BankState is one register bank, sorted by register address so the
// snapshot is deterministic (the live banks are maps).
type BankState struct {
	Regs []RegVal
}

// SpaceState is the full mutable state of a register space. The
// topology (sockets × cpus) is construction input, not state: a
// restore target must be built with the same shape.
type SpaceState struct {
	Pkg    []BankState // per socket
	Core   []BankState // per logical CPU
	Reads  uint64
	Writes uint64
	LimGen uint64
}

func bankState(bank map[uint32]uint64) BankState {
	b := BankState{Regs: make([]RegVal, 0, len(bank))}
	for reg, val := range bank {
		b.Regs = append(b.Regs, RegVal{Reg: reg, Val: val})
	}
	sort.Slice(b.Regs, func(i, j int) bool { return b.Regs[i].Reg < b.Regs[j].Reg })
	return b
}

// State captures every register bank plus the access counters and the
// limit-write generation.
func (s *Space) State() SpaceState {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SpaceState{
		Pkg:    make([]BankState, len(s.pkgRegs)),
		Core:   make([]BankState, len(s.coreRegs)),
		Reads:  s.reads,
		Writes: s.writes,
		LimGen: s.limGen.Load(),
	}
	for i, bank := range s.pkgRegs {
		st.Pkg[i] = bankState(bank)
	}
	for i, bank := range s.coreRegs {
		st.Core[i] = bankState(bank)
	}
	return st
}

// Restore overwrites every bank and counter from a snapshot taken on a
// space with the same topology.
func (s *Space) Restore(st SpaceState) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(st.Pkg) != len(s.pkgRegs) || len(st.Core) != len(s.coreRegs) {
		return fmt.Errorf("msr: restore topology %d pkg / %d core banks, space has %d / %d",
			len(st.Pkg), len(st.Core), len(s.pkgRegs), len(s.coreRegs))
	}
	for i, b := range st.Pkg {
		bank := make(map[uint32]uint64, len(b.Regs))
		for _, rv := range b.Regs {
			bank[rv.Reg] = rv.Val
		}
		s.pkgRegs[i] = bank
	}
	for i, b := range st.Core {
		bank := make(map[uint32]uint64, len(b.Regs))
		for _, rv := range b.Regs {
			bank[rv.Reg] = rv.Val
		}
		s.coreRegs[i] = bank
	}
	s.reads, s.writes = st.Reads, st.Writes
	s.limGen.Store(st.LimGen)
	return nil
}

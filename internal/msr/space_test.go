package msr

import (
	"errors"
	"sync"
	"testing"
)

func TestSpaceTopology(t *testing.T) {
	s := NewSpace(2, 40) // Intel+A100 topology: 2 × Xeon 8380
	if s.Sockets() != 2 || s.CPUs() != 80 {
		t.Fatalf("topology = %d sockets, %d cpus", s.Sockets(), s.CPUs())
	}
	if s.SocketOf(0) != 0 || s.SocketOf(39) != 0 || s.SocketOf(40) != 1 || s.SocketOf(79) != 1 {
		t.Fatal("SocketOf mapping wrong")
	}
	if s.FirstCPUOf(0) != 0 || s.FirstCPUOf(1) != 40 {
		t.Fatal("FirstCPUOf mapping wrong")
	}
}

func TestPackageScopeSharing(t *testing.T) {
	s := NewSpace(2, 4)
	// Write through cpu 1, read through cpu 3 (same socket).
	if err := s.Write(1, UncoreRatioLimit, 0x0F08); err != nil {
		t.Fatal(err)
	}
	v, err := s.Read(3, UncoreRatioLimit)
	if err != nil || v != 0x0F08 {
		t.Fatalf("same-socket read = %#x, %v", v, err)
	}
	// Other socket sees its own (zero) instance.
	v, err = s.Read(4, UncoreRatioLimit)
	if err != nil || v != 0 {
		t.Fatalf("cross-socket read = %#x, %v, want 0", v, err)
	}
}

func TestCoreScopeIsolation(t *testing.T) {
	s := NewSpace(1, 4)
	s.Poke(2, FixedCtrInstRetired, 12345)
	v, err := s.Read(2, FixedCtrInstRetired)
	if err != nil || v != 12345 {
		t.Fatalf("core read = %d, %v", v, err)
	}
	v, err = s.Read(3, FixedCtrInstRetired)
	if err != nil || v != 0 {
		t.Fatalf("neighbour core read = %d, %v, want 0", v, err)
	}
}

func TestReadOnlyRegisters(t *testing.T) {
	s := NewSpace(1, 2)
	for _, reg := range []uint32{PkgEnergyStatus, DramEnergyStatus, RaplPowerUnit, UncorePerfStatus, PkgPowerInfo} {
		if err := s.Write(0, reg, 1); !errors.Is(err, ErrReadOnly) {
			t.Errorf("write to %#x: err = %v, want ErrReadOnly", reg, err)
		}
	}
	// Hardware side may still set them.
	s.Poke(0, PkgEnergyStatus, 77)
	if v, _ := s.Read(0, PkgEnergyStatus); v != 77 {
		t.Fatalf("Poke'd value = %d, want 77", v)
	}
}

func TestDefaultRaplUnits(t *testing.T) {
	s := NewSpace(1, 1)
	v, err := s.Read(0, RaplPowerUnit)
	if err != nil {
		t.Fatal(err)
	}
	w, j, _ := DecodePowerUnit(v)
	if w != 0.125 || j != 1.0/16384 {
		t.Fatalf("default units = %v W, %v J", w, j)
	}
}

func TestBumpWrapsEnergyCounters(t *testing.T) {
	s := NewSpace(1, 1)
	s.Poke(0, PkgEnergyStatus, 0xFFFFFFF0)
	s.Bump(0, PkgEnergyStatus, 0x20)
	if v := s.Peek(0, PkgEnergyStatus); v != 0x10 {
		t.Fatalf("wrapped counter = %#x, want 0x10", v)
	}
	// Non-energy counters do not wrap at 32 bits.
	s.Poke(0, FixedCtrCPUCycles, 0xFFFFFFF0)
	s.Bump(0, FixedCtrCPUCycles, 0x20)
	if v := s.Peek(0, FixedCtrCPUCycles); v != 0x100000010 {
		t.Fatalf("cycle counter = %#x, want 0x100000010", v)
	}
}

func TestErrors(t *testing.T) {
	s := NewSpace(1, 2)
	if _, err := s.Read(5, UncoreRatioLimit); !errors.Is(err, ErrBadCPU) {
		t.Fatalf("bad cpu: %v", err)
	}
	if _, err := s.Read(0, 0xDEAD); !errors.Is(err, ErrUnknownReg) {
		t.Fatalf("unknown reg: %v", err)
	}
	if err := s.Write(-1, UncoreRatioLimit, 0); !errors.Is(err, ErrBadCPU) {
		t.Fatalf("bad cpu write: %v", err)
	}
}

func TestFaultInjection(t *testing.T) {
	s := NewSpace(1, 1)
	s.FailWrites(ErrInjected)
	if err := s.Write(0, UncoreRatioLimit, 1); !errors.Is(err, ErrInjected) {
		t.Fatalf("injected write fault: %v", err)
	}
	s.FailWrites(nil)
	if err := s.Write(0, UncoreRatioLimit, 1); err != nil {
		t.Fatalf("fault not cleared: %v", err)
	}
	s.FailReads(ErrInjected)
	if _, err := s.Read(0, UncoreRatioLimit); !errors.Is(err, ErrInjected) {
		t.Fatalf("injected read fault: %v", err)
	}
}

func TestAccessCounts(t *testing.T) {
	s := NewSpace(1, 4)
	for cpu := 0; cpu < 4; cpu++ {
		s.Read(cpu, FixedCtrInstRetired)
		s.Read(cpu, FixedCtrCPUCycles)
	}
	s.Write(0, UncoreRatioLimit, 5)
	r, w := s.AccessCounts()
	if r != 8 || w != 1 {
		t.Fatalf("counts = %d reads, %d writes", r, w)
	}
	// Pokes/Peeks and failed accesses are not counted.
	s.Poke(0, PkgEnergyStatus, 1)
	s.Peek(0, PkgEnergyStatus)
	s.Read(99, UncoreRatioLimit)
	r, w = s.AccessCounts()
	if r != 8 || w != 1 {
		t.Fatalf("counts after non-counting ops = %d, %d", r, w)
	}
	s.ResetAccessCounts()
	if r, w = s.AccessCounts(); r != 0 || w != 0 {
		t.Fatal("ResetAccessCounts did not zero")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewSpace(2, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cpu := g * 2
			for i := 0; i < 1000; i++ {
				s.Bump(cpu, FixedCtrInstRetired, 1)
				s.Read(cpu, FixedCtrInstRetired)
				s.Write(cpu, UncoreRatioLimit, uint64(i))
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < 8; g++ {
		if v := s.Peek(g*2, FixedCtrInstRetired); v != 1000 {
			t.Fatalf("cpu %d counter = %d, want 1000", g*2, v)
		}
	}
}

func TestNewSpacePanicsOnBadTopology(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSpace(0,0) did not panic")
		}
	}()
	NewSpace(0, 0)
}

func TestLimitGen(t *testing.T) {
	s := NewSpace(2, 4)
	g0 := s.LimitGen()

	// Writes and Pokes to the limit registers advance the generation.
	if err := s.Write(0, UncoreRatioLimit, EncodeUncoreLimit(2.2e9, 0.8e9)); err != nil {
		t.Fatal(err)
	}
	if g := s.LimitGen(); g != g0+1 {
		t.Fatalf("generation after limit write = %d, want %d", g, g0+1)
	}
	s.Poke(4, PkgPowerLimit, 42)
	if g := s.LimitGen(); g != g0+2 {
		t.Fatalf("generation after PL1 poke = %d, want %d", g, g0+2)
	}

	// Non-limit traffic must not advance it: a stale cache hit would
	// feed the node outdated limits.
	s.Poke(0, UncorePerfStatus, 18)
	s.Bump(0, PkgEnergyStatus, 100)
	if _, err := s.Read(0, UncoreRatioLimit); err != nil {
		t.Fatal(err)
	}
	if g := s.LimitGen(); g != g0+2 {
		t.Fatalf("generation moved to %d on non-limit traffic, want %d", g, g0+2)
	}

	// A rejected write (read-only register) must not advance it either.
	if err := s.Write(0, PkgEnergyStatus, 1); err == nil {
		t.Fatal("write to read-only register succeeded")
	}
	if g := s.LimitGen(); g != g0+2 {
		t.Fatalf("generation moved on rejected write: %d", g)
	}
}

func TestBumpEnergy(t *testing.T) {
	s := NewSpace(2, 4)
	s.BumpEnergy(0, 100, 40)
	s.BumpEnergy(0, 0, 0) // no-op
	s.BumpEnergy(4, 7, 0) // socket 1, dram untouched
	if v := s.Peek(0, PkgEnergyStatus); v != 100 {
		t.Fatalf("pkg energy = %d, want 100", v)
	}
	if v := s.Peek(0, DramEnergyStatus); v != 40 {
		t.Fatalf("dram energy = %d, want 40", v)
	}
	if v := s.Peek(4, PkgEnergyStatus); v != 7 {
		t.Fatalf("socket 1 pkg energy = %d, want 7", v)
	}
	if v := s.Peek(4, DramEnergyStatus); v != 0 {
		t.Fatalf("socket 1 dram energy = %d, want 0", v)
	}

	// Wrap at the 32-bit counter mask, exactly like Bump.
	s.Poke(0, PkgEnergyStatus, EnergyCounterMask)
	s.BumpEnergy(0, 2, 0)
	if v := s.Peek(0, PkgEnergyStatus); v != 1 {
		t.Fatalf("wrapped pkg energy = %d, want 1", v)
	}
}

package msr

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Device is the access interface both runtimes use. cpu addresses a
// logical CPU; registers with package scope may be read through any CPU
// belonging to the package, as on real hardware.
type Device interface {
	Read(cpu int, reg uint32) (uint64, error)
	Write(cpu int, reg uint32, val uint64) error
}

// Errors returned by Space (and used for failure injection in tests).
var (
	ErrBadCPU     = errors.New("msr: cpu index out of range")
	ErrUnknownReg = errors.New("msr: unknown register")
	ErrReadOnly   = errors.New("msr: register is read-only")
	ErrInjected   = errors.New("msr: injected fault")
)

// Scope classifies a register as per-core or per-package.
type Scope int

const (
	// PackageScope registers have one instance per socket.
	PackageScope Scope = iota
	// CoreScope registers have one instance per logical CPU.
	CoreScope
)

// scopeOf maps the modelled registers to their hardware scope.
func scopeOf(reg uint32) (Scope, bool) {
	switch reg {
	case UncoreRatioLimit, UncorePerfStatus, RaplPowerUnit,
		PkgEnergyStatus, PkgPowerLimit, PkgPowerInfo, DramEnergyStatus:
		return PackageScope, true
	case FixedCtrInstRetired, FixedCtrCPUCycles, Aperf, Mperf:
		return CoreScope, true
	}
	return 0, false
}

// readOnly reports registers that reject writes from software.
func readOnly(reg uint32) bool {
	switch reg {
	case UncorePerfStatus, RaplPowerUnit, PkgPowerInfo,
		PkgEnergyStatus, DramEnergyStatus:
		return true
	}
	return false
}

// Space is the simulated MSR register file for one node: one register
// bank per socket for package-scope registers and one per logical CPU
// for core-scope registers. It is safe for concurrent use.
//
// The simulator backing a node updates counters through the Poke/Bump
// methods (which bypass the read-only check, as hardware does); runtimes
// go through Read/Write.
type Space struct {
	mu          sync.Mutex
	sockets     int
	cpusPerSock int
	pkgRegs     []map[uint32]uint64 // per socket
	coreRegs    []map[uint32]uint64 // per cpu

	reads, writes uint64 // access counters for overhead accounting

	// limGen counts writes (Write or Poke) to the software-controlled
	// limit registers (UncoreRatioLimit, PkgPowerLimit). The node polls
	// it lock-free every step and only re-reads and re-decodes the
	// limits when the generation moved — limits change a few times per
	// second while steps happen a thousand times per second.
	limGen atomic.Uint64

	failRead  error // injected fault for Read
	failWrite error // injected fault for Write
}

// limitReg reports registers whose writes bump the limit generation.
func limitReg(reg uint32) bool {
	return reg == UncoreRatioLimit || reg == PkgPowerLimit
}

// NewSpace builds a register space for sockets × cpusPerSocket logical
// CPUs, with RAPL units and uncore limits initialised to defaults.
func NewSpace(sockets, cpusPerSocket int) *Space {
	if sockets <= 0 || cpusPerSocket <= 0 {
		panic(fmt.Sprintf("msr: invalid topology %d×%d", sockets, cpusPerSocket))
	}
	s := &Space{
		sockets:     sockets,
		cpusPerSock: cpusPerSocket,
		pkgRegs:     make([]map[uint32]uint64, sockets),
		coreRegs:    make([]map[uint32]uint64, sockets*cpusPerSocket),
	}
	for i := range s.pkgRegs {
		s.pkgRegs[i] = map[uint32]uint64{
			RaplPowerUnit: EncodePowerUnit(DefaultPowerUnitExp, DefaultEnergyUnitExp, DefaultTimeUnitExp),
		}
	}
	for i := range s.coreRegs {
		s.coreRegs[i] = make(map[uint32]uint64)
	}
	return s
}

// Sockets returns the socket count.
func (s *Space) Sockets() int { return s.sockets }

// CPUs returns the logical CPU count.
func (s *Space) CPUs() int { return s.sockets * s.cpusPerSock }

// SocketOf returns the socket owning a logical CPU.
func (s *Space) SocketOf(cpu int) int { return cpu / s.cpusPerSock }

// FirstCPUOf returns the first logical CPU of a socket — the CPU a
// runtime uses to address that package's MSRs (wrmsr -p N).
func (s *Space) FirstCPUOf(socket int) int { return socket * s.cpusPerSock }

// Read implements Device.
func (s *Space) Read(cpu int, reg uint32) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failRead != nil {
		return 0, s.failRead
	}
	bank, err := s.bank(cpu, reg)
	if err != nil {
		return 0, err
	}
	s.reads++
	return bank[reg], nil
}

// Write implements Device. Writes to read-only registers fail, as on
// real hardware.
func (s *Space) Write(cpu int, reg uint32, val uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failWrite != nil {
		return s.failWrite
	}
	if readOnly(reg) {
		return fmt.Errorf("%w: %#x", ErrReadOnly, reg)
	}
	bank, err := s.bank(cpu, reg)
	if err != nil {
		return err
	}
	s.writes++
	bank[reg] = val
	if limitReg(reg) {
		s.limGen.Add(1)
	}
	return nil
}

// Poke sets a register from the hardware side, bypassing the read-only
// check and access accounting. cpu selects the bank as in Read.
func (s *Space) Poke(cpu int, reg uint32, val uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	bank, err := s.bank(cpu, reg)
	if err != nil {
		panic(fmt.Sprintf("msr: Poke(%d, %#x): %v", cpu, reg, err))
	}
	bank[reg] = val
	if limitReg(reg) {
		s.limGen.Add(1)
	}
}

// LimitGen returns the current limit-write generation: it advances on
// every Write or Poke to UncoreRatioLimit or PkgPowerLimit. Readers
// that cache decoded limits invalidate on a generation change. Safe to
// call without holding any lock.
func (s *Space) LimitGen() uint64 { return s.limGen.Load() }

// Peek reads a register from the hardware side without accounting.
func (s *Space) Peek(cpu int, reg uint32) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	bank, err := s.bank(cpu, reg)
	if err != nil {
		panic(fmt.Sprintf("msr: Peek(%d, %#x): %v", cpu, reg, err))
	}
	return bank[reg]
}

// Bump adds delta to a counter register (hardware side), wrapping
// 32-bit energy-status counters at their modulus.
func (s *Space) Bump(cpu int, reg uint32, delta uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	bank, err := s.bank(cpu, reg)
	if err != nil {
		panic(fmt.Sprintf("msr: Bump(%d, %#x): %v", cpu, reg, err))
	}
	v := bank[reg] + delta
	if reg == PkgEnergyStatus || reg == DramEnergyStatus {
		v &= EnergyCounterMask
	}
	bank[reg] = v
}

// BumpEnergy adds deltas to both RAPL energy-status counters of cpu's
// package under a single lock acquisition — the node publishes package
// and DRAM energy every simulation step, and two Bump calls per socket
// per tick would double the lock traffic. Zero deltas are skipped
// without touching the lock.
func (s *Space) BumpEnergy(cpu int, pkgDelta, dramDelta uint64) {
	if pkgDelta == 0 && dramDelta == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	bank, err := s.bank(cpu, PkgEnergyStatus)
	if err != nil {
		panic(fmt.Sprintf("msr: BumpEnergy(%d): %v", cpu, err))
	}
	if pkgDelta != 0 {
		bank[PkgEnergyStatus] = (bank[PkgEnergyStatus] + pkgDelta) & EnergyCounterMask
	}
	if dramDelta != 0 {
		bank[DramEnergyStatus] = (bank[DramEnergyStatus] + dramDelta) & EnergyCounterMask
	}
}

// AccessCounts returns cumulative successful Read and Write counts.
func (s *Space) AccessCounts() (reads, writes uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reads, s.writes
}

// ResetAccessCounts zeroes the access counters.
func (s *Space) ResetAccessCounts() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reads, s.writes = 0, 0
}

// FailReads injects err into all subsequent Read calls (nil clears).
func (s *Space) FailReads(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failRead = err
}

// FailWrites injects err into all subsequent Write calls (nil clears).
func (s *Space) FailWrites(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failWrite = err
}

// bank resolves the register bank for (cpu, reg). Caller holds mu.
func (s *Space) bank(cpu int, reg uint32) (map[uint32]uint64, error) {
	if cpu < 0 || cpu >= s.CPUs() {
		return nil, fmt.Errorf("%w: %d", ErrBadCPU, cpu)
	}
	scope, ok := scopeOf(reg)
	if !ok {
		return nil, fmt.Errorf("%w: %#x", ErrUnknownReg, reg)
	}
	if scope == PackageScope {
		return s.pkgRegs[s.SocketOf(cpu)], nil
	}
	return s.coreRegs[cpu], nil
}

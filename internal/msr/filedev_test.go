package msr

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// fixtureDev builds a fake /dev/cpu tree with sparse msr "devices" big
// enough to address the modelled registers.
func fixtureDev(t *testing.T, cpus int) string {
	t.Helper()
	dir := t.TempDir()
	for cpu := 0; cpu < cpus; cpu++ {
		cpuDir := filepath.Join(dir, itoa(cpu))
		if err := os.MkdirAll(cpuDir, 0o755); err != nil {
			t.Fatal(err)
		}
		f, err := os.Create(filepath.Join(cpuDir, "msr"))
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Truncate(0x1000); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return dir
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestFileDeviceRoundtrip(t *testing.T) {
	dir := fixtureDev(t, 2)
	d := NewFileDevice(dir)
	defer d.Close()

	if !d.Available() {
		t.Fatal("fixture device not detected as available")
	}
	want := EncodeUncoreLimit(2.2e9, 0.8e9)
	if err := d.Write(1, UncoreRatioLimit, want); err != nil {
		t.Fatal(err)
	}
	got, err := d.Read(1, UncoreRatioLimit)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("roundtrip = %#x, want %#x", got, want)
	}
	// Verify on-disk little-endian layout at the register offset.
	raw, err := os.ReadFile(filepath.Join(dir, "1", "msr"))
	if err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint64(raw[UncoreRatioLimit:]); v != want {
		t.Fatalf("on-disk value = %#x, want %#x", v, want)
	}
}

func TestFileDeviceMissingCPU(t *testing.T) {
	dir := fixtureDev(t, 1)
	d := NewFileDevice(dir)
	defer d.Close()
	if _, err := d.Read(7, UncoreRatioLimit); err == nil {
		t.Fatal("read of missing cpu device succeeded")
	}
	if err := d.Write(7, UncoreRatioLimit, 1); err == nil {
		t.Fatal("write to missing cpu device succeeded")
	}
}

func TestFileDeviceUnavailable(t *testing.T) {
	d := NewFileDevice(filepath.Join(t.TempDir(), "nope"))
	if d.Available() {
		t.Fatal("empty dir reported available")
	}
}

func TestFileDeviceDefaultDir(t *testing.T) {
	d := NewFileDevice("")
	if d.Dir != "/dev/cpu" {
		t.Fatalf("default dir = %q", d.Dir)
	}
}

func TestFileDeviceHandleCaching(t *testing.T) {
	dir := fixtureDev(t, 1)
	d := NewFileDevice(dir)
	defer d.Close()
	for i := 0; i < 10; i++ {
		if _, err := d.Read(0, PkgEnergyStatus); err != nil {
			t.Fatal(err)
		}
	}
	if len(d.files) != 1 {
		t.Fatalf("cached %d handles, want 1", len(d.files))
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if len(d.files) != 0 {
		t.Fatal("Close did not clear the cache")
	}
}

package msr

import (
	"strings"
	"testing"
	"time"
)

func TestTraceDeviceRecordsAccesses(t *testing.T) {
	s := NewSpace(1, 2)
	var now time.Duration
	td := NewTraceDevice(s, func() time.Duration { return now }, 0)

	now = 100 * time.Millisecond
	td.Write(0, UncoreRatioLimit, 0x0F08)
	now = 200 * time.Millisecond
	td.Read(0, UncoreRatioLimit)
	td.Read(1, FixedCtrInstRetired)

	log := td.Log()
	if len(log) != 3 {
		t.Fatalf("log = %d entries", len(log))
	}
	if !log[0].Write || log[0].Value != 0x0F08 || log[0].At != 100*time.Millisecond {
		t.Fatalf("write entry: %+v", log[0])
	}
	if log[1].Write || log[1].Value != 0x0F08 {
		t.Fatalf("read entry: %+v", log[1])
	}
	writes := td.Writes(UncoreRatioLimit)
	if len(writes) != 1 {
		t.Fatalf("Writes = %d", len(writes))
	}
	if !strings.Contains(log[0].String(), "wrmsr -p 0 0x620") {
		t.Fatalf("String = %q", log[0].String())
	}
	td.Reset()
	if len(td.Log()) != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestTraceDeviceRecordsErrors(t *testing.T) {
	s := NewSpace(1, 1)
	td := NewTraceDevice(s, nil, 0)
	td.Read(9, UncoreRatioLimit) // bad cpu
	log := td.Log()
	if len(log) != 1 || log[0].Err == nil {
		t.Fatalf("error not recorded: %+v", log)
	}
	if !strings.Contains(log[0].String(), "!") {
		t.Fatalf("String = %q", log[0].String())
	}
}

func TestTraceDeviceBounded(t *testing.T) {
	s := NewSpace(1, 1)
	td := NewTraceDevice(s, nil, 10)
	for i := 0; i < 25; i++ {
		td.Write(0, UncoreRatioLimit, uint64(i))
	}
	log := td.Log()
	if len(log) != 10 {
		t.Fatalf("bounded log = %d", len(log))
	}
	if log[len(log)-1].Value != 24 || log[0].Value != 15 {
		t.Fatalf("kept wrong window: first %d last %d", log[0].Value, log[len(log)-1].Value)
	}
}

func TestTraceDeviceNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTraceDevice(nil) did not panic")
		}
	}()
	NewTraceDevice(nil, nil, 0)
}

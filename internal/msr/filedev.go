package msr

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"
)

// FileDevice accesses real MSRs through the Linux msr character devices
// (/dev/cpu/N/msr), the same interface the paper's C++ runtime and the
// wrmsr utility use. Reads and writes are 8-byte pread/pwrite at the
// register address. Requires the msr kernel module and root (or
// CAP_SYS_RAWIO); on machines without that access every call returns an
// error and callers fall back to the simulated Space.
//
// File handles are opened lazily per CPU and cached.
type FileDevice struct {
	// Dir is the msr device directory, default "/dev/cpu". Tests point
	// it at a fixture tree.
	Dir string

	mu    sync.Mutex
	files map[int]*os.File
}

// NewFileDevice returns a FileDevice rooted at dir (empty = /dev/cpu).
func NewFileDevice(dir string) *FileDevice {
	if dir == "" {
		dir = "/dev/cpu"
	}
	return &FileDevice{Dir: dir, files: make(map[int]*os.File)}
}

// Available reports whether the msr device for cpu0 exists (it does not
// check permissions).
func (d *FileDevice) Available() bool {
	_, err := os.Stat(fmt.Sprintf("%s/0/msr", d.Dir))
	return err == nil
}

func (d *FileDevice) file(cpu int) (*os.File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if f, ok := d.files[cpu]; ok {
		return f, nil
	}
	f, err := os.OpenFile(fmt.Sprintf("%s/%d/msr", d.Dir, cpu), os.O_RDWR, 0)
	if err != nil {
		// Retry read-only: monitoring-only deployments.
		f, err = os.Open(fmt.Sprintf("%s/%d/msr", d.Dir, cpu))
		if err != nil {
			return nil, fmt.Errorf("msr: open cpu %d: %w", cpu, err)
		}
	}
	d.files[cpu] = f
	return f, nil
}

// Read implements Device.
func (d *FileDevice) Read(cpu int, reg uint32) (uint64, error) {
	f, err := d.file(cpu)
	if err != nil {
		return 0, err
	}
	var buf [8]byte
	if _, err := f.ReadAt(buf[:], int64(reg)); err != nil {
		return 0, fmt.Errorf("msr: read cpu %d reg %#x: %w", cpu, reg, err)
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

// Write implements Device.
func (d *FileDevice) Write(cpu int, reg uint32, val uint64) error {
	f, err := d.file(cpu)
	if err != nil {
		return err
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], val)
	if _, err := f.WriteAt(buf[:], int64(reg)); err != nil {
		return fmt.Errorf("msr: write cpu %d reg %#x: %w", cpu, reg, err)
	}
	return nil
}

// Close releases all cached file handles.
func (d *FileDevice) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	var first error
	for cpu, f := range d.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
		delete(d.files, cpu)
	}
	return first
}

// Package msr models the Model-Specific Register interface that MAGUS
// and the UPS baseline drive on real hardware. It provides the register
// address map and bit-field encodings used by the paper (most
// importantly MSR_UNCORE_RATIO_LIMIT 0x620 and the RAPL energy
// counters), a thread-safe simulated register space with per-core and
// per-package scoping, and an optional backend that talks to the real
// /dev/cpu/*/msr character devices when present.
//
// The uncore ratio-limit encoding follows the example in §4 of the
// paper: `wrmsr -p 0 0x620 0x0F001200` sets the max ratio to 0x12 (18 ×
// 100 MHz = 1.8 GHz... the paper uses 1.5 GHz with ratio 0x0F in the low
// byte; see EncodeUncoreLimit for the exact layout) while leaving the
// minimum ratio bits untouched.
package msr

// Register addresses (Intel SDM volume 4, server uncore and RAPL
// domains). Only the registers the runtimes actually touch are defined.
const (
	// UncoreRatioLimit (MSR_UNCORE_RATIO_LIMIT) holds the maximum
	// uncore ratio in bits 6:0 and the minimum ratio in bits 14:8,
	// both in units of 100 MHz. Package scope.
	UncoreRatioLimit uint32 = 0x620

	// UncorePerfStatus (MSR_UNCORE_PERF_STATUS) reports the current
	// operating uncore ratio in bits 6:0. Read-only, package scope.
	UncorePerfStatus uint32 = 0x621

	// RaplPowerUnit (MSR_RAPL_POWER_UNIT): power units in bits 3:0
	// (W = 1/2^PU), energy units in bits 12:8 (J = 1/2^EU), time units
	// in bits 19:16. Package scope.
	RaplPowerUnit uint32 = 0x606

	// PkgEnergyStatus (MSR_PKG_ENERGY_STATUS): 32-bit wrapping counter
	// of package energy in energy units. Package scope.
	PkgEnergyStatus uint32 = 0x611

	// PkgPowerLimit (MSR_PKG_POWER_LIMIT): package power cap. Package
	// scope. Only the PL1 field (bits 14:0, power units) is modelled.
	PkgPowerLimit uint32 = 0x610

	// PkgPowerInfo (MSR_PKG_POWER_INFO): bits 14:0 hold the thermal
	// design power in power units. Read-only, package scope.
	PkgPowerInfo uint32 = 0x614

	// DramEnergyStatus (MSR_DRAM_ENERGY_STATUS): 32-bit wrapping
	// counter of DRAM energy in energy units. Package scope.
	DramEnergyStatus uint32 = 0x619

	// FixedCtrInstRetired (IA32_FIXED_CTR0): instructions retired.
	// Core scope. UPS reads this per core every interval.
	FixedCtrInstRetired uint32 = 0x309

	// FixedCtrCPUCycles (IA32_FIXED_CTR1): unhalted core cycles.
	// Core scope.
	FixedCtrCPUCycles uint32 = 0x30A

	// Aperf / Mperf (IA32_APERF / IA32_MPERF): actual / maximum
	// performance frequency clock counts; their ratio gives the
	// effective core frequency. Core scope.
	Aperf uint32 = 0xE8
	Mperf uint32 = 0xE7
)

// RatioUnitHz is the granularity of uncore ratio fields: 100 MHz.
const RatioUnitHz = 100e6

const (
	uncoreMaxShift = 0
	uncoreMinShift = 8
	uncoreMask     = 0x7F
)

// EncodeUncoreLimit packs max/min uncore frequencies (Hz) into the
// MSR_UNCORE_RATIO_LIMIT layout. Frequencies are rounded to the nearest
// 100 MHz ratio and clamped to the 7-bit field.
func EncodeUncoreLimit(maxHz, minHz float64) uint64 {
	return uint64(HzToRatio(maxHz))<<uncoreMaxShift |
		uint64(HzToRatio(minHz))<<uncoreMinShift
}

// DecodeUncoreLimit unpacks MSR_UNCORE_RATIO_LIMIT into max/min
// frequencies in Hz.
func DecodeUncoreLimit(v uint64) (maxHz, minHz float64) {
	maxHz = RatioToHz(int(v >> uncoreMaxShift & uncoreMask))
	minHz = RatioToHz(int(v >> uncoreMinShift & uncoreMask))
	return maxHz, minHz
}

// WithUncoreMax replaces only the max-ratio bits of an existing
// MSR_UNCORE_RATIO_LIMIT value, leaving the minimum bits unchanged —
// exactly what the paper's runtime does (§4).
func WithUncoreMax(old uint64, maxHz float64) uint64 {
	return old&^uint64(uncoreMask<<uncoreMaxShift) |
		uint64(HzToRatio(maxHz))<<uncoreMaxShift
}

// HzToRatio converts a frequency to a 100 MHz ratio, rounding to
// nearest and clamping to the 7-bit field range [0,127].
func HzToRatio(hz float64) int {
	r := int(hz/RatioUnitHz + 0.5)
	if r < 0 {
		r = 0
	}
	if r > uncoreMask {
		r = uncoreMask
	}
	return r
}

// RatioToHz converts a 100 MHz ratio to Hz.
func RatioToHz(ratio int) float64 { return float64(ratio) * RatioUnitHz }

// Default RAPL unit exponents (Sapphire Rapids / Ice Lake server
// defaults): power 1/8 W, energy 1/2^14 J ≈ 61 µJ, time 1/2^10 s.
const (
	DefaultPowerUnitExp  = 3
	DefaultEnergyUnitExp = 14
	DefaultTimeUnitExp   = 10
)

// EncodePowerUnit builds an MSR_RAPL_POWER_UNIT value from the three
// unit exponents.
func EncodePowerUnit(powerExp, energyExp, timeExp uint) uint64 {
	return uint64(powerExp&0xF) | uint64(energyExp&0x1F)<<8 | uint64(timeExp&0xF)<<16
}

// DecodePowerUnit returns the unit sizes in watts, joules and seconds
// encoded in an MSR_RAPL_POWER_UNIT value.
func DecodePowerUnit(v uint64) (wattUnit, jouleUnit, secondUnit float64) {
	pw := v & 0xF
	en := v >> 8 & 0x1F
	tm := v >> 16 & 0xF
	return 1 / float64(uint64(1)<<pw), 1 / float64(uint64(1)<<en), 1 / float64(uint64(1)<<tm)
}

// EnergyCounterMask is the wrapping modulus of RAPL energy-status
// counters (32 bits).
const EnergyCounterMask = 0xFFFFFFFF

// EnergyDelta computes the energy-unit delta between two reads of a
// 32-bit wrapping energy counter, handling a single wraparound.
func EnergyDelta(prev, cur uint64) uint64 {
	prev &= EnergyCounterMask
	cur &= EnergyCounterMask
	if cur >= prev {
		return cur - prev
	}
	return cur + (EnergyCounterMask + 1) - prev
}

// EncodePowerLimit packs a PL1 power cap (watts) into the
// MSR_PKG_POWER_LIMIT layout given a power-unit size; bit 15 is the
// enable bit.
func EncodePowerLimit(watts, wattUnit float64, enabled bool) uint64 {
	units := uint64(watts/wattUnit + 0.5)
	if units > 0x7FFF {
		units = 0x7FFF
	}
	v := units
	if enabled {
		v |= 1 << 15
	}
	return v
}

// DecodePowerLimit returns the PL1 cap in watts and its enable bit.
func DecodePowerLimit(v uint64, wattUnit float64) (watts float64, enabled bool) {
	return float64(v&0x7FFF) * wattUnit, v&(1<<15) != 0
}

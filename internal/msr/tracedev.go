package msr

import (
	"fmt"
	"sync"
	"time"
)

// Access is one recorded MSR operation.
type Access struct {
	At    time.Duration
	CPU   int
	Reg   uint32
	Value uint64
	Write bool
	Err   error
}

// String renders the access in wrmsr/rdmsr style.
func (a Access) String() string {
	op := "rdmsr"
	if a.Write {
		op = "wrmsr"
	}
	s := fmt.Sprintf("%8.3fs %s -p %d %#x %#x", a.At.Seconds(), op, a.CPU, a.Reg, a.Value)
	if a.Err != nil {
		s += " ! " + a.Err.Error()
	}
	return s
}

// TraceDevice wraps an msr.Device and records every access with a
// virtual timestamp — an audit log for debugging governor behaviour
// ("which register did the runtime touch, when, and what did it
// write?"). Safe for concurrent use.
type TraceDevice struct {
	dev Device
	now func() time.Duration

	mu  sync.Mutex
	log []Access
	cap int
}

// NewTraceDevice wraps dev; now supplies timestamps (e.g. the engine
// clock's Now). maxEntries bounds the log (0 = 64k entries); once full
// the oldest entries are dropped.
func NewTraceDevice(dev Device, now func() time.Duration, maxEntries int) *TraceDevice {
	if dev == nil {
		panic("msr: NewTraceDevice(nil)")
	}
	if now == nil {
		now = func() time.Duration { return 0 }
	}
	if maxEntries <= 0 {
		maxEntries = 1 << 16
	}
	return &TraceDevice{dev: dev, now: now, cap: maxEntries}
}

// Read implements Device.
func (t *TraceDevice) Read(cpu int, reg uint32) (uint64, error) {
	v, err := t.dev.Read(cpu, reg)
	t.append(Access{At: t.now(), CPU: cpu, Reg: reg, Value: v, Err: err})
	return v, err
}

// Write implements Device.
func (t *TraceDevice) Write(cpu int, reg uint32, val uint64) error {
	err := t.dev.Write(cpu, reg, val)
	t.append(Access{At: t.now(), CPU: cpu, Reg: reg, Value: val, Write: true, Err: err})
	return err
}

func (t *TraceDevice) append(a Access) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.log) >= t.cap {
		drop := len(t.log) - t.cap + 1
		t.log = append(t.log[:0], t.log[drop:]...)
	}
	t.log = append(t.log, a)
}

// Log returns a copy of the recorded accesses in order.
func (t *TraceDevice) Log() []Access {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Access(nil), t.log...)
}

// Writes returns only the recorded writes to reg.
func (t *TraceDevice) Writes(reg uint32) []Access {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Access
	for _, a := range t.log {
		if a.Write && a.Reg == reg {
			out = append(out, a)
		}
	}
	return out
}

// Reset clears the log.
func (t *TraceDevice) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.log = t.log[:0]
}

// Package prof wires runtime/pprof CPU and heap profile collection
// behind the -cpuprofile/-memprofile flags the magus binaries share.
// Profiles produced here are read with `go tool pprof`; docs/PERF.md
// documents the workflow.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profile collection. A non-empty cpuPath starts a CPU
// profile immediately; a non-empty memPath schedules a heap profile for
// collection time. The returned stop function finalises both — it must
// run before the process exits or the CPU profile is truncated. With
// both paths empty, Start is a no-op and stop returns nil.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			os.Remove(cpuPath)
			return nil, fmt.Errorf("start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("write %s: %w", cpuPath, err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			runtime.GC() // materialise up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				os.Remove(memPath)
				return fmt.Errorf("write %s: %w", memPath, err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("write %s: %w", memPath, err)
			}
		}
		return nil
	}, nil
}

package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
)

// Envelope layout, all integers big-endian:
//
//	offset  size  field
//	0       8     magic "MAGUSCKP"
//	8       4     format version
//	12      8     payload length
//	20      4     CRC-32 (IEEE) of the payload
//	24      n     payload: gob-encoded Data
//
// The version covers the payload schema: any change to the Data struct
// or to a package's State type that alters the wire bytes is a version
// bump, never a silent re-interpretation. Decode rejects unknown
// versions, truncation, trailing garbage and CRC mismatches with an
// error — a hostile or corrupted blob must never restore partially.

const (
	// Version is the current checkpoint format version.
	Version = 1

	magic      = "MAGUSCKP"
	headerSize = len(magic) + 4 + 8 + 4

	// MaxPayload caps the decoded payload size; a header advertising
	// more is corrupt by definition (real checkpoints are a few MB).
	MaxPayload = 64 << 20
)

// Encode serialises the checkpoint into the versioned envelope.
func Encode(d *Data) ([]byte, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(d); err != nil {
		return nil, fmt.Errorf("checkpoint: encode: %w", err)
	}
	if payload.Len() > MaxPayload {
		return nil, fmt.Errorf("checkpoint: payload %d bytes exceeds cap %d", payload.Len(), MaxPayload)
	}
	out := make([]byte, headerSize+payload.Len())
	copy(out, magic)
	binary.BigEndian.PutUint32(out[8:], Version)
	binary.BigEndian.PutUint64(out[12:], uint64(payload.Len()))
	binary.BigEndian.PutUint32(out[20:], crc32.ChecksumIEEE(payload.Bytes()))
	copy(out[headerSize:], payload.Bytes())
	return out, nil
}

// Decode parses and validates an envelope. Every failure mode —
// truncation, bad magic, unknown version, length or CRC mismatch,
// malformed gob, structurally invalid state — returns an error; Decode
// never panics and never returns partially restored data.
func Decode(b []byte) (d *Data, err error) {
	if len(b) < headerSize {
		return nil, fmt.Errorf("checkpoint: %d bytes, need at least the %d-byte header", len(b), headerSize)
	}
	if string(b[:len(magic)]) != magic {
		return nil, fmt.Errorf("checkpoint: bad magic")
	}
	if v := binary.BigEndian.Uint32(b[8:]); v != Version {
		return nil, fmt.Errorf("checkpoint: unsupported format version %d (this build reads %d)", v, Version)
	}
	n := binary.BigEndian.Uint64(b[12:])
	if n > MaxPayload {
		return nil, fmt.Errorf("checkpoint: advertised payload %d exceeds cap %d", n, MaxPayload)
	}
	payload := b[headerSize:]
	if uint64(len(payload)) != n {
		return nil, fmt.Errorf("checkpoint: payload is %d bytes, header says %d", len(payload), n)
	}
	if crc := crc32.ChecksumIEEE(payload); crc != binary.BigEndian.Uint32(b[20:]) {
		return nil, fmt.Errorf("checkpoint: CRC mismatch")
	}
	// gob panics on some malformed inputs instead of returning an
	// error; convert any panic into a decode error.
	defer func() {
		if r := recover(); r != nil {
			d, err = nil, fmt.Errorf("checkpoint: decode: %v", r)
		}
	}()
	var data Data
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&data); err != nil {
		return nil, fmt.Errorf("checkpoint: decode: %w", err)
	}
	if err := data.Validate(); err != nil {
		return nil, err
	}
	return &data, nil
}

package checkpoint_test

import (
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/spear-repro/magus/internal/checkpoint"
	"github.com/spear-repro/magus/internal/core"
	"github.com/spear-repro/magus/internal/faults"
	"github.com/spear-repro/magus/internal/harness"
	"github.com/spear-repro/magus/internal/node"
	"github.com/spear-repro/magus/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the golden checkpoint and fuzz corpus")

const goldenPath = "testdata/golden_v1.ckpt"

// goldenData builds the fixed scenario behind the committed golden
// checkpoint: MAGUS on Intel+A100 running gemm under the pcm-flaky
// fault preset, checkpointed 5 s in.
func goldenData(t *testing.T) *checkpoint.Data {
	t.Helper()
	prog, ok := workload.ByName("gemm")
	if !ok {
		t.Fatal("no gemm program")
	}
	plan, ok := faults.Preset("pcm-flaky")
	if !ok {
		t.Fatal("no pcm-flaky preset")
	}
	plan.Seed = 9
	d, err := harness.Checkpoint(node.IntelA100(), prog, core.New(core.DefaultConfig()),
		harness.Options{Seed: 9, Faults: plan, TraceInterval: 100 * time.Millisecond}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestGoldenCheckpoint pins the wire format: the committed golden blob
// must keep decoding under the current schema, and a resumed run from
// it must finish with the same result as the uninterrupted run. If a
// schema change breaks this test, the fix is a format Version bump (and
// a regenerated golden) — never a silent re-interpretation of old
// bytes.
func TestGoldenCheckpoint(t *testing.T) {
	if *update {
		blob, err := checkpoint.Encode(goldenData(t))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		writeFuzzCorpus(t, blob)
		return
	}
	blob, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/checkpoint -run Golden -update` to create)", err)
	}
	d, err := checkpoint.Decode(blob)
	if err != nil {
		t.Fatalf("golden checkpoint no longer decodes: %v\n"+
			"a Data/State schema change must bump checkpoint.Version and regenerate the golden", err)
	}
	if d.Program != "gemm" || d.GovName != core.New(core.DefaultConfig()).Name() {
		t.Fatalf("golden decoded to %s/%s, want gemm under MAGUS", d.Program, d.GovName)
	}

	// The golden must remain semantically resumable, not just parseable.
	prog, _ := workload.ByName("gemm")
	plan, _ := faults.Preset("pcm-flaky")
	plan.Seed = 9
	want, err := harness.Run(node.IntelA100(), prog, core.New(core.DefaultConfig()),
		harness.Options{Seed: 9, Faults: plan, TraceInterval: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	st, err := harness.Resume(d, harness.ResumeOptions{Gov: core.New(core.DefaultConfig())})
	if err != nil {
		t.Fatal(err)
	}
	for !st.Done() {
		if _, err := st.Advance(10 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	got := st.Result()
	got.Traces, want.Traces = nil, nil
	if got != want {
		t.Fatalf("golden resume diverged:\n got  %+v\n want %+v", got, want)
	}
}

// writeFuzzCorpus regenerates the committed seed corpus: the golden
// blob itself plus systematically corrupted variants of it, in the
// go-fuzz corpus file format.
func writeFuzzCorpus(t *testing.T, golden []byte) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", "FuzzCheckpointDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	mut := func(f func(b []byte)) []byte {
		b := append([]byte(nil), golden...)
		f(b)
		return b
	}
	seeds := map[string][]byte{
		"golden":        golden,
		"empty":         {},
		"short":         golden[:16],
		"header-only":   golden[:24],
		"bad-magic":     mut(func(b []byte) { b[0] = 'X' }),
		"bad-version":   mut(func(b []byte) { binary.BigEndian.PutUint32(b[8:], 999) }),
		"huge-length":   mut(func(b []byte) { binary.BigEndian.PutUint64(b[12:], 1 << 40) }),
		"bad-crc":       mut(func(b []byte) { b[20] ^= 0xff }),
		"flipped-gob":   mut(func(b []byte) { b[len(b)/2] ^= 0x55 }),
		"truncated-gob": golden[:len(golden)-len(golden)/3],
	}
	for name, b := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", b)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzCheckpointDecode pins Decode's hostile-input contract: corrupted,
// truncated or adversarial blobs must produce an error — never a panic
// and never a silently mis-restored Data. Anything that does decode
// must be structurally valid and survive a re-encode round trip.
func FuzzCheckpointDecode(f *testing.F) {
	if golden, err := os.ReadFile(goldenPath); err == nil {
		f.Add(golden)
		tr := append([]byte(nil), golden...)
		binary.BigEndian.PutUint32(tr[8:], 2)
		f.Add(tr)
	}
	f.Add([]byte{})
	f.Add([]byte("MAGUSCKP"))
	f.Add([]byte("MAGUSCKP\x00\x00\x00\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"))

	f.Fuzz(func(t *testing.T, b []byte) {
		d, err := checkpoint.Decode(b)
		if err != nil {
			if d != nil {
				t.Fatal("Decode returned data alongside an error")
			}
			return
		}
		// A successful decode must yield a blob that validates and
		// re-encodes; Encode runs Validate internally.
		blob, err := checkpoint.Encode(d)
		if err != nil {
			t.Fatalf("decoded checkpoint fails re-encode: %v", err)
		}
		d2, err := checkpoint.Decode(blob)
		if err != nil {
			t.Fatalf("re-encoded checkpoint fails decode: %v", err)
		}
		if d2.Program != d.Program || d2.GovName != d.GovName || d2.Engine.Now != d.Engine.Now {
			t.Fatal("round trip changed checkpoint identity")
		}
	})
}

// TestFuzzCorpusCommitted guards against the seed corpus silently
// disappearing: the committed files must exist and each must hit the
// documented outcome (golden decodes, every corruption errors).
func TestFuzzCorpusCommitted(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzCheckpointDecode")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/checkpoint -run Golden -update` to create)", err)
	}
	if len(entries) < 8 {
		t.Fatalf("seed corpus has %d entries, want >= 8", len(entries))
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		var b []byte
		if _, err := fmt.Sscanf(string(raw), "go test fuzz v1\n[]byte(%q)\n", &b); err != nil {
			t.Fatalf("%s: not a v1 corpus file: %v", e.Name(), err)
		}
		_, decErr := checkpoint.Decode(b)
		if bytes.Equal(b, golden) {
			if decErr != nil {
				t.Errorf("%s: golden seed fails to decode: %v", e.Name(), decErr)
			}
		} else if decErr == nil {
			t.Errorf("%s: corrupted seed decoded without error", e.Name())
		}
	}
}

// Package checkpoint defines the deterministic snapshot of a complete
// harness run — node, devices, governor, workload cursor, telemetry,
// observability and span state — together with a versioned,
// self-describing binary encoding. A checkpoint captured at virtual
// time T and resumed through harness.Resume produces a run whose
// records, metrics, event streams and spans are byte-identical to the
// same run executed uninterrupted (pinned by the harness differential
// tests).
//
// Two design rules keep that guarantee simple:
//
//   - Construction inputs are recorded as identity (node config,
//     program name, seed, fault plan, option subset); a resume rebuilds
//     the full wiring exactly as the original construction did, then
//     overwrites every piece of mutable state wholesale. Anything the
//     construction reproduces deterministically (RAPL joule units, MSR
//     power-unit registers, injector creation order) therefore never
//     needs to be serialised.
//   - RNG streams are captured as (seed, draws) positions of counting
//     sources (internal/detrand), not as opaque generator states: a
//     restore re-seeds and discards exactly draws values, which is
//     bit-exact for math/rand's generator and keeps the encoding
//     self-describing.
//
// The state structs deliberately contain no maps — map iteration order
// would make the gob encoding nondeterministic — so every map in the
// live objects is flattened into a canonically sorted slice by the
// owning package's State() method.
package checkpoint

import (
	"fmt"
	"time"

	"github.com/spear-repro/magus/internal/core"
	"github.com/spear-repro/magus/internal/faults"
	"github.com/spear-repro/magus/internal/governor"
	"github.com/spear-repro/magus/internal/node"
	"github.com/spear-repro/magus/internal/obs"
	"github.com/spear-repro/magus/internal/pcm"
	"github.com/spear-repro/magus/internal/rapl"
	"github.com/spear-repro/magus/internal/sim"
	"github.com/spear-repro/magus/internal/spans"
	"github.com/spear-repro/magus/internal/telemetry"
	"github.com/spear-repro/magus/internal/workload"
)

// RunObserverState is the harness's metrics-sampling component state:
// the next sample deadline, the last published health, each cumulative
// counter delta's high-water mark (in registration order) and the last
// fault tally folded into the registry.
type RunObserverState struct {
	Next       time.Duration
	LastHealth int
	DeltaLast  []uint64
	LastTally  faults.Tally
}

// DecisionObserverState is the harness's decision-hook state: the
// previous decision's timestamp, trend, phase and health, used for
// edge-triggered events and the period histogram.
type DecisionObserverState struct {
	HavePrev   bool
	PrevAt     time.Duration
	PrevTrend  int
	PrevPhase  int
	PrevHealth int
}

// Data is one run's complete snapshot. Exactly one governor payload
// field is set, matching GovName; optional subsystems (faults,
// telemetry, observability, spans) are nil when the run was built
// without them.
type Data struct {
	// Identity: what to rebuild before restoring state.
	System  node.Config
	Program string
	GovName string

	// Option subset the original run was built with. Horizon is the
	// resolved safety horizon, not the possibly-zero option.
	Seed          int64
	Step          time.Duration
	TraceInterval time.Duration
	Horizon       time.Duration
	ObsInterval   time.Duration
	Faults        *faults.Plan
	HasObs        bool

	// Engine, node and device state.
	Engine   sim.State
	Node     node.State
	Runner   workload.RunnerState
	FaultSet *faults.SetState
	SysPCM   pcm.State
	SockPCM  []pcm.State
	RAPL     *rapl.State

	// Governor payload, discriminated by the concrete type behind
	// GovName. Shadow carries the env's uncore-limit cache for
	// stateless governors (vendor default, static pins).
	Magus     *core.State
	PerSocket *core.PerSocketState
	UPS       *governor.UPSState
	DUF       *governor.DUFState
	Shadow    []governor.ShadowEntry

	// Telemetry and observability.
	Recorder    *telemetry.State
	Registry    []obs.InstrumentState
	EventCount  uint64
	Health      int
	RunObs      *RunObserverState
	DecisionObs *DecisionObserverState

	// Decision-causality spans.
	Tracer        *spans.TracerState
	SpanLastPhase string
}

// Validate performs the structural checks that do not need the rebuilt
// wiring: a decoded checkpoint either passes or is rejected before any
// restore begins. Resume performs the deeper cross-checks (topology,
// seeds, window sizes) against the freshly built run.
func (d *Data) Validate() error {
	if d == nil {
		return fmt.Errorf("checkpoint: nil data")
	}
	if err := d.System.Validate(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if d.Program == "" {
		return fmt.Errorf("checkpoint: no program name")
	}
	if _, ok := workload.ByName(d.Program); !ok {
		return fmt.Errorf("checkpoint: unknown program %q", d.Program)
	}
	if d.GovName == "" {
		return fmt.Errorf("checkpoint: no governor name")
	}
	govPayloads := 0
	for _, set := range []bool{d.Magus != nil, d.PerSocket != nil, d.UPS != nil, d.DUF != nil} {
		if set {
			govPayloads++
		}
	}
	if govPayloads > 1 {
		return fmt.Errorf("checkpoint: %d governor payloads set", govPayloads)
	}
	if d.Engine.Now < 0 || d.Engine.Now > d.Horizon {
		return fmt.Errorf("checkpoint: clock %v outside [0, %v]", d.Engine.Now, d.Horizon)
	}
	if len(d.Engine.TaskNext) != 1 {
		return fmt.Errorf("checkpoint: %d engine tasks, harness runs schedule exactly 1", len(d.Engine.TaskNext))
	}
	if d.Faults != nil {
		if err := d.Faults.Validate(); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
	}
	if (d.Faults == nil) != (d.FaultSet == nil) {
		return fmt.Errorf("checkpoint: fault plan and fault state presence disagree")
	}
	if len(d.SockPCM) != d.System.Sockets {
		return fmt.Errorf("checkpoint: %d socket PCM states for %d sockets", len(d.SockPCM), d.System.Sockets)
	}
	if (d.TraceInterval > 0) != (d.Recorder != nil) {
		return fmt.Errorf("checkpoint: trace interval and recorder presence disagree")
	}
	if !d.HasObs && (len(d.Registry) > 0 || d.RunObs != nil || d.DecisionObs != nil) {
		return fmt.Errorf("checkpoint: observer state present without an observer")
	}
	if d.HasObs && d.RunObs == nil {
		return fmt.Errorf("checkpoint: observer armed but no sampler state")
	}
	return nil
}

package pcm

import "time"

// State is a monitor's mutable state. The traffic counter and noise
// hook are construction inputs, not state.
type State struct {
	LastGB      float64
	LastAt      time.Duration
	Started     bool
	Invocations uint64
}

// State captures the monitor's baseline and invocation counter.
func (m *Monitor) State() State {
	return State{
		LastGB:      m.lastGB,
		LastAt:      m.lastAt,
		Started:     m.started,
		Invocations: m.invocations,
	}
}

// Restore overwrites the monitor's baseline and invocation counter.
func (m *Monitor) Restore(st State) {
	m.lastGB = st.LastGB
	m.lastAt = st.LastAt
	m.started = st.Started
	m.invocations = st.Invocations
}

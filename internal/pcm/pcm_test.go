package pcm

import (
	"testing"
	"time"
)

func TestThroughputFromDeltas(t *testing.T) {
	var served float64
	m := New(func() float64 { return served })

	if gbs, err := m.SystemMemoryThroughput(0); err != nil || gbs != 0 {
		t.Fatalf("baseline read = %v, %v", gbs, err)
	}
	served = 20 // 20 GB over 0.2 s -> 100 GB/s
	gbs, err := m.SystemMemoryThroughput(200 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if gbs < 99.9 || gbs > 100.1 {
		t.Fatalf("throughput = %v, want 100", gbs)
	}
	served = 25 // 5 GB over 0.3 s
	gbs, err = m.SystemMemoryThroughput(500 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if gbs < 16.5 || gbs > 16.8 {
		t.Fatalf("throughput = %v, want ≈16.67", gbs)
	}
	if m.Invocations() != 3 {
		t.Fatalf("invocations = %d, want 3", m.Invocations())
	}
}

func TestZeroIntervalSafe(t *testing.T) {
	var served float64
	m := New(func() float64 { return served })
	m.SystemMemoryThroughput(time.Second)
	served = 10
	gbs, err := m.SystemMemoryThroughput(time.Second)
	if err != nil || gbs != 0 {
		t.Fatalf("zero-interval read = %v, %v", gbs, err)
	}
}

func TestBackwardsCounterErrors(t *testing.T) {
	served := 100.0
	m := New(func() float64 { return served })
	m.SystemMemoryThroughput(0)
	served = 50
	if _, err := m.SystemMemoryThroughput(time.Second); err == nil {
		t.Fatal("backwards counter accepted")
	}
}

func TestNoiseInjection(t *testing.T) {
	var served float64
	m := New(func() float64 { return served })
	m.SetNoise(func(gbs float64) float64 { return gbs - 1000 })
	m.SystemMemoryThroughput(0)
	served = 10
	gbs, err := m.SystemMemoryThroughput(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if gbs != 0 {
		t.Fatalf("noisy reading = %v, want clamped to 0", gbs)
	}
	m.SetNoise(func(gbs float64) float64 { return gbs * 2 })
	served = 20
	gbs, _ = m.SystemMemoryThroughput(2 * time.Second)
	if gbs != 20 {
		t.Fatalf("scaled reading = %v, want 20", gbs)
	}
}

func TestNilCounterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(nil) did not panic")
		}
	}()
	New(nil)
}

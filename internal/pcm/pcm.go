// Package pcm models the slice of Intel's Performance Counter Monitor
// API that MAGUS consumes: system memory throughput derived from
// integrated-memory-controller traffic counters. This is the *single*
// hardware signal MAGUS reads (§3), chosen because one system-level
// counter read is dramatically cheaper than per-core MSR sweeps.
//
// The monitor computes throughput as the traffic-counter delta over the
// elapsed interval, exactly as PCM's uncore counter facility does. An
// optional noise hook lets tests inject measurement jitter.
package pcm

import (
	"fmt"
	"time"
)

// Reader is the throughput read surface governors consume. *Monitor
// implements it; the fault-injection layer wraps one Reader in another,
// so consumers never know whether a fault plan is armed.
type Reader interface {
	SystemMemoryThroughput(now time.Duration) (float64, error)
}

// TrafficCounter supplies cumulative served memory traffic in GB — on
// hardware, the sum of IMC read+write CAS counters scaled to bytes; in
// this repo, the node simulator's ServedGB.
type TrafficCounter func() float64

// Monitor converts a traffic counter into interval throughput readings.
type Monitor struct {
	counter TrafficCounter
	noise   func(gbs float64) float64

	lastGB  float64
	lastAt  time.Duration
	started bool

	invocations uint64
}

// New builds a monitor over the given counter.
func New(counter TrafficCounter) *Monitor {
	if counter == nil {
		panic("pcm: nil traffic counter")
	}
	return &Monitor{counter: counter}
}

// SetNoise installs a measurement-noise transform applied to every
// reading (nil clears). Used for failure-injection tests.
func (m *Monitor) SetNoise(fn func(gbs float64) float64) { m.noise = fn }

// Invocations returns how many throughput readings were taken —
// overhead accounting for Table 2.
func (m *Monitor) Invocations() uint64 { return m.invocations }

// SystemMemoryThroughput returns the average memory throughput in GB/s
// since the previous call. The first call establishes a baseline and
// returns zero. A zero-length interval also returns zero rather than
// dividing by zero.
func (m *Monitor) SystemMemoryThroughput(now time.Duration) (float64, error) {
	cur := m.counter()
	if cur+1e-9 < m.lastGB {
		return 0, fmt.Errorf("pcm: traffic counter went backwards (%v -> %v)", m.lastGB, cur)
	}
	defer func() {
		m.lastGB = cur
		m.lastAt = now
		m.started = true
		m.invocations++
	}()
	if !m.started || now <= m.lastAt {
		return 0, nil
	}
	gbs := (cur - m.lastGB) / (now - m.lastAt).Seconds()
	if m.noise != nil {
		gbs = m.noise(gbs)
		if gbs < 0 {
			gbs = 0
		}
	}
	return gbs, nil
}

package node

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/spear-repro/magus/internal/msr"
	"github.com/spear-repro/magus/internal/workload"
)

func stepFor(n *Node, d time.Duration) {
	dt := time.Millisecond
	for t := time.Duration(0); t < d; t += dt {
		n.Step(t, dt)
	}
}

func TestPresetsValidate(t *testing.T) {
	for _, cfg := range []Config{IntelA100(), Intel4A100(), IntelMax1550()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
	if got := IntelA100().SystemBWGBs(); got != 400 {
		t.Errorf("Intel+A100 system BW = %v, want 400", got)
	}
	if got := Intel4A100().GPUs; len(got) != 4 {
		t.Errorf("Intel+4A100 has %d GPUs", len(got))
	}
}

func TestBWAt(t *testing.T) {
	cfg := IntelA100()
	if got := cfg.BWAt(cfg.UncoreMaxGHz); got != cfg.BWPerSocketGBs {
		t.Fatalf("BW at max uncore = %v", got)
	}
	low := cfg.BWAt(cfg.UncoreMinGHz)
	if low >= cfg.BWPerSocketGBs || low <= cfg.BWFloorFrac*cfg.BWPerSocketGBs {
		t.Fatalf("BW at min uncore = %v", low)
	}
	if cfg.BWAt(-1) != cfg.BWFloorFrac*cfg.BWPerSocketGBs {
		t.Fatal("BW below zero not clamped to floor")
	}
	if cfg.BWAt(99) != cfg.BWPerSocketGBs {
		t.Fatal("BW above max not clamped")
	}
}

func TestIdleNodeState(t *testing.T) {
	n := New(IntelA100())
	stepFor(n, 200*time.Millisecond)
	// Uncore follows the vendor-default limit: max.
	for s := 0; s < 2; s++ {
		if f := n.UncoreFreqGHz(s); f < 2.19 {
			t.Fatalf("idle uncore socket %d = %v, want ≈2.2", s, f)
		}
	}
	// Idle power: core idle + uncore at max, both sockets, plus DRAM.
	cpu := n.CPUPowerW()
	if cpu < 100 || cpu > 220 {
		t.Fatalf("idle CPU power = %v W, want O(100–220)", cpu)
	}
	if n.AttainedGBs() != 0 {
		t.Fatalf("idle attained = %v", n.AttainedGBs())
	}
	// GPU idles near its floor.
	if p := n.GPUPowerW(0); p < 29 || p > 35 {
		t.Fatalf("idle GPU power = %v, want ≈30", p)
	}
}

func TestUncoreLimitWriteTakesEffect(t *testing.T) {
	n := New(IntelA100())
	stepFor(n, 100*time.Millisecond)
	highPower := n.CPUPowerW()

	dev := n.MSRDevice()
	for s := 0; s < 2; s++ {
		cpu0 := n.Space().FirstCPUOf(s)
		old, err := dev.Read(cpu0, msr.UncoreRatioLimit)
		if err != nil {
			t.Fatal(err)
		}
		if err := dev.Write(cpu0, msr.UncoreRatioLimit, msr.WithUncoreMax(old, 0.8e9)); err != nil {
			t.Fatal(err)
		}
	}
	stepFor(n, 100*time.Millisecond)
	for s := 0; s < 2; s++ {
		if f := n.UncoreFreqGHz(s); f > 0.85 {
			t.Fatalf("uncore socket %d = %v after limit write, want ≈0.8", s, f)
		}
	}
	lowPower := n.CPUPowerW()
	// Two sockets dropping their uncore dynamic power: the Figure 2
	// swing (≈82 W) within generous bounds.
	if d := highPower - lowPower; d < 60 || d > 110 {
		t.Fatalf("uncore power swing = %v W, want ≈80", d)
	}
	// Status register tracks the effective frequency.
	st := n.Space().Peek(0, msr.UncorePerfStatus)
	if st != 8 {
		t.Fatalf("UncorePerfStatus ratio = %d, want 8", st)
	}
}

func TestUncoreSlewIsGradual(t *testing.T) {
	n := New(IntelA100())
	stepFor(n, 50*time.Millisecond)
	dev := n.MSRDevice()
	old, _ := dev.Read(0, msr.UncoreRatioLimit)
	dev.Write(0, msr.UncoreRatioLimit, msr.WithUncoreMax(old, 0.8e9))
	n.Step(0, time.Millisecond)
	if f := n.UncoreFreqGHz(0); f < 1.5 {
		t.Fatalf("uncore jumped instantly to %v", f)
	}
}

func TestMemoryServiceClipping(t *testing.T) {
	n := New(IntelA100())
	n.SetDemand(workload.Demand{MemGBs: 380, MemBoundFrac: 1})
	stepFor(n, 100*time.Millisecond)
	if att := n.AttainedGBs(); att < 379 || att > 380.5 {
		t.Fatalf("attained at max uncore = %v, want ≈380", att)
	}
	// Clamp uncore to min: service drops to BW(0.8)·2 ≈ 183.
	dev := n.MSRDevice()
	for s := 0; s < 2; s++ {
		cpu0 := n.Space().FirstCPUOf(s)
		old, _ := dev.Read(cpu0, msr.UncoreRatioLimit)
		dev.Write(cpu0, msr.UncoreRatioLimit, msr.WithUncoreMax(old, 0.8e9))
	}
	stepFor(n, 100*time.Millisecond)
	cfg := n.Config()
	wantBW := 2 * cfg.BWAt(cfg.UncoreMinGHz)
	if att := n.AttainedGBs(); att < wantBW*0.98 || att > wantBW*1.02 {
		t.Fatalf("attained at min uncore = %v, want ≈%v", att, wantBW)
	}
	// ServedGB integrates.
	if n.ServedGB() <= 0 {
		t.Fatal("ServedGB did not accumulate")
	}
}

func TestRaplCountersMatchAccumulators(t *testing.T) {
	n := New(IntelA100())
	n.SetDemand(workload.Demand{MemGBs: 100, CPUBusyCores: 8})
	stepFor(n, 2*time.Second)
	pkgJ, drmJ, _ := n.EnergyJ()

	var ctrPkg, ctrDrm float64
	for s := 0; s < 2; s++ {
		cpu0 := n.Space().FirstCPUOf(s)
		unit := 1.0 / 16384
		ctrPkg += float64(n.Space().Peek(cpu0, msr.PkgEnergyStatus)) * unit
		ctrDrm += float64(n.Space().Peek(cpu0, msr.DramEnergyStatus)) * unit
	}
	if diff := pkgJ - ctrPkg; diff < 0 || diff > 0.01 {
		t.Fatalf("pkg energy: accumulator %v vs counter %v", pkgJ, ctrPkg)
	}
	if diff := drmJ - ctrDrm; diff < 0 || diff > 0.01 {
		t.Fatalf("dram energy: accumulator %v vs counter %v", drmJ, ctrDrm)
	}
	// Sanity: ≈2 s at >100 W means hundreds of joules.
	if pkgJ < 150 {
		t.Fatalf("pkg energy = %v J after 2 s", pkgJ)
	}
}

func TestTDPClampEngagesUnderExtremeLoad(t *testing.T) {
	cfg := IntelA100()
	cfg.TDPWatts = 120 // artificially low so the clamp must engage
	n := New(cfg)
	n.SetDemand(workload.Demand{CPUBusyCores: 80, MemGBs: 350, MemBoundFrac: 0.5})
	stepFor(n, 3*time.Second)
	if f := n.UncoreFreqGHz(0); f > 1.8 {
		t.Fatalf("uncore = %v GHz under TDP pressure, want backed off", f)
	}
}

func TestTDPClampStaysIdleForGPUWorkloads(t *testing.T) {
	// The paper's core observation: GPU-dominant workloads never get
	// near TDP, so the default behaviour leaves uncore at max.
	n := New(IntelA100())
	n.SetDemand(workload.Demand{CPUBusyCores: 10, MemGBs: 150, MemBoundFrac: 0.5, GPUSMUtil: 0.9})
	stepFor(n, 3*time.Second)
	if f := n.UncoreFreqGHz(0); f < 2.19 {
		t.Fatalf("uncore = %v GHz, want pinned at 2.2 (no TDP pressure)", f)
	}
	if p := n.PkgPowerW(0); p > 0.9*n.Config().TDPWatts {
		t.Fatalf("GPU workload pkg power %v W too close to TDP %v", p, n.Config().TDPWatts)
	}
}

func TestFixedCountersAndIPC(t *testing.T) {
	n := New(IntelA100())
	n.SetDemand(workload.Demand{CPUBusyCores: 4, MemGBs: 100, MemBoundFrac: 0.5})
	stepFor(n, time.Second)
	dev := n.MSRDevice()
	inst, err := dev.Read(0, msr.FixedCtrInstRetired)
	if err != nil {
		t.Fatal(err)
	}
	cyc, err := dev.Read(0, msr.FixedCtrCPUCycles)
	if err != nil {
		t.Fatal(err)
	}
	if inst == 0 || cyc == 0 {
		t.Fatal("busy core counters did not advance")
	}
	ipc := float64(inst) / float64(cyc)
	if ipc < 1.8 || ipc > 2.05 {
		t.Fatalf("full-service IPC = %v, want ≈2", ipc)
	}
	// An idle core holds at zero.
	instIdle, _ := dev.Read(39, msr.FixedCtrInstRetired)
	if instIdle != 0 {
		t.Fatalf("idle core instructions = %d", instIdle)
	}
}

func TestIPCDropsUnderStarvation(t *testing.T) {
	n := New(IntelA100())
	dev := n.MSRDevice()
	for s := 0; s < 2; s++ {
		cpu0 := n.Space().FirstCPUOf(s)
		old, _ := dev.Read(cpu0, msr.UncoreRatioLimit)
		dev.Write(cpu0, msr.UncoreRatioLimit, msr.WithUncoreMax(old, 0.8e9))
	}
	n.SetDemand(workload.Demand{CPUBusyCores: 4, MemGBs: 380, MemBoundFrac: 1})
	stepFor(n, time.Second)
	inst, _ := dev.Read(0, msr.FixedCtrInstRetired)
	cyc, _ := dev.Read(0, msr.FixedCtrCPUCycles)
	ipc := float64(inst) / float64(cyc)
	if ipc > 1.4 {
		t.Fatalf("starved IPC = %v, want well below 2", ipc)
	}
}

func TestDaemonBusyRaisesPower(t *testing.T) {
	n := New(IntelA100())
	stepFor(n, 100*time.Millisecond)
	base := n.PkgPowerW(0)
	n.AddDaemonBusy(50*time.Millisecond, 1.0, 3.0)
	n.Step(0, time.Millisecond)
	during := n.PkgPowerW(0)
	if during <= base+2.5 {
		t.Fatalf("daemon power: %v -> %v, want ≥ +3 W", base, during)
	}
	// Work drains: after 60 ms power returns near base.
	stepFor(n, 200*time.Millisecond)
	after := n.PkgPowerW(0)
	if after > base+1 {
		t.Fatalf("daemon power did not drain: %v vs base %v", after, base)
	}
}

func TestGPUDynamics(t *testing.T) {
	n := New(IntelA100())
	n.SetDemand(workload.Demand{GPUSMUtil: 0.95, GPUMemUtil: 0.7})
	stepFor(n, 500*time.Millisecond)
	if clk := n.GPUClockMHz(0); clk < 1380 {
		t.Fatalf("loaded GPU clock = %v, want ≈1410", clk)
	}
	if p := n.GPUPowerW(0); p < 150 || p > 252 {
		t.Fatalf("loaded GPU power = %v", p)
	}
	sm, mem := n.GPUUtil(0)
	if sm != 0.95 || mem != 0.7 {
		t.Fatalf("GPU util = %v/%v", sm, mem)
	}
	if n.GPUEnergyJ(0) <= 0 {
		t.Fatal("GPU energy did not accumulate")
	}
	_, _, gpuJ := n.EnergyJ()
	if gpuJ <= 0 {
		t.Fatal("node GPU energy total missing")
	}
}

func TestEnergyMonotonicity(t *testing.T) {
	n := New(IntelA100())
	var lastPkg, lastDrm, lastGpu float64
	for i := 0; i < 500; i++ {
		n.Step(time.Duration(i)*time.Millisecond, time.Millisecond)
		pkg, drm, gpu := n.EnergyJ()
		if pkg < lastPkg || drm < lastDrm || gpu < lastGpu {
			t.Fatalf("energy decreased at step %d", i)
		}
		lastPkg, lastDrm, lastGpu = pkg, drm, gpu
	}
}

func TestPL1PowerCapEngagesClamp(t *testing.T) {
	n := New(IntelA100())
	// A load that sits near 200 W package per socket at max uncore —
	// far below TDP (270 W), so the clamp stays idle by default.
	n.SetDemand(workload.Demand{CPUBusyCores: 40, MemGBs: 300, MemBoundFrac: 0.6})
	stepFor(n, 2*time.Second)
	if f := n.UncoreFreqGHz(0); f < 2.19 {
		t.Fatalf("uncore backed off without a cap: %v GHz", f)
	}
	before := n.PkgPowerW(0)

	// Program a PL1 cap below the current draw on both sockets.
	capVal := msr.EncodePowerLimit(before-40, 0.125, true)
	for s := 0; s < 2; s++ {
		if err := n.MSRDevice().Write(n.Space().FirstCPUOf(s), msr.PkgPowerLimit, capVal); err != nil {
			t.Fatal(err)
		}
	}
	stepFor(n, 4*time.Second)
	if f := n.UncoreFreqGHz(0); f > 1.9 {
		t.Fatalf("uncore = %v GHz under PL1 pressure, want backed off", f)
	}
	after := n.PkgPowerW(0)
	if after >= before-10 {
		t.Fatalf("package power %v -> %v W, cap had no effect", before, after)
	}
	// A disabled cap is ignored.
	n2 := New(IntelA100())
	n2.SetDemand(workload.Demand{CPUBusyCores: 40, MemGBs: 300, MemBoundFrac: 0.6})
	off := msr.EncodePowerLimit(100, 0.125, false)
	for s := 0; s < 2; s++ {
		n2.MSRDevice().Write(n2.Space().FirstCPUOf(s), msr.PkgPowerLimit, off)
	}
	stepFor(n2, 2*time.Second)
	if f := n2.UncoreFreqGHz(0); f < 2.19 {
		t.Fatalf("disabled cap engaged the clamp: %v GHz", f)
	}
}

// Property: cumulative energy equals the step-held integral of the
// power the node reported, and attained throughput never exceeds the
// bandwidth available at the observed uncore frequency.
func TestEnergyAndServiceProperties(t *testing.T) {
	prop := func(seq []uint16) bool {
		n := New(IntelA100())
		cfg := n.Config()
		var wantPkg, wantDrm, wantGpu float64
		dt := time.Millisecond
		for i, raw := range seq {
			d := workload.Demand{
				MemGBs:       float64(raw%500) * 1.1,
				CPUBusyCores: float64((raw >> 3) % 80),
				MemBoundFrac: float64(raw%11) / 10,
				GPUSMUtil:    float64(raw%7) / 6,
				GPUMemUtil:   float64(raw%5) / 4,
			}
			n.SetDemand(d)
			n.Step(time.Duration(i)*dt, dt)
			// Service bound: attained ≤ total bandwidth at the current
			// uncore frequencies (+tiny slack for float error).
			var bw float64
			for s := 0; s < cfg.Sockets; s++ {
				bw += cfg.BWAt(n.UncoreFreqGHz(s))
			}
			if n.AttainedGBs() > bw+1e-9 || n.AttainedGBs() > d.MemGBs+1e-9 {
				return false
			}
			for s := 0; s < cfg.Sockets; s++ {
				wantPkg += n.PkgPowerW(s) * dt.Seconds()
				wantDrm += n.DramPowerW(s) * dt.Seconds()
			}
			for g := 0; g < n.GPUCount(); g++ {
				wantGpu += n.GPUPowerW(g) * dt.Seconds()
			}
		}
		pkg, drm, gpu := n.EnergyJ()
		close := func(a, b float64) bool {
			d := a - b
			if d < 0 {
				d = -d
			}
			return d <= 1e-6*(1+b)
		}
		return close(pkg, wantPkg) && close(drm, wantDrm) && close(gpu, wantGpu)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestTenantShares pins the pass-through share surface: the node
// retains the caller's live slice (mutations are visible without
// re-installation) and single-tenant nodes expose nil.
func TestTenantShares(t *testing.T) {
	n := New(IntelA100())
	if n.TenantShares() != nil {
		t.Fatal("fresh node exposes tenant shares")
	}
	shares := []workload.TenantShare{{Tenant: "a"}, {Tenant: "b"}}
	n.SetTenantShares(shares)
	got := n.TenantShares()
	if len(got) != 2 || got[0].Tenant != "a" {
		t.Fatalf("TenantShares = %+v", got)
	}
	shares[1].Exclusive = true
	shares[1].MemShare = 12.5
	if !n.TenantShares()[1].Exclusive || n.TenantShares()[1].MemShare != 12.5 {
		t.Fatal("node copied the share slice instead of retaining it")
	}
}

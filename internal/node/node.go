package node

import (
	"math"
	"time"

	"github.com/spear-repro/magus/internal/cpufreq"
	"github.com/spear-repro/magus/internal/gpudvfs"
	"github.com/spear-repro/magus/internal/msr"
	"github.com/spear-repro/magus/internal/workload"
)

// gpuState is one GPU board's live state.
type gpuState struct {
	spec    GPUSpec
	clock   *gpudvfs.Clock
	smUtil  float64
	memUtil float64
	powerW  float64
	energyJ float64
}

// daemonWork is pending runtime-daemon activity (governor invocations)
// charged to socket 0: busy host cores plus extra power (MSR IPIs,
// interconnect wakeups) for a duration.
type daemonWork struct {
	remaining time.Duration
	cores     float64
	extraW    float64
}

// Node is the simulated machine. It implements sim.Component; register
// the workload runner before the node so demand precedes service.
type Node struct {
	cfg   Config
	space *msr.Space

	// Per-socket state.
	uncoreEff    []float64 // effective uncore frequency (GHz)
	clampCeil    []float64 // TDP-clamp ceiling (GHz)
	pkgPowerW    []float64
	uncPowerW    []float64 // uncore share of pkg power (W)
	drmPowerW    []float64
	pkgEnergyAcc []float64 // fractional RAPL units not yet in the MSR
	drmEnergyAcc []float64

	// Per-core state.
	pstates  []*cpufreq.PState
	coreUtil []float64
	instAcc  []float64 // instructions retired (float accumulator)
	cycAcc   []float64 // unhalted cycles

	gpus []*gpuState

	demand           workload.Demand
	tenantShares     []workload.TenantShare
	attained         float64   // GB/s served last step
	attainedSock     []float64 // per-socket GB/s served last step
	servedGB         float64   // cumulative GB served
	servedGBSock     []float64 // cumulative GB served per socket
	pkgJ, drmJ, gpuJ float64   // cumulative joules

	daemon        []daemonWork
	daemonHead    int     // index of the first undrained queue entry
	daemonBusyNow float64 // cores busy this step (for telemetry)
	daemonBusySec float64 // cumulative daemon busy time drained

	// Hot-tick caches (docs/PERF.md). None of these change what a step
	// computes — they only avoid recomputing invariants every tick.
	cpu0        []int     // first logical CPU per socket
	sockTraffic []float64 // per-socket served GB/s scratch (was a per-step alloc)
	lastStatus  []uint64  // last UncorePerfStatus ratio published per socket
	maxActive   []int     // per-socket high watermark of cores ever given util > 0

	// Decoded limit-register cache, invalidated by the MSR space's
	// limit-write generation: steps happen every millisecond, limit
	// writes a few times per second.
	limGen uint64
	limMax []float64 // decoded uncore max limit (GHz)
	limMin []float64 // decoded uncore min limit (GHz)
	pl1W   []float64 // decoded RAPL PL1 cap (W)
	pl1On  []bool    // PL1 enable bit
	// relPow memo keyed on the exact bits of its input: cores sharing a
	// utilisation history share bit-identical frequencies, so a step
	// computes only a handful of distinct math.Pow values.
	powKey [8]uint64
	powVal [8]float64
	powLen int
	powIns int
}

// New builds a node from cfg with all controllers at their idle points
// and MSRs initialised to vendor defaults (uncore limit = full range).
func New(cfg Config) *Node {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := &Node{
		cfg:          cfg,
		space:        msr.NewSpace(cfg.Sockets, cfg.CoresPerSocket),
		uncoreEff:    make([]float64, cfg.Sockets),
		clampCeil:    make([]float64, cfg.Sockets),
		pkgPowerW:    make([]float64, cfg.Sockets),
		uncPowerW:    make([]float64, cfg.Sockets),
		drmPowerW:    make([]float64, cfg.Sockets),
		pkgEnergyAcc: make([]float64, cfg.Sockets),
		drmEnergyAcc: make([]float64, cfg.Sockets),
		pstates:      make([]*cpufreq.PState, cfg.Sockets*cfg.CoresPerSocket),
		coreUtil:     make([]float64, cfg.Sockets*cfg.CoresPerSocket),
		instAcc:      make([]float64, cfg.Sockets*cfg.CoresPerSocket),
		cycAcc:       make([]float64, cfg.Sockets*cfg.CoresPerSocket),
		attainedSock: make([]float64, cfg.Sockets),
		servedGBSock: make([]float64, cfg.Sockets),
		cpu0:         make([]int, cfg.Sockets),
		sockTraffic:  make([]float64, cfg.Sockets),
		lastStatus:   make([]uint64, cfg.Sockets),
		maxActive:    make([]int, cfg.Sockets),
		limMax:       make([]float64, cfg.Sockets),
		limMin:       make([]float64, cfg.Sockets),
		pl1W:         make([]float64, cfg.Sockets),
		pl1On:        make([]bool, cfg.Sockets),
	}
	for s := 0; s < cfg.Sockets; s++ {
		n.uncoreEff[s] = cfg.UncoreMaxGHz
		n.clampCeil[s] = cfg.UncoreMaxGHz
		cpu0 := n.space.FirstCPUOf(s)
		n.cpu0[s] = cpu0
		n.lastStatus[s] = ^uint64(0) // force the first status publish
		n.space.Poke(cpu0, msr.UncoreRatioLimit,
			msr.EncodeUncoreLimit(cfg.UncoreMaxGHz*1e9, cfg.UncoreMinGHz*1e9))
		n.space.Poke(cpu0, msr.PkgPowerInfo,
			uint64(cfg.TDPWatts/0.125)) // power units of 1/8 W
	}
	n.refreshLimits()
	for i := range n.pstates {
		n.pstates[i] = cpufreq.New(cfg.CoreMinGHz, cfg.CoreBaseGHz, cfg.CoreMaxGHz, cfg.CoreTau)
	}
	for _, g := range cfg.GPUs {
		n.gpus = append(n.gpus, &gpuState{
			spec:  g,
			clock: gpudvfs.New(g.IdleClockMHz, g.MaxClockMHz, cfg.GPUTau),
		})
	}
	return n
}

// Config returns the node's configuration.
func (n *Node) Config() Config { return n.cfg }

// Space exposes the raw simulated register file (tests, fault injection).
func (n *Node) Space() *msr.Space { return n.space }

// MSRDevice returns the device handle runtimes should use: it flushes
// the node's counter accumulators into the register file before reads,
// so per-core fixed counters and RAPL status registers are current.
func (n *Node) MSRDevice() msr.Device { return nodeDevice{n} }

// SetDemand installs the application demand for the next step.
func (n *Node) SetDemand(d workload.Demand) { n.demand = d }

// SetTenantShares installs the per-tenant utilisation share surface for
// co-located workloads. The node retains the slice; the workload
// multiplexer mutates it in place each step, so the node always exposes
// the current step's shares — the simulated analogue of per-process
// SM/memory accounting counters. Single-tenant runs never call this and
// TenantShares returns nil.
func (n *Node) SetTenantShares(ts []workload.TenantShare) { n.tenantShares = ts }

// TenantShares returns the live per-tenant share slice (nil when the
// node runs a single tenant). Callers must treat it as read-only.
func (n *Node) TenantShares() []workload.TenantShare { return n.tenantShares }

// Demand returns the demand currently applied.
func (n *Node) Demand() workload.Demand { return n.demand }

// AttainedGBs returns the memory throughput served during the last
// step, in GB/s.
func (n *Node) AttainedGBs() float64 { return n.attained }

// ServedGB returns cumulative GB served — the IMC counter PCM reads.
func (n *Node) ServedGB() float64 { return n.servedGB }

// ServedGBSocket returns one socket's cumulative served GB — the
// per-socket IMC counters the per-socket scaling extension reads.
func (n *Node) ServedGBSocket(socket int) float64 { return n.servedGBSock[socket] }

// AttainedGBsSocket returns one socket's served throughput last step.
func (n *Node) AttainedGBsSocket(socket int) float64 { return n.attainedSock[socket] }

// socketShare returns the fraction of memory traffic routed to a
// socket: even interleaving shifted toward socket 0 by the demand's
// NUMA skew.
func (n *Node) socketShare(socket int) float64 {
	s := float64(n.cfg.Sockets)
	even := 1 / s
	skew := n.demand.NUMASkew
	if skew <= 0 || n.cfg.Sockets == 1 {
		return even
	}
	if skew > 1 {
		skew = 1
	}
	if socket == 0 {
		return even + skew*(1-even)
	}
	return even * (1 - skew)
}

// AddDaemonBusy charges governor invocation work to the node: cores
// busy host cores on socket 0 plus extraW watts for dur of virtual time.
// Work queues and drains in FIFO order.
func (n *Node) AddDaemonBusy(dur time.Duration, cores, extraW float64) {
	if dur <= 0 {
		return
	}
	n.daemon = append(n.daemon, daemonWork{remaining: dur, cores: cores, extraW: extraW})
}

// DaemonBusySeconds returns the cumulative runtime-daemon busy time the
// node has drained — used by the Table 2 invocation-overhead analysis.
func (n *Node) DaemonBusySeconds() float64 { return n.daemonBusySec }

// UncoreFreqGHz returns a socket's current effective uncore frequency.
func (n *Node) UncoreFreqGHz(socket int) float64 { return n.uncoreEff[socket] }

// UncorePowerW returns a socket's instantaneous uncore power as
// computed by the last Step — the exact watts the package energy
// integral charged for the uncore domain, so the waste ledger's total
// agrees bit-for-bit with the simulated energy accounting.
func (n *Node) UncorePowerW(socket int) float64 { return n.uncPowerW[socket] }

// CoreFreqGHz returns a logical CPU's current frequency.
func (n *Node) CoreFreqGHz(cpu int) float64 { return n.pstates[cpu].Current() }

// PkgPowerW returns a socket's package power (core + uncore domains).
func (n *Node) PkgPowerW(socket int) float64 { return n.pkgPowerW[socket] }

// DramPowerW returns a socket's DRAM power.
func (n *Node) DramPowerW(socket int) float64 { return n.drmPowerW[socket] }

// CPUPowerW returns total package + DRAM power across sockets — the
// quantity the paper's "power saving" metric uses.
func (n *Node) CPUPowerW() float64 {
	var p float64
	for s := 0; s < n.cfg.Sockets; s++ {
		p += n.pkgPowerW[s] + n.drmPowerW[s]
	}
	return p
}

// GPUCount returns the number of GPU boards.
func (n *Node) GPUCount() int { return len(n.gpus) }

// GPUPowerW returns a board's current power draw.
func (n *Node) GPUPowerW(i int) float64 { return n.gpus[i].powerW }

// GPUClockMHz returns a board's current SM clock.
func (n *Node) GPUClockMHz(i int) float64 { return n.gpus[i].clock.Current() }

// GPUUtil returns a board's SM and memory utilisation.
func (n *Node) GPUUtil(i int) (sm, mem float64) { return n.gpus[i].smUtil, n.gpus[i].memUtil }

// GPUEnergyJ returns a board's cumulative energy.
func (n *Node) GPUEnergyJ(i int) float64 { return n.gpus[i].energyJ }

// EnergyJ returns cumulative package, DRAM and GPU energy in joules.
func (n *Node) EnergyJ() (pkg, dram, gpu float64) { return n.pkgJ, n.drmJ, n.gpuJ }

// TotalPowerW returns instantaneous node power (CPU + DRAM + GPUs).
func (n *Node) TotalPowerW() float64 {
	p := n.CPUPowerW()
	for _, g := range n.gpus {
		p += g.powerW
	}
	return p
}

// refreshLimits re-reads and re-decodes the software-controlled limit
// registers for every socket and records the generation they were read
// at. Called from Step only when the MSR space's limit-write generation
// moved, so the per-tick path never takes the register-file lock for
// limits that did not change.
func (n *Node) refreshLimits() {
	n.limGen = n.space.LimitGen()
	for s := 0; s < n.cfg.Sockets; s++ {
		limMaxHz, limMinHz := msr.DecodeUncoreLimit(n.space.Peek(n.cpu0[s], msr.UncoreRatioLimit))
		limMax, limMin := limMaxHz/1e9, limMinHz/1e9
		if limMax < limMin {
			limMax = limMin
		}
		n.limMax[s], n.limMin[s] = limMax, limMin
		pl1, enabled := msr.DecodePowerLimit(n.space.Peek(n.cpu0[s], msr.PkgPowerLimit), 0.125)
		n.pl1W[s], n.pl1On[s] = pl1, enabled
	}
}

// Step implements sim.Component.
func (n *Node) Step(now, dt time.Duration) {
	dtSec := dt.Seconds()
	if g := n.space.LimitGen(); g != n.limGen {
		n.refreshLimits()
	}
	// One blend factor per controller family: every core shares
	// CoreTau and every socket shares UncoreTau, so the divisions are
	// per-tick invariants, not per-core ones.
	uncAlpha := float64(dt) / float64(n.cfg.UncoreTau)
	if uncAlpha > 1 {
		uncAlpha = 1
	}
	coreAlpha := float64(dt) / float64(n.cfg.CoreTau)
	if coreAlpha > 1 {
		coreAlpha = 1
	}

	// 1. Resolve each socket's uncore target from the MSR limit and
	// the TDP clamp, then slew the effective frequency. The status
	// ratio is quantised to 100 MHz steps, so it changes far less often
	// than the effective frequency — republish only on change.
	for s := 0; s < n.cfg.Sockets; s++ {
		target := n.limMax[s]
		if n.cfg.TDPClamp && target > n.clampCeil[s] {
			target = n.clampCeil[s]
		}
		if target < n.limMin[s] {
			target = n.limMin[s]
		}
		n.uncoreEff[s] += (target - n.uncoreEff[s]) * uncAlpha
		if status := uint64(msr.HzToRatio(n.uncoreEff[s] * 1e9)); status != n.lastStatus[s] {
			n.space.Poke(n.cpu0[s], msr.UncorePerfStatus, status)
			n.lastStatus[s] = status
		}
	}

	// 2. Serve memory demand: split across sockets (interleaved
	// allocation, optionally skewed toward socket 0 for
	// NUMA-imbalanced workloads), each socket caps at BW(f).
	var attained float64
	sockTraffic := n.sockTraffic
	for s := 0; s < n.cfg.Sockets; s++ {
		bw := n.cfg.BWAt(n.uncoreEff[s])
		served := n.demand.MemGBs * n.socketShare(s)
		if served > bw {
			served = bw
		}
		sockTraffic[s] = served
		n.attainedSock[s] = served
		n.servedGBSock[s] += served * dtSec
		attained += served
	}
	n.attained = attained
	n.servedGB += attained * dtSec

	// Service ratio drives the IPC the cores achieve on memory work.
	serviceRatio := 1.0
	if n.demand.MemGBs > 1e-9 {
		serviceRatio = attained / n.demand.MemGBs
		if serviceRatio > 1 {
			serviceRatio = 1
		}
	}

	// 3. Drain daemon work for this step. The queue advances by head
	// index instead of re-slicing so the backing array is reused once
	// drained — steady state appends without allocating.
	n.daemonBusyNow = 0
	var daemonW float64
	budget := dt
	for n.daemonHead < len(n.daemon) && budget > 0 {
		w := &n.daemon[n.daemonHead]
		use := w.remaining
		if use > budget {
			use = budget
		}
		frac := float64(use) / float64(dt)
		n.daemonBusyNow += w.cores * frac
		daemonW += w.extraW * frac
		w.remaining -= use
		budget -= use
		n.daemonBusySec += use.Seconds()
		if w.remaining <= 0 {
			n.daemonHead++
		}
	}
	if n.daemonHead > 0 && n.daemonHead == len(n.daemon) {
		n.daemon = n.daemon[:0]
		n.daemonHead = 0
	}

	// 4. Distribute busy cores across sockets and step per-core DVFS.
	// Cores beyond a socket's all-time activity watermark have never
	// left the idle P-state: their target equals their current
	// frequency exactly (both MinGHz), so stepping them is a bitwise
	// no-op and the loop stops at the watermark instead.
	busyPerSock := n.demand.CPUBusyCores / float64(n.cfg.Sockets)
	beta := n.demand.MemBoundFrac
	ipc := n.cfg.CoreIPC * ((1 - beta) + beta*serviceRatio)
	for s := 0; s < n.cfg.Sockets; s++ {
		busy := busyPerSock
		if s == 0 {
			busy += n.daemonBusyNow
		}
		base := s * n.cfg.CoresPerSocket
		watermark := n.maxActive[s]
		for c := 0; c < n.cfg.CoresPerSocket; c++ {
			util := 0.0
			switch {
			case busy >= 1:
				util = 0.9
				busy--
			case busy > 0:
				util = 0.9 * busy
				busy = 0
			}
			if util > 0 {
				if c >= watermark {
					watermark = c + 1
				}
			} else if c >= watermark {
				// This core and every following one is idle now and was
				// never active: pinned at MinGHz exactly, nothing to do.
				break
			}
			cpu := base + c
			n.coreUtil[cpu] = util
			f := n.pstates[cpu].StepAlpha(util, coreAlpha)
			if util > 0 {
				cyc := f * 1e9 * util * dtSec
				n.cycAcc[cpu] += cyc
				n.instAcc[cpu] += cyc * ipc
			}
		}
		n.maxActive[s] = watermark
	}

	// 5. Power and energy per socket.
	stepGHz := 0.1 * float64(dt) / float64(10*time.Millisecond)
	for s := 0; s < n.cfg.Sockets; s++ {
		base := s * n.cfg.CoresPerSocket
		intensity := n.demand.CPUIntensity
		if intensity <= 0 {
			intensity = 1
		}
		var coreW float64
		for c := 0; c < n.maxActive[s]; c++ {
			cpu := base + c
			if u := n.coreUtil[cpu]; u > 0 {
				coreW += n.cfg.Core.MaxPerCoreWatts * intensity * u *
					n.relPowMemo(n.pstates[cpu].Current()/n.cfg.CoreMaxGHz)
			}
		}
		coreW += n.cfg.Core.IdleWatts
		uncW := n.cfg.Uncore.Power(n.uncoreEff[s]/n.cfg.UncoreMaxGHz, sockTraffic[s])
		n.uncPowerW[s] = uncW
		pkg := coreW + uncW
		if s == 0 {
			pkg += daemonW
		}
		n.pkgPowerW[s] = pkg
		n.drmPowerW[s] = n.cfg.Dram.Power(sockTraffic[s])

		n.pkgJ += pkg * dtSec
		n.drmJ += n.drmPowerW[s] * dtSec
		n.accumulateEnergy(s, pkg, n.drmPowerW[s], dtSec)

		// TDP clamp dynamics: back off 100 MHz per 10 ms above 97 %
		// of the active limit, recover at the same rate below 90 %.
		// The active limit is the TDP unless software set a lower PL1
		// cap through MSR_PKG_POWER_LIMIT (RAPL power capping).
		if n.cfg.TDPClamp {
			limit := n.cfg.TDPWatts
			if pl1 := n.pl1W[s]; n.pl1On[s] && pl1 > 0 && pl1 < limit {
				limit = pl1
			}
			switch {
			case pkg > 0.97*limit:
				n.clampCeil[s] -= stepGHz
				if n.clampCeil[s] < n.cfg.UncoreMinGHz {
					n.clampCeil[s] = n.cfg.UncoreMinGHz
				}
			case pkg < 0.90*limit:
				n.clampCeil[s] += stepGHz
				if n.clampCeil[s] > n.cfg.UncoreMaxGHz {
					n.clampCeil[s] = n.cfg.UncoreMaxGHz
				}
			}
		}
	}

	// 6. GPUs.
	for _, g := range n.gpus {
		g.smUtil = n.demand.GPUSMUtil
		g.memUtil = n.demand.GPUMemUtil
		g.clock.Step(g.smUtil, dt)
		g.powerW = g.spec.Power.Power(g.smUtil, g.clock.Rel(), g.memUtil)
		g.energyJ += g.powerW * dtSec
		n.gpuJ += g.powerW * dtSec
	}
}

// accumulateEnergy pushes joules into the socket's wrapping RAPL
// counters, carrying fractional units between steps. Both counters are
// published through one batched register-file operation.
func (n *Node) accumulateEnergy(s int, pkgW, drmW, dtSec float64) {
	const unitsPerJoule = 16384 // 2^14, matching MSR_RAPL_POWER_UNIT default

	n.pkgEnergyAcc[s] += pkgW * dtSec * unitsPerJoule
	pu := uint64(n.pkgEnergyAcc[s])
	if pu > 0 {
		n.pkgEnergyAcc[s] -= float64(pu)
	}
	n.drmEnergyAcc[s] += drmW * dtSec * unitsPerJoule
	du := uint64(n.drmEnergyAcc[s])
	if du > 0 {
		n.drmEnergyAcc[s] -= float64(du)
	}
	n.space.BumpEnergy(n.cpu0[s], pu, du)
}

// relPowMemo is relPow(rel, cfg.Core.FreqExp) behind a tiny
// direct-search memo keyed on the exact bits of rel. math.Pow is pure,
// so a hit returns the identical float64 the call would have produced —
// byte-identity is preserved by construction. Cores whose utilisation
// histories match carry bit-identical frequencies, so a step needs only
// a handful of distinct evaluations.
func (n *Node) relPowMemo(rel float64) float64 {
	if rel <= 0 {
		return 0
	}
	if rel >= 1 {
		return 1
	}
	key := math.Float64bits(rel)
	for i := 0; i < n.powLen; i++ {
		if n.powKey[i] == key {
			return n.powVal[i]
		}
	}
	v := math.Pow(rel, n.cfg.Core.FreqExp)
	if n.powLen < len(n.powKey) {
		n.powKey[n.powLen] = key
		n.powVal[n.powLen] = v
		n.powLen++
	} else {
		n.powKey[n.powIns] = key
		n.powVal[n.powIns] = v
		n.powIns = (n.powIns + 1) % len(n.powKey)
	}
	return v
}

// flushCoreCounters publishes the per-core accumulators into the
// register file (called before runtime reads).
func (n *Node) flushCoreCounters() {
	for cpu := range n.instAcc {
		n.space.Poke(cpu, msr.FixedCtrInstRetired, uint64(n.instAcc[cpu]))
		n.space.Poke(cpu, msr.FixedCtrCPUCycles, uint64(n.cycAcc[cpu]))
	}
}

// nodeDevice is the msr.Device runtimes use: reads of core-scope
// counters see current accumulator state.
type nodeDevice struct{ n *Node }

// Read implements msr.Device.
func (d nodeDevice) Read(cpu int, reg uint32) (uint64, error) {
	switch reg {
	case msr.FixedCtrInstRetired, msr.FixedCtrCPUCycles:
		d.n.flushCoreCounters()
	}
	return d.n.space.Read(cpu, reg)
}

// Write implements msr.Device.
func (d nodeDevice) Write(cpu int, reg uint32, val uint64) error {
	return d.n.space.Write(cpu, reg, val)
}

// relPow is a clamped power-law helper.
func relPow(rel, exp float64) float64 {
	if rel <= 0 {
		return 0
	}
	if rel >= 1 {
		return 1
	}
	return math.Pow(rel, exp)
}

package node

import (
	"testing"
	"time"

	"github.com/spear-repro/magus/internal/workload"
)

// BenchmarkHotPathNodeStep measures one node step under a busy mixed
// demand — uncore slew, memory service, per-core DVFS and the power
// model for every core, RAPL accumulation, TDP clamp and GPUs. This is
// the dominant per-millisecond cost of a cell; steady state must be
// allocation-free.
func BenchmarkHotPathNodeStep(b *testing.B) {
	n := New(IntelA100())
	n.SetDemand(workload.Demand{
		MemGBs: 200, CPUBusyCores: 20, MemBoundFrac: 0.6, GPUSMUtil: 0.9, GPUMemUtil: 0.5,
	})
	for i := 0; i < 100; i++ { // steady state before the timer starts
		n.Step(time.Duration(i)*time.Millisecond, time.Millisecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step(time.Duration(100+i)*time.Millisecond, time.Millisecond)
	}
}

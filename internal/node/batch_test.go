package node

import (
	"testing"
	"time"

	"github.com/spear-repro/magus/internal/workload"
)

// TestBatchStepIdentity: stepping nodes through a Batch must perform
// the identical computation to stepping them individually — the batch
// is a surface, not a semantic.
func TestBatchStepIdentity(t *testing.T) {
	mk := func() []*Node {
		return []*Node{New(IntelA100()), New(Intel4A100()), New(IntelMax1550())}
	}
	demand := workload.Demand{CPUBusyCores: 4, MemGBs: 120, MemBoundFrac: 0.6, GPUSMUtil: 0.8, GPUMemUtil: 0.5}

	solo := mk()
	batched := mk()
	b := NewBatch(batched)
	dt := time.Millisecond
	for k := 0; k < 500; k++ {
		now := time.Duration(k) * dt
		for _, n := range solo {
			n.SetDemand(demand)
			n.Step(now, dt)
		}
		for _, n := range batched {
			n.SetDemand(demand)
		}
		b.Step(now, dt)
	}
	b.Snapshot()
	for i, n := range solo {
		if got := b.PowerW[i]; got != n.TotalPowerW() {
			t.Errorf("node %d power %v != solo %v", i, got, n.TotalPowerW())
		}
		pkg, dram, gpu := n.EnergyJ()
		if b.PkgJ[i] != pkg || b.DramJ[i] != dram || b.GpuJ[i] != gpu {
			t.Errorf("node %d energy mirrors (%v,%v,%v) != solo (%v,%v,%v)",
				i, b.PkgJ[i], b.DramJ[i], b.GpuJ[i], pkg, dram, gpu)
		}
		if want := pkg + dram + gpu; b.EnergyJ[i] != want {
			t.Errorf("node %d EnergyJ %v != %v", i, b.EnergyJ[i], want)
		}
		if b.AttainedGBs[i] != n.AttainedGBs() {
			t.Errorf("node %d attained %v != %v", i, b.AttainedGBs[i], n.AttainedGBs())
		}
		if want := n.UncoreFreqGHz(0) / n.Config().UncoreMaxGHz; b.UncoreRel[i] != want {
			t.Errorf("node %d uncore rel %v != %v", i, b.UncoreRel[i], want)
		}
		if b.DemandGBs[i] != demand.MemGBs {
			t.Errorf("node %d demand %v != %v", i, b.DemandGBs[i], demand.MemGBs)
		}
	}
	if b.Len() != 3 || b.Node(1) != batched[1] {
		t.Fatal("batch accessors wrong")
	}
}

// TestBatchSnapshotAllocFree: the steady-state snapshot pass must not
// allocate — it only copies scalars into preallocated SoA arrays.
func TestBatchSnapshotAllocFree(t *testing.T) {
	nodes := []*Node{New(IntelA100()), New(IntelA100())}
	b := NewBatch(nodes)
	d := workload.Demand{CPUBusyCores: 2, MemGBs: 80, MemBoundFrac: 0.5}
	for _, n := range nodes {
		n.SetDemand(d)
	}
	for k := 0; k < 100; k++ {
		b.Step(time.Duration(k)*time.Millisecond, time.Millisecond)
	}
	if allocs := testing.AllocsPerRun(100, b.Snapshot); allocs != 0 {
		t.Fatalf("Snapshot allocates %v per run", allocs)
	}
}

package node

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/spear-repro/magus/internal/msr"
	"github.com/spear-repro/magus/internal/workload"
)

// TestStepZeroAlloc pins the hot-tick contract: once warm, Node.Step
// performs no heap allocations. The demand includes CPU, memory, and
// GPU load so every branch of the step body runs.
func TestStepZeroAlloc(t *testing.T) {
	n := New(IntelA100())
	n.SetDemand(workload.Demand{
		MemGBs:       200,
		CPUBusyCores: 20,
		MemBoundFrac: 0.6,
		GPUSMUtil:    0.9,
		GPUMemUtil:   0.5,
	})
	now := time.Duration(0)
	dt := time.Millisecond
	step := func() {
		n.Step(now, dt)
		now += dt
	}
	for i := 0; i < 100; i++ {
		step()
	}
	if allocs := testing.AllocsPerRun(500, step); allocs != 0 {
		t.Fatalf("Node.Step allocates %v times per call, want 0", allocs)
	}
}

// TestStepZeroAllocWithDaemon covers the daemon-queue drain path: queue
// reuse must keep steady-state append+drain cycles allocation-free once
// the backing array has grown to its working size.
func TestStepZeroAllocWithDaemon(t *testing.T) {
	n := New(IntelA100())
	n.SetDemand(workload.Demand{MemGBs: 50, CPUBusyCores: 4})
	now := time.Duration(0)
	dt := time.Millisecond
	step := func() {
		if len(n.daemon) == n.daemonHead {
			n.AddDaemonBusy(2*time.Millisecond, 0.5, 1.0)
		}
		n.Step(now, dt)
		now += dt
	}
	for i := 0; i < 100; i++ {
		step()
	}
	if allocs := testing.AllocsPerRun(500, step); allocs != 0 {
		t.Fatalf("Node.Step with daemon work allocates %v times per call, want 0", allocs)
	}
}

// TestRelPowMemoMatchesRelPow pins the memoised power-law evaluation to
// the reference relPow: identical bits for every input, including the
// clamped edges, repeated keys, and enough distinct keys to cycle the
// memo's round-robin eviction.
func TestRelPowMemoMatchesRelPow(t *testing.T) {
	n := New(IntelA100())
	exp := n.cfg.Core.FreqExp
	rng := rand.New(rand.NewSource(42))
	inputs := []float64{0, -0.5, 1, 1.5, 0.5, 0.5, 0.123456789}
	for i := 0; i < 5000; i++ {
		inputs = append(inputs, rng.Float64())
	}
	// Replay some early keys after eviction has cycled the memo.
	inputs = append(inputs, 0.5, 0.123456789)
	for _, rel := range inputs {
		want := relPow(rel, exp)
		got := n.relPowMemo(rel)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("relPowMemo(%v) = %v, relPow = %v (bit mismatch)", rel, got, want)
		}
	}
}

// TestLimitCacheFollowsWrites checks that Step picks up limit-register
// writes made between ticks: the cached decode must refresh on the MSR
// space's limit generation, not lag behind it.
func TestLimitCacheFollowsWrites(t *testing.T) {
	n := New(IntelA100())
	n.SetDemand(workload.Demand{MemGBs: 100, CPUBusyCores: 8})
	dt := 10 * time.Millisecond
	now := time.Duration(0)
	for i := 0; i < 200; i++ {
		n.Step(now, dt)
		now += dt
	}

	// Pin both sockets' uncore to the minimum and step to steady state.
	min := n.cfg.UncoreMinGHz
	val := msr.EncodeUncoreLimit(min*1e9, min*1e9)
	for s := 0; s < n.cfg.Sockets; s++ {
		if err := n.space.Write(n.space.FirstCPUOf(s), msr.UncoreRatioLimit, val); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i++ {
		n.Step(now, dt)
		now += dt
	}
	for s := 0; s < n.cfg.Sockets; s++ {
		if got := n.UncoreFreqGHz(s); math.Abs(got-min) > 1e-6 {
			t.Fatalf("socket %d uncore = %v GHz after pinning limit to %v", s, got, min)
		}
	}
}

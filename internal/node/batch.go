package node

import "time"

// Batch is the fleet-scale step surface: it advances a block of nodes
// in one pass and mirrors the hot per-node scalars — demand, attained
// bandwidth, uncore ratio, socket power, RAPL-style energy
// accumulators — into contiguous struct-of-arrays storage. Cluster
// shards sample and aggregate from these arrays instead of chasing one
// pointer chain (member → node → accessor) per signal per sample; the
// chase happens once per Snapshot pass, in index order, over nodes
// that were just stepped and are still cache-warm.
//
// Batch adds no simulation semantics: Step calls each node's Step with
// the same arguments a sim.Engine component registration would, in
// slice order, so a batched run is computation-for-computation
// identical to the unbatched one.
type Batch struct {
	nodes []*Node

	// Snapshot mirrors, indexed like nodes. PowerW is total node power
	// (CPU package + DRAM + GPU boards); EnergyJ is the cumulative
	// (pkg+dram)+gpu sum in exactly that association order, matching
	// the observer's fold; UncoreRel is socket 0's uncore frequency as
	// a fraction of the config maximum.
	DemandGBs   []float64
	AttainedGBs []float64
	UncoreRel   []float64
	PowerW      []float64
	PkgJ        []float64
	DramJ       []float64
	GpuJ        []float64
	EnergyJ     []float64
}

// NewBatch builds the SoA mirrors for nodes. The slice is aliased, not
// copied; the caller owns member order.
func NewBatch(nodes []*Node) *Batch {
	n := len(nodes)
	return &Batch{
		nodes:       nodes,
		DemandGBs:   make([]float64, n),
		AttainedGBs: make([]float64, n),
		UncoreRel:   make([]float64, n),
		PowerW:      make([]float64, n),
		PkgJ:        make([]float64, n),
		DramJ:       make([]float64, n),
		GpuJ:        make([]float64, n),
		EnergyJ:     make([]float64, n),
	}
}

// Len returns the batch size.
func (b *Batch) Len() int { return len(b.nodes) }

// Node returns the i-th node.
func (b *Batch) Node(i int) *Node { return b.nodes[i] }

// Step advances every node one tick, in index order.
func (b *Batch) Step(now, dt time.Duration) {
	for _, n := range b.nodes {
		n.Step(now, dt)
	}
}

// Snapshot refreshes all SoA mirrors from node state in one pass.
func (b *Batch) Snapshot() {
	for i, n := range b.nodes {
		b.DemandGBs[i] = n.demand.MemGBs
		b.AttainedGBs[i] = n.attained
		b.UncoreRel[i] = n.uncoreEff[0] / n.cfg.UncoreMaxGHz
		b.PowerW[i] = n.TotalPowerW()
		pkg, dram, gpu := n.EnergyJ()
		b.PkgJ[i] = pkg
		b.DramJ[i] = dram
		b.GpuJ[i] = gpu
		b.EnergyJ[i] = pkg + dram + gpu
	}
}

package node

import (
	"fmt"
	"time"

	"github.com/spear-repro/magus/internal/msr"
	"github.com/spear-repro/magus/internal/workload"
)

// DaemonWorkState is one queued daemon-work entry.
type DaemonWorkState struct {
	Remaining time.Duration
	Cores     float64
	ExtraW    float64
}

// GPUState is one board's mutable state.
type GPUState struct {
	ClockMHz float64
	SMUtil   float64
	MemUtil  float64
	PowerW   float64
	EnergyJ  float64
}

// State is the node's full mutable state, including the MSR register
// file it owns. The Config is construction input: a restore target must
// be built from the same Config. Everything a Step reads or writes is
// here — including the pure math.Pow memo, captured so a restored node
// is indistinguishable from the original down to cache effects.
type State struct {
	MSR msr.SpaceState

	UncoreEff    []float64
	ClampCeil    []float64
	PkgPowerW    []float64
	UncPowerW    []float64
	DrmPowerW    []float64
	PkgEnergyAcc []float64
	DrmEnergyAcc []float64

	CoreGHz  []float64
	CoreUtil []float64
	InstAcc  []float64
	CycAcc   []float64

	GPUs []GPUState

	Demand       workload.Demand
	Attained     float64
	AttainedSock []float64
	ServedGB     float64
	ServedGBSock []float64
	PkgJ         float64
	DrmJ         float64
	GPUJ         float64

	Daemon        []DaemonWorkState // undrained queue entries (head-compacted)
	DaemonBusyNow float64
	DaemonBusySec float64

	LastStatus []uint64
	MaxActive  []int

	LimGen uint64
	LimMax []float64
	LimMin []float64
	PL1W   []float64
	PL1On  []bool

	PowKey []uint64
	PowVal []float64
	PowIns int
}

// State captures the node.
func (n *Node) State() State {
	st := State{
		MSR:          n.space.State(),
		UncoreEff:    append([]float64(nil), n.uncoreEff...),
		ClampCeil:    append([]float64(nil), n.clampCeil...),
		PkgPowerW:    append([]float64(nil), n.pkgPowerW...),
		UncPowerW:    append([]float64(nil), n.uncPowerW...),
		DrmPowerW:    append([]float64(nil), n.drmPowerW...),
		PkgEnergyAcc: append([]float64(nil), n.pkgEnergyAcc...),
		DrmEnergyAcc: append([]float64(nil), n.drmEnergyAcc...),
		CoreGHz:      make([]float64, len(n.pstates)),
		CoreUtil:     append([]float64(nil), n.coreUtil...),
		InstAcc:      append([]float64(nil), n.instAcc...),
		CycAcc:       append([]float64(nil), n.cycAcc...),
		Demand:       n.demand,
		Attained:     n.attained,
		AttainedSock: append([]float64(nil), n.attainedSock...),
		ServedGB:     n.servedGB,
		ServedGBSock: append([]float64(nil), n.servedGBSock...),
		PkgJ:         n.pkgJ,
		DrmJ:         n.drmJ,
		GPUJ:         n.gpuJ,

		DaemonBusyNow: n.daemonBusyNow,
		DaemonBusySec: n.daemonBusySec,

		LastStatus: append([]uint64(nil), n.lastStatus...),
		MaxActive:  append([]int(nil), n.maxActive...),

		LimGen: n.limGen,
		LimMax: append([]float64(nil), n.limMax...),
		LimMin: append([]float64(nil), n.limMin...),
		PL1W:   append([]float64(nil), n.pl1W...),
		PL1On:  append([]bool(nil), n.pl1On...),

		PowKey: append([]uint64(nil), n.powKey[:n.powLen]...),
		PowVal: append([]float64(nil), n.powVal[:n.powLen]...),
		PowIns: n.powIns,
	}
	for i, p := range n.pstates {
		st.CoreGHz[i] = p.Current()
	}
	for _, g := range n.gpus {
		st.GPUs = append(st.GPUs, GPUState{
			ClockMHz: g.clock.Current(),
			SMUtil:   g.smUtil,
			MemUtil:  g.memUtil,
			PowerW:   g.powerW,
			EnergyJ:  g.energyJ,
		})
	}
	for i := n.daemonHead; i < len(n.daemon); i++ {
		w := n.daemon[i]
		st.Daemon = append(st.Daemon, DaemonWorkState{Remaining: w.remaining, Cores: w.cores, ExtraW: w.extraW})
	}
	return st
}

// Restore overwrites the node's state from a snapshot taken on a node
// built from the same Config.
func (n *Node) Restore(st State) error {
	sockets, cpus := n.cfg.Sockets, n.cfg.Sockets*n.cfg.CoresPerSocket
	switch {
	case len(st.UncoreEff) != sockets || len(st.ClampCeil) != sockets ||
		len(st.PkgPowerW) != sockets || len(st.UncPowerW) != sockets ||
		len(st.DrmPowerW) != sockets || len(st.PkgEnergyAcc) != sockets ||
		len(st.DrmEnergyAcc) != sockets || len(st.AttainedSock) != sockets ||
		len(st.ServedGBSock) != sockets || len(st.LastStatus) != sockets ||
		len(st.MaxActive) != sockets || len(st.LimMax) != sockets ||
		len(st.LimMin) != sockets || len(st.PL1W) != sockets || len(st.PL1On) != sockets:
		return fmt.Errorf("node: restore socket arrays do not match %d sockets", sockets)
	case len(st.CoreGHz) != cpus || len(st.CoreUtil) != cpus ||
		len(st.InstAcc) != cpus || len(st.CycAcc) != cpus:
		return fmt.Errorf("node: restore core arrays do not match %d cpus", cpus)
	case len(st.GPUs) != len(n.gpus):
		return fmt.Errorf("node: restore has %d gpus, node has %d", len(st.GPUs), len(n.gpus))
	case len(st.PowKey) != len(st.PowVal) || len(st.PowKey) > len(n.powKey):
		return fmt.Errorf("node: restore pow memo malformed (%d keys, %d vals)",
			len(st.PowKey), len(st.PowVal))
	}
	if err := n.space.Restore(st.MSR); err != nil {
		return err
	}
	copy(n.uncoreEff, st.UncoreEff)
	copy(n.clampCeil, st.ClampCeil)
	copy(n.pkgPowerW, st.PkgPowerW)
	copy(n.uncPowerW, st.UncPowerW)
	copy(n.drmPowerW, st.DrmPowerW)
	copy(n.pkgEnergyAcc, st.PkgEnergyAcc)
	copy(n.drmEnergyAcc, st.DrmEnergyAcc)
	for i, p := range n.pstates {
		p.SetCurrent(st.CoreGHz[i])
	}
	copy(n.coreUtil, st.CoreUtil)
	copy(n.instAcc, st.InstAcc)
	copy(n.cycAcc, st.CycAcc)
	for i, g := range n.gpus {
		g.clock.SetCurrent(st.GPUs[i].ClockMHz)
		g.smUtil = st.GPUs[i].SMUtil
		g.memUtil = st.GPUs[i].MemUtil
		g.powerW = st.GPUs[i].PowerW
		g.energyJ = st.GPUs[i].EnergyJ
	}
	n.demand = st.Demand
	n.attained = st.Attained
	copy(n.attainedSock, st.AttainedSock)
	n.servedGB = st.ServedGB
	copy(n.servedGBSock, st.ServedGBSock)
	n.pkgJ, n.drmJ, n.gpuJ = st.PkgJ, st.DrmJ, st.GPUJ

	n.daemon = n.daemon[:0]
	n.daemonHead = 0
	for _, w := range st.Daemon {
		n.daemon = append(n.daemon, daemonWork{remaining: w.Remaining, cores: w.Cores, extraW: w.ExtraW})
	}
	n.daemonBusyNow = st.DaemonBusyNow
	n.daemonBusySec = st.DaemonBusySec

	copy(n.lastStatus, st.LastStatus)
	copy(n.maxActive, st.MaxActive)

	n.limGen = st.LimGen
	copy(n.limMax, st.LimMax)
	copy(n.limMin, st.LimMin)
	copy(n.pl1W, st.PL1W)
	copy(n.pl1On, st.PL1On)

	n.powLen = len(st.PowKey)
	copy(n.powKey[:], st.PowKey)
	copy(n.powVal[:], st.PowVal)
	n.powIns = st.PowIns
	return nil
}

// Package node simulates a heterogeneous CPU–GPU compute node: CPU
// sockets with independent core (DVFS) and uncore domains, DRAM, and
// one or more GPU boards. The node exposes exactly the interfaces the
// paper's runtime stack consumes — an MSR device (internal/msr), RAPL
// energy counters, IMC traffic counters for PCM, and NVML-style GPU
// readouts — so the MAGUS runtime and the UPS baseline drive the
// simulated node with the same code paths they would use on hardware.
//
// The performance model couples the uncore to application progress
// through memory bandwidth: each socket serves up to
// BW(f) = PeakBW·(floor + (1-floor)·f/fmax) GB/s, and the workload
// runner slows down when its demand is not served (see
// internal/workload). The power model is in internal/power; presets
// calibrated against the paper's three systems are in this file.
package node

import (
	"fmt"
	"time"

	"github.com/spear-repro/magus/internal/power"
)

// GPUSpec describes one GPU board.
type GPUSpec struct {
	Model        string
	Power        power.GPUParams
	IdleClockMHz float64
	MaxClockMHz  float64
}

// Config describes a node. All per-socket quantities are per socket.
type Config struct {
	Name           string
	Sockets        int
	CoresPerSocket int

	// Core frequency range (GHz) for the hardware DVFS model.
	CoreMinGHz, CoreBaseGHz, CoreMaxGHz float64

	// Uncore frequency range (GHz) — the knob MAGUS turns.
	UncoreMinGHz, UncoreMaxGHz float64

	// TDPWatts is the package thermal design power per socket; the
	// vendor-default governor only scales the uncore down when package
	// power approaches this limit (§2).
	TDPWatts float64

	// BWPerSocketGBs is peak memory bandwidth per socket at the
	// maximum uncore frequency; BWFloorFrac is the fraction still
	// available as uncore frequency approaches zero (extrapolated —
	// the operating range is [UncoreMinGHz, UncoreMaxGHz]).
	BWPerSocketGBs float64
	BWFloorFrac    float64

	Core   power.CoreParams
	Uncore power.UncoreParams
	Dram   power.DramParams
	GPUs   []GPUSpec

	// UncoreTau is the first-order response time of effective uncore
	// frequency to limit changes; CoreTau/GPUTau drive the DVFS models.
	UncoreTau time.Duration
	CoreTau   time.Duration
	GPUTau    time.Duration

	// TDPClamp enables the vendor-default hardware behaviour of
	// reducing uncore frequency when package power nears TDP.
	TDPClamp bool

	// CoreIPC is the per-core instructions-per-cycle at full service;
	// memory starvation scales it down (UPS observes this).
	CoreIPC float64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("node: config without a name")
	case c.Sockets <= 0 || c.CoresPerSocket <= 0:
		return fmt.Errorf("node %s: bad topology %d×%d", c.Name, c.Sockets, c.CoresPerSocket)
	case !(0 < c.CoreMinGHz && c.CoreMinGHz <= c.CoreBaseGHz && c.CoreBaseGHz <= c.CoreMaxGHz):
		return fmt.Errorf("node %s: bad core frequency range", c.Name)
	case !(0 < c.UncoreMinGHz && c.UncoreMinGHz < c.UncoreMaxGHz):
		return fmt.Errorf("node %s: bad uncore frequency range", c.Name)
	case c.TDPWatts <= 0:
		return fmt.Errorf("node %s: bad TDP", c.Name)
	case c.BWPerSocketGBs <= 0 || c.BWFloorFrac < 0 || c.BWFloorFrac >= 1:
		return fmt.Errorf("node %s: bad bandwidth model", c.Name)
	case c.UncoreTau <= 0 || c.CoreTau <= 0 || c.GPUTau <= 0:
		return fmt.Errorf("node %s: bad time constants", c.Name)
	case c.CoreIPC <= 0:
		return fmt.Errorf("node %s: bad IPC", c.Name)
	}
	if err := c.Core.Validate(); err != nil {
		return fmt.Errorf("node %s: %w", c.Name, err)
	}
	if err := c.Uncore.Validate(); err != nil {
		return fmt.Errorf("node %s: %w", c.Name, err)
	}
	if err := c.Dram.Validate(); err != nil {
		return fmt.Errorf("node %s: %w", c.Name, err)
	}
	for i, g := range c.GPUs {
		if err := g.Power.Validate(); err != nil {
			return fmt.Errorf("node %s gpu %d: %w", c.Name, i, err)
		}
		if !(0 < g.IdleClockMHz && g.IdleClockMHz < g.MaxClockMHz) {
			return fmt.Errorf("node %s gpu %d: bad clock range", c.Name, i)
		}
	}
	return nil
}

// SystemBWGBs returns the node's peak memory bandwidth at max uncore.
func (c Config) SystemBWGBs() float64 {
	return float64(c.Sockets) * c.BWPerSocketGBs
}

// BWAt returns one socket's bandwidth at uncore frequency f (GHz).
func (c Config) BWAt(fGHz float64) float64 {
	rel := fGHz / c.UncoreMaxGHz
	if rel < 0 {
		rel = 0
	}
	if rel > 1 {
		rel = 1
	}
	return c.BWPerSocketGBs * (c.BWFloorFrac + (1-c.BWFloorFrac)*rel)
}

func a100(memGB int) GPUSpec {
	idle, max := 30.0, 250.0
	model := "A100-40GB"
	if memGB == 80 {
		idle, max = 50.0, 300.0
		model = "A100-80GB"
	}
	return GPUSpec{
		Model:        model,
		Power:        power.GPUParams{IdleWatts: idle, MaxWatts: max, ComputeShare: 0.7},
		IdleClockMHz: 210,
		MaxClockMHz:  1410,
	}
}

// IntelA100 returns the paper's first system: a Chameleon node with two
// Xeon Platinum 8380 sockets (40 cores, uncore 0.8–2.2 GHz, TDP 270 W)
// and one NVIDIA A100-40GB.
func IntelA100() Config {
	return Config{
		Name:           "Intel+A100",
		Sockets:        2,
		CoresPerSocket: 40,
		CoreMinGHz:     0.8,
		CoreBaseGHz:    2.3,
		CoreMaxGHz:     3.4,
		UncoreMinGHz:   0.8,
		UncoreMaxGHz:   2.2,
		TDPWatts:       270,
		BWPerSocketGBs: 200,
		BWFloorFrac:    0.15,
		Core:           power.CoreParams{IdleWatts: 36, MaxPerCoreWatts: 2.4, FreqExp: 2.4},
		Uncore:         power.UncoreParams{BaseWatts: 6, DynMaxWatts: 47, TrafficWattsPerGBs: 0.03},
		Dram:           power.DramParams{IdleWatts: 9, WattsPerGBs: 0.15},
		GPUs:           []GPUSpec{a100(40)},
		UncoreTau:      6 * time.Millisecond,
		CoreTau:        5 * time.Millisecond,
		GPUTau:         25 * time.Millisecond,
		TDPClamp:       true,
		CoreIPC:        2.0,
	}
}

// Intel4A100 returns the multi-GPU variant: same CPU complex with four
// A100-80GB boards on PCIe (aggregate idle ≈200 W, §6.1).
func Intel4A100() Config {
	c := IntelA100()
	c.Name = "Intel+4A100"
	c.GPUs = []GPUSpec{a100(80), a100(80), a100(80), a100(80)}
	return c
}

// IntelCPUOnly returns a traditional CPU-only HPC node (same 2× Xeon
// 8380 complex, no GPUs) — the setting prior uncore-scaling work
// targeted. On this preset, CPU-heavy workloads do push package power
// toward TDP, so the vendor's hardware clamp visibly engages — the
// contrast §2 draws against GPU-dominant nodes, where it never does.
func IntelCPUOnly() Config {
	c := IntelA100()
	c.Name = "Intel CPU-only"
	c.GPUs = nil
	return c
}

// IntelMax1550 returns the Aurora base unit: Xeon Max 9462 sockets
// (Sapphire Rapids, 32 cores, uncore 0.8–2.5 GHz, HBM2e) with an Intel
// Data Center GPU Max 1550.
func IntelMax1550() Config {
	return Config{
		Name:           "Intel+Max1550",
		Sockets:        2,
		CoresPerSocket: 32,
		CoreMinGHz:     0.8,
		CoreBaseGHz:    2.7,
		CoreMaxGHz:     3.5,
		UncoreMinGHz:   0.8,
		UncoreMaxGHz:   2.5,
		TDPWatts:       350,
		BWPerSocketGBs: 600, // HBM2e
		BWFloorFrac:    0.2,
		Core:           power.CoreParams{IdleWatts: 48, MaxPerCoreWatts: 3.2, FreqExp: 2.4},
		Uncore:         power.UncoreParams{BaseWatts: 10, DynMaxWatts: 62, TrafficWattsPerGBs: 0.015},
		Dram:           power.DramParams{IdleWatts: 14, WattsPerGBs: 0.05},
		GPUs: []GPUSpec{{
			Model:        "Max1550",
			Power:        power.GPUParams{IdleWatts: 100, MaxWatts: 600, ComputeShare: 0.7},
			IdleClockMHz: 300,
			MaxClockMHz:  1600,
		}},
		UncoreTau: 6 * time.Millisecond,
		CoreTau:   5 * time.Millisecond,
		GPUTau:    25 * time.Millisecond,
		TDPClamp:  true,
		CoreIPC:   2.2,
	}
}

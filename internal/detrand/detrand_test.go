package detrand

import (
	"math/rand"
	"testing"
)

// The whole point of the package: a rand.Rand over a counting Source
// emits the exact same Float64/Intn/Int63 stream as one over a bare
// rand.NewSource. If this ever breaks (for instance because Source
// starts implementing Source64, switching rand.Rand onto the Uint64
// shortcut), every committed golden in the repo would shift.
func TestStreamIdenticalToBareSource(t *testing.T) {
	for _, seed := range []int64{1, 2, 7919, -3} {
		bare := rand.New(rand.NewSource(seed))
		counted := rand.New(NewSource(seed))
		for i := 0; i < 2000; i++ {
			switch i % 3 {
			case 0:
				if a, b := bare.Float64(), counted.Float64(); a != b {
					t.Fatalf("seed %d draw %d: Float64 %v != %v", seed, i, a, b)
				}
			case 1:
				if a, b := bare.Intn(32), counted.Intn(32); a != b {
					t.Fatalf("seed %d draw %d: Intn %v != %v", seed, i, a, b)
				}
			case 2:
				if a, b := bare.Int63(), counted.Int63(); a != b {
					t.Fatalf("seed %d draw %d: Int63 %v != %v", seed, i, a, b)
				}
			}
		}
	}
}

// Source must not satisfy rand.Source64: that is what keeps rand.Rand
// off the Uint64 fast path and the stream equal to the bare source.
func TestNotSource64(t *testing.T) {
	var s interface{} = NewSource(1)
	if _, ok := s.(rand.Source64); ok {
		t.Fatal("detrand.Source implements rand.Source64; rand.Rand would change its draw pattern")
	}
}

func TestRestoreResumesMidStream(t *testing.T) {
	const seed, prefix = int64(42), 137
	ref := rand.New(NewSource(seed))
	var want []float64
	for i := 0; i < prefix+50; i++ {
		want = append(want, ref.Float64())
	}

	src := NewSource(seed)
	r := rand.New(src)
	for i := 0; i < prefix; i++ {
		r.Float64()
	}
	if src.Draws() != prefix {
		t.Fatalf("draws = %d, want %d", src.Draws(), prefix)
	}

	// Restore a *fresh* source to the captured position, as a resumed
	// run would, and check the continuation matches.
	resumed := NewSource(0)
	resumed.Restore(seed, src.Draws())
	if resumed.Draws() != prefix || resumed.Seed0() != seed {
		t.Fatalf("restored draws/seed = %d/%d", resumed.Draws(), resumed.Seed0())
	}
	rr := rand.New(resumed)
	for i := prefix; i < prefix+50; i++ {
		if got := rr.Float64(); got != want[i] {
			t.Fatalf("draw %d after restore: %v != %v", i, got, want[i])
		}
	}
}

func TestSeedResetsCount(t *testing.T) {
	s := NewSource(5)
	r := rand.New(s)
	r.Float64()
	r.Float64()
	if s.Draws() != 2 {
		t.Fatalf("draws = %d, want 2", s.Draws())
	}
	s.Seed(9)
	if s.Draws() != 0 || s.Seed0() != 9 {
		t.Fatalf("after Seed: draws=%d seed=%d", s.Draws(), s.Seed0())
	}
}

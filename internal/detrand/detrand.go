// Package detrand wraps math/rand sources with a draw counter so a
// generator's position in its stream can be captured and restored.
//
// The checkpoint layer (internal/checkpoint, docs/CHECKPOINT.md) needs
// to snapshot every RNG a run consumes — the workload runner's jitter
// and burst generator, the fault injectors' rate rolls — and resume
// them mid-stream. math/rand exposes no way to read a generator's
// internal state, but every consumer in this repo funnels through
// Int63 (Float64, Intn and Int63n all reduce to it for a non-Source64
// source), so counting Int63 calls pins the stream position exactly:
// restoring is re-seeding and discarding that many draws.
//
// Source deliberately does NOT implement rand.Source64. rand.Rand
// only takes the Uint64 shortcut for Source64 sources, and nothing in
// this repo calls Uint64, so hiding the interface keeps the emitted
// Float64/Intn streams bit-identical to a bare rand.NewSource — the
// swap into workload and faults is invisible to every committed
// golden.
package detrand

import "math/rand"

// Source is a counting math/rand source. It is not safe for
// concurrent use, matching rand.NewSource.
type Source struct {
	src   rand.Source
	seed  int64
	draws uint64
}

// NewSource returns a counting source seeded like rand.NewSource(seed).
func NewSource(seed int64) *Source {
	return &Source{src: rand.NewSource(seed), seed: seed}
}

// Int63 implements rand.Source.
func (s *Source) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

// Seed implements rand.Source, resetting the draw count.
func (s *Source) Seed(seed int64) {
	s.src.Seed(seed)
	s.seed = seed
	s.draws = 0
}

// Seed0 returns the seed the source was created (or last re-seeded)
// with.
func (s *Source) Seed0() int64 { return s.seed }

// Draws returns how many Int63 values have been drawn since seeding.
func (s *Source) Draws() uint64 { return s.draws }

// Restore re-seeds the source and fast-forwards it by draws values,
// leaving it in exactly the state a fresh source reaches after that
// many Int63 calls.
func (s *Source) Restore(seed int64, draws uint64) {
	s.Seed(seed)
	for i := uint64(0); i < draws; i++ {
		s.src.Int63()
	}
	s.draws = draws
}

package rapl

import (
	"errors"
	"math"
	"testing"
	"time"

	"github.com/spear-repro/magus/internal/msr"
)

func newSpace(t *testing.T) *msr.Space {
	t.Helper()
	return msr.NewSpace(2, 4)
}

func newReader(t *testing.T, s *msr.Space) *Reader {
	t.Helper()
	r, err := New(s, s.Sockets(), s.FirstCPUOf)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestFirstSampleIsBaseline(t *testing.T) {
	s := newSpace(t)
	r := newReader(t, s)
	got, err := r.Sample(0)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalCPUW() != 0 || got.Interval != 0 {
		t.Fatalf("first sample = %+v, want zero", got)
	}
}

func TestPowerFromCounterDeltas(t *testing.T) {
	s := newSpace(t)
	r := newReader(t, s)
	r.Sample(0)
	// Socket 0 consumes 100 J pkg, 20 J dram over 2 s; socket 1 half.
	const unitsPerJ = 16384
	s.Bump(0, msr.PkgEnergyStatus, 100*unitsPerJ)
	s.Bump(0, msr.DramEnergyStatus, 20*unitsPerJ)
	s.Bump(4, msr.PkgEnergyStatus, 50*unitsPerJ)
	s.Bump(4, msr.DramEnergyStatus, 10*unitsPerJ)
	got, err := r.Sample(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.PkgW[0]-50) > 1e-9 || math.Abs(got.PkgW[1]-25) > 1e-9 {
		t.Fatalf("PkgW = %v", got.PkgW)
	}
	if math.Abs(got.DramW[0]-10) > 1e-9 || math.Abs(got.DramW[1]-5) > 1e-9 {
		t.Fatalf("DramW = %v", got.DramW)
	}
	if math.Abs(got.TotalPkgW()-75) > 1e-9 {
		t.Fatalf("TotalPkgW = %v", got.TotalPkgW())
	}
	if math.Abs(got.TotalCPUW()-90) > 1e-9 {
		t.Fatalf("TotalCPUW = %v", got.TotalCPUW())
	}
	if math.Abs(r.TotalPkgJ()-150) > 1e-9 || math.Abs(r.TotalDramJ()-30) > 1e-9 {
		t.Fatalf("totals = %v / %v", r.TotalPkgJ(), r.TotalDramJ())
	}
}

func TestWraparoundHandled(t *testing.T) {
	s := newSpace(t)
	// Park the counter just below the wrap point before the baseline.
	s.Poke(0, msr.PkgEnergyStatus, 0xFFFFFFFF-100)
	r := newReader(t, s)
	r.Sample(0)
	s.Bump(0, msr.PkgEnergyStatus, 300) // wraps
	got, err := r.Sample(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	wantJ := 300.0 / 16384
	if math.Abs(got.PkgJ[0]-wantJ) > 1e-9 {
		t.Fatalf("wrapped delta = %v J, want %v", got.PkgJ[0], wantJ)
	}
}

func TestReadErrorPropagates(t *testing.T) {
	s := newSpace(t)
	r := newReader(t, s)
	s.FailReads(msr.ErrInjected)
	if _, err := r.Sample(time.Second); !errors.Is(err, msr.ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
}

func TestNewFailsWhenUnitsUnreadable(t *testing.T) {
	s := newSpace(t)
	s.FailReads(msr.ErrInjected)
	if _, err := New(s, 2, s.FirstCPUOf); err == nil {
		t.Fatal("New succeeded with unreadable units")
	}
	if _, err := New(s, 0, s.FirstCPUOf); err == nil {
		t.Fatal("New accepted zero sockets")
	}
}

func TestTDPWatts(t *testing.T) {
	s := newSpace(t)
	s.Poke(0, msr.PkgPowerInfo, uint64(270/0.125))
	r := newReader(t, s)
	tdp, err := r.TDPWatts(0)
	if err != nil {
		t.Fatal(err)
	}
	if tdp != 270 {
		t.Fatalf("TDP = %v, want 270", tdp)
	}
}

// Package rapl implements an Intel RAPL (Running Average Power Limit)
// reader over an MSR device: per-socket package and DRAM energy
// counters with the hardware's unit encoding and 32-bit wraparound
// semantics. The paper uses RAPL for all CPU-side power and energy
// measurement (§5); both the harness and the UPS baseline (which needs
// DRAM power) read through this package.
package rapl

import (
	"fmt"
	"time"

	"github.com/spear-repro/magus/internal/msr"
)

// Reader samples RAPL counters for every socket of a node.
type Reader struct {
	dev      msr.Device
	sockets  int
	firstCPU func(socket int) int

	jouleUnit []float64
	lastPkg   []uint64
	lastDram  []uint64
	lastAt    time.Duration
	started   bool

	totalPkgJ  []float64
	totalDramJ []float64
}

// New builds a reader. firstCPU maps a socket to a CPU that can address
// its package-scope MSRs. The RAPL unit register is read once per
// socket, as real tooling does.
func New(dev msr.Device, sockets int, firstCPU func(int) int) (*Reader, error) {
	if sockets <= 0 {
		return nil, fmt.Errorf("rapl: non-positive socket count %d", sockets)
	}
	r := &Reader{
		dev:        dev,
		sockets:    sockets,
		firstCPU:   firstCPU,
		jouleUnit:  make([]float64, sockets),
		lastPkg:    make([]uint64, sockets),
		lastDram:   make([]uint64, sockets),
		totalPkgJ:  make([]float64, sockets),
		totalDramJ: make([]float64, sockets),
	}
	for s := 0; s < sockets; s++ {
		raw, err := dev.Read(firstCPU(s), msr.RaplPowerUnit)
		if err != nil {
			return nil, fmt.Errorf("rapl: read power unit socket %d: %w", s, err)
		}
		_, ju, _ := msr.DecodePowerUnit(raw)
		if ju <= 0 {
			return nil, fmt.Errorf("rapl: bad energy unit on socket %d", s)
		}
		r.jouleUnit[s] = ju
	}
	return r, nil
}

// Sockets returns the socket count.
func (r *Reader) Sockets() int { return r.sockets }

// Sample holds one sampling interval's results.
type Sample struct {
	// Interval is the time since the previous sample.
	Interval time.Duration
	// PkgJ and DramJ are per-socket joules consumed over the interval.
	PkgJ, DramJ []float64
	// PkgW and DramW are the corresponding average watts (zero on the
	// first sample, which only establishes a baseline).
	PkgW, DramW []float64
}

// TotalPkgW returns the sample's package watts summed over sockets.
func (s Sample) TotalPkgW() float64 { return sum(s.PkgW) }

// TotalDramW returns the sample's DRAM watts summed over sockets.
func (s Sample) TotalDramW() float64 { return sum(s.DramW) }

// TotalCPUW returns package + DRAM watts over all sockets — the paper's
// "CPU power" quantity.
func (s Sample) TotalCPUW() float64 { return s.TotalPkgW() + s.TotalDramW() }

func sum(xs []float64) float64 {
	var t float64
	for _, x := range xs {
		t += x
	}
	return t
}

// Sample reads all counters at virtual time now and returns the energy
// and average power since the previous call. The first call returns a
// zero sample and establishes the baseline.
func (r *Reader) Sample(now time.Duration) (Sample, error) {
	out := Sample{
		PkgJ:  make([]float64, r.sockets),
		DramJ: make([]float64, r.sockets),
		PkgW:  make([]float64, r.sockets),
		DramW: make([]float64, r.sockets),
	}
	elapsed := now - r.lastAt
	for s := 0; s < r.sockets; s++ {
		cpu := r.firstCPU(s)
		pkg, err := r.dev.Read(cpu, msr.PkgEnergyStatus)
		if err != nil {
			return Sample{}, fmt.Errorf("rapl: pkg energy socket %d: %w", s, err)
		}
		dram, err := r.dev.Read(cpu, msr.DramEnergyStatus)
		if err != nil {
			return Sample{}, fmt.Errorf("rapl: dram energy socket %d: %w", s, err)
		}
		if r.started {
			pj := float64(msr.EnergyDelta(r.lastPkg[s], pkg)) * r.jouleUnit[s]
			dj := float64(msr.EnergyDelta(r.lastDram[s], dram)) * r.jouleUnit[s]
			out.PkgJ[s] = pj
			out.DramJ[s] = dj
			r.totalPkgJ[s] += pj
			r.totalDramJ[s] += dj
			if elapsed > 0 {
				out.PkgW[s] = pj / elapsed.Seconds()
				out.DramW[s] = dj / elapsed.Seconds()
			}
		}
		r.lastPkg[s] = pkg
		r.lastDram[s] = dram
	}
	if r.started {
		out.Interval = elapsed
	}
	r.lastAt = now
	r.started = true
	return out, nil
}

// TotalPkgJ returns cumulative package joules across sockets since the
// first sample.
func (r *Reader) TotalPkgJ() float64 { return sum(r.totalPkgJ) }

// TotalDramJ returns cumulative DRAM joules across sockets.
func (r *Reader) TotalDramJ() float64 { return sum(r.totalDramJ) }

// TDPWatts reads a socket's thermal design power from PKG_POWER_INFO.
func (r *Reader) TDPWatts(socket int) (float64, error) {
	raw, err := r.dev.Read(r.firstCPU(socket), msr.PkgPowerInfo)
	if err != nil {
		return 0, fmt.Errorf("rapl: power info socket %d: %w", socket, err)
	}
	return float64(raw&0x7FFF) * 0.125, nil
}

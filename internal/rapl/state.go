package rapl

import (
	"fmt"
	"time"
)

// State is a reader's mutable state. The joule units are read from the
// device at construction and reproduced by rebuilding the reader over
// the same register file, so they are not part of the snapshot.
type State struct {
	LastPkg    []uint64
	LastDram   []uint64
	LastAt     time.Duration
	Started    bool
	TotalPkgJ  []float64
	TotalDramJ []float64
}

// State captures the reader's sampling baselines and energy totals.
func (r *Reader) State() State {
	return State{
		LastPkg:    append([]uint64(nil), r.lastPkg...),
		LastDram:   append([]uint64(nil), r.lastDram...),
		LastAt:     r.lastAt,
		Started:    r.started,
		TotalPkgJ:  append([]float64(nil), r.totalPkgJ...),
		TotalDramJ: append([]float64(nil), r.totalDramJ...),
	}
}

// Restore overwrites the reader's baselines and totals.
func (r *Reader) Restore(st State) error {
	if len(st.LastPkg) != r.sockets || len(st.LastDram) != r.sockets ||
		len(st.TotalPkgJ) != r.sockets || len(st.TotalDramJ) != r.sockets {
		return fmt.Errorf("rapl: restore arrays do not match %d sockets", r.sockets)
	}
	copy(r.lastPkg, st.LastPkg)
	copy(r.lastDram, st.LastDram)
	r.lastAt = st.LastAt
	r.started = st.Started
	copy(r.totalPkgJ, st.TotalPkgJ)
	copy(r.totalDramJ, st.TotalDramJ)
	return nil
}

// Package safeio holds the partial-file-safe output helper shared by
// every CLI in this repo. A report, record or trace that fails halfway
// through must never leave a truncated file behind for a later plotting
// or analysis step to silently consume.
package safeio

import (
	"fmt"
	"io"
	"os"
)

// WriteFile creates path, runs write into it, and never leaves a
// partial file behind: a failed write (or close) removes the file and
// reports the path in the error.
func WriteFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("write %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return fmt.Errorf("write %s: %w", path, err)
	}
	return nil
}

package safeio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileSuccess(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "hello\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "hello\n" {
		t.Fatalf("content = %q, want %q", b, "hello\n")
	}
}

func TestWriteFileFailingWriterLeavesNoFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	boom := errors.New("boom")
	err := WriteFile(path, func(w io.Writer) error {
		io.WriteString(w, "partial data that must not survive")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	if !strings.Contains(err.Error(), path) {
		t.Fatalf("error %q does not name the path %q", err, path)
	}
	if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
		t.Fatalf("partial file left behind: stat err = %v", statErr)
	}
}

func TestWriteFileOverwritesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "new")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(path)
	if string(b) != "new" {
		t.Fatalf("content = %q, want %q", b, "new")
	}
}

func TestWriteFileUncreatablePath(t *testing.T) {
	err := WriteFile(filepath.Join(t.TempDir(), "missing-dir", "out.txt"), func(io.Writer) error {
		t.Fatal("write callback ran despite create failure")
		return nil
	})
	if err == nil {
		t.Fatal("expected create error")
	}
}

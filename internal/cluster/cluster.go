// Package cluster runs several simulated nodes in lockstep under a
// shared virtual clock and aggregates their power draw — the setting
// behind the paper's §6.1 remark that reducing instantaneous power
// "helps prevent the aggregate power consumption of all applications
// from exceeding the system's total power budget if one is in place".
//
// A Spec assigns each node its hardware preset, application and
// governor; Run executes the batch to completion and returns per-node
// and aggregate power traces plus budget analytics (peak power, time
// over budget, energy, makespan).
package cluster

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/spear-repro/magus/internal/harness"
	"github.com/spear-repro/magus/internal/node"
	"github.com/spear-repro/magus/internal/obs"
	"github.com/spear-repro/magus/internal/sim"
	"github.com/spear-repro/magus/internal/telemetry"
	"github.com/spear-repro/magus/internal/workload"
)

// maxHorizonExtensions bounds adaptive horizon growth: a batch may run
// up to (1 + maxHorizonExtensions) base horizons before unfinished
// members are reported as an error. The base horizon is already 4× the
// slowest nominal duration, so 4 windows ≈ 16× nominal — far beyond
// any slowdown a real governor can cause.
const maxHorizonExtensions = 3

// NodeSpec describes one cluster member.
type NodeSpec struct {
	Name     string
	Config   node.Config
	Workload *workload.Program
	// Factory builds the member's governor (nil = vendor default).
	Factory harness.GovernorFactory
	Seed    int64
}

// Result is one cluster run's outcome.
type Result struct {
	// NodePower holds each member's total power trace (CPU + GPU).
	NodePower map[string]*telemetry.Series
	// Aggregate is the cluster-wide power trace.
	Aggregate *telemetry.Series
	// MakespanS is the time until the last application finished.
	MakespanS float64
	// EnergyJ is total cluster energy to completion.
	EnergyJ float64
	// PeakW and AvgW summarise the aggregate trace.
	PeakW, AvgW float64
}

// TimeOverBudget returns the fraction of the makespan during which the
// aggregate power exceeded budgetW, dt-weighted under sample-and-hold:
// each sample's power is held until the next sample, and the last
// sample is held until the makespan. (An earlier version divided the
// over-budget *sample count* by the sample count, which mis-weights
// the t=0 sample and silently breaks if the recorder interval ever
// varies; weighting by actual interval length makes the fraction an
// integral over time, independent of how the trace was sampled.)
func (r Result) TimeOverBudget(budgetW float64) float64 {
	if r.Aggregate == nil || r.Aggregate.Len() == 0 || r.MakespanS <= 0 {
		return 0
	}
	times, vals := r.Aggregate.Times, r.Aggregate.Values
	var over float64
	for i, v := range vals {
		if v <= budgetW {
			continue
		}
		end := r.MakespanS
		if i+1 < len(times) {
			end = times[i+1]
		}
		if dt := end - times[i]; dt > 0 {
			over += dt
		}
	}
	if frac := over / r.MakespanS; frac < 1 {
		return frac
	}
	return 1
}

// member is one node's live state during a run.
type member struct {
	spec   NodeSpec
	node   *node.Node
	runner *workload.Runner
	// govName is the attached governor's display name ("default" when
	// the member runs under the vendor default, i.e. no factory).
	govName string
}

// Run executes the batch. All nodes share the virtual clock; each
// application starts at t=0 (a batch launched together). sampleEvery
// sets the power-trace resolution (0 = 100 ms).
func Run(specs []NodeSpec, sampleEvery time.Duration) (Result, error) {
	return RunObserved(specs, sampleEvery, nil)
}

// RunObserved is Run with a metrics observer attached: per-node and
// aggregate power gauges, cumulative cluster energy, and completion
// counters are published on the sampling interval. A nil observer is
// exactly Run — observation is passive and never perturbs the batch.
func RunObserved(specs []NodeSpec, sampleEvery time.Duration, o *obs.Observer) (Result, error) {
	if len(specs) == 0 {
		return Result{}, fmt.Errorf("cluster: empty spec list")
	}
	if sampleEvery <= 0 {
		sampleEvery = 100 * time.Millisecond
	}
	eng := sim.NewEngine(0)
	members := make([]*member, 0, len(specs))
	var horizon time.Duration

	for i, spec := range specs {
		if spec.Name == "" {
			spec.Name = fmt.Sprintf("node%d", i)
		}
		if spec.Workload == nil {
			return Result{}, fmt.Errorf("cluster: %s has no workload", spec.Name)
		}
		n := node.New(spec.Config)
		runner := workload.NewRunner(spec.Workload, spec.Config.SystemBWGBs(), spec.Seed)
		runner.SetAttained(n.AttainedGBs)
		m := &member{spec: spec, node: n, runner: runner, govName: "default"}
		members = append(members, m)

		eng.AddComponent(sim.ComponentFunc(func(now, dt time.Duration) {
			m.runner.Step(now, dt)
			m.node.SetDemand(m.runner.Demand())
		}))
		eng.AddComponent(n)

		if spec.Factory != nil {
			gov := spec.Factory()
			env, err := harness.BuildEnv(n)
			if err != nil {
				return Result{}, err
			}
			if err := gov.Attach(env); err != nil {
				return Result{}, fmt.Errorf("cluster: %s: %w", spec.Name, err)
			}
			m.govName = gov.Name()
			eng.AddTask(&sim.Task{Name: spec.Name + "/" + gov.Name(), Interval: gov.Interval(), Fn: gov.Invoke}, 0)
		}
		if h := spec.Workload.NominalDuration()*4 + 10*time.Second; h > horizon {
			horizon = h
		}
	}

	rec := telemetry.NewRecorder(sampleEvery)
	for _, m := range members {
		mm := m
		rec.Track(mm.spec.Name, mm.node.TotalPowerW)
	}
	rec.Track("aggregate", func() float64 {
		var p float64
		for _, m := range members {
			p += m.node.TotalPowerW()
		}
		return p
	})
	eng.AddComponent(rec)

	if o != nil {
		reg := o.Registry()
		nodeW := reg.GaugeVec("magus_cluster_node_power_watts",
			"Total power per cluster member (CPU + GPU) in watts.", "node")
		aggW := reg.Gauge("magus_cluster_power_watts", "Aggregate cluster power in watts.")
		energyG := reg.Gauge("magus_cluster_energy_joules", "Cumulative cluster energy to completion.")
		samplesC := reg.Counter("magus_cluster_observer_samples_total",
			"Observer sampling ticks; tracks the telemetry recorder's fixed sample grid.")
		doneG := reg.Gauge("magus_cluster_nodes_done", "Cluster members whose application finished.")
		reg.Gauge("magus_cluster_nodes", "Cluster member count.").Set(float64(len(members)))
		memberInfo := reg.GaugeVec("magus_cluster_member_info",
			"Static cluster membership (constant 1): one series per member with its index, node name, workload and governor.",
			"member", "node", "workload", "governor")
		gauges := make([]*obs.Gauge, len(members))
		for i, m := range members {
			gauges[i] = nodeW.With(m.spec.Name)
			memberInfo.With(strconv.Itoa(i), m.spec.Name, m.spec.Workload.Name, m.govName).Set(1)
		}
		var next time.Duration
		eng.AddComponent(sim.ComponentFunc(func(now, dt time.Duration) {
			if now < next {
				return
			}
			// Advance on the fixed grid rather than re-anchoring on the
			// observed tick (next = now + sampleEvery): if the engine
			// step does not divide sampleEvery, re-anchoring stretches
			// the cadence and the observer drifts out of alignment with
			// the telemetry recorder sampling the same interval.
			for next <= now {
				next += sampleEvery
			}
			samplesC.Inc()
			var agg, energy float64
			finished := 0
			for i, m := range members {
				p := m.node.TotalPowerW()
				gauges[i].Set(p)
				agg += p
				pkg, drm, gpu := m.node.EnergyJ()
				energy += pkg + drm + gpu
				if m.runner.Done() {
					finished++
				}
			}
			aggW.Set(agg)
			energyG.Set(energy)
			doneG.Set(float64(finished))
		}))
	}

	done := func() bool {
		for _, m := range members {
			if !m.runner.Done() {
				return false
			}
		}
		return true
	}
	// The base horizon (4× the slowest member's nominal duration +
	// 10 s) assumes no governor slows a member past 4× nominal. A
	// throttled member used to hit that wall and the batch aborted with
	// a bare horizon error — or, with the error ignored, reported a
	// silently truncated makespan. Extend the horizon adaptively up to
	// maxHorizonExtensions more base-horizon windows; a member that
	// still hasn't finished is genuinely stuck (or slowed beyond any
	// plausible governor effect), so name the stragglers explicitly.
	end, err := eng.RunUntil(done, horizon)
	for ext := 0; err != nil && errors.Is(err, sim.ErrHorizon) && ext < maxHorizonExtensions; ext++ {
		end, err = eng.RunUntil(done, horizon)
	}
	if err != nil {
		if errors.Is(err, sim.ErrHorizon) {
			var stuck []string
			for _, m := range members {
				if !m.runner.Done() {
					stuck = append(stuck, fmt.Sprintf("%s (%s on %s)",
						m.spec.Name, m.spec.Workload.Name, m.spec.Config.Name))
				}
			}
			return Result{}, fmt.Errorf(
				"cluster: members unfinished after %v (%d× the 4×-nominal horizon %v): %s",
				end, 1+maxHorizonExtensions, horizon, strings.Join(stuck, ", "))
		}
		return Result{}, fmt.Errorf("cluster: %w", err)
	}

	res := Result{
		NodePower: make(map[string]*telemetry.Series, len(members)),
		Aggregate: rec.Series("aggregate"),
		MakespanS: end.Seconds(),
	}
	for _, m := range members {
		res.NodePower[m.spec.Name] = rec.Series(m.spec.Name)
		pkg, drm, gpu := m.node.EnergyJ()
		res.EnergyJ += pkg + drm + gpu
	}
	if res.Aggregate.Len() > 0 {
		res.PeakW = res.Aggregate.Max()
		res.AvgW = res.Aggregate.Mean()
	}
	return res, nil
}

// Uniform builds a homogeneous spec list: count nodes of cfg, one
// workload each taken round-robin from apps, all under factory. Empty
// apps and non-positive count are rejected loudly: the former used to
// panic with an integer divide by zero at apps[i%len(apps)], and the
// latter returned an empty spec list that Run then rejected with an
// unrelated "empty spec list" error far from the mistake.
func Uniform(cfg node.Config, apps []*workload.Program, count int, factory harness.GovernorFactory, baseSeed int64) ([]NodeSpec, error) {
	if len(apps) == 0 {
		return nil, fmt.Errorf("cluster: Uniform needs at least one workload")
	}
	if count <= 0 {
		return nil, fmt.Errorf("cluster: Uniform node count %d; need at least 1", count)
	}
	for i, a := range apps {
		if a == nil {
			return nil, fmt.Errorf("cluster: Uniform workload %d is nil", i)
		}
	}
	specs := make([]NodeSpec, count)
	for i := range specs {
		specs[i] = NodeSpec{
			Name:     fmt.Sprintf("node%d", i),
			Config:   cfg,
			Workload: apps[i%len(apps)],
			Factory:  factory,
			Seed:     baseSeed + int64(i)*131,
		}
	}
	return specs, nil
}

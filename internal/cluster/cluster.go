// Package cluster runs several simulated nodes in lockstep under a
// shared virtual clock and aggregates their power draw — the setting
// behind the paper's §6.1 remark that reducing instantaneous power
// "helps prevent the aggregate power consumption of all applications
// from exceeding the system's total power budget if one is in place".
//
// A Spec assigns each node its hardware preset, application and
// governor; Run executes the batch to completion and returns per-node
// and aggregate power traces plus budget analytics (peak power, time
// over budget, energy, makespan).
//
// Execution is sharded: members are partitioned into contiguous blocks
// run concurrently on the internal/parallel pool, each block stepping
// its nodes in one cache-friendly pass over struct-of-arrays state (see
// fleet.go and docs/FLEET.md). Because members are independent — each
// owns its node, runner and governor, coupled only through the shared
// fixed-step clock — the sharded run is byte-identical to the retained
// single-engine reference path (single.go) for any shard count.
package cluster

import (
	"fmt"
	"time"

	"github.com/spear-repro/magus/internal/faults"
	"github.com/spear-repro/magus/internal/harness"
	"github.com/spear-repro/magus/internal/node"
	"github.com/spear-repro/magus/internal/obs"
	"github.com/spear-repro/magus/internal/spans"
	"github.com/spear-repro/magus/internal/telemetry"
	"github.com/spear-repro/magus/internal/workload"
)

// maxHorizonExtensions bounds adaptive horizon growth: a batch may run
// up to (1 + maxHorizonExtensions) base horizons before unfinished
// members are reported as an error. The base horizon is already 4× the
// slowest nominal duration, so 4 windows ≈ 16× nominal — far beyond
// any slowdown a real governor can cause.
const maxHorizonExtensions = 3

// NodeSpec describes one cluster member.
type NodeSpec struct {
	Name     string
	Config   node.Config
	Workload *workload.Program
	// Factory builds the member's governor (nil = vendor default).
	Factory harness.GovernorFactory
	Seed    int64
	// Faults arms a deterministic fault schedule against this member's
	// telemetry devices, as harness.Options.Faults does for single
	// runs (nil/empty = no injection, bit-identical to the unfaulted
	// path). Faults reach only the member's own governor: members
	// share no devices.
	Faults *faults.Plan
}

// Result is one cluster run's outcome.
type Result struct {
	// NodePower holds each member's total power trace (CPU + GPU).
	// Nil under Options.Telemetry == TelemetryAggregate.
	NodePower map[string]*telemetry.Series
	// Aggregate is the cluster-wide power trace.
	Aggregate *telemetry.Series
	// MakespanS is the time until the last application finished.
	MakespanS float64
	// EnergyJ is total cluster energy to completion.
	EnergyJ float64
	// PeakW and AvgW summarise the aggregate trace.
	PeakW, AvgW float64

	// Top ranks the heaviest members by energy-to-completion when
	// Options.TopK was set (nil otherwise).
	Top []MemberSummary `json:",omitempty"`
	// UncoreWaste is the fleet-wide uncore energy attribution
	// (baseline + useful + waste vs. the independently integrated
	// total) when Options.Waste was set; WasteBalanced reports whether
	// the decomposition balances within the integration's ulp budget.
	UncoreWaste   *spans.EnergyAttr `json:",omitempty"`
	WasteBalanced bool              `json:",omitempty"`
	// Dist is the fleet distribution snapshot (per-member node power,
	// attained throughput; per-socket uncore ratio and waste watts)
	// when Options.Dist was set. Identical for any shard count: the
	// underlying sketches merge by integer bucket addition.
	Dist *FleetDist `json:",omitempty"`
}

// MemberSummary is one member's reduced trace: the per-node numbers a
// fleet operator still wants when full 10k-member traces are switched
// off.
type MemberSummary struct {
	Index    int
	Name     string
	Workload string
	Governor string
	PeakW    float64
	AvgW     float64
	EnergyJ  float64
	// DoneS is the virtual time at which the member's application
	// finished, in seconds.
	DoneS float64
}

// TimeOverBudget returns the fraction of the makespan during which the
// aggregate power exceeded budgetW, dt-weighted under sample-and-hold:
// each sample's power is held until the next sample, and the last
// sample is held until the makespan. (An earlier version divided the
// over-budget *sample count* by the sample count, which mis-weights
// the t=0 sample and silently breaks if the recorder interval ever
// varies; weighting by actual interval length makes the fraction an
// integral over time, independent of how the trace was sampled.)
func (r Result) TimeOverBudget(budgetW float64) float64 {
	if r.Aggregate == nil || r.Aggregate.Len() == 0 || r.MakespanS <= 0 {
		return 0
	}
	times, vals := r.Aggregate.Times, r.Aggregate.Values
	var over float64
	for i, v := range vals {
		if v <= budgetW {
			continue
		}
		end := r.MakespanS
		if i+1 < len(times) {
			end = times[i+1]
		}
		if dt := end - times[i]; dt > 0 {
			over += dt
		}
	}
	if frac := over / r.MakespanS; frac < 1 {
		return frac
	}
	return 1
}

// member is one node's live state during a run.
type member struct {
	spec   NodeSpec
	node   *node.Node
	runner *workload.Runner
	// govName is the attached governor's display name ("default" when
	// the member runs under the vendor default, i.e. no factory).
	govName string
	// invoke/govInterval/govNext mirror a sim.Task for the member's
	// governor (invoke nil = no governor daemon). The shard loop fires
	// them with exactly the engine's task semantics.
	invoke      func(now time.Duration) time.Duration
	govInterval time.Duration
	govNext     time.Duration
	fset        *faults.Set
}

// normalize validates and canonicalises a spec list: names are
// defaulted ("node<i>") and checked unique, workloads and fault plans
// are validated, and the shared base horizon (4× the slowest nominal
// duration + 10 s) is computed. Duplicate names are a loud error: the
// name keys the telemetry series and the magus_cluster_node_power_watts
// label, and a collision used to silently alias two members' traces
// (the recorder's duplicate-probe panic was the only, accidental,
// guard).
func normalize(specs []NodeSpec, sampleEvery time.Duration) (out []NodeSpec, every, horizon time.Duration, err error) {
	if len(specs) == 0 {
		return nil, 0, 0, fmt.Errorf("cluster: empty spec list")
	}
	every = sampleEvery
	if every <= 0 {
		every = 100 * time.Millisecond
	}
	out = make([]NodeSpec, len(specs))
	seen := make(map[string]int, len(specs))
	for i, spec := range specs {
		if spec.Name == "" {
			spec.Name = fmt.Sprintf("node%d", i)
		}
		if spec.Workload == nil {
			return nil, 0, 0, fmt.Errorf("cluster: %s has no workload", spec.Name)
		}
		if j, dup := seen[spec.Name]; dup {
			return nil, 0, 0, fmt.Errorf(
				"cluster: duplicate member name %q (specs %d and %d): names key telemetry series and the magus_cluster_node_power_watts label, so duplicates would silently alias two members' traces",
				spec.Name, j, i)
		}
		seen[spec.Name] = i
		if spec.Faults.Armed() {
			if ferr := spec.Faults.Validate(); ferr != nil {
				return nil, 0, 0, fmt.Errorf("cluster: %s: faults: %w", spec.Name, ferr)
			}
		}
		if h := spec.Workload.NominalDuration()*4 + 10*time.Second; h > horizon {
			horizon = h
		}
		out[i] = spec
	}
	return out, every, horizon, nil
}

// buildMember wires one normalized spec: node, workload runner, and —
// when a factory is set — a fresh governor attached over an
// environment whose telemetry devices carry the member's fault
// wrappers. now is the virtual clock the fault injectors read.
func buildMember(spec NodeSpec, now func() time.Duration) (*member, error) {
	n := node.New(spec.Config)
	runner := workload.NewRunner(spec.Workload, spec.Config.SystemBWGBs(), spec.Seed)
	runner.SetAttained(n.AttainedGBs)
	m := &member{spec: spec, node: n, runner: runner, govName: "default"}
	if spec.Faults.Armed() {
		m.fset = faults.NewSet(spec.Faults, now)
	}
	if spec.Factory != nil {
		gov := spec.Factory()
		env, err := harness.BuildFaultyEnv(n, m.fset)
		if err != nil {
			return nil, err
		}
		if err := gov.Attach(env); err != nil {
			return nil, fmt.Errorf("cluster: %s: %w", spec.Name, err)
		}
		m.govName = gov.Name()
		m.invoke = gov.Invoke
		m.govInterval = gov.Interval()
	}
	return m, nil
}

// Run executes the batch. All nodes share the virtual clock; each
// application starts at t=0 (a batch launched together). sampleEvery
// sets the power-trace resolution (0 = 100 ms).
func Run(specs []NodeSpec, sampleEvery time.Duration) (Result, error) {
	return RunFleet(specs, Options{SampleEvery: sampleEvery})
}

// RunObserved is Run with a metrics observer attached: per-node and
// aggregate power gauges, cumulative cluster energy, and completion
// counters are published on the sampling interval. A nil observer is
// exactly Run — observation is passive and never perturbs the batch.
func RunObserved(specs []NodeSpec, sampleEvery time.Duration, o *obs.Observer) (Result, error) {
	return RunFleet(specs, Options{SampleEvery: sampleEvery, Obs: o})
}

// Uniform builds a homogeneous spec list: count nodes of cfg, one
// workload each taken round-robin from apps, all under factory. Empty
// apps and non-positive count are rejected loudly: the former used to
// panic with an integer divide by zero at apps[i%len(apps)], and the
// latter returned an empty spec list that Run then rejected with an
// unrelated "empty spec list" error far from the mistake.
func Uniform(cfg node.Config, apps []*workload.Program, count int, factory harness.GovernorFactory, baseSeed int64) ([]NodeSpec, error) {
	if len(apps) == 0 {
		return nil, fmt.Errorf("cluster: Uniform needs at least one workload")
	}
	if count <= 0 {
		return nil, fmt.Errorf("cluster: Uniform node count %d; need at least 1", count)
	}
	for i, a := range apps {
		if a == nil {
			return nil, fmt.Errorf("cluster: Uniform workload %d is nil", i)
		}
	}
	specs := make([]NodeSpec, count)
	for i := range specs {
		specs[i] = NodeSpec{
			Name:     fmt.Sprintf("node%d", i),
			Config:   cfg,
			Workload: apps[i%len(apps)],
			Factory:  factory,
			Seed:     baseSeed + int64(i)*131,
		}
	}
	return specs, nil
}

package cluster

import (
	"testing"
	"time"

	"github.com/spear-repro/magus/internal/core"
	"github.com/spear-repro/magus/internal/governor"
	"github.com/spear-repro/magus/internal/node"
	"github.com/spear-repro/magus/internal/workload"
)

func batchApps(t *testing.T) []*workload.Program {
	t.Helper()
	var out []*workload.Program
	for _, name := range []string{"bfs", "gemm", "where", "raytracing"} {
		p, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		out = append(out, p)
	}
	return out
}

func magusFactory() governor.Governor { return core.New(core.DefaultConfig()) }

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, 0); err == nil {
		t.Fatal("empty spec list accepted")
	}
	if _, err := Run([]NodeSpec{{Config: node.IntelA100()}}, 0); err == nil {
		t.Fatal("spec without workload accepted")
	}
}

func TestUniformSpecs(t *testing.T) {
	apps := batchApps(t)
	specs := Uniform(node.IntelA100(), apps, 6, magusFactory, 1)
	if len(specs) != 6 {
		t.Fatalf("specs = %d", len(specs))
	}
	if specs[4].Workload != apps[0] || specs[5].Workload != apps[1] {
		t.Fatal("round-robin assignment wrong")
	}
	seeds := map[int64]bool{}
	for _, s := range specs {
		if seeds[s.Seed] {
			t.Fatal("duplicate seeds")
		}
		seeds[s.Seed] = true
	}
}

func TestClusterRunAggregates(t *testing.T) {
	apps := batchApps(t)
	specs := Uniform(node.IntelA100(), apps, 4, nil, 1)
	res, err := Run(specs, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NodePower) != 4 {
		t.Fatalf("node traces = %d", len(res.NodePower))
	}
	if res.Aggregate == nil || res.Aggregate.Len() < 50 {
		t.Fatal("aggregate trace missing or short")
	}
	// Aggregate equals the sum of members at each sample.
	for i := 0; i < res.Aggregate.Len(); i += 17 {
		var sum float64
		for _, s := range res.NodePower {
			sum += s.Values[i]
		}
		if d := res.Aggregate.Values[i] - sum; d > 1e-6 || d < -1e-6 {
			t.Fatalf("aggregate[%d] = %v, members sum %v", i, res.Aggregate.Values[i], sum)
		}
	}
	// Makespan is governed by the slowest member (raytracing, ≈16 s).
	if res.MakespanS < 14 || res.MakespanS > 20 {
		t.Fatalf("makespan = %.1f s", res.MakespanS)
	}
	if res.PeakW <= res.AvgW || res.EnergyJ <= 0 {
		t.Fatalf("summary: peak %.0f avg %.0f energy %.0f", res.PeakW, res.AvgW, res.EnergyJ)
	}
}

// The §6.1 budget claim: per-node uncore scaling lowers the cluster's
// aggregate power so a fixed budget is violated less (or not at all),
// at a small makespan cost.
func TestClusterBudgetClaim(t *testing.T) {
	apps := batchApps(t)
	base, err := Run(Uniform(node.IntelA100(), apps, 6, nil, 1), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := Run(Uniform(node.IntelA100(), apps, 6, magusFactory, 1), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if tuned.AvgW >= base.AvgW {
		t.Fatalf("MAGUS did not reduce average cluster power: %.0f vs %.0f W", tuned.AvgW, base.AvgW)
	}
	if tuned.EnergyJ >= base.EnergyJ {
		t.Fatalf("MAGUS did not reduce cluster energy: %.0f vs %.0f J", tuned.EnergyJ, base.EnergyJ)
	}
	if tuned.MakespanS > base.MakespanS*1.06 {
		t.Fatalf("makespan stretched too much: %.1f vs %.1f s", tuned.MakespanS, base.MakespanS)
	}
	// A budget at 92 % of the unmanaged peak: the unmanaged cluster
	// violates it some of the time, the managed one much less.
	budget := base.PeakW * 0.92
	baseOver := base.TimeOverBudget(budget)
	tunedOver := tuned.TimeOverBudget(budget)
	if baseOver <= 0 {
		t.Fatalf("budget %0.f W never violated by baseline (peak %.0f)", budget, base.PeakW)
	}
	if tunedOver >= baseOver {
		t.Fatalf("time over budget: tuned %.2f vs base %.2f", tunedOver, baseOver)
	}
}

func TestClusterDeterminism(t *testing.T) {
	apps := batchApps(t)
	a, err := Run(Uniform(node.IntelA100(), apps, 3, magusFactory, 9), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Uniform(node.IntelA100(), apps, 3, magusFactory, 9), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if a.EnergyJ != b.EnergyJ || a.MakespanS != b.MakespanS || a.PeakW != b.PeakW {
		t.Fatal("cluster runs not deterministic")
	}
}

package cluster

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"github.com/spear-repro/magus/internal/core"
	"github.com/spear-repro/magus/internal/governor"
	"github.com/spear-repro/magus/internal/harness"
	"github.com/spear-repro/magus/internal/node"
	"github.com/spear-repro/magus/internal/obs"
	"github.com/spear-repro/magus/internal/telemetry"
	"github.com/spear-repro/magus/internal/workload"
)

func batchApps(t *testing.T) []*workload.Program {
	t.Helper()
	var out []*workload.Program
	for _, name := range []string{"bfs", "gemm", "where", "raytracing"} {
		p, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		out = append(out, p)
	}
	return out
}

func magusFactory() governor.Governor { return core.New(core.DefaultConfig()) }

// mustUniform builds a uniform spec list or fails the test.
func mustUniform(t *testing.T, cfg node.Config, apps []*workload.Program, count int, factory harness.GovernorFactory, baseSeed int64) []NodeSpec {
	t.Helper()
	specs, err := Uniform(cfg, apps, count, factory, baseSeed)
	if err != nil {
		t.Fatal(err)
	}
	return specs
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, 0); err == nil {
		t.Fatal("empty spec list accepted")
	}
	if _, err := Run([]NodeSpec{{Config: node.IntelA100()}}, 0); err == nil {
		t.Fatal("spec without workload accepted")
	}
}

func TestUniformSpecs(t *testing.T) {
	apps := batchApps(t)
	specs := mustUniform(t, node.IntelA100(), apps, 6, magusFactory, 1)
	if len(specs) != 6 {
		t.Fatalf("specs = %d", len(specs))
	}
	if specs[4].Workload != apps[0] || specs[5].Workload != apps[1] {
		t.Fatal("round-robin assignment wrong")
	}
	seeds := map[int64]bool{}
	for _, s := range specs {
		if seeds[s.Seed] {
			t.Fatal("duplicate seeds")
		}
		seeds[s.Seed] = true
	}
}

func TestClusterRunAggregates(t *testing.T) {
	apps := batchApps(t)
	specs := mustUniform(t, node.IntelA100(), apps, 4, nil, 1)
	res, err := Run(specs, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NodePower) != 4 {
		t.Fatalf("node traces = %d", len(res.NodePower))
	}
	if res.Aggregate == nil || res.Aggregate.Len() < 50 {
		t.Fatal("aggregate trace missing or short")
	}
	// Aggregate equals the sum of members at each sample.
	for i := 0; i < res.Aggregate.Len(); i += 17 {
		var sum float64
		for _, s := range res.NodePower {
			sum += s.Values[i]
		}
		if d := res.Aggregate.Values[i] - sum; d > 1e-6 || d < -1e-6 {
			t.Fatalf("aggregate[%d] = %v, members sum %v", i, res.Aggregate.Values[i], sum)
		}
	}
	// Makespan is governed by the slowest member (raytracing, ≈16 s).
	if res.MakespanS < 14 || res.MakespanS > 20 {
		t.Fatalf("makespan = %.1f s", res.MakespanS)
	}
	if res.PeakW <= res.AvgW || res.EnergyJ <= 0 {
		t.Fatalf("summary: peak %.0f avg %.0f energy %.0f", res.PeakW, res.AvgW, res.EnergyJ)
	}
}

// The §6.1 budget claim: per-node uncore scaling lowers the cluster's
// aggregate power so a fixed budget is violated less (or not at all),
// at a small makespan cost.
func TestClusterBudgetClaim(t *testing.T) {
	apps := batchApps(t)
	base, err := Run(mustUniform(t, node.IntelA100(), apps, 6, nil, 1), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := Run(mustUniform(t, node.IntelA100(), apps, 6, magusFactory, 1), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if tuned.AvgW >= base.AvgW {
		t.Fatalf("MAGUS did not reduce average cluster power: %.0f vs %.0f W", tuned.AvgW, base.AvgW)
	}
	if tuned.EnergyJ >= base.EnergyJ {
		t.Fatalf("MAGUS did not reduce cluster energy: %.0f vs %.0f J", tuned.EnergyJ, base.EnergyJ)
	}
	if tuned.MakespanS > base.MakespanS*1.06 {
		t.Fatalf("makespan stretched too much: %.1f vs %.1f s", tuned.MakespanS, base.MakespanS)
	}
	// A budget at 92 % of the unmanaged peak: the unmanaged cluster
	// violates it some of the time, the managed one much less.
	budget := base.PeakW * 0.92
	baseOver := base.TimeOverBudget(budget)
	tunedOver := tuned.TimeOverBudget(budget)
	if baseOver <= 0 {
		t.Fatalf("budget %0.f W never violated by baseline (peak %.0f)", budget, base.PeakW)
	}
	if tunedOver >= baseOver {
		t.Fatalf("time over budget: tuned %.2f vs base %.2f", tunedOver, baseOver)
	}
}

// TestClusterObservedMemberInfo: RunObserved publishes a static
// membership series per member (index, node, workload, governor), and
// a nil observer is exactly Run — observation never perturbs the batch.
func TestClusterObservedMemberInfo(t *testing.T) {
	apps := batchApps(t)
	specs := mustUniform(t, node.IntelA100(), apps, 2, magusFactory, 1)
	specs[1].Factory = nil // one vendor-default member

	o := obs.New(nil, nil)
	observed, err := RunObserved(specs, 100*time.Millisecond, o)
	if err != nil {
		t.Fatal(err)
	}
	text := o.Registry().Text()
	for _, want := range []string{
		`magus_cluster_member_info{member="0",node="node0",workload="bfs",governor="magus"} 1`,
		`magus_cluster_member_info{member="1",node="node1",workload="gemm",governor="default"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %s\ngot:\n%s", want, text)
		}
	}

	plain, err := Run(specs, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if plain.EnergyJ != observed.EnergyJ || plain.MakespanS != observed.MakespanS ||
		plain.PeakW != observed.PeakW || plain.AvgW != observed.AvgW {
		t.Fatalf("nil observer is not equivalent to Run:\nplain    %+v\nobserved %+v",
			summary(plain), summary(observed))
	}
}

func summary(r Result) [4]float64 { return [4]float64{r.EnergyJ, r.MakespanS, r.PeakW, r.AvgW} }

func TestClusterDeterminism(t *testing.T) {
	apps := batchApps(t)
	a, err := Run(mustUniform(t, node.IntelA100(), apps, 3, magusFactory, 9), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mustUniform(t, node.IntelA100(), apps, 3, magusFactory, 9), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if a.EnergyJ != b.EnergyJ || a.MakespanS != b.MakespanS || a.PeakW != b.PeakW {
		t.Fatal("cluster runs not deterministic")
	}
}

// throttleSpec builds a member whose governor pins the uncore at the
// hardware minimum of a config engineered so the member's bandwidth
// ratio at that pin stretches its runtime to roughly stretch× nominal
// (progress rate ≈ floor + (1-floor)·min/max on a fully memory-bound
// constant phase).
func throttleSpec(name string, nominal time.Duration, uncoreMin, bwFloor float64) NodeSpec {
	cfg := node.IntelA100()
	cfg.Name = "throttle-" + name
	cfg.UncoreMinGHz = uncoreMin
	cfg.BWFloorFrac = bwFloor
	prog := &workload.Program{
		Name: "membound-" + name,
		Phases: []workload.Phase{{
			Name:     "mem",
			Duration: nominal,
			Mem:      1.0,
			Beta:     1.0,
			Shape:    workload.Constant,
			GPUSM:    0.5,
			GPUMem:   0.5,
		}},
	}
	return NodeSpec{
		Name:     name,
		Config:   cfg,
		Workload: prog,
		Factory:  func() governor.Governor { return governor.NewStatic(uncoreMin) },
		Seed:     1,
	}
}

// TestClusterThrottledMemberExtendsHorizon: a member slowed past 4×
// nominal by its governor used to be truncated at the horizon; the
// adaptive extension must now carry it to completion and report the
// true makespan.
func TestClusterThrottledMemberExtendsHorizon(t *testing.T) {
	// Progress rate ≈ 0.05 + 0.95·(0.3/2.2) ≈ 0.18 → ≈5.6× nominal:
	// past the 4× base horizon, well inside the extension budget.
	spec := throttleSpec("slow", 10*time.Second, 0.3, 0.05)
	res, err := Run([]NodeSpec{spec}, 100*time.Millisecond)
	if err != nil {
		t.Fatalf("throttled member should finish under the extended horizon: %v", err)
	}
	nominal := spec.Workload.NominalDuration().Seconds()
	if res.MakespanS < 4*nominal {
		t.Fatalf("makespan %.1f s not past the old 4× horizon (%.1f s) — probe too fast to regress on truncation", res.MakespanS, 4*nominal)
	}
	if res.MakespanS > 16*nominal {
		t.Fatalf("makespan %.1f s implausibly long", res.MakespanS)
	}
}

// TestClusterStuckMemberExplicitError: a member that cannot finish in
// any plausible horizon must produce an error naming it, not a
// silently truncated result or a bare horizon error.
func TestClusterStuckMemberExplicitError(t *testing.T) {
	// The MSR uncore ratio has 100 MHz granularity, so 0.1 GHz is the
	// slowest effective pin: progress rate ≈ 0.001 + 0.999·(0.1/2.2)
	// ≈ 0.046 → ≈21× nominal, beyond the 1+3 extension windows
	// (4·(4·15+10) s = 280 s < 15 s/0.046 ≈ 323 s).
	spec := throttleSpec("stuck", 15*time.Second, 0.1, 0.001)
	_, err := Run([]NodeSpec{spec}, 100*time.Millisecond)
	if err == nil {
		t.Fatal("stuck member must fail, not truncate silently")
	}
	if !strings.Contains(err.Error(), "stuck") || !strings.Contains(err.Error(), "unfinished") {
		t.Fatalf("error must name the unfinished member: %v", err)
	}
}

// TestUniformValidation: empty apps used to panic with an integer
// divide by zero (apps[i%len(apps)]); count <= 0 used to return an
// empty spec list that Run rejected with a misleading error. Both must
// now fail loudly at the call site.
func TestUniformValidation(t *testing.T) {
	if _, err := Uniform(node.IntelA100(), nil, 4, nil, 1); err == nil {
		t.Fatal("empty apps accepted")
	}
	if _, err := Uniform(node.IntelA100(), []*workload.Program{}, 4, nil, 1); err == nil {
		t.Fatal("zero-length apps accepted")
	}
	apps := batchApps(t)
	if _, err := Uniform(node.IntelA100(), apps, 0, nil, 1); err == nil {
		t.Fatal("count 0 accepted")
	}
	if _, err := Uniform(node.IntelA100(), apps, -3, nil, 1); err == nil {
		t.Fatal("negative count accepted")
	}
	if _, err := Uniform(node.IntelA100(), []*workload.Program{apps[0], nil}, 2, nil, 1); err == nil {
		t.Fatal("nil workload accepted")
	}
}

// TestObserverRecorderAlignment: with a sampling interval the engine
// step does not divide, the observer must fire on the same fixed grid
// as the telemetry recorder. The pre-fix observer re-anchored its next
// sample on the observed tick (next = now + sampleEvery), stretching
// its cadence relative to the recorder's and drifting the sample
// counts apart.
func TestObserverRecorderAlignment(t *testing.T) {
	prog := &workload.Program{
		Name: "short",
		Phases: []workload.Phase{{
			Name:     "burst",
			Duration: 300 * time.Millisecond,
			Mem:      0.5,
			Shape:    workload.Constant,
		}},
	}
	spec := NodeSpec{Name: "n0", Config: node.IntelA100(), Workload: prog, Seed: 1}
	o := obs.New(nil, nil)
	// 2.5 ms does not divide the 1 ms engine step: grid samples land at
	// 0, 3, 5, 8, 10, ... ms; the re-anchoring cadence drifts to
	// 0, 3, 6, 9, ... ms and falls behind the recorder.
	res, err := RunObserved([]NodeSpec{spec}, 2500*time.Microsecond, o)
	if err != nil {
		t.Fatal(err)
	}
	recSamples := res.Aggregate.Len()
	text := o.Registry().Text()
	want := fmt.Sprintf("magus_cluster_observer_samples_total %d", recSamples)
	if !strings.Contains(text, want) {
		t.Fatalf("observer sample count misaligned with recorder (%d samples): metrics lack %q\ngot:\n%s",
			recSamples, want, text)
	}
}

// TestTimeOverBudgetEdgeCases: a trace whose last sample time exceeds
// the makespan must not subtract the negative hold interval, and a
// single-sample trace holds its only value across the whole makespan.
func TestTimeOverBudgetEdgeCases(t *testing.T) {
	// Last sample at t=12 s beyond the 10 s makespan: its hold interval
	// is negative and must contribute nothing (not subtract from the
	// over-budget time accumulated earlier).
	r := Result{
		Aggregate: &telemetry.Series{
			Times:  []float64{0, 5, 12},
			Values: []float64{150, 50, 150},
		},
		MakespanS: 10,
	}
	if got := r.TimeOverBudget(100); got != 0.5 {
		t.Fatalf("trailing sample beyond makespan: TimeOverBudget = %v, want 0.5", got)
	}
	// Single over-budget sample: held until the makespan → fraction 1.
	single := Result{
		Aggregate: &telemetry.Series{Times: []float64{0}, Values: []float64{200}},
		MakespanS: 4,
	}
	if got := single.TimeOverBudget(100); got != 1 {
		t.Fatalf("single-sample over trace: %v, want 1", got)
	}
	// Single under-budget sample: never over.
	if got := (Result{
		Aggregate: &telemetry.Series{Times: []float64{0}, Values: []float64{50}},
		MakespanS: 4,
	}).TimeOverBudget(100); got != 0 {
		t.Fatalf("single-sample under trace: %v, want 0", got)
	}
	// Single over-budget sample recorded after the makespan: negative
	// hold, nothing over.
	if got := (Result{
		Aggregate: &telemetry.Series{Times: []float64{5}, Values: []float64{200}},
		MakespanS: 4,
	}).TimeOverBudget(100); got != 0 {
		t.Fatalf("late single sample: %v, want 0", got)
	}
}

// TestTimeOverBudgetDtWeighted pins the dt-weighted budget fraction on
// a hand-built trace: sample-and-hold over [0,1)=50 W, [1,2)=150 W,
// [2,3)=150 W, [3,10)=50 W against a 100 W budget is 2 s over a 10 s
// makespan.
func TestTimeOverBudgetDtWeighted(t *testing.T) {
	r := Result{
		Aggregate: &telemetry.Series{
			Times:  []float64{0, 1, 2, 3},
			Values: []float64{50, 150, 150, 50},
		},
		MakespanS: 10,
	}
	if got := r.TimeOverBudget(100); got != 0.2 {
		t.Fatalf("TimeOverBudget = %v, want 0.2 (the old sample-count formula gives 0.5)", got)
	}
	// Irregular sampling: the fraction must follow interval lengths,
	// not sample counts.
	r = Result{
		Aggregate: &telemetry.Series{
			Times:  []float64{0, 1, 5},
			Values: []float64{200, 50, 200},
		},
		MakespanS: 6,
	}
	want := 2.0 / 6.0
	if got := r.TimeOverBudget(100); math.Abs(got-want) > 1e-12 {
		t.Fatalf("TimeOverBudget = %v, want %v", got, want)
	}
	// Degenerate inputs.
	if got := (Result{}).TimeOverBudget(100); got != 0 {
		t.Fatalf("empty result: %v, want 0", got)
	}
	always := Result{
		Aggregate: &telemetry.Series{Times: []float64{0}, Values: []float64{500}},
		MakespanS: 5,
	}
	if got := always.TimeOverBudget(100); got != 1 {
		t.Fatalf("always-over trace: %v, want 1", got)
	}
}

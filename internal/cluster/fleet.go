package cluster

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/spear-repro/magus/internal/node"
	"github.com/spear-repro/magus/internal/obs"
	"github.com/spear-repro/magus/internal/parallel"
	"github.com/spear-repro/magus/internal/sim"
	"github.com/spear-repro/magus/internal/sketch"
	"github.com/spear-repro/magus/internal/spans"
	"github.com/spear-repro/magus/internal/telemetry"
)

// The sharded cluster engine. Members are partitioned into contiguous
// blocks ("shards") run concurrently on the internal/parallel pool;
// each shard owns a deterministic sub-engine over its block — the same
// fixed-step tick the single engine would run, specialised to the
// cluster's wiring — and steps its nodes through a node.Batch in one
// pass per tick, sampling hot per-node scalars into a telemetry.Block
// arena instead of one Recorder probe per member.
//
// Determinism contract: members are independent (each owns its node,
// runner, governor environment and fault injectors; nothing crosses
// members except the virtual clock), so any interleaving of per-member
// step sequences is observationally identical to the single engine's
// all-tasks-then-all-components order. Every cross-member float is
// folded in canonical member order at reassembly — the aggregate trace,
// the energy total, the observer's final gauges, the stuck-member error
// — which makes RunFleet byte-identical to runReference for any shard
// count. The identity tests in fleet_test.go pin this.

// TelemetryMode selects how much per-member trace a run retains.
type TelemetryMode int

const (
	// TelemetryFull records one power series per member plus the
	// aggregate — the historical Run behaviour, pinned byte-identical.
	TelemetryFull TelemetryMode = iota
	// TelemetryAggregate retains only the aggregate trace (plus the
	// Options.TopK member summaries): Result.NodePower stays nil, the
	// per-member sample arenas are recycled, and an observed run skips
	// the per-member magus_cluster_node_power_watts and
	// magus_cluster_member_info series — O(1) exposition instead of
	// O(members). The aggregate is still folded per-sample in member
	// order, so it is byte-identical to the full-mode aggregate.
	TelemetryAggregate
)

// Options configures RunFleet beyond the Run/RunObserved defaults.
type Options struct {
	// SampleEvery is the power-trace resolution (0 = 100 ms).
	SampleEvery time.Duration
	// Shards is the number of contiguous member blocks stepped
	// concurrently (<= 0 = GOMAXPROCS, clamped to the member count).
	// Like the experiment pool's -jobs contract, results are
	// byte-identical for any value; shards change wall-clock only.
	Shards int
	// Obs attaches a metrics observer (see RunObserved). The sharded
	// engine publishes final gauge state at reassembly: a scrape after
	// the run sees exactly what the single-engine path exposed.
	Obs *obs.Observer
	// Telemetry selects full per-member traces (default) or
	// aggregate-only retention for large fleets.
	Telemetry TelemetryMode
	// TopK, when > 0, reports the K heaviest members by energy in
	// Result.Top — the fleet-scale substitute for full traces.
	TopK int
	// Waste enables the fleet uncore-energy ledger: every member's
	// uncore watts are decomposed (baseline/useful/waste) against the
	// spans power model each tick and integrated into
	// Result.UncoreWaste. Purely passive reads; off by default.
	Waste bool
	// Dist enables fleet distribution telemetry: per-member per-tick
	// samples (node power, attained GB/s; per-socket uncore ratio and
	// model-decomposed waste watts) fold into mergeable quantile
	// sketches (internal/sketch), reported in Result.Dist, exposed as
	// magus_fleet_* families when Obs is set, and served on /fleet.
	// Off by default; the disabled path is byte-identical to a run
	// without it, and the enabled path is byte-identical for any
	// Shards value (sketch merging is integer bucket addition).
	Dist bool
}

// shard is one contiguous member block and its sub-engine state.
type shard struct {
	members []*member
	batch   *node.Batch
	dt      time.Duration
	dtSec   float64
	clock   time.Duration

	// Sampling grid (multiples of interval from 0, tick-start stamps —
	// exactly the telemetry.Recorder contract).
	interval time.Duration
	next     time.Duration
	block    *telemetry.Block

	// Struct-of-arrays completion state, indexed like members.
	done   []bool
	nDone  int
	doneAt []time.Duration

	// Observer mirrors captured at the most recent sample.
	observed   bool
	lastEnergy []float64
	lastDone   []bool

	// Fleet waste ledger (Options.Waste). models are also built under
	// Options.Dist alone: the waste-watts sketch needs the same
	// per-tick decomposition the ledger integrates.
	waste  bool
	models []spans.PowerModel
	attrs  []spans.EnergyAttr

	// Fleet distribution sketches (Options.Dist), one per dimension.
	dist     bool
	sketches [distDims]*sketch.Sketch

	stuck    bool
	buildErr error
}

// blockPool recycles sample arenas across runs (TelemetryAggregate
// only — full-mode arenas escape into the Result).
var blockPool sync.Pool

func getBlock(rows, capacity int) *telemetry.Block {
	if b, ok := blockPool.Get().(*telemetry.Block); ok {
		b.Reset(rows, capacity)
		return b
	}
	return telemetry.NewBlock(rows, capacity)
}

// newShard builds the block's members and arenas. A member build error
// is recorded, not returned: the caller scans shards in order so the
// reported error is the lowest-index member's, exactly as the serial
// reference path would fail.
func newShard(specs []NodeSpec, every time.Duration, sampleCap int, opt Options) *shard {
	sh := &shard{
		dt:       sim.DefaultStep,
		dtSec:    sim.DefaultStep.Seconds(),
		interval: every,
		done:     make([]bool, len(specs)),
		doneAt:   make([]time.Duration, len(specs)),
		observed: opt.Obs != nil,
		waste:    opt.Waste,
		dist:     opt.Dist,
	}
	if opt.Dist {
		sh.sketches = newDistSketches()
	}
	now := func() time.Duration { return sh.clock }
	nodes := make([]*node.Node, 0, len(specs))
	for _, spec := range specs {
		m, err := buildMember(spec, now)
		if err != nil {
			sh.buildErr = err
			return sh
		}
		sh.members = append(sh.members, m)
		nodes = append(nodes, m.node)
		if opt.Waste || opt.Dist {
			cfg := spec.Config
			sh.models = append(sh.models, spans.PowerModel{
				BaseWatts:          cfg.Uncore.BaseWatts,
				DynMaxWatts:        cfg.Uncore.DynMaxWatts,
				TrafficWattsPerGBs: cfg.Uncore.TrafficWattsPerGBs,
				PeakGBs:            cfg.BWPerSocketGBs,
				FloorFrac:          cfg.BWFloorFrac,
				RelMin:             cfg.UncoreMinGHz / cfg.UncoreMaxGHz,
			})
		}
	}
	sh.batch = node.NewBatch(nodes)
	sh.block = getBlock(len(specs), sampleCap)
	if opt.Waste {
		sh.attrs = make([]spans.EnergyAttr, len(specs))
	}
	if sh.observed {
		sh.lastEnergy = make([]float64, len(specs))
		sh.lastDone = make([]bool, len(specs))
	}
	return sh
}

// tick advances the shard one engine step. Per member it mirrors the
// single engine's ordering exactly — governor task (if due), workload
// runner, demand hand-off — then the node block steps in one pass;
// member independence makes the member-merged order observationally
// identical to the engine's all-tasks-then-all-components sweep.
func (sh *shard) tick() {
	now, dt := sh.clock, sh.dt
	for _, m := range sh.members {
		if m.invoke != nil && now >= m.govNext {
			delay := m.invoke(now)
			if delay <= 0 {
				delay = m.govInterval
			}
			m.govNext = now + delay
		}
		m.runner.Step(now, dt)
		m.node.SetDemand(m.runner.Demand())
	}
	sh.batch.Step(now, dt)
	for i, m := range sh.members {
		if !sh.done[i] && m.runner.Done() {
			sh.done[i] = true
			sh.nDone++
			sh.doneAt[i] = now + dt
		}
	}
	if sh.waste || sh.dist {
		sh.integrate()
	}
	if now >= sh.next {
		sh.sample(now)
	}
	sh.clock = now + dt
}

// integrate runs the per-tick model decomposition shared by the waste
// ledger and the distribution sketches: per member and socket, the
// uncore operating point is decomposed (baseline/useful/waste) once,
// then the ledger accumulates it (Options.Waste) and the sketches
// fold it (Options.Dist). The ledger's float sequence is exactly the
// historical integrateWaste path — sketch folding touches only
// integer sketch state, so enabling Dist never perturbs the ledger.
func (sh *shard) integrate() {
	for i, m := range sh.members {
		n := m.node
		cfg := &m.spec.Config
		for s := 0; s < cfg.Sockets; s++ {
			rel := n.UncoreFreqGHz(s) / cfg.UncoreMaxGHz
			base, useful, waste := sh.models[i].Decompose(rel, n.AttainedGBsSocket(s))
			if sh.waste {
				sh.attrs[i].Accumulate(sh.dtSec, base, useful, waste, n.UncorePowerW(s))
			}
			if sh.dist {
				sh.sketches[distUncoreRatio].Add(rel)
				sh.sketches[distWasteW].Add(waste)
			}
		}
		if sh.dist {
			sh.sketches[distNodePowerW].Add(n.TotalPowerW())
			sh.sketches[distAttainedGBs].Add(n.AttainedGBs())
		}
	}
}

// sample records one grid point: snapshot the node block's SoA mirrors
// and copy the hot scalars into the arena row-by-row.
func (sh *shard) sample(now time.Duration) {
	k := sh.block.Push(now.Seconds())
	sh.batch.Snapshot()
	for i, p := range sh.batch.PowerW {
		sh.block.Set(i, k, p)
	}
	if sh.observed {
		copy(sh.lastEnergy, sh.batch.EnergyJ)
		copy(sh.lastDone, sh.done)
	}
	for sh.next <= now {
		sh.next += sh.interval
	}
}

// run drives the shard until its members finish, with the engine's
// adaptive horizon-extension semantics: done is checked before the
// horizon on every iteration, each expiry re-anchors a fresh window at
// the current clock, and after 1 + maxHorizonExtensions windows the
// shard gives up with stuck members still unfinished. Window anchors
// depend only on (dt, horizon), so every shard that reaches an anchor
// reaches it at the same virtual time the single engine would.
func (sh *shard) run(horizon time.Duration) {
	end := sh.clock + horizon
	for ext := 0; ; {
		if sh.nDone == len(sh.members) {
			return
		}
		if sh.clock >= end {
			ext++
			if ext > maxHorizonExtensions {
				sh.stuck = true
				return
			}
			end = sh.clock + horizon
			continue
		}
		sh.tick()
	}
}

// extend keeps the shard ticking to the fleet-wide end time, so every
// member's node keeps integrating (idle power decay, trailing samples)
// exactly as it would inside the single engine, which only stops when
// the last member of the whole batch finishes.
func (sh *shard) extend(globalEnd time.Duration) {
	for sh.clock < globalEnd {
		sh.tick()
	}
}

// fleetObs holds the observer instruments registered for a run.
type fleetObs struct {
	gauges      []*obs.Gauge // per member (TelemetryFull only)
	agg, energy *obs.Gauge
	done        *obs.Gauge
	samples     *obs.Counter
}

// registerFleetObs mirrors the reference path's registration order and
// metadata exactly, so the post-run exposition is byte-identical. In
// TelemetryAggregate mode the O(members) families (per-member power,
// member_info) are skipped.
func registerFleetObs(o *obs.Observer, shards []*shard, mode TelemetryMode, total int) *fleetObs {
	reg := o.Registry()
	fo := &fleetObs{}
	var nodeW *obs.GaugeVec
	if mode == TelemetryFull {
		nodeW = reg.GaugeVec("magus_cluster_node_power_watts",
			"Total power per cluster member (CPU + GPU) in watts.", "node")
	}
	fo.agg = reg.Gauge("magus_cluster_power_watts", "Aggregate cluster power in watts.")
	fo.energy = reg.Gauge("magus_cluster_energy_joules", "Cumulative cluster energy to completion.")
	fo.samples = reg.Counter("magus_cluster_observer_samples_total",
		"Observer sampling ticks; tracks the telemetry recorder's fixed sample grid.")
	fo.done = reg.Gauge("magus_cluster_nodes_done", "Cluster members whose application finished.")
	reg.Gauge("magus_cluster_nodes", "Cluster member count.").Set(float64(total))
	if mode == TelemetryFull {
		memberInfo := reg.GaugeVec("magus_cluster_member_info",
			"Static cluster membership (constant 1): one series per member with its index, node name, workload and governor.",
			"member", "node", "workload", "governor")
		fo.gauges = make([]*obs.Gauge, 0, total)
		i := 0
		for _, sh := range shards {
			for _, m := range sh.members {
				fo.gauges = append(fo.gauges, nodeW.With(m.spec.Name))
				memberInfo.With(strconv.Itoa(i), m.spec.Name, m.spec.Workload.Name, m.govName).Set(1)
				i++
			}
		}
	}
	return fo
}

// RunFleet executes the batch on the sharded engine. The zero Options
// value reproduces Run exactly; see Options for the fleet-scale knobs.
func RunFleet(specs []NodeSpec, opt Options) (Result, error) {
	specs, every, horizon, err := normalize(specs, opt.SampleEvery)
	if err != nil {
		return Result{}, err
	}
	bounds := parallel.Partition(len(specs), parallel.Jobs(opt.Shards))
	nShards := len(bounds) - 1
	sampleCap := int(horizon/every) + 2

	// Build: each shard constructs its own members concurrently (node,
	// runner, governor wiring dominates setup at fleet scale).
	shards := make([]*shard, nShards)
	if err := parallel.ForEach(nil, nShards, 0, nil, func(_ context.Context, s int) error {
		shards[s] = newShard(specs[bounds[s]:bounds[s+1]], every, sampleCap, opt)
		return nil
	}); err != nil {
		return Result{}, err
	}
	for _, sh := range shards {
		if sh.buildErr != nil {
			return Result{}, sh.buildErr
		}
	}

	var fo *fleetObs
	if opt.Obs != nil {
		fo = registerFleetObs(opt.Obs, shards, opt.Telemetry, len(specs))
	}

	// Phase 1: every shard runs until its own members finish (or it
	// exhausts the shared horizon windows).
	if err := parallel.ForEach(nil, nShards, 0, nil, func(_ context.Context, s int) error {
		shards[s].run(horizon)
		return nil
	}); err != nil {
		return Result{}, err
	}
	if anyStuck(shards) {
		return Result{}, stuckError(shards, horizon)
	}

	// Phase 2: shards that finished early keep ticking to the fleet
	// end time, as the single engine would until its last member was
	// done.
	var globalEnd time.Duration
	for _, sh := range shards {
		if sh.clock > globalEnd {
			globalEnd = sh.clock
		}
	}
	if err := parallel.ForEach(nil, nShards, 0, nil, func(_ context.Context, s int) error {
		shards[s].extend(globalEnd)
		return nil
	}); err != nil {
		return Result{}, err
	}

	return reassemble(shards, opt, fo, globalEnd)
}

func anyStuck(shards []*shard) bool {
	for _, sh := range shards {
		if sh.stuck {
			return true
		}
	}
	return false
}

// stuckError reproduces the reference path's stuck-member report: the
// unfinished members in canonical order and the shared give-up time
// (every stuck shard gives up at the same virtual clock, since window
// anchors are shard-independent).
func stuckError(shards []*shard, horizon time.Duration) error {
	var end time.Duration
	var stuck []string
	for _, sh := range shards {
		if sh.stuck && sh.clock > end {
			end = sh.clock
		}
		for i, m := range sh.members {
			if !sh.done[i] {
				stuck = append(stuck, fmt.Sprintf("%s (%s on %s)",
					m.spec.Name, m.spec.Workload.Name, m.spec.Config.Name))
			}
		}
	}
	return fmt.Errorf(
		"cluster: members unfinished after %v (%d× the 4×-nominal horizon %v): %s",
		end, 1+maxHorizonExtensions, horizon, strings.Join(stuck, ", "))
}

// reassemble folds per-shard state into the Result in canonical member
// order and publishes the observer's final gauge state.
func reassemble(shards []*shard, opt Options, fo *fleetObs, globalEnd time.Duration) (Result, error) {
	samples := shards[0].block.Len()
	total := 0
	for _, sh := range shards {
		if sh.block.Len() != samples {
			panic("cluster: shard sample grids diverged")
		}
		total += len(sh.members)
	}

	res := Result{MakespanS: globalEnd.Seconds()}

	// Aggregate trace: per-sample fold across all member rows in
	// member order — bit-identical to the reference probe that summed
	// TotalPowerW live.
	aggVals := make([]float64, samples)
	for _, sh := range shards {
		sh.block.AccumulateRows(aggVals)
	}
	aggTimes := shards[0].block.Times()
	if opt.Telemetry == TelemetryAggregate {
		// Arenas are recycled below; the aggregate axis must survive.
		aggTimes = append([]float64(nil), aggTimes...)
	}
	res.Aggregate = &telemetry.Series{Times: aggTimes, Values: aggVals}

	if opt.Telemetry == TelemetryFull {
		res.NodePower = make(map[string]*telemetry.Series, total)
		for _, sh := range shards {
			for j, m := range sh.members {
				res.NodePower[m.spec.Name] = sh.block.Series(j)
			}
		}
	}

	var summaries []MemberSummary
	if opt.TopK > 0 {
		summaries = make([]MemberSummary, 0, total)
	}
	idx := 0
	for _, sh := range shards {
		for j, m := range sh.members {
			pkg, drm, gpu := m.node.EnergyJ()
			res.EnergyJ += pkg + drm + gpu
			if opt.TopK > 0 {
				row := sh.block.Series(j)
				summaries = append(summaries, MemberSummary{
					Index:    idx,
					Name:     m.spec.Name,
					Workload: m.spec.Workload.Name,
					Governor: m.govName,
					PeakW:    row.Max(),
					AvgW:     row.Mean(),
					EnergyJ:  pkg + drm + gpu,
					DoneS:    sh.doneAt[j].Seconds(),
				})
			}
			idx++
		}
	}
	if res.Aggregate.Len() > 0 {
		res.PeakW = res.Aggregate.Max()
		res.AvgW = res.Aggregate.Mean()
	}
	if opt.TopK > 0 {
		sort.SliceStable(summaries, func(a, b int) bool {
			if summaries[a].EnergyJ != summaries[b].EnergyJ {
				return summaries[a].EnergyJ > summaries[b].EnergyJ
			}
			return summaries[a].Index < summaries[b].Index
		})
		if len(summaries) > opt.TopK {
			summaries = summaries[:opt.TopK]
		}
		res.Top = summaries
	}

	if opt.Waste {
		var attr spans.EnergyAttr
		steps := 0
		ticks := int(globalEnd / shards[0].dt)
		for _, sh := range shards {
			for j := range sh.members {
				attr.Merge(sh.attrs[j])
				steps += sh.members[j].spec.Config.Sockets * ticks
			}
		}
		res.UncoreWaste = &attr
		res.WasteBalanced = attr.Balanced(spans.BalanceTolUlps(steps))
	}

	if opt.Dist {
		merged := mergeDist(shards)
		res.Dist = &FleetDist{
			NodePowerW:  merged[distNodePowerW].Summarize(),
			UncoreRatio: merged[distUncoreRatio].Summarize(),
			WasteW:      merged[distWasteW].Summarize(),
			AttainedGBs: merged[distAttainedGBs].Summarize(),
		}
		if opt.Obs != nil {
			exposeDist(opt.Obs, merged, res.Dist)
		}
	}

	if fo != nil {
		last := samples - 1
		fo.samples.Add(float64(samples))
		var energy float64
		finished := 0
		idx := 0
		for _, sh := range shards {
			for j := range sh.members {
				if fo.gauges != nil {
					fo.gauges[idx].Set(sh.block.At(j, last))
				}
				energy += sh.lastEnergy[j]
				if sh.lastDone[j] {
					finished++
				}
				idx++
			}
		}
		fo.agg.Set(aggVals[last])
		fo.energy.Set(energy)
		fo.done.Set(float64(finished))
	}

	if opt.Telemetry == TelemetryAggregate {
		for _, sh := range shards {
			blockPool.Put(sh.block)
			sh.block = nil
		}
	}
	return res, nil
}

package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/spear-repro/magus/internal/node"
	"github.com/spear-repro/magus/internal/obs"
)

// TestFleetDistShardIdentity extends the shard byte-identity contract
// to distribution telemetry: a sketch-enabled fleet run — the full
// Result including Dist, and the magus_fleet_* metrics exposition —
// is byte-identical for shard counts {1, 2, 7, NumCPU}. Sketch merging
// is integer bucket addition, so this holds exactly, not within
// tolerance.
func TestFleetDistShardIdentity(t *testing.T) {
	specs := fleetSpecs(t, 9)
	run := func(shards int) (Result, string) {
		o := obs.New(nil, nil)
		res, err := RunFleet(specs, Options{
			SampleEvery: 50 * time.Millisecond, Shards: shards,
			Dist: true, Waste: true, TopK: 3, Obs: o,
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return res, string(o.Registry().AppendText(nil))
	}
	refRes, refExpo := run(1)
	if refRes.Dist == nil {
		t.Fatal("Dist not populated")
	}
	if refRes.Dist.NodePowerW.Count == 0 || refRes.Dist.WasteW.Count == 0 {
		t.Fatalf("empty distributions: %+v", refRes.Dist)
	}
	want := mustJSON(t, refRes)
	for _, k := range []int{2, 7, runtime.NumCPU()} {
		res, expo := run(k)
		if got := mustJSON(t, res); got != want {
			t.Errorf("shards=%d: sketch-enabled Result diverged\nref: %.300s\ngot: %.300s", k, want, got)
		}
		if expo != refExpo {
			t.Errorf("shards=%d: metrics exposition diverged", k)
		}
	}
}

// TestFleetDistDisabledIdentity pins the PR 4/9 disabled-path
// contract: a run without Dist is byte-identical to one where the
// field never existed — enabling nothing changes nothing.
func TestFleetDistDisabledIdentity(t *testing.T) {
	specs := fleetSpecs(t, 6)
	base, err := RunFleet(specs, Options{SampleEvery: 50 * time.Millisecond, Waste: true})
	if err != nil {
		t.Fatal(err)
	}
	if base.Dist != nil {
		t.Fatal("Dist populated without Options.Dist")
	}
	// The sketch-enabled run must not perturb anything pre-existing:
	// nil its Dist and compare against the plain run byte-for-byte.
	withDist, err := RunFleet(specs, Options{SampleEvery: 50 * time.Millisecond, Waste: true, Dist: true})
	if err != nil {
		t.Fatal(err)
	}
	withDist.Dist = nil
	if got, want := mustJSON(t, withDist), mustJSON(t, base); got != want {
		t.Fatalf("enabling Dist perturbed the run\nwant: %.300s\ngot:  %.300s", want, got)
	}
}

// TestFleetDistWithoutWaste: the waste-watts sketch works without the
// waste ledger (models are built for Dist alone), and the ledger is
// not accidentally armed.
func TestFleetDistWithoutWaste(t *testing.T) {
	specs := fleetSpecs(t, 4)
	res, err := RunFleet(specs, Options{Dist: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.UncoreWaste != nil {
		t.Fatal("waste ledger armed by Dist")
	}
	if res.Dist == nil || res.Dist.WasteW.Count == 0 {
		t.Fatal("waste-watts sketch empty without Options.Waste")
	}
	// Socket-dimension sketches carry Sockets× the member-dimension
	// counts; member dimensions tick in lockstep.
	if res.Dist.NodePowerW.Count != res.Dist.AttainedGBs.Count {
		t.Fatalf("member-dimension counts diverge: %d vs %d",
			res.Dist.NodePowerW.Count, res.Dist.AttainedGBs.Count)
	}
	sockets := uint64(node.IntelA100().Sockets)
	if res.Dist.WasteW.Count != res.Dist.NodePowerW.Count*sockets {
		t.Fatalf("socket-dimension count %d != member count %d × %d sockets",
			res.Dist.WasteW.Count, res.Dist.NodePowerW.Count, sockets)
	}
	if res.Dist.UncoreRatio.Max > 1.0000001 || res.Dist.UncoreRatio.Min <= 0 {
		t.Fatalf("uncore ratio out of range: %+v", res.Dist.UncoreRatio)
	}
}

// TestFleetDistExposition: an observed dist run exposes the four
// magus_fleet_* histogram families and their *_quantile gauges, and
// serves the /fleet JSON page on the standard handler.
func TestFleetDistExposition(t *testing.T) {
	specs := fleetSpecs(t, 4)
	o := obs.New(nil, nil)
	res, err := RunFleet(specs, Options{Dist: true, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	expo := string(o.Registry().AppendText(nil))
	for _, spec := range distSpecs {
		if !strings.Contains(expo, spec.metric+"_bucket") {
			t.Errorf("exposition missing histogram %s", spec.metric)
		}
		for _, q := range []string{"p50", "p90", "p99", "max"} {
			needle := fmt.Sprintf("%s_quantile{q=%q}", spec.metric, q)
			if !strings.Contains(expo, needle) {
				t.Errorf("exposition missing %s", needle)
			}
		}
	}
	// Histogram counts must equal the sketch counts (ObserveN fold).
	if !strings.Contains(expo, fmt.Sprintf("magus_fleet_node_power_watts_count %d", res.Dist.NodePowerW.Count)) {
		t.Errorf("histogram count does not match sketch count %d:\n%s", res.Dist.NodePowerW.Count, expo)
	}

	srv := httptest.NewServer(obs.NewHandler(o))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/fleet status = %d", resp.StatusCode)
	}
	var page FleetDist
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatalf("/fleet parse: %v", err)
	}
	if page != *res.Dist {
		t.Fatalf("/fleet page %+v != Result.Dist %+v", page, *res.Dist)
	}
}

// BenchmarkHotPathFleetSketchTick pins the steady-state shard tick
// with distribution folding armed to zero allocations per op
// (cmd/benchgate, BENCH_hotpath.json).
func BenchmarkHotPathFleetSketchTick(b *testing.B) {
	const n = 64
	specs := make([]NodeSpec, n)
	for i := range specs {
		specs[i] = NodeSpec{
			Config:   node.IntelA100(),
			Workload: fleetProg(fmt.Sprintf("w%d", i%4), 3_600_000),
			Seed:     1 + int64(i)*131,
		}
		if i%2 == 0 {
			specs[i].Factory = magusFactory
		}
	}
	normalized, every, _, err := normalize(specs, 0)
	if err != nil {
		b.Fatal(err)
	}
	sh := newShard(normalized, every, 1<<16, Options{Dist: true, Waste: true})
	if sh.buildErr != nil {
		b.Fatal(sh.buildErr)
	}
	for sh.clock < 1500*time.Millisecond {
		sh.tick()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sh.tick()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/node-step")
}

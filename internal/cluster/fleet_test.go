package cluster

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/spear-repro/magus/internal/faults"
	"github.com/spear-repro/magus/internal/governor"
	"github.com/spear-repro/magus/internal/node"
	"github.com/spear-repro/magus/internal/obs"
	"github.com/spear-repro/magus/internal/workload"
)

// fleetProg builds a short mixed-shape program so identity tests cover
// bursty dynamics without catalog-app runtimes. durMS staggers member
// completion times, exercising the trailing-sample extension phase.
func fleetProg(name string, durMS int) *workload.Program {
	d := time.Duration(durMS) * time.Millisecond
	return &workload.Program{Name: name, Phases: []workload.Phase{
		{Name: "stage", Duration: d / 3, Mem: 0.7, Shape: workload.Constant,
			Beta: 0.8, CPUBusyCores: 4, GPUSM: 0.2, GPUMem: 0.4, Jitter: 0.05},
		{Name: "kernel", Duration: d, Mem: 0.3, MemLow: 0.05, Shape: workload.Bursts,
			Period: 300 * time.Millisecond, Duty: 0.3, BurstLen: 60 * time.Millisecond,
			Beta: 0.5, CPUBusyCores: 2, GPUSM: 0.9, GPUMem: 0.6, Jitter: 0.08},
	}}
}

// fleetSpecs builds the satellite's mixed-governor, fault-preset
// identity cluster: MAGUS, vendor-default and static members
// interleaved, with pcm-loss and chaos fault plans armed on some.
func fleetSpecs(t *testing.T, n int) []NodeSpec {
	t.Helper()
	specs := make([]NodeSpec, n)
	for i := range specs {
		spec := NodeSpec{
			Name:     fmt.Sprintf("node%d", i),
			Config:   node.IntelA100(),
			Workload: fleetProg(fmt.Sprintf("w%d", i%4), 1200+300*(i%4)),
			Seed:     1 + int64(i)*131,
		}
		switch i % 3 {
		case 0:
			spec.Factory = magusFactory
		case 1:
			// vendor default: no governor daemon.
		case 2:
			min := spec.Config.UncoreMinGHz
			spec.Factory = func() governor.Governor { return governor.NewStatic(min) }
		}
		if i%2 == 0 {
			name := "pcm-loss"
			if i%4 == 0 {
				name = "chaos"
			}
			plan, ok := faults.Preset(name)
			if !ok {
				t.Fatalf("fault preset %s missing", name)
			}
			spec.Faults = plan
		}
		specs[i] = spec
	}
	return specs
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestFleetShardIdentity pins the tentpole contract: the sharded
// engine's Result is byte-identical (JSON-serialised, covering every
// trace sample) to the single-engine reference for shard counts
// {1, 2, 7, NumCPU} over a mixed-governor, fault-preset cluster.
func TestFleetShardIdentity(t *testing.T) {
	specs := fleetSpecs(t, 9)
	ref, err := runReference(specs, 50*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := mustJSON(t, ref)

	counts := []int{1, 2, 7, runtime.NumCPU()}
	for _, k := range counts {
		got, err := RunFleet(specs, Options{SampleEvery: 50 * time.Millisecond, Shards: k})
		if err != nil {
			t.Fatalf("shards=%d: %v", k, err)
		}
		if g := mustJSON(t, got); g != want {
			t.Errorf("shards=%d: result diverged from single-engine reference\nref:  %.200s\ngot:  %.200s",
				k, want, g)
		}
	}
}

// TestFleetPartitionProperty: shard partition boundaries never change
// Result.MakespanS or TimeOverBudget, for every shard count up to
// beyond the member count.
func TestFleetPartitionProperty(t *testing.T) {
	specs := fleetSpecs(t, 6)
	ref, err := runReference(specs, 100*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	budget := ref.PeakW * 0.9
	for k := 1; k <= len(specs)+2; k++ {
		got, err := RunFleet(specs, Options{Shards: k})
		if err != nil {
			t.Fatalf("shards=%d: %v", k, err)
		}
		if got.MakespanS != ref.MakespanS {
			t.Errorf("shards=%d: makespan %v != reference %v", k, got.MakespanS, ref.MakespanS)
		}
		if g, w := got.TimeOverBudget(budget), ref.TimeOverBudget(budget); g != w {
			t.Errorf("shards=%d: TimeOverBudget %v != reference %v", k, g, w)
		}
	}
}

// TestFleetDuplicateNames: duplicate member names used to reach the
// telemetry recorder, silently keying two members to one series (or
// panicking); both user-supplied duplicates and a user name colliding
// with an auto-generated one must fail loudly, on every path.
func TestFleetDuplicateNames(t *testing.T) {
	prog := fleetProg("w", 1000)
	dup := []NodeSpec{
		{Name: "a", Config: node.IntelA100(), Workload: prog},
		{Name: "a", Config: node.IntelA100(), Workload: prog},
	}
	// A user-supplied "node1" colliding with the auto-generated name
	// for index 1.
	collide := []NodeSpec{
		{Name: "node1", Config: node.IntelA100(), Workload: prog},
		{Config: node.IntelA100(), Workload: prog},
	}
	for _, tc := range []struct {
		label string
		specs []NodeSpec
	}{{"user-supplied", dup}, {"auto-generated", collide}} {
		if _, err := Run(tc.specs, 0); err == nil || !strings.Contains(err.Error(), "duplicate member name") {
			t.Errorf("%s duplicates: want loud duplicate-name error, got %v", tc.label, err)
		}
		if _, err := runReference(tc.specs, 0, nil); err == nil || !strings.Contains(err.Error(), "duplicate member name") {
			t.Errorf("%s duplicates (reference): want loud duplicate-name error, got %v", tc.label, err)
		}
	}
}

// TestFleetAggregateTelemetry: aggregate-only mode must drop the
// per-member traces and per-member metric series, keep the aggregate
// byte-identical to full mode, and rank the TopK summaries by energy.
func TestFleetAggregateTelemetry(t *testing.T) {
	specs := fleetSpecs(t, 6)
	full, err := RunFleet(specs, Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New(nil, nil)
	agg, err := RunFleet(specs, Options{Shards: 3, Telemetry: TelemetryAggregate, TopK: 3, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	if agg.NodePower != nil {
		t.Errorf("aggregate mode kept %d per-member traces", len(agg.NodePower))
	}
	if mustJSON(t, agg.Aggregate) != mustJSON(t, full.Aggregate) {
		t.Error("aggregate trace diverged between full and aggregate-only telemetry")
	}
	if agg.EnergyJ != full.EnergyJ || agg.MakespanS != full.MakespanS ||
		agg.PeakW != full.PeakW || agg.AvgW != full.AvgW {
		t.Errorf("scalar results diverged: full %+v vs aggregate %+v", summary(full), summary(agg))
	}
	if len(agg.Top) != 3 {
		t.Fatalf("TopK=3 returned %d summaries", len(agg.Top))
	}
	var sumTop float64
	for i, s := range agg.Top {
		if i > 0 && s.EnergyJ > agg.Top[i-1].EnergyJ {
			t.Errorf("Top not sorted by energy: %v after %v", s.EnergyJ, agg.Top[i-1].EnergyJ)
		}
		if s.Name == "" || s.Workload == "" || s.Governor == "" || s.PeakW <= 0 || s.DoneS <= 0 {
			t.Errorf("summary %d incomplete: %+v", i, s)
		}
		sumTop += s.EnergyJ
	}
	if sumTop <= 0 || sumTop > full.EnergyJ {
		t.Errorf("Top energies %v implausible against total %v", sumTop, full.EnergyJ)
	}

	text := o.Registry().Text()
	if !strings.Contains(text, "magus_cluster_power_watts") {
		t.Error("aggregate mode lost the aggregate power gauge")
	}
	if strings.Contains(text, "magus_cluster_node_power_watts{") ||
		strings.Contains(text, "magus_cluster_member_info{") {
		t.Error("aggregate mode still publishes O(members) series:\n" + text)
	}
}

// TestFleetObserverIdentity: an observed sharded run's final
// exposition must be byte-identical to the observed single-engine
// reference — per-member gauges, aggregate, energy, completion count
// and the sample counter all replay canonically at reassembly.
func TestFleetObserverIdentity(t *testing.T) {
	specs := fleetSpecs(t, 5)
	refObs := obs.New(nil, nil)
	if _, err := runReference(specs, 100*time.Millisecond, refObs); err != nil {
		t.Fatal(err)
	}
	fleetObs := obs.New(nil, nil)
	if _, err := RunFleet(specs, Options{Shards: 3, Obs: fleetObs}); err != nil {
		t.Fatal(err)
	}
	if ref, got := refObs.Registry().Text(), fleetObs.Registry().Text(); ref != got {
		t.Errorf("observer exposition diverged\n--- reference ---\n%s\n--- sharded ---\n%s", ref, got)
	}
}

// TestFleetStuckErrorIdentity: the stuck-member report must name every
// unfinished member across all shards with the same bytes the
// single-engine path produced.
func TestFleetStuckErrorIdentity(t *testing.T) {
	specs := []NodeSpec{
		throttleSpec("stuck", 15*time.Second, 0.1, 0.001),
		{Name: "quick", Config: node.IntelA100(), Workload: fleetProg("quick", 1000), Seed: 7},
	}
	_, refErr := runReference(specs, 100*time.Millisecond, nil)
	if refErr == nil {
		t.Fatal("reference: stuck member must fail")
	}
	_, fleetErr := RunFleet(specs, Options{Shards: 2})
	if fleetErr == nil {
		t.Fatal("sharded: stuck member must fail")
	}
	if refErr.Error() != fleetErr.Error() {
		t.Errorf("stuck errors diverged:\nreference: %v\nsharded:   %v", refErr, fleetErr)
	}
	if !strings.Contains(fleetErr.Error(), "stuck") || strings.Contains(fleetErr.Error(), "quick") {
		t.Errorf("stuck list wrong: %v", fleetErr)
	}
}

// TestFleetWasteLedger: the fleet uncore attribution must balance
// (baseline + useful + waste == independently integrated total within
// the ulp budget) and must not perturb the run itself.
func TestFleetWasteLedger(t *testing.T) {
	specs := fleetSpecs(t, 4)
	plain, err := RunFleet(specs, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	wasted, err := RunFleet(specs, Options{Shards: 2, Waste: true})
	if err != nil {
		t.Fatal(err)
	}
	if wasted.UncoreWaste == nil {
		t.Fatal("Waste option produced no attribution")
	}
	if !wasted.WasteBalanced {
		t.Errorf("attribution imbalance %v J over total %v J",
			wasted.UncoreWaste.Imbalance(), wasted.UncoreWaste.TotalJ)
	}
	if wasted.UncoreWaste.TotalJ <= 0 || wasted.UncoreWaste.BaselineJ <= 0 {
		t.Errorf("implausible attribution: %+v", wasted.UncoreWaste)
	}
	wasted.UncoreWaste, wasted.WasteBalanced = nil, false
	if mustJSON(t, wasted) != mustJSON(t, plain) {
		t.Error("waste ledger perturbed the run result")
	}
}

package cluster

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/spear-repro/magus/internal/obs"
	"github.com/spear-repro/magus/internal/sim"
	"github.com/spear-repro/magus/internal/telemetry"
)

// This file retains the pre-sharding cluster implementation: every
// member stepped inside one sim.Engine on one goroutine, with one
// telemetry probe per member. It is the semantic reference the sharded
// engine (fleet.go) is pinned against — the identity tests require
// RunFleet output to be byte-identical to runReference for any shard
// count — and the "before" side of BenchmarkFleet. It is not reachable
// from the public API.

// runReference executes the batch on a single engine. It mirrors
// Run/RunObserved exactly as they behaved before sharding, plus the
// shared normalize() validation (duplicate names are rejected, not
// left to the recorder's duplicate-probe panic).
func runReference(specs []NodeSpec, sampleEvery time.Duration, o *obs.Observer) (Result, error) {
	specs, sampleEvery, horizon, err := normalize(specs, sampleEvery)
	if err != nil {
		return Result{}, err
	}
	eng := sim.NewEngine(0)
	members := make([]*member, 0, len(specs))

	for _, spec := range specs {
		m, err := buildMember(spec, eng.Clock().Now)
		if err != nil {
			return Result{}, err
		}
		members = append(members, m)

		mm := m
		eng.AddComponent(sim.ComponentFunc(func(now, dt time.Duration) {
			mm.runner.Step(now, dt)
			mm.node.SetDemand(mm.runner.Demand())
		}))
		eng.AddComponent(m.node)
		if m.invoke != nil {
			eng.AddTask(&sim.Task{Name: spec.Name + "/" + m.govName, Interval: m.govInterval, Fn: m.invoke}, 0)
		}
	}

	rec := telemetry.NewRecorder(sampleEvery)
	for _, m := range members {
		mm := m
		rec.Track(mm.spec.Name, mm.node.TotalPowerW)
	}
	rec.Track("aggregate", func() float64 {
		var p float64
		for _, m := range members {
			p += m.node.TotalPowerW()
		}
		return p
	})
	eng.AddComponent(rec)

	if o != nil {
		reg := o.Registry()
		nodeW := reg.GaugeVec("magus_cluster_node_power_watts",
			"Total power per cluster member (CPU + GPU) in watts.", "node")
		aggW := reg.Gauge("magus_cluster_power_watts", "Aggregate cluster power in watts.")
		energyG := reg.Gauge("magus_cluster_energy_joules", "Cumulative cluster energy to completion.")
		samplesC := reg.Counter("magus_cluster_observer_samples_total",
			"Observer sampling ticks; tracks the telemetry recorder's fixed sample grid.")
		doneG := reg.Gauge("magus_cluster_nodes_done", "Cluster members whose application finished.")
		reg.Gauge("magus_cluster_nodes", "Cluster member count.").Set(float64(len(members)))
		memberInfo := reg.GaugeVec("magus_cluster_member_info",
			"Static cluster membership (constant 1): one series per member with its index, node name, workload and governor.",
			"member", "node", "workload", "governor")
		gauges := make([]*obs.Gauge, len(members))
		for i, m := range members {
			gauges[i] = nodeW.With(m.spec.Name)
			memberInfo.With(strconv.Itoa(i), m.spec.Name, m.spec.Workload.Name, m.govName).Set(1)
		}
		var next time.Duration
		eng.AddComponent(sim.ComponentFunc(func(now, dt time.Duration) {
			if now < next {
				return
			}
			// Advance on the fixed grid rather than re-anchoring on the
			// observed tick (next = now + sampleEvery): if the engine
			// step does not divide sampleEvery, re-anchoring stretches
			// the cadence and the observer drifts out of alignment with
			// the telemetry recorder sampling the same interval.
			for next <= now {
				next += sampleEvery
			}
			samplesC.Inc()
			var agg, energy float64
			finished := 0
			for i, m := range members {
				p := m.node.TotalPowerW()
				gauges[i].Set(p)
				agg += p
				pkg, drm, gpu := m.node.EnergyJ()
				energy += pkg + drm + gpu
				if m.runner.Done() {
					finished++
				}
			}
			aggW.Set(agg)
			energyG.Set(energy)
			doneG.Set(float64(finished))
		}))
	}

	done := func() bool {
		for _, m := range members {
			if !m.runner.Done() {
				return false
			}
		}
		return true
	}
	// The base horizon (4× the slowest member's nominal duration +
	// 10 s) assumes no governor slows a member past 4× nominal. A
	// throttled member used to hit that wall and the batch aborted with
	// a bare horizon error — or, with the error ignored, reported a
	// silently truncated makespan. Extend the horizon adaptively up to
	// maxHorizonExtensions more base-horizon windows; a member that
	// still hasn't finished is genuinely stuck (or slowed beyond any
	// plausible governor effect), so name the stragglers explicitly.
	end, err := eng.RunUntil(done, horizon)
	for ext := 0; err != nil && errors.Is(err, sim.ErrHorizon) && ext < maxHorizonExtensions; ext++ {
		end, err = eng.RunUntil(done, horizon)
	}
	if err != nil {
		if errors.Is(err, sim.ErrHorizon) {
			var stuck []string
			for _, m := range members {
				if !m.runner.Done() {
					stuck = append(stuck, fmt.Sprintf("%s (%s on %s)",
						m.spec.Name, m.spec.Workload.Name, m.spec.Config.Name))
				}
			}
			return Result{}, fmt.Errorf(
				"cluster: members unfinished after %v (%d× the 4×-nominal horizon %v): %s",
				end, 1+maxHorizonExtensions, horizon, strings.Join(stuck, ", "))
		}
		return Result{}, fmt.Errorf("cluster: %w", err)
	}

	res := Result{
		NodePower: make(map[string]*telemetry.Series, len(members)),
		Aggregate: rec.Series("aggregate"),
		MakespanS: end.Seconds(),
	}
	for _, m := range members {
		res.NodePower[m.spec.Name] = rec.Series(m.spec.Name)
		pkg, drm, gpu := m.node.EnergyJ()
		res.EnergyJ += pkg + drm + gpu
	}
	if res.Aggregate.Len() > 0 {
		res.PeakW = res.Aggregate.Max()
		res.AvgW = res.Aggregate.Mean()
	}
	return res, nil
}

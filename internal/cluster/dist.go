package cluster

import (
	"encoding/json"
	"fmt"

	"github.com/spear-repro/magus/internal/obs"
	"github.com/spear-repro/magus/internal/sketch"
)

// Fleet distribution telemetry. The paper's argument is distributional
// — power waste lives in the *tail* of per-socket uncore behaviour
// across heterogeneous nodes — so at fleet scale the engine folds four
// per-member per-tick samples into mergeable quantile sketches:
//
//	node power W     — one sample per member per tick;
//	attained GB/s    — one sample per member per tick;
//	uncore ratio     — one sample per member *socket* per tick;
//	uncore waste W   — one sample per member socket per tick (model
//	                   decomposition, the same Decompose the waste
//	                   ledger integrates).
//
// Each shard owns one sketch per dimension; reassembly merges them.
// Because sketch merging is integer bucket addition (see
// internal/sketch), the merged distributions — and therefore
// Result.Dist, the magus_fleet_* exposition and the /fleet page — are
// byte-identical for any shard count, extending the PR 9 identity
// contract to distribution telemetry.

// Dimension indices into shard.sketches / the merged set.
const (
	distNodePowerW = iota
	distUncoreRatio
	distWasteW
	distAttainedGBs
	distDims
)

// distSpec carries each dimension's exposition metadata.
var distSpecs = [distDims]struct {
	metric  string
	help    string
	buckets []float64
}{
	{
		"magus_fleet_node_power_watts",
		"Distribution of per-member total node power (CPU + GPU) in watts, sampled every engine tick.",
		[]float64{100, 150, 200, 250, 300, 400, 500, 650, 800, 1000, 1500},
	},
	{
		"magus_fleet_uncore_ratio",
		"Distribution of per-socket uncore frequency as a fraction of the hardware maximum, sampled every engine tick.",
		[]float64{0.5, 0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95, 1},
	},
	{
		"magus_fleet_uncore_waste_watts",
		"Distribution of per-socket uncore waste power (model decomposition) in watts, sampled every engine tick.",
		[]float64{0.5, 1, 2, 4, 6, 8, 10, 15, 20, 30, 50},
	},
	{
		"magus_fleet_attained_gbs",
		"Distribution of per-member attained memory throughput in GB/s, sampled every engine tick.",
		[]float64{10, 20, 40, 60, 80, 100, 150, 200, 300, 400, 600},
	},
}

// FleetDist is the fleet's distribution snapshot: the five-number
// summary of each sketched dimension. All numbers derive from merged
// integer sketch state, so the snapshot is identical for any shard
// count.
type FleetDist struct {
	NodePowerW  sketch.Summary
	UncoreRatio sketch.Summary
	WasteW      sketch.Summary
	AttainedGBs sketch.Summary
}

// summaries returns the dimension summaries indexed like distSpecs.
func (d *FleetDist) summaries() [distDims]sketch.Summary {
	return [distDims]sketch.Summary{d.NodePowerW, d.UncoreRatio, d.WasteW, d.AttainedGBs}
}

// newDistSketches allocates one sketch per dimension (shard build and
// reassembly both use it).
func newDistSketches() [distDims]*sketch.Sketch {
	var s [distDims]*sketch.Sketch
	for i := range s {
		s[i] = sketch.New()
	}
	return s
}

// mergeDist folds every shard's sketches into one merged set. Shards
// are visited in canonical order, but the result is order-independent
// by the sketch's merge contract.
func mergeDist(shards []*shard) [distDims]*sketch.Sketch {
	merged := newDistSketches()
	for _, sh := range shards {
		for d := range merged {
			merged[d].Merge(sh.sketches[d])
		}
	}
	return merged
}

// quantileLabels is the fixed label set of the *_quantile gauge
// families, in registration order.
var quantileLabels = [...]struct {
	q   string
	val func(sketch.Summary) float64
}{
	{"p50", func(s sketch.Summary) float64 { return s.P50 }},
	{"p90", func(s sketch.Summary) float64 { return s.P90 }},
	{"p99", func(s sketch.Summary) float64 { return s.P99 }},
	{"max", func(s sketch.Summary) float64 { return s.Max }},
}

// exposeDist publishes the merged distributions on the observer's
// registry: one histogram family per dimension (the sketch's log
// buckets folded through ObserveN into fixed exposition bounds) plus
// one *_quantile gauge family carrying the exact p50/p90/p99/max, and
// registers the /fleet JSON page.
func exposeDist(o *obs.Observer, merged [distDims]*sketch.Sketch, dist *FleetDist) {
	reg := o.Registry()
	sums := dist.summaries()
	for d, spec := range distSpecs {
		h := reg.Histogram(spec.metric, spec.help, spec.buckets)
		merged[d].Buckets(h.ObserveN)
		qv := reg.GaugeVec(spec.metric+"_quantile",
			spec.help+" Five-number summary derived from the merged fleet sketch.", "q")
		for _, ql := range quantileLabels {
			qv.With(ql.q).Set(ql.val(sums[d]))
		}
	}
	o.SetPage("fleet", func() (string, []byte, error) {
		body, err := json.MarshalIndent(dist, "", "  ")
		if err != nil {
			return "", nil, fmt.Errorf("cluster: fleet page: %w", err)
		}
		return "application/json", body, nil
	})
}

package cluster

import (
	"fmt"
	"testing"
	"time"

	"github.com/spear-repro/magus/internal/node"
	"github.com/spear-repro/magus/internal/sim"
)

// benchFleetSpecs builds an n-member mixed-preset fleet: Intel+A100,
// Intel+4xA100 and Intel+Max1550 nodes round-robin, MAGUS on every
// other member, short staggered workloads. No faults — benchmarks want
// a stable instruction mix, the identity tests own fault coverage.
func benchFleetSpecs(n int) []NodeSpec {
	presets := []func() node.Config{node.IntelA100, node.Intel4A100, node.IntelMax1550}
	specs := make([]NodeSpec, n)
	for i := range specs {
		spec := NodeSpec{
			Name:     fmt.Sprintf("node%d", i),
			Config:   presets[i%3](),
			Workload: fleetProg(fmt.Sprintf("w%d", i%4), 1200+300*(i%4)),
			Seed:     1 + int64(i)*131,
		}
		if i%2 == 0 {
			spec.Factory = magusFactory
		}
		specs[i] = spec
	}
	return specs
}

// nodeSteps converts a finished run into its node-step count: every
// member ticks once per sim.DefaultStep for the whole makespan.
func nodeSteps(nodes int, makespanS float64) float64 {
	return float64(nodes) * makespanS / sim.DefaultStep.Seconds()
}

var benchSink Result

// BenchmarkFleetSteps measures whole-run throughput of the sharded
// engine (Shards=GOMAXPROCS, full telemetry — the exact Run path) in
// node-steps per second. CI gates nodes=100 and nodes=1000 against
// BENCH_fleet.json; nodes=10000 is the headline fleet-scale number.
func BenchmarkFleetSteps(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			specs := benchFleetSpecs(n)
			b.ReportAllocs()
			b.ResetTimer()
			var steps float64
			for i := 0; i < b.N; i++ {
				res, err := RunFleet(specs, Options{})
				if err != nil {
					b.Fatal(err)
				}
				steps += nodeSteps(n, res.MakespanS)
				benchSink = res
			}
			b.ReportMetric(steps/b.Elapsed().Seconds(), "node-steps/s")
		})
	}
}

// BenchmarkFleetStepsSingle is the pre-sharding baseline: the same
// fleets through the retained single-engine reference path. The
// node-steps/s ratio against BenchmarkFleetSteps is the honest
// before/after for BENCH_fleet.json.
func BenchmarkFleetStepsSingle(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			specs := benchFleetSpecs(n)
			b.ReportAllocs()
			b.ResetTimer()
			var steps float64
			for i := 0; i < b.N; i++ {
				res, err := runReference(specs, 0, nil)
				if err != nil {
					b.Fatal(err)
				}
				steps += nodeSteps(n, res.MakespanS)
				benchSink = res
			}
			b.ReportMetric(steps/b.Elapsed().Seconds(), "node-steps/s")
		})
	}
}

// BenchmarkFleetTick measures the steady-state per-tick cost of one
// warmed shard — the amortised per-node step the benchgate holds to
// zero allocations. Workloads run for an hour of virtual time so the
// measured ticks sit mid-flight, not in post-completion idle.
func BenchmarkFleetTick(b *testing.B) {
	for _, n := range []int{1000} {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			specs := make([]NodeSpec, n)
			for i := range specs {
				specs[i] = NodeSpec{
					Config:   node.IntelA100(),
					Workload: fleetProg(fmt.Sprintf("w%d", i%4), 3_600_000),
					Seed:     1 + int64(i)*131,
				}
				if i%2 == 0 {
					specs[i].Factory = magusFactory
				}
			}
			normalized, every, _, err := normalize(specs, 0)
			if err != nil {
				b.Fatal(err)
			}
			// Oversized sample arena: the 0-alloc gate must not trip on
			// arena growth at long benchtimes.
			sh := newShard(normalized, every, 1<<16, Options{})
			if sh.buildErr != nil {
				b.Fatal(sh.buildErr)
			}
			for sh.clock < 1500*time.Millisecond { // warm past startup transients
				sh.tick()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sh.tick()
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/node-step")
		})
	}
}

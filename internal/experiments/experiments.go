// Package experiments regenerates every table and figure of the
// paper's evaluation (§6) on the simulated systems: the motivation
// profiles (Figures 1–2), the end-to-end comparison on all three
// systems (Figure 4a/4b/4c), the SRAD case study (Figures 5–6), the
// threshold sensitivity Pareto analysis (Figure 7), the burst-
// prediction Jaccard table (Table 1), and the idle-overhead table
// (Table 2). Each experiment returns typed results that
// cmd/magus-bench renders and the root bench suite asserts against.
package experiments

import (
	"fmt"
	"time"

	"github.com/spear-repro/magus/internal/core"
	"github.com/spear-repro/magus/internal/governor"
	"github.com/spear-repro/magus/internal/harness"
	"github.com/spear-repro/magus/internal/hsmp"
	"github.com/spear-repro/magus/internal/node"
	"github.com/spear-repro/magus/internal/obs"
	"github.com/spear-repro/magus/internal/workload"
)

// Options tunes experiment cost. The zero value selects the paper's
// methodology (5 repeats); Quick() is for CI-speed smoke runs.
type Options struct {
	// Repeats per (app, governor) cell; the paper uses at least 5.
	Repeats int
	// Seed is the base seed; repeats derive their own.
	Seed int64
	// Obs, when set, collects metrics across every run the experiment
	// performs (observation is passive; results are unchanged).
	Obs *obs.Observer
	// Jobs bounds the worker pool experiment cells fan out across
	// (<= 0 = GOMAXPROCS). Output is byte-identical for any value.
	Jobs int
}

// normalize applies the documented defaults and validates the knobs.
// Repeats == 0 selects the paper's default of 5; a negative value is
// rejected loudly — the grid drivers used to clamp it silently, which
// made a mis-typed flag run a different methodology than requested.
func (o Options) normalize() (Options, error) {
	if o.Repeats < 0 {
		return o, fmt.Errorf("experiments: negative Repeats %d (0 selects the default of 5)", o.Repeats)
	}
	if o.Repeats == 0 {
		o.Repeats = 5
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o, nil
}

// Quick returns options for fast smoke runs (single repeat).
func Quick() Options { return Options{Repeats: 1, Seed: 1} }

// Paper returns the paper's methodology (≥5 repeats, outlier-trimmed).
func Paper() Options { return Options{Repeats: 5, Seed: 1} }

// SystemByName maps the paper's system names to node presets.
func SystemByName(name string) (node.Config, error) {
	switch name {
	case "Intel+A100", "a100":
		return node.IntelA100(), nil
	case "Intel+4A100", "4a100":
		return node.Intel4A100(), nil
	case "Intel+Max1550", "max1550":
		return node.IntelMax1550(), nil
	case "Intel CPU-only", "cpuonly":
		return node.IntelCPUOnly(), nil
	case "AMD+MI250", "amd":
		return hsmp.AMDEpycMI250(), nil
	}
	return node.Config{}, fmt.Errorf("experiments: unknown system %q", name)
}

// Invocation power costs differ by CPU architecture: per-core MSR
// sweeps and PCM uncore reads wake more of the mesh on Sapphire Rapids
// (Xeon Max) than on Ice Lake (Xeon 8380). These constants are
// calibrated so the idle overheads land on Table 2's measurements
// (MAGUS ≈1.1 %, UPS ≈4.9 % on Intel+A100; ≈1.16 % / 7.9 % on
// Intel+Max1550).
const (
	magusExtraWattsICX = 5.0
	magusExtraWattsSPR = 8.5
	upsExtraWattsICX   = 14.0
	upsExtraWattsSPR   = 32.0
)

// magusConfigFor returns the MAGUS configuration with the system's
// invocation cost model applied.
func magusConfigFor(system string) core.Config {
	mc := core.DefaultConfig()
	if system == "Intel+Max1550" {
		mc.ExtraWatts = magusExtraWattsSPR
	} else {
		mc.ExtraWatts = magusExtraWattsICX
	}
	return mc
}

// upsConfigFor returns the UPS configuration with the system's
// invocation cost model applied. On Sapphire Rapids the per-core IPC
// baseline is noisier (mesh interference, HBM-flattened DRAM-power
// signal), so UPS's damage guard effectively tolerates deeper
// degradation before backing off — the mechanism behind the paper's
// observation that UPS performs worst on Intel+Max1550 (§6.1).
func upsConfigFor(system string) governor.UPSConfig {
	uc := governor.DefaultUPSConfig()
	if system == "Intel+Max1550" {
		uc.ExtraWatts = upsExtraWattsSPR
		uc.IPCDegrade = 0.26
	} else {
		uc.ExtraWatts = upsExtraWattsICX
	}
	return uc
}

// magusFactory builds fresh MAGUS runtimes for the given system.
func magusFactoryFor(system string) func() governor.Governor {
	mc := magusConfigFor(system)
	return func() governor.Governor { return core.New(mc) }
}

// upsFactoryFor builds fresh UPS baselines for the given system.
func upsFactoryFor(system string) func() governor.Governor {
	uc := upsConfigFor(system)
	return func() governor.Governor { return governor.NewUPS(uc) }
}

// defaultFactory builds the vendor-default governor.
func defaultFactory() governor.Governor { return governor.NewDefault() }

// mustProgram resolves a catalog workload or panics (experiment tables
// are static; a missing name is a programming error).
func mustProgram(name string) *workload.Program {
	p, ok := workload.ByName(name)
	if !ok {
		panic(fmt.Sprintf("experiments: unknown workload %q", name))
	}
	return p
}

// runGroup is one aggregated cell of an experiment grid: a (system,
// app, governor) tuple whose repeats are trim-averaged into a single
// Result, exactly like harness.RunRepeated.
type runGroup struct {
	cfg     node.Config
	prog    *workload.Program
	factory harness.GovernorFactory
	opt     harness.Options
}

// runGroups flattens every group into its (group, repeat) cells,
// executes the whole grid on one bounded worker pool, and returns one
// reduced Result per group in group order. A single flat pool keeps
// workers busy across group boundaries (no per-group barrier) while
// canonical-order reassembly keeps the output byte-identical to the
// serial sweep for any jobs value.
func runGroups(groups []runGroup, reps, jobs int) ([]harness.Result, error) {
	if reps < 1 {
		return nil, fmt.Errorf("experiments: %d repeats requested; need at least 1", reps)
	}
	specs := make([]harness.RunSpec, 0, len(groups)*reps)
	for _, g := range groups {
		specs = append(specs, harness.RepeatSpecs(g.cfg, g.prog, g.factory, reps, g.opt)...)
	}
	results, err := harness.RunBatch(specs, jobs)
	if err != nil {
		return nil, err
	}
	out := make([]harness.Result, len(groups))
	for i := range groups {
		out[i] = harness.Reduce(results[i*reps : (i+1)*reps])
	}
	return out, nil
}

// AppResult is one application row of Figure 4.
type AppResult struct {
	App   string
	MAGUS harness.Comparison
	UPS   harness.Comparison
}

// Figure4Result is one subplot of Figure 4 (one system).
type Figure4Result struct {
	System string
	Apps   []AppResult
}

// Figure4 reproduces one subplot of Figure 4: per-application
// performance loss, CPU power saving, and energy saving for MAGUS and
// UPS versus the vendor default, on the named system ("Intel+A100",
// "Intel+Max1550" or "Intel+4A100").
func Figure4(system string, opt Options) (Figure4Result, error) {
	opt, err := opt.normalize()
	if err != nil {
		return Figure4Result{}, err
	}
	cfg, err := SystemByName(system)
	if err != nil {
		return Figure4Result{}, err
	}
	var apps []string
	switch cfg.Name {
	case "Intel+A100":
		apps = workload.SingleGPU()
	case "Intel+Max1550":
		apps = workload.AltisSYCL()
	case "Intel+4A100":
		apps = workload.MultiGPU()
	}
	out := Figure4Result{System: cfg.Name}
	runOpt := harness.Options{Seed: opt.Seed, Obs: opt.Obs}
	groups := make([]runGroup, 0, len(apps)*3)
	for _, app := range apps {
		prog := mustProgram(app)
		groups = append(groups,
			runGroup{cfg, prog, defaultFactory, runOpt},
			runGroup{cfg, prog, magusFactoryFor(cfg.Name), runOpt},
			runGroup{cfg, prog, upsFactoryFor(cfg.Name), runOpt},
		)
	}
	results, err := runGroups(groups, opt.Repeats, opt.Jobs)
	if err != nil {
		return Figure4Result{}, err
	}
	for i, app := range apps {
		base, magus, ups := results[3*i], results[3*i+1], results[3*i+2]
		out.Apps = append(out.Apps, AppResult{
			App:   app,
			MAGUS: harness.Compare(base, magus),
			UPS:   harness.Compare(base, ups),
		})
	}
	return out, nil
}

// MaxEnergySaving returns the best MAGUS energy saving in the result —
// the "up to X %" headline number.
func (f Figure4Result) MaxEnergySaving() float64 {
	best := 0.0
	for _, a := range f.Apps {
		if a.MAGUS.EnergySavingPct > best {
			best = a.MAGUS.EnergySavingPct
		}
	}
	return best
}

// MaxPerfLoss returns the worst MAGUS performance loss in the result.
func (f Figure4Result) MaxPerfLoss() float64 {
	worst := 0.0
	for _, a := range f.Apps {
		if a.MAGUS.PerfLossPct > worst {
			worst = a.MAGUS.PerfLossPct
		}
	}
	return worst
}

// traceRun executes one traced run (100 ms sampling) and returns it.
func traceRun(cfg node.Config, app string, gov governor.Governor, opt Options) (harness.Result, error) {
	return harness.Run(cfg, mustProgram(app), gov, harness.Options{
		Seed:          opt.Seed,
		TraceInterval: 100 * time.Millisecond,
		Obs:           opt.Obs,
	})
}

// traceSpec is traceRun as a batch cell, for figures that trace several
// policies and can run them concurrently.
func traceSpec(cfg node.Config, app string, factory harness.GovernorFactory, opt Options) harness.RunSpec {
	return harness.RunSpec{
		Cfg:     cfg,
		Prog:    mustProgram(app),
		Factory: factory,
		Opt: harness.Options{
			Seed:          opt.Seed,
			TraceInterval: 100 * time.Millisecond,
			Obs:           opt.Obs,
		},
	}
}

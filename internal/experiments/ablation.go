package experiments

import (
	"time"

	"github.com/spear-repro/magus/internal/core"
	"github.com/spear-repro/magus/internal/governor"
	"github.com/spear-repro/magus/internal/harness"
)

// The ablation study quantifies the contribution of each MAGUS design
// choice (DESIGN.md §6) and places the model-based related-work
// approach next to them:
//
//   - magus:            the full runtime (reference);
//   - no-hifreq:        Algorithm 2 disabled — quantifies what the
//                       high-frequency override buys on fluttering
//                       workloads (srad);
//   - short-deriv:      derivative span 1 — quantifies what the longer
//                       memory-dynamics window buys (falls that land
//                       in monitoring gaps);
//   - warmup-max:       warm-up at maximum uncore (§3.3's literal
//                       reading) — trades early-burst performance for
//                       warm-up energy;
//   - model-based:      offline-profiled bandwidth model, minimal
//                       sufficient frequency (related work, §7);
//   - ups:              the UPScavenger baseline.

// AblationRow is one (variant, app) cell.
type AblationRow struct {
	Variant string
	App     string
	harness.Comparison
}

// AblationResult is the full ablation table on Intel+A100.
type AblationResult struct {
	Apps     []string
	Variants []string
	Rows     []AblationRow
}

// Get returns the comparison for (variant, app).
func (a AblationResult) Get(variant, app string) (harness.Comparison, bool) {
	for _, r := range a.Rows {
		if r.Variant == variant && r.App == app {
			return r.Comparison, true
		}
	}
	return harness.Comparison{}, false
}

// AblationApps returns the default application set for the study: a
// fluttering app, an epoch app, a bursty app and an init-heavy app.
func AblationApps() []string { return []string{"srad", "unet", "bfs", "gemm"} }

// ablationVariants builds the variant factories for a system.
func ablationVariants(system string) (names []string, factories []harness.GovernorFactory) {
	base := magusConfigFor(system)

	noHi := base
	noHi.DisableHighFreq = true

	shortDeriv := base
	shortDeriv.DerivLen = 1

	warmMax := base
	warmMax.WarmupAtMax = true

	cfg, _ := SystemByName(system)
	bwModel := func(ghz float64) float64 {
		return float64(cfg.Sockets) * cfg.BWAt(ghz)
	}
	mbCfg := governor.DefaultModelBasedConfig()
	mbCfg.ExtraWatts = magusConfigFor(system).ExtraWatts

	// oracle: an upper bound on what uncore scaling can harvest —
	// exact platform model, 20 ms decisions, zero invocation cost.
	oracleCfg := governor.DefaultModelBasedConfig()
	oracleCfg.Interval = 20 * time.Millisecond
	oracleCfg.InvocationTime = time.Millisecond
	oracleCfg.BusyCores = 1e-9
	oracleCfg.Headroom = 0.02

	names = []string{"magus", "no-hifreq", "short-deriv", "warmup-max", "model-based", "ups", "duf", "oracle"}
	factories = []harness.GovernorFactory{
		func() governor.Governor { return core.New(base) },
		func() governor.Governor { return core.New(noHi) },
		func() governor.Governor { return core.New(shortDeriv) },
		func() governor.Governor { return core.New(warmMax) },
		func() governor.Governor { return governor.NewModelBased(mbCfg, bwModel) },
		upsFactoryFor(system),
		func() governor.Governor { return governor.NewDUF(governor.DUFConfig{}) },
		func() governor.Governor { return governor.NewModelBased(oracleCfg, bwModel) },
	}
	return names, factories
}

// Ablation runs the variant × application matrix on Intel+A100 and
// reports each cell against the vendor-default baseline.
func Ablation(opt Options) (AblationResult, error) {
	opt, err := opt.normalize()
	if err != nil {
		return AblationResult{}, err
	}
	cfg, err := SystemByName("Intel+A100")
	if err != nil {
		return AblationResult{}, err
	}
	apps := AblationApps()
	variants, factories := ablationVariants(cfg.Name)
	out := AblationResult{Apps: apps, Variants: variants}

	// One flat grid: per app, the baseline group followed by every
	// variant group. Group order fixes the output order, so the pool
	// can interleave cells freely.
	runOpt := harness.Options{Seed: opt.Seed, Obs: opt.Obs}
	stride := 1 + len(variants)
	groups := make([]runGroup, 0, len(apps)*stride)
	for _, app := range apps {
		prog := mustProgram(app)
		groups = append(groups, runGroup{cfg, prog, defaultFactory, runOpt})
		for i := range variants {
			groups = append(groups, runGroup{cfg, prog, factories[i], runOpt})
		}
	}
	results, err := runGroups(groups, opt.Repeats, opt.Jobs)
	if err != nil {
		return AblationResult{}, err
	}
	for ai, app := range apps {
		base := results[ai*stride]
		for i, variant := range variants {
			out.Rows = append(out.Rows, AblationRow{
				Variant:    variant,
				App:        app,
				Comparison: harness.Compare(base, results[ai*stride+1+i]),
			})
		}
	}
	return out, nil
}

package experiments

import (
	"github.com/spear-repro/magus/internal/core"
	"github.com/spear-repro/magus/internal/governor"
	"github.com/spear-repro/magus/internal/harness"
)

// NUMAStudyResult compares single-domain MAGUS against the per-socket
// extension on a NUMA-imbalanced workload (numa_etl): the paper's
// runtime drives both sockets from one system-wide signal, so the
// quiet socket follows the busy one; per-socket scaling parks the
// quiet socket's uncore at minimum for the whole run.
type NUMAStudyResult struct {
	App       string
	Global    harness.Comparison
	PerSocket harness.Comparison
}

// NUMAStudy runs the comparison on Intel+A100.
func NUMAStudy(opt Options) (NUMAStudyResult, error) {
	opt = opt.withDefaults()
	cfg, err := SystemByName("Intel+A100")
	if err != nil {
		return NUMAStudyResult{}, err
	}
	prog := mustProgram("numa_etl")
	runOpt := harness.Options{Seed: opt.Seed, Obs: opt.Obs}

	base, err := harness.RunRepeated(cfg, prog, defaultFactory, opt.Repeats, runOpt)
	if err != nil {
		return NUMAStudyResult{}, err
	}
	global, err := harness.RunRepeated(cfg, prog, magusFactoryFor(cfg.Name), opt.Repeats, runOpt)
	if err != nil {
		return NUMAStudyResult{}, err
	}
	mc := magusConfigFor(cfg.Name)
	perSock, err := harness.RunRepeated(cfg, prog,
		func() governor.Governor { return core.NewPerSocket(mc) },
		opt.Repeats, runOpt)
	if err != nil {
		return NUMAStudyResult{}, err
	}
	return NUMAStudyResult{
		App:       prog.Name,
		Global:    harness.Compare(base, global),
		PerSocket: harness.Compare(base, perSock),
	}, nil
}

package experiments

import (
	"github.com/spear-repro/magus/internal/core"
	"github.com/spear-repro/magus/internal/governor"
	"github.com/spear-repro/magus/internal/harness"
)

// NUMAStudyResult compares single-domain MAGUS against the per-socket
// extension on a NUMA-imbalanced workload (numa_etl): the paper's
// runtime drives both sockets from one system-wide signal, so the
// quiet socket follows the busy one; per-socket scaling parks the
// quiet socket's uncore at minimum for the whole run.
type NUMAStudyResult struct {
	App       string
	Global    harness.Comparison
	PerSocket harness.Comparison
}

// NUMAStudy runs the comparison on Intel+A100.
func NUMAStudy(opt Options) (NUMAStudyResult, error) {
	opt, err := opt.normalize()
	if err != nil {
		return NUMAStudyResult{}, err
	}
	cfg, err := SystemByName("Intel+A100")
	if err != nil {
		return NUMAStudyResult{}, err
	}
	prog := mustProgram("numa_etl")
	runOpt := harness.Options{Seed: opt.Seed, Obs: opt.Obs}

	mc := magusConfigFor(cfg.Name)
	results, err := runGroups([]runGroup{
		{cfg, prog, defaultFactory, runOpt},
		{cfg, prog, magusFactoryFor(cfg.Name), runOpt},
		{cfg, prog, func() governor.Governor { return core.NewPerSocket(mc) }, runOpt},
	}, opt.Repeats, opt.Jobs)
	if err != nil {
		return NUMAStudyResult{}, err
	}
	return NUMAStudyResult{
		App:       prog.Name,
		Global:    harness.Compare(results[0], results[1]),
		PerSocket: harness.Compare(results[0], results[2]),
	}, nil
}

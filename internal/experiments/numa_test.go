package experiments

import "testing"

func TestNUMAStudy(t *testing.T) {
	res, err := NUMAStudy(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.App != "numa_etl" {
		t.Fatalf("app = %q", res.App)
	}
	// Both policies must save power with bounded loss.
	for _, c := range []struct {
		name string
		cmp  float64
	}{
		{"global power", res.Global.PowerSavingPct},
		{"per-socket power", res.PerSocket.PowerSavingPct},
	} {
		if c.cmp <= 0 {
			t.Errorf("%s saving = %.1f %%, want positive", c.name, c.cmp)
		}
	}
	if res.Global.PerfLossPct > 5 || res.PerSocket.PerfLossPct > 5 {
		t.Fatalf("losses: global %.1f %%, per-socket %.1f %%",
			res.Global.PerfLossPct, res.PerSocket.PerfLossPct)
	}
	// The extension's point: on a NUMA-imbalanced workload, per-socket
	// scaling beats the single-domain runtime on power, because the
	// quiet socket parks at the minimum while the busy one keeps
	// bandwidth.
	if res.PerSocket.PowerSavingPct <= res.Global.PowerSavingPct {
		t.Fatalf("per-socket %.1f %% should beat global %.1f %% on numa_etl",
			res.PerSocket.PowerSavingPct, res.Global.PowerSavingPct)
	}
}

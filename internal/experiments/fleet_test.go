package experiments

import (
	"encoding/json"
	"testing"
)

func TestFleetStudySmall(t *testing.T) {
	opt := FleetOptions{Nodes: 12, TopK: 3, Shards: 2}
	res, err := FleetStudy(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes != 12 || res.BudgetW <= 0 {
		t.Fatalf("study header implausible: %+v", res)
	}
	if len(res.Cells) != 3 {
		t.Fatalf("want 3 governor rows, got %d", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.EnergyJ <= 0 || c.PeakW <= 0 || c.AvgW <= 0 || c.MakespanS <= 0 {
			t.Errorf("%s: implausible cell %+v", c.Governor, c)
		}
		if c.OverBudgetFrac < 0 || c.OverBudgetFrac > 1 {
			t.Errorf("%s: OverBudgetFrac %v outside [0,1]", c.Governor, c.OverBudgetFrac)
		}
		if c.Waste == nil {
			t.Fatalf("%s: waste ledger missing", c.Governor)
		}
		if !c.WasteBalanced {
			t.Errorf("%s: waste ledger imbalanced by %v J over %v J",
				c.Governor, c.Waste.Imbalance(), c.Waste.TotalJ)
		}
		if len(c.Top) != 3 {
			t.Errorf("%s: TopK=3 returned %d summaries", c.Governor, len(c.Top))
		}
	}
	// The default row anchors the budget at BudgetFrac of its own peak,
	// so it must spend some time above it.
	if res.Cells[0].Governor != "default" || res.Cells[0].OverBudgetFrac == 0 {
		t.Errorf("default row should exceed its own 92%%-of-peak budget: %+v", res.Cells[0])
	}
}

// TestFleetStudyDeterministicAcrossShards: the study result is
// byte-identical for any shard count — the cluster engine's identity
// contract surfaces intact through the experiment layer.
func TestFleetStudyDeterministicAcrossShards(t *testing.T) {
	a, err := FleetStudy(FleetOptions{Nodes: 9, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FleetStudy(FleetOptions{Nodes: 9, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Errorf("fleet study diverged across shard counts:\nshards=1: %.300s\nshards=4: %.300s", aj, bj)
	}
}

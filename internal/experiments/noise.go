package experiments

import (
	"math/rand"

	"github.com/spear-repro/magus/internal/harness"
)

// NoisePoint is one amplitude of the robustness sweep.
type NoisePoint struct {
	// Amplitude is the relative measurement-noise level: each PCM
	// reading is scaled by a deterministic pseudo-random factor in
	// [1-A, 1+A].
	Amplitude float64
	harness.Comparison
}

// NoiseStudyResult sweeps MAGUS under increasingly noisy throughput
// measurement on one application. Real PCM readings carry counter
// jitter and interference from co-running processes; the sweep shows
// how gracefully the runtime degrades when its single input signal
// gets worse.
type NoiseStudyResult struct {
	App    string
	Points []NoisePoint
}

// NoiseAmplitudes is the default sweep grid.
func NoiseAmplitudes() []float64 { return []float64{0, 0.05, 0.1, 0.2, 0.4} }

// noiseFn returns a deterministic relative-noise transform.
func noiseFn(amplitude float64, seed int64) func(float64) float64 {
	if amplitude <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	return func(gbs float64) float64 {
		return gbs * (1 + amplitude*(rng.Float64()*2-1))
	}
}

// NoiseStudy runs MAGUS on app (Intel+A100) across the noise grid,
// comparing each point against a clean-baseline default run.
//
// Each noisy repeat carries its own noise closure over its own
// rand.Rand, seeded from that repeat's derived seed. (An earlier
// version shared one closure across the repeats of an amplitude, so
// repeat i's noise stream depended on how much stream repeat i-1 had
// consumed — coupling that breaks the independent-cell contract the
// parallel engine needs. Repeat 0 still sees the exact stream the old
// code started with.)
func NoiseStudy(app string, opt Options) (NoiseStudyResult, error) {
	opt, err := opt.normalize()
	if err != nil {
		return NoiseStudyResult{}, err
	}
	cfg, err := SystemByName("Intel+A100")
	if err != nil {
		return NoiseStudyResult{}, err
	}
	prog := mustProgram(app)
	reps := opt.Repeats
	if reps < 1 {
		reps = 1
	}
	amps := NoiseAmplitudes()

	// Flat grid: the clean baseline's repeats first, then reps cells
	// per amplitude, all on one pool.
	specs := harness.RepeatSpecs(cfg, prog, defaultFactory, reps,
		harness.Options{Seed: opt.Seed, Obs: opt.Obs})
	for _, amp := range amps {
		a := amp
		for i := 0; i < reps; i++ {
			seed := opt.Seed + int64(i)*7919
			specs = append(specs, harness.RunSpec{
				Cfg: cfg, Prog: prog, Factory: magusFactoryFor(cfg.Name),
				Opt: harness.Options{
					Seed:     seed,
					PCMNoise: noiseFn(a, seed*37+int64(a*1000)),
					Obs:      opt.Obs,
				},
			})
		}
	}
	results, err := harness.RunBatch(specs, opt.Jobs)
	if err != nil {
		return NoiseStudyResult{}, err
	}
	base := harness.Reduce(results[:reps])
	out := NoiseStudyResult{App: app}
	for ai, a := range amps {
		res := harness.Reduce(results[reps*(1+ai) : reps*(2+ai)])
		out.Points = append(out.Points, NoisePoint{
			Amplitude:  a,
			Comparison: harness.Compare(base, res),
		})
	}
	return out, nil
}

package experiments

import (
	"math/rand"

	"github.com/spear-repro/magus/internal/harness"
)

// NoisePoint is one amplitude of the robustness sweep.
type NoisePoint struct {
	// Amplitude is the relative measurement-noise level: each PCM
	// reading is scaled by a deterministic pseudo-random factor in
	// [1-A, 1+A].
	Amplitude float64
	harness.Comparison
}

// NoiseStudyResult sweeps MAGUS under increasingly noisy throughput
// measurement on one application. Real PCM readings carry counter
// jitter and interference from co-running processes; the sweep shows
// how gracefully the runtime degrades when its single input signal
// gets worse.
type NoiseStudyResult struct {
	App    string
	Points []NoisePoint
}

// NoiseAmplitudes is the default sweep grid.
func NoiseAmplitudes() []float64 { return []float64{0, 0.05, 0.1, 0.2, 0.4} }

// noiseFn returns a deterministic relative-noise transform.
func noiseFn(amplitude float64, seed int64) func(float64) float64 {
	if amplitude <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	return func(gbs float64) float64 {
		return gbs * (1 + amplitude*(rng.Float64()*2-1))
	}
}

// NoiseStudy runs MAGUS on app (Intel+A100) across the noise grid,
// comparing each point against a clean-baseline default run.
func NoiseStudy(app string, opt Options) (NoiseStudyResult, error) {
	opt = opt.withDefaults()
	cfg, err := SystemByName("Intel+A100")
	if err != nil {
		return NoiseStudyResult{}, err
	}
	prog := mustProgram(app)
	base, err := harness.RunRepeated(cfg, prog, defaultFactory, opt.Repeats, harness.Options{Seed: opt.Seed, Obs: opt.Obs})
	if err != nil {
		return NoiseStudyResult{}, err
	}
	out := NoiseStudyResult{App: app}
	for _, amp := range NoiseAmplitudes() {
		a := amp
		res, err := harness.RunRepeated(cfg, prog, magusFactoryFor(cfg.Name), opt.Repeats,
			harness.Options{Seed: opt.Seed, PCMNoise: noiseFn(a, opt.Seed*37+int64(a*1000)), Obs: opt.Obs})
		if err != nil {
			return NoiseStudyResult{}, err
		}
		out.Points = append(out.Points, NoisePoint{
			Amplitude:  a,
			Comparison: harness.Compare(base, res),
		})
	}
	return out, nil
}

package experiments

import (
	"fmt"
	"time"

	"github.com/spear-repro/magus/internal/attrib"
	"github.com/spear-repro/magus/internal/harness"
	"github.com/spear-repro/magus/internal/report"
	"github.com/spear-repro/magus/internal/spans"
	"github.com/spear-repro/magus/internal/workload"
)

// TenantScenario names one colocation preset of the study.
type TenantScenario struct {
	Name string
	Spec workload.MuxSpec
}

// TenantScenarios returns the study's colocation matrix: the canonical
// contention shapes per-tenant attribution must stay balanced under.
func TenantScenarios() []TenantScenario {
	return []TenantScenario{
		{"noisy-neighbor", workload.NoisyNeighbor()},
		{"fractional-gpu", workload.FractionalGPU()},
		{"burst", workload.BurstColocation()},
	}
}

// TenantCell is one (scenario, governor) colocated run: the measured
// per-tenant energy split plus each tenant's share of the uncore waste
// ledger.
type TenantCell struct {
	Scenario string
	Governor string
	Policy   string

	// Report is the node-energy attribution (package + DRAM + GPU split
	// across tenants); Balanced is its invariant — per-tenant joules sum
	// to the independently integrated total within the report's own
	// sample-scaled ulp tolerance.
	Report   *attrib.Report
	Balanced bool

	// Run is the whole-run uncore waste bucket and Tenants its
	// per-tenant decomposition from the spans ledger; LedgerBalanced is
	// the ledger's own invariant over run and windows.
	Run            report.WasteRow
	Tenants        []report.WasteRow
	LedgerBalanced bool

	// Result carries the run's standard metrics for context.
	Result harness.Result
}

// TenantStudyResult is the co-located attribution study: who pays for
// the joules when workloads share a node — the fleet-accounting
// question a single-application energy metric cannot answer.
type TenantStudyResult struct {
	System string
	Cells  []TenantCell
}

// TenantStudy runs every colocation scenario under the default and
// MAGUS governors with the waste ledger attached. Tracers are
// single-run objects, so cells run serially.
func TenantStudy(system string, opt Options) (TenantStudyResult, error) {
	opt, err := opt.normalize()
	if err != nil {
		return TenantStudyResult{}, err
	}
	cfg, err := SystemByName(system)
	if err != nil {
		return TenantStudyResult{}, err
	}

	type cellSpec struct {
		name    string
		factory harness.GovernorFactory
		window  int
	}
	govs := []cellSpec{
		{"default", defaultFactory0, spans.DefaultWindowTicks},
		{"magus", magusFactoryFor(cfg.Name), magusConfigFor(cfg.Name).Window},
	}

	out := TenantStudyResult{System: cfg.Name}
	for _, sc := range TenantScenarios() {
		for _, g := range govs {
			tr := spans.New(g.window)
			spec := sc.Spec
			res, err := harness.Run(cfg, nil, g.factory(), harness.Options{
				Seed: opt.Seed, Obs: opt.Obs, Spans: tr, Tenants: &spec,
			})
			if err != nil {
				return TenantStudyResult{}, fmt.Errorf("experiments: tenants %s/%s/%s: %w",
					cfg.Name, sc.Name, g.name, err)
			}
			if res.Tenants == nil {
				return TenantStudyResult{}, fmt.Errorf("experiments: tenants %s/%s/%s: run returned no attribution report",
					cfg.Name, sc.Name, g.name)
			}
			l := tr.Ledger()
			samples := spans.StepsIn(time.Duration(res.RuntimeS*float64(time.Second)), time.Millisecond) * cfg.Sockets
			cell := TenantCell{
				Scenario:       sc.Name,
				Governor:       g.name,
				Policy:         sc.Spec.Policy.String(),
				Report:         res.Tenants,
				Balanced:       res.Tenants.Balanced(res.Tenants.BalanceTol()),
				Run:            wasteRow("run", l.Run()),
				LedgerBalanced: l.Balanced(spans.BalanceTolUlps(samples)),
				Result:         res,
			}
			for _, te := range l.Tenants() {
				cell.Tenants = append(cell.Tenants, wasteRow("tenant "+te.Name, te.Energy))
			}
			out.Cells = append(out.Cells, cell)
		}
	}
	return out, nil
}

// Rows flattens the study into waste-table rows: per cell the run
// bucket then its per-tenant buckets, scopes prefixed with
// scenario/governor.
func (r TenantStudyResult) Rows() []report.WasteRow {
	var rows []report.WasteRow
	for _, c := range r.Cells {
		prefix := c.Scenario + " " + c.Governor + " "
		run := c.Run
		run.Scope = prefix + run.Scope
		rows = append(rows, run)
		for _, t := range c.Tenants {
			t.Scope = prefix + t.Scope
			rows = append(rows, t)
		}
	}
	return rows
}

// Table renders the study as the magus-bench -tenants output.
func (r TenantStudyResult) Table() *report.Table {
	return report.WasteTable(r.Rows())
}

package experiments

import (
	"math"
	"testing"
)

func TestFaultSweep(t *testing.T) {
	res, err := FaultSweep("srad", []string{"pcm-loss", "pcm-flaky", "pcm-outage"}, Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	byPlan := map[string]FaultPoint{}
	for _, p := range res.Points {
		byPlan[p.Plan] = p
		if p.Injected.Total() == 0 {
			t.Errorf("%s: no faults fired", p.Plan)
		}
		// Fail-safe direction: faults cost savings, never performance.
		if p.PerfLossPct > 2 {
			t.Errorf("%s: perf loss vs clean MAGUS = %.2f %%", p.Plan, p.PerfLossPct)
		}
	}

	// Permanent PCM loss degrades to vendor-default behaviour: uncore
	// pinned at max, runtime within 1 % of the default governor.
	loss := byPlan["pcm-loss"]
	if loss.Resilience.LostCycles == 0 || loss.Resilience.MissedSamples == 0 {
		t.Fatalf("pcm-loss: no lost cycles: %+v", loss.Resilience)
	}
	if res.DefaultRuntimeS <= 0 {
		t.Fatalf("default runtime = %v", res.DefaultRuntimeS)
	}
	if dev := math.Abs(loss.RuntimeS-res.DefaultRuntimeS) / res.DefaultRuntimeS * 100; dev > 1 {
		t.Errorf("pcm-loss runtime %.2f s deviates %.2f %% from vendor default %.2f s, want ≤ 1 %%",
			loss.RuntimeS, dev, res.DefaultRuntimeS)
	}

	// A bounded outage recovers: warm-up re-entry shows up as a
	// recovery, and the run still saves energy versus the default.
	outage := byPlan["pcm-outage"]
	if outage.Resilience.Recoveries == 0 {
		t.Errorf("pcm-outage: no recovery recorded: %+v", outage.Resilience)
	}

	// Transient flakiness is absorbed by retries without losing the
	// sensor.
	flaky := byPlan["pcm-flaky"]
	if flaky.Resilience.SensorRetries == 0 {
		t.Errorf("pcm-flaky: no retries recorded: %+v", flaky.Resilience)
	}
}

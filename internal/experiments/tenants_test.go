package experiments

import (
	"math"
	"testing"
)

// TestTenantStudyBalance enforces the attribution invariant on every
// study cell: per-tenant joules sum to the independently integrated
// total (node energy and uncore ledger alike), with regime labels
// matching the scheduling policy.
func TestTenantStudyBalance(t *testing.T) {
	res, err := TenantStudy("a100", Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(TenantScenarios())*2 {
		t.Fatalf("%d cells, want %d", len(res.Cells), len(TenantScenarios())*2)
	}
	for _, c := range res.Cells {
		id := c.Scenario + "/" + c.Governor
		if !c.Balanced {
			r := c.Report
			t.Errorf("%s: attribution imbalance %v J beyond %v ulps",
				id, math.Abs(r.SumJ()-r.TotalJ), r.BalanceTol())
		}
		if !c.LedgerBalanced {
			t.Errorf("%s: waste ledger imbalanced", id)
		}
		if len(c.Report.Tenants) < 2 {
			t.Errorf("%s: %d tenant rows", id, len(c.Report.Tenants))
		}
		for _, te := range c.Report.Tenants {
			if te.TotalJ() <= 0 {
				t.Errorf("%s: tenant %s billed nothing", id, te.Tenant)
			}
			switch c.Policy {
			case "round-robin":
				if te.Estimated() {
					t.Errorf("%s: tenant %s estimated under time-slicing", id, te.Tenant)
				}
			case "fractional":
				if te.EstimatedS <= 0 {
					t.Errorf("%s: tenant %s never estimated under fractional sharing", id, te.Tenant)
				}
			}
		}
		if len(c.Tenants) != len(c.Report.Tenants) {
			t.Errorf("%s: ledger tenant rows %d != report tenants %d",
				id, len(c.Tenants), len(c.Report.Tenants))
		}
	}
	if res.Table().String() == "" {
		t.Fatal("study renders an empty table")
	}
}

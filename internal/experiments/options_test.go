package experiments

import (
	"strings"
	"testing"
)

// TestNegativeRepeatsRejected is the regression for the silent-clamp
// bug: every grid driver used to accept Repeats < 0 and quietly run a
// different methodology (withDefaults mapped it to 5, runGroups to 1).
// A negative count must now surface as an explicit error from every
// driver entry point.
func TestNegativeRepeatsRejected(t *testing.T) {
	bad := Options{Repeats: -3, Seed: 1}
	drivers := map[string]func() error{
		"Figure4":    func() error { _, err := Figure4("Intel+A100", bad); return err },
		"Figure7":    func() error { _, err := Figure7("srad", bad); return err },
		"Ablation":   func() error { _, err := Ablation(bad); return err },
		"NUMAStudy":  func() error { _, err := NUMAStudy(bad); return err },
		"NoiseStudy": func() error { _, err := NoiseStudy("srad", bad); return err },
		"FaultSweep": func() error { _, err := FaultSweep("srad", []string{"pcm-flaky"}, bad); return err },
		"Table1":     func() error { _, err := Table1(bad); return err },
		"Table2":     func() error { _, err := Table2(0, bad); return err },
		"WasteStudy": func() error { _, err := WasteStudy("Intel+A100", "srad", bad); return err },
	}
	for name, run := range drivers {
		err := run()
		if err == nil {
			t.Errorf("%s accepted Repeats=-3", name)
			continue
		}
		if !strings.Contains(err.Error(), "negative Repeats") {
			t.Errorf("%s: error %q does not name the negative repeat count", name, err)
		}
	}

	// Zero still selects the documented default of 5.
	opt, err := Options{}.normalize()
	if err != nil {
		t.Fatalf("zero options rejected: %v", err)
	}
	if opt.Repeats != 5 || opt.Seed != 1 {
		t.Fatalf("normalize(zero) = %+v, want Repeats 5 Seed 1", opt)
	}

	// The pool layer refuses a sub-1 count instead of clamping, so a
	// future driver bypassing normalize still cannot run the wrong grid.
	if _, err := runGroups(nil, 0, 1); err == nil {
		t.Error("runGroups accepted reps=0")
	}
}

package experiments

import (
	"github.com/spear-repro/magus/internal/core"
	"github.com/spear-repro/magus/internal/faults"
	"github.com/spear-repro/magus/internal/governor"
	"github.com/spear-repro/magus/internal/harness"
)

// FaultPoint is one fault plan's outcome on the sweep application.
type FaultPoint struct {
	// Plan is the preset name (or plan name for file-loaded plans).
	Plan string
	// RuntimeS is the measured runtime under the plan, seconds.
	RuntimeS float64
	// Comparison is measured against the clean MAGUS run: under faults
	// the fail-safe direction costs energy savings, not runtime.
	harness.Comparison
	// Injected tallies the device faults actually fired.
	Injected faults.Tally
	// Resilience carries the runtime's sensor-health counters
	// (retries, missed samples, degraded/lost cycles, recoveries).
	Resilience core.Stats
}

// FaultSweepResult sweeps MAGUS on one application across fault plans.
// The clean and vendor-default runtimes anchor the degradation
// contract: with the memory-throughput signal permanently lost, the
// runtime pins the uncore at maximum and must match the vendor default
// to within measurement noise.
type FaultSweepResult struct {
	App string
	// CleanRuntimeS / CleanEnergyJ are the unfaulted MAGUS reference.
	CleanRuntimeS float64
	CleanEnergyJ  float64
	// DefaultRuntimeS is the vendor-default governor's runtime.
	DefaultRuntimeS float64
	Points          []FaultPoint
}

// FaultSweep runs MAGUS on app (Intel+A100) under each named fault
// plan. An empty plans slice sweeps every built-in preset. Plans are
// resolved via faults.Load, so file paths work alongside preset names.
func FaultSweep(app string, plans []string, opt Options) (FaultSweepResult, error) {
	opt, err := opt.normalize()
	if err != nil {
		return FaultSweepResult{}, err
	}
	cfg, err := SystemByName("Intel+A100")
	if err != nil {
		return FaultSweepResult{}, err
	}
	prog := mustProgram(app)
	runOpt := harness.Options{Seed: opt.Seed, Obs: opt.Obs}
	if len(plans) == 0 {
		plans = faults.PresetNames()
	}
	// Resolve every plan before running anything, so a bad plan name
	// fails fast instead of after the clean runs.
	loaded := make([]*faults.Plan, len(plans))
	for i, name := range plans {
		plan, err := faults.Load(name)
		if err != nil {
			return FaultSweepResult{}, err
		}
		loaded[i] = plan
	}

	// Flat grid: vendor default, clean MAGUS, then one faulted MAGUS
	// cell per plan. Each faulted cell's factory stores its MAGUS
	// instance in ms so Stats() can be read after the pool joins.
	ms := make([]*core.MAGUS, len(plans))
	specs := []harness.RunSpec{
		{Cfg: cfg, Prog: prog, Factory: defaultFactory, Opt: runOpt},
		{Cfg: cfg, Prog: prog, Factory: magusFactoryFor(cfg.Name), Opt: runOpt},
	}
	for i := range plans {
		i := i
		specs = append(specs, harness.RunSpec{
			Cfg: cfg, Prog: prog,
			Factory: func() governor.Governor {
				ms[i] = core.New(magusConfigFor(cfg.Name))
				return ms[i]
			},
			Opt: harness.Options{Seed: opt.Seed, Faults: loaded[i], Obs: opt.Obs},
		})
	}
	results, err := harness.RunBatch(specs, opt.Jobs)
	if err != nil {
		return FaultSweepResult{}, err
	}
	base, clean := results[0], results[1]
	out := FaultSweepResult{
		App:             app,
		CleanRuntimeS:   clean.RuntimeS,
		CleanEnergyJ:    clean.TotalEnergyJ(),
		DefaultRuntimeS: base.RuntimeS,
	}
	for i, name := range plans {
		res := results[2+i]
		out.Points = append(out.Points, FaultPoint{
			Plan:       name,
			RuntimeS:   res.RuntimeS,
			Comparison: harness.Compare(clean, res),
			Injected:   res.FaultsInjected,
			Resilience: ms[i].Stats(),
		})
	}
	return out, nil
}

package experiments

import (
	"github.com/spear-repro/magus/internal/core"
	"github.com/spear-repro/magus/internal/faults"
	"github.com/spear-repro/magus/internal/harness"
)

// FaultPoint is one fault plan's outcome on the sweep application.
type FaultPoint struct {
	// Plan is the preset name (or plan name for file-loaded plans).
	Plan string
	// RuntimeS is the measured runtime under the plan, seconds.
	RuntimeS float64
	// Comparison is measured against the clean MAGUS run: under faults
	// the fail-safe direction costs energy savings, not runtime.
	harness.Comparison
	// Injected tallies the device faults actually fired.
	Injected faults.Tally
	// Resilience carries the runtime's sensor-health counters
	// (retries, missed samples, degraded/lost cycles, recoveries).
	Resilience core.Stats
}

// FaultSweepResult sweeps MAGUS on one application across fault plans.
// The clean and vendor-default runtimes anchor the degradation
// contract: with the memory-throughput signal permanently lost, the
// runtime pins the uncore at maximum and must match the vendor default
// to within measurement noise.
type FaultSweepResult struct {
	App string
	// CleanRuntimeS / CleanEnergyJ are the unfaulted MAGUS reference.
	CleanRuntimeS float64
	CleanEnergyJ  float64
	// DefaultRuntimeS is the vendor-default governor's runtime.
	DefaultRuntimeS float64
	Points          []FaultPoint
}

// FaultSweep runs MAGUS on app (Intel+A100) under each named fault
// plan. An empty plans slice sweeps every built-in preset. Plans are
// resolved via faults.Load, so file paths work alongside preset names.
func FaultSweep(app string, plans []string, opt Options) (FaultSweepResult, error) {
	opt = opt.withDefaults()
	cfg, err := SystemByName("Intel+A100")
	if err != nil {
		return FaultSweepResult{}, err
	}
	prog := mustProgram(app)
	runOpt := harness.Options{Seed: opt.Seed, Obs: opt.Obs}
	base, err := harness.Run(cfg, prog, defaultFactory(), runOpt)
	if err != nil {
		return FaultSweepResult{}, err
	}
	clean, err := harness.Run(cfg, prog, core.New(magusConfigFor(cfg.Name)), runOpt)
	if err != nil {
		return FaultSweepResult{}, err
	}
	out := FaultSweepResult{
		App:             app,
		CleanRuntimeS:   clean.RuntimeS,
		CleanEnergyJ:    clean.TotalEnergyJ(),
		DefaultRuntimeS: base.RuntimeS,
	}
	if len(plans) == 0 {
		plans = faults.PresetNames()
	}
	for _, name := range plans {
		plan, err := faults.Load(name)
		if err != nil {
			return FaultSweepResult{}, err
		}
		m := core.New(magusConfigFor(cfg.Name))
		res, err := harness.Run(cfg, prog, m, harness.Options{Seed: opt.Seed, Faults: plan, Obs: opt.Obs})
		if err != nil {
			return FaultSweepResult{}, err
		}
		out.Points = append(out.Points, FaultPoint{
			Plan:       name,
			RuntimeS:   res.RuntimeS,
			Comparison: harness.Compare(clean, res),
			Injected:   res.FaultsInjected,
			Resilience: m.Stats(),
		})
	}
	return out, nil
}

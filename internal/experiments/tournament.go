package experiments

import (
	"context"
	"fmt"
	"time"

	"github.com/spear-repro/magus/internal/checkpoint"
	"github.com/spear-repro/magus/internal/core"
	"github.com/spear-repro/magus/internal/faults"
	"github.com/spear-repro/magus/internal/governor"
	"github.com/spear-repro/magus/internal/harness"
	"github.com/spear-repro/magus/internal/node"
	"github.com/spear-repro/magus/internal/parallel"
	"github.com/spear-repro/magus/internal/report"
	"github.com/spear-repro/magus/internal/spans"
	"github.com/spear-repro/magus/internal/workload"
)

// TournamentEntry is one MAGUS parameter variant in the tournament:
// a label and a pure transformation of the base configuration.
type TournamentEntry struct {
	Name   string
	Mutate func(core.Config) core.Config
}

// DefaultTournamentVariants returns the stock parameter bracket: small
// threshold perturbations around the paper's defaults, the kind of
// sensitivity sweep Figure 7 performs one axis at a time.
func DefaultTournamentVariants() []TournamentEntry {
	return []TournamentEntry{
		{Name: "inc3", Mutate: func(c core.Config) core.Config { c.IncThresholdGBs = 3; return c }},
		{Name: "dec8", Mutate: func(c core.Config) core.Config { c.DecThresholdGBs = 8; return c }},
		{Name: "hf60", Mutate: func(c core.Config) core.Config { c.HighFreqThreshold = 0.60; return c }},
		{Name: "nohf", Mutate: func(c core.Config) core.Config { c.DisableHighFreq = true; return c }},
	}
}

// TournamentOptions selects the tournament grid. The zero value runs
// the default bracket on Intel+A100 over three workloads, fault-free.
type TournamentOptions struct {
	// Systems, Apps and FaultPresets span the grid of cells; every
	// entry competes in every cell. An empty fault preset name ("")
	// means no fault injection for that cell.
	Systems      []string
	Apps         []string
	FaultPresets []string
	// Variants are the MAGUS parameter entries beyond the base
	// configuration; nil selects DefaultTournamentVariants.
	Variants []TournamentEntry
	// Seed drives the whole grid (workload jitter and fault schedules).
	Seed int64
	// Jobs bounds the worker pool cells fan out across (<= 0 =
	// GOMAXPROCS). Output is byte-identical for any value.
	Jobs int
	// MagusOnly restricts every cell to the MAGUS family (base
	// configuration plus variants), dropping the vendor-default, UPS
	// and DUF baseline entries. Parameter-tuning sweeps use this: the
	// baselines are unaffected by the bracket and only add fixed cost.
	MagusOnly bool
	// Scratch disables fork-from-prefix sharing: every entry runs its
	// cell from the beginning. The output is byte-identical either
	// way; Scratch exists as the reference mode the differential test
	// and the benchmark compare against.
	Scratch bool
}

func (o TournamentOptions) normalize() TournamentOptions {
	if len(o.Systems) == 0 {
		o.Systems = []string{"Intel+A100"}
	}
	if len(o.Apps) == 0 {
		o.Apps = []string{"bfs", "gemm", "srad"}
	}
	if len(o.FaultPresets) == 0 {
		o.FaultPresets = []string{""}
	}
	if o.Variants == nil {
		o.Variants = DefaultTournamentVariants()
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// TournamentCell is one entry's outcome in one (system, app, fault)
// cell: the run-level waste-attribution bucket plus standard metrics.
type TournamentCell struct {
	System string
	App    string
	Fault  string // preset name, "" = none
	Entry  string // "default", "ups", "duf", "magus", "magus+<variant>"

	// Run is the whole-run attribution bucket; Result the standard
	// harness metrics.
	Run    report.WasteRow
	Result harness.Result

	// Execution diagnostics (how the cell was produced, not what it
	// computed — excluded from Rows and Table so forked and scratch
	// tournaments render identically):
	//
	// Forked marks a run resumed from a shared-prefix checkpoint;
	// ForkedAtS is the virtual time of that fork. SharedPrefix marks
	// an entry that never diverged from the base run at all and
	// reuses its outcome outright.
	Forked       bool
	ForkedAtS    float64
	SharedPrefix bool
}

// TournamentResult is the full tournament grid in canonical order:
// systems × apps × fault presets, and within each cell the fixed
// entry order default, ups, duf, magus, then variants.
type TournamentResult struct {
	Cells []TournamentCell
}

// Rows flattens the grid into waste-attribution rows. Scope labels
// carry only the cell identity — never how the run was executed — so
// a forked tournament's rows are byte-identical to a scratch one's.
func (r TournamentResult) Rows() []report.WasteRow {
	rows := make([]report.WasteRow, 0, len(r.Cells))
	for _, c := range r.Cells {
		row := c.Run
		fault := c.Fault
		if fault == "" {
			fault = "nofault"
		}
		row.Scope = c.System + " " + c.App + " " + fault + " " + c.Entry
		rows = append(rows, row)
	}
	return rows
}

// Table renders the tournament as a waste-attribution table.
func (r TournamentResult) Table() *report.Table {
	return report.WasteTable(r.Rows())
}

// SharedSeconds sums the virtual seconds of base-run prefix that
// forked and fully shared entries did not have to re-execute.
func (r TournamentResult) SharedSeconds() float64 {
	var s float64
	for _, c := range r.Cells {
		if c.Forked || c.SharedPrefix {
			s += c.ForkedAtS
		}
	}
	return s
}

// Tournament runs every entry — vendor default, UPS, DUF, base MAGUS
// and each MAGUS parameter variant — in every (system, app, fault)
// cell of the grid and reports per-entry power-waste attribution.
//
// Unless opt.Scratch is set, MAGUS variants share the base run's
// prefix: a replay of the MDFS automaton (core.Replay) over the base
// run's decision stream finds the first cycle at which each variant
// would act differently, and the variant resumes from a checkpoint
// taken just before that cycle instead of re-executing the shared
// prefix. Cells are reassembled in canonical grid order, so the
// result is byte-identical to the serial from-scratch sweep.
func Tournament(opt TournamentOptions) (TournamentResult, error) {
	opt = opt.normalize()

	type group struct {
		cfg   node.Config
		prog  *workload.Program
		fault string
	}
	var groups []group
	for _, sysName := range opt.Systems {
		cfg, err := SystemByName(sysName)
		if err != nil {
			return TournamentResult{}, err
		}
		for _, app := range opt.Apps {
			prog, ok := workload.ByName(app)
			if !ok {
				return TournamentResult{}, fmt.Errorf("experiments: unknown workload %q", app)
			}
			for _, fp := range opt.FaultPresets {
				if fp != "" {
					if _, ok := faults.Preset(fp); !ok {
						return TournamentResult{}, fmt.Errorf("experiments: unknown fault preset %q", fp)
					}
				}
				groups = append(groups, group{cfg, prog, fp})
			}
		}
	}
	for i, v := range opt.Variants {
		if v.Name == "" || v.Mutate == nil {
			return TournamentResult{}, fmt.Errorf("experiments: variant %d needs a name and a Mutate function", i)
		}
	}

	// One worker job per (system, app, fault) cell; entries within a
	// cell run serially because the forked planner interleaves them.
	// parallel.Map reassembles in submission order, which keeps the
	// grid canonical for any jobs value.
	cells, err := parallel.Map(context.Background(), len(groups), opt.Jobs, nil,
		func(_ context.Context, i int) ([]TournamentCell, error) {
			g := groups[i]
			return runTournamentGroup(g.cfg, g.prog, g.fault, opt)
		})
	if err != nil {
		return TournamentResult{}, err
	}
	out := TournamentResult{}
	for _, cs := range cells {
		out.Cells = append(out.Cells, cs...)
	}
	return out, nil
}

// runTournamentGroup produces one cell's entries in fixed order.
func runTournamentGroup(cfg node.Config, prog *workload.Program, fault string, opt TournamentOptions) ([]TournamentCell, error) {
	baseline := []struct {
		name    string
		factory harness.GovernorFactory
		window  int
	}{
		{"default", defaultFactory0, spans.DefaultWindowTicks},
		{"ups", upsFactoryFor(cfg.Name), spans.DefaultWindowTicks},
		{"duf", func() governor.Governor { return governor.NewDUF(governor.DUFConfig{}) }, spans.DefaultWindowTicks},
	}
	cells := make([]TournamentCell, 0, len(baseline)+1+len(opt.Variants))
	if !opt.MagusOnly {
		for _, b := range baseline {
			c, err := runTournamentCell(cfg, prog, fault, b.name, b.factory(), b.window, opt.Seed)
			if err != nil {
				return nil, err
			}
			cells = append(cells, c)
		}
	}
	magus, err := runMagusFamily(cfg, prog, fault, opt)
	if err != nil {
		return nil, err
	}
	return append(cells, magus...), nil
}

// tournamentPlan builds the cell's fault plan (a fresh copy per call;
// plans are consumed by the run that arms them).
func tournamentPlan(fault string, seed int64) *faults.Plan {
	if fault == "" {
		return nil
	}
	plan, _ := faults.Preset(fault)
	plan.Seed = seed
	return plan
}

// runTournamentCell executes one entry from scratch.
func runTournamentCell(cfg node.Config, prog *workload.Program, fault, entry string, gov governor.Governor, window int, seed int64) (TournamentCell, error) {
	tr := spans.New(window)
	res, err := harness.Run(cfg, prog, gov, harness.Options{
		Seed: seed, Faults: tournamentPlan(fault, seed), Spans: tr,
	})
	if err != nil {
		return TournamentCell{}, fmt.Errorf("experiments: tournament %s/%s/%s: %w",
			cfg.Name, prog.Name, entry, err)
	}
	return tournamentCell(cfg, prog, fault, entry, res, tr), nil
}

// tournamentCell assembles a cell from a finished run and its tracer.
func tournamentCell(cfg node.Config, prog *workload.Program, fault, entry string, res harness.Result, tr *spans.Tracer) TournamentCell {
	return TournamentCell{
		System: cfg.Name, App: prog.Name, Fault: fault, Entry: entry,
		Run:    wasteRow("run", tr.Ledger().Run()),
		Result: res,
	}
}

// forkCompatible reports whether a variant may fork from the base
// run's prefix at all. Beyond the decision stream, a MAGUS invocation
// charges the node Charge(InvocationTime, BusyCores, ExtraWatts) and
// its sensor layer evolves from the resilience configuration — state
// the replay validation cannot see — so those knobs must match
// exactly. Window must match so the restored ring buffers fit.
// Divergent warm-up parameters need no rule here: they surface as an
// automaton state difference on the first replay cycle.
func forkCompatible(base, v core.Config) bool {
	return base.Window == v.Window &&
		base.Interval == v.Interval &&
		base.InvocationTime == v.InvocationTime &&
		base.BusyCores == v.BusyCores &&
		base.ExtraWatts == v.ExtraWatts &&
		base.Resilience == v.Resilience
}

// runMagusFamily runs the base MAGUS and every variant for one cell.
// In scratch mode each is an independent run; otherwise the base run
// doubles as the fork-from-prefix planner for the variants.
func runMagusFamily(cfg node.Config, prog *workload.Program, fault string, opt TournamentOptions) ([]TournamentCell, error) {
	baseCfg := magusConfigFor(cfg.Name)
	varCfgs := make([]core.Config, len(opt.Variants))
	for i, v := range opt.Variants {
		vc := v.Mutate(baseCfg)
		if err := vc.Validate(); err != nil {
			return nil, fmt.Errorf("experiments: variant %s: %w", v.Name, err)
		}
		varCfgs[i] = vc
	}

	if opt.Scratch {
		cells := make([]TournamentCell, 0, 1+len(opt.Variants))
		c, err := runTournamentCell(cfg, prog, fault, "magus", core.New(baseCfg), baseCfg.Window, opt.Seed)
		if err != nil {
			return nil, err
		}
		cells = append(cells, c)
		for i, v := range opt.Variants {
			c, err := runTournamentCell(cfg, prog, fault, "magus+"+v.Name, core.New(varCfgs[i]), varCfgs[i].Window, opt.Seed)
			if err != nil {
				return nil, err
			}
			cells = append(cells, c)
		}
		return cells, nil
	}
	return forkMagusFamily(cfg, prog, fault, baseCfg, varCfgs, opt)
}

// variantPlan tracks one variant through the shared-prefix replay.
type variantPlan struct {
	cfg core.Config
	sim *core.Replay

	scratch bool // incompatible or diverged before any shared cycle
	forked  bool // diverged at cycle forkCycle; resumes from blob
	blob    []byte
	forkAtS float64
}

// checkpointEvery is the planner's capture cadence in decision
// cycles. A variant may resume from any checkpoint at or before its
// first divergent cycle — the cycles in between were validated
// outcome- and state-equal, so the variant re-executes them
// identically — which lets the planner amortise the capture cost
// (Checkpoint + Encode is a full state serialisation) over several
// cycles at the price of re-running at most checkpointEvery-1 cheap
// validated cycles per fork.
const checkpointEvery = 8

// forkMagusFamily executes the base MAGUS run invocation by
// invocation, replaying each variant's automaton against the recorded
// decisions, and forks every variant from the last checkpoint taken
// at or before its first divergent cycle. Variants that never diverge
// reuse the base outcome; variants that diverge before the first
// shared cycle (or whose configuration is fork-incompatible) run from
// scratch.
func forkMagusFamily(cfg node.Config, prog *workload.Program, fault string, baseCfg core.Config, varCfgs []core.Config, opt TournamentOptions) ([]TournamentCell, error) {
	fail := func(stage string, err error) ([]TournamentCell, error) {
		return nil, fmt.Errorf("experiments: tournament %s/%s %s: %w", cfg.Name, prog.Name, stage, err)
	}

	gov := core.New(baseCfg)
	var pending []core.Decision
	gov.OnDecision(func(d core.Decision) { pending = append(pending, d) })
	tr := spans.New(baseCfg.Window)
	st, err := harness.NewSteppable(cfg, prog, gov, harness.Options{
		Seed: opt.Seed, Faults: tournamentPlan(fault, opt.Seed), Spans: tr,
	})
	if err != nil {
		return fail("base", err)
	}

	baseSim := core.NewReplay(baseCfg, cfg.UncoreMinGHz, cfg.UncoreMaxGHz)
	vps := make([]variantPlan, len(varCfgs))
	var tracking []int
	for i, vc := range varCfgs {
		vps[i] = variantPlan{cfg: vc, sim: core.NewReplay(vc, cfg.UncoreMinGHz, cfg.UncoreMaxGHz)}
		if !forkCompatible(baseCfg, vc) || !vps[i].sim.StateEqual(baseSim) {
			vps[i].scratch = true
			continue
		}
		tracking = append(tracking, i)
	}

	// Drive the base run one governor invocation at a time. Each
	// iteration advances to the pre-invoke boundary, captures a rolling
	// checkpoint there, fires exactly the one pending invocation, and
	// replays the resulting decision through the base and variant
	// automata. A variant forks when its replayed cycle first differs
	// from the base's — or when the base replay itself fails to match
	// the recorded decision (an effect the replay cannot model, e.g. a
	// faulted MSR write), which forks every tracker conservatively.
	var (
		preBlob []byte
		preAt   float64
		cycle   int
		done    bool
	)
	for !done {
		if len(tracking) == 0 {
			// Every variant resolved; finish the base run outright.
			done, err = st.Advance(st.Horizon())
			if err != nil {
				return fail("base", err)
			}
			if !done {
				return fail("base", fmt.Errorf("run did not complete within horizon %s", st.Horizon()))
			}
			break
		}
		if d := st.NextInvocation() - st.Now(); d > 0 {
			done, err = st.Advance(d)
			if err != nil {
				return fail("base", err)
			}
			if done {
				break
			}
		}
		if cycle > 0 && cycle%checkpointEvery == 0 {
			data, err := st.Checkpoint()
			if err != nil {
				return fail("checkpoint", err)
			}
			if preBlob, err = checkpoint.Encode(data); err != nil {
				return fail("checkpoint", err)
			}
			preAt = st.Now().Seconds()
		}
		if done, err = st.Advance(time.Nanosecond); err != nil {
			return fail("base", err)
		}
		for _, d := range pending {
			in := core.InferReplayInput(d, baseSim)
			valid := baseSim.Cycle(in).SameOutcome(d)
			keep := tracking[:0]
			for _, vi := range tracking {
				vp := &vps[vi]
				vd := vp.sim.Cycle(in)
				if valid && vd.SameOutcome(d) && vp.sim.StateEqual(baseSim) {
					keep = append(keep, vi)
					continue
				}
				if preBlob == nil {
					// Diverged before the first captured boundary;
					// nothing shared worth resuming from.
					vp.scratch = true
					continue
				}
				vp.forked = true
				vp.blob = preBlob
				vp.forkAtS = preAt
			}
			tracking = keep
			cycle++
		}
		pending = pending[:0]
	}
	baseRes := st.Result()
	baseCell := tournamentCell(cfg, prog, fault, "magus", baseRes, tr)

	cells := make([]TournamentCell, 0, 1+len(vps))
	cells = append(cells, baseCell)
	for i, vp := range vps {
		entry := "magus+" + opt.Variants[i].Name
		switch {
		case vp.forked:
			c, err := resumeVariant(cfg, prog, fault, entry, vp)
			if err != nil {
				return nil, err
			}
			cells = append(cells, c)
		case vp.scratch:
			c, err := runTournamentCell(cfg, prog, fault, entry, core.New(vp.cfg), vp.cfg.Window, opt.Seed)
			if err != nil {
				return nil, err
			}
			cells = append(cells, c)
		default:
			// Never diverged: the variant's run would have been
			// bit-identical to the base's, so reuse its outcome.
			c := baseCell
			c.Entry = entry
			c.SharedPrefix = true
			c.ForkedAtS = baseRes.RuntimeS
			cells = append(cells, c)
		}
	}
	return cells, nil
}

// resumeVariant restores the shared-prefix checkpoint under the
// variant's configuration and runs the remainder of the cell.
func resumeVariant(cfg node.Config, prog *workload.Program, fault, entry string, vp variantPlan) (TournamentCell, error) {
	fail := func(err error) (TournamentCell, error) {
		return TournamentCell{}, fmt.Errorf("experiments: tournament %s/%s/%s fork: %w",
			cfg.Name, prog.Name, entry, err)
	}
	data, err := checkpoint.Decode(vp.blob)
	if err != nil {
		return fail(err)
	}
	tr := spans.New(vp.cfg.Window)
	st, err := harness.Resume(data, harness.ResumeOptions{Gov: core.New(vp.cfg), Spans: tr})
	if err != nil {
		return fail(err)
	}
	done, err := st.Advance(st.Horizon())
	if err != nil {
		return fail(err)
	}
	if !done {
		return fail(fmt.Errorf("resumed run did not complete within horizon %s", st.Horizon()))
	}
	c := tournamentCell(cfg, prog, fault, entry, st.Result(), tr)
	c.Forked = true
	c.ForkedAtS = vp.forkAtS
	return c, nil
}

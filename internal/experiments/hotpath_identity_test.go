package experiments

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// The hot-path goldens freeze the exact bytes of a figure and a table
// produced by the pre-optimization simulator. The zero-allocation tick
// rewrite must not move a single bit of output: any arithmetic
// reordering, precision change or schedule drift in the per-tick path
// shows up here as a golden diff.

func checkExperimentGolden(t *testing.T, name string, v any) {
	t.Helper()
	got, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/experiments -run HotPathIdentity -update` to create)", err)
	}
	if !bytes.Equal(got, want) {
		i := 0
		for i < len(got) && i < len(want) && got[i] == want[i] {
			i++
		}
		lo := i - 60
		if lo < 0 {
			lo = 0
		}
		hi := i + 60
		if hi > len(got) {
			hi = len(got)
		}
		t.Fatalf("%s drifted from the pre-optimization bytes (len got %d, want %d).\n"+
			"The hot-path rewrite must be byte-identical; a legitimate output change "+
			"needs -update plus an explanation in the PR.\nfirst diff near: %q",
			name, len(got), len(want), got[lo:hi])
	}
}

// TestHotPathIdentityFigure4a pins Figure 4a (Intel+4A100, 2 repeats,
// seed 1) to its pre-optimization bytes.
func TestHotPathIdentityFigure4a(t *testing.T) {
	res, err := Figure4("Intel+4A100", Options{Repeats: 2, Seed: 1, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkExperimentGolden(t, "figure4a.golden.json", res)
}

// TestHotPathIdentityTable2 pins Table 2 (30 s idle window, 1 repeat,
// seed 1) to its pre-optimization bytes.
func TestHotPathIdentityTable2(t *testing.T) {
	res, err := Table2(30*time.Second, Options{Repeats: 1, Seed: 1, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkExperimentGolden(t, "table2.golden.json", res)
}

package experiments

import (
	"context"
	"time"

	"github.com/spear-repro/magus/internal/governor"
	"github.com/spear-repro/magus/internal/harness"
	"github.com/spear-repro/magus/internal/msr"
	"github.com/spear-repro/magus/internal/node"
	"github.com/spear-repro/magus/internal/parallel"
	"github.com/spear-repro/magus/internal/sim"
	"github.com/spear-repro/magus/internal/telemetry"
	"github.com/spear-repro/magus/internal/workload"
)

// JaccardRow is one application of Table 1.
type JaccardRow struct {
	App     string
	Jaccard float64
}

// Table1Result is the burst-prediction similarity table (§6.3).
type Table1Result struct {
	Rows []JaccardRow
	// Bins and ThresholdFrac document the burst-extraction settings:
	// both runs are resampled to Bins bins; a bin is a burst when its
	// mean throughput exceeds ThresholdFrac of the baseline's peak.
	Bins          int
	ThresholdFrac float64
}

// Table1 computes the Jaccard similarity between the memory-throughput
// burst patterns of the max-uncore baseline and MAGUS for every Table 1
// application, on Intel+A100.
func Table1(opt Options) (Table1Result, error) {
	opt, err := opt.normalize()
	if err != nil {
		return Table1Result{}, err
	}
	cfg := node.IntelA100()
	out := Table1Result{Bins: 200, ThresholdFrac: 0.5}
	apps := workload.Table1Apps()
	// Flat grid: (baseline, magus) traced pair per application.
	specs := make([]harness.RunSpec, 0, len(apps)*2)
	for _, app := range apps {
		specs = append(specs,
			traceSpec(cfg, app, defaultFactory, opt),
			traceSpec(cfg, app, magusFactoryFor(cfg.Name), opt))
	}
	results, err := harness.RunBatch(specs, opt.Jobs)
	if err != nil {
		return Table1Result{}, err
	}
	for i, app := range apps {
		base, magus := results[2*i], results[2*i+1]
		j := telemetry.BurstJaccard(
			base.Traces.Series("mem_gbs"),
			magus.Traces.Series("mem_gbs"),
			out.Bins, out.ThresholdFrac)
		out.Rows = append(out.Rows, JaccardRow{App: app, Jaccard: j})
	}
	return out, nil
}

// Mean returns the table's mean Jaccard score.
func (t Table1Result) Mean() float64 {
	if len(t.Rows) == 0 {
		return 0
	}
	var s float64
	for _, r := range t.Rows {
		s += r.Jaccard
	}
	return s / float64(len(t.Rows))
}

// Get returns one app's score.
func (t Table1Result) Get(app string) (float64, bool) {
	for _, r := range t.Rows {
		if r.App == app {
			return r.Jaccard, true
		}
	}
	return 0, false
}

// OverheadRow is one (system, method) cell of Table 2.
type OverheadRow struct {
	System string
	Method string
	// PowerOverheadPct is the idle-power increase the runtime causes.
	PowerOverheadPct float64
	// InvocationS is the measured busy time per decision cycle.
	InvocationS float64
}

// Table2Result is the runtime-overhead table (§6.5).
type Table2Result struct {
	Rows []OverheadRow
	// IdleWindow is the measurement duration (the paper idles 10 min).
	IdleWindow time.Duration
}

// Get returns the row for (system, method).
func (t Table2Result) Get(system, method string) (OverheadRow, bool) {
	for _, r := range t.Rows {
		if r.System == system && r.Method == method {
			return r, true
		}
	}
	return OverheadRow{}, false
}

// discardWrites wraps an MSR device so uncore-limit writes are
// accepted but ignored — Table 2 measures monitoring + decision cost
// "excluding uncore scaling" (§6.5), so both runtimes run against a
// node whose uncore state never changes.
type discardWrites struct{ dev msr.Device }

func (d discardWrites) Read(cpu int, reg uint32) (uint64, error) { return d.dev.Read(cpu, reg) }

func (d discardWrites) Write(cpu int, reg uint32, val uint64) error {
	if reg == msr.UncoreRatioLimit {
		return nil
	}
	return d.dev.Write(cpu, reg, val)
}

// Table2 measures each runtime's idle overhead on the two single-GPU
// systems: run the governor for idleWindow on an idle node and compare
// average CPU power against an unmanaged idle node; invocation cost is
// the daemon busy time per decision cycle. idleWindow <= 0 selects the
// paper's 10 minutes.
func Table2(idleWindow time.Duration, opt Options) (Table2Result, error) {
	opt, err := opt.normalize()
	if err != nil {
		return Table2Result{}, err
	}
	if idleWindow <= 0 {
		idleWindow = 10 * time.Minute
	}
	out := Table2Result{IdleWindow: idleWindow}
	// Six independent idle cells — (2 systems) × (unmanaged, magus,
	// ups) — fanned out directly; each builds its governor inside the
	// cell, and the unmanaged baselines are read back by index.
	cfgs := []node.Config{node.IntelA100(), node.IntelMax1550()}
	methods := []string{"", "magus", "ups"}
	type idleCell struct {
		powerW, busySec float64
		invocations     uint64
	}
	var pm *parallel.Metrics
	if opt.Obs != nil {
		pm = parallel.NewMetrics(opt.Obs.Registry())
	}
	cells, err := parallel.Map(context.Background(), len(cfgs)*len(methods), opt.Jobs, pm,
		func(_ context.Context, i int) (idleCell, error) {
			cfg := cfgs[i/len(methods)]
			var gov governor.Governor
			switch methods[i%len(methods)] {
			case "magus":
				gov = magusFactoryFor(cfg.Name)()
			case "ups":
				gov = upsFactoryFor(cfg.Name)()
			}
			power, busySec, invocations, err := runIdle(cfg, gov, idleWindow, opt.Seed)
			return idleCell{power, busySec, invocations}, err
		})
	if err != nil {
		return Table2Result{}, err
	}
	for ci, cfg := range cfgs {
		basePower := cells[ci*len(methods)].powerW
		for mi, method := range methods[1:] {
			cell := cells[ci*len(methods)+1+mi]
			row := OverheadRow{
				System:           cfg.Name,
				Method:           method,
				PowerOverheadPct: (cell.powerW - basePower) / basePower * 100,
			}
			if cell.invocations > 0 {
				row.InvocationS = cell.busySec / float64(cell.invocations)
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// runIdle runs an idle node for window under gov (nil = unmanaged) and
// returns average CPU power, total daemon busy seconds, and the
// invocation count.
func runIdle(cfg node.Config, gov governor.Governor, window time.Duration, seed int64) (avgPowerW, busySec float64, invocations uint64, err error) {
	eng := sim.NewEngine(0)
	n := node.New(cfg)
	runner := workload.NewRunner(workload.Idle(window), cfg.SystemBWGBs(), seed)
	runner.SetAttained(n.AttainedGBs)
	eng.AddComponent(sim.ComponentFunc(func(now, dt time.Duration) {
		runner.Step(now, dt)
		n.SetDemand(runner.Demand())
	}))
	eng.AddComponent(n)

	var invCounter uint64
	if gov != nil {
		env, berr := BuildIdleEnv(n)
		if berr != nil {
			return 0, 0, 0, berr
		}
		if aerr := gov.Attach(env); aerr != nil {
			return 0, 0, 0, aerr
		}
		eng.AddTask(&sim.Task{
			Name:     gov.Name(),
			Interval: gov.Interval(),
			Fn: func(now time.Duration) time.Duration {
				invCounter++
				return gov.Invoke(now)
			},
		}, 0)
	}
	eng.RunFor(window)
	pkgJ, drmJ, _ := n.EnergyJ()
	return (pkgJ + drmJ) / window.Seconds(), n.DaemonBusySeconds(), invCounter, nil
}

// BuildIdleEnv is BuildEnv with uncore-limit writes discarded, per the
// §6.5 methodology.
func BuildIdleEnv(n *node.Node) (*governor.Env, error) {
	env, err := harness.BuildEnv(n)
	if err != nil {
		return nil, err
	}
	env.Dev = discardWrites{dev: env.Dev}
	return env, nil
}

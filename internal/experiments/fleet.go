// Fleet-scale study: the multi-node power-budget setting of §6.1
// scaled from a rack to a fleet. A mixed fleet (Intel+A100,
// Intel+4xA100 and Intel+Max1550 presets round-robin, catalog
// workloads staggered across members) runs under the vendor default,
// MAGUS and UPS, through the sharded cluster engine with
// aggregate-only telemetry — per-member traces for 10k nodes would be
// the memory bill the TelemetryAggregate mode exists to avoid. Each
// governor row reports fleet energy, the uncore waste attribution
// ledger, and time over a fleet power budget anchored at a fraction
// of the vendor default's observed peak.
package experiments

import (
	"fmt"
	"time"

	"github.com/spear-repro/magus/internal/cluster"
	"github.com/spear-repro/magus/internal/governor"
	"github.com/spear-repro/magus/internal/node"
	"github.com/spear-repro/magus/internal/obs"
	"github.com/spear-repro/magus/internal/spans"
	"github.com/spear-repro/magus/internal/workload"
)

// FleetOptions sizes the fleet study. The zero value runs the
// CI-scale default: 1000 nodes, budget at 92 % of the default
// governor's peak, top-5 member summaries.
type FleetOptions struct {
	// Nodes is the fleet size (0 = 1000).
	Nodes int
	// Seed is the base seed; members derive their own (0 = 1).
	Seed int64
	// Shards forwards to cluster.Options.Shards (<= 0 = GOMAXPROCS);
	// output is byte-identical for any value.
	Shards int
	// SampleEvery is the aggregate-trace resolution (0 = 100 ms).
	SampleEvery time.Duration
	// BudgetFrac positions the fleet power budget as a fraction of the
	// vendor default's peak aggregate power (0 = 0.92).
	BudgetFrac float64
	// TopK is the number of heaviest-by-energy member summaries kept
	// per governor row (0 = 5).
	TopK int
	// Dist arms the fleet-wide distribution sketches
	// (cluster.Options.Dist): each row then carries the quantile
	// summaries of node power, uncore ratio, per-socket waste rate and
	// attained bandwidth across every member and tick of that row's
	// run.
	Dist bool
	// Obs, when set with Dist, receives each row's magus_fleet_*
	// distribution exposition. The histogram families accumulate
	// samples across the governor rows (the study-wide distribution);
	// the *_quantile gauges and the /fleet page reflect the most
	// recently finished row.
	Obs *obs.Observer
}

func (o FleetOptions) normalize() (FleetOptions, error) {
	if o.Nodes < 0 {
		return o, fmt.Errorf("experiments: negative fleet Nodes %d", o.Nodes)
	}
	if o.Nodes == 0 {
		o.Nodes = 1000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.BudgetFrac < 0 || o.BudgetFrac >= 1 {
		return o, fmt.Errorf("experiments: fleet BudgetFrac %v outside (0, 1)", o.BudgetFrac)
	}
	if o.BudgetFrac == 0 {
		o.BudgetFrac = 0.92
	}
	if o.TopK == 0 {
		o.TopK = 5
	}
	return o, nil
}

// FleetCell is one governor's row of the study.
type FleetCell struct {
	// Governor labels the row: "default", "magus" or "ups".
	Governor string
	// EnergyJ is total fleet energy to the last member's completion.
	EnergyJ float64
	// PeakW / AvgW summarise the aggregate power trace.
	PeakW float64
	AvgW  float64
	// MakespanS is time until the whole fleet finished.
	MakespanS float64
	// OverBudgetFrac is the fraction of the makespan the aggregate
	// spent above the fleet budget (cluster.Result.TimeOverBudget).
	OverBudgetFrac float64
	// Waste is the fleet uncore attribution ledger; WasteBalanced
	// asserts baseline+useful+waste matches the independently
	// integrated total within the ulp budget.
	Waste         *spans.EnergyAttr
	WasteBalanced bool
	// Top holds the TopK heaviest members by energy.
	Top []cluster.MemberSummary
	// Dist is the row's fleet-wide distribution snapshot (nil unless
	// FleetOptions.Dist).
	Dist *cluster.FleetDist
}

// FleetResult is the full study.
type FleetResult struct {
	// Nodes is the fleet size; BudgetW the fleet power budget every
	// row's OverBudgetS is measured against.
	Nodes   int
	BudgetW float64
	Cells   []FleetCell
}

// fleetStudySpecs builds the mixed fleet for one governor row.
// factoryFor is nil for the vendor default; otherwise it maps a
// system name to a fresh-governor factory, so each member gets the
// runtime calibrated for its own preset.
func fleetStudySpecs(nodes int, seed int64, factoryFor func(system string) func() governor.Governor) []cluster.NodeSpec {
	presets := []func() node.Config{node.IntelA100, node.Intel4A100, node.IntelMax1550}
	apps := workload.SingleGPU()
	specs := make([]cluster.NodeSpec, nodes)
	for i := range specs {
		cfg := presets[i%len(presets)]()
		specs[i] = cluster.NodeSpec{
			Config:   cfg,
			Workload: mustProgram(apps[i%len(apps)]),
			Seed:     seed + int64(i)*131,
		}
		if factoryFor != nil {
			specs[i].Factory = factoryFor(cfg.Name)
		}
	}
	return specs
}

// FleetStudy runs the fleet under each governor. The vendor-default
// row runs first: its peak anchors the budget the other rows are
// scored against. All rows run with the uncore waste ledger armed and
// aggregate-only telemetry.
func FleetStudy(opt FleetOptions) (FleetResult, error) {
	opt, err := opt.normalize()
	if err != nil {
		return FleetResult{}, err
	}
	rows := []struct {
		name       string
		factoryFor func(system string) func() governor.Governor
	}{
		{"default", nil},
		{"magus", magusFactoryFor},
		{"ups", upsFactoryFor},
	}
	res := FleetResult{Nodes: opt.Nodes}
	copt := cluster.Options{
		SampleEvery: opt.SampleEvery,
		Shards:      opt.Shards,
		Telemetry:   cluster.TelemetryAggregate,
		TopK:        opt.TopK,
		Waste:       true,
		Dist:        opt.Dist,
	}
	if opt.Dist {
		copt.Obs = opt.Obs
	}
	for _, row := range rows {
		specs := fleetStudySpecs(opt.Nodes, opt.Seed, row.factoryFor)
		r, err := cluster.RunFleet(specs, copt)
		if err != nil {
			return FleetResult{}, fmt.Errorf("experiments: fleet %s row: %w", row.name, err)
		}
		if row.name == "default" {
			res.BudgetW = r.PeakW * opt.BudgetFrac
		}
		res.Cells = append(res.Cells, FleetCell{
			Governor:       row.name,
			EnergyJ:        r.EnergyJ,
			PeakW:          r.PeakW,
			AvgW:           r.AvgW,
			MakespanS:      r.MakespanS,
			OverBudgetFrac: r.TimeOverBudget(res.BudgetW),
			Waste:          r.UncoreWaste,
			WasteBalanced:  r.WasteBalanced,
			Top:            r.Top,
			Dist:           r.Dist,
		})
	}
	return res, nil
}

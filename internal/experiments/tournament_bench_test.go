package experiments

import (
	"testing"

	"github.com/spear-repro/magus/internal/core"
)

// benchTournamentOptions is the committed benchmark cell
// (BENCH_checkpoint.json): a Figure 7-style sensitivity bracket of
// six near-default threshold variants around the base MAGUS on srad,
// as a MagusOnly parameter-tuning sweep. Near-default variants share
// long prefixes with the base run — most decisions are identical
// until a threshold first flips one — which is exactly the workload
// fork-from-prefix exists for. The fixed baseline columns are
// excluded: the planner never accelerates them (they run identically
// in both modes), so including them would only blur the measurement
// of the subsystem under test.
func benchTournamentOptions(scratch bool) TournamentOptions {
	return TournamentOptions{
		Apps: []string{"srad"},
		Variants: []TournamentEntry{
			{Name: "inc5", Mutate: func(c core.Config) core.Config { c.IncThresholdGBs = 5; return c }},
			{Name: "inc7", Mutate: func(c core.Config) core.Config { c.IncThresholdGBs = 7; return c }},
			{Name: "dec13", Mutate: func(c core.Config) core.Config { c.DecThresholdGBs = 13; return c }},
			{Name: "dec17", Mutate: func(c core.Config) core.Config { c.DecThresholdGBs = 17; return c }},
			{Name: "hf35", Mutate: func(c core.Config) core.Config { c.HighFreqThreshold = 0.35; return c }},
			{Name: "hf45", Mutate: func(c core.Config) core.Config { c.HighFreqThreshold = 0.45; return c }},
		},
		Seed:      7,
		Jobs:      1,
		MagusOnly: true,
		Scratch:   scratch,
	}
}

func benchTournament(b *testing.B, scratch bool) {
	opt := benchTournamentOptions(scratch)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Tournament(opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Cells) != 7 {
			b.Fatalf("got %d cells, want 7", len(res.Cells))
		}
	}
}

// BenchmarkTournamentForked runs the committed tournament cell with
// fork-from-prefix sharing; BenchmarkTournamentScratch is the same
// grid executed from scratch. TestTournamentBenchGridIdentical pins
// the two byte-identical, so the ratio is pure wall-clock saving.
func BenchmarkTournamentForked(b *testing.B)  { benchTournament(b, false) }
func BenchmarkTournamentScratch(b *testing.B) { benchTournament(b, true) }

// TestTournamentBenchGridIdentical pins the benchmark's own grid:
// whatever speedup BENCH_checkpoint.json records, it is for output
// byte-identical to the scratch reference.
func TestTournamentBenchGridIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by TestTournamentForkedMatchesScratch")
	}
	forked, err := Tournament(benchTournamentOptions(false))
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := Tournament(benchTournamentOptions(true))
	if err != nil {
		t.Fatal(err)
	}
	if f, s := forked.Table().String(), scratch.Table().String(); f != s {
		t.Errorf("forked benchmark grid differs from scratch:\nforked:\n%s\nscratch:\n%s", f, s)
	}
}

package experiments

import (
	"strings"
	"testing"
)

// TestWasteStudy runs the attribution study on the quickest cell and
// checks the acceptance invariant: the ledger balances for every
// governor, and MAGUS wastes no more uncore energy than the vendor
// default (the paper's core claim).
func TestWasteStudy(t *testing.T) {
	res, err := WasteStudy("a100", "srad", Quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.System != "Intel+A100" || res.Workload != "srad" {
		t.Fatalf("identity = %s/%s", res.System, res.Workload)
	}
	if len(res.Cells) != 3 {
		t.Fatalf("cells = %d, want 3", len(res.Cells))
	}
	byGov := map[string]WasteCell{}
	for _, c := range res.Cells {
		byGov[c.Governor] = c
		if !c.Balanced {
			t.Errorf("%s: ledger does not balance", c.Governor)
		}
		if c.Run.TotalJ <= 0 {
			t.Errorf("%s: no uncore energy attributed", c.Governor)
		}
		if c.Windows == 0 {
			t.Errorf("%s: no window spans", c.Governor)
		}
		if len(c.Phases) == 0 {
			t.Errorf("%s: no phase attribution", c.Governor)
		}
		if bal := c.Run.BaselineJ + c.Run.UsefulJ + c.Run.WasteJ - c.Run.TotalJ; bal > 1e-6 || bal < -1e-6 {
			t.Errorf("%s: run row imbalance %v", c.Governor, bal)
		}
	}
	// MAGUS and UPS emit decisions; the static default does not.
	if byGov["magus"].Decisions == 0 {
		t.Error("magus recorded no decision spans")
	}
	if byGov["default"].Decisions != 0 {
		t.Errorf("default governor recorded %d decision spans, want 0", byGov["default"].Decisions)
	}
	// The paper's pitch, in ledger terms: scaling the uncore wastes
	// fewer joules than pinning it at max.
	if m, d := byGov["magus"].Run.WasteJ, byGov["default"].Run.WasteJ; m >= d {
		t.Errorf("magus waste %v J >= default waste %v J — attribution contradicts the paper", m, d)
	}

	rows := res.Rows()
	if len(rows) < 6 {
		t.Fatalf("rows = %d, want >= 6 (3 run rows + phases)", len(rows))
	}
	tbl := res.Table().String()
	for _, want := range []string{"magus run", "default run", "ups run", "waste_%"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
}

package experiments

import (
	"fmt"
	"time"

	"github.com/spear-repro/magus/internal/governor"
	"github.com/spear-repro/magus/internal/harness"
	"github.com/spear-repro/magus/internal/report"
	"github.com/spear-repro/magus/internal/spans"
)

// WasteCell is one governor's energy attribution for the study cell.
type WasteCell struct {
	Governor string
	// Run is the whole-run attribution bucket; Phases the per-workload
	// phase decomposition in first-seen order.
	Run    report.WasteRow
	Phases []report.WasteRow
	// Windows and Decisions count the recorded causality spans.
	Windows   int
	Decisions int
	// Balanced reports the ledger invariant (baseline + useful + waste
	// == total uncore joules within the sample-scaled ulp tolerance)
	// for the run and every window.
	Balanced bool
	// Result carries the run's standard metrics for context.
	Result harness.Result
}

// WasteStudyResult is the power-waste attribution comparison the
// paper's argument rests on: how many uncore joules each policy
// wastes on the same workload.
type WasteStudyResult struct {
	System   string
	Workload string
	Cells    []WasteCell
}

// WasteStudy runs one (system, app) cell under each governor with the
// decision-causality tracer attached and reduces the ledgers into
// attribution rows. Tracers are single-run objects, so the study runs
// its cells serially — it is a diagnostic surface, not a sweep.
func WasteStudy(system, app string, opt Options) (WasteStudyResult, error) {
	opt, err := opt.normalize()
	if err != nil {
		return WasteStudyResult{}, err
	}
	cfg, err := SystemByName(system)
	if err != nil {
		return WasteStudyResult{}, err
	}
	prog := mustProgram(app)

	type cellSpec struct {
		name    string
		factory harness.GovernorFactory
		window  int
	}
	cells := []cellSpec{
		{"default", defaultFactory0, spans.DefaultWindowTicks},
		{"magus", magusFactoryFor(cfg.Name), magusConfigFor(cfg.Name).Window},
		{"ups", upsFactoryFor(cfg.Name), spans.DefaultWindowTicks},
	}

	out := WasteStudyResult{System: cfg.Name, Workload: prog.Name}
	for _, c := range cells {
		tr := spans.New(c.window)
		res, err := harness.Run(cfg, prog, c.factory(), harness.Options{
			Seed: opt.Seed, Obs: opt.Obs, Spans: tr,
		})
		if err != nil {
			return WasteStudyResult{}, fmt.Errorf("experiments: waste %s/%s/%s: %w",
				cfg.Name, prog.Name, c.name, err)
		}
		l := tr.Ledger()
		// Samples per window ≈ window ticks × tick period in engine
		// steps × sockets; size the balance tolerance from the whole
		// run so it also covers the run-level bucket.
		samples := spans.StepsIn(time.Duration(res.RuntimeS*float64(time.Second)), time.Millisecond) * cfg.Sockets
		cell := WasteCell{
			Governor:  c.name,
			Run:       wasteRow("run", l.Run()),
			Windows:   tr.Count(spans.KindWindow),
			Decisions: tr.Count(spans.KindDecision),
			Balanced:  l.Balanced(spans.BalanceTolUlps(samples)),
			Result:    res,
		}
		for _, p := range l.Phases() {
			cell.Phases = append(cell.Phases, wasteRow("phase "+p.Name, p.Energy))
		}
		out.Cells = append(out.Cells, cell)
	}
	return out, nil
}

// defaultFactory0 adapts defaultFactory to harness.GovernorFactory.
func defaultFactory0() governor.Governor { return defaultFactory() }

// wasteRow flattens a ledger bucket into a report row.
func wasteRow(scope string, e spans.EnergyAttr) report.WasteRow {
	return report.WasteRow{
		Scope:     scope,
		BaselineJ: e.BaselineJ,
		UsefulJ:   e.UsefulJ,
		WasteJ:    e.WasteJ,
		TotalJ:    e.TotalJ,
		Seconds:   e.Seconds,
	}
}

// Rows flattens the study into table rows: per governor the run bucket
// then its phase buckets, scopes prefixed with the governor name.
func (r WasteStudyResult) Rows() []report.WasteRow {
	var rows []report.WasteRow
	for _, c := range r.Cells {
		run := c.Run
		run.Scope = c.Governor + " " + run.Scope
		rows = append(rows, run)
		for _, p := range c.Phases {
			p.Scope = c.Governor + " " + p.Scope
			rows = append(rows, p)
		}
	}
	return rows
}

// Table renders the study as the magus-bench -waste output.
func (r WasteStudyResult) Table() *report.Table {
	return report.WasteTable(r.Rows())
}

package experiments

import "testing"

func TestAblation(t *testing.T) {
	res, err := Ablation(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(res.Apps)*len(res.Variants) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(res.Apps)*len(res.Variants))
	}

	// The high-frequency override is what protects srad: disabling it
	// must cost performance there.
	full, ok1 := res.Get("magus", "srad")
	noHi, ok2 := res.Get("no-hifreq", "srad")
	if !ok1 || !ok2 {
		t.Fatal("srad cells missing")
	}
	if noHi.PerfLossPct <= full.PerfLossPct {
		t.Errorf("disabling the high-frequency detector should hurt srad: full %.2f %% vs no-hifreq %.2f %%",
			full.PerfLossPct, noHi.PerfLossPct)
	}

	// The longer derivative span is what catches gemm's staging fall
	// (it lands inside the warm-up blackout): DerivLen=1 must save
	// less power there.
	fullG, _ := res.Get("magus", "gemm")
	shortG, ok := res.Get("short-deriv", "gemm")
	if !ok {
		t.Fatal("gemm cells missing")
	}
	if shortG.PowerSavingPct >= fullG.PowerSavingPct-2 {
		t.Errorf("short derivative should miss gemm's warm-up fall: full %.1f %% vs short %.1f %%",
			fullG.PowerSavingPct, shortG.PowerSavingPct)
	}

	// Warm-up at max trades energy for early-burst speed on gemm
	// (whose staging is inside the warm-up window): loss must shrink.
	warmG, ok := res.Get("warmup-max", "gemm")
	if !ok {
		t.Fatal("warmup-max gemm cell missing")
	}
	if warmG.PerfLossPct >= fullG.PerfLossPct {
		t.Errorf("warm-up at max should cut gemm's early stretch: full %.2f %% vs warmup-max %.2f %%",
			fullG.PerfLossPct, warmG.PerfLossPct)
	}

	// The model-based policy with a perfect platform model is strong
	// on steady signals but must still lose more than MAGUS on the
	// fluttering app (its selections lag the signal by a full period).
	mbS, ok := res.Get("model-based", "srad")
	if !ok {
		t.Fatal("model-based srad cell missing")
	}
	if mbS.PerfLossPct <= full.PerfLossPct {
		t.Errorf("model-based should chase srad's flutter: magus %.2f %% vs model-based %.2f %%",
			full.PerfLossPct, mbS.PerfLossPct)
	}

	// Every variant keeps energy savings non-negative on the epoch app.
	for _, v := range res.Variants {
		c, ok := res.Get(v, "unet")
		if !ok {
			t.Fatalf("unet cell missing for %s", v)
		}
		if c.EnergySavingPct < -1 {
			t.Errorf("%s on unet: energy saving %.1f %%", v, c.EnergySavingPct)
		}
	}
}

package experiments

import "testing"

func TestNoiseStudy(t *testing.T) {
	res, err := NoiseStudy("unet", Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(NoiseAmplitudes()) {
		t.Fatalf("points = %d", len(res.Points))
	}
	clean := res.Points[0]
	if clean.Amplitude != 0 {
		t.Fatal("first point is not the clean run")
	}
	if clean.EnergySavingPct < 5 {
		t.Fatalf("clean energy saving = %.1f %%, want ≥ 5", clean.EnergySavingPct)
	}
	for _, p := range res.Points {
		// Graceful degradation: even at 40 % measurement noise the
		// runtime must not tank performance or turn energy-negative —
		// the fail-safe direction of the algorithm is "toward max
		// uncore", which costs savings, not runtime.
		if p.PerfLossPct > 6 {
			t.Errorf("amplitude %.2f: perf loss %.1f %%", p.Amplitude, p.PerfLossPct)
		}
		if p.EnergySavingPct < -1 {
			t.Errorf("amplitude %.2f: energy saving %.1f %%", p.Amplitude, p.EnergySavingPct)
		}
	}
}

package experiments

import (
	"reflect"
	"testing"

	"github.com/spear-repro/magus/internal/core"
)

// tournamentTestVariants covers every planner path: an identity
// variant (never diverges — full prefix share), a twitchy threshold
// (diverges mid-run — fork-from-checkpoint), a warm-up flip (initial
// automaton state differs — scratch), and a window change (ring
// buffers incompatible with the checkpoint — scratch).
func tournamentTestVariants() []TournamentEntry {
	return []TournamentEntry{
		{Name: "same", Mutate: func(c core.Config) core.Config { return c }},
		{Name: "dec4", Mutate: func(c core.Config) core.Config { c.DecThresholdGBs = 4; return c }},
		{Name: "warmmax", Mutate: func(c core.Config) core.Config { c.WarmupAtMax = true; return c }},
		{Name: "win12", Mutate: func(c core.Config) core.Config { c.Window = 12; return c }},
	}
}

// TestTournamentForkedMatchesScratch is the tournament's pinned
// differential: the fork-from-prefix planner (parallel, checkpoint
// sharing) must produce output byte-identical to the serial
// from-scratch sweep — same table text, same rows, same per-cell
// results. Execution diagnostics are the only permitted difference.
func TestTournamentForkedMatchesScratch(t *testing.T) {
	opt := TournamentOptions{
		Apps:         []string{"srad"},
		FaultPresets: []string{"", "msr-flaky"},
		Variants:     tournamentTestVariants(),
		Seed:         3,
		Jobs:         4,
	}
	forked, err := Tournament(opt)
	if err != nil {
		t.Fatal(err)
	}
	sOpt := opt
	sOpt.Scratch = true
	sOpt.Jobs = 1
	scratch, err := Tournament(sOpt)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := forked.Table().String(), scratch.Table().String(); got != want {
		t.Errorf("forked table differs from scratch table:\nforked:\n%s\nscratch:\n%s", got, want)
	}
	if !reflect.DeepEqual(forked.Rows(), scratch.Rows()) {
		t.Error("forked Rows() differ from scratch Rows()")
	}
	if len(forked.Cells) != len(scratch.Cells) {
		t.Fatalf("cell count: forked %d, scratch %d", len(forked.Cells), len(scratch.Cells))
	}
	for i := range forked.Cells {
		f, s := forked.Cells[i], scratch.Cells[i]
		f.Forked, f.ForkedAtS, f.SharedPrefix = false, 0, false
		s.Forked, s.ForkedAtS, s.SharedPrefix = false, 0, false
		if !reflect.DeepEqual(f, s) {
			t.Errorf("cell %d (%s %s %q %s) differs:\nforked  %+v\nscratch %+v",
				i, f.System, f.App, f.Fault, f.Entry, f, s)
		}
	}

	// The planner must actually have exercised its sharing paths on
	// the fault-free cell: the identity variant shares the whole base
	// run, the twitchy threshold forks mid-run, and the two
	// incompatible variants fall back to scratch.
	byEntry := map[string]TournamentCell{}
	for _, c := range forked.Cells {
		if c.Fault == "" {
			byEntry[c.Entry] = c
		}
	}
	if c := byEntry["magus+same"]; !c.SharedPrefix || c.ForkedAtS <= 0 {
		t.Errorf("identity variant did not share the full prefix: %+v", c)
	}
	if c := byEntry["magus+dec4"]; !c.Forked || c.ForkedAtS <= 0 {
		t.Errorf("dec4 variant did not fork mid-run: %+v", c)
	}
	for _, name := range []string{"magus+warmmax", "magus+win12"} {
		if c := byEntry[name]; c.Forked || c.SharedPrefix {
			t.Errorf("%s should have run from scratch: %+v", name, c)
		}
	}
	if forked.SharedSeconds() <= 0 {
		t.Error("SharedSeconds reports no shared prefix")
	}

	// Scratch mode must not claim any sharing.
	for _, c := range scratch.Cells {
		if c.Forked || c.SharedPrefix || c.ForkedAtS != 0 {
			t.Errorf("scratch cell carries fork diagnostics: %+v", c)
		}
	}
}

// TestTournamentValidation pins the option errors.
func TestTournamentValidation(t *testing.T) {
	if _, err := Tournament(TournamentOptions{Systems: []string{"nope"}}); err == nil {
		t.Error("unknown system accepted")
	}
	if _, err := Tournament(TournamentOptions{Apps: []string{"nope"}}); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := Tournament(TournamentOptions{FaultPresets: []string{"nope"}}); err == nil {
		t.Error("unknown fault preset accepted")
	}
	if _, err := Tournament(TournamentOptions{Variants: []TournamentEntry{{}}}); err == nil {
		t.Error("unnamed variant accepted")
	}
	bad := []TournamentEntry{{Name: "w0", Mutate: func(c core.Config) core.Config { c.Window = 0; return c }}}
	if _, err := Tournament(TournamentOptions{Apps: []string{"bfs"}, Variants: bad}); err == nil {
		t.Error("invalid variant config accepted")
	}
}

package experiments

import (
	"fmt"

	"github.com/spear-repro/magus/internal/core"
	"github.com/spear-repro/magus/internal/governor"
	"github.com/spear-repro/magus/internal/harness"
	"github.com/spear-repro/magus/internal/node"
	"github.com/spear-repro/magus/internal/stats"
	"github.com/spear-repro/magus/internal/telemetry"
)

// Figure1Result holds the UNet default-governor profiling traces: the
// hardware adjusts core frequency and GPU clock dynamically while the
// uncore stays pinned at its maximum (the paper's motivating
// observation, §2).
type Figure1Result struct {
	// CoreGHz holds four representative core-frequency traces (the
	// paper plots 4 of the 40 cores for readability).
	CoreGHz []*telemetry.Series
	// GPUClockMHz is the GPU SM clock trace.
	GPUClockMHz *telemetry.Series
	// UncoreGHz is the uncore frequency trace (flat at max).
	UncoreGHz *telemetry.Series
}

// Figure1 profiles UNet on Intel+A100 under the vendor default.
func Figure1(opt Options) (Figure1Result, error) {
	opt, err := opt.normalize()
	if err != nil {
		return Figure1Result{}, err
	}
	res, err := traceRun(node.IntelA100(), "unet", defaultFactory(), opt)
	if err != nil {
		return Figure1Result{}, err
	}
	out := Figure1Result{
		GPUClockMHz: res.Traces.Series("gpu0_clock_mhz"),
		UncoreGHz:   res.Traces.Series("uncore_ghz"),
	}
	for c := 0; c < 4; c++ {
		out.CoreGHz = append(out.CoreGHz, res.Traces.Series(fmt.Sprintf("core%d_ghz", c)))
	}
	return out, nil
}

// Figure2Result holds the UNet power profiles at the two uncore
// extremes: pinning the uncore to its minimum cuts CPU package power by
// ≈82 W but stretches runtime from ≈47 s to ≈57 s (§2).
type Figure2Result struct {
	MaxUncore harness.Result
	MinUncore harness.Result
	// CPUPowerMax/Min are the package+DRAM power traces of both runs.
	CPUPowerMax *telemetry.Series
	CPUPowerMin *telemetry.Series
	// PkgPowerDropW is the average package-power reduction; RuntimeIncreasePct
	// the runtime stretch.
	PkgPowerDropW      float64
	RuntimeIncreasePct float64
}

// Figure2 runs UNet on Intel+A100 pinned at the maximum and minimum
// uncore frequencies.
func Figure2(opt Options) (Figure2Result, error) {
	opt, err := opt.normalize()
	if err != nil {
		return Figure2Result{}, err
	}
	cfg := node.IntelA100()
	res, err := harness.RunBatch([]harness.RunSpec{
		traceSpec(cfg, "unet", func() governor.Governor { return governor.NewStatic(cfg.UncoreMaxGHz) }, opt),
		traceSpec(cfg, "unet", func() governor.Governor { return governor.NewStatic(cfg.UncoreMinGHz) }, opt),
	}, opt.Jobs)
	if err != nil {
		return Figure2Result{}, err
	}
	max, min := res[0], res[1]
	out := Figure2Result{
		MaxUncore:   max,
		MinUncore:   min,
		CPUPowerMax: max.Traces.Series("pkg0_power_w"),
		CPUPowerMin: min.Traces.Series("pkg0_power_w"),
	}
	// Package power across both sockets: avg CPU power minus DRAM.
	maxPkg := max.PkgEnergyJ / max.RuntimeS
	minPkg := min.PkgEnergyJ / min.RuntimeS
	out.PkgPowerDropW = maxPkg - minPkg
	out.RuntimeIncreasePct = (min.RuntimeS - max.RuntimeS) / max.RuntimeS * 100
	return out, nil
}

// Figure5Result holds the SRAD memory-throughput traces (§6.2): the
// top plot compares MAGUS with the static max/min pins, the bottom
// compares MAGUS with UPS.
type Figure5Result struct {
	MaxUncore *telemetry.Series
	MinUncore *telemetry.Series
	MAGUS     *telemetry.Series
	UPS       *telemetry.Series
	// MAGUSvsDefault are the §6.2 headline numbers for MAGUS on SRAD.
	MAGUSvsDefault harness.Comparison
	UPSvsDefault   harness.Comparison
}

// Figure5 traces SRAD memory throughput under four policies on
// Intel+A100.
func Figure5(opt Options) (Figure5Result, error) {
	opt, err := opt.normalize()
	if err != nil {
		return Figure5Result{}, err
	}
	cfg := node.IntelA100()
	res, err := harness.RunBatch([]harness.RunSpec{
		traceSpec(cfg, "srad", defaultFactory, opt),
		traceSpec(cfg, "srad", func() governor.Governor { return governor.NewStatic(cfg.UncoreMinGHz) }, opt),
		traceSpec(cfg, "srad", magusFactoryFor(cfg.Name), opt),
		traceSpec(cfg, "srad", upsFactoryFor(cfg.Name), opt),
	}, opt.Jobs)
	if err != nil {
		return Figure5Result{}, err
	}
	base, min, magus, ups := res[0], res[1], res[2], res[3]
	return Figure5Result{
		MaxUncore:      base.Traces.Series("mem_gbs"),
		MinUncore:      min.Traces.Series("mem_gbs"),
		MAGUS:          magus.Traces.Series("mem_gbs"),
		UPS:            ups.Traces.Series("mem_gbs"),
		MAGUSvsDefault: harness.Compare(base, magus),
		UPSvsDefault:   harness.Compare(base, ups),
	}, nil
}

// Figure6Result holds the SRAD uncore-frequency traces: MAGUS pins the
// uncore at max through the high-frequency phases while UPS keeps
// stepping and loses performance (§6.2).
type Figure6Result struct {
	Default *telemetry.Series
	UPS     *telemetry.Series
	MAGUS   *telemetry.Series
	// MAGUSHighFreqOverrides counts decisions suppressed by the
	// high-frequency detector during the MAGUS run.
	MAGUSHighFreqOverrides uint64
}

// Figure6 traces the SRAD uncore frequency under the three policies.
func Figure6(opt Options) (Figure6Result, error) {
	opt, err := opt.normalize()
	if err != nil {
		return Figure6Result{}, err
	}
	cfg := node.IntelA100()
	// The MAGUS factory runs once inside its cell; the pool's barrier
	// (all workers joined before RunBatch returns) makes reading m here
	// race-free.
	var m *core.MAGUS
	res, err := harness.RunBatch([]harness.RunSpec{
		traceSpec(cfg, "srad", defaultFactory, opt),
		traceSpec(cfg, "srad", upsFactoryFor(cfg.Name), opt),
		traceSpec(cfg, "srad", func() governor.Governor {
			m = core.New(magusConfigFor(cfg.Name))
			return m
		}, opt),
	}, opt.Jobs)
	if err != nil {
		return Figure6Result{}, err
	}
	base, ups, magus := res[0], res[1], res[2]
	return Figure6Result{
		Default:                base.Traces.Series("uncore_ghz"),
		UPS:                    ups.Traces.Series("uncore_ghz"),
		MAGUS:                  magus.Traces.Series("uncore_ghz"),
		MAGUSHighFreqOverrides: m.Stats().Overrides,
	}, nil
}

// ThresholdPoint is one configuration of the Figure 7 sweep.
type ThresholdPoint struct {
	IncGBs, DecGBs, HighFreq float64
	RuntimeS                 float64
	EnergyJ                  float64
	OnFrontier               bool
}

// Figure7Result is the sensitivity sweep for one application.
type Figure7Result struct {
	App    string
	Points []ThresholdPoint
	// Default is the index into Points of the recommended default
	// threshold set, which the paper circles on the frontier.
	Default int
}

// figure7Grid mirrors the paper's 40-combination sweep: two thresholds
// fixed while the third varies, around the recommended defaults.
func figure7Grid() []core.Config {
	base := core.DefaultConfig()
	var out []core.Config
	add := func(inc, dec, hi float64) {
		c := base
		c.IncThresholdGBs = inc
		c.DecThresholdGBs = dec
		c.HighFreqThreshold = hi
		out = append(out, c)
	}
	incs := []float64{1, 2, 3, 4, 6, 9, 12, 16, 20, 30, 45, 60, 90, 120}
	decs := []float64{2, 4, 8, 15, 25, 40, 60, 90, 120, 180, 240, 320, 400}
	his := []float64{0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	for _, inc := range incs {
		add(inc, base.DecThresholdGBs, base.HighFreqThreshold)
	}
	for _, dec := range decs {
		add(base.IncThresholdGBs, dec, base.HighFreqThreshold)
	}
	for _, hi := range his {
		add(base.IncThresholdGBs, base.DecThresholdGBs, hi)
	}
	return out
}

// Figure7 sweeps MAGUS's three thresholds on one application (the
// paper shows SRAD-like and UNet-like cases) and marks the Pareto
// frontier of (runtime, energy).
func Figure7(app string, opt Options) (Figure7Result, error) {
	opt, err := opt.normalize()
	if err != nil {
		return Figure7Result{}, err
	}
	cfg := node.IntelA100()
	prog := mustProgram(app)
	grid := figure7Grid()
	def := core.DefaultConfig()

	out := Figure7Result{App: app, Default: -1}
	pts := make([]stats.Point, 0, len(grid))
	groups := make([]runGroup, 0, len(grid))
	for _, mc := range grid {
		mcCopy := mc
		groups = append(groups, runGroup{cfg, prog,
			func() governor.Governor { return core.New(mcCopy) },
			harness.Options{Seed: opt.Seed, Obs: opt.Obs}})
	}
	results, err := runGroups(groups, opt.Repeats, opt.Jobs)
	if err != nil {
		return Figure7Result{}, err
	}
	for gi, mc := range grid {
		res := results[gi]
		p := ThresholdPoint{
			IncGBs:   mc.IncThresholdGBs,
			DecGBs:   mc.DecThresholdGBs,
			HighFreq: mc.HighFreqThreshold,
			RuntimeS: res.RuntimeS,
			EnergyJ:  res.TotalEnergyJ(),
		}
		if mc.IncThresholdGBs == def.IncThresholdGBs &&
			mc.DecThresholdGBs == def.DecThresholdGBs &&
			mc.HighFreqThreshold == def.HighFreqThreshold && out.Default < 0 {
			out.Default = len(out.Points)
		}
		out.Points = append(out.Points, p)
		pts = append(pts, stats.Point{X: p.RuntimeS, Y: p.EnergyJ, Label: fmt.Sprintf("%d", len(out.Points)-1)})
	}
	front := stats.ParetoFront(pts)
	onFront := make(map[string]bool, len(front))
	for _, f := range front {
		onFront[f.Label] = true
	}
	for i := range out.Points {
		out.Points[i].OnFrontier = onFront[fmt.Sprintf("%d", i)]
	}
	return out, nil
}

// DefaultDistance returns the normalised distance of the default
// threshold set from the Pareto frontier ("on or close to", §6.4).
func (f Figure7Result) DefaultDistance() float64 {
	if f.Default < 0 || len(f.Points) == 0 {
		return -1
	}
	var front []stats.Point
	var rtMax, enMax float64
	for _, p := range f.Points {
		if p.OnFrontier {
			front = append(front, stats.Point{X: p.RuntimeS, Y: p.EnergyJ})
		}
		if p.RuntimeS > rtMax {
			rtMax = p.RuntimeS
		}
		if p.EnergyJ > enMax {
			enMax = p.EnergyJ
		}
	}
	d := f.Points[f.Default]
	return stats.DistanceToFront(stats.Point{X: d.RuntimeS, Y: d.EnergyJ}, front, rtMax, enMax)
}

package experiments

// The §2 contrast, validated end to end: on a traditional CPU-only
// node running a CPU-heavy solver, package power approaches TDP and
// the vendor's hardware clamp visibly reduces the uncore frequency —
// while the same vendor default never touches the uncore for
// GPU-dominant workloads (TestFigure1UncoreStaysPinned covers that
// side).

import (
	"testing"
	"time"

	"github.com/spear-repro/magus/internal/harness"
	"github.com/spear-repro/magus/internal/node"
	"github.com/spear-repro/magus/internal/workload"
)

func TestCPUOnlyTDPClampEngages(t *testing.T) {
	cfg := node.IntelCPUOnly()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(cfg.GPUs) != 0 {
		t.Fatal("CPU-only preset has GPUs")
	}
	prog, ok := workload.ByName("hpc_cg")
	if !ok {
		t.Fatal("hpc_cg missing")
	}
	res, err := harness.Run(cfg, prog, defaultFactory(), harness.Options{
		Seed:          1,
		TraceInterval: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Package power approaches TDP...
	unc := res.Traces.Series("uncore_ghz")
	pkg := res.Traces.Series("pkg0_power_w")
	if pkg.Max() < 0.9*cfg.TDPWatts {
		t.Fatalf("CPU-heavy pkg power peaks at %.0f W, want near TDP %.0f", pkg.Max(), cfg.TDPWatts)
	}
	// ...and the hardware clamp pulls the uncore below its maximum.
	min := unc.Values[0]
	for _, v := range unc.Values {
		if v < min {
			min = v
		}
	}
	if min > 0.9*cfg.UncoreMaxGHz {
		t.Fatalf("uncore never clamped (min %.2f GHz) despite near-TDP power", min)
	}
	// GPU energy must be exactly zero on this preset.
	if res.GPUEnergyJ != 0 {
		t.Fatalf("GPU energy %.1f J on a GPU-less node", res.GPUEnergyJ)
	}
}

// Scope boundary: MAGUS's single signal saturates on a CPU-only,
// memory-saturated solver — served throughput flattens at the
// bandwidth ceiling, so after one sharp fall there is no rise left to
// detect and the runtime parks the uncore at minimum while the
// application starves. UPS's per-core IPC guard (built for exactly
// this domain) catches the damage and backs off. A faithful
// reproduction should surface this boundary, not hide it: the paper
// scopes MAGUS to GPU-dominant workloads, where CPU package power
// never pins the signal against the bandwidth ceiling.
func TestCPUOnlyScopeBoundary(t *testing.T) {
	cfg := node.IntelCPUOnly()
	prog, _ := workload.ByName("hpc_cg")
	opt := harness.Options{Seed: 1}

	base, err := harness.Run(cfg, prog, defaultFactory(), opt)
	if err != nil {
		t.Fatal(err)
	}
	magusRes, err := harness.Run(cfg, prog, magusFactoryFor(cfg.Name)(), opt)
	if err != nil {
		t.Fatal(err)
	}
	upsRes, err := harness.Run(cfg, prog, upsFactoryFor(cfg.Name)(), opt)
	if err != nil {
		t.Fatal(err)
	}
	m := harness.Compare(base, magusRes)
	u := harness.Compare(base, upsRes)
	if m.PerfLossPct < 10 {
		t.Fatalf("expected MAGUS to starve the saturated CPU solver (loss %.1f %%)", m.PerfLossPct)
	}
	if u.PerfLossPct >= m.PerfLossPct/2 {
		t.Fatalf("UPS's IPC guard should bound the damage: UPS %.1f %% vs MAGUS %.1f %%",
			u.PerfLossPct, m.PerfLossPct)
	}
}

package experiments

import (
	"flag"
	"testing"
	"time"
)

var probe = flag.Bool("probe", false, "print full experiment outputs")

func TestProbeOutputs(t *testing.T) {
	if !*probe {
		t.Skip("probe disabled (use -probe)")
	}
	for _, sys := range []string{"Intel+Max1550", "Intel+4A100"} {
		res, err := Figure4(sys, Quick())
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range res.Apps {
			t.Logf("[%s] %-22s MAGUS loss %5.1f pwr %5.1f en %5.1f | UPS loss %5.1f pwr %5.1f en %5.1f",
				sys, a.App, a.MAGUS.PerfLossPct, a.MAGUS.PowerSavingPct, a.MAGUS.EnergySavingPct,
				a.UPS.PerfLossPct, a.UPS.PowerSavingPct, a.UPS.EnergySavingPct)
		}
	}
	tab1, err := Table1(Quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab1.Rows {
		t.Logf("jaccard %-22s %.2f", r.App, r.Jaccard)
	}
	tab2, err := Table2(2*time.Minute, Quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab2.Rows {
		t.Logf("overhead %-14s %-6s power %5.2f%% invocation %.2fs", r.System, r.Method, r.PowerOverheadPct, r.InvocationS)
	}
}

package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestFigure4DeterministicAcrossJobs is the engine's headline
// regression guarantee: a figure produced at jobs=8 is byte-identical
// to the serial (jobs=1) one.
func TestFigure4DeterministicAcrossJobs(t *testing.T) {
	run := func(jobs int) []byte {
		res, err := Figure4("Intel+4A100", Options{Repeats: 2, Seed: 1, Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := run(1)
	par := run(8)
	if !bytes.Equal(serial, par) {
		t.Fatalf("Figure4 jobs=8 diverges from jobs=1:\nserial: %s\nparallel: %s", serial, par)
	}
}

// TestTable2DeterministicAcrossJobs extends the byte-identity
// guarantee to a table (Table 2's cells run outside harness.RunBatch,
// straight on the pool).
func TestTable2DeterministicAcrossJobs(t *testing.T) {
	run := func(jobs int) []byte {
		res, err := Table2(30*time.Second, Options{Repeats: 1, Seed: 1, Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := run(1)
	par := run(8)
	if !bytes.Equal(serial, par) {
		t.Fatalf("Table2 jobs=8 diverges from jobs=1:\nserial: %s\nparallel: %s", serial, par)
	}
}

// TestNoiseStudyDeterministicAcrossJobs covers the one grid whose
// cells carry mutable per-cell state (the noise closures): per-repeat
// closures must make even the noisy sweep jobs-invariant.
func TestNoiseStudyDeterministicAcrossJobs(t *testing.T) {
	run := func(jobs int) []byte {
		res, err := NoiseStudy("bfs", Options{Repeats: 2, Seed: 1, Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := run(1)
	par := run(8)
	if !bytes.Equal(serial, par) {
		t.Fatalf("NoiseStudy jobs=8 diverges from jobs=1:\nserial: %s\nparallel: %s", serial, par)
	}
}

// BenchmarkFigure4aJobs measures the wall-clock effect of the worker
// pool on the paper's largest single-system grid (Figure 4a: 20 apps ×
// 3 governors × repeats). Jobs>GOMAXPROCS adds nothing on a small
// machine; the committed BENCH_parallel.json records the measured
// ratios with the GOMAXPROCS they were taken at.
func BenchmarkFigure4aJobs(b *testing.B) {
	for _, jobs := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "jobs=1", 2: "jobs=2", 4: "jobs=4"}[jobs], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Figure4("Intel+A100", Options{Repeats: 1, Seed: 1, Jobs: jobs}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

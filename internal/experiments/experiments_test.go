package experiments

// Integration tests assert the paper's qualitative claims (§6) hold in
// the reproduction. Bounds are deliberately loose enough to survive
// model recalibration but tight enough that a broken runtime or
// simulator fails loudly.

import (
	"github.com/spear-repro/magus/internal/telemetry"
	"testing"
	"time"
)

func TestFigure1UncoreStaysPinned(t *testing.T) {
	res, err := Figure1(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// Uncore: flat at the 2.2 GHz maximum for (almost) the whole run —
	// the paper's motivating observation.
	unc := res.UncoreGHz
	if unc.Len() < 100 {
		t.Fatalf("uncore trace too short: %d", unc.Len())
	}
	if min := seriesMinF(unc); min < 2.15 {
		t.Fatalf("uncore dipped to %.2f GHz under the default governor", min)
	}
	// Core frequency and GPU clock are dynamic: they must span a wide
	// range as the workload alternates.
	core0 := res.CoreGHz[0]
	if spread := core0.Max() - seriesMinF(core0); spread < 0.5 {
		t.Fatalf("core frequency barely moved (spread %.2f GHz)", spread)
	}
	gpu := res.GPUClockMHz
	if spread := gpu.Max() - seriesMinF(gpu); spread < 300 {
		t.Fatalf("GPU clock barely moved (spread %.0f MHz)", spread)
	}
}

func seriesMinF(s *telemetry.Series) float64 {
	if s.Len() == 0 {
		return 0
	}
	min := s.Values[0]
	for _, v := range s.Values[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

func TestFigure2PowerPerformanceTradeoff(t *testing.T) {
	res, err := Figure2(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// ≈47 s at max uncore, ≈57 s at min (21 % stretch); ≈82 W package
	// power reduction (§2, Figure 2).
	if res.MaxUncore.RuntimeS < 44 || res.MaxUncore.RuntimeS > 50 {
		t.Fatalf("UNet max-uncore runtime = %.1f s, want ≈47", res.MaxUncore.RuntimeS)
	}
	if res.RuntimeIncreasePct < 12 || res.RuntimeIncreasePct > 30 {
		t.Fatalf("runtime increase = %.1f %%, want ≈21", res.RuntimeIncreasePct)
	}
	if res.PkgPowerDropW < 60 || res.PkgPowerDropW > 105 {
		t.Fatalf("package power drop = %.1f W, want ≈82", res.PkgPowerDropW)
	}
	if res.CPUPowerMax.Mean() <= res.CPUPowerMin.Mean() {
		t.Fatal("per-socket power trace ordering inverted")
	}
}

func TestFigure4aIntelA100(t *testing.T) {
	res, err := Figure4("Intel+A100", Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) != 20 {
		t.Fatalf("Figure 4a covers %d apps, want 20", len(res.Apps))
	}
	// Headline claims: performance loss below ~5 %, energy savings
	// positive everywhere, best saving in the tens of percent.
	if worst := res.MaxPerfLoss(); worst > 6 {
		t.Fatalf("MAGUS worst-case perf loss = %.1f %%, want < ≈5", worst)
	}
	for _, a := range res.Apps {
		if a.MAGUS.EnergySavingPct < -0.5 {
			t.Errorf("%s: MAGUS energy saving negative (%.1f %%)", a.App, a.MAGUS.EnergySavingPct)
		}
		if a.MAGUS.PowerSavingPct < 0 {
			t.Errorf("%s: MAGUS power saving negative (%.1f %%)", a.App, a.MAGUS.PowerSavingPct)
		}
	}
	if best := res.MaxEnergySaving(); best < 15 || best > 35 {
		t.Fatalf("best MAGUS energy saving = %.1f %%, want ≈20–30 (paper: up to 27)", best)
	}
	// MAGUS outperforms UPS on aggregate energy savings (Fig 4a).
	var magusSum, upsSum float64
	for _, a := range res.Apps {
		magusSum += a.MAGUS.EnergySavingPct
		upsSum += a.UPS.EnergySavingPct
	}
	if magusSum <= upsSum {
		t.Fatalf("aggregate energy savings: MAGUS %.1f vs UPS %.1f, want MAGUS ahead", magusSum, upsSum)
	}
}

func TestFigure4bIntelMax1550(t *testing.T) {
	res, err := Figure4("Intel+Max1550", Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) != 11 {
		t.Fatalf("Figure 4b covers %d apps, want 11", len(res.Apps))
	}
	if worst := res.MaxPerfLoss(); worst > 6 {
		t.Fatalf("MAGUS worst-case perf loss = %.1f %%", worst)
	}
	// All MAGUS savings positive. The paper's UPS goes energy-negative
	// for some apps here because its overhead outweighs its savings; in
	// this reproduction the same mechanism erodes UPS to near-zero for
	// at least one app (it stays marginally positive — see
	// EXPERIMENTS.md for the documented delta), and UPS must fall
	// clearly behind MAGUS overall.
	upsEroded := false
	var magusSum, upsSum float64
	for _, a := range res.Apps {
		if a.MAGUS.EnergySavingPct < -0.5 {
			t.Errorf("%s: MAGUS energy saving negative (%.1f %%)", a.App, a.MAGUS.EnergySavingPct)
		}
		if a.UPS.EnergySavingPct < 3 {
			upsEroded = true
		}
		magusSum += a.MAGUS.EnergySavingPct
		upsSum += a.UPS.EnergySavingPct
	}
	if !upsEroded {
		t.Error("expected UPS energy savings to be eroded (< 3 %) on at least one Max1550 app")
	}
	if magusSum <= upsSum {
		t.Errorf("aggregate Max1550 energy savings: MAGUS %.1f vs UPS %.1f, want MAGUS ahead", magusSum, upsSum)
	}
}

func TestFigure4cMultiGPU(t *testing.T) {
	a100, err := Figure4("Intel+A100", Quick())
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Figure4("Intel+4A100", Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Apps) != 5 {
		t.Fatalf("Figure 4c covers %d apps, want 5", len(multi.Apps))
	}
	// Energy savings shrink with more GPUs (fixed CPU complex, 4×
	// idle-heavy boards): compare unet across systems.
	var unetSingle, unetMulti float64
	for _, a := range a100.Apps {
		if a.App == "unet" {
			unetSingle = a.MAGUS.EnergySavingPct
		}
	}
	for _, a := range multi.Apps {
		if a.App == "unet" {
			unetMulti = a.MAGUS.EnergySavingPct
		}
	}
	if unetMulti >= unetSingle {
		t.Fatalf("unet energy saving multi-GPU (%.1f %%) should be below single-GPU (%.1f %%)",
			unetMulti, unetSingle)
	}
	// CPU power savings stay substantial even when energy savings are
	// modest (the paper reports ≈21 % for GROMACS).
	for _, a := range multi.Apps {
		if a.App == "gromacs" && (a.MAGUS.PowerSavingPct < 8 || a.MAGUS.PowerSavingPct > 35) {
			t.Errorf("gromacs multi-GPU power saving = %.1f %%, want ≈10–30", a.MAGUS.PowerSavingPct)
		}
	}
}

func TestFigure5SRADThroughput(t *testing.T) {
	res, err := Figure5(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// The min pin cannot reach the peak throughput the max pin serves.
	if res.MinUncore.Max() >= res.MaxUncore.Max()*0.8 {
		t.Fatalf("min-uncore peak %.0f vs max-uncore peak %.0f: clipping not visible",
			res.MinUncore.Max(), res.MaxUncore.Max())
	}
	// MAGUS reaches within 10 % of the baseline's peak throughput.
	if res.MAGUS.Max() < res.MaxUncore.Max()*0.9 {
		t.Fatalf("MAGUS peak throughput %.0f well below baseline %.0f",
			res.MAGUS.Max(), res.MaxUncore.Max())
	}
	// §6.2 headline: MAGUS saves energy with a small slowdown; UPS
	// saves more CPU power but slows down more.
	m, u := res.MAGUSvsDefault, res.UPSvsDefault
	if m.EnergySavingPct < 2 {
		t.Fatalf("MAGUS SRAD energy saving = %.1f %%, want clearly positive", m.EnergySavingPct)
	}
	if m.PerfLossPct > 5 {
		t.Fatalf("MAGUS SRAD perf loss = %.1f %%, want < 5", m.PerfLossPct)
	}
	if u.PowerSavingPct <= m.PowerSavingPct {
		t.Fatalf("power savings: UPS %.1f vs MAGUS %.1f, paper has UPS ahead on SRAD",
			u.PowerSavingPct, m.PowerSavingPct)
	}
	if u.PerfLossPct <= m.PerfLossPct {
		t.Fatalf("perf loss: UPS %.1f vs MAGUS %.1f, paper has UPS worse on SRAD",
			u.PerfLossPct, m.PerfLossPct)
	}
}

func TestFigure6UncoreTraces(t *testing.T) {
	res, err := Figure6(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// Baseline: pinned at max.
	if seriesMinF(res.Default) < 2.15 {
		t.Fatalf("default governor let the uncore drop to %.2f", seriesMinF(res.Default))
	}
	// MAGUS: visits both extremes and pins max during the flutter
	// (high-frequency overrides recorded).
	if seriesMinF(res.MAGUS) > 0.9 {
		t.Fatalf("MAGUS never scaled down (min %.2f GHz)", seriesMinF(res.MAGUS))
	}
	if res.MAGUS.Max() < 2.1 {
		t.Fatalf("MAGUS never returned to max (max %.2f GHz)", res.MAGUS.Max())
	}
	if res.MAGUSHighFreqOverrides == 0 {
		t.Fatal("high-frequency detector never engaged on SRAD")
	}
	// UPS steps to intermediate frequencies (gradual scaling).
	sawIntermediate := false
	for _, v := range res.UPS.Values {
		if v > 1.1 && v < 2.0 {
			sawIntermediate = true
			break
		}
	}
	if !sawIntermediate {
		t.Fatal("UPS trace shows no intermediate frequencies")
	}
}

func TestFigure7ParetoFrontier(t *testing.T) {
	res, err := Figure7("srad", Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 35 {
		t.Fatalf("sweep has %d points, want ≈40", len(res.Points))
	}
	if res.Default < 0 {
		t.Fatal("default threshold set missing from the sweep")
	}
	var frontier int
	for _, p := range res.Points {
		if p.OnFrontier {
			frontier++
		}
	}
	if frontier == 0 {
		t.Fatal("empty Pareto frontier")
	}
	// The recommended defaults sit on or close to the frontier (§6.4).
	if d := res.DefaultDistance(); d > 0.05 {
		t.Fatalf("default thresholds are %.3f (normalised) from the frontier, want ≤ 0.05", d)
	}
}

func TestTable1Jaccard(t *testing.T) {
	res, err := Table1(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 21 {
		t.Fatalf("Table 1 has %d rows, want 21", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Jaccard < 0 || r.Jaccard > 1 {
			t.Fatalf("%s: Jaccard %.2f out of range", r.App, r.Jaccard)
		}
	}
	// Shape of the table: strong predictions for the epoch/steady apps,
	// weak for the short init-burst apps (paper: fdtd2d 0.40 lowest).
	for _, app := range []string{"bfs", "unet", "lammps", "gromacs", "laghos"} {
		if j, _ := res.Get(app); j < 0.8 {
			t.Errorf("%s: Jaccard %.2f, want ≥ 0.8", app, j)
		}
	}
	lowApps := []string{"fdtd2d", "cfd_double", "particlefilter_float", "gemm"}
	lowCount := 0
	for _, app := range lowApps {
		if j, _ := res.Get(app); j < 0.8 {
			lowCount++
		}
	}
	if lowCount < 2 {
		t.Errorf("expected ≥2 of %v below 0.8 (init-burst misses), got %d", lowApps, lowCount)
	}
	if m := res.Mean(); m < 0.6 {
		t.Fatalf("mean Jaccard %.2f, want ≥ 0.6", m)
	}
}

func TestTable2Overheads(t *testing.T) {
	// Two idle minutes keep the test quick; overhead ratios are
	// duration-independent.
	res, err := Table2(2*time.Minute, Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("Table 2 has %d rows, want 4", len(res.Rows))
	}
	for _, sys := range []string{"Intel+A100", "Intel+Max1550"} {
		magus, ok1 := res.Get(sys, "magus")
		ups, ok2 := res.Get(sys, "ups")
		if !ok1 || !ok2 {
			t.Fatalf("%s rows missing", sys)
		}
		// MAGUS ≈1 % power overhead, UPS several ×, 0.1 s vs 0.3 s
		// invocations (§6.5, Table 2).
		if magus.PowerOverheadPct < 0.3 || magus.PowerOverheadPct > 2.5 {
			t.Errorf("%s: MAGUS power overhead %.2f %%, want ≈1", sys, magus.PowerOverheadPct)
		}
		if ups.PowerOverheadPct < 3 || ups.PowerOverheadPct > 11 {
			t.Errorf("%s: UPS power overhead %.2f %%, want ≈5–8", sys, ups.PowerOverheadPct)
		}
		if ups.PowerOverheadPct <= magus.PowerOverheadPct*2 {
			t.Errorf("%s: UPS overhead %.2f %% not clearly above MAGUS %.2f %%",
				sys, ups.PowerOverheadPct, magus.PowerOverheadPct)
		}
		if magus.InvocationS < 0.05 || magus.InvocationS > 0.15 {
			t.Errorf("%s: MAGUS invocation %.2f s, want ≈0.1", sys, magus.InvocationS)
		}
		if ups.InvocationS < 0.2 || ups.InvocationS > 0.4 {
			t.Errorf("%s: UPS invocation %.2f s, want ≈0.3", sys, ups.InvocationS)
		}
	}
	// The paper's cross-system observation: UPS costs more on Max1550.
	upsA100, _ := res.Get("Intel+A100", "ups")
	upsMax, _ := res.Get("Intel+Max1550", "ups")
	if upsMax.PowerOverheadPct <= upsA100.PowerOverheadPct {
		t.Errorf("UPS overhead on Max1550 (%.2f %%) should exceed A100 (%.2f %%)",
			upsMax.PowerOverheadPct, upsA100.PowerOverheadPct)
	}
}

func TestSystemByName(t *testing.T) {
	for _, name := range []string{"Intel+A100", "a100", "Intel+4A100", "4a100", "Intel+Max1550", "max1550"} {
		if _, err := SystemByName(name); err != nil {
			t.Errorf("SystemByName(%q): %v", name, err)
		}
	}
	if _, err := SystemByName("epyc"); err == nil {
		t.Error("unknown system accepted")
	}
}

func TestFigure7SecondApplication(t *testing.T) {
	// The paper presents the sweep for two applications; unet is the
	// epoch-structured case.
	res, err := Figure7("unet", Quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.Default < 0 {
		t.Fatal("default set missing")
	}
	if d := res.DefaultDistance(); d > 0.05 {
		t.Fatalf("unet: default distance to frontier = %.3f", d)
	}
}

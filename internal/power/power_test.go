package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCorePower(t *testing.T) {
	p := CoreParams{IdleWatts: 35, MaxPerCoreWatts: 2.5, FreqExp: 2.4}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.Power(0, 1); got != 35 {
		t.Fatalf("idle power = %v, want 35", got)
	}
	if got := p.Power(40, 1); got != 35+100 {
		t.Fatalf("full power = %v, want 135", got)
	}
	// Frequency scaling reduces active power superlinearly.
	half := p.Power(40, 0.5)
	if half <= 35 || half >= 35+50 {
		t.Fatalf("half-freq power = %v, want in (35, 85)", half)
	}
	// Clamping.
	if p.Power(-3, 1) != 35 {
		t.Fatal("negative busyCores not clamped")
	}
	if p.Power(40, 2) != 135 {
		t.Fatal("relFreq > 1 not clamped")
	}
}

func TestUncorePower(t *testing.T) {
	p := UncoreParams{BaseWatts: 6, DynMaxWatts: 47, TrafficWattsPerGBs: 0.02}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	max := p.Power(1, 0)
	min := p.Power(0.8/2.2, 0)
	if max != 53 {
		t.Fatalf("max uncore power = %v, want 53", max)
	}
	// The quadratic form gives the ~40 W/socket swing the paper's
	// Figure 2 implies (≈82 W over two sockets).
	if d := max - min; d < 38 || d > 45 {
		t.Fatalf("uncore swing = %v W, want ≈41 W", d)
	}
	if got := p.Power(1, 100) - max; math.Abs(got-2) > 1e-12 {
		t.Fatalf("traffic power = %v, want 2", got)
	}
}

func TestDramPower(t *testing.T) {
	p := DramParams{IdleWatts: 10, WattsPerGBs: 0.15}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.Power(0); got != 10 {
		t.Fatalf("idle = %v", got)
	}
	if got := p.Power(200); got != 40 {
		t.Fatalf("full bw = %v, want 40", got)
	}
	if got := p.Power(-5); got != 10 {
		t.Fatalf("negative traffic = %v, want 10", got)
	}
}

func TestGPUPower(t *testing.T) {
	p := GPUParams{IdleWatts: 30, MaxWatts: 250, ComputeShare: 0.7}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.Power(0, 1, 0); got != 30 {
		t.Fatalf("idle = %v, want 30", got)
	}
	if got := p.Power(1, 1, 1); got != 250 {
		t.Fatalf("max = %v, want 250", got)
	}
	// Memory-only activity draws the memory share.
	if got := p.Power(0, 1, 1); math.Abs(got-(30+220*0.3)) > 1e-9 {
		t.Fatalf("mem-only = %v, want 96", got)
	}
}

func TestValidateRejects(t *testing.T) {
	bads := []interface{ Validate() error }{
		CoreParams{IdleWatts: -1, MaxPerCoreWatts: 1, FreqExp: 2},
		CoreParams{IdleWatts: 1, MaxPerCoreWatts: 0, FreqExp: 2},
		CoreParams{IdleWatts: 1, MaxPerCoreWatts: 1, FreqExp: 9},
		UncoreParams{BaseWatts: -1, DynMaxWatts: 1},
		UncoreParams{BaseWatts: 1, DynMaxWatts: 0},
		DramParams{IdleWatts: -1},
		GPUParams{IdleWatts: 100, MaxWatts: 50, ComputeShare: 0.5},
		GPUParams{IdleWatts: 10, MaxWatts: 50, ComputeShare: 1.5},
	}
	for i, b := range bads {
		if b.Validate() == nil {
			t.Errorf("case %d: Validate accepted %+v", i, b)
		}
	}
}

// Properties: power is non-negative and monotone in each driver.
func TestPowerMonotonicity(t *testing.T) {
	core := CoreParams{IdleWatts: 30, MaxPerCoreWatts: 2.5, FreqExp: 2.4}
	unc := UncoreParams{BaseWatts: 6, DynMaxWatts: 47, TrafficWattsPerGBs: 0.02}
	gpu := GPUParams{IdleWatts: 30, MaxWatts: 250, ComputeShare: 0.7}

	prop := func(a, b uint16) bool {
		x := float64(a) / 65535
		y := float64(b) / 65535
		lo, hi := x, y
		if lo > hi {
			lo, hi = hi, lo
		}
		if core.Power(lo*40, 1) > core.Power(hi*40, 1)+1e-9 {
			return false
		}
		if core.Power(20, lo) > core.Power(20, hi)+1e-9 {
			return false
		}
		if unc.Power(lo, 50) > unc.Power(hi, 50)+1e-9 {
			return false
		}
		if gpu.Power(lo, 1, 0.5) > gpu.Power(hi, 1, 0.5)+1e-9 {
			return false
		}
		return core.Power(lo*40, hi) >= 0 && unc.Power(lo, hi*300) >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Package power holds the analytic power models of the node simulator:
// per-socket core and uncore domains, DRAM, and GPU boards. The models
// are deliberately simple — affine/polynomial in frequency, utilisation
// and traffic — and are calibrated against the operating points the
// paper reports (see internal/node presets and DESIGN.md §2):
//
//   - UNet on the 2×Xeon-8380 + A100 system draws ≈200 W package power
//     at the 2.2 GHz uncore maximum and ≈120 W at the 0.8 GHz minimum
//     (Figure 2), i.e. the uncore dynamic range is ≈40 % of package
//     power for that workload.
//   - A single A100-40GB idles near 30 W; four A100-80GB idle near
//     200 W total (§6.1).
//
// All model functions are pure; the node integrates them over time.
package power

import (
	"fmt"
	"math"
)

// CoreParams models one socket's core domain.
type CoreParams struct {
	// IdleWatts is the core-domain floor with all cores in idle states.
	IdleWatts float64
	// MaxPerCoreWatts is the incremental power of one fully utilised
	// core running at maximum frequency.
	MaxPerCoreWatts float64
	// FreqExp is the frequency exponent of active power (voltage
	// scales with frequency, so the effective exponent sits between 2
	// and 3; 2.4 matches published Xeon DVFS measurements well).
	FreqExp float64
}

// Validate reports configuration errors.
func (p CoreParams) Validate() error {
	if p.IdleWatts < 0 || p.MaxPerCoreWatts <= 0 || p.FreqExp < 1 || p.FreqExp > 3.5 {
		return fmt.Errorf("power: invalid CoreParams %+v", p)
	}
	return nil
}

// Power returns the core-domain watts for busyCores cores (may be
// fractional) running at relFreq (f/fmax, clamped to [0,1]).
func (p CoreParams) Power(busyCores, relFreq float64) float64 {
	if busyCores < 0 {
		busyCores = 0
	}
	relFreq = clamp01(relFreq)
	return p.IdleWatts + p.MaxPerCoreWatts*busyCores*pow(relFreq, p.FreqExp)
}

// UncoreParams models one socket's uncore domain (LLC, memory
// controller, UPI/mesh).
type UncoreParams struct {
	// BaseWatts is the frequency-independent floor.
	BaseWatts float64
	// DynMaxWatts is the additional power at maximum uncore frequency
	// with idle traffic; it scales quadratically with f/fmax.
	DynMaxWatts float64
	// TrafficWattsPerGBs is the switching power per GB/s of memory
	// traffic served by this socket's controllers.
	TrafficWattsPerGBs float64
}

// Validate reports configuration errors.
func (p UncoreParams) Validate() error {
	if p.BaseWatts < 0 || p.DynMaxWatts <= 0 || p.TrafficWattsPerGBs < 0 {
		return fmt.Errorf("power: invalid UncoreParams %+v", p)
	}
	return nil
}

// Power returns the uncore watts at relFreq = f/fmax with the given
// served traffic.
func (p UncoreParams) Power(relFreq, trafficGBs float64) float64 {
	relFreq = clamp01(relFreq)
	if trafficGBs < 0 {
		trafficGBs = 0
	}
	return p.BaseWatts + p.DynMaxWatts*relFreq*relFreq + p.TrafficWattsPerGBs*trafficGBs
}

// DramParams models one socket's DRAM domain as measured by RAPL.
type DramParams struct {
	// IdleWatts covers refresh and background power.
	IdleWatts float64
	// WattsPerGBs is the read/write energy per unit bandwidth
	// (≈0.12–0.2 W per GB/s for DDR4/DDR5).
	WattsPerGBs float64
}

// Validate reports configuration errors.
func (p DramParams) Validate() error {
	if p.IdleWatts < 0 || p.WattsPerGBs < 0 {
		return fmt.Errorf("power: invalid DramParams %+v", p)
	}
	return nil
}

// Power returns DRAM watts at the given served traffic.
func (p DramParams) Power(trafficGBs float64) float64 {
	if trafficGBs < 0 {
		trafficGBs = 0
	}
	return p.IdleWatts + p.WattsPerGBs*trafficGBs
}

// GPUParams models one GPU board (cores + HBM + VRM/fans/PCIe logic, as
// NVML's board power reports).
type GPUParams struct {
	// IdleWatts is board power with no kernels resident.
	IdleWatts float64
	// MaxWatts is the board power limit (TDP).
	MaxWatts float64
	// ComputeShare splits dynamic power between SM activity (scaled by
	// SM utilisation and clock squared) and memory activity (scaled by
	// memory utilisation). Typical ≈0.7.
	ComputeShare float64
}

// Validate reports configuration errors.
func (p GPUParams) Validate() error {
	if p.IdleWatts < 0 || p.MaxWatts <= p.IdleWatts || p.ComputeShare < 0 || p.ComputeShare > 1 {
		return fmt.Errorf("power: invalid GPUParams %+v", p)
	}
	return nil
}

// Power returns board watts at the given SM utilisation, relative SM
// clock (f/fmax) and memory utilisation, all in [0,1].
func (p GPUParams) Power(smUtil, relClock, memUtil float64) float64 {
	smUtil = clamp01(smUtil)
	relClock = clamp01(relClock)
	memUtil = clamp01(memUtil)
	dyn := p.MaxWatts - p.IdleWatts
	return p.IdleWatts + dyn*(p.ComputeShare*smUtil*relClock*relClock+(1-p.ComputeShare)*memUtil)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func pow(x, e float64) float64 { return math.Pow(x, e) }

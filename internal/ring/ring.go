// Package ring implements a fixed-capacity FIFO ring buffer.
//
// MAGUS (Algorithm 3) maintains two fixed-size first-in-first-out queues:
// mem_throughput_ls, the recent memory-throughput history consumed by the
// trend predictor, and uncore_tune_ls, the binary log of tuning decisions
// consumed by the high-frequency detector. Both are instances of this
// buffer.
package ring

import "fmt"

// Buffer is a fixed-capacity FIFO queue. When full, pushing evicts the
// oldest element, mirroring the paper's push_back + erase(begin()) idiom.
// The zero value is not usable; construct with New.
type Buffer[T any] struct {
	data  []T
	head  int // index of oldest element
	count int
}

// New returns a buffer holding at most capacity elements.
func New[T any](capacity int) *Buffer[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("ring: non-positive capacity %d", capacity))
	}
	return &Buffer[T]{data: make([]T, capacity)}
}

// Filled returns a buffer at full capacity with every slot set to v —
// the paper initialises uncore_tune_ls as a list of ten zeros.
func Filled[T any](capacity int, v T) *Buffer[T] {
	b := New[T](capacity)
	for i := range b.data {
		b.data[i] = v
	}
	b.count = capacity
	return b
}

// Cap returns the fixed capacity.
func (b *Buffer[T]) Cap() int { return len(b.data) }

// Len returns the number of stored elements.
func (b *Buffer[T]) Len() int { return b.count }

// Full reports whether the buffer is at capacity.
func (b *Buffer[T]) Full() bool { return b.count == len(b.data) }

// Push appends v, evicting the oldest element if full. It returns the
// evicted element and whether an eviction happened.
func (b *Buffer[T]) Push(v T) (evicted T, wasFull bool) {
	if b.Full() {
		evicted = b.data[b.head]
		b.data[b.head] = v
		b.head = (b.head + 1) % len(b.data)
		return evicted, true
	}
	b.data[(b.head+b.count)%len(b.data)] = v
	b.count++
	return evicted, false
}

// At returns the i-th element in FIFO order (0 = oldest). It panics on an
// out-of-range index.
func (b *Buffer[T]) At(i int) T {
	if i < 0 || i >= b.count {
		panic(fmt.Sprintf("ring: index %d out of range [0,%d)", i, b.count))
	}
	return b.data[(b.head+i)%len(b.data)]
}

// Oldest returns the first element in FIFO order; ok is false when empty.
func (b *Buffer[T]) Oldest() (v T, ok bool) {
	if b.count == 0 {
		return v, false
	}
	return b.At(0), true
}

// Newest returns the last element pushed; ok is false when empty.
func (b *Buffer[T]) Newest() (v T, ok bool) {
	if b.count == 0 {
		return v, false
	}
	return b.At(b.count - 1), true
}

// Fill resets the buffer to full capacity with every slot set to v,
// without allocating — the in-place equivalent of building a new
// Filled buffer (MAGUS re-initialises uncore_tune_ls this way when it
// re-enters warm-up after a sensor outage).
func (b *Buffer[T]) Fill(v T) {
	for i := range b.data {
		b.data[i] = v
	}
	b.head = 0
	b.count = len(b.data)
}

// Snapshot copies the contents into a new slice in FIFO order.
func (b *Buffer[T]) Snapshot() []T {
	out := make([]T, b.count)
	for i := 0; i < b.count; i++ {
		out[i] = b.At(i)
	}
	return out
}

// Do calls fn for each element in FIFO order.
func (b *Buffer[T]) Do(fn func(v T)) {
	for i := 0; i < b.count; i++ {
		fn(b.At(i))
	}
}

// Reset empties the buffer without releasing storage.
func (b *Buffer[T]) Reset() {
	b.head = 0
	b.count = 0
}

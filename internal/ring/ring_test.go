package ring

import (
	"testing"
	"testing/quick"
)

func TestPushAndOrder(t *testing.T) {
	b := New[int](3)
	if b.Cap() != 3 || b.Len() != 0 || b.Full() {
		t.Fatalf("fresh buffer: cap=%d len=%d full=%v", b.Cap(), b.Len(), b.Full())
	}
	for i := 1; i <= 3; i++ {
		if _, full := b.Push(i); full {
			t.Fatalf("push %d reported eviction on non-full buffer", i)
		}
	}
	if !b.Full() {
		t.Fatal("buffer should be full after 3 pushes")
	}
	ev, full := b.Push(4)
	if !full || ev != 1 {
		t.Fatalf("push to full buffer: evicted=%v wasFull=%v, want 1,true", ev, full)
	}
	want := []int{2, 3, 4}
	got := b.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("snapshot = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snapshot = %v, want %v", got, want)
		}
	}
}

func TestOldestNewest(t *testing.T) {
	b := New[string](2)
	if _, ok := b.Oldest(); ok {
		t.Fatal("Oldest on empty buffer reported ok")
	}
	if _, ok := b.Newest(); ok {
		t.Fatal("Newest on empty buffer reported ok")
	}
	b.Push("a")
	b.Push("b")
	b.Push("c")
	if v, _ := b.Oldest(); v != "b" {
		t.Fatalf("Oldest = %q, want b", v)
	}
	if v, _ := b.Newest(); v != "c" {
		t.Fatalf("Newest = %q, want c", v)
	}
}

func TestFilled(t *testing.T) {
	b := Filled(10, 0)
	if !b.Full() || b.Len() != 10 {
		t.Fatalf("Filled: len=%d full=%v", b.Len(), b.Full())
	}
	b.Do(func(v int) {
		if v != 0 {
			t.Fatalf("Filled slot = %d, want 0", v)
		}
	})
	b.Push(1)
	if v, _ := b.Newest(); v != 1 {
		t.Fatalf("Newest after push = %d, want 1", v)
	}
	if v, _ := b.Oldest(); v != 0 {
		t.Fatalf("Oldest after push = %d, want 0", v)
	}
}

func TestReset(t *testing.T) {
	b := New[int](4)
	b.Push(1)
	b.Push(2)
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("Len after Reset = %d", b.Len())
	}
	b.Push(9)
	if v, _ := b.Oldest(); v != 9 {
		t.Fatalf("Oldest after reuse = %d, want 9", v)
	}
}

func TestAtPanics(t *testing.T) {
	b := New[int](2)
	b.Push(1)
	for _, idx := range []int{-1, 1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d) did not panic", idx)
				}
			}()
			b.At(idx)
		}()
	}
}

func TestNewPanicsOnBadCapacity(t *testing.T) {
	for _, c := range []int{0, -3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", c)
				}
			}()
			New[int](c)
		}()
	}
}

// Property: after pushing any sequence into a buffer of capacity c, the
// contents equal the last min(len(seq), c) elements of the sequence in
// order, and Len never exceeds Cap.
func TestFIFOProperty(t *testing.T) {
	prop := func(seq []int16, capHint uint8) bool {
		c := int(capHint%16) + 1
		b := New[int16](c)
		for _, v := range seq {
			b.Push(v)
			if b.Len() > b.Cap() {
				return false
			}
		}
		start := 0
		if len(seq) > c {
			start = len(seq) - c
		}
		want := seq[start:]
		got := b.Snapshot()
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: eviction reporting matches fullness, and the evicted element
// is always the previous oldest.
func TestEvictionProperty(t *testing.T) {
	prop := func(seq []int32, capHint uint8) bool {
		c := int(capHint%8) + 1
		b := New[int32](c)
		for i, v := range seq {
			wasFull := b.Full()
			var wantEvict int32
			if wasFull {
				wantEvict, _ = b.Oldest()
			}
			ev, full := b.Push(v)
			if full != wasFull {
				return false
			}
			if wasFull && ev != wantEvict {
				return false
			}
			wantLen := i + 1
			if wantLen > c {
				wantLen = c
			}
			if b.Len() != wantLen {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFill(t *testing.T) {
	b := New[int](5)
	b.Push(1)
	b.Push(2)
	b.Push(3)
	b.Push(4)
	b.Push(5)
	b.Push(6) // rotate the head so Fill must also rewind it
	b.Fill(0)
	if !b.Full() || b.Len() != 5 {
		t.Fatalf("Fill left len=%d full=%v", b.Len(), b.Full())
	}
	for i := 0; i < b.Len(); i++ {
		if b.At(i) != 0 {
			t.Fatalf("At(%d) = %d after Fill(0)", i, b.At(i))
		}
	}
	// Fill must behave exactly like a fresh Filled buffer under
	// subsequent pushes.
	b.Push(9)
	want := Filled(5, 0)
	want.Push(9)
	for i := 0; i < 5; i++ {
		if b.At(i) != want.At(i) {
			t.Fatalf("post-Fill push diverges at %d: %d vs %d", i, b.At(i), want.At(i))
		}
	}
}

func TestFillZeroAlloc(t *testing.T) {
	b := Filled(10, 1)
	if allocs := testing.AllocsPerRun(100, func() { b.Fill(0) }); allocs != 0 {
		t.Fatalf("Fill allocates %v times per call", allocs)
	}
}

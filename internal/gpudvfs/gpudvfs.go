// Package gpudvfs models a GPU's autonomous SM-clock management (the
// behaviour nvidia-smi reports and Figure 1b of the paper shows): the
// SM clock idles low with no resident kernels and boosts toward the
// maximum clock under compute load, with a first-order response.
package gpudvfs

import (
	"fmt"
	"time"
)

// Clock is one GPU's SM-clock controller. Construct with New.
type Clock struct {
	IdleMHz float64
	MaxMHz  float64
	// Tau is the boost/decay response time constant (tens of ms on
	// real boards).
	Tau time.Duration

	cur float64
}

// New returns a controller initialised at the idle clock.
func New(idleMHz, maxMHz float64, tau time.Duration) *Clock {
	if !(0 < idleMHz && idleMHz < maxMHz) || tau <= 0 {
		panic(fmt.Sprintf("gpudvfs: invalid clock %v/%v tau=%v", idleMHz, maxMHz, tau))
	}
	return &Clock{IdleMHz: idleMHz, MaxMHz: maxMHz, Tau: tau, cur: idleMHz}
}

// Target returns the steady-state SM clock for an SM utilisation in
// [0,1]. GPUs boost aggressively: any non-trivial load runs at or near
// the max boost clock.
func (c *Clock) Target(smUtil float64) float64 {
	switch {
	case smUtil <= 0.01:
		return c.IdleMHz
	case smUtil >= 0.3:
		return c.MaxMHz
	default:
		return c.IdleMHz + (c.MaxMHz-c.IdleMHz)*(smUtil/0.3)
	}
}

// Step advances the controller by dt under the given SM utilisation and
// returns the new clock in MHz. A non-positive dt leaves the clock
// unchanged: time did not advance, so the first-order response must not
// move (a negative dt would flip the sign of alpha and push the clock
// *away* from its target).
func (c *Clock) Step(smUtil float64, dt time.Duration) float64 {
	if dt <= 0 {
		return c.cur
	}
	target := c.Target(smUtil)
	alpha := float64(dt) / float64(c.Tau)
	if alpha > 1 {
		alpha = 1
	}
	c.cur += (target - c.cur) * alpha
	return c.cur
}

// Current returns the operating SM clock in MHz.
func (c *Clock) Current() float64 { return c.cur }

// SetCurrent overwrites the operating clock — the checkpoint restore
// path; normal operation goes through Step.
func (c *Clock) SetCurrent(mhz float64) { c.cur = mhz }

// Rel returns the clock relative to the maximum, in [0,1].
func (c *Clock) Rel() float64 { return c.cur / c.MaxMHz }

// Reset forces the controller back to the idle clock.
func (c *Clock) Reset() { c.cur = c.IdleMHz }

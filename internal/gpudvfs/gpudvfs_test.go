package gpudvfs

import (
	"testing"
	"testing/quick"
	"time"
)

func newA100() *Clock { return New(210, 1410, 20*time.Millisecond) }

func TestTargetShape(t *testing.T) {
	c := newA100()
	if got := c.Target(0); got != 210 {
		t.Fatalf("idle target = %v", got)
	}
	if got := c.Target(0.5); got != 1410 {
		t.Fatalf("loaded target = %v, want max (GPUs boost aggressively)", got)
	}
	if got := c.Target(0.15); got <= 210 || got >= 1410 {
		t.Fatalf("light-load target = %v, want intermediate", got)
	}
}

func TestBoostAndDecay(t *testing.T) {
	c := newA100()
	for i := 0; i < 200; i++ {
		c.Step(0.9, time.Millisecond)
	}
	if c.Current() < 1400 {
		t.Fatalf("boost clock = %v, want ≈1410", c.Current())
	}
	if rel := c.Rel(); rel < 0.99 || rel > 1.0 {
		t.Fatalf("Rel = %v", rel)
	}
	for i := 0; i < 400; i++ {
		c.Step(0, time.Millisecond)
	}
	if c.Current() > 215 {
		t.Fatalf("decayed clock = %v, want ≈210", c.Current())
	}
}

func TestReset(t *testing.T) {
	c := newA100()
	c.Step(1, time.Second)
	c.Reset()
	if c.Current() != 210 {
		t.Fatalf("Reset: %v", c.Current())
	}
}

func TestNewValidation(t *testing.T) {
	for _, c := range [][3]float64{{0, 100, 1}, {100, 100, 1}, {100, 200, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", c)
				}
			}()
			New(c[0], c[1], time.Duration(c[2])*time.Millisecond)
		}()
	}
}

// TestStepDtClamp is the regression table for degenerate dt values: a
// zero or negative dt must leave the clock unchanged (the pre-fix code
// flipped alpha's sign on negative dt and pushed the clock *away* from
// its target), and dt > Tau must clamp alpha to 1 (land exactly on the
// target, never overshoot).
func TestStepDtClamp(t *testing.T) {
	tests := []struct {
		name   string
		dt     time.Duration
		start  float64
		smUtil float64
		want   float64
	}{
		{"zero dt holds", 0, 700, 0.9, 700},
		{"negative dt holds", -5 * time.Millisecond, 700, 0.9, 700},
		{"negative dt holds at idle", -time.Second, 700, 0, 700},
		{"dt == Tau lands on target", 20 * time.Millisecond, 700, 0.9, 1410},
		{"dt > Tau clamps to target", time.Second, 700, 0.9, 1410},
		{"dt > Tau decays to idle", time.Second, 1410, 0, 210},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			c := newA100()
			c.SetCurrent(tc.start)
			got := c.Step(tc.smUtil, tc.dt)
			if got != tc.want {
				t.Fatalf("Step(%v, %v) from %v = %v, want %v",
					tc.smUtil, tc.dt, tc.start, got, tc.want)
			}
			if c.Current() != got {
				t.Fatalf("Current() = %v after Step returned %v", c.Current(), got)
			}
		})
	}
}

func TestClockBounds(t *testing.T) {
	prop := func(utils []uint8) bool {
		c := newA100()
		for _, u := range utils {
			f := c.Step(float64(u%101)/100, 2*time.Millisecond)
			if f < 210-1e-9 || f > 1410+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

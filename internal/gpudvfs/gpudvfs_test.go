package gpudvfs

import (
	"testing"
	"testing/quick"
	"time"
)

func newA100() *Clock { return New(210, 1410, 20*time.Millisecond) }

func TestTargetShape(t *testing.T) {
	c := newA100()
	if got := c.Target(0); got != 210 {
		t.Fatalf("idle target = %v", got)
	}
	if got := c.Target(0.5); got != 1410 {
		t.Fatalf("loaded target = %v, want max (GPUs boost aggressively)", got)
	}
	if got := c.Target(0.15); got <= 210 || got >= 1410 {
		t.Fatalf("light-load target = %v, want intermediate", got)
	}
}

func TestBoostAndDecay(t *testing.T) {
	c := newA100()
	for i := 0; i < 200; i++ {
		c.Step(0.9, time.Millisecond)
	}
	if c.Current() < 1400 {
		t.Fatalf("boost clock = %v, want ≈1410", c.Current())
	}
	if rel := c.Rel(); rel < 0.99 || rel > 1.0 {
		t.Fatalf("Rel = %v", rel)
	}
	for i := 0; i < 400; i++ {
		c.Step(0, time.Millisecond)
	}
	if c.Current() > 215 {
		t.Fatalf("decayed clock = %v, want ≈210", c.Current())
	}
}

func TestReset(t *testing.T) {
	c := newA100()
	c.Step(1, time.Second)
	c.Reset()
	if c.Current() != 210 {
		t.Fatalf("Reset: %v", c.Current())
	}
}

func TestNewValidation(t *testing.T) {
	for _, c := range [][3]float64{{0, 100, 1}, {100, 100, 1}, {100, 200, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", c)
				}
			}()
			New(c[0], c[1], time.Duration(c[2])*time.Millisecond)
		}()
	}
}

func TestClockBounds(t *testing.T) {
	prop := func(utils []uint8) bool {
		c := newA100()
		for _, u := range utils {
			f := c.Step(float64(u%101)/100, 2*time.Millisecond)
			if f < 210-1e-9 || f > 1410+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

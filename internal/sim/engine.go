package sim

import (
	"errors"
	"fmt"
	"time"
)

// DefaultStep is the engine's default integration timestep. One
// millisecond resolves the fastest dynamics in the model (governor
// invocation windows of 100 ms, workload fluctuation periods down to a
// few ms) with comfortable margin.
const DefaultStep = time.Millisecond

// Component is a piece of simulated state advanced on every engine step,
// e.g. the node power model or a telemetry sampler. Step receives the
// time at the *start* of the step and the step width.
type Component interface {
	Step(now, dt time.Duration)
}

// ComponentFunc adapts a function to the Component interface.
type ComponentFunc func(now, dt time.Duration)

// Step implements Component.
func (f ComponentFunc) Step(now, dt time.Duration) { f(now, dt) }

// Task is a periodic callback modelling a daemon that wakes up on an
// interval — in this repo, the uncore governors. The callback returns the
// delay until its next wakeup; returning 0 re-uses the task's configured
// interval. This lets a governor whose invocation itself takes time (PCM
// measurement windows, per-core MSR sweeps) schedule its next decision
// relative to when the previous one *finished*, matching §6.5 of the
// paper (MAGUS: 0.1 s invocation + 0.2 s sleep = 0.3 s decision period).
type Task struct {
	Name     string
	Interval time.Duration
	Fn       func(now time.Duration) time.Duration

	next time.Duration
}

// Engine owns the virtual clock and advances components and tasks.
type Engine struct {
	clock      Clock
	dt         time.Duration
	components []Component
	tasks      []*Task
}

// NewEngine returns an engine with the given timestep; dt <= 0 selects
// DefaultStep.
func NewEngine(dt time.Duration) *Engine {
	if dt <= 0 {
		dt = DefaultStep
	}
	return &Engine{dt: dt}
}

// Clock exposes the engine's virtual clock.
func (e *Engine) Clock() *Clock { return &e.clock }

// Step returns the engine timestep.
func (e *Engine) Step() time.Duration { return e.dt }

// AddComponent registers a component. Components run in registration
// order each step; register producers (workload) before consumers
// (power model, telemetry).
func (e *Engine) AddComponent(c Component) {
	if c == nil {
		panic("sim: nil component")
	}
	e.components = append(e.components, c)
}

// AddTask registers a periodic task. The first invocation happens at
// t = start; subsequent invocations follow the returned delay (or
// Interval when the callback returns 0).
func (e *Engine) AddTask(t *Task, start time.Duration) {
	if t == nil || t.Fn == nil {
		panic("sim: nil task")
	}
	if t.Interval <= 0 {
		panic(fmt.Sprintf("sim: task %q has non-positive interval %v", t.Name, t.Interval))
	}
	t.next = start
	e.tasks = append(e.tasks, t)
}

// ErrHorizon is returned by RunUntil when the stop condition was not
// reached before the safety horizon.
var ErrHorizon = errors.New("sim: horizon reached before stop condition")

// RunFor advances the simulation by d.
func (e *Engine) RunFor(d time.Duration) {
	end := e.clock.Now() + d
	for e.clock.Now() < end {
		e.step()
	}
}

// RunUntil advances the simulation until done() reports true, checking
// after every step. horizon bounds the run; a horizon <= 0 defaults to
// one virtual hour. It returns the virtual time at which the condition
// was met.
func (e *Engine) RunUntil(done func() bool, horizon time.Duration) (time.Duration, error) {
	if horizon <= 0 {
		horizon = time.Hour
	}
	end := e.clock.Now() + horizon
	for !done() {
		if e.clock.Now() >= end {
			return e.clock.Now(), ErrHorizon
		}
		e.step()
	}
	return e.clock.Now(), nil
}

// step advances one timestep: due tasks fire first (a governor observes
// state as of the end of the previous step), then components integrate.
func (e *Engine) step() {
	now := e.clock.Now()
	for _, t := range e.tasks {
		if now >= t.next {
			delay := t.Fn(now)
			if delay <= 0 {
				delay = t.Interval
			}
			t.next = now + delay
		}
	}
	for _, c := range e.components {
		c.Step(now, e.dt)
	}
	e.clock.Advance(e.dt)
}

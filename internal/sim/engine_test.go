package sim

import (
	"testing"
	"time"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock Now = %v, want 0", c.Now())
	}
	c.Advance(250 * time.Millisecond)
	c.Advance(750 * time.Millisecond)
	if got := c.Now(); got != time.Second {
		t.Fatalf("Now = %v, want 1s", got)
	}
	if got := c.Seconds(); got != 1.0 {
		t.Fatalf("Seconds = %v, want 1.0", got)
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("Reset: Now = %v, want 0", c.Now())
	}
}

func TestClockNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Advance did not panic")
		}
	}()
	var c Clock
	c.Advance(-time.Millisecond)
}

func TestEngineRunFor(t *testing.T) {
	e := NewEngine(time.Millisecond)
	var steps int
	var total time.Duration
	e.AddComponent(ComponentFunc(func(now, dt time.Duration) {
		steps++
		total += dt
	}))
	e.RunFor(100 * time.Millisecond)
	if steps != 100 {
		t.Fatalf("steps = %d, want 100", steps)
	}
	if total != 100*time.Millisecond {
		t.Fatalf("integrated time = %v, want 100ms", total)
	}
	if e.Clock().Now() != 100*time.Millisecond {
		t.Fatalf("clock = %v, want 100ms", e.Clock().Now())
	}
}

func TestEngineDefaultStep(t *testing.T) {
	e := NewEngine(0)
	if e.Step() != DefaultStep {
		t.Fatalf("Step = %v, want %v", e.Step(), DefaultStep)
	}
}

func TestTaskFixedInterval(t *testing.T) {
	e := NewEngine(time.Millisecond)
	var fires []time.Duration
	e.AddTask(&Task{
		Name:     "gov",
		Interval: 10 * time.Millisecond,
		Fn: func(now time.Duration) time.Duration {
			fires = append(fires, now)
			return 0 // use configured interval
		},
	}, 0)
	e.RunFor(35 * time.Millisecond)
	want := []time.Duration{0, 10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	if len(fires) != len(want) {
		t.Fatalf("fires = %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fire %d at %v, want %v", i, fires[i], want[i])
		}
	}
}

func TestTaskSelfScheduling(t *testing.T) {
	// A task that takes 100ms to run and sleeps 200ms schedules itself
	// every 300ms — the MAGUS decision-period model from §6.5.
	e := NewEngine(time.Millisecond)
	var fires []time.Duration
	e.AddTask(&Task{
		Name:     "magus",
		Interval: 200 * time.Millisecond,
		Fn: func(now time.Duration) time.Duration {
			fires = append(fires, now)
			return 300 * time.Millisecond
		},
	}, 0)
	e.RunFor(time.Second)
	want := []time.Duration{0, 300 * time.Millisecond, 600 * time.Millisecond, 900 * time.Millisecond}
	if len(fires) != len(want) {
		t.Fatalf("got %d fires %v, want %v", len(fires), fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fire %d at %v, want %v", i, fires[i], want[i])
		}
	}
}

func TestTaskDelayedStart(t *testing.T) {
	e := NewEngine(time.Millisecond)
	var first time.Duration = -1
	e.AddTask(&Task{
		Name:     "late",
		Interval: 50 * time.Millisecond,
		Fn: func(now time.Duration) time.Duration {
			if first < 0 {
				first = now
			}
			return 0
		},
	}, 2*time.Second)
	e.RunFor(2100 * time.Millisecond)
	if first != 2*time.Second {
		t.Fatalf("first fire at %v, want 2s", first)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(time.Millisecond)
	var acc time.Duration
	e.AddComponent(ComponentFunc(func(now, dt time.Duration) { acc += dt }))
	at, err := e.RunUntil(func() bool { return acc >= 42*time.Millisecond }, time.Second)
	if err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if at != 42*time.Millisecond {
		t.Fatalf("stopped at %v, want 42ms", at)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	e := NewEngine(time.Millisecond)
	_, err := e.RunUntil(func() bool { return false }, 50*time.Millisecond)
	if err != ErrHorizon {
		t.Fatalf("err = %v, want ErrHorizon", err)
	}
}

func TestComponentOrder(t *testing.T) {
	e := NewEngine(time.Millisecond)
	var order []int
	e.AddComponent(ComponentFunc(func(now, dt time.Duration) { order = append(order, 1) }))
	e.AddComponent(ComponentFunc(func(now, dt time.Duration) { order = append(order, 2) }))
	e.RunFor(time.Millisecond)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v, want [1 2]", order)
	}
}

func TestAddTaskValidation(t *testing.T) {
	e := NewEngine(0)
	for name, task := range map[string]*Task{
		"nil fn":        {Name: "x", Interval: time.Second},
		"zero interval": {Name: "x", Interval: 0, Fn: func(time.Duration) time.Duration { return 0 }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: AddTask did not panic", name)
				}
			}()
			e.AddTask(task, 0)
		}()
	}
}

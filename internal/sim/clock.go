// Package sim provides the discrete-time simulation substrate used by the
// MAGUS reproduction: a virtual clock, a fixed-step engine that advances
// simulated node state, and a periodic-task scheduler that models runtime
// daemons (governors) waking up on their sampling intervals.
//
// All time in the simulator is virtual. A 60-second application run
// advances in fixed steps (default 1 ms) and completes in a few
// milliseconds of wall time, which keeps the full experiment matrix of the
// paper cheap enough to regenerate in CI.
package sim

import (
	"fmt"
	"time"
)

// Clock tracks virtual time. The zero value starts at t=0.
type Clock struct {
	now time.Duration
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// Seconds returns the current virtual time in seconds.
func (c *Clock) Seconds() float64 { return c.now.Seconds() }

// Advance moves the clock forward by d. It panics on negative d: virtual
// time is monotone and a negative advance always indicates a harness bug.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative clock advance %v", d))
	}
	c.now += d
}

// Reset rewinds the clock to zero. Only the engine uses this, between
// independent experiment runs.
func (c *Clock) Reset() { c.now = 0 }

package sim

import (
	"testing"
	"time"
)

// BenchmarkHotPathEngineTick measures one engine step with a task and a
// pair of components registered — the dispatch skeleton every simulated
// millisecond pays before any model code runs. Steady state must be
// allocation-free.
func BenchmarkHotPathEngineTick(b *testing.B) {
	eng := NewEngine(0)
	var sink float64
	eng.AddComponent(ComponentFunc(func(now, dt time.Duration) { sink += dt.Seconds() }))
	eng.AddComponent(ComponentFunc(func(now, dt time.Duration) { sink += now.Seconds() }))
	eng.AddTask(&Task{
		Name:     "governor",
		Interval: 300 * time.Millisecond,
		Fn:       func(now time.Duration) time.Duration { return 0 },
	}, 0)
	dt := eng.Step()
	eng.RunFor(100 * dt) // steady state before the timer starts
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.RunFor(dt)
	}
	_ = sink
}

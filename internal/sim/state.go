package sim

import (
	"fmt"
	"time"
)

// State is the engine's mutable state: the virtual clock and each
// task's next wakeup, in registration order. Components own their own
// state and checkpoint themselves; the engine only schedules them.
type State struct {
	Now      time.Duration
	TaskNext []time.Duration
}

// State captures the engine's clock and task schedule.
func (e *Engine) State() State {
	st := State{Now: e.clock.Now(), TaskNext: make([]time.Duration, len(e.tasks))}
	for i, t := range e.tasks {
		st.TaskNext[i] = t.next
	}
	return st
}

// Restore overwrites the clock and task schedule. The engine must have
// been rebuilt with the same tasks in the same order as the captured
// one.
func (e *Engine) Restore(st State) error {
	if len(st.TaskNext) != len(e.tasks) {
		return fmt.Errorf("sim: restore has %d task wakeups, engine has %d tasks",
			len(st.TaskNext), len(e.tasks))
	}
	if st.Now < 0 {
		return fmt.Errorf("sim: restore has negative clock %v", st.Now)
	}
	e.clock.now = st.Now
	for i, t := range e.tasks {
		t.next = st.TaskNext[i]
	}
	return nil
}

// NextTask returns the earliest pending task wakeup time. It lets a
// caller that steps a run invoke-by-invoke (the fork-from-prefix
// planner) advance exactly to — but not through — the next governor
// invocation: a task with next == T has not fired yet when the clock
// reads T. Returns 0, false when no tasks are registered.
func (e *Engine) NextTask() (time.Duration, bool) {
	if len(e.tasks) == 0 {
		return 0, false
	}
	min := e.tasks[0].next
	for _, t := range e.tasks[1:] {
		if t.next < min {
			min = t.next
		}
	}
	return min, true
}

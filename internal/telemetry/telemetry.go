// Package telemetry records time series during simulated runs (power,
// frequency, throughput traces for Figures 1/2/5/6) and extracts burst
// patterns from throughput traces for the Table 1 Jaccard analysis:
// bursts are intervals where throughput exceeds a threshold fraction of
// the baseline run's peak, resampled onto a fixed grid of bins.
package telemetry

import (
	"fmt"
	"sort"
	"time"
)

// Series is a time series of (seconds, value) points in append order.
type Series struct {
	Times  []float64
	Values []float64
}

// Append adds a point; time must not decrease.
func (s *Series) Append(tSec, v float64) {
	if n := len(s.Times); n > 0 && tSec < s.Times[n-1] {
		panic(fmt.Sprintf("telemetry: time went backwards (%v after %v)", tSec, s.Times[n-1]))
	}
	s.Times = append(s.Times, tSec)
	s.Values = append(s.Values, v)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Times) }

// Duration returns the span from first to last sample, in seconds.
func (s *Series) Duration() float64 {
	if len(s.Times) < 2 {
		return 0
	}
	return s.Times[len(s.Times)-1] - s.Times[0]
}

// Mean returns the time-weighted mean value (each sample holds until
// the next), or 0 for fewer than two points.
func (s *Series) Mean() float64 {
	if len(s.Times) < 2 {
		if len(s.Values) == 1 {
			return s.Values[0]
		}
		return 0
	}
	var acc float64
	for i := 0; i+1 < len(s.Times); i++ {
		acc += s.Values[i] * (s.Times[i+1] - s.Times[i])
	}
	return acc / s.Duration()
}

// Max returns the maximum value; it panics on an empty series.
func (s *Series) Max() float64 {
	if len(s.Values) == 0 {
		panic("telemetry: Max of empty series")
	}
	m := s.Values[0]
	for _, v := range s.Values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Integrate returns the step-held integral ∫v dt in value·seconds.
func (s *Series) Integrate() float64 {
	var acc float64
	for i := 0; i+1 < len(s.Times); i++ {
		acc += s.Values[i] * (s.Times[i+1] - s.Times[i])
	}
	return acc
}

// Resample averages the series into bins equal-width bins spanning the
// full duration. Empty bins inherit the previous bin's value (sample
// and hold). It panics on bins < 1 or a series with < 2 points.
func (s *Series) Resample(bins int) []float64 {
	if bins < 1 {
		panic("telemetry: Resample with bins < 1")
	}
	if len(s.Times) < 2 {
		panic("telemetry: Resample of degenerate series")
	}
	start, dur := s.Times[0], s.Duration()
	out := make([]float64, bins)
	counts := make([]int, bins)
	for i, tm := range s.Times {
		b := int((tm - start) / dur * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		out[b] += s.Values[i]
		counts[b]++
	}
	last := s.Values[0]
	for b := range out {
		if counts[b] > 0 {
			out[b] /= float64(counts[b])
			last = out[b]
		} else {
			out[b] = last
		}
	}
	return out
}

// Bursts resamples the series and marks bins whose value exceeds
// threshold.
func (s *Series) Bursts(bins int, threshold float64) []bool {
	vals := s.Resample(bins)
	out := make([]bool, bins)
	for i, v := range vals {
		out[i] = v > threshold
	}
	return out
}

// Recorder samples named probes on a fixed interval; it implements
// sim.Component.
type Recorder struct {
	interval time.Duration
	next     time.Duration
	names    []string
	probes   []func() float64
	series   map[string]*Series
	reserve  int
}

// NewRecorder builds a recorder sampling every interval.
func NewRecorder(interval time.Duration) *Recorder {
	if interval <= 0 {
		panic("telemetry: non-positive recorder interval")
	}
	return &Recorder{interval: interval, series: make(map[string]*Series)}
}

// Track registers a probe under name. Must not be called after stepping
// starts for deterministic column order.
func (r *Recorder) Track(name string, probe func() float64) {
	if probe == nil {
		panic("telemetry: nil probe")
	}
	if _, dup := r.series[name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate probe %q", name))
	}
	r.names = append(r.names, name)
	r.probes = append(r.probes, probe)
	s := &Series{}
	if r.reserve > 0 {
		s.reserve(r.reserve)
	}
	r.series[name] = s
}

// Step implements sim.Component. The next sample time advances on the
// fixed grid (multiples of the interval) rather than re-anchoring on
// the tick that happened to cross it; re-anchoring stretched the
// cadence whenever the engine step did not divide the interval.
func (r *Recorder) Step(now, dt time.Duration) {
	if now < r.next {
		return
	}
	sec := now.Seconds()
	for i, name := range r.names {
		r.series[name].Append(sec, r.probes[i]())
	}
	for r.next <= now {
		r.next += r.interval
	}
}

// Reserve grows every tracked series' capacity to hold at least samples
// points, so a run of known horizon records without reallocating mid
// trace. Applies to probes already registered and to ones added later.
func (r *Recorder) Reserve(samples int) {
	if samples <= 0 {
		return
	}
	r.reserve = samples
	for _, s := range r.series {
		s.reserve(samples)
	}
}

// reserve grows the series' backing arrays to at least n points.
func (s *Series) reserve(n int) {
	if cap(s.Times) < n {
		tt := make([]float64, len(s.Times), n)
		copy(tt, s.Times)
		s.Times = tt
	}
	if cap(s.Values) < n {
		vv := make([]float64, len(s.Values), n)
		copy(vv, s.Values)
		s.Values = vv
	}
}

// Series returns the series recorded under name (nil if unknown).
func (r *Recorder) Series(name string) *Series { return r.series[name] }

// Names returns the tracked probe names in registration order.
func (r *Recorder) Names() []string { return append([]string(nil), r.names...) }

// BurstJaccard computes the Table 1 similarity between two throughput
// traces: both are resampled to bins bins over their own durations,
// bursts are bins above thresholdFrac of the *baseline's* peak, and the
// Jaccard index of the two burst sets is returned.
func BurstJaccard(baseline, other *Series, bins int, thresholdFrac float64) float64 {
	thr := baseline.Max() * thresholdFrac
	a := baseline.Bursts(bins, thr)
	b := other.Bursts(bins, thr)
	var inter, union int
	for i := range a {
		if a[i] && b[i] {
			inter++
		}
		if a[i] || b[i] {
			union++
		}
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// SortedNames returns the recorder's probe names sorted, for stable
// output in reports.
func (r *Recorder) SortedNames() []string {
	out := r.Names()
	sort.Strings(out)
	return out
}

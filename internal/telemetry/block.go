package telemetry

// Block is a fixed-grid multi-series arena: one shared time axis and a
// row of values per tracked signal, all backed by two contiguous
// allocations. It is the fleet-scale alternative to one Recorder probe
// per signal — a 10k-row block is two slices, not 10k map entries and
// 20k backing arrays — and its rows alias into Series views without
// copying, so reassembly stays allocation-light.
//
// A Block is written by exactly one goroutine (the shard that owns it)
// and read only after that shard has finished; it does no locking.
type Block struct {
	rows   int
	stride int // sample capacity per row
	n      int // samples written
	times  []float64
	vals   []float64 // rows × stride, row-major
}

// NewBlock builds a block for rows signals with capacity samples per
// row. Capacity is a starting estimate: Push grows the arena when the
// grid outruns it (adaptive horizon extensions), so an underestimate
// costs a copy, never correctness.
func NewBlock(rows, capacity int) *Block {
	if rows < 0 {
		panic("telemetry: NewBlock with negative rows")
	}
	if capacity < 1 {
		capacity = 1
	}
	return &Block{
		rows:   rows,
		stride: capacity,
		times:  make([]float64, 0, capacity),
		vals:   make([]float64, rows*capacity),
	}
}

// Reset re-shapes the block for reuse, keeping the backing arenas when
// they are large enough (the "arenas reused across cells" path).
func (b *Block) Reset(rows, capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	if cap(b.times) < capacity || cap(b.vals) < rows*capacity {
		*b = *NewBlock(rows, capacity)
		return
	}
	b.rows = rows
	b.stride = capacity
	b.n = 0
	b.times = b.times[:0]
	b.vals = b.vals[:rows*capacity]
}

// Push opens the next sample at time tSec and returns its index; the
// caller fills the column with Set. Times must not decrease.
func (b *Block) Push(tSec float64) int {
	if n := len(b.times); n > 0 && tSec < b.times[n-1] {
		panic("telemetry: block time went backwards")
	}
	if b.n == b.stride {
		b.grow()
	}
	b.times = append(b.times, tSec)
	b.n++
	return b.n - 1
}

// Set writes row's value for the sample at index k.
func (b *Block) Set(row, k int, v float64) { b.vals[row*b.stride+k] = v }

// At reads row's value for the sample at index k.
func (b *Block) At(row, k int) float64 { return b.vals[row*b.stride+k] }

// Len returns the number of samples pushed.
func (b *Block) Len() int { return b.n }

// Times returns the shared time axis (aliased, read-only).
func (b *Block) Times() []float64 { return b.times[:b.n] }

// Row returns row's values (aliased, read-only).
func (b *Block) Row(row int) []float64 {
	off := row * b.stride
	return b.vals[off : off+b.n : off+b.n]
}

// Series returns a Series view over row: it shares the block's time
// axis and the row's slice of the arena. Views are read-only — they
// must not be Appended to, or rows would overwrite each other.
func (b *Block) Series(row int) *Series {
	return &Series{Times: b.Times(), Values: b.Row(row)}
}

// AccumulateRows adds every row into out sample-by-sample, row by row
// in order — the same float addition order a serial fold over the
// signals would use, so chaining AccumulateRows over several blocks
// reproduces bit-identically a probe that summed all signals live in
// block-then-row order. The caller zeroes out; it must have length
// Len().
func (b *Block) AccumulateRows(out []float64) {
	if len(out) != b.n {
		panic("telemetry: AccumulateRows output length mismatch")
	}
	for r := 0; r < b.rows; r++ {
		row := b.Row(r)
		for k, v := range row {
			out[k] += v
		}
	}
}

// grow doubles the per-row capacity, repacking rows into a fresh arena.
func (b *Block) grow() {
	stride := b.stride * 2
	vals := make([]float64, b.rows*stride)
	for r := 0; r < b.rows; r++ {
		copy(vals[r*stride:], b.vals[r*b.stride:r*b.stride+b.n])
	}
	b.vals = vals
	b.stride = stride
	tt := make([]float64, b.n, stride)
	copy(tt, b.times)
	b.times = tt
}

package telemetry

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func ramp(n int, dt, slope float64) *Series {
	s := &Series{}
	for i := 0; i < n; i++ {
		s.Append(float64(i)*dt, float64(i)*slope)
	}
	return s
}

func TestSeriesBasics(t *testing.T) {
	s := &Series{}
	if s.Len() != 0 || s.Duration() != 0 || s.Mean() != 0 {
		t.Fatal("empty series not zero-valued")
	}
	s.Append(0, 10)
	if s.Mean() != 10 {
		t.Fatalf("single-point mean = %v", s.Mean())
	}
	s.Append(1, 20)
	s.Append(3, 50)
	if s.Len() != 3 || s.Duration() != 3 {
		t.Fatalf("len/duration = %d/%v", s.Len(), s.Duration())
	}
	// Step-held mean: 10 for 1s, 20 for 2s = 50/3.
	if got := s.Mean(); math.Abs(got-50.0/3) > 1e-12 {
		t.Fatalf("Mean = %v, want 16.67", got)
	}
	if got := s.Integrate(); math.Abs(got-50) > 1e-12 {
		t.Fatalf("Integrate = %v, want 50", got)
	}
	if s.Max() != 50 {
		t.Fatalf("Max = %v", s.Max())
	}
}

func TestAppendRejectsBackwardsTime(t *testing.T) {
	s := &Series{}
	s.Append(1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards Append did not panic")
		}
	}()
	s.Append(0.5, 0)
}

func TestMaxPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Max on empty series did not panic")
		}
	}()
	(&Series{}).Max()
}

func TestResample(t *testing.T) {
	// 100 samples, values 0..99 over 9.9s -> 10 bins averaging ~4.5,
	// 14.5, ...
	s := ramp(100, 0.1, 1)
	bins := s.Resample(10)
	if len(bins) != 10 {
		t.Fatalf("bins = %d", len(bins))
	}
	for i, b := range bins {
		want := float64(i)*10 + 4.5
		if math.Abs(b-want) > 1.0 {
			t.Fatalf("bin %d = %v, want ≈%v", i, b, want)
		}
	}
}

func TestResampleSampleAndHold(t *testing.T) {
	// Two points far apart: middle bins inherit the previous value.
	s := &Series{}
	s.Append(0, 5)
	s.Append(10, 9)
	bins := s.Resample(5)
	for i := 0; i < 4; i++ {
		if bins[i] != 5 {
			t.Fatalf("bin %d = %v, want held 5", i, bins[i])
		}
	}
	if bins[4] != 9 {
		t.Fatalf("last bin = %v, want 9", bins[4])
	}
}

func TestResampleValidation(t *testing.T) {
	s := ramp(10, 1, 1)
	for _, fn := range []func(){
		func() { s.Resample(0) },
		func() { (&Series{}).Resample(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid Resample did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestBursts(t *testing.T) {
	s := &Series{}
	for i := 0; i < 100; i++ {
		v := 10.0
		if i >= 40 && i < 60 {
			v = 100
		}
		s.Append(float64(i), v)
	}
	b := s.Bursts(10, 50)
	want := []bool{false, false, false, false, true, true, false, false, false, false}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bursts = %v, want %v", b, want)
		}
	}
}

func TestBurstJaccard(t *testing.T) {
	mk := func(shift int) *Series {
		s := &Series{}
		for i := 0; i < 200; i++ {
			v := 10.0
			if i >= 50+shift && i < 100+shift {
				v = 100
			}
			s.Append(float64(i), v)
		}
		return s
	}
	if got := BurstJaccard(mk(0), mk(0), 100, 0.5); got != 1 {
		t.Fatalf("identical traces Jaccard = %v", got)
	}
	shifted := BurstJaccard(mk(0), mk(20), 100, 0.5)
	if shifted >= 1 || shifted < 0.3 {
		t.Fatalf("shifted Jaccard = %v, want partial overlap", shifted)
	}
	// Flat traces (no bursts anywhere): defined as 1.
	flat := &Series{}
	flat2 := &Series{}
	for i := 0; i < 10; i++ {
		flat.Append(float64(i), 1)
		flat2.Append(float64(i), 1)
	}
	if got := BurstJaccard(flat, flat2, 10, 2.0); got != 1 {
		t.Fatalf("flat Jaccard = %v, want 1", got)
	}
}

// Property: BurstJaccard is bounded and equals 1 for identical traces.
func TestBurstJaccardProperties(t *testing.T) {
	prop := func(vals []uint16) bool {
		if len(vals) < 2 {
			return true
		}
		s := &Series{}
		for i, v := range vals {
			s.Append(float64(i), float64(v%1000))
		}
		j := BurstJaccard(s, s, 50, 0.5)
		return j == 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder(10 * time.Millisecond)
	var x float64
	r.Track("x", func() float64 { return x })
	r.Track("twice", func() float64 { return 2 * x })
	for i := 0; i < 100; i++ {
		x = float64(i)
		r.Step(time.Duration(i)*time.Millisecond, time.Millisecond)
	}
	s := r.Series("x")
	if s.Len() != 10 {
		t.Fatalf("sampled %d points, want 10", s.Len())
	}
	if got := r.Series("twice").Values[5]; got != 2*s.Values[5] {
		t.Fatalf("probe values inconsistent: %v vs %v", got, s.Values[5])
	}
	if r.Series("missing") != nil {
		t.Fatal("unknown series not nil")
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "x" || names[1] != "twice" {
		t.Fatalf("Names = %v", names)
	}
	sorted := r.SortedNames()
	if sorted[0] != "twice" || sorted[1] != "x" {
		t.Fatalf("SortedNames = %v", sorted)
	}
}

// TestRecorderGridCadence: with an interval the engine step does not
// divide, the recorder must keep sampling on the fixed grid (first tick
// at or past each multiple of the interval). The pre-fix code
// re-anchored next on the observed tick (next = now + interval), which
// stretched a 2.5 ms interval over 1 ms steps to samples at
// 0, 3, 6, 9, ... instead of the grid's 0, 3, 5, 8, 10, ...
func TestRecorderGridCadence(t *testing.T) {
	r := NewRecorder(2500 * time.Microsecond)
	r.Track("x", func() float64 { return 0 })
	for i := 0; i <= 10; i++ {
		r.Step(time.Duration(i)*time.Millisecond, time.Millisecond)
	}
	got := r.Series("x").Times
	want := []float64{0, 0.003, 0.005, 0.008, 0.010}
	if len(got) != len(want) {
		t.Fatalf("sample times = %v, want %v", got, want)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("sample %d at %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestRecorderValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewRecorder(0) },
		func() { NewRecorder(time.Second).Track("x", nil) },
		func() {
			r := NewRecorder(time.Second)
			r.Track("x", func() float64 { return 0 })
			r.Track("x", func() float64 { return 0 })
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid recorder use did not panic")
				}
			}()
			fn()
		}()
	}
}

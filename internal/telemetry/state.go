package telemetry

import (
	"fmt"
	"time"
)

// SeriesState is one tracked series' points, keyed by probe name so a
// restore can cross-check registration order.
type SeriesState struct {
	Name   string
	Times  []float64
	Values []float64
}

// State is a recorder's mutable state: the next sample deadline plus
// every series' points, in registration order. Probes themselves are
// construction wiring and must be re-registered identically before
// Restore.
type State struct {
	Next   time.Duration
	Series []SeriesState
}

// State captures the recorder.
func (r *Recorder) State() State {
	st := State{Next: r.next, Series: make([]SeriesState, 0, len(r.names))}
	for _, name := range r.names {
		s := r.series[name]
		st.Series = append(st.Series, SeriesState{
			Name:   name,
			Times:  append([]float64(nil), s.Times...),
			Values: append([]float64(nil), s.Values...),
		})
	}
	return st
}

// Restore overwrites a recorder with the same probes registered in the
// same order.
func (r *Recorder) Restore(st State) error {
	if len(st.Series) != len(r.names) {
		return fmt.Errorf("telemetry: restore has %d series, recorder tracks %d", len(st.Series), len(r.names))
	}
	for i, name := range r.names {
		if st.Series[i].Name != name {
			return fmt.Errorf("telemetry: restore series %d is %q, recorder tracks %q", i, st.Series[i].Name, name)
		}
	}
	r.next = st.Next
	for _, ss := range st.Series {
		s := r.series[ss.Name]
		s.Times = append(s.Times[:0], ss.Times...)
		s.Values = append(s.Values[:0], ss.Values...)
	}
	return nil
}

package telemetry

import (
	"math"
	"testing"
)

func TestBlockRowsAndSum(t *testing.T) {
	b := NewBlock(3, 2) // deliberately undersized: forces growth
	for k := 0; k < 5; k++ {
		idx := b.Push(float64(k) * 0.1)
		if idx != k {
			t.Fatalf("push %d returned index %d", k, idx)
		}
		for r := 0; r < 3; r++ {
			b.Set(r, idx, float64(r*10+k))
		}
	}
	if b.Len() != 5 {
		t.Fatalf("len %d", b.Len())
	}
	for r := 0; r < 3; r++ {
		row := b.Row(r)
		for k, v := range row {
			if want := float64(r*10 + k); v != want {
				t.Fatalf("row %d sample %d = %v, want %v", r, k, v, want)
			}
		}
	}
	s := b.Series(1)
	if s.Len() != 5 || s.Times[2] != 0.2 || s.Values[2] != 12 {
		t.Fatalf("series view wrong: %+v", s)
	}
	sum := make([]float64, 5)
	b.AccumulateRows(sum)
	for k, v := range sum {
		// rows 0,1,2 at sample k: k + (10+k) + (20+k)
		if want := float64(30 + 3*k); v != want {
			t.Fatalf("sum[%d] = %v, want %v", k, v, want)
		}
	}
}

// TestBlockSumOrder pins the canonical fold order: accumulation is row
// 0, 1, 2... per sample, matching a serial fold over the signals, so
// chained AccumulateRows is bitwise reproducible.
func TestBlockSumOrder(t *testing.T) {
	vals := []float64{1e16, 1.0, -1e16, 3.0}
	b := NewBlock(len(vals), 1)
	b.Push(0)
	for r, v := range vals {
		b.Set(r, 0, v)
	}
	var serial float64
	for _, v := range vals {
		serial += v
	}
	out := make([]float64, 1)
	b.AccumulateRows(out)
	if out[0] != serial {
		t.Fatalf("fold order differs from serial: %v vs %v", out[0], serial)
	}
}

func TestBlockReset(t *testing.T) {
	b := NewBlock(2, 8)
	b.Push(0)
	b.Set(0, 0, 1)
	b.Set(1, 0, 2)
	b.Reset(4, 4) // 4×4 = 16 ≤ old arena 2×8: reuse
	if b.Len() != 0 {
		t.Fatalf("reset kept %d samples", b.Len())
	}
	b.Push(1.5)
	for r := 0; r < 4; r++ {
		b.Set(r, 0, float64(r))
	}
	for r := 0; r < 4; r++ {
		if got := b.At(r, 0); got != float64(r) {
			t.Fatalf("after reset row %d = %v", r, got)
		}
	}
	// Growing reset reallocates.
	b.Reset(10, 100)
	if b.Len() != 0 || len(b.Row(9)) != 0 {
		t.Fatal("grow-reset not clean")
	}
}

func TestBlockTimeMonotonic(t *testing.T) {
	b := NewBlock(1, 4)
	b.Push(1.0)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards time accepted")
		}
	}()
	b.Push(0.5)
}

func TestBlockGrowthPreservesNaNAndValues(t *testing.T) {
	b := NewBlock(2, 1)
	b.Push(0)
	b.Set(0, 0, math.NaN())
	b.Set(1, 0, 7)
	b.Push(1) // grows
	b.Set(0, 1, 1)
	b.Set(1, 1, 8)
	if !math.IsNaN(b.At(0, 0)) || b.At(1, 0) != 7 || b.At(1, 1) != 8 {
		t.Fatalf("growth corrupted arena: %v %v %v", b.At(0, 0), b.At(1, 0), b.At(1, 1))
	}
}

package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestWasteTable(t *testing.T) {
	rows := []WasteRow{
		{Scope: "run", BaselineJ: 100, UsefulJ: 250, WasteJ: 50, TotalJ: 400, Seconds: 20},
		{Scope: "phase burst", BaselineJ: 40, UsefulJ: 200, WasteJ: 10, TotalJ: 250, Seconds: 8},
	}
	out := WasteTable(rows).String()
	for _, want := range []string{"scope", "waste_%", "balance_err_j", "run", "phase burst", "12.50", "400.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestWasteRowFrac(t *testing.T) {
	if got := (WasteRow{WasteJ: 25, TotalJ: 100}).WasteFracPct(); got != 25 {
		t.Errorf("WasteFracPct = %v, want 25", got)
	}
	if got := (WasteRow{}).WasteFracPct(); got != 0 {
		t.Errorf("zero-total WasteFracPct = %v, want 0", got)
	}
}

func TestWriteWasteCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteWasteCSV(&buf, []WasteRow{
		{Scope: "run", BaselineJ: 1, UsefulJ: 2, WasteJ: 1, TotalJ: 4, Seconds: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "scope,baseline_j") {
		t.Fatalf("csv output:\n%s", buf.String())
	}
	if !strings.Contains(lines[1], "run,1.0000,2.0000,1.0000,4.0000,25.00,2.000") {
		t.Errorf("csv row: %s", lines[1])
	}
	if err := WriteWasteCSV(&buf, nil); err == nil {
		t.Error("empty rows must error")
	}
}

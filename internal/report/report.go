// Package report renders experiment results for terminals and files:
// aligned ASCII tables (the magus-bench output), CSV series (for
// re-plotting the paper's figures with any plotting tool), and compact
// unicode sparklines for eyeballing traces inline.
package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/spear-repro/magus/internal/telemetry"
)

// Table accumulates rows and writes an aligned ASCII table.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; cells are stringified with %v, floats with
// two decimals.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = strconv.FormatFloat(v, 'f', 2, 64)
		case float32:
			row[i] = strconv.FormatFloat(float64(v), 'f', 2, 64)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Write renders the table to w.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = pad(c, w)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.headers)); err != nil {
		return err
	}
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(sep)); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Write(&b) // strings.Builder never errors
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// WriteCSV writes named series as columns against a shared time axis
// taken from the first series; series are sampled positionally (all
// recorder series share timestamps). Header: time_s,name1,name2,...
func WriteCSV(w io.Writer, names []string, series map[string]*telemetry.Series) error {
	if len(names) == 0 {
		return fmt.Errorf("report: no series to write")
	}
	first := series[names[0]]
	if first == nil {
		return fmt.Errorf("report: unknown series %q", names[0])
	}
	if _, err := fmt.Fprintf(w, "time_s,%s\n", strings.Join(names, ",")); err != nil {
		return err
	}
	for i := 0; i < first.Len(); i++ {
		cells := make([]string, 0, len(names)+1)
		cells = append(cells, strconv.FormatFloat(first.Times[i], 'f', 3, 64))
		for _, n := range names {
			s := series[n]
			if s == nil || i >= s.Len() {
				return fmt.Errorf("report: series %q shorter than time axis", n)
			}
			cells = append(cells, strconv.FormatFloat(s.Values[i], 'f', 4, 64))
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// sparkLevels are the eight block characters used by Sparkline.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a series as width unicode block characters scaled
// between the series min and max.
func Sparkline(s *telemetry.Series, width int) string {
	if s == nil || s.Len() < 2 || width < 1 {
		return ""
	}
	bins := s.Resample(width)
	lo, hi := bins[0], bins[0]
	for _, v := range bins {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	out := make([]rune, len(bins))
	for i, v := range bins {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkLevels)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkLevels) {
			idx = len(sparkLevels) - 1
		}
		out[i] = sparkLevels[idx]
	}
	return string(out)
}

package report

import (
	"fmt"
	"io"
)

// WasteRow is one attribution bucket of the spans ledger, flattened
// for tabular rendering. The package deliberately does not import
// internal/spans — callers (experiments, magus-bench) map ledger
// buckets into rows, keeping report dependency-light.
type WasteRow struct {
	// Scope names the bucket: "run", "window 3", a workload phase, or
	// a per-governor cell label.
	Scope string
	// BaselineJ / UsefulJ / WasteJ are the decomposed joules; TotalJ
	// is the independently integrated uncore energy.
	BaselineJ float64
	UsefulJ   float64
	WasteJ    float64
	TotalJ    float64
	// Seconds is the attributed virtual time × sockets.
	Seconds float64
}

// WasteFracPct returns waste as a percentage of total uncore energy.
func (r WasteRow) WasteFracPct() float64 {
	if r.TotalJ <= 0 {
		return 0
	}
	return r.WasteJ / r.TotalJ * 100
}

// WasteTable renders attribution rows as an aligned ASCII table with
// a trailing balance column so imbalances are visible at a glance.
func WasteTable(rows []WasteRow) *Table {
	t := NewTable("scope", "baseline_j", "useful_j", "waste_j", "total_j", "waste_%", "balance_err_j")
	for _, r := range rows {
		t.AddRow(r.Scope, r.BaselineJ, r.UsefulJ, r.WasteJ, r.TotalJ,
			r.WasteFracPct(), r.BaselineJ+r.UsefulJ+r.WasteJ-r.TotalJ)
	}
	return t
}

// WriteWasteCSV writes attribution rows as CSV for replotting.
func WriteWasteCSV(w io.Writer, rows []WasteRow) error {
	if len(rows) == 0 {
		return fmt.Errorf("report: no waste rows to write")
	}
	if _, err := fmt.Fprintln(w, "scope,baseline_j,useful_j,waste_j,total_j,waste_pct,seconds"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%.4f,%.4f,%.4f,%.4f,%.2f,%.3f\n",
			r.Scope, r.BaselineJ, r.UsefulJ, r.WasteJ, r.TotalJ, r.WasteFracPct(), r.Seconds); err != nil {
			return err
		}
	}
	return nil
}

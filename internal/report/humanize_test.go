package report

import (
	"math"
	"testing"
)

func TestHumanize(t *testing.T) {
	cases := []struct {
		v    float64
		unit string
		want string
	}{
		{0, "J", "0.00 J"},
		{2.41e6, "J", "2.41 MJ"},
		{431_000, "J", "431.00 kJ"},
		{3.5e9, "J", "3.50 GJ"},
		{1.2e12, "J", "1.20 TJ"},
		{842, "W", "842.00 W"},
		{1, "s", "1.00 s"},
		{0.0031, "s", "3.10 ms"},
		{4.2e-5, "s", "42.00 µs"},
		{7e-9, "s", "7.00 ns"},
		{3e-11, "s", "3.00e-11 s"},
		{-1500, "J", "-1.50 kJ"},
		{999.994, "W", "999.99 W"},
	}
	for _, c := range cases {
		if got := Humanize(c.v, c.unit); got != c.want {
			t.Errorf("Humanize(%v, %q) = %q, want %q", c.v, c.unit, got, c.want)
		}
	}
	if got := Humanize(math.Inf(1), "J"); got != "+Inf J" {
		t.Errorf("Humanize(+Inf) = %q", got)
	}
}

package report

import (
	"fmt"
	"math"
)

// Humanize renders a physical quantity with an SI magnitude prefix:
// Humanize(2.41e6, "J") == "2.41 MJ", Humanize(0.0031, "s") ==
// "3.10 ms". Fleet-scale outputs span nine orders of magnitude (a
// node-second of uncore waste to a 10k-node fleet's total energy);
// raw joule counts stop being readable long before that.
//
// Values in [1, 1000) keep their unit unprefixed; zero, NaN and ±Inf
// render without a prefix. Negative values keep their sign.
func Humanize(v float64, unit string) string {
	abs := math.Abs(v)
	if v == 0 || math.IsNaN(abs) || math.IsInf(abs, 0) {
		return fmt.Sprintf("%.2f %s", v, unit)
	}
	type scale struct {
		factor float64
		prefix string
	}
	scales := []scale{
		{1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"},
		{1, ""}, {1e-3, "m"}, {1e-6, "µ"}, {1e-9, "n"},
	}
	for _, s := range scales {
		if abs >= s.factor {
			return fmt.Sprintf("%.2f %s%s", v/s.factor, s.prefix, unit)
		}
	}
	// Below a nanounit: fall through to scientific notation rather
	// than inventing prefixes nothing in the simulator produces.
	return fmt.Sprintf("%.2e %s", v, unit)
}

package report

import (
	"strings"
	"testing"

	"github.com/spear-repro/magus/internal/telemetry"
)

func TestTableAlignment(t *testing.T) {
	tab := NewTable("App", "Loss%", "Saving%")
	tab.AddRow("bfs", 0.4, 25.8)
	tab.AddRow("particlefilter_naive", 2.234, 4.5)
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "App") {
		t.Fatalf("header line: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("separator line: %q", lines[1])
	}
	if !strings.Contains(lines[3], "2.23") {
		t.Fatalf("float formatting: %q", lines[3])
	}
	// Columns align: "Loss%" starts at the same offset in each row.
	col := strings.Index(lines[0], "Loss%")
	if lines[2][col:col+1] == " " && lines[3][col:col+1] == " " {
		t.Fatalf("column misaligned:\n%s", out)
	}
}

func TestWriteCSV(t *testing.T) {
	a := &telemetry.Series{}
	b := &telemetry.Series{}
	for i := 0; i < 3; i++ {
		a.Append(float64(i)*0.5, float64(i))
		b.Append(float64(i)*0.5, float64(i)*10)
	}
	var sb strings.Builder
	err := WriteCSV(&sb, []string{"a", "b"}, map[string]*telemetry.Series{"a": a, "b": b})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "time_s,a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 4 {
		t.Fatalf("csv rows = %d", len(lines))
	}
	if !strings.HasPrefix(lines[2], "0.500,1.0000,10.0000") {
		t.Fatalf("row 2 = %q", lines[2])
	}
}

func TestWriteCSVErrors(t *testing.T) {
	var sb strings.Builder
	if err := WriteCSV(&sb, nil, nil); err == nil {
		t.Fatal("empty names accepted")
	}
	if err := WriteCSV(&sb, []string{"x"}, map[string]*telemetry.Series{}); err == nil {
		t.Fatal("missing series accepted")
	}
	a := &telemetry.Series{}
	a.Append(0, 1)
	a.Append(1, 2)
	short := &telemetry.Series{}
	short.Append(0, 1)
	err := WriteCSV(&sb, []string{"a", "short"}, map[string]*telemetry.Series{"a": a, "short": short})
	if err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestSparkline(t *testing.T) {
	s := &telemetry.Series{}
	for i := 0; i < 100; i++ {
		s.Append(float64(i), float64(i%10))
	}
	line := Sparkline(s, 20)
	if len([]rune(line)) != 20 {
		t.Fatalf("sparkline width = %d", len([]rune(line)))
	}
	if Sparkline(nil, 10) != "" || Sparkline(&telemetry.Series{}, 10) != "" {
		t.Fatal("degenerate sparkline not empty")
	}
	// Flat series renders the lowest level everywhere.
	flat := &telemetry.Series{}
	flat.Append(0, 5)
	flat.Append(1, 5)
	for _, r := range Sparkline(flat, 5) {
		if r != '▁' {
			t.Fatalf("flat sparkline = %q", Sparkline(flat, 5))
		}
	}
}

func TestEmptyTable(t *testing.T) {
	tab := NewTable("A", "B")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("empty table lines = %d:\n%s", len(lines), out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tab := NewTable("A", "B", "C")
	tab.AddRow("only-one")
	out := tab.String()
	if !strings.Contains(out, "only-one") {
		t.Fatalf("ragged row lost:\n%s", out)
	}
}

func TestSparklineNegativeValues(t *testing.T) {
	s := &telemetry.Series{}
	for i := 0; i < 30; i++ {
		s.Append(float64(i), float64(i%7)-3)
	}
	line := Sparkline(s, 10)
	if len([]rune(line)) != 10 {
		t.Fatalf("negative-value sparkline width = %d", len([]rune(line)))
	}
}

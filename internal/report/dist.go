package report

import (
	"fmt"
	"io"
)

// DistRow is one distribution's quantile summary, flattened for
// tabular rendering. As with WasteRow, the package deliberately does
// not import internal/sketch — callers (experiments, magus-bench) map
// sketch summaries into rows, keeping report dependency-light.
type DistRow struct {
	// Metric names the distribution ("node power W", "uncore ratio", ...).
	Metric string
	// Count is the number of folded samples.
	Count uint64
	// Min, P50, P90, P99, Max are the five-number summary; Mean is the
	// sketch-derived arithmetic mean.
	Min  float64
	P50  float64
	P90  float64
	P99  float64
	Max  float64
	Mean float64
}

// DistTable renders quantile-summary rows as an aligned ASCII table.
func DistTable(rows []DistRow) *Table {
	t := NewTable("metric", "count", "min", "p50", "p90", "p99", "max", "mean")
	for _, r := range rows {
		t.AddRow(r.Metric, r.Count, r.Min, r.P50, r.P90, r.P99, r.Max, r.Mean)
	}
	return t
}

// WriteDistCSV writes quantile-summary rows as CSV for replotting.
func WriteDistCSV(w io.Writer, rows []DistRow) error {
	if len(rows) == 0 {
		return fmt.Errorf("report: no distribution rows to write")
	}
	if _, err := fmt.Fprintln(w, "metric,count,min,p50,p90,p99,max,mean"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%d,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n",
			r.Metric, r.Count, r.Min, r.P50, r.P90, r.P99, r.Max, r.Mean); err != nil {
			return err
		}
	}
	return nil
}

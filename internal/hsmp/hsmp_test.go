package hsmp

import (
	"errors"
	"testing"
	"time"

	"github.com/spear-repro/magus/internal/core"
	"github.com/spear-repro/magus/internal/msr"
	"github.com/spear-repro/magus/internal/node"
	"github.com/spear-repro/magus/internal/workload"
)

func newAMD(t *testing.T) (*node.Node, *Mailbox) {
	t.Helper()
	cfg := AMDEpycMI250()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	n := node.New(cfg)
	return n, NewMailbox(n)
}

func stepFor(n *node.Node, d time.Duration) {
	for t := time.Duration(0); t < d; t += time.Millisecond {
		n.Step(t, time.Millisecond)
	}
}

func TestPstateLevels(t *testing.T) {
	_, mb := newAMD(t)
	lv := mb.Levels()
	if len(lv) != 4 {
		t.Fatalf("levels = %v", lv)
	}
	if lv[0] != 2.0 || lv[3] != 0.8 {
		t.Fatalf("P0/P3 = %v/%v, want fabric range ends", lv[0], lv[3])
	}
	for i := 1; i < len(lv); i++ {
		if lv[i] >= lv[i-1] {
			t.Fatalf("levels not descending: %v", lv)
		}
	}
}

func TestSetDFPstateControlsFabric(t *testing.T) {
	n, mb := newAMD(t)
	stepFor(n, 100*time.Millisecond)
	if f := n.UncoreFreqGHz(0); f < 1.95 {
		t.Fatalf("auto fabric = %v, want ≈2.0", f)
	}
	for sock := 0; sock < 2; sock++ {
		if _, err := mb.Call(sock, SetDFPstate, []uint32{3}); err != nil {
			t.Fatal(err)
		}
	}
	stepFor(n, 100*time.Millisecond)
	for sock := 0; sock < 2; sock++ {
		if f := n.UncoreFreqGHz(sock); f > 0.85 {
			t.Fatalf("fabric socket %d = %v after P3, want ≈0.8", sock, f)
		}
	}
	resp, err := mb.Call(0, GetDFPstate, nil)
	if err != nil || resp[0] != 3 {
		t.Fatalf("GetDFPstate = %v, %v", resp, err)
	}
	// Auto restores the fast state.
	if _, err := mb.Call(0, SetDFPstate, []uint32{AutoPstate}); err != nil {
		t.Fatal(err)
	}
	stepFor(n, 100*time.Millisecond)
	if f := n.UncoreFreqGHz(0); f < 1.95 {
		t.Fatalf("fabric after auto = %v", f)
	}
}

func TestTelemetryMessages(t *testing.T) {
	n, mb := newAMD(t)
	n.SetDemand(workload.Demand{MemGBs: 200, CPUBusyCores: 16, MemBoundFrac: 0.5})
	stepFor(n, 200*time.Millisecond)

	resp, err := mb.Call(0, GetSocketPower, nil)
	if err != nil {
		t.Fatal(err)
	}
	if w := float64(resp[0]) / 1000; w < 50 || w > 360 {
		t.Fatalf("socket power = %v W", w)
	}

	resp, err = mb.Call(0, GetDDRBandwidth, nil)
	if err != nil {
		t.Fatal(err)
	}
	maxBW, used := float64(resp[0])/10, float64(resp[1])/10
	if maxBW != 230 {
		t.Fatalf("max BW = %v", maxBW)
	}
	if used < 95 || used > 105 { // 200 GB/s over 2 sockets
		t.Fatalf("utilized BW = %v, want ≈100", used)
	}
	if resp[2] < 40 || resp[2] > 50 {
		t.Fatalf("util%% = %d", resp[2])
	}

	resp, err = mb.Call(0, GetFclkMclk, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp[0] < 1950 || resp[0] > 2050 || resp[1] != 3200 {
		t.Fatalf("fclk/mclk = %v", resp)
	}
}

func TestMailboxErrors(t *testing.T) {
	_, mb := newAMD(t)
	if _, err := mb.Call(5, GetSocketPower, nil); !errors.Is(err, ErrBadSocket) {
		t.Fatalf("bad socket: %v", err)
	}
	if _, err := mb.Call(0, Function(0xFF), nil); !errors.Is(err, ErrBadFunction) {
		t.Fatalf("bad function: %v", err)
	}
	if _, err := mb.Call(0, SetDFPstate, nil); !errors.Is(err, ErrBadArgument) {
		t.Fatalf("missing arg: %v", err)
	}
	if _, err := mb.Call(0, SetDFPstate, []uint32{9}); !errors.Is(err, ErrBadArgument) {
		t.Fatalf("bad pstate: %v", err)
	}
}

func TestFabricDeviceAdapter(t *testing.T) {
	n, mb := newAMD(t)
	env := BuildEnv(n, mb)
	if err := env.Validate(); err != nil {
		t.Fatal(err)
	}
	// A ratio-limit write quantises to the nearest P-state.
	if err := env.SetUncoreMax(0.9); err != nil {
		t.Fatal(err)
	}
	resp, _ := mb.Call(0, GetDFPstate, nil)
	if resp[0] != 3 { // 0.9 GHz rounds to P3 (0.8)
		t.Fatalf("P-state after 0.9 GHz write = %d, want 3", resp[0])
	}
	if err := env.SetUncoreMax(1.5); err != nil {
		t.Fatal(err)
	}
	resp, _ = mb.Call(0, GetDFPstate, nil)
	if lv := mb.Levels()[resp[0]]; lv < 1.2 || lv > 1.6 {
		t.Fatalf("1.5 GHz write mapped to %v GHz", lv)
	}
	// Registers without an HSMP equivalent are rejected.
	if _, err := env.Dev.Read(0, msr.FixedCtrInstRetired); err == nil {
		t.Fatal("fixed-counter read accepted on AMD")
	}
	if err := env.Dev.Write(0, msr.PkgPowerLimit, 1); err == nil {
		t.Fatal("power-limit write accepted on AMD")
	}
}

// The §6.6 claim, end to end: the unmodified MAGUS runtime drives the
// EPYC-style node through the HSMP adapter and saves energy on a GPU
// workload with bounded loss.
func TestMAGUSOnAMDFabric(t *testing.T) {
	cfg := AMDEpycMI250()
	prog, ok := workload.ByName("unet")
	if !ok {
		t.Fatal("unet missing")
	}
	run := func(attachMagus bool) (runtime, cpuJ, gpuJ float64) {
		n := node.New(cfg)
		mb := NewMailbox(n)
		runner := workload.NewRunner(prog, cfg.SystemBWGBs(), 1)
		runner.SetAttained(n.AttainedGBs)
		var m *core.MAGUS
		if attachMagus {
			m = core.New(core.DefaultConfig())
			if err := m.Attach(BuildEnv(n, mb)); err != nil {
				t.Fatal(err)
			}
		}
		var now time.Duration
		next := time.Duration(0)
		for !runner.Done() && now < 5*time.Minute {
			if m != nil && now >= next {
				d := m.Invoke(now)
				if d <= 0 {
					d = m.Interval()
				}
				next = now + d
			}
			runner.Step(now, time.Millisecond)
			n.SetDemand(runner.Demand())
			n.Step(now, time.Millisecond)
			now += time.Millisecond
		}
		if !runner.Done() {
			t.Fatal("run did not complete")
		}
		pkgJ, drmJ, gJ := n.EnergyJ()
		return runner.Elapsed().Seconds(), pkgJ + drmJ, gJ
	}

	baseT, baseCPU, baseGPU := run(false)
	magT, magCPU, magGPU := run(true)

	loss := (magT - baseT) / baseT * 100
	if loss > 5 {
		t.Fatalf("MAGUS-on-AMD perf loss = %.1f %%", loss)
	}
	saving := (baseCPU + baseGPU - magCPU - magGPU) / (baseCPU + baseGPU) * 100
	if saving < 2 {
		t.Fatalf("MAGUS-on-AMD energy saving = %.1f %%, want clearly positive", saving)
	}
}

// Package hsmp models AMD's Host System Management Port — the
// mailbox interface the amd_hsmp driver exposes on EPYC systems — far
// enough to demonstrate the paper's §6.6 claim: MAGUS's core logic
// ports to non-Intel processors whose "uncore" is the Infinity
// Fabric, provided the platform offers (a) a memory-bandwidth
// telemetry source and (b) a fabric frequency control.
//
// On EPYC those are the HSMP GET_DDR_BANDWIDTH telemetry message and
// the APB/Data-Fabric P-state control (SET_DF_PSTATE, four discrete
// states P0–P3). This package implements the mailbox over the node
// simulator and an msr.Device adapter that translates the runtime's
// uncore ratio-limit writes into DF P-state selections — so the
// unmodified MAGUS (and any other governor that only touches the
// uncore limit) drives an AMD-style node end to end.
package hsmp

import (
	"fmt"
	"sync"

	"github.com/spear-repro/magus/internal/governor"
	"github.com/spear-repro/magus/internal/msr"
	"github.com/spear-repro/magus/internal/node"
	"github.com/spear-repro/magus/internal/pcm"
	"github.com/spear-repro/magus/internal/power"
)

// Function is an HSMP mailbox message identifier. Values follow the
// amd_hsmp driver's message enumeration shape (not byte-exact).
type Function uint32

// Supported mailbox functions.
const (
	// GetSocketPower returns the socket's power draw in mW.
	GetSocketPower Function = 0x04
	// GetDDRBandwidth returns [maxBW, utilizedBW, utilPct] with
	// bandwidths in GB/s ×10 (the driver reports tenths).
	GetDDRBandwidth Function = 0x14
	// SetDFPstate pins the Data-Fabric P-state (arg: 0..3, lower is
	// faster); arg 0xFFFFFFFF restores automatic selection.
	SetDFPstate Function = 0x06
	// GetDFPstate reports the current fabric P-state.
	GetDFPstate Function = 0x07
	// GetFclkMclk returns [fabric clock MHz, memory clock MHz].
	GetFclkMclk Function = 0x08
)

// AutoPstate is the SetDFPstate argument restoring automatic control.
const AutoPstate = 0xFFFFFFFF

// Errors.
var (
	ErrBadSocket   = fmt.Errorf("hsmp: socket out of range")
	ErrBadFunction = fmt.Errorf("hsmp: unsupported function")
	ErrBadArgument = fmt.Errorf("hsmp: bad argument")
)

// Mailbox is the simulated HSMP endpoint for one node. P-state writes
// land on the node's uncore (fabric) limit; telemetry reads come from
// the node's live state. Safe for concurrent use.
type Mailbox struct {
	mu     sync.Mutex
	node   *node.Node
	levels []float64 // fabric GHz per P-state, P0 first (fastest)
	cur    []int     // current P-state per socket (-1 = auto)
}

// NewMailbox builds a mailbox over n. The four DF P-states are spread
// evenly across the node's uncore (fabric) frequency range.
func NewMailbox(n *node.Node) *Mailbox {
	cfg := n.Config()
	levels := make([]float64, 4)
	span := cfg.UncoreMaxGHz - cfg.UncoreMinGHz
	for i := range levels {
		levels[i] = cfg.UncoreMaxGHz - span*float64(i)/3
	}
	cur := make([]int, cfg.Sockets)
	for i := range cur {
		cur[i] = -1 // auto
	}
	return &Mailbox{node: n, levels: levels, cur: cur}
}

// Levels returns the fabric frequency (GHz) of each DF P-state.
func (m *Mailbox) Levels() []float64 { return append([]float64(nil), m.levels...) }

// Call executes one mailbox message and returns its response words.
func (m *Mailbox) Call(socket int, fn Function, args []uint32) ([]uint32, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cfg := m.node.Config()
	if socket < 0 || socket >= cfg.Sockets {
		return nil, fmt.Errorf("%w: %d", ErrBadSocket, socket)
	}
	switch fn {
	case GetSocketPower:
		mw := uint32(m.node.PkgPowerW(socket) * 1000)
		return []uint32{mw}, nil

	case GetDDRBandwidth:
		maxBW := cfg.BWAt(cfg.UncoreMaxGHz)
		served := m.node.AttainedGBs() / float64(cfg.Sockets)
		utilPct := uint32(0)
		if maxBW > 0 {
			utilPct = uint32(served / maxBW * 100)
		}
		return []uint32{uint32(maxBW * 10), uint32(served * 10), utilPct}, nil

	case SetDFPstate:
		if len(args) != 1 {
			return nil, fmt.Errorf("%w: SetDFPstate wants 1 arg", ErrBadArgument)
		}
		if args[0] == AutoPstate {
			m.cur[socket] = -1
			return nil, m.writeFabric(socket, cfg.UncoreMaxGHz)
		}
		p := int(args[0])
		if p < 0 || p >= len(m.levels) {
			return nil, fmt.Errorf("%w: P-state %d", ErrBadArgument, p)
		}
		m.cur[socket] = p
		return nil, m.writeFabric(socket, m.levels[p])

	case GetDFPstate:
		p := m.cur[socket]
		if p < 0 {
			// Auto: report the state nearest the live frequency.
			p = m.nearestLevel(m.node.UncoreFreqGHz(socket))
		}
		return []uint32{uint32(p)}, nil

	case GetFclkMclk:
		fclk := uint32(m.node.UncoreFreqGHz(socket) * 1000)
		mclk := uint32(3200) // DDR transfer clock, fixed
		return []uint32{fclk, mclk}, nil
	}
	return nil, fmt.Errorf("%w: %#x", ErrBadFunction, uint32(fn))
}

// writeFabric pins the fabric limit through the node's register file
// (the fabric and the Intel uncore share the node's limit plumbing).
func (m *Mailbox) writeFabric(socket int, ghz float64) error {
	dev := m.node.MSRDevice()
	cpu := m.node.Space().FirstCPUOf(socket)
	old, err := dev.Read(cpu, msr.UncoreRatioLimit)
	if err != nil {
		return err
	}
	return dev.Write(cpu, msr.UncoreRatioLimit, msr.WithUncoreMax(old, ghz*1e9))
}

// nearestLevel maps a frequency to the closest P-state index.
func (m *Mailbox) nearestLevel(ghz float64) int {
	best, bestD := 0, -1.0
	for i, l := range m.levels {
		d := l - ghz
		if d < 0 {
			d = -d
		}
		if bestD < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// fabricDevice adapts the HSMP mailbox to the msr.Device interface the
// runtimes drive: uncore ratio-limit writes become DF P-state
// selections quantised to the four fabric states; reads synthesise the
// register from the current P-state. Any other register is rejected —
// on AMD there is no Intel-style PCM/fixed-counter surface, which is
// exactly why MAGUS's single-signal design matters for portability
// (UPS, which sweeps per-core Intel counters, cannot attach).
type fabricDevice struct {
	mb *Mailbox
}

// Read implements msr.Device.
func (d fabricDevice) Read(cpu int, reg uint32) (uint64, error) {
	if reg != msr.UncoreRatioLimit {
		return 0, fmt.Errorf("%w: register %#x has no HSMP equivalent", ErrBadFunction, reg)
	}
	cfg := d.mb.node.Config()
	socket := d.mb.node.Space().SocketOf(cpu)
	resp, err := d.mb.Call(socket, GetDFPstate, nil)
	if err != nil {
		return 0, err
	}
	ghz := d.mb.levels[resp[0]]
	return msr.EncodeUncoreLimit(ghz*1e9, cfg.UncoreMinGHz*1e9), nil
}

// Write implements msr.Device.
func (d fabricDevice) Write(cpu int, reg uint32, val uint64) error {
	if reg != msr.UncoreRatioLimit {
		return fmt.Errorf("%w: register %#x has no HSMP equivalent", ErrBadFunction, reg)
	}
	maxHz, _ := msr.DecodeUncoreLimit(val)
	socket := d.mb.node.Space().SocketOf(cpu)
	p := d.mb.nearestLevel(maxHz / 1e9)
	_, err := d.mb.Call(socket, SetDFPstate, []uint32{uint32(p)})
	return err
}

// BuildEnv wires a governor environment for an AMD-style node: fabric
// control through the HSMP adapter, memory throughput from the node's
// DDR traffic telemetry. RAPL is absent (AMD exposes socket power via
// the mailbox instead), so IPC-sweeping governors cannot attach —
// MAGUS can.
func BuildEnv(n *node.Node, mb *Mailbox) *governor.Env {
	cfg := n.Config()
	return &governor.Env{
		Dev:          fabricDevice{mb: mb},
		PCM:          pcm.New(n.ServedGB),
		Sockets:      cfg.Sockets,
		CPUs:         cfg.Sockets * cfg.CoresPerSocket,
		FirstCPU:     n.Space().FirstCPUOf,
		UncoreMinGHz: cfg.UncoreMinGHz,
		UncoreMaxGHz: cfg.UncoreMaxGHz,
		Charge:       n.AddDaemonBusy,
	}
}

// AMDEpycMI250 returns an EPYC-class heterogeneous node: two 64-core
// sockets whose Infinity Fabric spans 0.8–2.0 GHz, with one MI250-like
// accelerator. Power coefficients follow the same calibration
// methodology as the Intel presets (DESIGN.md §2); the fabric's
// dynamic range is a somewhat smaller share of package power than an
// Ice Lake uncore, as EPYC measurements suggest.
func AMDEpycMI250() node.Config {
	return node.Config{
		Name:           "AMD+MI250",
		Sockets:        2,
		CoresPerSocket: 64,
		CoreMinGHz:     1.5,
		CoreBaseGHz:    2.4,
		CoreMaxGHz:     3.7,
		UncoreMinGHz:   0.8,
		UncoreMaxGHz:   2.0,
		TDPWatts:       360,
		BWPerSocketGBs: 230,
		BWFloorFrac:    0.18,
		Core:           power.CoreParams{IdleWatts: 45, MaxPerCoreWatts: 2.2, FreqExp: 2.4},
		Uncore:         power.UncoreParams{BaseWatts: 9, DynMaxWatts: 38, TrafficWattsPerGBs: 0.03},
		Dram:           power.DramParams{IdleWatts: 11, WattsPerGBs: 0.14},
		GPUs: []node.GPUSpec{{
			Model:        "MI250",
			Power:        power.GPUParams{IdleWatts: 90, MaxWatts: 560, ComputeShare: 0.7},
			IdleClockMHz: 800,
			MaxClockMHz:  1700,
		}},
		UncoreTau: 6e6, // 6 ms, as time.Duration nanoseconds
		CoreTau:   5e6,
		GPUTau:    25e6,
		TDPClamp:  true,
		CoreIPC:   2.0,
	}
}

package cpufreq

import (
	"testing"
	"testing/quick"
	"time"
)

func newTest() *PState { return New(0.8, 2.3, 3.4, 5*time.Millisecond) }

func TestTargetShape(t *testing.T) {
	p := newTest()
	if got := p.Target(0); got != 0.8 {
		t.Fatalf("idle target = %v, want min", got)
	}
	if got := p.Target(1); got != 3.4 {
		t.Fatalf("saturated target = %v, want turbo", got)
	}
	if got := p.Target(0.5); got != 2.3 {
		t.Fatalf("mid target = %v, want base", got)
	}
	if got := p.Target(0.25); got <= 0.8 || got >= 2.3 {
		t.Fatalf("quarter target = %v, want in (min, base)", got)
	}
}

func TestStepConvergesToTarget(t *testing.T) {
	p := newTest()
	for i := 0; i < 100; i++ {
		p.Step(1.0, time.Millisecond)
	}
	if got := p.Current(); got < 3.39 {
		t.Fatalf("after sustained load freq = %v, want ≈3.4", got)
	}
	for i := 0; i < 100; i++ {
		p.Step(0, time.Millisecond)
	}
	if got := p.Current(); got > 0.81 {
		t.Fatalf("after idle freq = %v, want ≈0.8", got)
	}
}

func TestStepIsGradual(t *testing.T) {
	p := newTest()
	f1 := p.Step(1.0, time.Millisecond)
	if f1 >= 3.4 {
		t.Fatalf("one step jumped to turbo: %v", f1)
	}
	if f1 <= 0.8 {
		t.Fatalf("one step did not move: %v", f1)
	}
}

func TestReset(t *testing.T) {
	p := newTest()
	p.Step(1, time.Second)
	p.Reset()
	if p.Current() != 0.8 {
		t.Fatalf("Reset: current = %v", p.Current())
	}
}

func TestNewValidation(t *testing.T) {
	cases := [][4]float64{
		{0, 2, 3, 1}, {2, 1, 3, 1}, {1, 3, 2, 1}, {1, 2, 3, 0},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", c)
				}
			}()
			New(c[0], c[1], c[2], time.Duration(c[3])*time.Millisecond)
		}()
	}
}

// Properties: frequency always stays in [min, max] and the target is
// monotone in utilisation.
func TestFrequencyBounds(t *testing.T) {
	prop := func(utils []uint8) bool {
		p := newTest()
		prevTarget := p.Target(0)
		for u := 0; u <= 100; u++ {
			tgt := p.Target(float64(u) / 100)
			if tgt < prevTarget-1e-12 {
				return false
			}
			prevTarget = tgt
		}
		for _, u := range utils {
			f := p.Step(float64(u%101)/100, time.Millisecond)
			if f < 0.8-1e-9 || f > 3.4+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Package cpufreq models the hardware core-DVFS behaviour of modern
// Xeons (HWP / intel_pstate in its default autonomous mode): each core's
// frequency tracks its utilisation between the minimum and turbo
// frequencies with a short first-order response. Figure 1a of the paper
// shows exactly this — core frequencies bouncing with workload demand
// while the uncore stays pinned.
package cpufreq

import (
	"fmt"
	"time"
)

// PState is one core's autonomous frequency controller. The zero value
// is unusable; construct with New.
type PState struct {
	MinGHz  float64
	BaseGHz float64
	MaxGHz  float64 // single-core turbo
	// Tau is the response time constant of frequency transitions
	// (hardware P-state transitions settle within a few ms).
	Tau time.Duration

	cur float64
}

// New returns a controller initialised at the minimum frequency.
func New(minGHz, baseGHz, maxGHz float64, tau time.Duration) *PState {
	if !(0 < minGHz && minGHz <= baseGHz && baseGHz <= maxGHz) || tau <= 0 {
		panic(fmt.Sprintf("cpufreq: invalid pstate %v/%v/%v tau=%v", minGHz, baseGHz, maxGHz, tau))
	}
	return &PState{MinGHz: minGHz, BaseGHz: baseGHz, MaxGHz: maxGHz, Tau: tau, cur: minGHz}
}

// Target returns the steady-state frequency for a utilisation in [0,1]:
// idle cores park at the minimum; moderately busy cores run near base;
// saturated cores take turbo.
func (p *PState) Target(util float64) float64 {
	switch {
	case util <= 0.02:
		return p.MinGHz
	case util >= 0.9:
		return p.MaxGHz
	case util <= 0.5:
		// ramp min -> base over [0, 0.5]
		return p.MinGHz + (p.BaseGHz-p.MinGHz)*(util/0.5)
	default:
		// ramp base -> max over [0.5, 0.9]
		return p.BaseGHz + (p.MaxGHz-p.BaseGHz)*((util-0.5)/0.4)
	}
}

// Step advances the controller by dt under the given utilisation and
// returns the new operating frequency in GHz.
func (p *PState) Step(util float64, dt time.Duration) float64 {
	alpha := float64(dt) / float64(p.Tau)
	if alpha > 1 {
		alpha = 1
	}
	return p.StepAlpha(util, alpha)
}

// StepAlpha is Step with the blend factor alpha = min(1, dt/Tau)
// precomputed by the caller. A node steps every core with the same dt
// and Tau, so hoisting the division out of the per-core loop removes
// one float division per core per tick without changing a bit of the
// result.
func (p *PState) StepAlpha(util, alpha float64) float64 {
	target := p.Target(util)
	p.cur += (target - p.cur) * alpha
	return p.cur
}

// Current returns the operating frequency in GHz.
func (p *PState) Current() float64 { return p.cur }

// SetCurrent overwrites the operating frequency — the checkpoint
// restore path; normal operation goes through Step.
func (p *PState) SetCurrent(ghz float64) { p.cur = ghz }

// Reset forces the controller back to the minimum frequency.
func (p *PState) Reset() { p.cur = p.MinGHz }

package faults

import (
	"fmt"
	"sort"
	"time"
)

// InjectorState is one injector's generator position and tally.
type InjectorState struct {
	Seed  int64
	Draws uint64
	Tally Tally
}

// PCMState is the pcm wrapper's hold-last cache.
type PCMState struct {
	LastGood float64
	LastLat  time.Duration
}

// StaleEntry is one remembered register value in a device wrapper.
type StaleEntry struct {
	CPU int
	Reg uint32
	Val uint64
}

// DeviceState is the msr device wrapper's stale cache.
type DeviceState struct {
	Stale   []StaleEntry
	LastLat time.Duration
}

// BoardEntry is one remembered per-GPU sample in a board wrapper.
type BoardEntry struct {
	Index    int
	PowerW   float64
	ClockMHz float64
	SM       float64
	Mem      float64
	EnergyJ  float64
}

// BoardState is the nvml board wrapper's hold-last cache.
type BoardState struct {
	Last []BoardEntry
}

// SetState is a wrapper set's full mutable state. Wrappers and
// injectors are listed in creation order, which is deterministic: the
// harness wires devices in a fixed sequence, so a set rebuilt from the
// same plan over the same wiring produces matching lists.
type SetState struct {
	Injectors []InjectorState
	PCMs      []PCMState
	Devices   []DeviceState
	Boards    []BoardState
}

// State captures every injector stream and wrapper cache the set
// handed out. Nil for a nil or unarmed set.
func (s *Set) State() *SetState {
	if s == nil || len(s.injectors) == 0 && len(s.pcms) == 0 && len(s.devices) == 0 && len(s.boards) == 0 {
		return nil
	}
	st := &SetState{}
	for _, in := range s.injectors {
		st.Injectors = append(st.Injectors, InjectorState{
			Seed:  in.seed,
			Draws: in.src.Draws(),
			Tally: in.tally,
		})
	}
	for _, p := range s.pcms {
		st.PCMs = append(st.PCMs, PCMState{LastGood: p.lastGood, LastLat: p.lastLat})
	}
	for _, d := range s.devices {
		ds := DeviceState{LastLat: d.lastLat}
		for k, v := range d.stale {
			ds.Stale = append(ds.Stale, StaleEntry{CPU: k.cpu, Reg: k.reg, Val: v})
		}
		sort.Slice(ds.Stale, func(i, j int) bool {
			a, b := ds.Stale[i], ds.Stale[j]
			if a.CPU != b.CPU {
				return a.CPU < b.CPU
			}
			return a.Reg < b.Reg
		})
		st.Devices = append(st.Devices, ds)
	}
	for _, b := range s.boards {
		bs := BoardState{}
		for i, smp := range b.last {
			bs.Last = append(bs.Last, BoardEntry{
				Index: i, PowerW: smp.powerW, ClockMHz: smp.clockMHz,
				SM: smp.sm, Mem: smp.mem, EnergyJ: smp.energyJ,
			})
		}
		sort.Slice(bs.Last, func(i, j int) bool { return bs.Last[i].Index < bs.Last[j].Index })
		st.Boards = append(st.Boards, bs)
	}
	return st
}

// Restore fast-forwards every injector and overwrites every wrapper
// cache. The set must have been rebuilt from the same plan with the
// same wrapping sequence; seeds are cross-checked to catch drift.
func (s *Set) Restore(st *SetState) error {
	if st == nil {
		if s != nil && len(s.injectors) > 0 {
			return fmt.Errorf("faults: restore has no state but set has %d injectors", len(s.injectors))
		}
		return nil
	}
	if s == nil {
		return fmt.Errorf("faults: restore state for a nil set")
	}
	if len(st.Injectors) != len(s.injectors) || len(st.PCMs) != len(s.pcms) ||
		len(st.Devices) != len(s.devices) || len(st.Boards) != len(s.boards) {
		return fmt.Errorf("faults: restore shape %d/%d/%d/%d, set has %d/%d/%d/%d",
			len(st.Injectors), len(st.PCMs), len(st.Devices), len(st.Boards),
			len(s.injectors), len(s.pcms), len(s.devices), len(s.boards))
	}
	for i, in := range s.injectors {
		isp := st.Injectors[i]
		if isp.Seed != in.seed {
			return fmt.Errorf("faults: restore injector %d seed %d, set built with %d", i, isp.Seed, in.seed)
		}
		in.src.Restore(isp.Seed, isp.Draws)
		in.tally = isp.Tally
	}
	for i, p := range s.pcms {
		p.lastGood = st.PCMs[i].LastGood
		p.lastLat = st.PCMs[i].LastLat
	}
	for i, d := range s.devices {
		ds := st.Devices[i]
		d.stale = make(map[staleKey]uint64, len(ds.Stale))
		for _, e := range ds.Stale {
			d.stale[staleKey{cpu: e.CPU, reg: e.Reg}] = e.Val
		}
		d.lastLat = ds.LastLat
	}
	for i, b := range s.boards {
		bs := st.Boards[i]
		b.last = nil
		for _, e := range bs.Last {
			b.remember(e.Index, boardSample{
				powerW: e.PowerW, clockMHz: e.ClockMHz,
				sm: e.SM, mem: e.Mem, energyJ: e.EnergyJ,
			})
		}
	}
	return nil
}

package faults

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/spear-repro/magus/internal/detrand"
	"github.com/spear-repro/magus/internal/msr"
	"github.com/spear-repro/magus/internal/nvml"
	"github.com/spear-repro/magus/internal/pcm"
)

// Tally counts injections by class.
type Tally struct {
	Errors, Stalls, Stales, Wilds, Losses uint64
}

// Total sums the tally across classes.
func (t Tally) Total() uint64 {
	return t.Errors + t.Stalls + t.Stales + t.Wilds + t.Losses
}

func (t *Tally) add(o Tally) {
	t.Errors += o.Errors
	t.Stalls += o.Stalls
	t.Stales += o.Stales
	t.Wilds += o.Wilds
	t.Losses += o.Losses
}

// action is the composite fault outcome for one device access.
type action struct {
	err   bool // fail the access
	stall time.Duration
	stale bool
	wild  bool
}

// injector evaluates one target's schedule against the virtual clock.
// Each wrapped device instance owns its injector (and its generator),
// so the injection sequence on one device never depends on how many
// other devices the plan also wraps.
type injector struct {
	faults []Fault
	seed   int64
	src    *detrand.Source
	rng    *rand.Rand
	tally  Tally
}

// newInjector builds an injector over the plan's faults for target;
// nil when the plan schedules nothing there. salt separates generator
// streams across targets and instances.
func newInjector(p *Plan, target Target, salt int64) *injector {
	if !p.Armed() || !p.targets(target) {
		return nil
	}
	var fs []Fault
	for _, f := range p.Faults {
		if f.Target == target {
			fs = append(fs, f)
		}
	}
	// The generator rides on a counting source so checkpoints can
	// capture the stream position; values are bit-identical to a bare
	// rand.NewSource (see internal/detrand).
	seed := p.seed() + salt
	src := detrand.NewSource(seed)
	return &injector{faults: fs, seed: seed, src: src, rng: rand.New(src)}
}

// decide rolls the schedule at virtual time now. The generator is
// consumed only for faults with a fractional rate, so all-or-nothing
// plans are rng-free and windows compose deterministically.
func (in *injector) decide(now time.Duration) action {
	var a action
	if in == nil {
		return a
	}
	for _, f := range in.faults {
		if !f.active(now) {
			continue
		}
		if r := f.rate(); r < 1 && in.rng.Float64() >= r {
			continue
		}
		switch f.Class {
		case ClassError:
			a.err = true
			in.tally.Errors++
		case ClassLoss:
			a.err = true
			in.tally.Losses++
		case ClassStall:
			a.stall += f.stall()
			in.tally.Stalls++
		case ClassStale:
			a.stale = true
			in.tally.Stales++
		case ClassWild:
			a.wild = true
			in.tally.Wilds++
		}
	}
	return a
}

// Set binds a plan to one node's virtual clock and hands out device
// wrappers. With an unarmed plan every Wrap method returns its input
// untouched, so the no-fault path is exactly the seed code path.
type Set struct {
	plan *Plan
	now  func() time.Duration

	injectors []*injector
	nextSalt  int64

	// Handed-out wrappers, in creation order, so a checkpoint can
	// capture their hold-last caches alongside the injector streams.
	pcms    []*PCM
	devices []*Device
	boards  []*Board
}

// NewSet builds a wrapper factory for plan. now supplies the node's
// virtual time (the sim clock); it must be non-nil when the plan is
// armed.
func NewSet(plan *Plan, now func() time.Duration) *Set {
	if plan.Armed() && now == nil {
		panic("faults: armed plan needs a virtual clock")
	}
	return &Set{plan: plan, now: now}
}

// Armed reports whether the underlying plan injects anything.
func (s *Set) Armed() bool { return s != nil && s.plan.Armed() }

// Plan returns the bound plan (may be nil).
func (s *Set) Plan() *Plan {
	if s == nil {
		return nil
	}
	return s.plan
}

// Tally aggregates injections across every wrapper the set handed out.
func (s *Set) Tally() Tally {
	var t Tally
	if s == nil {
		return t
	}
	for _, in := range s.injectors {
		t.add(in.tally)
	}
	return t
}

func (s *Set) injector(target Target) *injector {
	in := newInjector(s.plan, target, int64(target[0])*1000+s.nextSalt)
	s.nextSalt++
	if in != nil {
		s.injectors = append(s.injectors, in)
	}
	return in
}

// WrapPCM wraps a throughput reader with the plan's pcm faults.
func (s *Set) WrapPCM(inner pcm.Reader) pcm.Reader {
	if s == nil {
		return inner
	}
	in := s.injector(TargetPCM)
	if in == nil {
		return inner
	}
	w := &PCM{inner: inner, inj: in, now: s.now}
	s.pcms = append(s.pcms, w)
	return w
}

// WrapDevice wraps an MSR device with the plan's msr and rapl faults.
func (s *Set) WrapDevice(inner msr.Device) msr.Device {
	if s == nil {
		return inner
	}
	msrInj := s.injector(TargetMSR)
	raplInj := s.injector(TargetRAPL)
	if msrInj == nil && raplInj == nil {
		return inner
	}
	w := &Device{
		inner: inner, now: s.now,
		msrInj: msrInj, raplInj: raplInj,
		stale: make(map[staleKey]uint64),
	}
	s.devices = append(s.devices, w)
	return w
}

// WrapBoard wraps an NVML board with the plan's nvml faults.
func (s *Set) WrapBoard(inner nvml.Board) nvml.Board {
	if s == nil {
		return inner
	}
	in := s.injector(TargetNVML)
	if in == nil {
		return inner
	}
	w := &Board{inner: inner, inj: in, now: s.now}
	s.boards = append(s.boards, w)
	return w
}

// ---- PCM wrapper ----

// PCM injects faults into a memory-throughput reader. It implements
// pcm.Reader plus the resilient layer's LatencyReporter, so stall
// faults surface as virtual read latency the sensor can time out on.
type PCM struct {
	inner pcm.Reader
	inj   *injector
	now   func() time.Duration

	lastGood float64
	lastLat  time.Duration
}

// SystemMemoryThroughput implements pcm.Reader with faults applied.
func (p *PCM) SystemMemoryThroughput(now time.Duration) (float64, error) {
	a := p.inj.decide(p.now())
	p.lastLat = a.stall
	if a.err {
		return 0, fmt.Errorf("%w: pcm read at %v", ErrInjected, now)
	}
	if a.stale {
		// A frozen counter repeats its last value without touching the
		// device; the monitor's baseline resumes when the window ends.
		return p.lastGood, nil
	}
	v, err := p.inner.SystemMemoryThroughput(now)
	if err != nil {
		return v, err
	}
	if a.wild {
		return p.corrupt(v), nil
	}
	p.lastGood = v
	return v, nil
}

// LastReadLatency reports the virtual latency the last read consumed.
func (p *PCM) LastReadLatency() time.Duration { return p.lastLat }

// corrupt returns a wild reading in place of v.
func (p *PCM) corrupt(v float64) float64 {
	switch p.inj.rng.Intn(4) {
	case 0:
		return math.NaN()
	case 1:
		return -v - 1
	case 2:
		return math.Inf(1)
	default:
		return v*1000 + 54321 // implausible spike
	}
}

// ---- MSR device wrapper ----

type staleKey struct {
	cpu int
	reg uint32
}

// raplRegister classifies the RAPL-domain registers: faults with
// TargetRAPL hit only these, TargetMSR hits everything else.
func raplRegister(reg uint32) bool {
	switch reg {
	case msr.RaplPowerUnit, msr.PkgEnergyStatus, msr.DramEnergyStatus,
		msr.PkgPowerInfo, msr.PkgPowerLimit:
		return true
	}
	return false
}

// Device injects faults into an MSR device. Register addresses select
// the injection stream: RAPL-domain registers follow the rapl schedule,
// every other register the msr schedule.
type Device struct {
	inner msr.Device
	now   func() time.Duration

	msrInj, raplInj *injector
	stale           map[staleKey]uint64
	lastLat         time.Duration
}

func (d *Device) injectorFor(reg uint32) *injector {
	if raplRegister(reg) {
		return d.raplInj
	}
	return d.msrInj
}

// Read implements msr.Device with faults applied.
func (d *Device) Read(cpu int, reg uint32) (uint64, error) {
	in := d.injectorFor(reg)
	a := in.decide(d.now())
	d.lastLat = a.stall
	if a.err {
		return 0, fmt.Errorf("%w: rdmsr cpu %d reg %#x", ErrInjected, cpu, reg)
	}
	if a.stale {
		if v, ok := d.stale[staleKey{cpu, reg}]; ok {
			return v, nil
		}
	}
	v, err := d.inner.Read(cpu, reg)
	if err != nil {
		return v, err
	}
	if a.wild {
		// Flip one bit in the live 32-bit field — on an energy-status
		// counter this reads as a wrap/jump, on a limit register as a
		// corrupted ratio.
		return v ^ uint64(1)<<uint(in.rng.Intn(32)), nil
	}
	d.stale[staleKey{cpu, reg}] = v
	return v, nil
}

// Write implements msr.Device; only error/loss faults affect writes.
func (d *Device) Write(cpu int, reg uint32, val uint64) error {
	a := d.injectorFor(reg).decide(d.now())
	d.lastLat = a.stall
	if a.err {
		return fmt.Errorf("%w: wrmsr cpu %d reg %#x", ErrInjected, cpu, reg)
	}
	return d.inner.Write(cpu, reg, val)
}

// LastReadLatency reports the virtual latency of the last access.
func (d *Device) LastReadLatency() time.Duration { return d.lastLat }

// ---- NVML board wrapper ----

// Board injects faults into the GPU readouts. NVML calls have no error
// channel in this model, so error/loss faults read as a dead sensor
// (zero power/clock/util, frozen energy) — what real NVML fallbacks
// degrade to when a query fails.
type Board struct {
	inner nvml.Board
	inj   *injector
	now   func() time.Duration

	last map[int]boardSample
}

type boardSample struct {
	powerW, clockMHz, sm, mem, energyJ float64
}

func (b *Board) cached(i int) boardSample {
	if b.last == nil {
		return boardSample{}
	}
	return b.last[i]
}

func (b *Board) remember(i int, s boardSample) {
	if b.last == nil {
		b.last = make(map[int]boardSample)
	}
	b.last[i] = s
}

// GPUCount implements nvml.Board; enumeration never faults.
func (b *Board) GPUCount() int { return b.inner.GPUCount() }

// sample reads the full readout set for device i under one fault roll,
// so a cycle's readings are mutually consistent.
func (b *Board) sample(i int) boardSample {
	a := b.inj.decide(b.now())
	cur := boardSample{
		powerW:   b.inner.GPUPowerW(i),
		clockMHz: b.inner.GPUClockMHz(i),
		energyJ:  b.inner.GPUEnergyJ(i),
	}
	cur.sm, cur.mem = b.inner.GPUUtil(i)
	switch {
	case a.err:
		// Dead query: instantaneous readouts zero, cumulative energy
		// frozen so downstream deltas stall instead of going negative.
		return boardSample{energyJ: b.cached(i).energyJ}
	case a.stale:
		return b.cached(i)
	case a.wild:
		cur.powerW = cur.powerW*100 + 1e5
		cur.sm, cur.mem = -1, -1
		return cur
	}
	b.remember(i, cur)
	return cur
}

// GPUPowerW implements nvml.Board.
func (b *Board) GPUPowerW(i int) float64 { return b.sample(i).powerW }

// GPUClockMHz implements nvml.Board.
func (b *Board) GPUClockMHz(i int) float64 { return b.sample(i).clockMHz }

// GPUUtil implements nvml.Board.
func (b *Board) GPUUtil(i int) (sm, mem float64) {
	s := b.sample(i)
	return s.sm, s.mem
}

// GPUEnergyJ implements nvml.Board.
func (b *Board) GPUEnergyJ(i int) float64 { return b.sample(i).energyJ }

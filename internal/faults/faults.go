// Package faults is the deterministic fault-injection layer for the
// simulated node's telemetry and control devices. A Plan — parsed from
// JSON or picked from a named preset — schedules faults against the
// MSR register space, the PCM throughput monitors, the RAPL energy
// counters (addressed through their MSR registers) and the NVML board
// readouts. Each fault has a class, an onset, a duration and a
// per-read rate, and every probabilistic decision draws from a seeded
// generator, so a given (plan, seed, workload seed) triple reproduces
// the exact same failure sequence on every run.
//
// Fault classes model what production telemetry actually does when it
// misbehaves (the DCGM-fallback machinery in GPU exporters exists for
// the same reasons):
//
//   - error: the read returns an error (EACCES after permission loss,
//     transient driver failures);
//   - stall: the read succeeds but consumes virtual latency (a hung
//     hwmon read, an IPI that waits on a sleeping core);
//   - stale: the read repeats the last value (a frozen counter);
//   - wild:  the read returns a corrupted value (NaN, negative, a
//     wrapped or bit-flipped counter);
//   - loss:  permanent error from onset on (device unbound, daemon
//     demoted out of its capability).
//
// When no plan is armed the wrappers are never installed and the
// simulated devices behave bit-identically to the seed implementation.
package faults

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"
)

// ErrInjected is the root of every injected failure.
var ErrInjected = errors.New("faults: injected failure")

// Class identifies a fault behaviour.
type Class string

// Fault classes.
const (
	ClassError Class = "error"
	ClassStall Class = "stall"
	ClassStale Class = "stale"
	ClassWild  Class = "wild"
	ClassLoss  Class = "loss"
)

// Target identifies the device surface a fault applies to.
type Target string

// Fault targets. TargetRAPL selects only the RAPL register reads on
// the MSR device (energy counters, power unit, power info); TargetMSR
// selects every other register (uncore limits, fixed counters).
const (
	TargetPCM  Target = "pcm"
	TargetMSR  Target = "msr"
	TargetRAPL Target = "rapl"
	TargetNVML Target = "nvml"
)

// Fault schedules one fault against one target.
type Fault struct {
	Target Target `json:"target"`
	Class  Class  `json:"class"`
	// OnsetS is when the fault window opens, in virtual seconds.
	OnsetS float64 `json:"onset_s"`
	// DurationS closes the window after this many seconds; <= 0 keeps
	// it open to the end of the run (loss faults ignore it and are
	// always permanent).
	DurationS float64 `json:"duration_s,omitempty"`
	// Rate is the per-read probability of injection inside the window;
	// <= 0 or >= 1 means every read (loss is always every read).
	Rate float64 `json:"rate,omitempty"`
	// StallMS is the virtual latency a stall fault adds per read
	// (default 500 ms).
	StallMS float64 `json:"stall_ms,omitempty"`
}

// validate reports schema errors.
func (f Fault) validate() error {
	switch f.Target {
	case TargetPCM, TargetMSR, TargetRAPL, TargetNVML:
	default:
		return fmt.Errorf("faults: unknown target %q", f.Target)
	}
	switch f.Class {
	case ClassError, ClassStall, ClassStale, ClassWild, ClassLoss:
	default:
		return fmt.Errorf("faults: unknown class %q", f.Class)
	}
	switch {
	case f.OnsetS < 0:
		return fmt.Errorf("faults: negative onset %v", f.OnsetS)
	case f.Rate < 0 || f.Rate > 1:
		return fmt.Errorf("faults: rate %v outside [0,1]", f.Rate)
	case f.StallMS < 0:
		return fmt.Errorf("faults: negative stall %v ms", f.StallMS)
	case f.Class == ClassStall && f.Target == TargetNVML:
		return fmt.Errorf("faults: nvml readouts cannot stall (no latency channel)")
	}
	return nil
}

// active reports whether the fault window covers virtual time now.
func (f Fault) active(now time.Duration) bool {
	onset := secs(f.OnsetS)
	if now < onset {
		return false
	}
	if f.Class == ClassLoss || f.DurationS <= 0 {
		return true
	}
	return now < onset+secs(f.DurationS)
}

// rate returns the effective per-read injection probability.
func (f Fault) rate() float64 {
	if f.Class == ClassLoss || f.Rate <= 0 || f.Rate >= 1 {
		return 1
	}
	return f.Rate
}

// stall returns the latency a stall fault injects.
func (f Fault) stall() time.Duration {
	if f.StallMS <= 0 {
		return 500 * time.Millisecond
	}
	return time.Duration(f.StallMS * float64(time.Millisecond))
}

func secs(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

// Plan is a complete fault schedule for one run.
type Plan struct {
	// Name labels the plan in reports (presets fill it in).
	Name string `json:"name,omitempty"`
	// Seed drives every probabilistic injection decision (0 = 1).
	Seed int64 `json:"seed,omitempty"`
	// Faults is the schedule; an empty list is an unarmed plan.
	Faults []Fault `json:"faults"`
}

// Armed reports whether the plan injects anything. A nil plan is
// unarmed.
func (p *Plan) Armed() bool { return p != nil && len(p.Faults) > 0 }

// Validate reports schema errors across the schedule.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for i, f := range p.Faults {
		if err := f.validate(); err != nil {
			return fmt.Errorf("fault %d: %w", i, err)
		}
	}
	return nil
}

// String summarises the plan for logs.
func (p *Plan) String() string {
	if !p.Armed() {
		return "faults: unarmed"
	}
	name := p.Name
	if name == "" {
		name = "custom"
	}
	parts := make([]string, len(p.Faults))
	for i, f := range p.Faults {
		w := "∞"
		if f.Class != ClassLoss && f.DurationS > 0 {
			w = fmt.Sprintf("%gs", f.DurationS)
		}
		parts[i] = fmt.Sprintf("%s/%s@%gs+%s", f.Target, f.Class, f.OnsetS, w)
	}
	return fmt.Sprintf("plan %s (seed %d): %s", name, p.seed(), strings.Join(parts, ", "))
}

func (p *Plan) seed() int64 {
	if p.Seed == 0 {
		return 1
	}
	return p.Seed
}

// targets reports whether any fault addresses target.
func (p *Plan) targets(t Target) bool {
	for _, f := range p.Faults {
		if f.Target == t {
			return true
		}
	}
	return false
}

// Parse decodes a plan from JSON, rejecting unknown fields and invalid
// schedules.
func Parse(r io.Reader) (*Plan, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("faults: parse plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Load resolves spec as a preset name first, then as a path to a JSON
// plan file.
func Load(spec string) (*Plan, error) {
	if p, ok := Preset(spec); ok {
		return p, nil
	}
	f, err := os.Open(spec)
	if err != nil {
		return nil, fmt.Errorf("faults: %q is neither a preset (%s) nor a readable plan file: %w",
			spec, strings.Join(PresetNames(), ", "), err)
	}
	defer f.Close()
	return Parse(f)
}

// presets are the named fault schedules shipped with the repo; see
// docs/FAULTS.md for what each one demonstrates.
var presets = map[string]Plan{
	"pcm-flaky": {Faults: []Fault{
		{Target: TargetPCM, Class: ClassError, OnsetS: 3, DurationS: 30, Rate: 0.3},
		{Target: TargetPCM, Class: ClassStall, OnsetS: 3, DurationS: 30, Rate: 0.1, StallMS: 60},
	}},
	"pcm-outage": {Faults: []Fault{
		{Target: TargetPCM, Class: ClassError, OnsetS: 6, DurationS: 10},
	}},
	"pcm-loss": {Faults: []Fault{
		{Target: TargetPCM, Class: ClassLoss, OnsetS: 0},
	}},
	"pcm-stall": {Faults: []Fault{
		{Target: TargetPCM, Class: ClassStall, OnsetS: 4, DurationS: 20, StallMS: 400},
	}},
	"pcm-stale": {Faults: []Fault{
		{Target: TargetPCM, Class: ClassStale, OnsetS: 5, DurationS: 12},
	}},
	"pcm-wild": {Faults: []Fault{
		{Target: TargetPCM, Class: ClassWild, OnsetS: 3, DurationS: 25, Rate: 0.25},
	}},
	"msr-flaky": {Faults: []Fault{
		{Target: TargetMSR, Class: ClassError, OnsetS: 2, DurationS: 25, Rate: 0.2},
	}},
	"rapl-outage": {Faults: []Fault{
		{Target: TargetRAPL, Class: ClassError, OnsetS: 5, DurationS: 10},
	}},
	"nvml-stale": {Faults: []Fault{
		{Target: TargetNVML, Class: ClassStale, OnsetS: 5, DurationS: 15},
	}},
	"chaos": {Faults: []Fault{
		{Target: TargetPCM, Class: ClassError, OnsetS: 2, DurationS: 15, Rate: 0.25},
		{Target: TargetPCM, Class: ClassStall, OnsetS: 2, DurationS: 15, Rate: 0.1, StallMS: 60},
		{Target: TargetPCM, Class: ClassError, OnsetS: 20, DurationS: 8},
		{Target: TargetPCM, Class: ClassWild, OnsetS: 32, DurationS: 10, Rate: 0.2},
		{Target: TargetMSR, Class: ClassError, OnsetS: 6, DurationS: 12, Rate: 0.1},
		{Target: TargetRAPL, Class: ClassError, OnsetS: 10, DurationS: 6, Rate: 0.5},
	}},
}

// Preset returns a copy of the named preset plan.
func Preset(name string) (*Plan, bool) {
	p, ok := presets[name]
	if !ok {
		return nil, false
	}
	p.Name = name
	p.Faults = append([]Fault(nil), p.Faults...)
	return &p, true
}

// PresetNames lists the shipped presets, sorted.
func PresetNames() []string {
	out := make([]string, 0, len(presets))
	for name := range presets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

package faults

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"github.com/spear-repro/magus/internal/msr"
	"github.com/spear-repro/magus/internal/pcm"
)

func TestParseRejectsBadPlans(t *testing.T) {
	cases := []string{
		`{"faults": [{"target": "disk", "class": "error"}]}`,
		`{"faults": [{"target": "pcm", "class": "meltdown"}]}`,
		`{"faults": [{"target": "pcm", "class": "error", "onset_s": -1}]}`,
		`{"faults": [{"target": "pcm", "class": "error", "rate": 1.5}]}`,
		`{"faults": [{"target": "pcm", "class": "stall", "stall_ms": -5}]}`,
		`{"faults": [{"target": "nvml", "class": "stall"}]}`,
		`{"faults": [{"target": "pcm", "class": "error", "bogus_field": 1}]}`,
		`{"not json`,
	}
	for i, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: accepted %s", i, src)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	p, err := Parse(strings.NewReader(`{
		"name": "x", "seed": 7,
		"faults": [
			{"target": "pcm", "class": "error", "onset_s": 2, "duration_s": 5, "rate": 0.5},
			{"target": "rapl", "class": "loss", "onset_s": 10}
		]}`))
	if err != nil {
		t.Fatal(err)
	}
	if !p.Armed() || len(p.Faults) != 2 || p.Seed != 7 {
		t.Fatalf("plan = %+v", p)
	}
	if p.Faults[1].Class != ClassLoss || p.Faults[1].Target != TargetRAPL {
		t.Fatalf("fault 1 = %+v", p.Faults[1])
	}
}

func TestPresets(t *testing.T) {
	names := PresetNames()
	if len(names) == 0 {
		t.Fatal("no presets")
	}
	for _, name := range names {
		p, ok := Preset(name)
		if !ok {
			t.Fatalf("preset %q vanished", name)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", name, err)
		}
		if !p.Armed() || p.Name != name {
			t.Errorf("preset %q = %+v", name, p)
		}
	}
	if _, ok := Preset("no-such-preset"); ok {
		t.Fatal("unknown preset resolved")
	}
	if _, err := Load("chaos"); err != nil {
		t.Fatalf("Load preset: %v", err)
	}
	if _, err := Load("/no/such/plan.json"); err == nil {
		t.Fatal("Load of missing file succeeded")
	}
}

func TestUnarmedPlanIsIdentity(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.Armed() {
		t.Fatal("nil plan armed")
	}
	set := NewSet(nilPlan, nil)
	mon := pcm.New(func() float64 { return 0 })
	if got := set.WrapPCM(mon); got != pcm.Reader(mon) {
		t.Fatal("unarmed WrapPCM did not return inner")
	}
	space := msr.NewSpace(1, 2)
	if got := set.WrapDevice(space); got != msr.Device(space) {
		t.Fatal("unarmed WrapDevice did not return inner")
	}
	// A plan that targets only msr leaves pcm unwrapped too.
	p, _ := Preset("msr-flaky")
	set2 := NewSet(p, func() time.Duration { return 0 })
	if got := set2.WrapPCM(mon); got != pcm.Reader(mon) {
		t.Fatal("untargeted WrapPCM did not return inner")
	}
}

// clockAt builds a settable virtual clock.
func clockAt(d *time.Duration) func() time.Duration {
	return func() time.Duration { return *d }
}

func TestPCMErrorWindow(t *testing.T) {
	plan := &Plan{Faults: []Fault{
		{Target: TargetPCM, Class: ClassError, OnsetS: 2, DurationS: 3},
	}}
	var now time.Duration
	set := NewSet(plan, clockAt(&now))
	var traffic float64
	wrapped := set.WrapPCM(pcm.New(func() float64 { return traffic }))

	read := func(at time.Duration) error {
		now = at
		traffic += 10
		_, err := wrapped.SystemMemoryThroughput(at)
		return err
	}
	if err := read(time.Second); err != nil {
		t.Fatalf("before onset: %v", err)
	}
	if err := read(3 * time.Second); !errors.Is(err, ErrInjected) {
		t.Fatalf("inside window: %v, want ErrInjected", err)
	}
	if err := read(6 * time.Second); err != nil {
		t.Fatalf("after window: %v", err)
	}
	if tally := set.Tally(); tally.Errors != 1 || tally.Total() != 1 {
		t.Fatalf("tally = %+v", tally)
	}
}

func TestPCMStallReportsLatency(t *testing.T) {
	plan := &Plan{Faults: []Fault{
		{Target: TargetPCM, Class: ClassStall, OnsetS: 0, StallMS: 250},
	}}
	var now time.Duration
	set := NewSet(plan, clockAt(&now))
	wrapped := set.WrapPCM(pcm.New(func() float64 { return 0 })).(*PCM)
	if _, err := wrapped.SystemMemoryThroughput(0); err != nil {
		t.Fatal(err)
	}
	if got := wrapped.LastReadLatency(); got != 250*time.Millisecond {
		t.Fatalf("latency = %v, want 250ms", got)
	}
}

func TestPCMStaleFreezesValue(t *testing.T) {
	plan := &Plan{Faults: []Fault{
		{Target: TargetPCM, Class: ClassStale, OnsetS: 5},
	}}
	var now time.Duration
	set := NewSet(plan, clockAt(&now))
	var traffic float64
	wrapped := set.WrapPCM(pcm.New(func() float64 { return traffic }))

	read := func(at time.Duration, add float64) float64 {
		now = at
		traffic += add
		v, err := wrapped.SystemMemoryThroughput(at)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	read(0, 0)                    // baseline
	good := read(time.Second, 30) // 30 GB/s
	if good != 30 {
		t.Fatalf("clean reading = %v", good)
	}
	// Inside the stale window the demand changes but the reading does
	// not.
	if got := read(6*time.Second, 500); got != good {
		t.Fatalf("stale reading = %v, want frozen %v", got, good)
	}
}

func TestPCMWildProducesInvalidValues(t *testing.T) {
	plan := &Plan{Faults: []Fault{
		{Target: TargetPCM, Class: ClassWild, OnsetS: 0},
	}}
	var now time.Duration
	set := NewSet(plan, clockAt(&now))
	var traffic float64
	wrapped := set.WrapPCM(pcm.New(func() float64 { return traffic }))
	wrapped.SystemMemoryThroughput(0)
	sawInvalid := false
	for i := 1; i <= 8; i++ {
		now = time.Duration(i) * time.Second
		traffic += 30
		v, err := wrapped.SystemMemoryThroughput(now)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 10000 {
			sawInvalid = true
		}
	}
	if !sawInvalid {
		t.Fatal("wild fault never produced an invalid reading")
	}
}

func TestDeviceTargetsRAPLRegistersOnly(t *testing.T) {
	plan := &Plan{Faults: []Fault{
		{Target: TargetRAPL, Class: ClassLoss, OnsetS: 0},
	}}
	var now time.Duration
	set := NewSet(plan, clockAt(&now))
	space := msr.NewSpace(1, 2)
	dev := set.WrapDevice(space)
	if _, err := dev.Read(0, msr.PkgEnergyStatus); !errors.Is(err, ErrInjected) {
		t.Fatalf("rapl register read: %v, want ErrInjected", err)
	}
	if _, err := dev.Read(0, msr.UncoreRatioLimit); err != nil {
		t.Fatalf("non-rapl register read failed: %v", err)
	}
	if err := dev.Write(0, msr.UncoreRatioLimit, 0x16); err != nil {
		t.Fatalf("non-rapl register write failed: %v", err)
	}
}

func TestDeviceStaleFreezesCounter(t *testing.T) {
	plan := &Plan{Faults: []Fault{
		{Target: TargetMSR, Class: ClassStale, OnsetS: 5},
	}}
	var now time.Duration
	set := NewSet(plan, clockAt(&now))
	space := msr.NewSpace(1, 2)
	dev := set.WrapDevice(space)

	space.Poke(0, msr.FixedCtrInstRetired, 100)
	if v, _ := dev.Read(0, msr.FixedCtrInstRetired); v != 100 {
		t.Fatalf("clean read = %d", v)
	}
	now = 6 * time.Second
	space.Poke(0, msr.FixedCtrInstRetired, 900)
	if v, _ := dev.Read(0, msr.FixedCtrInstRetired); v != 100 {
		t.Fatalf("stale read = %d, want frozen 100", v)
	}
}

func TestDeterministicInjectionSequence(t *testing.T) {
	run := func() []error {
		plan := &Plan{Seed: 42, Faults: []Fault{
			{Target: TargetPCM, Class: ClassError, OnsetS: 0, Rate: 0.5},
		}}
		var now time.Duration
		set := NewSet(plan, clockAt(&now))
		wrapped := set.WrapPCM(pcm.New(func() float64 { return 0 }))
		var out []error
		for i := 0; i < 40; i++ {
			now = time.Duration(i) * time.Second
			_, err := wrapped.SystemMemoryThroughput(now)
			out = append(out, err)
		}
		return out
	}
	a, b := run(), run()
	injected := 0
	for i := range a {
		if (a[i] == nil) != (b[i] == nil) {
			t.Fatalf("run divergence at read %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] != nil {
			injected++
		}
	}
	if injected == 0 || injected == len(a) {
		t.Fatalf("rate 0.5 injected %d/%d", injected, len(a))
	}
}

package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/spear-repro/magus/internal/obs"
)

func TestJobsNormalisation(t *testing.T) {
	if got := Jobs(3); got != 3 {
		t.Fatalf("Jobs(3) = %d, want 3", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Jobs(0); got != want {
		t.Fatalf("Jobs(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := Jobs(-5); got != want {
		t.Fatalf("Jobs(-5) = %d, want GOMAXPROCS %d", got, want)
	}
}

func TestMapPreservesOrder(t *testing.T) {
	for _, jobs := range []int{1, 2, 8, 100} {
		out, err := Map(context.Background(), 50, jobs, nil, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if len(out) != 50 {
			t.Fatalf("jobs=%d: len = %d, want 50", jobs, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("jobs=%d: out[%d] = %d, want %d", jobs, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(context.Background(), 0, 4, nil, func(_ context.Context, i int) (int, error) {
		t.Fatal("fn must not be called for n=0")
		return 0, nil
	})
	if err != nil || out != nil {
		t.Fatalf("Map(n=0) = (%v, %v), want (nil, nil)", out, err)
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const jobs = 3
	var inFlight, peak atomic.Int64
	_, err := Map(context.Background(), 40, jobs, nil, func(_ context.Context, i int) (struct{}, error) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > jobs {
		t.Fatalf("peak concurrency %d exceeds jobs=%d", p, jobs)
	}
}

func TestMapFailFast(t *testing.T) {
	boom := errors.New("boom")
	var started atomic.Int64
	var sawCancel atomic.Bool
	var mu sync.Mutex
	ran := map[int]bool{}
	_, err := Map(context.Background(), 1000, 2, nil, func(ctx context.Context, i int) (int, error) {
		started.Add(1)
		mu.Lock()
		ran[i] = true
		mu.Unlock()
		if i == 3 {
			return 0, fmt.Errorf("cell 3: %w", boom)
		}
		select {
		case <-ctx.Done():
			sawCancel.Store(true)
		case <-time.After(2 * time.Millisecond):
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if n := started.Load(); n >= 1000 {
		t.Fatalf("all %d cells started despite fail-fast", n)
	}
}

func TestMapLowestIndexError(t *testing.T) {
	// Two cells fail; the reported error must be the lowest-index one,
	// matching what a serial sweep would have stopped at. Force both to
	// fail by blocking index 2 until index 7 has failed.
	errLow := errors.New("low")
	errHigh := errors.New("high")
	highDone := make(chan struct{})
	_, err := Map(context.Background(), 8, 8, nil, func(_ context.Context, i int) (int, error) {
		switch i {
		case 2:
			<-highDone
			return 0, errLow
		case 7:
			defer close(highDone)
			return 0, errHigh
		}
		return i, nil
	})
	if !errors.Is(err, errLow) {
		t.Fatalf("err = %v, want lowest-index error %v", err, errLow)
	}
}

func TestMapParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := Map(ctx, 10, 4, nil, func(ctx context.Context, i int) (int, error) {
		return i, nil
	})
	if err == nil {
		t.Fatalf("want error from cancelled parent, got result %v", out)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(context.Background(), 10, 4, nil, func(_ context.Context, i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 45 {
		t.Fatalf("sum = %d, want 45", sum.Load())
	}
}

func TestMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	boom := errors.New("boom")
	_, _ = Map(context.Background(), 6, 2, m, func(_ context.Context, i int) (int, error) {
		if i == 5 {
			return 0, boom
		}
		return i, nil
	})
	text := reg.Text()
	if !strings.Contains(text, "magus_pool_workers 2") {
		t.Fatalf("workers gauge missing or wrong:\n%s", text)
	}
	if !strings.Contains(text, "magus_pool_cell_failures_total 1") {
		t.Fatalf("failure counter missing or wrong:\n%s", text)
	}
	if !strings.Contains(text, "magus_pool_inflight_cells 0") {
		t.Fatalf("in-flight gauge should settle at 0:\n%s", text)
	}
	if !strings.Contains(text, "magus_pool_cell_duration_seconds_count") {
		t.Fatalf("duration histogram missing:\n%s", text)
	}
}

func TestNewMetricsNilRegistry(t *testing.T) {
	m := NewMetrics(nil)
	// All instruments are nil-safe no-ops; a pool run must not panic.
	if _, err := Map(context.Background(), 3, 2, m, func(_ context.Context, i int) (int, error) {
		return i, nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestMapDeterministicAcrossJobs(t *testing.T) {
	run := func(jobs int) []int {
		out, err := Map(context.Background(), 64, jobs, nil, func(_ context.Context, i int) (int, error) {
			return i*7919 + 3, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	for _, jobs := range []int{2, 8, 64} {
		got := run(jobs)
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("jobs=%d diverges from serial at index %d: %d != %d", jobs, i, got[i], serial[i])
			}
		}
	}
}

func TestPartition(t *testing.T) {
	for _, tc := range []struct {
		n, k int
		want []int
	}{
		{0, 4, []int{0, 0}},
		{5, 1, []int{0, 5}},
		{5, 2, []int{0, 2, 5}},
		{6, 3, []int{0, 2, 4, 6}},
		{3, 7, []int{0, 1, 2, 3}}, // k clamped to n
		{10, 0, []int{0, 10}},     // k clamped to 1
		{10, -3, []int{0, 10}},
	} {
		got := Partition(tc.n, tc.k)
		if len(got) != len(tc.want) {
			t.Errorf("Partition(%d,%d) = %v, want %v", tc.n, tc.k, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("Partition(%d,%d) = %v, want %v", tc.n, tc.k, got, tc.want)
				break
			}
		}
	}
	// Properties: contiguous cover of [0,n), block sizes differ by ≤ 1.
	for n := 1; n <= 40; n++ {
		for k := 1; k <= n; k++ {
			b := Partition(n, k)
			if b[0] != 0 || b[len(b)-1] != n || len(b) != k+1 {
				t.Fatalf("Partition(%d,%d) malformed: %v", n, k, b)
			}
			min, max := n, 0
			for s := 0; s < k; s++ {
				size := b[s+1] - b[s]
				if size < min {
					min = size
				}
				if size > max {
					max = size
				}
			}
			if min < 1 || max-min > 1 {
				t.Fatalf("Partition(%d,%d) unbalanced: %v", n, k, b)
			}
		}
	}
}

// Package parallel provides the deterministic fan-out engine behind
// the experiment suite: a bounded worker pool that executes independent
// cells concurrently and reassembles their results in canonical
// submission order, so the output of a parallel sweep is byte-identical
// to the serial one for any worker count.
//
// The determinism contract is simple and strict: every cell must be
// self-contained (its own engine, node, runner and governor, seeded
// independently), results are written into a slot addressed by the
// cell's submission index, and nothing is read from those slots until
// every worker has exited. Scheduling order therefore cannot leak into
// results — only into wall-clock time.
//
// Failure handling is fail-fast: the first cell error cancels the
// run's context, undispatched cells are never started, and the error
// reported is the one with the lowest submission index among the cells
// that actually failed (the same cell a serial run would have stopped
// at, because cells are deterministic).
package parallel

import (
	"context"
	"runtime"
	"sync"
	"time"

	"github.com/spear-repro/magus/internal/obs"
)

// Jobs normalises a worker-count setting: n > 0 is used as given;
// anything else selects runtime.GOMAXPROCS(0), the hardware
// parallelism available to the process.
func Jobs(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Metrics is the pool-level instrumentation surface. All fields are
// nil-safe no-ops when unset, so an unobserved pool runs unguarded.
// Cell durations are wall-clock observations (the only non-simulated
// quantity this repo exports) — they describe the pool, never the
// experiment results, which stay bit-identical for any jobs value.
type Metrics struct {
	// Workers is the number of workers the current batch runs with.
	Workers *obs.Gauge
	// InFlight is the number of cells executing right now.
	InFlight *obs.Gauge
	// Completed counts cells that finished without error.
	Completed *obs.Counter
	// Failed counts cells whose function returned an error.
	Failed *obs.Counter
	// Duration is the wall-clock execution time per cell in seconds.
	Duration *obs.Histogram
}

// NewMetrics registers the pool families on reg and returns the
// instrumented set. A nil registry yields all-nil (no-op) instruments.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Workers:   reg.Gauge("magus_pool_workers", "Worker count of the current experiment batch."),
		InFlight:  reg.Gauge("magus_pool_inflight_cells", "Experiment cells executing right now."),
		Completed: reg.Counter("magus_pool_cells_completed_total", "Experiment cells finished without error."),
		Failed:    reg.Counter("magus_pool_cell_failures_total", "Experiment cells that returned an error."),
		Duration: reg.Histogram("magus_pool_cell_duration_seconds",
			"Wall-clock execution time per experiment cell in seconds.",
			[]float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}),
	}
}

// Map executes fn for every index in [0, n) on at most jobs concurrent
// workers and returns the results in index order. A nil ctx is
// context.Background(); jobs <= 0 selects Jobs(0). The first error
// cancels the context (fail-fast): running cells see the cancellation
// through ctx, undispatched cells never start, and the lowest-index
// error observed is returned. m may be nil (no instrumentation).
func Map[T any](ctx context.Context, n, jobs int, m *Metrics, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	jobs = Jobs(jobs)
	if jobs > n {
		jobs = n
	}
	if m != nil {
		m.Workers.Set(float64(jobs))
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	out := make([]T, n)
	errs := make([]error, n)
	idx := make(chan int)
	go func() {
		defer close(idx)
		for i := 0; i < n; i++ {
			select {
			case idx <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				var start time.Time
				if m != nil {
					m.InFlight.Add(1)
					start = time.Now()
				}
				v, err := fn(ctx, i)
				if m != nil {
					m.Duration.Observe(time.Since(start).Seconds())
					m.InFlight.Add(-1)
				}
				if err != nil {
					errs[i] = err
					if m != nil {
						m.Failed.Inc()
					}
					cancel()
					continue
				}
				out[i] = v
				if m != nil {
					m.Completed.Inc()
				}
			}
		}()
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Our own cancel() is deferred and no cell errored, so a cancelled
	// context here means the *parent* was cancelled or timed out and
	// some cells never ran: the result slice is incomplete.
	if ctx.Err() != nil {
		return nil, context.Cause(ctx)
	}
	return out, nil
}

// Partition splits [0, n) into k contiguous blocks and returns the
// k+1 boundaries: block s spans [b[s], b[s+1]). Blocks differ in size
// by at most one element and the boundaries depend only on (n, k) —
// never on scheduling — so any consumer that reassembles per-block
// results in block order reads them in canonical element order. k is
// clamped to [1, n] (n = 0 yields the degenerate [0, 0]).
func Partition(n, k int) []int {
	if n <= 0 {
		return []int{0, 0}
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	b := make([]int, k+1)
	for i := 1; i <= k; i++ {
		b[i] = i * n / k
	}
	return b
}

// ForEach is Map without per-cell results: it executes fn for every
// index in [0, n) under the same ordering, bounding and fail-fast
// rules.
func ForEach(ctx context.Context, n, jobs int, m *Metrics, fn func(ctx context.Context, i int) error) error {
	_, err := Map(ctx, n, jobs, m, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}

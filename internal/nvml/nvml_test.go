package nvml

import "testing"

// fakeBoard is a minimal Board with two GPUs.
type fakeBoard struct{}

func (fakeBoard) GPUCount() int                    { return 2 }
func (fakeBoard) GPUPowerW(i int) float64          { return 100 + float64(i)*50 }
func (fakeBoard) GPUClockMHz(i int) float64        { return 1410 }
func (fakeBoard) GPUUtil(i int) (float64, float64) { return 0.95, 0.6 }
func (fakeBoard) GPUEnergyJ(i int) float64         { return 1234.5 }

func TestDeviceEnumeration(t *testing.T) {
	a, err := New(fakeBoard{}, []string{"A100-40GB", "A100-40GB"})
	if err != nil {
		t.Fatal(err)
	}
	if a.DeviceCount() != 2 {
		t.Fatalf("DeviceCount = %d", a.DeviceCount())
	}
	d, err := a.DeviceByIndex(1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "A100-40GB" || d.Index() != 1 {
		t.Fatalf("device = %q idx %d", d.Name(), d.Index())
	}
	if _, err := a.DeviceByIndex(2); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := a.DeviceByIndex(-1); err == nil {
		t.Fatal("negative index accepted")
	}
}

func TestReadouts(t *testing.T) {
	a, _ := New(fakeBoard{}, nil)
	d, _ := a.DeviceByIndex(0)
	if d.Name() != "GPU-0" {
		t.Fatalf("generic name = %q", d.Name())
	}
	if d.PowerUsage() != 100000 {
		t.Fatalf("PowerUsage = %d mW", d.PowerUsage())
	}
	if d.PowerUsageWatts() != 100 {
		t.Fatalf("PowerUsageWatts = %v", d.PowerUsageWatts())
	}
	if d.SMClock() != 1410 {
		t.Fatalf("SMClock = %d", d.SMClock())
	}
	gpu, mem := d.Utilization()
	if gpu != 95 || mem != 60 {
		t.Fatalf("Utilization = %d/%d", gpu, mem)
	}
	if d.TotalEnergyConsumption() != 1234500 {
		t.Fatalf("energy = %d mJ", d.TotalEnergyConsumption())
	}
}

func TestTotals(t *testing.T) {
	a, _ := New(fakeBoard{}, nil)
	if got := a.TotalBoardPowerW(); got != 250 {
		t.Fatalf("TotalBoardPowerW = %v", got)
	}
	if got := a.TotalBoardEnergyJ(); got != 2469 {
		t.Fatalf("TotalBoardEnergyJ = %v", got)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Fatal("nil board accepted")
	}
	if _, err := New(fakeBoard{}, []string{"one"}); err == nil {
		t.Fatal("name-count mismatch accepted")
	}
}

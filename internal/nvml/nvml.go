// Package nvml models the slice of the NVIDIA Management Library (and
// its oneAPI equivalent for Intel GPUs) that the evaluation uses: board
// power draw, SM clock, utilisation and cumulative energy (§5 measures
// GPU board energy as part of the energy-saving metric). The API shape
// mirrors NVML: enumerate devices, then query per-device readouts.
package nvml

import "fmt"

// Board is the read-side a device exposes; the node simulator
// implements it.
type Board interface {
	GPUCount() int
	GPUPowerW(i int) float64
	GPUClockMHz(i int) float64
	GPUUtil(i int) (sm, mem float64)
	GPUEnergyJ(i int) float64
}

// API is the library handle (nvmlInit equivalent).
type API struct {
	board Board
	names []string
}

// New initialises the API over a board with the given device names.
// Names may be nil, in which case devices report a generic name.
func New(board Board, names []string) (*API, error) {
	if board == nil {
		return nil, fmt.Errorf("nvml: nil board")
	}
	if names != nil && len(names) != board.GPUCount() {
		return nil, fmt.Errorf("nvml: %d names for %d devices", len(names), board.GPUCount())
	}
	return &API{board: board, names: names}, nil
}

// DeviceCount returns the number of GPUs.
func (a *API) DeviceCount() int { return a.board.GPUCount() }

// DeviceByIndex returns a device handle.
func (a *API) DeviceByIndex(i int) (*Device, error) {
	if i < 0 || i >= a.board.GPUCount() {
		return nil, fmt.Errorf("nvml: device index %d out of range [0,%d)", i, a.board.GPUCount())
	}
	return &Device{api: a, idx: i}, nil
}

// Device is one GPU handle.
type Device struct {
	api *API
	idx int
}

// Name returns the device's marketing name.
func (d *Device) Name() string {
	if d.api.names != nil {
		return d.api.names[d.idx]
	}
	return fmt.Sprintf("GPU-%d", d.idx)
}

// Index returns the device index.
func (d *Device) Index() int { return d.idx }

// PowerUsage returns current board power in milliwatts (NVML's unit).
func (d *Device) PowerUsage() uint {
	return uint(d.api.board.GPUPowerW(d.idx) * 1000)
}

// PowerUsageWatts returns current board power in watts.
func (d *Device) PowerUsageWatts() float64 { return d.api.board.GPUPowerW(d.idx) }

// SMClock returns the current SM clock in MHz.
func (d *Device) SMClock() uint { return uint(d.api.board.GPUClockMHz(d.idx)) }

// Utilization returns GPU and memory utilisation percentages, as
// nvmlDeviceGetUtilizationRates does.
func (d *Device) Utilization() (gpu, mem uint) {
	sm, m := d.api.board.GPUUtil(d.idx)
	return uint(sm*100 + 0.5), uint(m*100 + 0.5)
}

// TotalEnergyConsumption returns cumulative board energy in
// millijoules (NVML's unit).
func (d *Device) TotalEnergyConsumption() uint64 {
	return uint64(d.api.board.GPUEnergyJ(d.idx) * 1000)
}

// TotalBoardPowerW sums current power across all devices.
func (a *API) TotalBoardPowerW() float64 {
	var p float64
	for i := 0; i < a.board.GPUCount(); i++ {
		p += a.board.GPUPowerW(i)
	}
	return p
}

// TotalBoardEnergyJ sums cumulative energy across all devices.
func (a *API) TotalBoardEnergyJ() float64 {
	var e float64
	for i := 0; i < a.board.GPUCount(); i++ {
		e += a.board.GPUEnergyJ(i)
	}
	return e
}

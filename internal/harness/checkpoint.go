package harness

import (
	"fmt"
	"time"

	"github.com/spear-repro/magus/internal/checkpoint"
	"github.com/spear-repro/magus/internal/core"
	"github.com/spear-repro/magus/internal/governor"
	"github.com/spear-repro/magus/internal/node"
	"github.com/spear-repro/magus/internal/obs"
	"github.com/spear-repro/magus/internal/resilient"
	"github.com/spear-repro/magus/internal/spans"
	"github.com/spear-repro/magus/internal/workload"
)

// Checkpoint captures the run's complete state at its current virtual
// time. The run must still be in flight (a finished run has nothing to
// resume), the program must come from the workload catalog (resume
// rebuilds it by name), and runs carrying a PCMNoise closure are not
// checkpointable — an arbitrary function cannot be serialised.
//
// The returned data is self-contained: it can be encoded with
// checkpoint.Encode, shipped, decoded and resumed any number of times;
// a single in-memory Data may also be resumed repeatedly (State()
// deep-copies, Restore copies back in).
func (s *Steppable) Checkpoint() (*checkpoint.Data, error) {
	if s.done {
		return nil, fmt.Errorf("harness: checkpoint of a finished run")
	}
	if s.opt.PCMNoise != nil {
		return nil, fmt.Errorf("harness: runs with a PCMNoise closure are not checkpointable")
	}
	if s.mux != nil {
		return nil, fmt.Errorf("harness: co-located runs are not checkpointable")
	}
	if p, ok := workload.ByName(s.prog.Name); !ok || p != s.prog {
		return nil, fmt.Errorf("harness: program %q is not the catalog program of that name", s.prog.Name)
	}

	d := &checkpoint.Data{
		System:  s.cfg,
		Program: s.prog.Name,
		GovName: s.gov.Name(),

		Seed:          s.opt.Seed,
		Step:          s.opt.Step,
		TraceInterval: s.opt.TraceInterval,
		Horizon:       s.horizon,
		ObsInterval:   s.opt.ObsInterval,
		Faults:        s.opt.Faults,
		HasObs:        s.opt.Obs != nil,

		Engine:   s.eng.State(),
		Node:     s.n.State(),
		Runner:   s.runner.State(),
		FaultSet: s.fset.State(),
		SysPCM:   s.mons.sys.State(),
	}
	for _, m := range s.mons.sock {
		d.SockPCM = append(d.SockPCM, m.State())
	}
	if s.env.RAPL != nil {
		st := s.env.RAPL.State()
		d.RAPL = &st
	}

	switch g := s.gov.(type) {
	case *core.MAGUS:
		st := g.State()
		d.Magus = &st
	case *core.PerSocket:
		st := g.State()
		d.PerSocket = &st
	case *governor.UPS:
		st := g.State()
		d.UPS = &st
	case *governor.DUF:
		st := g.State()
		d.DUF = &st
	case *governor.Default, *governor.Static:
		d.Shadow = s.env.ShadowState()
	default:
		return nil, fmt.Errorf("harness: governor %s (%T) is not checkpointable", s.gov.Name(), s.gov)
	}

	if s.rec != nil {
		st := s.rec.State()
		d.Recorder = &st
	}

	if s.opt.Obs != nil {
		o := s.opt.Obs
		d.Registry = o.Registry().StateDump()
		d.EventCount = o.Events().Count()
		d.Health = int(o.Health())
		ros := &checkpoint.RunObserverState{
			Next:       s.ro.next,
			LastHealth: int(s.ro.lastHealth),
			LastTally:  s.ro.lastTally,
		}
		for _, del := range s.ro.deltas {
			ros.DeltaLast = append(ros.DeltaLast, del.last)
		}
		d.RunObs = ros
		if s.ro.do != nil {
			d.DecisionObs = &checkpoint.DecisionObserverState{
				HavePrev:   s.ro.do.havePrev,
				PrevAt:     s.ro.do.prevAt,
				PrevTrend:  int(s.ro.do.prevTrend),
				PrevPhase:  s.ro.do.prevPhase,
				PrevHealth: int(s.ro.do.prevHealth),
			}
		}
	}

	if s.opt.Spans != nil {
		d.Tracer = s.opt.Spans.State()
		d.SpanLastPhase = s.ss.lastPhase
	}
	return d, nil
}

// Checkpoint builds the run exactly as Run would and advances it to
// virtual time at, then captures its state. The run must still be in
// flight at that point.
func Checkpoint(cfg node.Config, prog *workload.Program, gov governor.Governor, opt Options, at time.Duration) (*checkpoint.Data, error) {
	st, err := NewSteppable(cfg, prog, gov, opt)
	if err != nil {
		return nil, err
	}
	if at > 0 {
		done, err := st.Advance(at)
		if err != nil {
			return nil, err
		}
		if done {
			return nil, fmt.Errorf("harness: %s/%s/%s finished before checkpoint time %v",
				cfg.Name, prog.Name, gov.Name(), at)
		}
	}
	return st.Checkpoint()
}

// ResumeOptions supplies the per-run objects a resumed run needs fresh
// instances of: the governor (same concrete type and configuration as
// the checkpointed one — its name is cross-checked), plus an observer
// and a spans tracer when the original run had them (presence must
// match; the restore overwrites their state wholesale).
type ResumeOptions struct {
	Gov   governor.Governor
	Obs   *obs.Observer
	Spans *spans.Tracer
}

// Resume rebuilds the checkpointed run's wiring from its identity and
// overwrites every piece of mutable state with the captured snapshot.
// The returned Steppable continues exactly where the original stood:
// advancing it to completion yields results, traces, metrics, events
// and spans byte-identical to the uninterrupted run.
func Resume(d *checkpoint.Data, ro ResumeOptions) (*Steppable, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if ro.Gov == nil {
		return nil, fmt.Errorf("harness: resume without a governor")
	}
	if ro.Gov.Name() != d.GovName {
		return nil, fmt.Errorf("harness: resume governor %q, checkpoint was %q", ro.Gov.Name(), d.GovName)
	}
	if d.HasObs != (ro.Obs != nil) {
		return nil, fmt.Errorf("harness: observer presence mismatch (checkpoint %v, resume %v)",
			d.HasObs, ro.Obs != nil)
	}
	if (d.Tracer != nil) != (ro.Spans != nil) {
		return nil, fmt.Errorf("harness: spans tracer presence mismatch (checkpoint %v, resume %v)",
			d.Tracer != nil, ro.Spans != nil)
	}
	prog, ok := workload.ByName(d.Program)
	if !ok {
		return nil, fmt.Errorf("harness: resume references unknown program %q", d.Program)
	}

	opt := Options{
		Seed:          d.Seed,
		Step:          d.Step,
		TraceInterval: d.TraceInterval,
		Horizon:       d.Horizon,
		ObsInterval:   d.ObsInterval,
		Faults:        d.Faults,
		Obs:           ro.Obs,
		Spans:         ro.Spans,
	}
	st, err := newSteppable(d.System, prog, ro.Gov, opt, true)
	if err != nil {
		return nil, fmt.Errorf("harness: resume: %w", err)
	}

	if err := st.eng.Restore(d.Engine); err != nil {
		return nil, fmt.Errorf("harness: resume: %w", err)
	}
	if err := st.n.Restore(d.Node); err != nil {
		return nil, fmt.Errorf("harness: resume: %w", err)
	}
	if err := st.runner.Restore(d.Runner); err != nil {
		return nil, fmt.Errorf("harness: resume: %w", err)
	}
	if err := st.fset.Restore(d.FaultSet); err != nil {
		return nil, fmt.Errorf("harness: resume: %w", err)
	}
	st.mons.sys.Restore(d.SysPCM)
	if len(d.SockPCM) != len(st.mons.sock) {
		return nil, fmt.Errorf("harness: resume has %d socket monitors, run built %d",
			len(d.SockPCM), len(st.mons.sock))
	}
	for i, m := range st.mons.sock {
		m.Restore(d.SockPCM[i])
	}
	if (st.env.RAPL == nil) != (d.RAPL == nil) {
		return nil, fmt.Errorf("harness: resume RAPL presence mismatch (checkpoint %v, rebuilt %v)",
			d.RAPL != nil, st.env.RAPL != nil)
	}
	if d.RAPL != nil {
		if err := st.env.RAPL.Restore(*d.RAPL); err != nil {
			return nil, fmt.Errorf("harness: resume: %w", err)
		}
	}

	switch g := st.gov.(type) {
	case *core.MAGUS:
		if d.Magus == nil {
			return nil, fmt.Errorf("harness: checkpoint carries no MAGUS state for %q", d.GovName)
		}
		if err := g.Restore(*d.Magus); err != nil {
			return nil, fmt.Errorf("harness: resume: %w", err)
		}
	case *core.PerSocket:
		if d.PerSocket == nil {
			return nil, fmt.Errorf("harness: checkpoint carries no per-socket state for %q", d.GovName)
		}
		if err := g.Restore(*d.PerSocket); err != nil {
			return nil, fmt.Errorf("harness: resume: %w", err)
		}
	case *governor.UPS:
		if d.UPS == nil {
			return nil, fmt.Errorf("harness: checkpoint carries no UPS state")
		}
		if err := g.Restore(*d.UPS); err != nil {
			return nil, fmt.Errorf("harness: resume: %w", err)
		}
	case *governor.DUF:
		if d.DUF == nil {
			return nil, fmt.Errorf("harness: checkpoint carries no DUF state")
		}
		if err := g.Restore(*d.DUF); err != nil {
			return nil, fmt.Errorf("harness: resume: %w", err)
		}
	case *governor.Default, *governor.Static:
		st.env.RestoreShadow(d.Shadow)
	default:
		return nil, fmt.Errorf("harness: governor %s (%T) is not checkpointable", d.GovName, st.gov)
	}

	if (st.rec != nil) != (d.Recorder != nil) {
		return nil, fmt.Errorf("harness: resume recorder presence mismatch")
	}
	if d.Recorder != nil {
		if err := st.rec.Restore(*d.Recorder); err != nil {
			return nil, fmt.Errorf("harness: resume: %w", err)
		}
	}

	if d.HasObs {
		o := ro.Obs
		if err := o.Registry().RestoreState(d.Registry); err != nil {
			return nil, fmt.Errorf("harness: resume: %w", err)
		}
		o.Events().RestoreCount(d.EventCount)
		o.SetHealth(obs.Health(d.Health))
		st.ro.next = d.RunObs.Next
		st.ro.lastHealth = resilient.Health(d.RunObs.LastHealth)
		if len(d.RunObs.DeltaLast) != len(st.ro.deltas) {
			return nil, fmt.Errorf("harness: resume has %d counter deltas, run registered %d",
				len(d.RunObs.DeltaLast), len(st.ro.deltas))
		}
		for i, del := range st.ro.deltas {
			del.last = d.RunObs.DeltaLast[i]
		}
		st.ro.lastTally = d.RunObs.LastTally
		if (st.ro.do != nil) != (d.DecisionObs != nil) {
			return nil, fmt.Errorf("harness: resume decision-hook presence mismatch")
		}
		if st.ro.do != nil {
			st.ro.do.havePrev = d.DecisionObs.HavePrev
			st.ro.do.prevAt = d.DecisionObs.PrevAt
			st.ro.do.prevTrend = core.Trend(d.DecisionObs.PrevTrend)
			st.ro.do.prevPhase = d.DecisionObs.PrevPhase
			st.ro.do.prevHealth = resilient.Health(d.DecisionObs.PrevHealth)
		}
	}

	if d.Tracer != nil {
		if err := ro.Spans.Restore(d.Tracer); err != nil {
			return nil, fmt.Errorf("harness: resume: %w", err)
		}
		st.ss.lastPhase = d.SpanLastPhase
	}
	return st, nil
}

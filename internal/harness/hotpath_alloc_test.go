package harness

import (
	"testing"
	"time"

	"github.com/spear-repro/magus/internal/core"
	"github.com/spear-repro/magus/internal/node"
	"github.com/spear-repro/magus/internal/sim"
	"github.com/spear-repro/magus/internal/workload"
)

// TestSteadyStateTickZeroAlloc pins the tentpole contract end to end:
// with the full Run wiring (runner → node demand flow, node, telemetry
// recorder, MAGUS governor task, no observer — the nil-Obs path), a
// steady-state engine tick heap-allocates nothing. The trace recorder
// is reserved for the whole horizon, as Run does, so sampling appends
// into preallocated storage.
func TestSteadyStateTickZeroAlloc(t *testing.T) {
	cfg := node.IntelA100()
	prog, ok := workload.ByName("unet")
	if !ok {
		t.Fatal("unknown workload unet")
	}
	eng := sim.NewEngine(0)
	n := node.New(cfg)
	runner := workload.NewRunner(prog, cfg.SystemBWGBs(), 1)
	runner.SetAttained(n.AttainedGBs)

	gov := core.New(core.DefaultConfig())
	env, _, envErr := buildEnv(n, nil, nil)
	if envErr != nil {
		t.Fatal(envErr)
	}
	if err := gov.Attach(env); err != nil {
		t.Fatal(err)
	}

	eng.AddComponent(sim.ComponentFunc(func(now, dt time.Duration) {
		runner.Step(now, dt)
		n.SetDemand(runner.Demand())
	}))
	eng.AddComponent(n)

	interval := 100 * time.Millisecond
	rec := NewNodeRecorder(n, interval)
	rec.Reserve(int(prog.NominalDuration()/interval) + 2)
	eng.AddComponent(rec)

	eng.AddTask(&sim.Task{Name: gov.Name(), Interval: gov.Interval(), Fn: gov.Invoke}, 0)

	// Warm past MDFS warmup, the first trace samples, and the phase
	// transitions' first traversal so every lazily-grown buffer has
	// reached its working size.
	eng.RunFor(20 * time.Second)

	step := eng.Step()
	if allocs := testing.AllocsPerRun(2000, func() { eng.RunFor(step) }); allocs != 0 {
		t.Fatalf("steady-state engine tick allocates %v times per tick, want 0", allocs)
	}
}

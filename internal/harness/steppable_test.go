package harness

import (
	"errors"
	"testing"
	"time"

	"github.com/spear-repro/magus/internal/core"
	"github.com/spear-repro/magus/internal/faults"
	"github.com/spear-repro/magus/internal/governor"
	"github.com/spear-repro/magus/internal/node"
	"github.com/spear-repro/magus/internal/sim"
	"github.com/spear-repro/magus/internal/workload"
)

func mustProg(t *testing.T, name string) *workload.Program {
	t.Helper()
	p, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("no workload %q", name)
	}
	return p
}

// TestSteppableMatchesRun pins the serve-mode contract: a session
// advanced in arbitrary ragged chunks produces the byte-identical
// Result of the equivalent single-shot Run.
func TestSteppableMatchesRun(t *testing.T) {
	cfg := node.IntelA100()
	prog := mustProg(t, "bfs")
	opts := Options{Seed: 7}

	want, err := Run(cfg, prog, core.New(core.DefaultConfig()), opts)
	if err != nil {
		t.Fatal(err)
	}

	st, err := NewSteppable(cfg, prog, core.New(core.DefaultConfig()), opts)
	if err != nil {
		t.Fatal(err)
	}
	// Ragged, non-aligned chunks: nothing about the result may depend
	// on where the caller's step boundaries fall.
	chunks := []time.Duration{
		3 * time.Millisecond, 777 * time.Millisecond, 2 * time.Second,
		time.Millisecond, 5 * time.Second, 250 * time.Millisecond,
	}
	for i := 0; !st.Done(); i++ {
		done, err := st.Advance(chunks[i%len(chunks)])
		if err != nil {
			t.Fatal(err)
		}
		if done != st.Done() {
			t.Fatalf("Advance returned %v but Done() = %v", done, st.Done())
		}
	}
	got := st.Result()
	want.Traces, got.Traces = nil, nil
	if got != want {
		t.Fatalf("stepped result diverged:\n got  %+v\n want %+v", got, want)
	}
}

// TestSteppableMatchesRunWithFaults repeats the equivalence check with
// a fault plan armed — the injection schedule must not care about step
// boundaries either.
func TestSteppableMatchesRunWithFaults(t *testing.T) {
	cfg := node.IntelA100()
	prog := mustProg(t, "gemm")
	plan, ok := faults.Preset("pcm-flaky")
	if !ok {
		t.Fatal("no pcm-flaky preset")
	}
	plan.Seed = 11
	opts := Options{Seed: 11, Faults: plan}

	want, err := Run(cfg, prog, core.New(core.DefaultConfig()), opts)
	if err != nil {
		t.Fatal(err)
	}

	plan2, _ := faults.Preset("pcm-flaky")
	plan2.Seed = 11
	st, err := NewSteppable(cfg, prog, core.New(core.DefaultConfig()), Options{Seed: 11, Faults: plan2})
	if err != nil {
		t.Fatal(err)
	}
	for !st.Done() {
		if _, err := st.Advance(900 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	got := st.Result()
	want.Traces, got.Traces = nil, nil
	if got != want {
		t.Fatalf("faulted stepped result diverged:\n got  %+v\n want %+v", got, want)
	}
}

// TestSteppableHorizon pins the stuck-at-horizon contract: an
// undersized horizon is an error, and the error repeats on every later
// call instead of silently resuming.
func TestSteppableHorizon(t *testing.T) {
	cfg := node.IntelA100()
	prog := mustProg(t, "bfs")
	st, err := NewSteppable(cfg, prog, governor.NewDefault(), Options{Seed: 1, Horizon: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Advance(5 * time.Second); !errors.Is(err, sim.ErrHorizon) {
		t.Fatalf("err = %v, want ErrHorizon", err)
	}
	if _, err := st.Advance(time.Second); !errors.Is(err, sim.ErrHorizon) {
		t.Fatalf("second call err = %v, want ErrHorizon again", err)
	}
	if st.Done() {
		t.Fatal("horizon-stuck run reports Done")
	}
}

// TestSteppableIdempotentAfterDone pins that advancing a finished run
// is a no-op returning the same result.
func TestSteppableIdempotentAfterDone(t *testing.T) {
	cfg := node.IntelA100()
	prog := mustProg(t, "bfs")
	st, err := NewSteppable(cfg, prog, governor.NewDefault(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for !st.Done() {
		if _, err := st.Advance(10 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	first := st.Result()
	done, err := st.Advance(time.Second)
	if err != nil || !done {
		t.Fatalf("Advance after done = (%v, %v), want (true, nil)", done, err)
	}
	if got := st.Result(); got != first {
		t.Fatal("result changed after post-done Advance")
	}
}

package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/spear-repro/magus/internal/core"
	"github.com/spear-repro/magus/internal/node"
	"github.com/spear-repro/magus/internal/workload"
)

func TestRecordRoundtrip(t *testing.T) {
	cfg := node.IntelA100()
	prog, _ := workload.ByName("gemm")
	res, err := Run(cfg, prog, core.New(core.DefaultConfig()),
		Options{Seed: 4, TraceInterval: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecord(res, 4)
	var buf bytes.Buffer
	if err := rec.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRecord(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.RuntimeS != res.RuntimeS || back.TotalEnergyJ != res.TotalEnergyJ() || back.Seed != 4 {
		t.Fatalf("roundtrip: %+v", back)
	}
	s, ok := back.Series("uncore_ghz")
	if !ok || s.Len() < 10 {
		t.Fatal("trace missing from record")
	}
	orig := res.Traces.Series("uncore_ghz")
	for i := range orig.Values {
		if s.Values[i] != orig.Values[i] {
			t.Fatalf("trace value drift at %d", i)
		}
	}
	if _, ok := back.Series("nonexistent"); ok {
		t.Fatal("unknown series reported ok")
	}
}

func TestRecordWithoutTraces(t *testing.T) {
	rec := NewRecord(Result{System: "x", Workload: "y", Governor: "z", RuntimeS: 1}, 1)
	if rec.Traces != nil {
		t.Fatal("traces map created for traceless run")
	}
	var buf bytes.Buffer
	rec.Write(&buf)
	if _, err := ReadRecord(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestReadRecordErrors(t *testing.T) {
	for label, js := range map[string]string{
		"bad json":    "{",
		"unknown":     `{"runtime_s":1,"bogus":2}`,
		"no runtime":  `{"system":"x"}`,
		"trace shape": `{"runtime_s":1,"traces":{"a":{"times_s":[1,2],"values":[1]}}}`,
	} {
		if _, err := ReadRecord(strings.NewReader(js)); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
}

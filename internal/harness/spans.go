package harness

import (
	"time"

	"github.com/spear-repro/magus/internal/core"
	"github.com/spear-repro/magus/internal/governor"
	"github.com/spear-repro/magus/internal/msr"
	"github.com/spear-repro/magus/internal/node"
	"github.com/spear-repro/magus/internal/obs"
	"github.com/spear-repro/magus/internal/spans"
)

// Everything in this file is wired only when Options.Spans is set. A
// spans-disabled run adds no component, wraps no device and no task
// function, so the steady-state tick loop stays allocation-free and
// byte-identical to the seed (pinned by TestSteadyStateTickZeroAlloc
// and the PR 4 identity goldens).

// spanMSRDevice intercepts successful uncore-limit writes and records
// them as MSR-write spans; every other access passes straight through.
type spanMSRDevice struct {
	inner msr.Device
	tr    *spans.Tracer
	now   func() time.Duration
	cps   int // cores per socket, for cpu → socket
}

func (d *spanMSRDevice) Read(cpu int, reg uint32) (uint64, error) {
	return d.inner.Read(cpu, reg)
}

func (d *spanMSRDevice) Write(cpu int, reg uint32, val uint64) error {
	err := d.inner.Write(cpu, reg, val)
	if err == nil && reg == msr.UncoreRatioLimit {
		maxHz, _ := msr.DecodeUncoreLimit(val)
		d.tr.MSRWrite(d.now(), cpu/d.cps, maxHz/1e9)
	}
	return err
}

// spanSampler is the per-step ledger integrator: it reads each
// socket's uncore state the node just computed and attributes the
// step's uncore energy, plus the workload-phase bucket under
// sample-and-hold. It must be added to the engine after the node.
type spanSampler struct {
	tr     *spans.Tracer
	n      *node.Node
	src    interface{ PhaseName() string }
	maxGHz float64

	lastPhase string

	// Optional metric mirrors (nil without Options.Obs).
	wasteBase, wasteUseful, wasteWaste, wasteTotal *obs.Gauge
	wasteFrac                                      *obs.Gauge
	spanCounts                                     []*obs.Gauge
}

// Step implements sim.Component.
func (ss *spanSampler) Step(now, dt time.Duration) {
	if name := ss.src.PhaseName(); name != ss.lastPhase {
		ss.tr.SetPhase(name)
		ss.lastPhase = name
	}
	n := ss.n
	for s := 0; s < n.Config().Sockets; s++ {
		rel := n.UncoreFreqGHz(s) / ss.maxGHz
		ss.tr.AccumulateSocketActual(dt, rel, n.AttainedGBsSocket(s), n.UncorePowerW(s))
	}
	if ss.wasteTotal != nil {
		run := ss.tr.Ledger().Run()
		ss.wasteBase.Set(run.BaselineJ)
		ss.wasteUseful.Set(run.UsefulJ)
		ss.wasteWaste.Set(run.WasteJ)
		ss.wasteTotal.Set(run.TotalJ)
		ss.wasteFrac.Set(run.WasteFrac())
		for k, g := range ss.spanCounts {
			g.Set(float64(ss.tr.Count(spans.Kind(k))))
		}
	}
}

// installSpans wires the tracer into a run: power model, arena
// reservation, run span, MSR-write interception (caller swaps env.Dev),
// the decision hook, the ledger sampler and — when an observer is also
// attached — the magus_waste_* / magus_span_* families.
func installSpans(tr *spans.Tracer, n *node.Node, src demandSource, wname string, gov governor.Governor, o *obs.Observer, opt Options, horizon time.Duration) *spanSampler {
	cfg := n.Config()
	tr.SetPowerModel(spans.PowerModel{
		BaseWatts:          cfg.Uncore.BaseWatts,
		DynMaxWatts:        cfg.Uncore.DynMaxWatts,
		TrafficWattsPerGBs: cfg.Uncore.TrafficWattsPerGBs,
		PeakGBs:            cfg.BWPerSocketGBs,
		FloorFrac:          cfg.BWFloorFrac,
		RelMin:             cfg.UncoreMinGHz / cfg.UncoreMaxGHz,
	})
	// Arena sized from the run horizon: per tick one tick span, at
	// most one decision and Sockets MSR writes, plus the window spans
	// and the root.
	ticks := int(horizon/gov.Interval()) + 2
	tr.Reserve(ticks*(2+cfg.Sockets) + ticks/spans.DefaultWindowTicks + 16)
	tr.BeginRun(spans.Meta{
		System: cfg.Name, Workload: wname,
		Governor: gov.Name(), Seed: opt.Seed,
	})

	hookTarget := gov
	if pc, ok := gov.(*governor.PowerCapped); ok {
		hookTarget = pc.Inner()
	}
	if src, ok := hookTarget.(interface{ OnDecision(func(core.Decision)) }); ok {
		src.OnDecision(func(d core.Decision) {
			tr.Decision(d.At, spans.DecisionAttrs{
				ThroughputGBs: d.ThroughputGBs,
				DerivGBs:      d.DerivGBs,
				RingFill:      d.RingFill,
				Trend:         int(d.Trend),
				HighFreq:      d.HighFreq,
				Warmup:        d.Warmup,
				Missed:        d.Missed,
				Acted:         d.Acted,
				PrevGHz:       d.PrevGHz,
				TargetGHz:     d.TargetGHz,
				Reason:        d.Reason,
				Health:        d.SensorHealth.String(),
			})
		})
	}

	ss := &spanSampler{tr: tr, n: n, src: src, maxGHz: cfg.UncoreMaxGHz}
	if o != nil {
		reg := o.Registry()
		wasteVec := reg.GaugeVec("magus_waste_joules",
			"Uncore energy attribution by the spans ledger (cumulative joules).", "component")
		ss.wasteBase = wasteVec.With("baseline")
		ss.wasteUseful = wasteVec.With("useful")
		ss.wasteWaste = wasteVec.With("waste")
		ss.wasteTotal = wasteVec.With("total")
		ss.wasteFrac = reg.Gauge("magus_waste_fraction",
			"Wasted share of total uncore energy so far (0-1).")
		kindVec := reg.GaugeVec("magus_span_total",
			"Spans recorded by the decision-causality tracer, by kind.", "kind")
		for k := spans.KindRun; k <= spans.KindMSRWrite; k++ {
			ss.spanCounts = append(ss.spanCounts, kindVec.With(k.String()))
		}
	}
	return ss
}

// tickFn wraps a governor's Invoke so every scheduled invocation opens
// a tick span before the MDFS cycle runs inside it.
func tickFn(tr *spans.Tracer, inner func(time.Duration) time.Duration) func(time.Duration) time.Duration {
	return func(now time.Duration) time.Duration {
		tr.BeginTick(now)
		return inner(now)
	}
}

package harness

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"
	"time"

	"github.com/spear-repro/magus/internal/core"
	"github.com/spear-repro/magus/internal/faults"
	"github.com/spear-repro/magus/internal/governor"
	"github.com/spear-repro/magus/internal/node"
	"github.com/spear-repro/magus/internal/obs"
	"github.com/spear-repro/magus/internal/spans"
	"github.com/spear-repro/magus/internal/workload"
)

// spanTestProgram is a tiny deterministic workload (≈5 s nominal) so
// the committed Perfetto golden stays small while still exercising
// warm-up, a rise, a fall and completion.
func spanTestProgram() *workload.Program {
	p := &workload.Program{
		Name: "span-mini",
		Phases: []workload.Phase{
			{Name: "idle", Duration: 1 * time.Second, Mem: 0.02, Beta: 0.1, CPUBusyCores: 2},
			{Name: "burst", Duration: 2 * time.Second, Mem: 0.85, Beta: 0.7, CPUBusyCores: 8},
			{Name: "tail", Duration: 2 * time.Second, Mem: 0.08, Beta: 0.2, CPUBusyCores: 4},
		},
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}

// runWithSpans executes srad (or a custom program) under MAGUS with a
// fresh tracer attached and returns both.
func runWithSpans(t *testing.T, prog *workload.Program, seed int64, o *obs.Observer) (*spans.Tracer, Result) {
	t.Helper()
	tr := spans.New(core.DefaultConfig().Window)
	res, err := Run(node.IntelA100(), prog, core.New(core.DefaultConfig()), Options{
		Seed: seed, Spans: tr, Obs: o,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr, res
}

// TestSpansEnabledCausality runs a real workload with the tracer on
// and checks the recorded tree is complete and causally sound.
func TestSpansEnabledCausality(t *testing.T) {
	prog, _ := workload.ByName("srad")
	tr, _ := runWithSpans(t, prog, 7, nil)

	if got := tr.Count(spans.KindRun); got != 1 {
		t.Fatalf("run spans = %d, want 1", got)
	}
	if tr.Count(spans.KindTick) == 0 || tr.Count(spans.KindDecision) == 0 ||
		tr.Count(spans.KindWindow) == 0 || tr.Count(spans.KindMSRWrite) == 0 {
		t.Fatalf("missing span kinds: ticks=%d decisions=%d windows=%d writes=%d",
			tr.Count(spans.KindTick), tr.Count(spans.KindDecision),
			tr.Count(spans.KindWindow), tr.Count(spans.KindMSRWrite))
	}
	// MAGUS emits one decision per invocation tick.
	if tr.Count(spans.KindDecision) != tr.Count(spans.KindTick) {
		t.Errorf("decisions %d != ticks %d", tr.Count(spans.KindDecision), tr.Count(spans.KindTick))
	}

	all := tr.Spans()
	byID := make(map[spans.ID]*spans.Span, len(all))
	for i := range all {
		byID[all[i].ID] = &all[i]
	}
	wantParent := map[spans.Kind]spans.Kind{
		spans.KindWindow: spans.KindRun, spans.KindTick: spans.KindWindow,
		spans.KindDecision: spans.KindTick,
	}
	reasons := make(map[string]int)
	for i := range all {
		s := &all[i]
		if s.Open() {
			t.Fatalf("span %d (%v) still open after Run", s.ID, s.Kind)
		}
		if want, ok := wantParent[s.Kind]; ok {
			if got := byID[s.Parent].Kind; got != want {
				t.Fatalf("span %d (%v) parent kind = %v, want %v", s.ID, s.Kind, got, want)
			}
		}
		if s.Kind == spans.KindMSRWrite {
			// Writes hang off the decision that caused them, the tick
			// that performed them, or the run for attach-time writes.
			switch pk := byID[s.Parent].Kind; pk {
			case spans.KindDecision, spans.KindTick, spans.KindRun:
			default:
				t.Fatalf("msr write %d parent kind = %v", s.ID, pk)
			}
		}
		if s.Kind == spans.KindDecision {
			if s.Decision.Reason == "" {
				t.Fatal("decision span without a reason")
			}
			reasons[s.Decision.Reason]++
			if s.Decision.Health == "" {
				t.Fatal("decision span without sensor health")
			}
		}
	}
	if reasons[core.ReasonWarmup] == 0 || reasons[core.ReasonWarmupExit] != 1 {
		t.Errorf("warm-up reasons missing: %v", reasons)
	}
	if len(reasons) < 3 {
		t.Errorf("suspiciously few decision reasons on srad: %v", reasons)
	}
}

// TestSpansLedgerBalancesEndToEnd is the acceptance invariant on a
// real run: baseline + useful + waste equals the independently
// integrated uncore energy, per window and for the run, within the
// sample-scaled ulp tolerance; phase buckets partition the run total.
func TestSpansLedgerBalancesEndToEnd(t *testing.T) {
	prog, _ := workload.ByName("srad")
	tr, res := runWithSpans(t, prog, 7, nil)
	l := tr.Ledger()

	run := l.Run()
	if run.TotalJ <= 0 {
		t.Fatalf("no uncore energy attributed: %+v", run)
	}
	// Samples per bucket: steps × sockets. Default step is 1 ms.
	ccfg := core.DefaultConfig()
	stepsPerWindow := ccfg.Window * int((ccfg.Interval+ccfg.InvocationTime)/time.Millisecond) * 2
	tol := spans.BalanceTolUlps(stepsPerWindow)
	if !l.Balanced(spans.BalanceTolUlps(int(res.RuntimeS*1000) * 2)) {
		t.Errorf("run-level ledger does not balance: sum %v vs total %v", run.SumJ(), run.TotalJ)
	}
	for _, w := range l.Windows() {
		if w.Energy.Imbalance() > tol*ulpOf(w.Energy.TotalJ) {
			t.Errorf("window %d imbalance %v beyond %v ulps of %v J",
				w.Index, w.Energy.Imbalance(), tol, w.Energy.TotalJ)
		}
	}

	// The ledger total must equal the node's own uncore energy
	// integral by construction (same watts, same dt); sanity-bound it
	// against package energy.
	if run.TotalJ >= res.PkgEnergyJ {
		t.Errorf("uncore energy %v >= package energy %v", run.TotalJ, res.PkgEnergyJ)
	}

	var phaseSum float64
	for _, p := range l.Phases() {
		phaseSum += p.Energy.TotalJ
	}
	if diff := phaseSum - run.TotalJ; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("phase buckets sum %v != run total %v", phaseSum, run.TotalJ)
	}
	if len(l.Phases()) < 2 {
		t.Errorf("srad attributed to %d phases, want >= 2", len(l.Phases()))
	}
}

// ulpOf mirrors the spans package's ulp spacing for test math.
func ulpOf(x float64) float64 {
	u := math.Nextafter(math.Abs(x), math.Inf(1)) - math.Abs(x)
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return u
}

// TestSpansDisabledBytesMatchGoldens is the e2e determinism pin: with
// the spans code merged but Options.Spans nil, the faulted+observed
// run still reproduces the PR 4 goldens byte-for-byte. (The goldens
// themselves are asserted by TestHotPathIdentityFaultedObserved; this
// test additionally pins that a spans-enabled run of the same cell
// leaves the record and event bytes untouched — observation is
// passive — while only the metrics text gains the new families.)
func TestSpansDisabledBytesMatchGoldens(t *testing.T) {
	runCell := func(tr *spans.Tracer) ([]byte, []byte, []byte) {
		plan, ok := faults.Preset("chaos")
		if !ok {
			t.Fatal("chaos preset missing")
		}
		var events bytes.Buffer
		o := obs.New(obs.NewRegistry(), &events)
		prog, _ := workload.ByName("srad")
		res, err := Run(node.IntelA100(), prog, core.New(core.DefaultConfig()), Options{
			Seed: 7, TraceInterval: 100 * time.Millisecond, Faults: plan, Obs: o, Spans: tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		var record bytes.Buffer
		if err := NewRecord(res, 7).Write(&record); err != nil {
			t.Fatal(err)
		}
		return record.Bytes(), o.Registry().AppendText(nil), events.Bytes()
	}

	record, metrics, events := runCell(nil)
	checkGolden(t, filepath.Join("testdata", "hotpath_record.golden.json"), record)
	checkGolden(t, filepath.Join("testdata", "hotpath_metrics.golden"), metrics)
	checkGolden(t, filepath.Join("testdata", "hotpath_events.golden"), events)

	tr := spans.New(core.DefaultConfig().Window)
	recordS, metricsS, eventsS := runCell(tr)
	if !bytes.Equal(record, recordS) {
		t.Error("enabling spans changed the run record bytes — observation must be passive")
	}
	if !bytes.Equal(events, eventsS) {
		t.Error("enabling spans changed the event stream bytes")
	}
	if bytes.Equal(metrics, metricsS) {
		t.Error("spans-enabled metrics text gained no magus_waste_* families")
	}
	if !bytes.Contains(metricsS, []byte("magus_waste_joules")) ||
		!bytes.Contains(metricsS, []byte("magus_span_total")) {
		t.Error("spans metric families missing from exposition")
	}
	if tr.Count(spans.KindDecision) == 0 {
		t.Error("spans-enabled faulted run recorded no decisions")
	}
}

// TestSpansPerfettoGoldenHarness pins the full-pipeline Perfetto bytes
// for a small deterministic run. Regenerate with -update.
func TestSpansPerfettoGoldenHarness(t *testing.T) {
	tr, _ := runWithSpans(t, spanTestProgram(), 11, nil)
	var buf bytes.Buffer
	if err := tr.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, filepath.Join("testdata", "spans_perfetto.golden.json"), buf.Bytes())
}

// TestSpansRepeatSpecsDropTracer pins the batch contract: repeats must
// not share the caller's single-run tracer across parallel workers.
func TestSpansRepeatSpecsDropTracer(t *testing.T) {
	prog, _ := workload.ByName("srad")
	specs := RepeatSpecs(node.IntelA100(), prog,
		func() governor.Governor { return core.New(core.DefaultConfig()) },
		3, Options{Seed: 1, Spans: spans.New(0)})
	for i, s := range specs {
		if s.Opt.Spans != nil {
			t.Errorf("repeat %d carries the shared tracer", i)
		}
	}
}

package harness

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/spear-repro/magus/internal/core"
	"github.com/spear-repro/magus/internal/faults"
	"github.com/spear-repro/magus/internal/node"
	"github.com/spear-repro/magus/internal/obs"
	"github.com/spear-repro/magus/internal/report"
	"github.com/spear-repro/magus/internal/telemetry"
	"github.com/spear-repro/magus/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// goldenRun is the fixed scenario behind the byte-stability goldens:
// MAGUS on Intel+A100 running bfs at seed 1.
func goldenRun(t *testing.T, o *obs.Observer) Result {
	t.Helper()
	cfg := node.IntelA100()
	prog, _ := workload.ByName("bfs")
	res, err := Run(cfg, prog, core.New(core.DefaultConfig()), Options{Seed: 1, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/harness -run Golden -update` to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden (len got %d, want %d).\n"+
			"If the change is intentional, regenerate with -update.\nfirst diff near: %s",
			filepath.Base(path), len(got), len(want), firstDiff(got, want))
	}
}

func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 40
			if lo < 0 {
				lo = 0
			}
			hi := i + 40
			if hi > n {
				hi = n
			}
			return string(a[lo:hi])
		}
	}
	return "(one is a prefix of the other)"
}

// TestObservabilityGolden locks down the exact bytes of the metrics
// exposition and the JSONL event stream for a seeded MAGUS run. Any
// change to metric names, labels, formatting or event schema shows up
// here as a reviewable golden diff.
func TestObservabilityGolden(t *testing.T) {
	var events bytes.Buffer
	o := obs.New(obs.NewRegistry(), &events)
	goldenRun(t, o)

	checkGolden(t, filepath.Join("testdata", "metrics.golden"), o.Registry().AppendText(nil))
	checkGolden(t, filepath.Join("testdata", "events.golden"), events.Bytes())

	// Independent of the goldens, every event line must be valid JSON
	// with the mandatory envelope fields.
	for _, line := range strings.Split(strings.TrimSuffix(events.String(), "\n"), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("event line %q: %v", line, err)
		}
		if _, ok := m["t"]; !ok {
			t.Fatalf("event missing t: %q", line)
		}
		if _, ok := m["type"].(string); !ok {
			t.Fatalf("event missing type: %q", line)
		}
	}
}

// traceHash reduces a run's telemetry traces to a digest via the same
// CSV writer the figures use.
func traceHash(t *testing.T, res Result) [32]byte {
	t.Helper()
	names := res.Traces.Names()
	series := make(map[string]*telemetry.Series, len(names))
	for _, n := range names {
		series[n] = res.Traces.Series(n)
	}
	var buf bytes.Buffer
	if err := report.WriteCSV(&buf, names, series); err != nil {
		t.Fatal(err)
	}
	return sha256.Sum256(buf.Bytes())
}

// TestObservedRunBitIdentical is the determinism regression the
// observability contract promises: a seeded run with an observer
// attached produces the exact same Result, traces and governor Stats()
// as one without.
func TestObservedRunBitIdentical(t *testing.T) {
	cfg := node.IntelA100()
	prog, _ := workload.ByName("bfs")
	opt := Options{Seed: 11, TraceInterval: 100 * time.Millisecond}

	plain := core.New(core.DefaultConfig())
	base, err := Run(cfg, prog, plain, opt)
	if err != nil {
		t.Fatal(err)
	}

	var events bytes.Buffer
	obsOpt := opt
	obsOpt.Obs = obs.New(obs.NewRegistry(), &events)
	observedGov := core.New(core.DefaultConfig())
	observed, err := Run(cfg, prog, observedGov, obsOpt)
	if err != nil {
		t.Fatal(err)
	}

	if base.RuntimeS != observed.RuntimeS ||
		base.AvgCPUPowerW != observed.AvgCPUPowerW ||
		base.PkgEnergyJ != observed.PkgEnergyJ ||
		base.DramEnergyJ != observed.DramEnergyJ ||
		base.GPUEnergyJ != observed.GPUEnergyJ {
		t.Fatalf("observed run diverged:\nbase     %+v\nobserved %+v", base, observed)
	}
	if plain.Stats() != observedGov.Stats() {
		t.Fatalf("governor stats diverged:\nbase     %+v\nobserved %+v", plain.Stats(), observedGov.Stats())
	}
	if traceHash(t, base) != traceHash(t, observed) {
		t.Fatal("telemetry traces diverged under observation")
	}
	if events.Len() == 0 {
		t.Fatal("observed run emitted no events")
	}
}

// TestHealthzFlipsUnderFaultPreset drives the acceptance scenario end to
// end in-process: an httptest server over the observer reports healthy
// before the run and 503/lost after a pcm-loss run, with the
// healthy→degraded→lost transitions recorded in the event stream.
func TestHealthzFlipsUnderFaultPreset(t *testing.T) {
	var events bytes.Buffer
	o := obs.New(obs.NewRegistry(), &events)
	srv := httptest.NewServer(obs.NewHandler(o))
	defer srv.Close()

	status := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}

	if code, _ := status("/healthz"); code != http.StatusOK {
		t.Fatalf("pre-run healthz %d", code)
	}

	plan, ok := faults.Preset("pcm-loss")
	if !ok {
		t.Fatal("pcm-loss preset missing")
	}
	cfg := node.IntelA100()
	prog, _ := workload.ByName("bfs")
	res, err := Run(cfg, prog, core.New(core.DefaultConfig()), Options{Seed: 1, Faults: plan, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultsInjected.Total() == 0 {
		t.Fatal("plan fired nothing")
	}

	code, body := status("/healthz")
	if code != http.StatusServiceUnavailable || body != "lost\n" {
		t.Fatalf("post-run healthz %d %q, want 503 lost", code, body)
	}

	ev := events.String()
	for _, want := range []string{
		`"type":"health","from":"healthy","to":"degraded"`,
		`"from":"degraded","to":"lost"`,
	} {
		if !strings.Contains(ev, want) {
			t.Fatalf("event stream missing %q:\n%s", want, ev)
		}
	}

	// The metrics surface must agree with /healthz.
	code, body = status("/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics %d", code)
	}
	if !strings.Contains(body, "magus_sensor_health 2\n") {
		t.Fatal("magus_sensor_health gauge not lost")
	}
	if !strings.Contains(body, `magus_faults_injected_total{class="loss"}`) {
		t.Fatal("fault injection counters missing")
	}
	if len(o.Registry().Families()) < 12 {
		t.Fatalf("only %d metric families exported", len(o.Registry().Families()))
	}
}

// TestObservedRunConcurrentScrape runs a full observed simulation while
// scrape requests hammer the registry and health endpoints from other
// goroutines — the -race CI job turns any unsynchronised access into a
// failure.
func TestObservedRunConcurrentScrape(t *testing.T) {
	o := obs.New(obs.NewRegistry(), io.Discard)
	handler := obs.NewHandler(o)

	scrape := func() {
		rw := httptest.NewRecorder()
		handler.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/metrics", nil))
		rw = httptest.NewRecorder()
		handler.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	}

	done := make(chan struct{})
	ready := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		scrape()
		close(ready) // at least one scrape is guaranteed before the run starts
		for {
			select {
			case <-done:
				return
			default:
				scrape()
			}
		}
	}()
	<-ready

	cfg := node.IntelA100()
	prog, _ := workload.ByName("bfs")
	if _, err := Run(cfg, prog, core.New(core.DefaultConfig()), Options{Seed: 3, Obs: o}); err != nil {
		t.Fatal(err)
	}
	close(done)
	<-finished
}

package harness

import (
	"testing"
	"time"

	"github.com/spear-repro/magus/internal/core"
	"github.com/spear-repro/magus/internal/governor"
	"github.com/spear-repro/magus/internal/node"
	"github.com/spear-repro/magus/internal/workload"
)

func TestRunCompletesAndAccounts(t *testing.T) {
	cfg := node.IntelA100()
	prog, _ := workload.ByName("bfs")
	res, err := Run(cfg, prog, governor.NewDefault(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.System != "Intel+A100" || res.Workload != "bfs" || res.Governor != "default" {
		t.Fatalf("labels: %+v", res)
	}
	nominal := prog.NominalDuration().Seconds()
	if res.RuntimeS < nominal*0.99 || res.RuntimeS > nominal*1.2 {
		t.Fatalf("runtime %.2f s vs nominal %.2f s", res.RuntimeS, nominal)
	}
	if res.PkgEnergyJ <= 0 || res.DramEnergyJ <= 0 || res.GPUEnergyJ <= 0 {
		t.Fatalf("energy components: %+v", res)
	}
	if res.TotalEnergyJ() != res.PkgEnergyJ+res.DramEnergyJ+res.GPUEnergyJ {
		t.Fatal("TotalEnergyJ inconsistent")
	}
	// Average power = energy / time must be physically plausible.
	if res.AvgCPUPowerW < 80 || res.AvgCPUPowerW > 400 {
		t.Fatalf("avg CPU power %.1f W implausible", res.AvgCPUPowerW)
	}
	if res.Traces != nil {
		t.Fatal("traces recorded without TraceInterval")
	}
}

func TestRunDeterminism(t *testing.T) {
	cfg := node.IntelA100()
	prog, _ := workload.ByName("srad")
	a, err := Run(cfg, prog, core.New(core.DefaultConfig()), Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, prog, core.New(core.DefaultConfig()), Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.RuntimeS != b.RuntimeS || a.PkgEnergyJ != b.PkgEnergyJ || a.GPUEnergyJ != b.GPUEnergyJ {
		t.Fatalf("same-seed runs diverged: %+v vs %+v", a, b)
	}
	c, err := Run(cfg, prog, core.New(core.DefaultConfig()), Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if a.PkgEnergyJ == c.PkgEnergyJ {
		t.Fatal("different seeds produced identical energy")
	}
}

func TestRunHorizonError(t *testing.T) {
	cfg := node.IntelA100()
	prog, _ := workload.ByName("unet")
	_, err := Run(cfg, prog, governor.NewDefault(), Options{Seed: 1, Horizon: time.Second})
	if err == nil {
		t.Fatal("expected horizon error for a 1 s bound on a ~50 s app")
	}
}

func TestRunAttachFailure(t *testing.T) {
	cfg := node.IntelA100()
	prog, _ := workload.ByName("bfs")
	// Static pin outside the hardware range fails at attach.
	if _, err := Run(cfg, prog, governor.NewStatic(9.9), Options{Seed: 1}); err == nil {
		t.Fatal("attach failure not propagated")
	}
}

func TestCompareMetrics(t *testing.T) {
	base := Result{RuntimeS: 100, AvgCPUPowerW: 200, PkgEnergyJ: 15000, DramEnergyJ: 5000, GPUEnergyJ: 10000}
	x := Result{RuntimeS: 104, AvgCPUPowerW: 150, PkgEnergyJ: 11000, DramEnergyJ: 4600, GPUEnergyJ: 10400}
	c := Compare(base, x)
	if c.PerfLossPct != 4 {
		t.Fatalf("PerfLossPct = %v", c.PerfLossPct)
	}
	if c.PowerSavingPct != 25 {
		t.Fatalf("PowerSavingPct = %v", c.PowerSavingPct)
	}
	want := (30000.0 - 26000.0) / 30000.0 * 100
	if c.EnergySavingPct != want {
		t.Fatalf("EnergySavingPct = %v, want %v", c.EnergySavingPct, want)
	}
	// Zero baseline: metrics stay zero rather than dividing by zero.
	if z := Compare(Result{}, x); z.PerfLossPct != 0 || z.PowerSavingPct != 0 || z.EnergySavingPct != 0 {
		t.Fatalf("zero-baseline comparison: %+v", z)
	}
}

func TestRunRepeatedAggregates(t *testing.T) {
	cfg := node.IntelA100()
	prog, _ := workload.ByName("where")
	res, err := RunRepeated(cfg, prog,
		func() governor.Governor { return core.New(core.DefaultConfig()) },
		3, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Governor != "magus" {
		t.Fatalf("governor label %q", res.Governor)
	}
	// The aggregate must be close to any single run.
	single, err := Run(cfg, prog, core.New(core.DefaultConfig()), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rel := res.RuntimeS / single.RuntimeS; rel < 0.9 || rel > 1.1 {
		t.Fatalf("aggregate runtime %.2f vs single %.2f", res.RuntimeS, single.RuntimeS)
	}
	// Repeats must use distinct seeds: traces disabled, metrics differ
	// slightly between individual repeats, but the trimmed mean is
	// stable across calls.
	res2, err := RunRepeated(cfg, prog,
		func() governor.Governor { return core.New(core.DefaultConfig()) },
		3, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.RuntimeS != res2.RuntimeS {
		t.Fatal("RunRepeated not deterministic for a fixed base seed")
	}
}

func TestBuildEnvWiring(t *testing.T) {
	n := node.New(node.IntelA100())
	env, err := BuildEnv(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Validate(); err != nil {
		t.Fatal(err)
	}
	if env.Sockets != 2 || env.CPUs != 80 {
		t.Fatalf("topology: %d/%d", env.Sockets, env.CPUs)
	}
	if env.UncoreMinGHz != 0.8 || env.UncoreMaxGHz != 2.2 {
		t.Fatalf("uncore range: %v-%v", env.UncoreMinGHz, env.UncoreMaxGHz)
	}
	// The env's Charge hook must reach the node.
	env.Charge(50*time.Millisecond, 1, 2)
	n.Step(0, time.Millisecond)
	if n.DaemonBusySeconds() <= 0 {
		t.Fatal("Charge did not reach the node")
	}
}

func TestNodeRecorderProbes(t *testing.T) {
	n := node.New(node.Intel4A100())
	rec := NewNodeRecorder(n, 50*time.Millisecond)
	names := rec.Names()
	want := []string{"mem_gbs", "uncore_ghz", "cpu_power_w", "gpu0_clock_mhz"}
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("probe %q missing (have %v)", w, names)
		}
	}
	for i := 0; i < 200; i++ {
		n.Step(time.Duration(i)*time.Millisecond, time.Millisecond)
		rec.Step(time.Duration(i)*time.Millisecond, time.Millisecond)
	}
	if rec.Series("cpu_power_w").Len() != 4 {
		t.Fatalf("sampled %d points over 200ms at 50ms", rec.Series("cpu_power_w").Len())
	}
}

// Cross-check: the RAPL view a governor sees must agree with the
// node's ground-truth energy accounting.
func TestRAPLAgreesWithGroundTruth(t *testing.T) {
	cfg := node.IntelA100()
	n := node.New(cfg)
	env, err := BuildEnv(n)
	if err != nil {
		t.Fatal(err)
	}
	n.SetDemand(workload.Demand{MemGBs: 120, CPUBusyCores: 10, MemBoundFrac: 0.5})
	if _, err := env.RAPL.Sample(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		n.Step(time.Duration(i)*time.Millisecond, time.Millisecond)
	}
	s, err := env.RAPL.Sample(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	pkgJ, drmJ, _ := n.EnergyJ()
	raplPkg := env.RAPL.TotalPkgJ()
	raplDrm := env.RAPL.TotalDramJ()
	if rel := raplPkg / pkgJ; rel < 0.999 || rel > 1.001 {
		t.Fatalf("RAPL pkg %.2f J vs ground truth %.2f J", raplPkg, pkgJ)
	}
	if rel := raplDrm / drmJ; rel < 0.999 || rel > 1.001 {
		t.Fatalf("RAPL dram %.2f J vs ground truth %.2f J", raplDrm, drmJ)
	}
	if s.TotalCPUW() < 100 {
		t.Fatalf("sampled CPU power %.1f W implausible", s.TotalCPUW())
	}
}

package harness

// Calibration probe: prints per-workload metrics for manual model
// tuning. Run with:
//   go test ./internal/harness/ -run TestCalibrationProbe -v -calib
// It is skipped unless the -calib flag is set, so normal test runs stay
// quiet and fast.

import (
	"flag"
	"testing"

	"github.com/spear-repro/magus/internal/core"
	"github.com/spear-repro/magus/internal/governor"
	"github.com/spear-repro/magus/internal/node"
	"github.com/spear-repro/magus/internal/workload"
)

var calib = flag.Bool("calib", false, "run the calibration probe")

func TestCalibrationProbe(t *testing.T) {
	if !*calib {
		t.Skip("calibration probe disabled (use -calib)")
	}
	cfg := node.IntelA100()
	apps := workload.SingleGPU()
	apps = append(apps, "srad")

	for _, app := range apps {
		prog, ok := workload.ByName(app)
		if !ok {
			t.Fatalf("unknown app %s", app)
		}
		base, err := Run(cfg, prog, governor.NewDefault(), Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		min, err := Run(cfg, prog, governor.NewStatic(cfg.UncoreMinGHz), Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		magus, err := Run(cfg, prog, core.New(core.DefaultConfig()), Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		ups, err := Run(cfg, prog, governor.NewUPS(governor.UPSConfig{}), Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		cMin := Compare(base, min)
		cMagus := Compare(base, magus)
		cUPS := Compare(base, ups)
		t.Logf("%-22s base: %6.1fs %6.1fW cpu, %7.0fJ total | minpin: loss %5.1f%% pwr %5.1f%% en %5.1f%% | MAGUS: loss %5.1f%% pwr %5.1f%% en %5.1f%% | UPS: loss %5.1f%% pwr %5.1f%% en %5.1f%%",
			app, base.RuntimeS, base.AvgCPUPowerW, base.TotalEnergyJ(),
			cMin.PerfLossPct, cMin.PowerSavingPct, cMin.EnergySavingPct,
			cMagus.PerfLossPct, cMagus.PowerSavingPct, cMagus.EnergySavingPct,
			cUPS.PerfLossPct, cUPS.PowerSavingPct, cUPS.EnergySavingPct)
	}
}

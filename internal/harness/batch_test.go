package harness

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/spear-repro/magus/internal/core"
	"github.com/spear-repro/magus/internal/governor"
	"github.com/spear-repro/magus/internal/node"
	"github.com/spear-repro/magus/internal/obs"
	"github.com/spear-repro/magus/internal/workload"
)

func defaultGov() governor.Governor { return governor.NewDefault() }

// TestRepeatSpecsSeedContract pins the per-repeat seed derivation the
// parallel engine relies on: repeat i runs at Seed + i*7919, every
// repeat seed is distinct, and TraceInterval is disabled inside
// repeats regardless of the caller's setting.
func TestRepeatSpecsSeedContract(t *testing.T) {
	cfg := node.IntelA100()
	prog, _ := workload.ByName("bfs")
	base := Options{Seed: 42, TraceInterval: 100 * time.Millisecond, Jobs: 8}
	specs := RepeatSpecs(cfg, prog, defaultGov, 5, base)
	if len(specs) != 5 {
		t.Fatalf("len = %d, want 5", len(specs))
	}
	seen := map[int64]bool{}
	for i, s := range specs {
		want := int64(42) + int64(i)*7919
		if s.Opt.Seed != want {
			t.Fatalf("repeat %d: seed %d, want %d (Seed + i*7919 is a stable contract)", i, s.Opt.Seed, want)
		}
		if seen[s.Opt.Seed] {
			t.Fatalf("repeat %d: duplicate seed %d", i, s.Opt.Seed)
		}
		seen[s.Opt.Seed] = true
		if s.Opt.TraceInterval != 0 {
			t.Fatalf("repeat %d: TraceInterval %v leaked into repeat (must be 0)", i, s.Opt.TraceInterval)
		}
	}
	if got := RepeatSpecs(cfg, prog, defaultGov, 0, base); len(got) != 1 {
		t.Fatalf("reps<1 must clamp to one spec, got %d", len(got))
	}
}

func TestRunBatchOrderAndDeterminismAcrossJobs(t *testing.T) {
	cfg := node.IntelA100()
	progs := []string{"bfs", "srad", "bfs", "srad"}
	build := func() []RunSpec {
		specs := make([]RunSpec, 0, len(progs))
		for i, name := range progs {
			prog, _ := workload.ByName(name)
			specs = append(specs, RunSpec{
				Cfg: cfg, Prog: prog,
				Factory: func() governor.Governor { return core.New(core.DefaultConfig()) },
				Opt:     Options{Seed: int64(1 + i)},
			})
		}
		return specs
	}
	serial, err := RunBatch(build(), 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunBatch(build(), 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i].Workload != progs[i] {
			t.Fatalf("result %d out of order: %s, want %s", i, serial[i].Workload, progs[i])
		}
		if serial[i] != par[i] {
			t.Fatalf("jobs=8 diverges from jobs=1 at cell %d:\n%+v\n%+v", i, serial[i], par[i])
		}
	}
}

func TestRunRepeatedParallelMatchesSerial(t *testing.T) {
	cfg := node.IntelA100()
	prog, _ := workload.ByName("srad")
	factory := func() governor.Governor { return core.New(core.DefaultConfig()) }
	a, err := RunRepeated(cfg, prog, factory, 5, Options{Seed: 3, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunRepeated(cfg, prog, factory, 5, Options{Seed: 3, Jobs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("RunRepeated jobs=8 diverges from jobs=1:\n%+v\n%+v", a, b)
	}
}

func TestRunBatchPropagatesError(t *testing.T) {
	cfg := node.IntelA100()
	prog, _ := workload.ByName("unet")
	specs := RepeatSpecs(cfg, prog, defaultGov, 4, Options{Seed: 1, Horizon: time.Second})
	if _, err := RunBatch(specs, 4); err == nil {
		t.Fatal("horizon error not propagated from batch")
	}
}

// TestRunRepeatedSerialisesSharedNoise: a PCMNoise closure typically
// captures one rand.Rand; running it from several goroutines would be
// a data race, so RunRepeated must force jobs=1 in that case.
func TestRunRepeatedSerialisesSharedNoise(t *testing.T) {
	cfg := node.IntelA100()
	prog, _ := workload.ByName("bfs")
	var active atomic.Int32
	noise := func(gbs float64) float64 {
		if active.Add(1) > 1 {
			t.Error("PCMNoise invoked concurrently despite shared closure")
		}
		active.Add(-1)
		return gbs
	}
	if _, err := RunRepeated(cfg, prog, defaultGov, 3,
		Options{Seed: 1, Jobs: 8, PCMNoise: noise}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBatchRegistersPoolMetrics(t *testing.T) {
	cfg := node.IntelA100()
	prog, _ := workload.ByName("bfs")
	o := obs.New(obs.NewRegistry(), nil)
	specs := RepeatSpecs(cfg, prog, defaultGov, 2, Options{Seed: 1, Obs: o})
	if _, err := RunBatch(specs, 2); err != nil {
		t.Fatal(err)
	}
	fams := o.Registry().Text()
	for _, name := range []string{
		"magus_pool_workers",
		"magus_pool_inflight_cells",
		"magus_pool_cells_completed_total",
		"magus_pool_cell_duration_seconds",
	} {
		if !strings.Contains(fams, name) {
			t.Fatalf("pool metric %s not registered; exposition:\n%s", name, fams)
		}
	}
}

package harness

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/spear-repro/magus/internal/telemetry"
)

// Record is the durable, JSON-serialisable form of a run's results —
// what magusd -record writes so runs can be archived, diffed and
// re-plotted without re-simulating.
type Record struct {
	System   string `json:"system"`
	Workload string `json:"workload"`
	Governor string `json:"governor"`
	Seed     int64  `json:"seed"`

	RuntimeS     float64 `json:"runtime_s"`
	AvgCPUPowerW float64 `json:"avg_cpu_power_w"`
	PkgEnergyJ   float64 `json:"pkg_energy_j"`
	DramEnergyJ  float64 `json:"dram_energy_j"`
	GPUEnergyJ   float64 `json:"gpu_energy_j"`
	TotalEnergyJ float64 `json:"total_energy_j"`

	// Traces holds the recorded series (when the run was traced),
	// keyed by probe name.
	Traces map[string]TraceJSON `json:"traces,omitempty"`
}

// TraceJSON is one serialised time series.
type TraceJSON struct {
	TimesS []float64 `json:"times_s"`
	Values []float64 `json:"values"`
}

// NewRecord converts a Result (and the seed that produced it) into a
// Record, including any traces.
func NewRecord(res Result, seed int64) Record {
	rec := Record{
		System:       res.System,
		Workload:     res.Workload,
		Governor:     res.Governor,
		Seed:         seed,
		RuntimeS:     res.RuntimeS,
		AvgCPUPowerW: res.AvgCPUPowerW,
		PkgEnergyJ:   res.PkgEnergyJ,
		DramEnergyJ:  res.DramEnergyJ,
		GPUEnergyJ:   res.GPUEnergyJ,
		TotalEnergyJ: res.TotalEnergyJ(),
	}
	if res.Traces != nil {
		rec.Traces = make(map[string]TraceJSON)
		for _, name := range res.Traces.Names() {
			s := res.Traces.Series(name)
			rec.Traces[name] = TraceJSON{
				TimesS: append([]float64(nil), s.Times...),
				Values: append([]float64(nil), s.Values...),
			}
		}
	}
	return rec
}

// Write encodes the record as indented JSON.
func (r Record) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadRecord decodes a record and sanity-checks it.
func ReadRecord(r io.Reader) (Record, error) {
	var rec Record
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rec); err != nil {
		return Record{}, fmt.Errorf("harness: decode record: %w", err)
	}
	if rec.RuntimeS <= 0 {
		return Record{}, fmt.Errorf("harness: record without a runtime")
	}
	for name, tr := range rec.Traces {
		if len(tr.TimesS) != len(tr.Values) {
			return Record{}, fmt.Errorf("harness: trace %q times/values mismatch", name)
		}
	}
	return rec, nil
}

// Series reconstructs a telemetry series from a stored trace; ok is
// false when the record has no trace under that name.
func (r Record) Series(name string) (*telemetry.Series, bool) {
	tr, ok := r.Traces[name]
	if !ok {
		return nil, false
	}
	return &telemetry.Series{
		Times:  append([]float64(nil), tr.TimesS...),
		Values: append([]float64(nil), tr.Values...),
	}, true
}

package harness

import (
	"time"

	"github.com/spear-repro/magus/internal/core"
	"github.com/spear-repro/magus/internal/faults"
	"github.com/spear-repro/magus/internal/flight"
	"github.com/spear-repro/magus/internal/governor"
	"github.com/spear-repro/magus/internal/resilient"
)

// Flight-recorder wiring. When Options.Flight is set the run records
// its recent governor decisions, sensor-health transitions and
// fault-injection tallies into the caller's bounded ring
// (internal/flight) — the always-on postmortem tail magusd serve dumps
// when a session panics, on SIGQUIT, or from GET /debug/flight.
//
// Recording is strictly passive (reads of state the simulation already
// computed) and allocation-free, so an armed run stays byte-identical
// to an unarmed one; with Options.Flight nil no component is added and
// the wiring is byte-for-byte the seed path.

// flightObserver polls health and fault state each tick and records
// transitions; decisions arrive through the governor's OnDecision
// hook. It implements sim.Component.
type flightObserver struct {
	ring *flight.Ring
	fset *faults.Set
	hr   healthReporter

	lastHealth resilient.Health
	haveTally  bool
	lastTally  faults.Tally
}

// installFlight wires the ring into a run: the per-tick transition
// poller plus — when the governor exposes a decision stream — the
// OnDecision hook (hooks append, so the metrics observer and the
// flight recorder coexist).
func installFlight(ring *flight.Ring, fset *faults.Set, gov governor.Governor) *flightObserver {
	fo := &flightObserver{ring: ring, fset: fset}
	if hr, ok := gov.(healthReporter); ok {
		fo.hr = hr
	}
	hookTarget := gov
	if pc, ok := gov.(*governor.PowerCapped); ok {
		hookTarget = pc.Inner()
	}
	if src, ok := hookTarget.(interface{ OnDecision(func(core.Decision)) }); ok {
		src.OnDecision(fo.onDecision)
	}
	return fo
}

// Decision outcome tags (constant strings: recording never allocates).
var flightOutcomes = [...]string{"hold", "acted", "warmup", "missed"}

func flightOutcome(d core.Decision) string {
	switch {
	case d.Missed:
		return flightOutcomes[3]
	case d.Warmup:
		return flightOutcomes[2]
	case d.Acted:
		return flightOutcomes[1]
	default:
		return flightOutcomes[0]
	}
}

// onDecision records one governor decision: A is the requested uncore
// target in GHz, B the sensed throughput in GB/s, C the sensor health.
func (fo *flightObserver) onDecision(d core.Decision) {
	fo.ring.Record(d.At.Seconds(), flight.KindDecision, flightOutcome(d),
		d.TargetGHz, d.ThroughputGBs, float64(d.SensorHealth))
}

// Step implements sim.Component: record sensor-health transitions
// (A=from, B=to) and fault-tally changes (A=total injected) as they
// happen.
func (fo *flightObserver) Step(now, dt time.Duration) {
	if fo.hr != nil {
		if h := fo.hr.SensorHealth(); h != fo.lastHealth {
			fo.ring.Record(now.Seconds(), flight.KindHealth, h.String(),
				float64(fo.lastHealth), float64(h), 0)
			fo.lastHealth = h
		}
	}
	if fo.fset != nil {
		if t := fo.fset.Tally(); !fo.haveTally || t != fo.lastTally {
			if fo.haveTally { // skip the all-zero arming snapshot
				fo.ring.Record(now.Seconds(), flight.KindFault, "injected",
					float64(t.Total()), 0, 0)
			}
			fo.haveTally = true
			fo.lastTally = t
		}
	}
}

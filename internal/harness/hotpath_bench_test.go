package harness

import (
	"testing"
	"time"

	"github.com/spear-repro/magus/internal/core"
	"github.com/spear-repro/magus/internal/node"
	"github.com/spear-repro/magus/internal/sim"
	"github.com/spear-repro/magus/internal/workload"
)

// BenchmarkHotPathSpansDisabledTick measures one steady-state engine
// tick with the full Run wiring and no tracer attached — the exact
// configuration TestSteadyStateTickZeroAlloc pins at zero allocations.
// The row exists so cmd/benchgate keeps gating the spans-disabled hot
// path at 0 allocs/op: the tracing layer must stay free when off.
func BenchmarkHotPathSpansDisabledTick(b *testing.B) {
	cfg := node.IntelA100()
	prog, ok := workload.ByName("unet")
	if !ok {
		b.Fatal("unknown workload unet")
	}
	eng := sim.NewEngine(0)
	n := node.New(cfg)
	runner := workload.NewRunner(prog, cfg.SystemBWGBs(), 1)
	runner.SetAttained(n.AttainedGBs)

	gov := core.New(core.DefaultConfig())
	env, _, err := buildEnv(n, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	if err := gov.Attach(env); err != nil {
		b.Fatal(err)
	}

	eng.AddComponent(sim.ComponentFunc(func(now, dt time.Duration) {
		runner.Step(now, dt)
		n.SetDemand(runner.Demand())
	}))
	eng.AddComponent(n)

	// Reserve trace storage for the benchmark's whole virtual horizon
	// (b.N engine ticks past warm-up), as Run reserves for its horizon —
	// otherwise recorder growth past the nominal duration shows up as
	// amortised bytes that have nothing to do with the tick loop.
	interval := 100 * time.Millisecond
	rec := NewNodeRecorder(n, interval)
	rec.Reserve(int(prog.NominalDuration()/interval) + b.N/100 + 256)
	eng.AddComponent(rec)

	eng.AddTask(&sim.Task{Name: gov.Name(), Interval: gov.Interval(), Fn: gov.Invoke}, 0)

	// Warm past MDFS warmup and lazy buffer growth, as the alloc test does.
	eng.RunFor(20 * time.Second)
	step := eng.Step()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.RunFor(step)
	}
}

package harness

import (
	"flag"
	"testing"

	"github.com/spear-repro/magus/internal/core"
	"github.com/spear-repro/magus/internal/node"
	"github.com/spear-repro/magus/internal/workload"
)

var debugApp = flag.String("debugapp", "", "dump MAGUS decisions for one app")

func TestDebugDecisions(t *testing.T) {
	if *debugApp == "" {
		t.Skip("debug probe disabled (use -debugapp=<name>)")
	}
	prog, ok := workload.ByName(*debugApp)
	if !ok {
		t.Fatalf("unknown app %q", *debugApp)
	}
	m := core.New(core.DefaultConfig())
	m.OnDecision(func(d core.Decision) {
		t.Logf("t=%6.1fs thr=%7.1f trend=%-5s hi=%-5v warm=%-5v target=%.1fGHz",
			d.At.Seconds(), d.ThroughputGBs, d.Trend, d.HighFreq, d.Warmup, d.TargetGHz)
	})
	res, err := Run(node.IntelA100(), prog, m, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	t.Logf("runtime=%.1fs cpuW=%.1f stats=%+v", res.RuntimeS, res.AvgCPUPowerW, s)
}

package harness

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"

	"github.com/spear-repro/magus/internal/core"
	"github.com/spear-repro/magus/internal/faults"
	"github.com/spear-repro/magus/internal/node"
	"github.com/spear-repro/magus/internal/obs"
	"github.com/spear-repro/magus/internal/workload"
)

// TestHotPathIdentityFaultedObserved pins the full output surface of a
// faulted AND observed run — the run record (result + traces), the
// metrics exposition and the JSONL event stream — to its
// pre-optimization bytes. This is the worst-case tick: fault
// injection, resilience fallbacks, trace sampling and observer
// instrumentation are all live, so every hot-path branch the
// zero-allocation rewrite touches feeds into these three files.
func TestHotPathIdentityFaultedObserved(t *testing.T) {
	plan, ok := faults.Preset("chaos")
	if !ok {
		t.Fatal("chaos preset missing")
	}
	var events bytes.Buffer
	o := obs.New(obs.NewRegistry(), &events)

	cfg := node.IntelA100()
	prog, _ := workload.ByName("srad")
	res, err := Run(cfg, prog, core.New(core.DefaultConfig()), Options{
		Seed:          7,
		TraceInterval: 100 * time.Millisecond,
		Faults:        plan,
		Obs:           o,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultsInjected.Total() == 0 {
		t.Fatal("chaos plan fired nothing; the golden would not cover the fault path")
	}

	var record bytes.Buffer
	if err := NewRecord(res, 7).Write(&record); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, filepath.Join("testdata", "hotpath_record.golden.json"), record.Bytes())
	checkGolden(t, filepath.Join("testdata", "hotpath_metrics.golden"), o.Registry().AppendText(nil))
	checkGolden(t, filepath.Join("testdata", "hotpath_events.golden"), events.Bytes())
}

package harness

import (
	"math"
	"strings"
	"testing"
	"time"

	"github.com/spear-repro/magus/internal/governor"
	"github.com/spear-repro/magus/internal/node"
	"github.com/spear-repro/magus/internal/obs"
	"github.com/spear-repro/magus/internal/spans"
	"github.com/spear-repro/magus/internal/workload"
)

func colocSpec(t *testing.T, policy workload.MuxPolicy) *workload.MuxSpec {
	t.Helper()
	a, ok := workload.ByName("srad")
	if !ok {
		t.Fatal("srad not in catalog")
	}
	b, ok := workload.ByName("pathfinder")
	if !ok {
		t.Fatal("pathfinder not in catalog")
	}
	return &workload.MuxSpec{
		Policy: policy,
		Tenants: []workload.TenantSpec{
			{Tenant: "a", Program: a, Seed: 1},
			{Tenant: "b", Program: b, Seed: 2},
		},
	}
}

// TestRunColocated drives a full co-located run per policy and checks
// the end-to-end attribution contract: a report for every tenant, the
// balance invariant within the report's own tolerance, and the
// policy-appropriate regime labels.
func TestRunColocated(t *testing.T) {
	cfg := node.IntelA100()
	for _, policy := range []workload.MuxPolicy{workload.RoundRobin, workload.Fractional} {
		spec := colocSpec(t, policy)
		res, err := Run(cfg, nil, governor.NewDefault(), Options{Seed: 1, Tenants: spec})
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if res.Tenants == nil {
			t.Fatalf("%v: colocated result has no tenant report", policy)
		}
		r := res.Tenants
		if len(r.Tenants) != 2 {
			t.Fatalf("%v: %d tenant rows, want 2", policy, len(r.Tenants))
		}
		if !r.Balanced(r.BalanceTol()) {
			t.Fatalf("%v: attribution imbalance %v J beyond %v ulps",
				policy, math.Abs(r.SumJ()-r.TotalJ), r.BalanceTol())
		}
		if r.TotalJ <= 0 {
			t.Fatalf("%v: no energy attributed", policy)
		}
		for _, te := range r.Tenants {
			if te.TotalJ() <= 0 {
				t.Fatalf("%v: tenant %s billed nothing", policy, te.Tenant)
			}
			switch policy {
			case workload.RoundRobin:
				// Time-slicing always has an exclusive owner: every
				// joule is measured, none estimated.
				if te.Estimated() {
					t.Fatalf("round-robin tenant %s carries estimated energy", te.Tenant)
				}
			case workload.Fractional:
				if te.EstimatedS <= 0 {
					t.Fatalf("fractional tenant %s never estimated", te.Tenant)
				}
			}
		}
		if !strings.HasPrefix(res.Workload, "colocated(") {
			t.Fatalf("%v: workload label %q", policy, res.Workload)
		}
	}
}

// TestRunColocatedProgramConflict: a program and Options.Tenants are
// mutually exclusive.
func TestRunColocatedProgramConflict(t *testing.T) {
	cfg := node.IntelA100()
	prog, _ := workload.ByName("srad")
	_, err := Run(cfg, prog, governor.NewDefault(), Options{Seed: 1, Tenants: colocSpec(t, workload.RoundRobin)})
	if err == nil {
		t.Fatal("Run accepted both a program and Options.Tenants")
	}
}

// TestColocatedNotCheckpointable: the checkpoint layer refuses
// co-located runs loudly instead of panicking on the nil program.
func TestColocatedNotCheckpointable(t *testing.T) {
	cfg := node.IntelA100()
	st, err := NewSteppable(cfg, nil, governor.NewDefault(), Options{Seed: 1, Tenants: colocSpec(t, workload.RoundRobin)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Advance(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Checkpoint(); err == nil {
		t.Fatal("Checkpoint accepted a co-located run")
	}
}

// TestColocatedTenantMetrics: with an observer attached, the per-tenant
// energy family is exported with the estimated label and its exact+
// estimated series sum to the attribution report.
func TestColocatedTenantMetrics(t *testing.T) {
	cfg := node.IntelA100()
	o := obs.New(nil, nil)
	res, err := Run(cfg, nil, governor.NewDefault(), Options{
		Seed: 1, Tenants: colocSpec(t, workload.Fractional), Obs: o,
	})
	if err != nil {
		t.Fatal(err)
	}
	text := o.Registry().Text()
	if !strings.Contains(text, `magus_tenant_energy_joules{estimated="true",tenant="a"}`) &&
		!strings.Contains(text, `magus_tenant_energy_joules{tenant="a",estimated="true"}`) {
		t.Fatalf("tenant energy metric missing estimated label:\n%s", text)
	}
	for _, te := range res.Tenants.Tenants {
		if te.EstimatedJ <= 0 {
			t.Fatalf("tenant %s has no estimated energy under fractional", te.Tenant)
		}
	}
}

// TestColocatedSpansTenantSplit: the waste ledger's per-tenant buckets
// individually balance and jointly sum to the run attribution.
func TestColocatedSpansTenantSplit(t *testing.T) {
	cfg := node.IntelA100()
	tr := spans.New(0)
	res, err := Run(cfg, nil, governor.NewDefault(), Options{
		Seed: 1, Tenants: colocSpec(t, workload.RoundRobin), Spans: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	tenants := tr.Ledger().Tenants()
	if len(tenants) != 2 {
		t.Fatalf("%d ledger tenant buckets, want 2", len(tenants))
	}
	run := tr.Ledger().Run()
	steps := spans.StepsIn(time.Duration(res.RuntimeS*float64(time.Second)), time.Millisecond)
	tol := spans.BalanceTolUlps(steps*cfg.Sockets) * 4
	var sum, sumTotal float64
	for _, te := range tenants {
		if te.Energy.TotalJ <= 0 {
			t.Fatalf("ledger tenant %s attributed nothing", te.Name)
		}
		if te.Energy.Imbalance() > spans.BalanceTolUlps(steps*cfg.Sockets)*ulpOf(te.Energy.TotalJ) {
			t.Fatalf("ledger tenant %s bucket imbalanced by %v", te.Name, te.Energy.Imbalance())
		}
		sum += te.Energy.SumJ()
		sumTotal += te.Energy.TotalJ
	}
	if math.Abs(sumTotal-run.TotalJ) > tol*ulpOf(run.TotalJ) {
		t.Fatalf("tenant buckets total %v != run total %v", sumTotal, run.TotalJ)
	}
	_ = sum
}

// TestSingleTenantUnchanged: a nil Tenants option is the seed path —
// same result as before the colocation layer existed, with no tenant
// report attached.
func TestSingleTenantUnchanged(t *testing.T) {
	cfg := node.IntelA100()
	prog, _ := workload.ByName("srad")
	res, err := Run(cfg, prog, governor.NewDefault(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tenants != nil {
		t.Fatal("single-tenant run carries a tenant report")
	}
	if res.Workload != "srad" {
		t.Fatalf("workload label %q", res.Workload)
	}
}

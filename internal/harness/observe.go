package harness

import (
	"strconv"
	"time"

	"github.com/spear-repro/magus/internal/core"
	"github.com/spear-repro/magus/internal/faults"
	"github.com/spear-repro/magus/internal/governor"
	"github.com/spear-repro/magus/internal/node"
	"github.com/spear-repro/magus/internal/obs"
	"github.com/spear-repro/magus/internal/resilient"
)

// DefaultObsInterval is the metrics sampling period when Options.Obs
// is set and Options.ObsInterval is zero.
const DefaultObsInterval = 100 * time.Millisecond

// govCounters is the architecture-neutral snapshot of a governor's
// cumulative counters, polled on the sampling interval.
type govCounters struct {
	invocations, tuneEvents, overrides uint64
	msrReads, msrWrites, phaseResets   uint64
	warmupCycles, missed               uint64
	retries, timeouts, wild, stale     uint64
	degradedCycles, lostCycles         uint64
	recoveries, watchdog               uint64
	health                             resilient.Health
}

// pollerFor maps a governor to a counter snapshot function; nil when
// the governor exposes no counters (static pins, vendor default).
func pollerFor(gov governor.Governor) func() govCounters {
	if pc, ok := gov.(*governor.PowerCapped); ok {
		gov = pc.Inner()
	}
	switch g := gov.(type) {
	case interface{ Stats() core.Stats }: // MAGUS and PerSocket
		hr, _ := gov.(healthReporter)
		return func() govCounters {
			s := g.Stats()
			c := govCounters{
				invocations:    s.Invocations,
				tuneEvents:     s.TuneEvents,
				overrides:      s.Overrides,
				msrWrites:      s.MSRWrites,
				warmupCycles:   s.WarmupCycles,
				missed:         s.MissedSamples,
				retries:        s.SensorRetries,
				timeouts:       s.SensorTimeouts,
				wild:           s.WildSamples,
				stale:          s.StaleSamples,
				degradedCycles: s.DegradedCycles,
				lostCycles:     s.LostCycles,
				recoveries:     s.Recoveries,
				watchdog:       s.WatchdogOverruns,
			}
			if hr != nil {
				c.health = hr.SensorHealth()
			}
			return c
		}
	case *governor.UPS:
		return func() govCounters {
			inv, reads, writes, resets := g.Stats()
			r := g.Resilience()
			return govCounters{
				invocations: inv, msrReads: reads, msrWrites: writes, phaseResets: resets,
				missed: r.Misses, retries: r.Retries, timeouts: r.Timeouts,
				wild: r.WildDrops, stale: r.StaleDrops,
				degradedCycles: r.DegradedCycles, lostCycles: r.LostCycles,
				recoveries: r.Recoveries, health: g.SensorHealth(),
			}
		}
	case *governor.DUF:
		return func() govCounters {
			r := g.Resilience()
			return govCounters{
				invocations: g.Invocations(),
				missed:      r.Misses, retries: r.Retries, timeouts: r.Timeouts,
				wild: r.WildDrops, stale: r.StaleDrops,
				degradedCycles: r.DegradedCycles, lostCycles: r.LostCycles,
				recoveries: r.Recoveries, health: g.SensorHealth(),
			}
		}
	}
	return nil
}

// counterDelta feeds the difference between successive snapshots of a
// cumulative source counter into a registry counter.
type counterDelta struct {
	dst  *obs.Counter
	read func(govCounters) uint64
	last uint64
}

func (d *counterDelta) update(c govCounters) {
	cur := d.read(c)
	if cur > d.last {
		d.dst.Add(float64(cur - d.last))
	}
	d.last = cur
}

// runObserver samples node and governor state into the registry on a
// fixed interval and emits fault/health events. It implements
// sim.Component; everything it does is read-only with respect to the
// simulation, so an observed run stays bit-identical to an unobserved
// one.
type runObserver struct {
	o        *obs.Observer
	n        *node.Node
	fset     *faults.Set
	poll     func() govCounters
	interval time.Duration
	next     time.Duration

	steps    *obs.Counter
	simTime  *obs.Gauge
	memGBs   *obs.Gauge
	thrHist  *obs.Histogram
	nodeW    *obs.Gauge
	cpuW     *obs.Gauge
	uncore   []*obs.Gauge
	pkgW     []*obs.Gauge
	dramW    []*obs.Gauge
	gpuW     []*obs.Gauge
	gpuClk   []*obs.Gauge
	energyPk *obs.Gauge
	energyDr *obs.Gauge
	energyGp *obs.Gauge

	healthG    *obs.Gauge
	lastHealth resilient.Health
	deltas     []*counterDelta

	faultCtr  map[string]*obs.Counter
	lastTally faults.Tally

	// do is the decision hook installed alongside this sampler (nil
	// when the governor exposes no decision stream); retained so the
	// checkpoint layer can capture its edge-trigger state.
	do *decisionObserver
}

// newRunObserver registers the run's metric families on o's registry
// and returns the sampling component.
func newRunObserver(o *obs.Observer, n *node.Node, fset *faults.Set, gov governor.Governor, interval time.Duration) *runObserver {
	reg := o.Registry()
	cfg := n.Config()
	ro := &runObserver{
		o: o, n: n, fset: fset, poll: pollerFor(gov), interval: interval,

		steps:   reg.Counter("magus_sim_steps_total", "Engine steps observed by the run."),
		simTime: reg.Gauge("magus_sim_time_seconds", "Virtual time of the run in seconds."),
		memGBs:  reg.Gauge("magus_mem_throughput_gbs", "System memory throughput in GB/s."),
		thrHist: reg.Histogram("magus_mem_throughput_distribution_gbs",
			"Distribution of sampled system memory throughput in GB/s.",
			[]float64{5, 10, 20, 40, 60, 80, 120, 160, 200, 280, 400}),
		nodeW: reg.Gauge("magus_node_power_watts", "Total node power (CPU package + DRAM + GPU boards)."),
		cpuW:  reg.Gauge("magus_cpu_power_watts", "CPU power (package + DRAM, all sockets)."),

		energyPk: reg.GaugeVec("magus_energy_joules",
			"Cumulative energy to solution by domain.", "domain").With("pkg"),
		energyDr: reg.GaugeVec("magus_energy_joules",
			"Cumulative energy to solution by domain.", "domain").With("dram"),
		energyGp: reg.GaugeVec("magus_energy_joules",
			"Cumulative energy to solution by domain.", "domain").With("gpu"),

		healthG: reg.Gauge("magus_sensor_health",
			"Governor sensing-path health (0 healthy, 1 degraded, 2 lost)."),
	}

	uncoreVec := reg.GaugeVec("magus_uncore_frequency_ghz", "Effective uncore frequency per socket in GHz.", "socket")
	pkgVec := reg.GaugeVec("magus_package_power_watts", "Package power per socket in watts.", "socket")
	dramVec := reg.GaugeVec("magus_dram_power_watts", "DRAM power per socket in watts.", "socket")
	for s := 0; s < cfg.Sockets; s++ {
		l := strconv.Itoa(s)
		ro.uncore = append(ro.uncore, uncoreVec.With(l))
		ro.pkgW = append(ro.pkgW, pkgVec.With(l))
		ro.dramW = append(ro.dramW, dramVec.With(l))
	}
	if n.GPUCount() > 0 {
		gw := reg.GaugeVec("magus_gpu_power_watts", "GPU board power in watts.", "gpu")
		gc := reg.GaugeVec("magus_gpu_clock_mhz", "GPU SM clock in MHz.", "gpu")
		for g := 0; g < n.GPUCount(); g++ {
			l := strconv.Itoa(g)
			ro.gpuW = append(ro.gpuW, gw.With(l))
			ro.gpuClk = append(ro.gpuClk, gc.With(l))
		}
	}

	if ro.poll != nil {
		add := func(name, help string, read func(govCounters) uint64) {
			ro.deltas = append(ro.deltas, &counterDelta{dst: reg.Counter(name, help), read: read})
		}
		add("magus_governor_invocations_total", "Governor decision cycles executed.",
			func(c govCounters) uint64 { return c.invocations })
		add("magus_tune_events_total", "Potential uncore tuning events logged (Algorithm 1 trend edges).",
			func(c govCounters) uint64 { return c.tuneEvents })
		add("magus_highfreq_overrides_total", "Decisions suppressed by the high-frequency detector (Algorithm 2).",
			func(c govCounters) uint64 { return c.overrides })
		add("magus_msr_reads_total", "MSR reads performed by the governor's counter sweeps.",
			func(c govCounters) uint64 { return c.msrReads })
		add("magus_msr_writes_total", "Uncore-limit MSR writes performed by the governor.",
			func(c govCounters) uint64 { return c.msrWrites })
		add("magus_phase_resets_total", "Phase-transition resets (UPS DRAM-power detector).",
			func(c govCounters) uint64 { return c.phaseResets })
		add("magus_warmup_cycles_total", "Warm-up monitoring cycles spent collecting history.",
			func(c govCounters) uint64 { return c.warmupCycles })
		add("magus_missed_samples_total", "Decision cycles that produced no usable sensor sample.",
			func(c govCounters) uint64 { return c.missed })
		add("magus_sensor_retries_total", "Extra sensor read attempts after transient errors.",
			func(c govCounters) uint64 { return c.retries })
		add("magus_sensor_timeouts_total", "Sensor accesses abandoned after exceeding the read timeout.",
			func(c govCounters) uint64 { return c.timeouts })
		add("magus_wild_samples_total", "Sensor readings rejected as corrupted (NaN, negative, implausible).",
			func(c govCounters) uint64 { return c.wild })
		add("magus_stale_samples_total", "Sensor readings rejected as frozen.",
			func(c govCounters) uint64 { return c.stale })
		add("magus_degraded_cycles_total", "Missed cycles spent in the degraded sensor state.",
			func(c govCounters) uint64 { return c.degradedCycles })
		add("magus_lost_cycles_total", "Missed cycles spent in the lost sensor state.",
			func(c govCounters) uint64 { return c.lostCycles })
		add("magus_sensor_recoveries_total", "Sensor transitions back to healthy after degradation or loss.",
			func(c govCounters) uint64 { return c.recoveries })
		add("magus_watchdog_overruns_total", "Decision cycles whose sensor latency overran the sleep interval.",
			func(c govCounters) uint64 { return c.watchdog })
	}

	if fset != nil {
		vec := reg.CounterVec("magus_faults_injected_total",
			"Telemetry faults fired by the armed plan, by class.", "class")
		ro.faultCtr = map[string]*obs.Counter{
			"error": vec.With("error"), "stall": vec.With("stall"),
			"stale": vec.With("stale"), "wild": vec.With("wild"), "loss": vec.With("loss"),
		}
	}
	return ro
}

// Step implements sim.Component.
func (ro *runObserver) Step(now, dt time.Duration) {
	ro.steps.Inc()
	if now < ro.next {
		return
	}
	ro.next = now + ro.interval
	ro.sample(now)
}

// sample publishes one snapshot of node and governor state.
func (ro *runObserver) sample(now time.Duration) {
	n := ro.n
	ro.simTime.Set(now.Seconds())
	thr := n.AttainedGBs()
	ro.memGBs.Set(thr)
	ro.thrHist.Observe(thr)
	ro.nodeW.Set(n.TotalPowerW())
	ro.cpuW.Set(n.CPUPowerW())
	for s, g := range ro.uncore {
		g.Set(n.UncoreFreqGHz(s))
		ro.pkgW[s].Set(n.PkgPowerW(s))
		ro.dramW[s].Set(n.DramPowerW(s))
	}
	for g := range ro.gpuW {
		ro.gpuW[g].Set(n.GPUPowerW(g))
		ro.gpuClk[g].Set(n.GPUClockMHz(g))
	}
	pkgJ, drmJ, gpuJ := n.EnergyJ()
	ro.energyPk.Set(pkgJ)
	ro.energyDr.Set(drmJ)
	ro.energyGp.Set(gpuJ)

	if ro.poll != nil {
		c := ro.poll()
		for _, d := range ro.deltas {
			d.update(c)
		}
		ro.healthG.Set(float64(c.health))
		ro.o.SetHealth(obs.Health(c.health))
		if c.health != ro.lastHealth {
			ro.o.Events().Event(now, "health").
				S("from", ro.lastHealth.String()).S("to", c.health.String()).End()
			ro.lastHealth = c.health
		}
	}

	if ro.fset != nil {
		t := ro.fset.Tally()
		if t != ro.lastTally {
			ro.faultCtr["error"].Add(float64(t.Errors - ro.lastTally.Errors))
			ro.faultCtr["stall"].Add(float64(t.Stalls - ro.lastTally.Stalls))
			ro.faultCtr["stale"].Add(float64(t.Stales - ro.lastTally.Stales))
			ro.faultCtr["wild"].Add(float64(t.Wilds - ro.lastTally.Wilds))
			ro.faultCtr["loss"].Add(float64(t.Losses - ro.lastTally.Losses))
			ro.o.Events().Event(now, "faults").
				U("errors", t.Errors).U("stalls", t.Stalls).U("stale", t.Stales).
				U("wild", t.Wilds).U("loss", t.Losses).U("total", t.Total()).End()
			ro.lastTally = t
		}
	}
}

// finish takes the final sample (the run may end between sampling
// ticks) and emits the run_end event.
func (ro *runObserver) finish(now time.Duration, res Result) {
	ro.sample(now)
	ro.o.Events().Event(now, "run_end").
		F("runtime_s", res.RuntimeS).
		F("pkg_j", res.PkgEnergyJ).F("dram_j", res.DramEnergyJ).F("gpu_j", res.GPUEnergyJ).
		F("avg_cpu_w", res.AvgCPUPowerW).End()
}

// Runtime phases, published as magus_runtime_phase and named in phase
// transition events.
const (
	phaseWarmup = iota
	phaseActive
	phaseHighFreq
)

func phaseName(p int) string {
	switch p {
	case phaseWarmup:
		return "warmup"
	case phaseHighFreq:
		return "highfreq"
	default:
		return "active"
	}
}

// decisionObserver translates MAGUS decision callbacks into metrics
// and events.
type decisionObserver struct {
	o *obs.Observer

	outcome map[string]*obs.Counter
	trends  map[core.Trend]*obs.Counter
	target  *obs.Gauge
	phaseG  *obs.Gauge
	period  *obs.Histogram

	havePrev   bool
	prevAt     time.Duration
	prevTrend  core.Trend
	prevPhase  int
	prevHealth resilient.Health
}

// newDecisionObserver registers the decision-level families and
// returns the hook target.
func newDecisionObserver(o *obs.Observer) *decisionObserver {
	reg := o.Registry()
	outcomeVec := reg.CounterVec("magus_decisions_total",
		"MDFS decision cycles by outcome.", "outcome")
	trendVec := reg.CounterVec("magus_trend_predictions_total",
		"Algorithm 1 trend predictions by direction.", "trend")
	return &decisionObserver{
		o: o,
		outcome: map[string]*obs.Counter{
			"warmup": outcomeVec.With("warmup"), "missed": outcomeVec.With("missed"),
			"acted": outcomeVec.With("acted"), "hold": outcomeVec.With("hold"),
		},
		trends: map[core.Trend]*obs.Counter{
			core.TrendUp: trendVec.With("up"), core.TrendDown: trendVec.With("down"),
			core.TrendFlat: trendVec.With("flat"),
		},
		target: reg.Gauge("magus_uncore_target_ghz", "Uncore limit currently requested by the runtime."),
		phaseG: reg.Gauge("magus_runtime_phase",
			"Runtime phase (0 warm-up, 1 active, 2 high-frequency pin)."),
		period: reg.Histogram("magus_decision_period_seconds",
			"Observed spacing between decision cycles in seconds.",
			[]float64{0.2, 0.25, 0.3, 0.35, 0.4, 0.5, 0.75, 1, 2}),
		prevPhase: -1,
	}
}

// observe is the OnDecision hook.
func (do *decisionObserver) observe(d core.Decision) {
	switch {
	case d.Missed:
		do.outcome["missed"].Inc()
	case d.Warmup:
		do.outcome["warmup"].Inc()
	case d.Acted:
		do.outcome["acted"].Inc()
	default:
		do.outcome["hold"].Inc()
	}
	do.target.Set(d.TargetGHz)

	if do.havePrev {
		do.period.Observe((d.At - do.prevAt).Seconds())
	}
	do.havePrev = true
	do.prevAt = d.At

	phase := phaseActive
	switch {
	case d.Warmup:
		phase = phaseWarmup
	case d.HighFreq:
		phase = phaseHighFreq
	}
	do.phaseG.Set(float64(phase))
	if phase != do.prevPhase {
		if do.prevPhase >= 0 {
			do.o.Events().Event(d.At, "phase").
				S("from", phaseName(do.prevPhase)).S("to", phaseName(phase)).End()
		}
		do.prevPhase = phase
	}

	if !d.Warmup && !d.Missed {
		do.trends[d.Trend].Inc()
		if d.Trend != do.prevTrend {
			do.o.Events().Event(d.At, "trend").
				S("from", do.prevTrend.String()).S("to", d.Trend.String()).End()
			do.prevTrend = d.Trend
		}
	}

	do.o.SetHealth(obs.Health(d.SensorHealth))
	if d.SensorHealth != do.prevHealth {
		do.o.Events().Event(d.At, "health").
			S("from", do.prevHealth.String()).S("to", d.SensorHealth.String()).End()
		do.prevHealth = d.SensorHealth
	}

	ev := do.o.Events().Event(d.At, "decision").
		F("mem_gbs", d.ThroughputGBs).
		S("trend", d.Trend.String()).
		F("target_ghz", d.TargetGHz).
		B("acted", d.Acted)
	if d.Warmup {
		ev = ev.B("warmup", true)
	}
	if d.HighFreq {
		ev = ev.B("highfreq", true)
	}
	if d.Missed {
		ev = ev.B("missed", true)
	}
	ev.S("health", d.SensorHealth.String()).End()
}

// installObservability wires the observer into a run: the sampling
// component, the decision hook (when the governor exposes one) and the
// run_start event. It returns the sampler so Run can finish it.
func installObservability(o *obs.Observer, n *node.Node, fset *faults.Set, gov governor.Governor, interval time.Duration, opt Options, cfgName, progName string, resuming bool) *runObserver {
	if interval <= 0 {
		interval = DefaultObsInterval
	}
	reg := o.Registry()
	reg.Counter("magus_runs_total", "Observed harness runs started.").Inc()
	reg.GaugeVec("magus_run_info", "Run identity (constant 1, labels carry the identity).",
		"system", "workload", "governor").
		With(cfgName, progName, gov.Name()).Set(1)

	ro := newRunObserver(o, n, fset, gov, interval)

	hookTarget := gov
	if pc, ok := gov.(*governor.PowerCapped); ok {
		hookTarget = pc.Inner()
	}
	if src, ok := hookTarget.(interface{ OnDecision(func(core.Decision)) }); ok {
		ro.do = newDecisionObserver(o)
		src.OnDecision(ro.do.observe)
	}

	if !resuming {
		// A resumed run continues the original's event stream; its
		// run_start was already emitted (registry values are overwritten
		// wholesale by the restore, so the counters above need no guard).
		o.Events().Event(0, "run_start").
			S("system", cfgName).S("workload", progName).S("governor", gov.Name()).
			F("seed", float64(opt.Seed)).
			B("faults", fset != nil).End()
	}
	return ro
}

package harness

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/spear-repro/magus/internal/checkpoint"
	"github.com/spear-repro/magus/internal/core"
	"github.com/spear-repro/magus/internal/faults"
	"github.com/spear-repro/magus/internal/governor"
	"github.com/spear-repro/magus/internal/node"
	"github.com/spear-repro/magus/internal/obs"
	"github.com/spear-repro/magus/internal/spans"
	"github.com/spear-repro/magus/internal/workload"
)

// diffArtifacts collects every observable byte surface of a run: the
// Result struct, the metrics exposition, the JSONL event stream, the
// Perfetto span export and the telemetry-trace digest. The
// checkpoint/resume contract is that all of them are byte-identical to
// the uninterrupted run's.
type diffArtifacts struct {
	res     Result
	metrics []byte
	events  []byte
	spans   []byte
	traceH  [32]byte
}

func collectArtifacts(t *testing.T, res Result, o *obs.Observer, events *bytes.Buffer, tr *spans.Tracer) diffArtifacts {
	t.Helper()
	a := diffArtifacts{res: res}
	a.res.Traces = nil
	if res.Traces != nil {
		a.traceH = traceHash(t, res)
	}
	if o != nil {
		a.metrics = o.Registry().AppendText(nil)
		a.events = events.Bytes()
	}
	if tr != nil {
		var buf bytes.Buffer
		if err := tr.WritePerfetto(&buf); err != nil {
			t.Fatal(err)
		}
		a.spans = buf.Bytes()
	}
	return a
}

func compareArtifacts(t *testing.T, label string, got, want diffArtifacts) {
	t.Helper()
	if got.res != want.res {
		t.Errorf("%s: Result diverged:\n got  %+v\n want %+v", label, got.res, want.res)
	}
	if !bytes.Equal(got.metrics, want.metrics) {
		t.Errorf("%s: metrics exposition diverged near %s", label, firstDiff(got.metrics, want.metrics))
	}
	if !bytes.Equal(got.events, want.events) {
		t.Errorf("%s: event stream diverged near %s", label, firstDiff(got.events, want.events))
	}
	if !bytes.Equal(got.spans, want.spans) {
		t.Errorf("%s: span export diverged near %s", label, firstDiff(got.spans, want.spans))
	}
	if got.traceH != want.traceH {
		t.Errorf("%s: telemetry traces diverged", label)
	}
}

// diffGovernors enumerates every checkpointable governor family with a
// factory producing identically-configured fresh instances (governors
// are stateful and single-run; resume needs its own).
var diffGovernors = []struct {
	name string
	make func() governor.Governor
}{
	{"magus", func() governor.Governor { return core.New(core.DefaultConfig()) }},
	{"persocket", func() governor.Governor { return core.NewPerSocket(core.DefaultConfig()) }},
	{"ups", func() governor.Governor { return governor.NewUPS(governor.DefaultUPSConfig()) }},
	{"duf", func() governor.Governor { return governor.NewDUF(governor.DefaultDUFConfig()) }},
	{"default", func() governor.Governor { return governor.NewDefault() }},
	{"static", func() governor.Governor { return governor.NewStatic(1.8) }},
}

// TestCheckpointResumeDifferential is the randomized property test
// pinning the tentpole contract: checkpoint a run at an arbitrary
// point, encode, decode, resume — the resumed run's Result, metrics,
// events, telemetry traces and spans must be byte-identical to the
// same run executed without interruption. Seeds, workloads, node
// presets, fault presets, governors and the checkpoint time are all
// drawn from a seeded RNG so every CI run exercises the same matrix.
func TestCheckpointResumeDifferential(t *testing.T) {
	configs := []func() node.Config{node.IntelA100, node.IntelCPUOnly, node.Intel4A100}
	// A cross-section of the catalog: short programs across the signal
	// shapes (bursty, steady memory-bound, high-frequency alternation,
	// epoch-structured).
	progs := []string{"bfs", "gemm", "srad", "fdtd2d", "particlefilter_float", "unet"}
	// "" = no faults; the rest stress the resilient-sensor state
	// machine, the injector RNG streams and the RAPL-less env path.
	plans := []string{"", "", "pcm-flaky", "pcm-loss", "pcm-stale", "msr-flaky", "rapl-outage", "chaos"}

	trials := 12
	if testing.Short() {
		trials = 4
	}
	rng := rand.New(rand.NewSource(20260807))
	for trial := 0; trial < trials; trial++ {
		gov := diffGovernors[rng.Intn(len(diffGovernors))]
		cfg := configs[rng.Intn(len(configs))]()
		prog := mustProg(t, progs[rng.Intn(len(progs))])
		planName := plans[rng.Intn(len(plans))]
		seed := rng.Int63n(1 << 32)
		withObs := rng.Intn(2) == 0
		withSpans := rng.Intn(2) == 0
		var traceInterval time.Duration
		if rng.Intn(2) == 0 {
			traceInterval = 100 * time.Millisecond
		}
		// Workloads never finish before their nominal duration (the
		// node can only slow demand down), so any fraction below 1 is
		// a valid in-flight checkpoint time.
		frac := 0.1 + 0.8*rng.Float64()
		at := time.Duration(frac * float64(prog.NominalDuration()))

		label := fmt.Sprintf("trial%d/%s/%s/%s/faults=%q/obs=%v/spans=%v/at=%v",
			trial, cfg.Name, prog.Name, gov.name, planName, withObs, withSpans, at)
		t.Run(label, func(t *testing.T) {
			newOpts := func() (Options, *obs.Observer, *bytes.Buffer, *spans.Tracer) {
				opt := Options{Seed: seed, TraceInterval: traceInterval}
				if planName != "" {
					plan, ok := faults.Preset(planName)
					if !ok {
						t.Fatalf("no fault preset %q", planName)
					}
					plan.Seed = seed
					opt.Faults = plan
				}
				var (
					o      *obs.Observer
					events *bytes.Buffer
					tr     *spans.Tracer
				)
				if withObs {
					events = &bytes.Buffer{}
					o = obs.New(obs.NewRegistry(), events)
					opt.Obs = o
				}
				if withSpans {
					tr = spans.New(core.DefaultConfig().Window)
					opt.Spans = tr
				}
				return opt, o, events, tr
			}

			// Reference: the uninterrupted run.
			wantOpt, wantObs, wantEvents, wantTr := newOpts()
			wantRes, err := Run(cfg, prog, gov.make(), wantOpt)
			if err != nil {
				t.Fatal(err)
			}
			want := collectArtifacts(t, wantRes, wantObs, wantEvents, wantTr)

			// Interrupted run: advance to the checkpoint time and
			// capture. Its event prefix stays in this buffer.
			preOpt, _, preEvents, _ := newOpts()
			pre, err := NewSteppable(cfg, prog, gov.make(), preOpt)
			if err != nil {
				t.Fatal(err)
			}
			if done, err := pre.Advance(at); err != nil {
				t.Fatal(err)
			} else if done {
				t.Fatalf("run finished before checkpoint time %v", at)
			}
			data, err := pre.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}

			// Round-trip through the wire format so the differential
			// also covers the envelope codec.
			blob, err := checkpoint.Encode(data)
			if err != nil {
				t.Fatal(err)
			}
			decoded, err := checkpoint.Decode(blob)
			if err != nil {
				t.Fatal(err)
			}

			// Resume with fresh per-run objects and drive to
			// completion in ragged chunks.
			_, postObs, postEvents, postTr := newOpts()
			res, err := Resume(decoded, ResumeOptions{Gov: gov.make(), Obs: postObs, Spans: postTr})
			if err != nil {
				t.Fatal(err)
			}
			chunks := []time.Duration{
				1300 * time.Millisecond, 7 * time.Millisecond, 2 * time.Second, 333 * time.Millisecond,
			}
			for i := 0; !res.Done(); i++ {
				if _, err := res.Advance(chunks[i%len(chunks)]); err != nil {
					t.Fatal(err)
				}
			}

			got := collectArtifacts(t, res.Result(), postObs, postEvents, postTr)
			if withObs {
				// The event stream splits across the interruption: the
				// original prefix plus the resumed suffix must equal
				// the uninterrupted stream.
				got.events = append(append([]byte(nil), preEvents.Bytes()...), postEvents.Bytes()...)
			}
			compareArtifacts(t, label, got, want)
		})
	}
}

// TestCheckpointChunkedRagged extends the Steppable chunking contract
// with checkpoints at ragged Advance boundaries: the run is repeatedly
// advanced by awkward increments and at every boundary — including
// mid-window and inside fault-degraded periods — it is checkpointed,
// abandoned, and resumed into a fresh Steppable that carries on. The
// final artifacts must still be byte-identical to the single-shot Run.
func TestCheckpointChunkedRagged(t *testing.T) {
	cfg := node.IntelA100()
	prog := mustProg(t, "gemm")
	const seed = 42
	newPlan := func() *faults.Plan {
		plan, ok := faults.Preset("chaos")
		if !ok {
			t.Fatal("no chaos preset")
		}
		plan.Seed = seed
		return plan
	}
	window := core.DefaultConfig().Window

	// Reference: one uninterrupted run with every surface enabled.
	wantEvents := &bytes.Buffer{}
	wantObs := obs.New(obs.NewRegistry(), wantEvents)
	wantTr := spans.New(window)
	wantRes, err := Run(cfg, prog, core.New(core.DefaultConfig()), Options{
		Seed: seed, Faults: newPlan(), Obs: wantObs, Spans: wantTr,
		TraceInterval: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := collectArtifacts(t, wantRes, wantObs, wantEvents, wantTr)

	// Chained run: ragged chunks, a checkpoint/resume hand-over at
	// every boundary. Chunk sizes are deliberately not multiples of the
	// governor interval or the trace interval, so checkpoints land
	// mid-window; the chaos plan keeps several boundaries inside
	// degraded periods.
	chunks := []time.Duration{
		1700 * time.Millisecond, 3 * time.Millisecond, 900 * time.Millisecond,
		2500 * time.Millisecond, 77 * time.Millisecond, 4 * time.Second,
	}
	var eventParts [][]byte
	events := &bytes.Buffer{}
	o := obs.New(obs.NewRegistry(), events)
	tr := spans.New(window)
	st, err := NewSteppable(cfg, prog, core.New(core.DefaultConfig()), Options{
		Seed: seed, Faults: newPlan(), Obs: o, Spans: tr,
		TraceInterval: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	hops := 0
	for i := 0; !st.Done(); i++ {
		done, err := st.Advance(chunks[i%len(chunks)])
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		data, err := st.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		blob, err := checkpoint.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := checkpoint.Decode(blob)
		if err != nil {
			t.Fatal(err)
		}
		eventParts = append(eventParts, append([]byte(nil), events.Bytes()...))
		events = &bytes.Buffer{}
		o = obs.New(obs.NewRegistry(), events)
		tr = spans.New(window)
		st, err = Resume(decoded, ResumeOptions{
			Gov: core.New(core.DefaultConfig()), Obs: o, Spans: tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		hops++
	}
	if hops < 5 {
		t.Fatalf("only %d checkpoint hand-overs; chunk schedule too coarse for the contract", hops)
	}

	got := collectArtifacts(t, st.Result(), o, events, tr)
	got.events = bytes.Join(append(eventParts, events.Bytes()), nil)
	compareArtifacts(t, "chained", got, want)
}

// TestCheckpointErrors pins the refusal paths: finished runs, noise
// closures and mismatched resume options must error loudly instead of
// producing a silently wrong run.
func TestCheckpointErrors(t *testing.T) {
	cfg := node.IntelA100()
	prog := mustProg(t, "bfs")

	t.Run("finished-run", func(t *testing.T) {
		st, err := NewSteppable(cfg, prog, governor.NewDefault(), Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		for !st.Done() {
			if _, err := st.Advance(10 * time.Second); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := st.Checkpoint(); err == nil {
			t.Fatal("checkpoint of a finished run succeeded")
		}
	})

	t.Run("noise-closure", func(t *testing.T) {
		st, err := NewSteppable(cfg, prog, governor.NewDefault(), Options{
			Seed: 1, PCMNoise: func(g float64) float64 { return g },
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Advance(time.Second); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Checkpoint(); err == nil {
			t.Fatal("checkpoint with a PCMNoise closure succeeded")
		}
	})

	t.Run("non-catalog-program", func(t *testing.T) {
		p := &workload.Program{
			Name:   "bfs", // catalog name, different object
			Phases: []workload.Phase{{Name: "x", Duration: time.Second, Mem: 0.1, Beta: 0.1, CPUBusyCores: 1}},
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		st, err := NewSteppable(cfg, p, governor.NewDefault(), Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Checkpoint(); err == nil {
			t.Fatal("checkpoint of a non-catalog program succeeded")
		}
	})

	t.Run("resume-mismatches", func(t *testing.T) {
		data, err := Checkpoint(cfg, prog, core.New(core.DefaultConfig()), Options{Seed: 3}, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Resume(data, ResumeOptions{}); err == nil {
			t.Fatal("resume without a governor succeeded")
		}
		if _, err := Resume(data, ResumeOptions{Gov: governor.NewDefault()}); err == nil {
			t.Fatal("resume with wrong governor name succeeded")
		}
		if _, err := Resume(data, ResumeOptions{
			Gov: core.New(core.DefaultConfig()), Obs: obs.New(obs.NewRegistry(), nil),
		}); err == nil {
			t.Fatal("resume with unexpected observer succeeded")
		}
		if _, err := Resume(data, ResumeOptions{
			Gov: core.New(core.DefaultConfig()), Spans: spans.New(core.DefaultConfig().Window),
		}); err == nil {
			t.Fatal("resume with unexpected tracer succeeded")
		}
	})
}
